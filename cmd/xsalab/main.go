// Command xsalab runs one of the original third-party PoCs against a
// chosen hypervisor version and prints the attacker terminal, hypervisor
// console and monitor verdict — the Section VI/VII experience.
//
// Usage:
//
//	xsalab -version 4.6 -case XSA-212-crash
//	xsalab -version 4.13 -case XSA-148-priv
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/campaign"
	"repro/internal/exploits"
	"repro/internal/hv"
	"repro/internal/monitor"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xsalab: ")
	versionName := flag.String("version", "4.6", "hypervisor version (4.6, 4.8, 4.13)")
	useCase := flag.String("case", "XSA-212-crash", "use case (XSA-212-crash, XSA-212-priv, XSA-148-priv, XSA-182-test)")
	all := flag.Bool("all", false, "run every use case on every version (12 transcripts)")
	flag.Parse()

	if *all {
		for _, v := range hv.Versions() {
			for _, scen := range exploits.Scenarios() {
				runOne(v, scen)
			}
		}
		return
	}
	v, err := hv.VersionByName(*versionName)
	if err != nil {
		log.Fatal(err)
	}
	scen, err := exploits.ScenarioByName(*useCase)
	if err != nil {
		log.Fatal(err)
	}
	runOne(v, scen)
}

func runOne(v hv.Version, scen exploits.Scenario) {
	e, err := campaign.NewEnvironment(v, campaign.ModeExploit)
	if err != nil {
		log.Fatal(err)
	}
	env, err := e.ScenarioEnv(campaign.ModeExploit)
	if err != nil {
		log.Fatal(err)
	}
	outcome := scen.Run(env)
	verdict := monitor.Assess(e.HV, e.Guests, outcome)
	fmt.Print(report.Transcript(&campaign.RunResult{Outcome: outcome, Verdict: verdict}, e.HV.Console()))
	fmt.Println()
}
