package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
)

// chromeRow mirrors one Chrome trace-event line of a `repro -spans`
// artifact for validation.
type chromeRow struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// validateSpans checks a Chrome trace-event span file: it must parse as
// a JSON array, declare the process and worker-track metadata Perfetto
// renders, and every complete ("X") event must carry its cell identity
// and a well-formed virtual interval. Per cell there must be exactly
// one cell-root span and at least one phase span.
func validateSpans(path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var rows []chromeRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		log.Fatalf("%s: not a Chrome trace-event JSON array: %v", path, err)
	}
	if len(rows) == 0 {
		log.Fatalf("%s: span file is empty", path)
	}

	fail := false
	failf := func(format string, args ...any) {
		fmt.Printf("FAIL "+format+"\n", args...)
		fail = true
	}

	// Metadata: one process_name row, and a thread_name row per worker
	// track any span event references.
	process := false
	tracks := map[int]bool{}
	for _, r := range rows {
		if r.Phase != "M" {
			continue
		}
		switch r.Name {
		case "process_name":
			process = true
		case "thread_name":
			tracks[r.TID] = true
		}
	}
	if !process {
		failf("%s: no process_name metadata", path)
	}

	type cellCheck struct{ roots, phases, spans int }
	cells := map[string]*cellCheck{}
	spans := 0
	for i, r := range rows {
		if r.Phase != "X" {
			continue
		}
		spans++
		cell, _ := r.Args["cell"].(string)
		if cell == "" {
			failf("%s: event %d (%s): no cell in args", path, i, r.Name)
			continue
		}
		if !tracks[r.TID] {
			failf("%s: event %d (%s): tid %d has no thread_name track", path, i, r.Name, r.TID)
		}
		vStart, okS := r.Args["v_start"].(float64)
		vEnd, okE := r.Args["v_end"].(float64)
		if !okS || !okE || vEnd < vStart {
			failf("%s: event %d (%s): bad virtual interval v_start=%v v_end=%v",
				path, i, r.Name, r.Args["v_start"], r.Args["v_end"])
		}
		if r.Dur < 0 {
			failf("%s: event %d (%s): negative duration %v", path, i, r.Name, r.Dur)
		}
		c := cells[cell]
		if c == nil {
			c = &cellCheck{}
			cells[cell] = c
		}
		c.spans++
		switch r.Cat {
		case "cell":
			c.roots++
		case "phase":
			c.phases++
		}
	}
	if spans == 0 {
		log.Fatalf("%s: no span events, only metadata", path)
	}
	for cell, c := range cells {
		if c.roots != 1 {
			failf("%s: %d cell-root spans (want exactly 1)", cell, c.roots)
		}
		if c.phases == 0 {
			failf("%s: no phase spans", cell)
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("ok: %d spans across %d cells on %d worker tracks\n", spans, len(cells), len(tracks))
}
