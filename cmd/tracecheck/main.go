// Command tracecheck works with JSONL telemetry traces produced by
// `repro -trace`.
//
// Validate mode checks a trace: it must be non-empty, parse line by
// line, and carry the event families a campaign-cell diagnosis relies
// on. CI's trace-demo target runs it against a freshly generated
// one-cell trace, so a regression that silences a whole event family
// fails the build rather than surfacing during an investigation. A
// malformed or incomplete record fails with its 1-based line number.
//
// Diff mode structurally compares two traces cell by cell (matched by
// exact "version/use-case/mode" id) after canonicalization — wall
// times stripped, addresses folded to layout roles, version and mode
// banners masked — and reports identical / equivalent-modulo-noise /
// divergent per cell, with the first diverging event pair and its
// source lines as evidence. Any divergent or one-sided cell exits
// non-zero.
//
// Spans mode validates a Chrome trace-event JSON span file produced by
// `repro -spans`: it must parse, carry the process/worker metadata
// Perfetto needs, and every complete event must carry its cell identity
// and a well-formed virtual interval; every cell must have exactly one
// cell-root span and at least one phase span.
//
// Cov mode works with deterministic coverage reports produced by
// `repro -coverage`. With one file it recomputes every cell digest and
// the report digest from the exported edges and prints the identity
// (add -digest to print just the report digest, for golden pinning).
// With two files it diffs their edge unions: new and lost edges are
// listed with the dispatch-order cell that first witnessed each, and
// any digest difference exits non-zero — this is what `make
// cover-matrix` runs against the committed baseline.
//
// Usage:
//
//	tracecheck <trace.jsonl>
//	tracecheck diff <a.jsonl> <b.jsonl>
//	tracecheck spans <spans.json>
//	tracecheck sched <sched.json>
//	tracecheck cov [-digest] <cov.json>
//	tracecheck cov <a.json> <b.json>
//	tracecheck runs list <store-dir>
//	tracecheck runs show <record.json|run-dir|store-dir>
//	tracecheck runs diff <a> <b>
//
// Sched mode validates a wall-schedule file produced by `repro
// -schedule` — Chrome trace-event JSON with the Schedule snapshot
// embedded — cross-checks the two against each other, and prints the
// utilization / queue-wait / wall-critical-path summary.
//
// Runs mode works with campaign run records produced by `repro
// -ledger`: list shows a store's run history, show prints one settled
// record, and diff renders the canonical cross-run regression report,
// exiting non-zero on a verdict flip or a lost coverage edge — the
// gate `make ledger-diff` enforces against the committed baseline.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/tracediff"
)

func usage() {
	log.Fatalf("usage: tracecheck <trace.jsonl> | tracecheck diff <a.jsonl> <b.jsonl> | tracecheck spans <spans.json> | tracecheck sched <sched.json> | tracecheck cov [-digest] <cov.json> | tracecheck cov <a.json> <b.json> | tracecheck runs list|show|diff ...")
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	switch {
	case len(os.Args) >= 2 && os.Args[1] == "runs":
		runsMain(os.Args[2:])
	case len(os.Args) == 2 && os.Args[1] != "diff" && os.Args[1] != "spans" && os.Args[1] != "sched" && os.Args[1] != "cov":
		validate(os.Args[1])
	case len(os.Args) == 4 && os.Args[1] == "diff":
		diff(os.Args[2], os.Args[3])
	case len(os.Args) == 3 && os.Args[1] == "spans":
		validateSpans(os.Args[2])
	case len(os.Args) == 3 && os.Args[1] == "sched":
		validateSched(os.Args[2])
	case len(os.Args) == 3 && os.Args[1] == "cov":
		covValidate(os.Args[2], false)
	case len(os.Args) == 4 && os.Args[1] == "cov" && os.Args[2] == "-digest":
		covValidate(os.Args[3], true)
	case len(os.Args) == 4 && os.Args[1] == "cov":
		covDiff(os.Args[2], os.Args[3])
	default:
		usage()
	}
}

// readTrace loads a trace file, exiting non-zero (with the offending
// line number, which ReadTrace includes) on any parse failure.
func readTrace(path string) []telemetry.TraceRecord {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	records, err := telemetry.ReadTrace(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return records
}

func validate(path string) {
	records := readTrace(path)
	if len(records) == 0 {
		log.Fatalf("%s: trace is empty", path)
	}

	// Per-cell bookkeeping: which event kinds each cell produced, and
	// whether its cell_end summary arrived.
	kinds := map[string]map[string]int{}
	ended := map[string]bool{}
	for _, rec := range records {
		if rec.Cell == "" || rec.Kind == "" {
			log.Fatalf("%s: line %d: missing cell or kind: %+v", path, rec.Line, rec)
		}
		if rec.Kind == telemetry.CellEndKind {
			ended[rec.Cell] = true
			continue
		}
		if kinds[rec.Cell] == nil {
			kinds[rec.Cell] = map[string]int{}
		}
		kinds[rec.Cell][rec.Kind]++
	}
	if len(kinds) == 0 {
		log.Fatalf("%s: no event records, only summaries", path)
	}

	fail := false
	for cell, k := range kinds {
		if !ended[cell] {
			fmt.Printf("FAIL %s: no cell_end summary\n", cell)
			fail = true
		}
		required := []string{"hypercall_enter", "hypercall_exit", "page_type_get"}
		// Injection-mode cells must additionally show injector activity.
		if strings.HasSuffix(cell, "/injection") {
			required = append(required, "injector_op")
		}
		for _, want := range required {
			if k[want] == 0 {
				fmt.Printf("FAIL %s: no %s events\n", cell, want)
				fail = true
			}
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("ok: %d records across %d cells\n", len(records), len(kinds))
}

func diff(pathA, pathB string) {
	diffs := tracediff.DiffTraces(readTrace(pathA), readTrace(pathB))
	if len(diffs) == 0 {
		log.Fatalf("no cells found in either trace")
	}
	fail := false
	for _, d := range diffs {
		switch {
		case !d.InA:
			fmt.Printf("DIVERGENT %s: only in %s\n", d.Cell, pathB)
			fail = true
		case !d.InB:
			fmt.Printf("DIVERGENT %s: only in %s\n", d.Cell, pathA)
			fail = true
		case d.Tier == tracediff.TierDivergent:
			fmt.Printf("DIVERGENT %s (%d vs %d events)\n", d.Cell, d.AEvents, d.BEvents)
			if dv := d.Divergence; dv != nil {
				fmt.Printf("  first divergence at effect index %d (a line %d, b line %d):\n",
					dv.Index, dv.ALine, dv.BLine)
				fmt.Printf("    a: %s\n    b: %s\n", dv.A, dv.B)
			}
			fail = true
		default:
			fmt.Printf("%s %s (%d events)\n", d.Tier, d.Cell, d.AEvents)
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("ok: %d cells compared\n", len(diffs))
}
