// Command tracecheck validates a JSONL telemetry trace produced by
// `repro -trace`: it must be non-empty, parse line by line, and carry
// the event families a campaign-cell diagnosis relies on. CI's
// trace-demo target runs it against a freshly generated one-cell trace,
// so a regression that silences a whole event family fails the build
// rather than surfacing during an investigation.
//
// Usage:
//
//	tracecheck <trace.jsonl>
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	if len(os.Args) != 2 {
		log.Fatalf("usage: tracecheck <trace.jsonl>")
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	records, err := telemetry.ReadTrace(f)
	if err != nil {
		log.Fatal(err)
	}
	if len(records) == 0 {
		log.Fatalf("%s: trace is empty", os.Args[1])
	}

	// Per-cell bookkeeping: which event kinds each cell produced, and
	// whether its cell_end summary arrived.
	kinds := map[string]map[string]int{}
	ended := map[string]bool{}
	for i, rec := range records {
		if rec.Cell == "" || rec.Kind == "" {
			log.Fatalf("record %d: missing cell or kind: %+v", i+1, rec)
		}
		if rec.Kind == telemetry.CellEndKind {
			ended[rec.Cell] = true
			continue
		}
		if kinds[rec.Cell] == nil {
			kinds[rec.Cell] = map[string]int{}
		}
		kinds[rec.Cell][rec.Kind]++
	}
	if len(kinds) == 0 {
		log.Fatalf("%s: no event records, only summaries", os.Args[1])
	}

	fail := false
	for cell, k := range kinds {
		if !ended[cell] {
			fmt.Printf("FAIL %s: no cell_end summary\n", cell)
			fail = true
		}
		required := []string{"hypercall_enter", "hypercall_exit", "page_type_get"}
		// Injection-mode cells must additionally show injector activity.
		if strings.HasSuffix(cell, "/injection") {
			required = append(required, "injector_op")
		}
		for _, want := range required {
			if k[want] == 0 {
				fmt.Printf("FAIL %s: no %s events\n", cell, want)
				fail = true
			}
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("ok: %d records across %d cells\n", len(records), len(kinds))
}
