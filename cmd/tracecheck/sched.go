package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/internal/events"
)

// Sched mode validates a wall-schedule file produced by `repro
// -schedule` and summarizes what it says about the worker pool: the
// file must parse as Chrome trace-event JSON in object form, carry the
// process/worker metadata Perfetto needs, place every settled cell as
// a well-formed complete event, and embed the Schedule snapshot the
// exporter settled on. The summary recomputes per-worker occupancy
// from the trace events and cross-checks it against the embedded
// snapshot, so a file whose two halves disagree fails loudly.

// schedFile is the object form `repro -schedule` writes.
type schedFile struct {
	TraceEvents []schedEvent    `json:"traceEvents"`
	Schedule    events.Schedule `json:"schedule"`
}

// schedEvent is the subset of trace-event fields sched mode checks.
type schedEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

func validateSched(path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var f schedFile
	if err := json.Unmarshal(raw, &f); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if len(f.TraceEvents) == 0 {
		log.Fatalf("%s: no trace events", path)
	}

	var haveProcess bool
	workerNames := map[int]bool{}
	cellsPerTID := map[int]int{}
	busyPerTID := map[int]float64{}
	cells := 0
	for i, ev := range f.TraceEvents {
		switch ev.Phase {
		case "M":
			switch ev.Name {
			case "process_name":
				haveProcess = true
			case "thread_name":
				workerNames[ev.TID] = true
			default:
				log.Fatalf("%s: event %d: unknown metadata %q", path, i, ev.Name)
			}
		case "X":
			if ev.Name == "" {
				log.Fatalf("%s: event %d: complete event without a cell name", path, i)
			}
			if ev.Cat != "cell" {
				log.Fatalf("%s: event %d (%s): want cat \"cell\", got %q", path, i, ev.Name, ev.Cat)
			}
			if ev.TS < 0 || ev.Dur < 0 {
				log.Fatalf("%s: event %d (%s): negative placement (ts=%v dur=%v)", path, i, ev.Name, ev.TS, ev.Dur)
			}
			if !workerNames[ev.TID] {
				log.Fatalf("%s: event %d (%s): tid %d has no thread_name metadata", path, i, ev.Name, ev.TID)
			}
			cells++
			cellsPerTID[ev.TID]++
			busyPerTID[ev.TID] += ev.Dur
		default:
			log.Fatalf("%s: event %d: unexpected phase %q", path, i, ev.Phase)
		}
	}
	if !haveProcess {
		log.Fatalf("%s: no process_name metadata", path)
	}
	if cells != f.Schedule.Completed {
		log.Fatalf("%s: %d complete events but the embedded schedule settled %d cells", path, cells, f.Schedule.Completed)
	}
	for _, ln := range f.Schedule.Workers {
		tid := ln.Worker + 1
		if cellsPerTID[tid] != ln.Cells {
			log.Fatalf("%s: worker %d: %d trace events but the schedule records %d cells",
				path, ln.Worker, cellsPerTID[tid], ln.Cells)
		}
		// The exporter rounds to microseconds per event; allow the
		// accumulated rounding slack.
		slack := float64(ln.Cells) + 1
		if diff := busyPerTID[tid] - float64(ln.BusyNS)/1e3; diff > slack || diff < -slack {
			log.Fatalf("%s: worker %d: trace occupancy %.1fus disagrees with schedule busy %.1fus",
				path, ln.Worker, busyPerTID[tid], float64(ln.BusyNS)/1e3)
		}
	}

	fmt.Printf("ok: %d cells across %d worker tracks\n", cells, len(workerNames))
	fmt.Print(events.RenderSummary(f.Schedule))
}
