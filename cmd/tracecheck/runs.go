package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/ledger"
)

// Runs mode works with campaign run records produced by `repro
// -ledger`.
//
//	tracecheck runs list <store-dir>      — run history, newest first
//	tracecheck runs show <ref>            — one settled canonical record
//	tracecheck runs diff <a> <b>          — regression diff, canonical text
//
// A <ref> is a record.json path (a run directory's settled record or a
// committed baseline), a run directory, or a store directory (its
// latest run). Diff exits non-zero when the diff is fatal — a verdict
// flip or a lost coverage edge — which is the `make ledger-diff` gate.

func runsMain(args []string) {
	switch {
	case len(args) == 2 && args[0] == "list":
		runsList(args[1])
	case len(args) == 2 && args[0] == "show":
		runsShow(args[1])
	case len(args) == 3 && args[0] == "diff":
		runsDiff(args[1], args[2])
	default:
		log.Fatalf("usage: tracecheck runs list <store-dir> | tracecheck runs show <record.json|run-dir|store-dir> | tracecheck runs diff <a> <b>")
	}
}

func runsList(dir string) {
	store, err := ledger.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	runs, err := store.Runs()
	if err != nil {
		log.Fatal(err)
	}
	if len(runs) == 0 {
		fmt.Println("no recorded runs")
		return
	}
	for _, r := range runs {
		status := "interrupted"
		if r.Digest != "" {
			status = "settled"
		}
		fmt.Printf("%s  %s  %3d/%3d cells  %s  %s\n",
			r.RunID,
			time.Unix(0, r.CreatedUnixNS).UTC().Format("2006-01-02 15:04:05"),
			r.Completed, r.Cells, status, r.Config.Canonical())
	}
}

// loadRef resolves a record reference: a record.json file, a run
// directory containing one, or a store directory (latest run,
// rebuilt from its journal).
func loadRef(ref string) *ledger.Record {
	fi, err := os.Stat(ref)
	if err != nil {
		log.Fatal(err)
	}
	if !fi.IsDir() {
		rec, err := ledger.LoadRecordFile(ref)
		if err != nil {
			log.Fatal(err)
		}
		return rec
	}
	// A run directory holds run.json directly; a store directory holds
	// run subdirectories.
	if _, err := os.Stat(ref + "/run.json"); err == nil {
		rec, err := ledger.LoadRecordFile(ref + "/record.json")
		if err == nil {
			return rec
		}
		// No settled record yet — rebuild from the journal via the store.
		store, oerr := ledger.Open(ref + "/..")
		if oerr != nil {
			log.Fatal(err)
		}
		rec2, lerr := store.Load(fi.Name())
		if lerr != nil {
			log.Fatal(err)
		}
		return rec2
	}
	store, err := ledger.Open(ref)
	if err != nil {
		log.Fatal(err)
	}
	runs, err := store.Runs()
	if err != nil {
		log.Fatal(err)
	}
	if len(runs) == 0 {
		log.Fatalf("%s: no recorded runs", ref)
	}
	rec, err := store.Load(runs[0].RunID)
	if err != nil {
		log.Fatal(err)
	}
	return rec
}

func runsShow(ref string) {
	rec := loadRef(ref)
	fmt.Printf("run %s\n", rec.RunID)
	fmt.Printf("  config:    %s\n", rec.Config.Canonical())
	fmt.Printf("  cells:     %d settled of %d expected, %d failed\n", rec.Completed, rec.Cells, rec.Failed())
	fmt.Printf("  digest:    %s\n", rec.Digest)
	for _, e := range rec.Entries {
		line := fmt.Sprintf("  %s/%s/%s", e.Version, e.Scenario, e.Mode)
		switch {
		case e.Error != nil:
			line += fmt.Sprintf("  FAILED(%s) %s", e.Error.Class, e.Error.Message)
		case e.Verdict != nil:
			mark := func(v bool) string {
				if v {
					return "✓"
				}
				return "-"
			}
			line += fmt.Sprintf("  err-state=%s sec-viol=%s", mark(e.Verdict.ErroneousState), mark(e.Verdict.SecurityViolation))
			if e.Verdict.Handled {
				line += " handled"
			}
		}
		if e.Equivalence != nil {
			line += fmt.Sprintf("  rq2=%s", e.Equivalence.Tier)
		}
		if e.Coverage != nil {
			line += fmt.Sprintf("  cov=%d:%s", e.Coverage.Edges, e.Coverage.Digest)
		}
		if e.Latency != nil && e.Latency.Found {
			line += fmt.Sprintf("  lat=%d", e.Latency.Events)
		}
		fmt.Println(line)
	}
}

func runsDiff(a, b string) {
	d := ledger.Diff(loadRef(a), loadRef(b))
	fmt.Print(d.Render())
	if d.Fatal() {
		log.Fatalf("FATAL: %d verdict flip(s), %d lost coverage edge(s)", len(d.Flips), len(d.LostEdges))
	}
}
