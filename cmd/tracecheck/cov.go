package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/internal/coverage"
)

// readCoverage loads and self-verifies a coverage report produced by
// `repro -coverage`: every cell digest and the report digest must
// recompute from the exported edges, so a truncated or hand-edited
// artifact fails here instead of poisoning a diff.
func readCoverage(path string) *coverage.Report {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	rep := &coverage.Report{}
	if err := json.Unmarshal(raw, rep); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if err := rep.Verify(); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return rep
}

// covValidate checks one coverage report and prints its identity.
func covValidate(path string, digestOnly bool) {
	rep := readCoverage(path)
	if digestOnly {
		fmt.Println(rep.Digest)
		return
	}
	if rep.TotalEdges == 0 {
		log.Fatalf("%s: coverage report is empty", path)
	}
	fmt.Printf("ok: %d edges across %d cells, digest %s\n",
		rep.TotalEdges, len(rep.Cells), rep.Digest)
	for _, f := range rep.Families {
		fmt.Printf("  %-12s %d\n", f.Family, f.Edges)
	}
}

// covDiff compares two coverage reports' unions, reporting new and
// lost edges with the dispatch-order first-witness cell of each, and
// exits non-zero if the runs' canonical digests differ.
func covDiff(pathA, pathB string) {
	a, b := readCoverage(pathA), readCoverage(pathB)
	newEdges, lostEdges := coverage.Diff(a, b)
	for _, u := range newEdges {
		fmt.Printf("NEW  %s/%s (first witnessed by %s)\n", u.Family, u.Name, u.FirstCell)
	}
	for _, u := range lostEdges {
		fmt.Printf("LOST %s/%s (was first witnessed by %s)\n", u.Family, u.Name, u.FirstCell)
	}
	if a.Digest != b.Digest {
		fmt.Printf("DIVERGENT: digest %s vs %s (%d new, %d lost edges)\n",
			a.Digest, b.Digest, len(newEdges), len(lostEdges))
		os.Exit(1)
	}
	fmt.Printf("ok: identical coverage (%d edges, digest %s)\n", a.TotalEdges, a.Digest)
}
