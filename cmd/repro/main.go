// Command repro regenerates every table and figure of the paper from
// live experiment runs against the simulated hypervisor.
//
// Usage:
//
//	repro                    # everything
//	repro -table 3           # one table (1..3)
//	repro -figure 4          # one figure (1..4)
//	repro -matrix            # the full 24-run campaign matrix
//	repro -matrix -workers 8 # the matrix on an 8-worker pool
//
// Campaign cells always run in fresh, isolated environments, so they
// are spread over a worker pool (one worker per CPU by default;
// -workers overrides, and -workers 1 forces the serial debug path).
// The rendered output is byte-identical at any worker count.
//
// Observability:
//
//	repro -matrix -trace trace.jsonl   # per-cell event trace (JSONL)
//	repro -matrix -metrics             # aggregated counters/histograms
//	repro -cell 4.6/XSA-148-priv/injection -trace cell.jsonl
//	repro -matrix -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/campaign"
	"repro/internal/fieldstudy"
	"repro/internal/hv"
	"repro/internal/inject"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// parseCell splits a "version/use-case/mode" cell coordinate.
func parseCell(s string) (hv.Version, string, campaign.Mode, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return hv.Version{}, "", "", fmt.Errorf("cell %q: want version/use-case/mode", s)
	}
	v, err := hv.VersionByName(parts[0])
	if err != nil {
		return hv.Version{}, "", "", err
	}
	mode := campaign.Mode(parts[2])
	if mode != campaign.ModeExploit && mode != campaign.ModeInjection {
		return hv.Version{}, "", "", fmt.Errorf("cell %q: mode must be %q or %q", s, campaign.ModeExploit, campaign.ModeInjection)
	}
	return v, parts[1], mode, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")
	table := flag.Int("table", 0, "render only this table (1..3)")
	figure := flag.Int("figure", 0, "render only this figure (1..4)")
	matrix := flag.Bool("matrix", false, "render only the full campaign matrix")
	fuzz := flag.Int("fuzz", 0, "run the randomized-injection vs hypercall-baseline comparison with this many trials")
	score := flag.Bool("score", false, "run the per-version security benchmark")
	jsonOut := flag.Bool("json", false, "emit the full campaign as a JSON artifact")
	avail := flag.Bool("availability", false, "run the availability-under-injection experiment")
	workers := flag.Int("workers", 0, "campaign worker-pool size (0 = one per CPU, 1 = serial)")
	cellSpec := flag.String("cell", "", "run a single cell, \"version/use-case/mode\" (e.g. 4.6/XSA-148-priv/injection)")
	traceOut := flag.String("trace", "", "write a per-cell JSONL event trace to this file")
	metrics := flag.Bool("metrics", false, "print the aggregated telemetry summary after the campaign")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	all := *table == 0 && *figure == 0 && !*matrix && *fuzz == 0 && !*score && !*jsonOut && !*avail && *cellSpec == ""
	out := os.Stdout
	runner := &campaign.Runner{Workers: *workers}
	if *traceOut != "" || *metrics {
		runner.Telemetry = telemetry.NewRegistry()
	}
	// profiles accumulates every profiled cell in run order for -trace.
	var profiles []*telemetry.CellProfile
	collect := func(res *campaign.RunResult) {
		if res != nil && res.Profile != nil {
			profiles = append(profiles, res.Profile)
		}
	}

	if *cellSpec != "" {
		v, useCase, mode, err := parseCell(*cellSpec)
		if err != nil {
			log.Fatalf("-cell: %v", err)
		}
		res, err := runner.Run(v, useCase, mode)
		if err != nil {
			log.Fatalf("cell %s: %v", *cellSpec, err)
		}
		collect(res)
		fmt.Fprintln(out, res.Verdict)
		for _, line := range res.Verdict.Evidence {
			fmt.Fprintf(out, "  %s\n", line)
		}
	}
	if all || *table == 1 {
		t := fieldstudy.Classify(fieldstudy.Dataset())
		if err := t.Verify(); err != nil {
			log.Fatalf("table I verification: %v", err)
		}
		fmt.Fprintln(out, report.TableI(t))
	}
	if all || *table == 2 {
		fmt.Fprintln(out, report.TableII(inject.UseCaseModels()))
	}
	if all || *table == 3 {
		rows, err := runner.RunTable3()
		if err != nil {
			log.Fatalf("table III campaign: %v", err)
		}
		versions := make([]string, 0, 2)
		for _, v := range campaign.Table3Versions() {
			versions = append(versions, v.Name)
		}
		fmt.Fprintln(out, report.TableIII(rows, versions))
	}
	if all || *figure == 1 {
		fmt.Fprintln(out, report.Fig1())
		fmt.Fprintln(out)
	}
	if all || *figure == 2 {
		fmt.Fprintln(out, report.Fig2())
		fmt.Fprintln(out)
	}
	if all || *figure == 3 {
		fmt.Fprintln(out, report.Fig3(inject.GuestWritablePageTableEntry))
	}
	if all || *figure == 4 {
		rows, err := runner.RunFig4()
		if err != nil {
			log.Fatalf("figure 4 campaign: %v", err)
		}
		for _, row := range rows {
			collect(row.Exploit)
			collect(row.Injection)
		}
		fmt.Fprintln(out, report.Fig4(rows))
	}
	if all || *matrix {
		entries, err := runner.RunMatrix()
		if err != nil {
			log.Fatalf("full matrix: %v", err)
		}
		for _, e := range entries {
			collect(e.Result)
		}
		fmt.Fprintln(out, report.Matrix(entries))
	}
	if *fuzz > 0 {
		for _, v := range hv.Versions() {
			cmp, err := campaign.CompareWithBaseline(v, *fuzz, 2023)
			if err != nil {
				log.Fatalf("fuzz comparison on %s: %v", v.Name, err)
			}
			fmt.Fprintln(out, report.BaselineComparison(cmp))
		}
	}
	if *score {
		scores, err := runner.SecurityBenchmark()
		if err != nil {
			log.Fatalf("security benchmark: %v", err)
		}
		fmt.Fprintln(out, report.Scoreboard(scores))
	}
	if *jsonOut {
		if err := runner.ExportMatrix(out); err != nil {
			log.Fatalf("json export: %v", err)
		}
	}
	if *avail {
		for _, v := range hv.Versions() {
			rows, err := campaign.AvailabilityUnderInjection(v, workload.DefaultConfig())
			if err != nil {
				log.Fatalf("availability on %s: %v", v.Name, err)
			}
			fmt.Fprintln(out, report.Availability(rows))
		}
	}

	if *traceOut != "" {
		if len(profiles) == 0 {
			log.Fatalf("-trace: no profiled cells ran (combine -trace with -matrix, -figure 4, or -cell)")
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := telemetry.WriteTrace(f, profiles); err != nil {
			f.Close()
			log.Fatalf("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
		log.Printf("wrote %d-cell trace to %s", len(profiles), *traceOut)
	}
	if *metrics {
		fmt.Fprintln(out, report.MetricsSummary(runner.Telemetry))
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			log.Fatalf("memprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}
}
