// Command repro regenerates every table and figure of the paper from
// live experiment runs against the simulated hypervisor.
//
// Usage:
//
//	repro                    # everything
//	repro -table 3           # one table (1..3)
//	repro -figure 4          # one figure (1..4)
//	repro -matrix            # the full 24-run campaign matrix
//	repro -matrix -workers 8 # the matrix on an 8-worker pool
//
// Campaign cells always run in fresh, isolated environments, so they
// are spread over a worker pool (one worker per CPU by default;
// -workers overrides, and -workers 1 forces the serial debug path).
// The rendered output is byte-identical at any worker count.
//
// By default each (version, mode) environment boots once per process
// and every cell runs on a copy-on-write fork of the sealed machine;
// the output is byte-identical either way. -no-snapshot (or a
// non-empty REPRO_NO_SNAPSHOT in the environment) forces every cell
// through a full fresh boot — the escape hatch for bisecting a
// suspected snapshot-path divergence.
//
// Observability:
//
//	repro -matrix -trace trace.jsonl   # per-cell event trace (JSONL)
//	repro -matrix -metrics             # aggregated counters/histograms
//	repro -cell 4.6/XSA-148-priv/injection -trace cell.jsonl
//	repro -matrix -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Trace equivalence (RQ2):
//
//	repro -equivalence             # run both modes, diff traces per cell
//	repro -equivalence -workers 8  # same, on an 8-worker pool
//
// -equivalence runs the full matrix with telemetry and structurally
// compares each scenario's exploit trace against its injection trace
// per version (canonicalized: addresses folded to layout roles, version
// and mode banners masked), reporting identical /
// equivalent-modulo-noise / divergent per cell and exiting non-zero on
// any divergence.
//
// Causal spans (RQ3):
//
//	repro -matrix -spans spans.json    # span forest as Chrome trace JSON
//
// -spans captures a causal span tree per cell (cell → phase →
// hypercall/mm-op, with the monitor's audit pass nested in assess),
// writes the forest as Chrome trace-event JSON — load it in Perfetto
// (ui.perfetto.dev) or chrome://tracing; each campaign worker renders
// as its own track — and prints the deterministic span summary:
// per-phase virtual totals, the critical-path analysis of each batch at
// the configured pool size, and the per-cell detection-latency table.
// Span structure is measured in virtual time (the per-cell event
// counter), so it is byte-identical at any -workers value.
//
// Coverage maps (RQ1):
//
//	repro -matrix -coverage cov.json   # per-cell edge coverage + campaign union
//
// -coverage accumulates a deterministic coverage map per cell —
// behaviour edges derived from the telemetry stream (hypercall
// outcomes, page-type transitions per frame class, validation rejects,
// walk denials, injector transitions, grant/domctl ops) — writes the
// settled campaign report (per-cell maps, attributed union, canonical
// digest) as JSON, and prints the coverage summary with the
// exploit-vs-injection shared-edge table. The report is byte-identical
// at any -workers value, under seeded -chaos, and fork-vs-fresh boot;
// diff two runs with "tracecheck cov a.json b.json".
//
// Live observability:
//
//	repro -matrix -listen :8080    # /metrics /healthz /cells while running
//	repro -matrix -listen :8080 -spans spans.json   # adds /spans
//	repro -matrix -listen :8080 -coverage cov.json  # adds /coverage
//	repro -matrix -listen :8080 -serve              # keep serving after the run
//	curl -N http://localhost:8080/events            # live SSE event stream
//
// -listen also serves the live campaign event stream: /events is an
// SSE endpoint carrying batch/cell lifecycle events with monotonic
// IDs — a reconnecting client sends Last-Event-ID and replays the
// retained ring gaplessly — plus /schedule (the wall-clock worker
// schedule as JSON) and /debug/pprof (the Go profiling endpoints).
// Slow /events consumers lose events instead of slowing the campaign;
// the loss is counted per connection and surfaced in-band. -serve
// keeps the server (and /events replay, /runs, pprof) up after the
// campaign completes until Ctrl-C.
//
// Wall schedule:
//
//	repro -matrix -workers 4 -schedule sched.json   # Perfetto wall schedule
//
// -schedule records which worker ran which cell, each cell's queue
// wait and run time, writes the schedule as Chrome trace-event JSON
// (load it in ui.perfetto.dev; one track per worker) with the summary
// snapshot embedded, and prints the utilization / queue-wait / wall
// critical-path summary. It complements -spans: spans measure the
// deterministic virtual clock, -schedule measures the wall clock, and
// nothing it observes feeds a deterministic artifact. Validate and
// summarize a schedule file with "tracecheck sched sched.json".
//
// Structured logging:
//
//	repro -matrix -log run.log             # JSON logs (run_id on every line)
//	repro -matrix -log - -log-level debug  # per-cell dispatch/settle to stderr
//
// -log threads log/slog through the command and the campaign engine:
// batch queueing at Info, per-cell dispatch/settle with worker,
// queue-wait and verdict attrs at Debug, failures with their class at
// Warn. The default (no -log) stays completely silent.
//
// Run ledger & regression diffs:
//
//	repro -ledger runs            # journal the matrix into a run-record store
//	repro -ledger runs -resume    # delta rerun: only absent or changed cells
//
// -ledger gives the campaign a deterministic, content-addressed run ID
// (digest of the scenario-registry digest, version set, chaos seed,
// mode flags and build version) and journals every cell's settled
// outcome — verdict, equivalence tier, coverage digest and edges,
// detection latency, span makespan, failure class — live into
// <dir>/<run-id>/ as cells settle. The settled record is byte-identical
// at any -workers count and fork path; -resume re-executes only cells
// whose key is absent or whose registry spec changed and merges to
// artifacts byte-identical to a full run. Inspect and diff records with
// "tracecheck runs list|show|diff".
//
// Robustness:
//
//	repro -matrix -chaos 7 -continue-on-error   # seeded substrate faults
//
// Under -continue-on-error or -chaos the flight recorder is armed: a
// cell that settles as a failure has its final event ring dumped as
// flight-<cell>.jsonl in the current directory immediately, even if
// the process never reaches its normal trace flush.
//
// -chaos arms a deterministic fault plan against the simulator
// substrate (forced allocation failures, hypercall-handler panics,
// forced hangs, telemetry-sink errors), keyed only by the seed and the
// cell coordinate, so the same seed reproduces the same faults at any
// worker count. -continue-on-error records per-cell failure
// classifications (error/panic/hang/canceled) in the matrix and JSON
// artifact instead of stopping at the first failing cell. Ctrl-C
// cancels the campaign cleanly: -trace, -metrics and both profiles are
// still flushed with whatever cells completed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/events"
	"repro/internal/exploits"
	"repro/internal/faults"
	"repro/internal/fieldstudy"
	"repro/internal/hv"
	"repro/internal/inject"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/tracediff"
	"repro/internal/workload"
)

// parseCell splits a "version/use-case/mode" cell coordinate. The
// use-case segment is validated against the scenario registry up front,
// so a typo fails here with the valid names instead of deep inside the
// campaign engine.
func parseCell(s string) (hv.Version, string, campaign.Mode, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return hv.Version{}, "", "", fmt.Errorf("cell %q: want version/use-case/mode", s)
	}
	v, err := hv.VersionByName(parts[0])
	if err != nil {
		return hv.Version{}, "", "", err
	}
	if _, err := exploits.SpecByName(parts[1]); err != nil {
		return hv.Version{}, "", "", fmt.Errorf("cell %q: %w (valid use cases: %s)",
			s, err, strings.Join(exploits.SpecNames(), ", "))
	}
	mode := campaign.Mode(parts[2])
	if mode != campaign.ModeExploit && mode != campaign.ModeInjection {
		return hv.Version{}, "", "", fmt.Errorf("cell %q: mode must be %q or %q", s, campaign.ModeExploit, campaign.ModeInjection)
	}
	return v, parts[1], mode, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")
	if err := run(os.Stdout); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

// run is the single exit path of the command: every failure returns
// through it, so the deferred CPU-profile stop and the artifact flushes
// below always execute. The previous revision called log.Fatalf at each
// failure site, which skipped the deferred pprof.StopCPUProfile and
// never reached -memprofile, -trace or -metrics on error.
func run(out io.Writer) (err error) {
	table := flag.Int("table", 0, "render only this table (1..3)")
	figure := flag.Int("figure", 0, "render only this figure (1..4)")
	matrix := flag.Bool("matrix", false, "render only the full campaign matrix")
	fuzz := flag.Int("fuzz", 0, "run the randomized-injection vs hypercall-baseline comparison with this many trials")
	score := flag.Bool("score", false, "run the per-version security benchmark")
	jsonOut := flag.Bool("json", false, "emit the full campaign as a JSON artifact")
	avail := flag.Bool("availability", false, "run the availability-under-injection experiment")
	corpus := flag.Bool("corpus", false, "print the scenario-corpus distribution (families, functionality classes, cell counts)")
	workers := flag.Int("workers", 0, "campaign worker-pool size (0 = one per CPU, 1 = serial)")
	cellSpec := flag.String("cell", "", "run a single cell, \"version/use-case/mode\" (e.g. 4.6/XSA-148-priv/injection)")
	traceOut := flag.String("trace", "", "write a per-cell JSONL event trace to this file")
	metrics := flag.Bool("metrics", false, "print the aggregated telemetry summary after the campaign")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	chaos := flag.Int64("chaos", 0, "arm a seeded substrate fault plan with this seed (0 = off)")
	contOnErr := flag.Bool("continue-on-error", false, "record per-cell failure classifications instead of stopping at the first failing cell")
	equivalence := flag.Bool("equivalence", false, "run the full matrix in both modes and report per-cell trace equivalence (RQ2); exits non-zero on any divergent cell")
	listenAddr := flag.String("listen", "", "serve live observability on this address (/metrics, /healthz, /cells, /spans, /events, /schedule, /debug/pprof) for the duration of the run")
	serve := flag.Bool("serve", false, "with -listen: keep the observability server up after the campaign completes (for /runs, /events replay, pprof) until interrupted")
	scheduleOut := flag.String("schedule", "", "write the wall-clock worker schedule as Chrome trace-event JSON to this file and print the schedule summary")
	logOut := flag.String("log", "", "write structured JSON run logs to this file (\"-\" = stderr; silent by default)")
	logLevel := flag.String("log-level", "info", "minimum structured log level with -log: debug, info, warn or error")
	spansOut := flag.String("spans", "", "capture per-cell causal span trees, write them as Chrome trace-event JSON to this file, and print the span summary")
	noSnapshot := flag.Bool("no-snapshot", false, "boot every campaign cell fresh instead of forking the sealed (version, mode) snapshot")
	covOut := flag.String("coverage", "", "accumulate per-cell coverage maps and write the campaign coverage report (JSON) to this file")
	ledgerDir := flag.String("ledger", "", "journal the campaign into a content-addressed run-record store at this directory (implies the full matrix)")
	resume := flag.Bool("resume", false, "with -ledger: load the latest compatible run record and re-execute only absent or changed cells")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *noSnapshot {
		campaign.EnableSnapshots(false)
	}
	if *version {
		snapshots := "enabled"
		if !campaign.SnapshotsEnabled() {
			snapshots = "disabled"
		}
		fmt.Fprintf(out, "repro %s (%s, snapshots %s)\n", buildinfo.Version, buildinfo.GoVersion(), snapshots)
		return nil
	}

	// Reject out-of-range selections before any work or profile file is
	// created. 0 means "not selected" for the numeric flags.
	if *table < 0 || *table > 3 {
		return fmt.Errorf("-table: want 1..3, got %d", *table)
	}
	if *figure < 0 || *figure > 4 {
		return fmt.Errorf("-figure: want 1..4, got %d", *figure)
	}
	if *fuzz < 0 {
		return fmt.Errorf("-fuzz: want a positive trial count, got %d", *fuzz)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers: want 0 (one per CPU) or a positive pool size, got %d", *workers)
	}
	if *resume && *ledgerDir == "" {
		return errors.New("-resume: requires -ledger")
	}
	if *serve && *listenAddr == "" {
		return errors.New("-serve: requires -listen")
	}
	if *ledgerDir != "" {
		// The ledger records exactly the full campaign matrix; selection
		// flags would record a different experiment under the same run
		// identity. Live-only captures (-trace, -spans) are rejected too:
		// a delta rerun executes only a subset of cells, so those
		// artifacts could not merge to a full run's.
		if *table != 0 || *figure != 0 || *fuzz != 0 || *score || *jsonOut || *avail || *corpus || *cellSpec != "" {
			return errors.New("-ledger: runs the full matrix; drop -table/-figure/-fuzz/-score/-json/-availability/-corpus/-cell")
		}
		if *traceOut != "" || *spansOut != "" {
			return errors.New("-ledger: -trace and -spans are live captures and cannot merge across delta reruns")
		}
	}

	if *cpuProfile != "" {
		f, cerr := os.Create(*cpuProfile)
		if cerr != nil {
			return fmt.Errorf("cpuprofile: %w", cerr)
		}
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", cerr)
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("cpuprofile: %w", cerr)
			}
		}()
	}

	// Ctrl-C / SIGTERM cancels the campaign context: in-flight cells are
	// classified as canceled, undispatched cells never start, and the
	// flush section below still runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runner := &campaign.Runner{Workers: *workers, ContinueOnError: *contOnErr}
	if *traceOut != "" || *metrics || *equivalence || *listenAddr != "" || *ledgerDir != "" {
		// -equivalence needs every cell's event trace; -listen needs the
		// registry behind /metrics; -ledger persists each cell's
		// canonical streams so equivalence regrades from the record.
		runner.Telemetry = telemetry.NewRegistry()
	}
	if *spansOut != "" {
		runner.Spans = span.NewCollector()
	}
	if *covOut != "" {
		runner.Coverage = coverage.NewCollector()
	}
	if *chaos != 0 {
		plan := faults.NewPlan(*chaos, faults.DefaultDensity)
		runner.Faults = plan
		// Unblock any wedged cells the watchdog abandoned so their
		// goroutines exit before the process does.
		defer plan.ReleaseAll()
	}

	// Run identity: every campaign of this configuration shares one
	// content-addressed run ID (worker count and the fork path are
	// excluded by construction — they cannot change the outcome). The ID
	// namespaces flight-recorder dumps and is exported by /healthz and
	// /metrics even when no ledger directory is given.
	runCfg := ledger.CurrentConfig(*chaos, *contOnErr)
	runID := runCfg.RunID()

	// Structured run logging (-log): slog threads through the runner and
	// this command with the run identity on every line. Silent (and
	// free) unless requested.
	var logger *slog.Logger
	if *logOut != "" {
		var lvl slog.Level
		if lerr := lvl.UnmarshalText([]byte(*logLevel)); lerr != nil {
			return fmt.Errorf("-log-level: %w", lerr)
		}
		lw := io.Writer(os.Stderr)
		if *logOut != "-" {
			f, lerr := os.Create(*logOut)
			if lerr != nil {
				return fmt.Errorf("log: %w", lerr)
			}
			defer func() {
				if cerr := f.Close(); cerr != nil && err == nil {
					err = fmt.Errorf("log: %w", cerr)
				}
			}()
			lw = f
		}
		logger = slog.New(slog.NewJSONHandler(lw, &slog.HandlerOptions{Level: lvl})).With("run_id", runID)
		runner.Log = logger
		logger.Info("campaign starting",
			"version", buildinfo.Version, "workers", *workers,
			"chaos", *chaos, "continue_on_error", *contOnErr)
	}

	// The wall-clock observability plane: the scheduler timeline backs
	// -schedule and /schedule, the event bus backs the SSE /events
	// stream. Both hang off the runner's Sched hook and observe wall
	// time only — none of it can reach a deterministic artifact.
	var (
		bus       *events.Bus
		publisher *events.Publisher
		timeline  *events.Timeline
	)
	if *scheduleOut != "" || *listenAddr != "" {
		timeline = events.NewTimeline()
	}
	if *listenAddr != "" {
		bus = events.NewBus(0, 0)
		publisher = &events.Publisher{Bus: bus}
	}
	switch {
	case publisher != nil && timeline != nil:
		runner.Sched = events.Fanout{publisher, timeline}
	case timeline != nil:
		runner.Sched = timeline
	}

	var (
		ledgerStore *ledger.Store
		ledgerW     *ledger.Writer
		ledgerPrev  *ledger.Record
		delta       ledger.Delta
	)
	if *ledgerDir != "" {
		store, lerr := ledger.Open(*ledgerDir)
		if lerr != nil {
			return lerr
		}
		if *resume {
			ledgerPrev, lerr = store.LatestMatching(runCfg)
			if lerr != nil {
				return fmt.Errorf("-resume: %w", lerr)
			}
		}
		delta = ledger.PlanDelta(ledgerPrev, runCfg)
		w, lerr := store.NewWriter(runCfg, delta.Expected)
		if lerr != nil {
			return lerr
		}
		runner.Observer = w
		ledgerStore, ledgerW = store, w
	}

	// Live observers: the HTTP server (-listen) and the flight recorder
	// (armed whenever the campaign is allowed to outlive failing cells,
	// so their last events land on disk the moment the engine settles
	// the failure).
	var observers obs.Multi
	var flight *obs.FlightRecorder
	if *listenAddr != "" {
		server := obs.NewServer(runner.Telemetry)
		server.SetSpans(runner.Spans)
		server.SetCoverage(runner.Coverage)
		server.SetRunID(runID)
		server.SetLedger(ledgerStore)
		server.SetBus(bus)
		server.SetSchedule(timeline)
		addr, lerr := server.Listen(*listenAddr)
		if lerr != nil {
			return lerr
		}
		log.Printf("observability server on http://%s (/metrics /healthz /cells /spans /coverage /runs /events /schedule /debug/pprof)", addr)
		if logger != nil {
			logger.Info("observability server listening", "addr", addr.String())
		}
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if serr := server.Shutdown(sctx); serr != nil && err == nil {
				err = fmt.Errorf("observability server shutdown: %w", serr)
			}
		}()
		observers = append(observers, server)
	}
	if *contOnErr || *chaos != 0 {
		flight = &obs.FlightRecorder{RunID: runID}
		runner.SalvageProfiles = true
		observers = append(observers, flight)
	}
	switch len(observers) {
	case 0:
	case 1:
		runner.Progress = observers[0]
	default:
		runner.Progress = observers
	}

	// profiles accumulates every profiled cell in run order for -trace.
	var profiles []*telemetry.CellProfile
	collect := func(res *campaign.RunResult) {
		if res != nil && res.Profile != nil {
			profiles = append(profiles, res.Profile)
		}
	}

	all := *table == 0 && *figure == 0 && !*matrix && *fuzz == 0 && !*score && !*jsonOut && !*avail && *cellSpec == "" && !*equivalence && !*corpus && *ledgerDir == ""
	body := func() error {
		if *cellSpec != "" {
			v, useCase, mode, err := parseCell(*cellSpec)
			if err != nil {
				return fmt.Errorf("-cell: %w", err)
			}
			res, err := runner.RunContext(ctx, v, useCase, mode)
			if err != nil {
				return fmt.Errorf("cell %s: %w", *cellSpec, err)
			}
			collect(res)
			fmt.Fprintln(out, res.Verdict)
			for _, line := range res.Verdict.Evidence {
				fmt.Fprintf(out, "  %s\n", line)
			}
		}
		if all || *table == 1 {
			t := fieldstudy.Classify(fieldstudy.Dataset())
			if err := t.Verify(); err != nil {
				return fmt.Errorf("table I verification: %w", err)
			}
			fmt.Fprintln(out, report.TableI(t))
		}
		if all || *table == 2 {
			fmt.Fprintln(out, report.TableII(inject.UseCaseModels()))
		}
		if all || *corpus {
			fmt.Fprintln(out, report.Corpus(fieldstudy.CorpusOf(exploits.Specs())))
		}
		if all || *table == 3 {
			rows, err := runner.RunTable3Context(ctx)
			if err != nil {
				return fmt.Errorf("table III campaign: %w", err)
			}
			versions := make([]string, 0, 2)
			for _, v := range campaign.Table3Versions() {
				versions = append(versions, v.Name)
			}
			fmt.Fprintln(out, report.TableIII(rows, versions))
		}
		if all || *figure == 1 {
			fmt.Fprintln(out, report.Fig1())
			fmt.Fprintln(out)
		}
		if all || *figure == 2 {
			fmt.Fprintln(out, report.Fig2())
			fmt.Fprintln(out)
		}
		if all || *figure == 3 {
			fmt.Fprintln(out, report.Fig3(inject.GuestWritablePageTableEntry))
		}
		if all || *figure == 4 {
			rows, err := runner.RunFig4Context(ctx)
			if err != nil {
				return fmt.Errorf("figure 4 campaign: %w", err)
			}
			for _, row := range rows {
				collect(row.Exploit)
				collect(row.Injection)
			}
			fmt.Fprintln(out, report.Fig4(rows))
		}
		if *ledgerDir != "" {
			// The ledger flow: execute the delta (the full matrix on a
			// fresh run), settle the record, grade equivalence from the
			// persisted streams, and render every artifact from the
			// settled record — full runs and resumed reruns share one
			// rendering source, so merged artifacts are byte-identical.
			if ledgerPrev != nil {
				log.Printf("ledger: resume from run %s: %d cells reused, %d to execute (%d stale)",
					ledgerPrev.RunID, len(delta.Reused), len(delta.Rerun), delta.Stale)
				if ledgerPrev.RunID != runID {
					ledgerW.Import(delta.Reused)
				}
			} else if *resume {
				log.Print("ledger: no compatible prior run; executing the full matrix")
			}
			if len(delta.Rerun) > 0 {
				entries, err := runner.RunCellRefs(ctx, delta.Rerun)
				if err != nil {
					// Close flushes what settled; a later -resume picks
					// the journal up from exactly here.
					ledgerW.Close()
					return fmt.Errorf("ledger campaign: %w", err)
				}
				for _, e := range entries {
					collect(e.Result)
				}
			}
			if snap := ledgerW.Snapshot(); snap.Complete() && snap.Failed() == 0 {
				verdicts, eqErr := ledger.Equivalence(snap)
				if eqErr != nil {
					ledgerW.Close()
					return fmt.Errorf("ledger equivalence: %w", eqErr)
				}
				ledgerW.RecordEquivalence(verdicts)
			} else {
				// A partial or failed matrix cannot carry verdicts
				// inherited from a prior fully graded run.
				ledgerW.StripEquivalence()
			}
			rec, lerr := ledgerW.Close()
			if lerr != nil {
				return fmt.Errorf("ledger: %w", lerr)
			}
			log.Printf("ledger: run %s settled %d/%d cells (record digest %s) in %s",
				rec.RunID, rec.Completed, rec.Cells, rec.Digest, ledgerStore.RunDir(rec.RunID))
			fmt.Fprintln(out, report.Matrix(rec.MatrixEntries()))
			if *equivalence {
				verdicts, ok := rec.EquivalenceVerdicts()
				if !ok {
					return errors.New("equivalence: run record is not fully graded (failed or missing cells)")
				}
				fmt.Fprintln(out, report.TraceEquivalence(verdicts))
				divergent := 0
				for _, cv := range verdicts {
					if !cv.Equivalent() {
						divergent++
					}
				}
				if divergent > 0 {
					return fmt.Errorf("equivalence: %d of %d cells divergent", divergent, len(verdicts))
				}
			}
			if *covOut != "" {
				rep := rec.CoverageReport()
				if werr := writeCoverage(*covOut, rep); werr != nil {
					return werr
				}
				log.Printf("wrote coverage report (%d edges, digest %s) to %s", rep.TotalEdges, rep.Digest, *covOut)
				fmt.Fprintln(out, report.CoverageSummary(rep))
			}
		}
		if (all || *matrix) && *ledgerDir == "" {
			entries, err := runner.RunMatrixContext(ctx)
			if err != nil {
				return fmt.Errorf("full matrix: %w", err)
			}
			for _, e := range entries {
				collect(e.Result)
			}
			fmt.Fprintln(out, report.Matrix(entries))
		}
		if *equivalence && *ledgerDir == "" {
			entries, err := runner.RunMatrixContext(ctx)
			if err != nil {
				return fmt.Errorf("equivalence matrix: %w", err)
			}
			for _, e := range entries {
				collect(e.Result)
			}
			verdicts, err := tracediff.MatrixEquivalence(entries)
			if err != nil {
				return fmt.Errorf("equivalence: %w", err)
			}
			fmt.Fprintln(out, report.TraceEquivalence(verdicts))
			divergent := 0
			for _, cv := range verdicts {
				if !cv.Equivalent() {
					divergent++
				}
			}
			if divergent > 0 {
				return fmt.Errorf("equivalence: %d of %d cells divergent", divergent, len(verdicts))
			}
		}
		if *fuzz > 0 {
			for _, v := range hv.Versions() {
				if err := ctx.Err(); err != nil {
					return err
				}
				cmp, err := campaign.CompareWithBaseline(v, *fuzz, 2023)
				if err != nil {
					return fmt.Errorf("fuzz comparison on %s: %w", v.Name, err)
				}
				fmt.Fprintln(out, report.BaselineComparison(cmp))
			}
		}
		if *score {
			scores, err := runner.SecurityBenchmarkContext(ctx)
			if err != nil {
				return fmt.Errorf("security benchmark: %w", err)
			}
			fmt.Fprintln(out, report.Scoreboard(scores))
		}
		if *jsonOut {
			if err := runner.ExportMatrixContext(ctx, out); err != nil {
				return fmt.Errorf("json export: %w", err)
			}
		}
		if *avail {
			for _, v := range hv.Versions() {
				if err := ctx.Err(); err != nil {
					return err
				}
				rows, err := campaign.AvailabilityUnderInjection(v, workload.DefaultConfig())
				if err != nil {
					return fmt.Errorf("availability on %s: %w", v.Name, err)
				}
				fmt.Fprintln(out, report.Availability(rows))
			}
		}
		return nil
	}
	bodyErr := body()
	if bodyErr != nil && ctx.Err() != nil {
		log.Print("interrupted; flushing partial artifacts")
	}
	if publisher != nil {
		// The stream's terminal event: subscribers learn the campaign is
		// over without waiting for the connection to close.
		s := timeline.Snapshot()
		publisher.CampaignDone(s.Completed, s.Failed)
	}
	if logger != nil {
		attrs := []any{"ok", bodyErr == nil}
		if timeline != nil {
			s := timeline.Snapshot()
			attrs = append(attrs, "cells", s.Completed, "failed", s.Failed,
				"makespan_ns", s.MakespanNS, "utilization", s.Utilization)
		}
		logger.Info("campaign done", attrs...)
	}
	if flight != nil {
		for _, p := range flight.Dumps() {
			log.Printf("flight recorder: dumped %s", p)
		}
		for _, ferr := range flight.Errors() {
			log.Printf("warning: %v", ferr)
		}
	}

	// Flush section: runs whether or not the body failed, so an
	// interrupted or faulted campaign still leaves usable artifacts.
	var flushErrs []error
	if *traceOut != "" {
		if len(profiles) == 0 && bodyErr != nil && runner.Telemetry != nil {
			// The run failed before cell-ordered results materialized;
			// salvage the cells that completed, in completion order.
			profiles = runner.Telemetry.CellProfiles()
		}
		switch {
		case len(profiles) > 0:
			if err := writeTrace(*traceOut, profiles); err != nil {
				flushErrs = append(flushErrs, err)
			} else {
				log.Printf("wrote %d-cell trace to %s", len(profiles), *traceOut)
			}
		case bodyErr == nil:
			flushErrs = append(flushErrs, errors.New("-trace: no profiled cells ran (combine -trace with -matrix, -figure 4, or -cell)"))
		}
	}
	if *metrics {
		fmt.Fprintln(out, report.MetricsSummary(runner.Telemetry))
	}
	if *spansOut != "" {
		forest := runner.Spans.Forest()
		if cerr := forest.Check(); cerr != nil {
			flushErrs = append(flushErrs, fmt.Errorf("spans: invariant violation: %w", cerr))
		}
		if werr := writeSpans(*spansOut, forest); werr != nil {
			flushErrs = append(flushErrs, werr)
		} else {
			log.Printf("wrote span trace to %s (open in ui.perfetto.dev)", *spansOut)
		}
		poolSize := *workers
		if poolSize == 0 {
			poolSize = runtime.GOMAXPROCS(0)
		}
		fmt.Fprintln(out, report.SpanSummary(forest, poolSize))
	}
	if *covOut != "" && *ledgerDir == "" {
		rep := runner.Coverage.Report()
		if werr := writeCoverage(*covOut, rep); werr != nil {
			flushErrs = append(flushErrs, werr)
		} else {
			log.Printf("wrote coverage report (%d edges, digest %s) to %s", rep.TotalEdges, rep.Digest, *covOut)
		}
		fmt.Fprintln(out, report.CoverageSummary(rep))
	}
	if *scheduleOut != "" {
		if werr := writeSchedule(*scheduleOut, timeline); werr != nil {
			flushErrs = append(flushErrs, werr)
		} else {
			log.Printf("wrote wall schedule to %s (open in ui.perfetto.dev)", *scheduleOut)
		}
		fmt.Fprintln(out, events.RenderSummary(timeline.Snapshot()))
	}
	if *memProfile != "" {
		if err := writeHeapProfile(*memProfile); err != nil {
			flushErrs = append(flushErrs, err)
		}
	}
	if *serve && ctx.Err() == nil {
		// -serve: the campaign is done but the observability surfaces
		// (/runs, /events replay, /schedule, pprof) stay inspectable
		// until Ctrl-C. The deferred Shutdown then terminates live SSE
		// subscribers so the drain completes promptly.
		log.Print("campaign done; observability server still serving (Ctrl-C to exit)")
		<-ctx.Done()
		log.Print("interrupt; shutting down observability server")
	}
	if bus != nil {
		// End-of-stream for every connected subscriber: their channels
		// close, the SSE handlers emit the `end` notice and return.
		bus.Close()
	}
	return errors.Join(append([]error{bodyErr}, flushErrs...)...)
}

func writeTrace(path string, profiles []*telemetry.CellProfile) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := telemetry.WriteTrace(f, profiles); err != nil {
		f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

func writeSpans(path string, f *span.Forest) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("spans: %w", err)
	}
	if err := span.WriteChrome(fh, f); err != nil {
		fh.Close()
		return fmt.Errorf("spans: %w", err)
	}
	if err := fh.Close(); err != nil {
		return fmt.Errorf("spans: %w", err)
	}
	return nil
}

func writeSchedule(path string, t *events.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("schedule: %w", err)
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("schedule: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("schedule: %w", err)
	}
	return nil
}

func writeCoverage(path string, rep *coverage.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("coverage: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return fmt.Errorf("coverage: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("coverage: %w", err)
	}
	return nil
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
