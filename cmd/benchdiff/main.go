// Command benchdiff compares two benchmark artifacts produced by
// `make bench` (test2json streams of `go test -bench`, e.g.
// BENCH_matrix.json) benchmark by benchmark and reports the ns/op
// delta, so a perf regression shows up as a reviewable number instead
// of a hunch. A benchmark whose ns/op grew beyond the threshold ratio
// fails the comparison with a non-zero exit.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -threshold 1.10 old.json new.json   # fail on >10% growth
//
// Benchmarks present on only one side are reported as added/removed
// but never fail the comparison — the set changes legitimately as the
// suite grows.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the test2json stream benchdiff reads.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// result is one benchmark's parsed measurements.
type result struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
}

// benchLine matches a complete benchmark result line in the
// reassembled output stream. Names carry the -N GOMAXPROCS suffix and
// sub-benchmark paths; measurements beyond ns/op are optional.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// parse reads a test2json stream and extracts benchmark results. The
// test binary's output is split across Output events at arbitrary
// points (a benchmark's name and its measurements often arrive in
// separate events), so the events are concatenated before line
// parsing. A benchmark that ran more than once keeps its last run.
func parse(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var out strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1024*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s: line %d: not a test2json event: %w", path, line, err)
		}
		if ev.Action == "output" {
			out.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}

	results := make(map[string]result)
	for _, l := range strings.Split(out.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(l))
		if m == nil {
			continue
		}
		r := result{}
		r.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			r.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		results[m[1]] = r
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return results, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	threshold := flag.Float64("threshold", 1.25, "fail when any benchmark's new/old ns/op ratio exceeds this")
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatalf("usage: benchdiff [-threshold 1.25] old.json new.json")
	}
	if *threshold <= 0 {
		log.Fatalf("-threshold: want a positive ratio, got %g", *threshold)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	oldR, err := parse(oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newR, err := parse(newPath)
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, 0, len(oldR)+len(newR))
	seen := make(map[string]bool)
	for n := range oldR {
		names = append(names, n)
		seen[n] = true
	}
	for n := range newR {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	fmt.Printf("%-52s %14s %14s %8s\n", "Benchmark", "old ns/op", "new ns/op", "delta")
	fmt.Println(strings.Repeat("-", 92))
	regressed := 0
	for _, n := range names {
		o, inOld := oldR[n]
		nw, inNew := newR[n]
		switch {
		case !inOld:
			fmt.Printf("%-52s %14s %14.0f %8s\n", n, "-", nw.NsPerOp, "added")
		case !inNew:
			fmt.Printf("%-52s %14.0f %14s %8s\n", n, o.NsPerOp, "-", "removed")
		default:
			ratio := nw.NsPerOp / o.NsPerOp
			mark := ""
			if ratio > *threshold {
				mark = " REGRESSED"
				regressed++
			}
			fmt.Printf("%-52s %14.0f %14.0f %+7.1f%%%s\n", n, o.NsPerOp, nw.NsPerOp, (ratio-1)*100, mark)
		}
	}
	if regressed > 0 {
		log.Fatalf("%d benchmark(s) regressed beyond %.2fx (%s -> %s)", regressed, *threshold, oldPath, newPath)
	}
	fmt.Printf("ok: no benchmark regressed beyond %.2fx\n", *threshold)
}
