// Command iinject runs an intrusion-injection script against a chosen
// hypervisor version: the Section VI-B workflow. It prints the intrusion
// model being instantiated, the injection transcript, and the monitor's
// verdict on the induced erroneous state and any security violation.
//
// Usage:
//
//	iinject -version 4.13 -case XSA-212-priv
//	iinject -models           # list the available intrusion models
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/campaign"
	"repro/internal/exploits"
	"repro/internal/hv"
	"repro/internal/inject"
	"repro/internal/monitor"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iinject: ")
	versionName := flag.String("version", "4.13", "hypervisor version (4.6, 4.8, 4.13)")
	useCase := flag.String("case", "XSA-212-crash", "use case (any registry scenario, e.g. XSA-212-crash; see repro -corpus)")
	listModels := flag.Bool("models", false, "list intrusion models and exit")
	flag.Parse()

	if *listModels {
		fmt.Println("Use-case intrusion models (Table II):")
		for _, m := range inject.UseCaseModels() {
			fmt.Printf("  %s\n    erroneous state: %s\n    advisories: %v\n", m, m.ErroneousState, m.Advisories)
		}
		fmt.Println("Extension intrusion models:")
		for _, m := range inject.ExtensionModels() {
			fmt.Printf("  %s\n    erroneous state: %s\n", m, m.ErroneousState)
		}
		return
	}

	v, err := hv.VersionByName(*versionName)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range inject.ExtensionModels() {
		if m.Name == *useCase {
			runExtension(v, m)
			return
		}
	}
	scen, err := exploits.ScenarioByName(*useCase)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range inject.UseCaseModels() {
		if m.Name == *useCase {
			fmt.Printf("intrusion model: %s\n  erroneous state: %s\n\n", m, m.ErroneousState)
		}
	}
	e, err := campaign.NewEnvironment(v, campaign.ModeInjection)
	if err != nil {
		log.Fatal(err)
	}
	env, err := e.ScenarioEnv(campaign.ModeInjection)
	if err != nil {
		log.Fatal(err)
	}
	outcome := scen.Run(env)
	verdict := monitor.Assess(e.HV, e.Guests, outcome)
	fmt.Print(report.Transcript(&campaign.RunResult{Outcome: outcome, Verdict: verdict}, e.HV.Console()))
}

// runExtension drives one of the extension intrusion models through the
// state injector and reports the health probe's findings.
func runExtension(v hv.Version, m inject.IntrusionModel) {
	fmt.Printf("intrusion model: %s\n  erroneous state: %s\n\n", m, m.ErroneousState)
	e, err := campaign.NewEnvironment(v, campaign.ModeInjection)
	if err != nil {
		log.Fatal(err)
	}
	// Injection-mode environments already carry the state injector;
	// registering it a second time would collide on the hypercall slot.
	sc := e.State
	switch m.Name {
	case "grant-status-leak":
		leaked, err := sc.KeepPageAccess()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("injected: %s retains hypervisor frame %#x\n", e.Attacker.Hostname(), uint64(leaked))
	case "interrupt-flood":
		victim := e.Guests[1]
		if err := sc.InterruptFlood(victim.Domain().ID(), 0, 500); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("injected: 500 unsolicited events pending on %s\n", victim.Hostname())
	case "hang-state":
		if err := sc.HangState(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("injected: hypervisor wedged in a non-terminating handler")
	case "fatal-exception":
		if err := sc.FatalException("arch/x86/mm.c:1337"); err != nil {
			log.Fatal(err)
		}
		fmt.Println("injected: fatal assertion reached")
	default:
		log.Fatalf("no driver for extension model %q", m.Name)
	}
	fmt.Println("\nhealth probe:")
	fmt.Print(monitor.Probe(e.HV, e.Guests).Summary())
}
