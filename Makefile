# Build/verify/benchmark targets for the reproduction.
#
# `race` is mandatory in CI now that the campaign engine runs cells on
# a goroutine worker pool. `bench` tracks the campaign-matrix perf
# trajectory across PRs by emitting BENCH_matrix.json (test2json
# stream of `go test -bench -benchmem` over the anchored
# $(MATRIX_BENCHES) set). `trace-demo` generates a one-cell JSONL trace and asserts it
# is non-empty, parseable and carries the expected event families.
# `chaos` runs the fault-injection suite under the race detector (the
# chaos tests exercise panic recovery, watchdog abandonment and
# cancellation across worker pools — exactly where races would hide)
# and then drives a seeded full-matrix chaos run through the CLI.
# `equivalence` runs the RQ2 trace-equivalence engine over the full
# matrix; any cell whose injection trace diverges from its
# exploit-induced basis fails the build. `bench` additionally emits
# BENCH_obs.json (the MatrixTelemetry off/on/server sub-benchmarks) so
# the -listen overhead is tracked alongside the telemetry overhead, and
# BENCH_snapshot.json (BootEnvironment vs SnapshotBuild vs CellFork) so
# the snapshot/COW fork path's per-cell cost is tracked next to the
# full boot it replaces. `benchdiff` is the CI regression gate: it
# re-runs the tracked benchmarks and fails if any grew past 2x its
# committed baseline.
# `spans` runs the causal-span suite — every opened span closed exactly
# once (including under chaos), the canonical forest digest and RQ3
# detection latencies pinned — then drives a full -spans matrix through
# the CLI, checks the summary carries the critical path and the RQ3
# table, and validates the Perfetto trace with `tracecheck spans`. The
# trace (spans-demo.json) is left behind for CI to attach on failure.
# `lint-scenarios` is the registry gate: the scenario-registry
# invariants, lookup pins and corpus-distribution goldens — cheap, so it
# runs before the expensive campaign gates and fails fast on a
# malformed registry entry.
# `cover-matrix` is the coverage determinism gate: it runs the full
# 102-cell matrix with -coverage at 4 workers, self-verifies the report,
# and diffs it against the committed COVERAGE_matrix.json baseline —
# any new or lost hypervisor behaviour edge fails the build with the
# edge named and the cell that first witnessed it (cov-diff.txt is left
# behind for CI to attach on failure).
# `ledger-diff` is the run-record regression gate: it journals a fresh
# full matrix into ledger-ci/ and diffs the settled record against the
# committed LEDGER_baseline.json with `tracecheck runs diff` — a verdict
# flip or a lost coverage edge fails the build (tier changes and drift
# are reported but pass). ledger-diff.txt and the ledger-ci/ record
# directory are left behind for CI to attach on failure.
# `ledger-baseline` regenerates LEDGER_baseline.json after an
# intentional behaviour change (review the runs diff first).
# `stream-demo` is the live-observability gate: the event-bus suite
# (slow-consumer drops, Last-Event-ID replay, SSE shutdown drain) runs
# under the race detector, then a full matrix writes the wall schedule
# (sched-demo.json, Perfetto-loadable) and its occupancy summary, which
# `tracecheck sched` re-validates lane by lane. Both artifacts are left
# behind for CI to attach on failure.

GO ?= go

# Anchored benchmark patterns, shared by `bench` and `benchdiff` so the
# artifacts and the regression gate always track the same set. The old
# bare `-bench Matrix` substring silently swept in every benchmark with
# "Matrix" anywhere in its name — any future BenchmarkFooMatrix would
# have joined the committed baseline unreviewed.
MATRIX_BENCHES   = ^BenchmarkFullMatrix$$|^BenchmarkMatrixParallel$$|^BenchmarkMatrixTelemetry$$
OBS_BENCHES      = ^BenchmarkMatrixTelemetry$$
SNAPSHOT_BENCHES = ^BenchmarkBootEnvironment$$|^BenchmarkSnapshotBuild$$|^BenchmarkCellFork$$

.PHONY: all build test race vet bench benchdiff check trace-demo chaos equivalence spans lint-scenarios cover-matrix ledger-diff ledger-baseline stream-demo clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench '$(MATRIX_BENCHES)' -benchmem -json . > BENCH_matrix.json
	@grep -o '"Output":"[^"]*ns/op[^"]*' BENCH_matrix.json | sed 's/"Output":"//;s/\\t/  /g;s/\\n//'
	@echo "wrote BENCH_matrix.json"
	$(GO) test -run '^$$' -bench '$(OBS_BENCHES)' -benchmem -json . > BENCH_obs.json
	@echo "wrote BENCH_obs.json"
	$(GO) test -run '^$$' -bench '$(SNAPSHOT_BENCHES)' -benchmem -json . > BENCH_snapshot.json
	@grep -o '"Output":"[^"]*ns/op[^"]*' BENCH_snapshot.json | sed 's/"Output":"//;s/\\t/  /g;s/\\n//'
	@echo "wrote BENCH_snapshot.json"

# The regression gate: re-run the tracked benchmarks and compare them
# against the committed baselines. The thresholds are deliberately
# coarse (2x) — the gate exists to catch structural regressions (e.g.
# losing the snapshot fork path puts FullMatrix ~9x over its baseline),
# not scheduler noise between runner machines.
benchdiff:
	$(GO) test -run '^$$' -bench '$(MATRIX_BENCHES)' -benchmem -json . > BENCH_matrix.new.json
	$(GO) run ./cmd/benchdiff -threshold 2.0 BENCH_matrix.json BENCH_matrix.new.json
	$(GO) test -run '^$$' -bench '$(SNAPSHOT_BENCHES)' -benchmem -json . > BENCH_snapshot.new.json
	$(GO) run ./cmd/benchdiff -threshold 2.0 BENCH_snapshot.json BENCH_snapshot.new.json
	@rm -f BENCH_matrix.new.json BENCH_snapshot.new.json

trace-demo:
	$(GO) run ./cmd/repro -cell 4.6/XSA-148-priv/injection -trace trace-demo.jsonl > /dev/null
	$(GO) run ./cmd/tracecheck trace-demo.jsonl

chaos:
	$(GO) test -race ./internal/faults/
	$(GO) test -race -run 'Chaos|Panic|Watchdog|Cancel' ./internal/campaign/
	$(GO) run ./cmd/repro -matrix -chaos 7 -continue-on-error -workers 4 > /dev/null

equivalence:
	$(GO) run ./cmd/repro -equivalence -workers 4

spans:
	$(GO) test ./internal/span/
	$(GO) test -run 'Span|Latency' ./internal/campaign/ ./internal/tracediff/ ./internal/obs/ ./internal/report/
	$(GO) run ./cmd/repro -matrix -workers 4 -spans spans-demo.json > spans-summary.txt
	@grep -q 'CAUSAL SPAN SUMMARY' spans-summary.txt
	@grep -q 'critical path: makespan=' spans-summary.txt
	@grep -q 'DETECTION LATENCY (RQ3)' spans-summary.txt
	$(GO) run ./cmd/tracecheck spans spans-demo.json

lint-scenarios:
	$(GO) test -run 'Registry|SpecNames|ScenarioLookup|ScenariosMatch|Seed' ./internal/exploits/ ./internal/campaign/
	$(GO) test -run 'Corpus' ./internal/fieldstudy/ ./internal/report/

# The coverage gate deliberately preserves tracecheck's exit code while
# still echoing the diff into cov-diff.txt for the CI artifact upload.
cover-matrix:
	$(GO) run ./cmd/repro -matrix -workers 4 -coverage cov-matrix.json > /dev/null
	$(GO) run ./cmd/tracecheck cov cov-matrix.json
	@$(GO) run ./cmd/tracecheck cov COVERAGE_matrix.json cov-matrix.json > cov-diff.txt 2>&1; rc=$$?; cat cov-diff.txt; exit $$rc

# The ledger gate mirrors cover-matrix's artifact discipline: the diff
# output lands in ledger-diff.txt and the fresh run's record directory
# stays in ledger-ci/ for the CI upload, while tracecheck's exit code
# is preserved.
ledger-diff:
	rm -rf ledger-ci
	$(GO) run ./cmd/repro -matrix -workers 4 -ledger ledger-ci > /dev/null
	@$(GO) run ./cmd/tracecheck runs diff LEDGER_baseline.json ledger-ci > ledger-diff.txt 2>&1; rc=$$?; cat ledger-diff.txt; exit $$rc

stream-demo:
	$(GO) test -race ./internal/events/
	$(GO) test -race -run 'Events|Stream|Sched' ./internal/obs/ ./internal/campaign/
	$(GO) run ./cmd/repro -matrix -workers 4 -schedule sched-demo.json > sched-summary.txt
	@grep -q 'WALL SCHEDULE SUMMARY' sched-summary.txt
	@grep -q 'utilization:' sched-summary.txt
	@grep -q 'wall critical path:' sched-summary.txt
	$(GO) run ./cmd/tracecheck sched sched-demo.json

ledger-baseline:
	rm -rf ledger-ci
	$(GO) run ./cmd/repro -matrix -workers 4 -ledger ledger-ci > /dev/null
	cp ledger-ci/*/record.json LEDGER_baseline.json
	@echo "wrote LEDGER_baseline.json"

check: build vet lint-scenarios test race chaos equivalence spans stream-demo cover-matrix ledger-diff

clean:
	rm -f BENCH_matrix.json BENCH_obs.json BENCH_snapshot.json trace-demo.jsonl flight-*.jsonl spans-demo.json spans-summary.txt
	rm -f BENCH_matrix.new.json BENCH_snapshot.new.json cov-matrix.json cov-diff.txt ledger-diff.txt
	rm -f sched-demo.json sched-summary.txt
	rm -rf ledger-ci
	$(GO) clean ./...
