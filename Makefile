# Build/verify/benchmark targets for the reproduction.
#
# `race` is mandatory in CI now that the campaign engine runs cells on
# a goroutine worker pool. `bench` tracks the campaign-matrix perf
# trajectory across PRs by emitting BENCH_matrix.json (test2json
# stream of `go test -bench Matrix -benchmem`).

GO ?= go

.PHONY: all build test race vet bench check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench Matrix -benchmem -json . > BENCH_matrix.json
	@grep -o '"Output":"[^"]*ns/op[^"]*' BENCH_matrix.json | sed 's/"Output":"//;s/\\t/  /g;s/\\n//'
	@echo "wrote BENCH_matrix.json"

check: build vet test race

clean:
	rm -f BENCH_matrix.json
	$(GO) clean ./...
