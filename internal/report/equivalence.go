package report

import (
	"fmt"
	"strings"

	"repro/internal/tracediff"
)

// TraceEquivalence renders the RQ2 trace-equivalence verdicts as a
// table alongside Table III: one row per (scenario, version) cell,
// showing the verdict tier, the comparison basis and the compared
// effect-stream sizes. Divergent cells append their first-divergence
// evidence below the row, so the table carries everything needed to
// start an investigation.
func TraceEquivalence(verdicts []tracediff.CellVerdict) string {
	var b strings.Builder
	b.WriteString("TRACE EQUIVALENCE (RQ2): exploit-induced vs injected state, event level\n")
	b.WriteString(rule(88) + "\n")
	b.WriteString(fmt.Sprintf("%-8s %-16s %-24s %-24s %s\n",
		"Version", "Use Case", "Verdict", "Basis", "Events"))
	b.WriteString(rule(88) + "\n")
	equivalent := 0
	for _, cv := range verdicts {
		basis := string(cv.Basis)
		if cv.RefVersion != "" {
			basis += " (" + cv.RefVersion + ")"
		}
		b.WriteString(fmt.Sprintf("%-8s %-16s %-24s %-24s %d/%d\n",
			cv.Version, cv.UseCase, cv.Tier, basis, cv.BaseEvents, cv.InjectionEvents))
		if cv.Equivalent() {
			equivalent++
			continue
		}
		if d := cv.Divergence; d != nil {
			b.WriteString(fmt.Sprintf("  first divergence at effect index %d:\n", d.Index))
			b.WriteString("    base:      " + d.A + "\n")
			b.WriteString("    injection: " + d.B + "\n")
		}
	}
	b.WriteString(rule(88) + "\n")
	b.WriteString(fmt.Sprintf("%d/%d cells trace-equivalent\n", equivalent, len(verdicts)))
	return b.String()
}
