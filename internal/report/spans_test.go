package report

import (
	"strings"
	"testing"

	"repro/internal/span"
)

// summaryForest builds a two-cell forest with known virtual costs: one
// clean cell with a measured latency, one failed cell without.
func summaryForest() *span.Forest {
	c := span.NewCollector()
	c.StartBatch([]string{"a", "b"})
	mk := func(id string, boot, inject uint64) *span.CellSpans {
		v := new(uint64)
		tr := span.NewTree(id, func() uint64 { return *v })
		p := tr.Phase(span.PhaseBoot)
		*v = boot
		tr.End(p)
		p = tr.Phase(span.PhaseInject)
		*v = boot + inject
		tr.End(p)
		tr.Finish()
		return &span.CellSpans{Cell: id, Tree: tr}
	}
	a := mk("a", 10, 5)
	a.Latency = span.Latency{Found: true, TriggerV: 15, EvidenceV: 18, Events: 3}
	c.FinishCell(a)
	b := mk("b", 20, 7)
	b.Class = "error"
	c.FinishCell(b)
	return c.Forest()
}

func TestSpanSummaryRendering(t *testing.T) {
	s := SpanSummary(summaryForest(), 2)
	for _, want := range []string{
		"CAUSAL SPAN SUMMARY (virtual time, events)",
		"Phase",
		"boot 30",   // 10 + 20, column-collapsed below
		"inject 12", // 5 + 7
		"batch01: 2 cells, workers=2",
		"critical path: makespan=27 total=42 efficiency=0.778",
		"Cell (critical chain)",
		"DETECTION LATENCY (RQ3)",
	} {
		// Table rows are fixed-width; compare with whitespace collapsed
		// so the assertion survives column re-padding.
		if !strings.Contains(collapse(s), collapse(want)) {
			t.Errorf("span summary missing %q:\n%s", want, s)
		}
	}
	// Cell a carries its measured latency row; cell b renders dashes.
	if !strings.Contains(collapse(s), "a 15 18 3") {
		t.Errorf("summary missing cell a's latency row:\n%s", s)
	}
	if !strings.Contains(collapse(s), "b - - -") {
		t.Errorf("summary missing cell b's dashed latency row:\n%s", s)
	}
	// The critical chain at two workers is the heavier cell alone.
	if !strings.Contains(collapse(s), "b 27 20 7") {
		t.Errorf("summary missing the critical chain row for b:\n%s", s)
	}
}

func TestSpanSummaryEmptyForest(t *testing.T) {
	s := SpanSummary(&span.Forest{}, 4)
	if !strings.Contains(s, "no spans collected") {
		t.Errorf("empty-forest summary = %q", s)
	}
}

// collapse folds runs of whitespace to single spaces for fixed-width
// table assertions.
func collapse(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
