package report

import (
	"fmt"
	"strings"

	"repro/internal/fieldstudy"
)

// Corpus renders the implemented-corpus distribution: how the scenario
// registry's campaign cells spread over the hypercall-interface
// families and over Table I's functionality classes.
func Corpus(c fieldstudy.Corpus) string {
	var b strings.Builder
	b.WriteString("SCENARIO CORPUS: registry distribution over interface families\n")
	b.WriteString(rule(72) + "\n")
	b.WriteString(fmt.Sprintf("%-18s %9s %6s  %s\n", "Family", "Scenarios", "Cells", "Abusive Functionalities"))
	b.WriteString(rule(72) + "\n")
	for _, row := range c.Rows {
		names := make([]string, 0, len(row.Functionalities))
		for _, f := range row.Functionalities {
			names = append(names, f.String())
		}
		b.WriteString(fmt.Sprintf("%-18s %9d %6d  %s\n",
			row.Family, row.Scenarios, row.Cells, strings.Join(names, ", ")))
	}
	b.WriteString(rule(72) + "\n")
	b.WriteString("By Table I functionality class:\n")
	for _, cc := range c.Classes {
		b.WriteString(fmt.Sprintf("  %-34s %2d scenario(s) %3d cell(s)\n",
			cc.Class, cc.Scenarios, cc.Cells))
	}
	b.WriteString(rule(72) + "\n")
	b.WriteString(fmt.Sprintf("Total: %d scenarios, %d campaign cells\n", c.Scenarios, c.Cells))
	return b.String()
}
