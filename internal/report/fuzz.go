package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/campaign"
)

// distributionLine renders a Distribution in a stable class order.
func distributionLine(d campaign.Distribution) string {
	classes := make([]campaign.OutcomeClass, 0, len(d))
	for c := range d {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%s=%d", c, d[c]))
	}
	return strings.Join(parts, "  ")
}

// BaselineComparison renders the randomized-injection vs hypercall-
// attack-injection comparison: the quantified version of the paper's
// coverage argument.
func BaselineComparison(cmp *campaign.BaselineComparison) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("RANDOMIZED CAMPAIGNS ON XEN %s (%d trials each)\n", cmp.Version, cmp.Trials))
	b.WriteString(rule(76) + "\n")
	b.WriteString(fmt.Sprintf("%-22s %s\n", "intrusion injection:", distributionLine(cmp.Injection)))
	b.WriteString(fmt.Sprintf("%-22s %s\n", "hypercall baseline:", distributionLine(cmp.Baseline)))
	b.WriteString(rule(76) + "\n")
	inj := cmp.Injection.ErroneousStates()
	base := cmp.Baseline.ErroneousStates()
	b.WriteString(fmt.Sprintf("erroneous states reached: injection %d/%d, baseline %d/%d\n",
		inj, cmp.Injection.Total(), base, cmp.Baseline.Total()))
	switch {
	case base == 0 && inj > 0:
		b.WriteString("the legitimate interface rejects malformed input; only injection\n")
		b.WriteString("drives the system into the post-intrusion states under assessment.\n")
	case inj > base:
		b.WriteString("injection reaches strictly more erroneous states than interface attack.\n")
	}
	return b.String()
}

// Scoreboard renders the per-version security benchmark (the aggregate
// the paper's conclusions propose building on intrusion injection).
func Scoreboard(scores []campaign.Score) string {
	var b strings.Builder
	b.WriteString("SECURITY BENCHMARK: intrusion handling per version\n")
	b.WriteString(rule(76) + "\n")
	b.WriteString(fmt.Sprintf("%-10s %-8s %-11s %-8s %s\n",
		"Version", "States", "Violations", "Handled", "Resilience"))
	b.WriteString(rule(76) + "\n")
	best := -1.0
	bestVersion := ""
	for _, s := range scores {
		b.WriteString(fmt.Sprintf("Xen %-6s %-8d %-11d %-8d %.2f\n",
			s.Version, s.StatesInjected, s.Violations, s.Handled, s.Resilience()))
		if s.Resilience() > best {
			best = s.Resilience()
			bestVersion = s.Version
		}
	}
	b.WriteString(rule(76) + "\n")
	if bestVersion != "" && best > 0 {
		b.WriteString(fmt.Sprintf("Xen %s tolerates the largest share of injected intrusion effects.\n", bestVersion))
	}
	return b.String()
}

// Availability renders the availability-under-injection experiment.
func Availability(rows []campaign.AvailabilityRow) string {
	var b strings.Builder
	if len(rows) == 0 {
		return "AVAILABILITY UNDER INJECTION: no rows\n"
	}
	b.WriteString(fmt.Sprintf("AVAILABILITY UNDER INJECTION: bystander guest workload on Xen %s\n", rows[0].Version))
	b.WriteString(rule(76) + "\n")
	b.WriteString(fmt.Sprintf("%-16s %-10s %-12s %s\n", "Use Case", "Injected", "Completion", "Note"))
	b.WriteString(rule(76) + "\n")
	for _, r := range rows {
		note := ""
		if r.Stopped {
			note = r.StopReason
		}
		b.WriteString(fmt.Sprintf("%-16s %-10s %-12.2f %s\n", r.UseCase, mark(r.Injected), r.VictimCompletion, note))
	}
	b.WriteString(rule(76) + "\n")
	return b.String()
}
