package report

import (
	"fmt"
	"strings"

	"repro/internal/telemetry"
)

// MetricsSummary renders the campaign-wide telemetry registry: every
// aggregated counter, then every histogram with count/min/mean/max and
// its nonempty power-of-two buckets. Counter aggregates are
// order-independent sums, so the counter section is deterministic at
// any worker count; the wall-time histogram is not and says so.
func MetricsSummary(reg *telemetry.Registry) string {
	var b strings.Builder
	b.WriteString("CAMPAIGN TELEMETRY SUMMARY\n")
	b.WriteString(rule(64) + "\n")
	counters := reg.Snapshot()
	if len(counters) == 0 {
		b.WriteString("no telemetry recorded (was the campaign run with -metrics or -trace?)\n")
		return b.String()
	}
	b.WriteString(fmt.Sprintf("%-40s %s\n", "Counter", "Value"))
	b.WriteString(rule(64) + "\n")
	for _, cv := range counters {
		b.WriteString(fmt.Sprintf("%-40s %d\n", cv.Name, cv.Value))
	}
	for _, h := range reg.Histograms() {
		b.WriteString(rule(64) + "\n")
		b.WriteString(fmt.Sprintf("%s: count=%d min=%d mean=%d p50=%d p99=%d max=%d",
			h.Name, h.Count, h.Min, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max))
		if h.Name == telemetry.CellWallHistogram {
			b.WriteString(" (wall times; not deterministic)")
		}
		b.WriteString("\n")
		for _, bk := range h.Buckets {
			b.WriteString(fmt.Sprintf("  le %-14d %d\n", bk.UpperBound, bk.Count))
		}
	}
	b.WriteString(rule(64) + "\n")
	return b.String()
}
