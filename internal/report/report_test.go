package report

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/fieldstudy"
	"repro/internal/hv"
	"repro/internal/inject"
)

func TestTableIRendering(t *testing.T) {
	table := fieldstudy.Classify(fieldstudy.Dataset())
	s := TableI(table)
	for _, want := range []string{
		"TABLE I",
		"Memory Access – 35 CVEs",
		"Memory Management – 40 CVEs",
		"Exceptional Conditions – 11 CVEs",
		"Non-Memory Related – 22 CVEs",
		"Keep Page Access",
		"11",
		"Induce a Hang State",
		"20",
		"synthesized",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q:\n%s", want, s)
		}
	}
}

func TestTableIIRendering(t *testing.T) {
	s := TableII(inject.UseCaseModels())
	for _, want := range []string{
		"XSA-212-crash    Write Arbitrary Memory",
		"XSA-212-priv     Write Arbitrary Memory",
		"XSA-148-priv     Write Page Table Entries",
		"XSA-182-test     Write Page Table Entries",
		"unprivileged guest",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table II missing %q:\n%s", want, s)
		}
	}
}

func TestTableIIIRendering(t *testing.T) {
	rows := []campaign.Table3Row{
		{UseCase: "XSA-212-priv", Cells: map[string]campaign.Table3Cell{
			"4.8":  {ErrState: true, SecViol: true},
			"4.13": {ErrState: true, SecViol: false},
		}},
		{UseCase: "XSA-000-none", Cells: map[string]campaign.Table3Cell{
			"4.8":  {ErrState: false, SecViol: false},
			"4.13": {ErrState: false, SecViol: false},
		}},
	}
	s := TableIII(rows, []string{"4.8", "4.13"})
	if !strings.Contains(s, "✓") {
		t.Error("no checkmarks rendered")
	}
	if !strings.Contains(s, "\U0001F6E1") {
		t.Error("no shield rendered for the handled state")
	}
	if !strings.Contains(s, "XSA-212-priv") {
		t.Errorf("row missing:\n%s", s)
	}
}

func TestFig1AndFig2AreConceptDiagrams(t *testing.T) {
	f1 := Fig1()
	for _, want := range []string{"attack", "vulnerability", "intrusion", "erroneous state", "security"} {
		if !strings.Contains(f1, want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}
	f2 := Fig2()
	for _, want := range []string{"intrusion model", "injector", "erroneous state", "monitoring"} {
		if !strings.Contains(f2, want) {
			t.Errorf("Fig2 missing %q", want)
		}
	}
}

func TestFig3ExecutesEquivalenceCheck(t *testing.T) {
	s := Fig3(inject.GuestWritablePageTableEntry)
	for _, want := range []string{
		"internal view",
		"abstract view",
		"vulnerability activation",
		"Guest-Writable Page Table Entry",
		"equivalence (both reach the erroneous state): true",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig3 missing %q:\n%s", want, s)
		}
	}
}

func TestFig4Rendering(t *testing.T) {
	rows, err := campaign.RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	s := Fig4(rows)
	if strings.Contains(s, "DIFFER") {
		t.Errorf("Fig4 shows a mismatch:\n%s", s)
	}
	for _, want := range []string{"XSA-212-crash", "XSA-148-priv", "match"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig4 missing %q:\n%s", want, s)
		}
	}
}

func TestMatrixRendering(t *testing.T) {
	res, err := campaign.Run(hv.Version48(), "XSA-212-crash", campaign.ModeExploit)
	if err != nil {
		t.Fatal(err)
	}
	s := Matrix([]campaign.MatrixEntry{{
		Version: "4.8", UseCase: "XSA-212-crash", Mode: campaign.ModeExploit, Result: res,
	}})
	if !strings.Contains(s, "PoC failed") {
		t.Errorf("matrix does not note the failed PoC:\n%s", s)
	}
}

func TestTranscriptRendering(t *testing.T) {
	res, err := campaign.Run(hv.Version46(), "XSA-212-crash", campaign.ModeExploit)
	if err != nil {
		t.Fatal(err)
	}
	s := Transcript(res, []string{"(XEN) line one", "(XEN) Panic on CPU 0:"})
	for _, want := range []string{"attacker terminal", "hypervisor console", "monitor verdict", "Panic on CPU 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("transcript missing %q:\n%s", want, s)
		}
	}
}

func TestBaselineComparisonRendering(t *testing.T) {
	cmp, err := campaign.CompareWithBaseline(hv.Version413(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := BaselineComparison(cmp)
	for _, want := range []string{"RANDOMIZED CAMPAIGNS", "intrusion injection:", "hypercall baseline:", "erroneous states reached"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestScoreboardRendering(t *testing.T) {
	scores := []campaign.Score{
		{Version: "4.6", StatesInjected: 4, Violations: 4},
		{Version: "4.13", StatesInjected: 4, Violations: 2, Handled: 2},
	}
	s := Scoreboard(scores)
	for _, want := range []string{"SECURITY BENCHMARK", "Xen 4.6", "Xen 4.13", "0.50", "largest share"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}
