package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/span"
)

// phaseColumns orders the per-phase breakdown columns: the lifecycle
// order first, then anything unexpected alphabetically.
func phaseColumns(f *span.Forest) []string {
	known := []string{span.PhaseBoot, span.PhaseExploit, span.PhaseInject, span.PhaseAssess}
	seen := f.PhaseTotals()
	var cols []string
	for _, p := range known {
		if _, ok := seen[p]; ok {
			cols = append(cols, p)
			delete(seen, p)
		}
	}
	var rest []string
	for p := range seen {
		rest = append(rest, p)
	}
	sort.Strings(rest)
	return append(cols, rest...)
}

// SpanSummary renders the campaign's span forest: campaign-wide phase
// totals, the deterministic critical-path analysis of every batch at
// the given pool size, and the per-cell detection-latency table (RQ3).
// Everything in it is measured in virtual time (events), so the output
// is byte-identical at any worker count and golden-pinnable.
func SpanSummary(f *span.Forest, workers int) string {
	var b strings.Builder
	b.WriteString("CAUSAL SPAN SUMMARY (virtual time, events)\n")
	b.WriteString(rule(72) + "\n")
	cells := f.Cells()
	if len(cells) == 0 {
		b.WriteString("no spans collected (was the campaign run with -spans?)\n")
		return b.String()
	}

	cols := phaseColumns(f)
	totals := f.PhaseTotals()
	b.WriteString(fmt.Sprintf("%-40s %s\n", "Phase", "Total"))
	b.WriteString(rule(72) + "\n")
	for _, p := range cols {
		b.WriteString(fmt.Sprintf("%-40s %d\n", p, totals[p]))
	}

	for bi := range f.Batches {
		batch := &f.Batches[bi]
		cp := span.AnalyzeCriticalPath(batch, workers)
		b.WriteString(rule(72) + "\n")
		b.WriteString(fmt.Sprintf("%s: %d cells, workers=%d\n", batch.Name, len(batch.Cells), cp.Workers))
		b.WriteString(fmt.Sprintf("critical path: makespan=%d total=%d efficiency=%.3f\n",
			cp.MakespanV, cp.TotalV, cp.Efficiency))
		header := fmt.Sprintf("%-36s %8s", "Cell (critical chain)", "total")
		for _, p := range cols {
			header += fmt.Sprintf(" %8s", p)
		}
		b.WriteString(header + "\n")
		for _, cc := range cp.Chain {
			row := fmt.Sprintf("%-36s %8d", cc.Cell, cc.TotalV)
			for _, p := range cols {
				row += fmt.Sprintf(" %8d", cc.PhaseV[p])
			}
			b.WriteString(row + "\n")
		}
	}

	b.WriteString(rule(72) + "\n")
	b.WriteString("DETECTION LATENCY (RQ3)\n")
	b.WriteString(fmt.Sprintf("%-36s %10s %10s %8s\n", "Cell", "trigger_v", "evidence_v", "latency"))
	b.WriteString(rule(72) + "\n")
	for _, cs := range cells {
		if !cs.Latency.Found {
			b.WriteString(fmt.Sprintf("%-36s %10s %10s %8s\n", cs.Cell, "-", "-", "-"))
			continue
		}
		b.WriteString(fmt.Sprintf("%-36s %10d %10d %8d\n",
			cs.Cell, cs.Latency.TriggerV, cs.Latency.EvidenceV, cs.Latency.Events))
	}
	b.WriteString(rule(72) + "\n")
	return b.String()
}
