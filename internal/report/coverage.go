package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/coverage"
)

// CoverageSummary renders the campaign's coverage report: the union
// size with its digest, edge counts per hypervisor version, and the
// exploit-vs-injection shared/unique edge table — the direct RQ1
// readout (does injection exercise the same hypervisor paths as the
// real exploit?).
func CoverageSummary(rep *coverage.Report) string {
	var b strings.Builder
	b.WriteString("COVERAGE MAP: deterministic hypervisor behaviour edges\n")
	b.WriteString(rule(78) + "\n")
	b.WriteString(fmt.Sprintf("union: %d edges across %d cells, digest %s\n",
		rep.TotalEdges, len(rep.Cells), rep.Digest))
	for _, f := range rep.Families {
		b.WriteString(fmt.Sprintf("  %-12s %d\n", f.Family, f.Edges))
	}

	// Per-version union sizes: how much of the edge space each build
	// profile exposes.
	type modeEdges map[string]map[string]bool // mode → edge set
	perVersion := make(map[string]map[string]bool)
	perCell := make(map[string]modeEdges) // "version/use-case" → mode → edges
	var versions, pairs []string
	for _, c := range rep.Cells {
		parts := strings.Split(c.Cell, "/")
		if len(parts) != 3 {
			continue
		}
		version, useCase, mode := parts[0], parts[1], parts[2]
		if perVersion[version] == nil {
			perVersion[version] = make(map[string]bool)
			versions = append(versions, version)
		}
		pair := version + "/" + useCase
		if perCell[pair] == nil {
			perCell[pair] = make(modeEdges)
			pairs = append(pairs, pair)
		}
		set := make(map[string]bool, len(c.Edges))
		for _, e := range c.Edges {
			key := string(e.Family) + "/" + e.Name
			set[key] = true
			perVersion[version][key] = true
		}
		perCell[pair][mode] = set
	}
	b.WriteString(rule(78) + "\n")
	b.WriteString("edges per version:\n")
	for _, v := range versions {
		b.WriteString(fmt.Sprintf("  %-8s %d\n", v, len(perVersion[v])))
	}

	b.WriteString(rule(78) + "\n")
	b.WriteString("exploit vs injection (RQ1): shared and unique edges per scenario cell\n")
	b.WriteString(fmt.Sprintf("%-8s %-16s %7s %7s %7s %7s %7s\n",
		"Version", "Use Case", "Exploit", "Inject", "Shared", "Union", "Jaccard"))
	sort.Strings(pairs)
	for _, pair := range pairs {
		modes := perCell[pair]
		ex, in := modes["exploit"], modes["injection"]
		if ex == nil || in == nil {
			continue
		}
		shared := 0
		for e := range ex {
			if in[e] {
				shared++
			}
		}
		union := len(ex) + len(in) - shared
		slash := strings.IndexByte(pair, '/')
		b.WriteString(fmt.Sprintf("%-8s %-16s %7d %7d %7d %7d %7.2f\n",
			pair[:slash], pair[slash+1:], len(ex), len(in), shared, union,
			float64(shared)/float64(union)))
	}
	b.WriteString(rule(78) + "\n")
	return b.String()
}
