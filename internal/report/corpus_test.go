package report_test

import (
	"strings"
	"testing"

	"repro/internal/exploits"
	"repro/internal/fieldstudy"
	"repro/internal/report"
)

// TestCorpusRendering pins the corpus-distribution report over the live
// registry: every family row, the Table I class split, and the totals
// line the CLI's -corpus output ends with.
func TestCorpusRendering(t *testing.T) {
	out := report.Corpus(fieldstudy.CorpusOf(exploits.Specs()))
	for _, want := range []string{
		"SCENARIO CORPUS: registry distribution over interface families",
		"memory-exchange            5     30  Write Unauthorized Arbitrary Memory",
		"page-table                 2     12  Guest-Writable Page Table Entry",
		"grant-table                3     18  Keep Page Access",
		"event-channel              3     18  Uncontrolled Arbitrary Interrupts Requests",
		"domctl                     4     24  Induce a Hang State, Decrease Page Mapping Availability, Read Unauthorized Memory",
		"By Table I functionality class:",
		"Memory Access                       6 scenario(s)  36 cell(s)",
		"Exceptional Conditions              0 scenario(s)   0 cell(s)",
		"Total: 17 scenarios, 102 campaign cells",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("corpus report missing %q:\n%s", want, out)
		}
	}
}
