// Package report renders the paper's tables and figures as text, so the
// repro binary regenerates each artifact from live experiment results.
package report

import (
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/fieldstudy"
	"repro/internal/inject"
)

// Marks used in rendered tables. The paper prints a checkmark for a
// correctly induced property and a shield for an erroneous state the
// system handled.
const (
	markYes    = "✓"          // ✓
	markShield = "\U0001F6E1" // 🛡
	markNo     = "-"
)

func rule(width int) string { return strings.Repeat("-", width) }

// TableI renders the abusive-functionality classification.
func TableI(t fieldstudy.TableI) string {
	var b strings.Builder
	b.WriteString("TABLE I: ABUSIVE FUNCTIONALITIES OBTAINED FROM ACTIVATING XEN VULNERABILITIES\n")
	b.WriteString(fmt.Sprintf("(%d CVEs classified, %d functionality assignments)\n", t.TotalCVEs, t.TotalAssignments))
	b.WriteString(rule(64) + "\n")
	for _, cs := range t.Classes {
		b.WriteString(fmt.Sprintf("%s – %d CVEs\n", cs.Class, cs.CVECount))
		for _, row := range cs.Rows {
			note := ""
			if row.Synthesized {
				note = " *"
			}
			b.WriteString(fmt.Sprintf("  %-46s %02d%s\n", row.Functionality, row.Assignments, note))
		}
		b.WriteString(rule(64) + "\n")
	}
	b.WriteString("* split not published in the paper; synthesized (class totals exact)\n")
	return b.String()
}

// TableII renders the use case -> abusive functionality mapping.
func TableII(models []inject.IntrusionModel) string {
	var b strings.Builder
	b.WriteString("TABLE II: USE CASES AND ABUSIVE FUNCTIONALITIES\n")
	b.WriteString(rule(64) + "\n")
	b.WriteString(fmt.Sprintf("%-16s %s\n", "Use Case", "Abusive Functionality"))
	b.WriteString(rule(64) + "\n")
	for _, m := range models {
		name := m.Functionality.String()
		// The paper's Table II abbreviates the two long names.
		switch m.Functionality {
		case inject.WriteArbitraryMemory:
			name = "Write Arbitrary Memory"
		case inject.GuestWritablePageTableEntry:
			name = "Write Page Table Entries"
		}
		b.WriteString(fmt.Sprintf("%-16s %s\n", m.Name, name))
	}
	b.WriteString(rule(64) + "\n")
	b.WriteString("Instantiation: an unprivileged guest VM using a hypercall against\n")
	b.WriteString("the memory management component of the virtualization layer.\n")
	return b.String()
}

// TableIII renders the injection-campaign results on the non-vulnerable
// versions, with the paper's checkmark/shield notation.
func TableIII(rows []campaign.Table3Row, versions []string) string {
	var b strings.Builder
	b.WriteString("TABLE III: INJECTION CAMPAIGN IN NON-VULNERABLE VERSIONS\n")
	b.WriteString("(✓ = property correctly induced; \U0001F6E1 = erroneous state handled by the system)\n")
	b.WriteString(rule(72) + "\n")
	b.WriteString(fmt.Sprintf("%-16s", "Use Case"))
	for _, v := range versions {
		b.WriteString(fmt.Sprintf(" | Xen %-5s Err.State Sec.Viol.", v))
	}
	b.WriteString("\n" + rule(72) + "\n")
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-16s", r.UseCase))
		for _, v := range versions {
			cell := r.Cells[v]
			err := markNo
			if cell.ErrState {
				err = markYes
			}
			viol := markNo
			if cell.SecViol {
				viol = markYes
			} else if cell.ErrState {
				viol = markShield
			}
			b.WriteString(fmt.Sprintf(" |      %-6s %-9s %-9s", "", err, viol))
		}
		b.WriteString("\n")
	}
	b.WriteString(rule(72) + "\n")
	return b.String()
}

// Matrix renders the full campaign (all versions, modes and use cases),
// the superset view covering Sections VI and VII.
func Matrix(entries []campaign.MatrixEntry) string {
	var b strings.Builder
	b.WriteString("FULL CAMPAIGN MATRIX: version x use case x mode\n")
	b.WriteString(rule(78) + "\n")
	b.WriteString(fmt.Sprintf("%-8s %-16s %-10s %-10s %-10s %s\n",
		"Version", "Use Case", "Mode", "Err.State", "Sec.Viol.", "Note"))
	b.WriteString(rule(78) + "\n")
	for _, e := range entries {
		// Cells that failed under a ContinueOnError campaign carry an
		// error record instead of a result; render the classification
		// in place of the verdict marks.
		if e.Result == nil {
			note := "cell failed"
			if e.Err != nil {
				note = fmt.Sprintf("cell failed (%s): %s", e.Err.Class, firstLine(e.Err.Message))
			}
			b.WriteString(fmt.Sprintf("%-8s %-16s %-10s %-10s %-10s %s\n",
				e.Version, e.UseCase, e.Mode, "-", "-", note))
			continue
		}
		v := e.Result.Verdict
		note := ""
		if v.Handled {
			note = "handled"
		}
		if e.Result.Outcome.Err != nil && !v.ErroneousState {
			note = "PoC failed: " + firstLine(e.Result.Outcome.Err.Error())
		}
		b.WriteString(fmt.Sprintf("%-8s %-16s %-10s %-10s %-10s %s\n",
			e.Version, e.UseCase, e.Mode, mark(v.ErroneousState), mark(v.SecurityViolation), note))
	}
	b.WriteString(rule(78) + "\n")
	return b.String()
}

func mark(ok bool) string {
	if ok {
		return markYes
	}
	return markNo
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	if len(s) > 48 {
		return s[:48] + "..."
	}
	return s
}
