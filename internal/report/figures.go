package report

import (
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/inject"
)

// Fig1 renders the chain of dependability threats with the extended-AVI
// model (Fig. 1): the conceptual backbone of Section III.
func Fig1() string {
	return strings.Join([]string{
		"FIG. 1: CHAIN OF DEPENDABILITY THREATS WITH THE EXTENDED-AVI MODEL",
		"",
		"  attack ---(exploits)---> vulnerability ===> intrusion",
		"   (malicious            (design/development/   |",
		"    external fault)       operation fault)      v",
		"                                          erroneous state ===> security",
		"                                          (intrusion-induced     violation",
		"                                           error)                (failure)",
		"",
		"  fault -----------------> error ------------------------------> failure",
		"",
		"An exploit activating a vulnerability causes an intrusion; its first",
		"effect is an erroneous state, which — unless the system handles it —",
		"leads to a failure affecting a security attribute.",
	}, "\n")
}

// Fig2 renders the methodology overview (Fig. 2): the traditional attack
// path above, the injection path below.
func Fig2() string {
	return strings.Join([]string{
		"FIG. 2: OVERVIEW OF THE METHODOLOGY KEY COMPONENTS",
		"",
		" traditional   +---------+   +---------------+    +-----------------+",
		" scenario      | exploit |-->| vulnerability |===>| erroneous state |--+",
		"               +---------+   +---------------+    +-----------------+  |",
		"                                                        ^              v",
		" intrusion     +-----------------+   +-----------+      |      +---------------+",
		" injection     | intrusion model |-->| intrusion |......+      |   security    |",
		" (this work)   +-----------------+   | injector  |             | violation OR  |",
		"                                     +-----------+             | state handled |",
		"                                                               +---------------+",
		"                                                   system monitoring decides",
		"",
		"The injector drives the system directly into the erroneous state the",
		"intrusion model describes, skipping the exploit/vulnerability pair.",
	}, "\n")
}

// Fig3 renders the intrusion state machines (Fig. 3) and the
// equivalence check between the internal and abstract views, executed
// live on the model types.
func Fig3(f inject.AbusiveFunctionality) string {
	internal := inject.InternalIntrusionMachine()
	abstract := inject.AbstractIntrusionMachine(f)

	var b strings.Builder
	b.WriteString("FIG. 3: INTRUSION INTERNAL IMPACT (left) AND ITS ABSTRACTION (right)\n\n")
	render := func(m *inject.StateMachine) {
		b.WriteString(fmt.Sprintf("  [%s view]\n", m.Name))
		for _, t := range m.Transitions {
			b.WriteString(fmt.Sprintf("    (%s) --%s--> (%s)\n", t.From, t.Label, t.To))
		}
	}
	render(internal)
	b.WriteString("\n")
	render(abstract)
	b.WriteString("\n")
	ok := inject.Equivalent(internal, abstract)
	_, pathI := internal.Reachable(inject.StateErroneous)
	_, pathA := abstract.Reachable(inject.StateErroneous)
	b.WriteString(fmt.Sprintf("  equivalence (both reach the erroneous state): %v\n", ok))
	b.WriteString(fmt.Sprintf("  internal witness: %s\n", strings.Join(pathI, " ; ")))
	b.WriteString(fmt.Sprintf("  abstract witness: %s\n", strings.Join(pathA, " ; ")))
	return b.String()
}

// Fig4 renders the RQ1 validation (Fig. 4): exploit vs injection on the
// vulnerable version with the compare step's results.
func Fig4(rows []campaign.Fig4Row) string {
	var b strings.Builder
	b.WriteString("FIG. 4: EXPERIMENTAL VALIDATION — EXPLOIT vs INJECTION ON XEN 4.6\n")
	b.WriteString(rule(84) + "\n")
	b.WriteString(fmt.Sprintf("%-16s | %-21s | %-21s | %-8s %-8s\n",
		"Use Case", "exploit (err/viol)", "injection (err/viol)", "states", "viols"))
	b.WriteString(rule(84) + "\n")
	for _, r := range rows {
		ev, iv := r.Exploit.Verdict, r.Injection.Verdict
		b.WriteString(fmt.Sprintf("%-16s | %-21s | %-21s | %-8s %-8s\n",
			r.UseCase,
			fmt.Sprintf("%s / %s", mark(ev.ErroneousState), mark(ev.SecurityViolation)),
			fmt.Sprintf("%s / %s", mark(iv.ErroneousState), mark(iv.SecurityViolation)),
			matchMark(r.StatesMatch), matchMark(r.ViolationsMatch)))
	}
	b.WriteString(rule(84) + "\n")
	b.WriteString("states/viols columns: does the injection reproduce the exploit's result?\n")
	return b.String()
}

func matchMark(ok bool) string {
	if ok {
		return "match"
	}
	return "DIFFER"
}

// Transcript renders one run's attacker terminal, hypervisor console
// tail, and verdict, in the style of the paper's Section VI listings.
func Transcript(res *campaign.RunResult, console []string) string {
	var b strings.Builder
	o := res.Outcome
	b.WriteString(fmt.Sprintf("=== %s (%s mode) on Xen %s ===\n", o.UseCase, o.Mode, o.Version))
	b.WriteString("--- attacker terminal ---\n")
	for _, l := range o.Log {
		b.WriteString("  " + l + "\n")
	}
	if o.Err != nil {
		b.WriteString(fmt.Sprintf("  [script terminated: %v]\n", o.Err))
	}
	if len(console) > 0 {
		b.WriteString("--- hypervisor console (tail) ---\n")
		start := len(console) - 8
		if start < 0 {
			start = 0
		}
		for _, l := range console[start:] {
			b.WriteString("  " + l + "\n")
		}
	}
	b.WriteString("--- monitor verdict ---\n")
	b.WriteString("  " + res.Verdict.String() + "\n")
	for _, e := range res.Verdict.Evidence {
		b.WriteString("    " + e + "\n")
	}
	return b.String()
}
