package txstore_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/hv"
	"repro/internal/inject"
	"repro/internal/txstore"
)

const (
	accounts = 8
	initial  = 1000
	total    = accounts * initial
)

func newStore(t *testing.T) (*campaign.Environment, *txstore.Store) {
	t.Helper()
	e, err := campaign.NewEnvironment(hv.Version413(), campaign.ModeInjection)
	if err != nil {
		t.Fatal(err)
	}
	s, err := txstore.New(e.Attacker, accounts, initial)
	if err != nil {
		t.Fatal(err)
	}
	return e, s
}

func TestNewRejectsOversizedStores(t *testing.T) {
	e, err := campaign.NewEnvironment(hv.Version46(), campaign.ModeExploit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txstore.New(e.Attacker, 0, 1); err == nil {
		t.Error("zero accounts accepted")
	}
	if _, err := txstore.New(e.Attacker, 1000, 1); err == nil {
		t.Error("oversized store accepted")
	}
}

func TestTransfersPreserveConservation(t *testing.T) {
	_, s := newStore(t)
	transfers := []struct{ from, to, amount int }{
		{0, 1, 300}, {1, 2, 150}, {2, 0, 75}, {3, 7, 999}, {7, 3, 500},
	}
	for _, tr := range transfers {
		if err := s.Transfer(tr.from, tr.to, uint64(tr.amount)); err != nil {
			t.Fatalf("transfer %+v: %v", tr, err)
		}
	}
	if s.Committed() != len(transfers) {
		t.Errorf("committed = %d", s.Committed())
	}
	r, err := s.Check(total)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent() {
		t.Errorf("store inconsistent after legal workload: %v", r)
	}
	b0, err := s.Balance(0)
	if err != nil || b0 != 1000-300+75 {
		t.Errorf("balance(0) = %d, %v", b0, err)
	}
}

func TestTransferValidation(t *testing.T) {
	_, s := newStore(t)
	if err := s.Transfer(0, 0, 10); !errors.Is(err, txstore.ErrBadAccount) {
		t.Errorf("self transfer: %v", err)
	}
	if _, err := s.Balance(99); !errors.Is(err, txstore.ErrBadAccount) {
		t.Errorf("bad account: %v", err)
	}
	if err := s.Transfer(0, 1, initial+1); !errors.Is(err, txstore.ErrInsufficient) {
		t.Errorf("overdraft: %v", err)
	}
	// Failed transfers change nothing.
	r, err := s.Check(total)
	if err != nil || !r.Consistent() {
		t.Errorf("state after rejected transfers: %v, %v", r, err)
	}
}

func TestRecoverRollsBackPreparedTransaction(t *testing.T) {
	e, s := newStore(t)
	if err := s.Transfer(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-transaction: force the journal back to
	// "prepared" with the pre-images of a fresh transfer, then apply
	// only one side — the torn state recovery must repair.
	// We drive this through the injector to model an intrusion-induced
	// partial write rather than reaching into package internals.
	journal, err := s.JournalPage()
	if err != nil {
		t.Fatal(err)
	}
	c := e.Injector
	// Journal: prepared, from=2, to=3, amount=50, pre-images 1000/1000.
	for off, v := range map[uint64]uint64{8: 2, 16: 3, 24: 50, 32: 1000, 40: 1000, 0: 1} {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		if err := c.ArbitraryAccess(uint64(journal.Addr())+off, b[:], inject.WritePhys); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	b2, err := s.Balance(2)
	if err != nil || b2 != 1000 {
		t.Errorf("balance(2) after rollback = %d, %v", b2, err)
	}
	r, err := s.Check(total)
	if err != nil || !r.Consistent() {
		t.Errorf("post-recovery state: %v, %v", r, err)
	}
}

// TestIntrusionImpactMatrix is the Section III-C assessment: for each
// hypervisor-level corruption target, what happens to the tenant's ACID
// properties?
func TestIntrusionImpactMatrix(t *testing.T) {
	want := map[txstore.Target]string{
		txstore.TargetBalance:      "detected-corruption",
		txstore.TargetForgedRecord: "silent-consistency-violation",
		txstore.TargetJournal:      "journal-damage",
		txstore.TargetMagic:        "destroyed",
	}
	for target, wantClass := range want {
		t.Run(target.String(), func(t *testing.T) {
			e, s := newStore(t)
			if err := s.Transfer(0, 1, 100); err != nil {
				t.Fatal(err)
			}
			if err := s.InjectCorruption(e.Injector, target); err != nil {
				t.Fatalf("inject: %v", err)
			}
			r, err := s.Check(total)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Classify(); got != wantClass {
				t.Errorf("classification = %q, want %q (%v)", got, wantClass, r)
			}
			if r.Consistent() {
				t.Error("store claims consistency after intrusion")
			}
		})
	}
}

// TestForgedRecordIsInvisibleToTheApplication pins the paper's point:
// the application's own integrity machinery cannot see a forged record,
// only the cross-record invariant (or an external auditor) can.
func TestForgedRecordIsInvisibleToTheApplication(t *testing.T) {
	e, s := newStore(t)
	if err := s.InjectCorruption(e.Injector, txstore.TargetForgedRecord); err != nil {
		t.Fatal(err)
	}
	// Per-record read passes its checksum...
	b0, err := s.Balance(0)
	if err != nil {
		t.Fatalf("Balance after forge: %v", err)
	}
	if b0 != 1_000_000 {
		t.Errorf("forged balance = %d", b0)
	}
	// ...and the application happily transacts on forged money.
	if err := s.Transfer(0, 1, 500_000); err != nil {
		t.Fatalf("transfer of forged funds: %v", err)
	}
	r, err := s.Check(total)
	if err != nil {
		t.Fatal(err)
	}
	if r.ChecksumErrors != 0 {
		t.Errorf("forge tripped checksums: %v", r)
	}
	if r.ConservationHolds {
		t.Error("conservation holds despite forged funds")
	}
}

func TestDetectedCorruptionBlocksTransfers(t *testing.T) {
	e, s := newStore(t)
	if err := s.InjectCorruption(e.Injector, txstore.TargetBalance); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Balance(0); !errors.Is(err, txstore.ErrCorrupted) {
		t.Errorf("Balance on corrupted record: %v", err)
	}
	if err := s.Transfer(0, 1, 10); !errors.Is(err, txstore.ErrCorrupted) {
		t.Errorf("Transfer from corrupted record: %v", err)
	}
}

func TestJournalGarbageFailsRecovery(t *testing.T) {
	e, s := newStore(t)
	if err := s.InjectCorruption(e.Injector, txstore.TargetJournal); err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(); err == nil || !strings.Contains(err.Error(), "garbage") {
		t.Errorf("Recover on garbage journal: %v", err)
	}
}

func TestTargetStrings(t *testing.T) {
	for _, target := range txstore.AllTargets() {
		if strings.HasPrefix(target.String(), "Target(") {
			t.Errorf("target %d unnamed", target)
		}
	}
	if !strings.HasPrefix(txstore.Target(99).String(), "Target(") {
		t.Error("unknown target string")
	}
}

func TestReportString(t *testing.T) {
	_, s := newStore(t)
	r, err := s.Check(total)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "consistent") {
		t.Errorf("report = %q", r.String())
	}
}

func TestAccessorsAndRecoverIdempotence(t *testing.T) {
	e, s := newStore(t)
	if s.Accounts() != accounts {
		t.Errorf("Accounts = %d", s.Accounts())
	}
	// Recover on an idle journal is a no-op; on a committed journal it
	// just clears the state.
	if err := s.Recover(); err != nil {
		t.Fatalf("idle recover: %v", err)
	}
	journal, err := s.JournalPage()
	if err != nil {
		t.Fatal(err)
	}
	// Force "committed" state (crash between commit and clear).
	if err := e.Injector.ArbitraryAccess(uint64(journal.Addr()),
		[]byte{2, 0, 0, 0, 0, 0, 0, 0}, inject.WritePhys); err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(); err != nil {
		t.Fatalf("committed recover: %v", err)
	}
	r, err := s.Check(total)
	if err != nil || !r.Consistent() {
		t.Errorf("post-recover: %v %v", r, err)
	}
	// A journal referencing invalid accounts is rejected.
	for off, v := range map[uint64]uint64{0: 1, 8: 900, 16: 901} {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		if err := e.Injector.ArbitraryAccess(uint64(journal.Addr())+off, b[:], inject.WritePhys); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Recover(); err == nil {
		t.Error("recover with invalid journal accounts succeeded")
	}
}
