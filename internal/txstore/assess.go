package txstore

import (
	"fmt"

	"repro/internal/inject"
	"repro/internal/mm"
)

// Target selects which part of the tenant database an injected
// hypervisor-level intrusion corrupts. Each target models a different
// consequence class for the application above the virtualization layer.
type Target uint8

// Corruption targets.
const (
	// TargetBalance overwrites one balance without fixing its checksum:
	// corruption the application can detect.
	TargetBalance Target = iota + 1
	// TargetForgedRecord overwrites a balance *and* forges a matching
	// checksum: the silent consistency violation — money created from
	// hypervisor context, invisible to the application's own integrity
	// machinery.
	TargetForgedRecord
	// TargetJournal corrupts the write-ahead journal state.
	TargetJournal
	// TargetMagic destroys the data-page identity.
	TargetMagic
)

// String names the target.
func (t Target) String() string {
	switch t {
	case TargetBalance:
		return "balance-no-checksum"
	case TargetForgedRecord:
		return "forged-record"
	case TargetJournal:
		return "journal-state"
	case TargetMagic:
		return "page-magic"
	default:
		return fmt.Sprintf("Target(%d)", uint8(t))
	}
}

// AllTargets returns every corruption target.
func AllTargets() []Target {
	return []Target{TargetBalance, TargetForgedRecord, TargetJournal, TargetMagic}
}

// InjectCorruption drives the store into the erroneous state selected by
// the target, using the intrusion injector's physical mode — the
// hypervisor-level write a real memory-corruption intrusion would
// perform against a tenant's pages.
func (s *Store) InjectCorruption(c *inject.Client, t Target) error {
	data, err := s.DataPage()
	if err != nil {
		return err
	}
	journal, err := s.JournalPage()
	if err != nil {
		return err
	}
	writeU64 := func(addr mm.PhysAddr, v uint64) error {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		return c.ArbitraryAccess(uint64(addr), b[:], inject.WritePhys)
	}
	switch t {
	case TargetBalance:
		return writeU64(data.Addr()+headerSize, 0xffff_ffff)
	case TargetForgedRecord:
		const forged = 1_000_000
		if err := writeU64(data.Addr()+headerSize, forged); err != nil {
			return err
		}
		return writeU64(data.Addr()+headerSize+8, checksum(0, forged))
	case TargetJournal:
		return writeU64(journal.Addr(), 0xdeadbeef)
	case TargetMagic:
		return writeU64(data.Addr(), 0x4141414141414141)
	default:
		return fmt.Errorf("txstore: unknown corruption target %d", t)
	}
}
