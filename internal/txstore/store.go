// Package txstore implements the tenant application of the paper's
// Section III-C motivation: "a transactional business-critical system
// that runs on a public cloud. How can one assess the impact of
// successful intrusions on the hypervisor in the ability of the
// transactional system to ensure the ACID properties?"
//
// The store is a small journaled account database whose entire state
// lives in the guest's memory pages and is accessed through guest
// memory operations — so erroneous states injected at the hypervisor
// level reach it exactly the way a real intrusion would reach a real
// database's pages.
package txstore

import (
	"errors"
	"fmt"

	"repro/internal/guest"
	"repro/internal/mm"
)

// Page layout constants.
const (
	// magic identifies an intact data page.
	magic uint64 = 0x5458_4442_5630_31 // "TXDBV01"
	// recordSize is one account record: balance + checksum.
	recordSize = 16
	// headerSize is the data-page header: magic + account count.
	headerSize = 16
	// checksumSalt decorrelates checksums from balances.
	checksumSalt uint64 = 0x9e3779b97f4a7c15
)

// Journal states.
const (
	journalIdle      uint64 = 0
	journalPrepared  uint64 = 1
	journalCommitted uint64 = 2
)

// Store errors.
var (
	// ErrBadAccount is returned for out-of-range account numbers.
	ErrBadAccount = errors.New("txstore: no such account")
	// ErrInsufficient is returned when a transfer exceeds the balance.
	ErrInsufficient = errors.New("txstore: insufficient funds")
	// ErrCorrupted is returned when an operation touches a record whose
	// checksum no longer matches (the store's own detection).
	ErrCorrupted = errors.New("txstore: record checksum mismatch")
)

// Store is one guest-resident transactional account store.
type Store struct {
	k        *guest.Kernel
	accounts int

	dataPFN    mm.PFN
	journalPFN mm.PFN
	dataVA     uint64
	journalVA  uint64

	committed int
}

// New creates a store with the given number of accounts, each holding
// the initial balance.
func New(k *guest.Kernel, accounts int, initial uint64) (*Store, error) {
	if accounts <= 0 || headerSize+accounts*recordSize > mm.PageSize {
		return nil, fmt.Errorf("txstore: %d accounts do not fit one page", accounts)
	}
	dataPFN, err := k.Domain().AllocPage()
	if err != nil {
		return nil, err
	}
	journalPFN, err := k.Domain().AllocPage()
	if err != nil {
		return nil, err
	}
	s := &Store{
		k:          k,
		accounts:   accounts,
		dataPFN:    dataPFN,
		journalPFN: journalPFN,
		dataVA:     k.Domain().PhysmapVA(dataPFN),
		journalVA:  k.Domain().PhysmapVA(journalPFN),
	}
	if err := s.k.PokeU64(s.dataVA, magic); err != nil {
		return nil, err
	}
	if err := s.k.PokeU64(s.dataVA+8, uint64(accounts)); err != nil {
		return nil, err
	}
	for i := 0; i < accounts; i++ {
		if err := s.writeRecord(i, initial); err != nil {
			return nil, err
		}
	}
	if err := s.k.PokeU64(s.journalVA, journalIdle); err != nil {
		return nil, err
	}
	k.Printk("txstore: %d accounts initialized, %d total units", accounts, uint64(accounts)*initial)
	return s, nil
}

// Accounts returns the account count.
func (s *Store) Accounts() int { return s.accounts }

// Committed returns how many transfers have committed.
func (s *Store) Committed() int { return s.committed }

// DataPage returns the machine frame holding account records — the
// target surface for hypervisor-level intrusion experiments.
func (s *Store) DataPage() (mm.MFN, error) { return s.k.Domain().P2M().Lookup(s.dataPFN) }

// JournalPage returns the machine frame holding the journal.
func (s *Store) JournalPage() (mm.MFN, error) { return s.k.Domain().P2M().Lookup(s.journalPFN) }

func (s *Store) recordVA(i int) uint64 {
	return s.dataVA + headerSize + uint64(i)*recordSize
}

func checksum(idx int, balance uint64) uint64 {
	return balance ^ checksumSalt ^ uint64(idx)*0x0101010101010101
}

func (s *Store) writeRecord(i int, balance uint64) error {
	if err := s.k.PokeU64(s.recordVA(i), balance); err != nil {
		return err
	}
	return s.k.PokeU64(s.recordVA(i)+8, checksum(i, balance))
}

// Balance reads one account, verifying its checksum.
func (s *Store) Balance(i int) (uint64, error) {
	if i < 0 || i >= s.accounts {
		return 0, fmt.Errorf("%w: %d", ErrBadAccount, i)
	}
	balance, err := s.k.PeekU64(s.recordVA(i))
	if err != nil {
		return 0, err
	}
	sum, err := s.k.PeekU64(s.recordVA(i) + 8)
	if err != nil {
		return 0, err
	}
	if sum != checksum(i, balance) {
		return 0, fmt.Errorf("%w: account %d", ErrCorrupted, i)
	}
	return balance, nil
}

// Transfer moves amount between accounts under a write-ahead journal:
// prepare, apply both sides, commit, clear.
func (s *Store) Transfer(from, to int, amount uint64) error {
	if from == to {
		return fmt.Errorf("%w: self transfer", ErrBadAccount)
	}
	fromBal, err := s.Balance(from)
	if err != nil {
		return err
	}
	toBal, err := s.Balance(to)
	if err != nil {
		return err
	}
	if fromBal < amount {
		return fmt.Errorf("%w: account %d has %d, needs %d", ErrInsufficient, from, fromBal, amount)
	}
	// Journal: state, from, to, amount, pre-images.
	for off, v := range map[uint64]uint64{
		8:  uint64(from),
		16: uint64(to),
		24: amount,
		32: fromBal,
		40: toBal,
	} {
		if err := s.k.PokeU64(s.journalVA+off, v); err != nil {
			return err
		}
	}
	if err := s.k.PokeU64(s.journalVA, journalPrepared); err != nil {
		return err
	}
	// Apply.
	if err := s.writeRecord(from, fromBal-amount); err != nil {
		return err
	}
	if err := s.writeRecord(to, toBal+amount); err != nil {
		return err
	}
	if err := s.k.PokeU64(s.journalVA, journalCommitted); err != nil {
		return err
	}
	if err := s.k.PokeU64(s.journalVA, journalIdle); err != nil {
		return err
	}
	s.committed++
	return nil
}

// Recover applies journal-based crash recovery: a prepared transaction
// is rolled back from its pre-images; a committed one only needs the
// journal cleared.
func (s *Store) Recover() error {
	state, err := s.k.PeekU64(s.journalVA)
	if err != nil {
		return err
	}
	switch state {
	case journalIdle, journalCommitted:
		return s.k.PokeU64(s.journalVA, journalIdle)
	case journalPrepared:
		from, err := s.k.PeekU64(s.journalVA + 8)
		if err != nil {
			return err
		}
		to, err := s.k.PeekU64(s.journalVA + 16)
		if err != nil {
			return err
		}
		fromBal, err := s.k.PeekU64(s.journalVA + 32)
		if err != nil {
			return err
		}
		toBal, err := s.k.PeekU64(s.journalVA + 40)
		if err != nil {
			return err
		}
		if int(from) >= s.accounts || int(to) >= s.accounts {
			return fmt.Errorf("txstore: journal references invalid accounts %d/%d", from, to)
		}
		if err := s.writeRecord(int(from), fromBal); err != nil {
			return err
		}
		if err := s.writeRecord(int(to), toBal); err != nil {
			return err
		}
		s.k.Printk("txstore: rolled back prepared transfer %d -> %d", from, to)
		return s.k.PokeU64(s.journalVA, journalIdle)
	default:
		return fmt.Errorf("txstore: journal state %#x is garbage", state)
	}
}
