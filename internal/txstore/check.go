package txstore

import "fmt"

// Report is the outcome of an ACID audit over the store: which
// properties survived whatever the hypervisor did to the guest's memory.
type Report struct {
	// MagicIntact: the data page still identifies as a database.
	MagicIntact bool
	// ChecksumErrors counts records whose integrity check fails —
	// corruption the application *detects*.
	ChecksumErrors int
	// ConservationHolds: the summed balances equal the expected total —
	// the consistency invariant of the transfer workload.
	ConservationHolds bool
	// Total is the summed balance over verifiable records.
	Total uint64
	// JournalSane: the journal state field holds a defined value.
	JournalSane bool
}

// Consistent reports whether the audit found full ACID health.
func (r Report) Consistent() bool {
	return r.MagicIntact && r.ChecksumErrors == 0 && r.ConservationHolds && r.JournalSane
}

// Classify names the failure mode for campaign tables. Detection beats
// the other labels: once the application's own integrity machinery fires
// it can refuse service, whatever else is broken.
func (r Report) Classify() string {
	switch {
	case r.Consistent():
		return "consistent"
	case !r.MagicIntact:
		return "destroyed"
	case r.ChecksumErrors > 0:
		return "detected-corruption"
	case !r.ConservationHolds:
		return "silent-consistency-violation"
	default:
		return "journal-damage"
	}
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("magic=%v checksumErrors=%d conservation=%v journal=%v total=%d -> %s",
		r.MagicIntact, r.ChecksumErrors, r.ConservationHolds, r.JournalSane, r.Total, r.Classify())
}

// Check audits the store against the expected total balance.
func (s *Store) Check(expectedTotal uint64) (Report, error) {
	var r Report
	m, err := s.k.PeekU64(s.dataVA)
	if err != nil {
		return r, err
	}
	r.MagicIntact = m == magic

	for i := 0; i < s.accounts; i++ {
		balance, err := s.k.PeekU64(s.recordVA(i))
		if err != nil {
			return r, err
		}
		sum, err := s.k.PeekU64(s.recordVA(i) + 8)
		if err != nil {
			return r, err
		}
		if sum != checksum(i, balance) {
			r.ChecksumErrors++
			continue
		}
		r.Total += balance
	}
	// Conservation is judged only when every record is verifiable;
	// checksum failures already mark the store damaged.
	r.ConservationHolds = r.ChecksumErrors == 0 && r.Total == expectedTotal

	state, err := s.k.PeekU64(s.journalVA)
	if err != nil {
		return r, err
	}
	r.JournalSane = state == journalIdle || state == journalPrepared || state == journalCommitted
	return r, nil
}
