package device

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/hv"
	"repro/internal/inject"
	"repro/internal/mm"
	"repro/internal/vnet"
)

type env struct {
	h        *hv.Hypervisor
	dom0     *guest.Kernel
	attacker *guest.Kernel
	fdc      *FDC
	injector *inject.Client
}

func newEnv(t *testing.T, v hv.Version, withInjector bool) *env {
	t.Helper()
	mem, err := mm.NewMemory(2048)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hv.New(mem, v)
	if err != nil {
		t.Fatal(err)
	}
	if withInjector {
		if err := inject.Enable(h); err != nil {
			t.Fatal(err)
		}
	}
	net := vnet.New()
	d0, err := h.CreateDomain("xen3", 64, true)
	if err != nil {
		t.Fatal(err)
	}
	dom0 := guest.New(d0, net, "10.3.1.1")
	ad, err := h.CreateDomain("guest01", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	attacker := guest.New(ad, net, "10.3.1.181")
	fdc, err := New(h, dom0, ad.ID())
	if err != nil {
		t.Fatal(err)
	}
	e := &env{h: h, dom0: dom0, attacker: attacker, fdc: fdc}
	if withInjector {
		e.injector = inject.NewClient(ad)
	}
	return e
}

func TestFDCRequiresDom0DeviceModel(t *testing.T) {
	e := newEnv(t, hv.Version46(), false)
	if _, err := New(e.h, e.attacker, e.attacker.Domain().ID()); err == nil {
		t.Error("device model hosted outside dom0 accepted")
	}
}

func TestFDCNormalCommands(t *testing.T) {
	e := newEnv(t, hv.Version46(), false)
	from := e.attacker.Domain().ID()
	for _, cmd := range [][]byte{
		{CmdRecalibrate},
		{CmdSeek, 0x05},
		{CmdReadID},
	} {
		if err := e.fdc.SubmitCommand(from, cmd); err != nil {
			t.Fatalf("command %#x: %v", cmd[0], err)
		}
		s, err := e.fdc.Status()
		if err != nil || s != StatusDone {
			t.Errorf("status after %#x = %#x, %v", cmd[0], s, err)
		}
	}
	// Unknown opcode leaves the controller busy.
	if err := e.fdc.SubmitCommand(from, []byte{0xee}); err != nil {
		t.Fatal(err)
	}
	if s, _ := e.fdc.Status(); s != StatusBusy {
		t.Errorf("status after unknown opcode = %#x, want busy", s)
	}
	// Handler stays pristine under normal operation.
	if h, _ := e.fdc.Handler(); h != 0 {
		t.Errorf("handler = %#x after normal traffic", h)
	}
}

func TestFDCOwnershipAndValidation(t *testing.T) {
	e := newEnv(t, hv.Version46(), false)
	if err := e.fdc.SubmitCommand(e.dom0.Domain().ID(), []byte{CmdSeek}); err == nil {
		t.Error("foreign domain drove the controller")
	}
	if err := e.fdc.SubmitCommand(e.attacker.Domain().ID(), nil); err == nil {
		t.Error("empty command accepted")
	}
}

func TestFDCBoundsCheckByVersion(t *testing.T) {
	oversized := make([]byte, FIFOSize+8)
	oversized[0] = CmdSeek
	// Fixed versions reject; the vulnerable one overflows.
	eFixed := newEnv(t, hv.Version413(), false)
	err := eFixed.fdc.SubmitCommand(eFixed.attacker.Domain().ID(), oversized)
	if !errors.Is(err, ErrCommandTooLong) {
		t.Errorf("oversized on 4.13: err = %v, want ErrCommandTooLong", err)
	}
	eVuln := newEnv(t, hv.Version46(), false)
	if err := eVuln.fdc.SubmitCommand(eVuln.attacker.Domain().ID(), oversized); err != nil {
		t.Errorf("oversized on 4.6: %v (the overflow should be silent)", err)
	}
}

func TestVenomExploitMatrix(t *testing.T) {
	for _, tt := range []struct {
		version hv.Version
		works   bool
	}{
		{hv.Version46(), true},
		{hv.Version48(), false},
		{hv.Version413(), false},
	} {
		t.Run(tt.version.Name, func(t *testing.T) {
			e := newEnv(t, tt.version, false)
			o := RunVenomExploit(e.fdc, e.attacker)
			if o.ErroneousState != tt.works || o.Escalated != tt.works {
				t.Errorf("exploit on %s: state=%v escalated=%v, want both %v\nlog:\n  %s",
					tt.version.Name, o.ErroneousState, o.Escalated, tt.works,
					strings.Join(o.Log, "\n  "))
			}
			if !tt.works && !errors.Is(o.Err, ErrCommandTooLong) {
				t.Errorf("fixed version: err = %v, want ErrCommandTooLong", o.Err)
			}
			if tt.works {
				content, err := e.dom0.ReadFile("/root/venom_proof", guest.UIDRoot)
				if err != nil || content != "escaped-to-@xen3" {
					t.Errorf("proof = %q, %v", content, err)
				}
			}
		})
	}
}

func TestVenomInjectionWorksOnAllVersions(t *testing.T) {
	// The Section III-B claim: injection induces the VENOM erroneous
	// state — and its violation — even where the FDC bounds check exists.
	for _, v := range hv.Versions() {
		t.Run(v.Name, func(t *testing.T) {
			e := newEnv(t, v, true)
			o := RunVenomInjection(e.fdc, e.attacker, e.injector)
			if o.Err != nil {
				t.Fatalf("injection: %v\nlog:\n  %s", o.Err, strings.Join(o.Log, "\n  "))
			}
			if !o.ErroneousState || !o.Escalated {
				t.Errorf("state=%v escalated=%v, want both true", o.ErroneousState, o.Escalated)
			}
			if !e.dom0.DmesgContains("dispatching request via handler") {
				t.Error("device model did not log the corrupted dispatch")
			}
		})
	}
}

func TestVenomStateAndViolationEquivalence(t *testing.T) {
	// RQ1 in miniature for the VENOM model: on the vulnerable version,
	// exploit and injection produce the same audited results.
	ex := newEnv(t, hv.Version46(), false)
	exOut := RunVenomExploit(ex.fdc, ex.attacker)
	in := newEnv(t, hv.Version46(), true)
	inOut := RunVenomInjection(in.fdc, in.attacker, in.injector)
	if exOut.ErroneousState != inOut.ErroneousState || exOut.Escalated != inOut.Escalated {
		t.Errorf("exploit (%v/%v) vs injection (%v/%v)",
			exOut.ErroneousState, exOut.Escalated, inOut.ErroneousState, inOut.Escalated)
	}
}
