// Package device implements the emulated-device layer of the
// virtualization stack and, with it, the paper's Section III running
// example: the VENOM vulnerability (XSA-133), a buffer overflow in the
// floppy disk controller of the device model, whose erroneous state —
// "memory that should be inaccessible is corrupted" inside the dom0-
// resident device-model process — can be either caused by the real
// overflow or injected directly, exactly as Section III-B proposes:
// "the intrusion injection tool could change the QEMU process ... by
// overwriting the FDC request handler method".
package device

import (
	"errors"
	"fmt"

	"repro/internal/guest"
	"repro/internal/hv"
	"repro/internal/mm"
)

// FDC geometry: one device-model page holds the command FIFO followed
// immediately by the request-handler pointer — the adjacency the
// overflow exploits.
const (
	// FIFOSize is the command buffer length. Commands longer than this
	// must be rejected; the VENOM bug is the missing rejection.
	FIFOSize = 512
	// handlerOffset is where the request-handler pointer lives, directly
	// after the FIFO.
	handlerOffset = FIFOSize
	// statusOffset holds the one-byte controller status.
	statusOffset = handlerOffset + 8
)

// FDC command opcodes (first byte of a command).
const (
	// CmdRecalibrate homes the drive.
	CmdRecalibrate byte = 0x07
	// CmdSeek positions the head (one parameter byte).
	CmdSeek byte = 0x0f
	// CmdReadID reads sector identification.
	CmdReadID byte = 0x4a
)

// Controller status values.
const (
	// StatusIdle means no command processed yet.
	StatusIdle byte = 0x00
	// StatusBusy is set while processing.
	StatusBusy byte = 0x10
	// StatusDone is set after successful processing.
	StatusDone byte = 0x80
)

// ErrCommandTooLong is the fixed device model's rejection of oversized
// commands (the XSA-133 patch).
var ErrCommandTooLong = errors.New("device: fdc command exceeds FIFO size")

// FDC is one guest's emulated floppy controller. Its working memory is a
// real machine frame owned by dom0 (the device model runs as a dom0
// process), so corrupting it is real cross-domain memory corruption.
type FDC struct {
	hv       *hv.Hypervisor
	devModel *guest.Kernel // dom0 kernel hosting the device-model process
	guestDom mm.DomID      // the guest this controller serves

	pfn  mm.PFN // device-model page (a dom0 PFN)
	base mm.PhysAddr
}

// New attaches an emulated FDC for the guest domain to the device model
// running in dom0.
func New(h *hv.Hypervisor, devModel *guest.Kernel, guestDom mm.DomID) (*FDC, error) {
	if !devModel.Domain().Privileged() {
		return nil, fmt.Errorf("device: the device model must run in dom0, got dom%d", devModel.Domain().ID())
	}
	pfn, err := devModel.Domain().AllocPage()
	if err != nil {
		return nil, fmt.Errorf("device: allocating device-model page: %w", err)
	}
	mfn, err := devModel.Domain().P2M().Lookup(pfn)
	if err != nil {
		return nil, err
	}
	f := &FDC{hv: h, devModel: devModel, guestDom: guestDom, pfn: pfn, base: mfn.Addr()}
	if err := f.reset(); err != nil {
		return nil, err
	}
	devModel.Printk("fdc: emulated controller for dom%d at pfn %#x", guestDom, uint64(pfn))
	return f, nil
}

func (f *FDC) reset() error {
	zero := make([]byte, statusOffset+1)
	return f.hv.Memory().WritePhys(f.base, zero)
}

// BufferVA returns the device-model virtual address of the FIFO — the
// layout knowledge a VENOM-style exploit has of its QEMU binary.
func (f *FDC) BufferVA() uint64 { return f.devModel.Domain().PhysmapVA(f.pfn) }

// HandlerPhys returns the machine-physical address of the request-
// handler pointer — the injector's target.
func (f *FDC) HandlerPhys() mm.PhysAddr { return f.base + handlerOffset }

// Status returns the controller status byte.
func (f *FDC) Status() (byte, error) {
	var b [1]byte
	if err := f.hv.Memory().ReadPhys(f.base+statusOffset, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// Handler returns the current request-handler pointer (zero = builtin).
func (f *FDC) Handler() (uint64, error) {
	return f.hv.Memory().ReadU64(f.base + handlerOffset)
}

// SubmitCommand is the guest-facing I/O path: the guest (by way of its
// kernel driver) writes a command into the controller. The device model
// copies it into the FIFO — with the bounds check only on VENOM-fixed
// versions — and processes it.
func (f *FDC) SubmitCommand(from mm.DomID, cmd []byte) error {
	if from != f.guestDom {
		return fmt.Errorf("device: controller belongs to dom%d, caller dom%d", f.guestDom, from)
	}
	if len(cmd) == 0 {
		return fmt.Errorf("device: empty command")
	}
	if f.hv.Version().VENOMFixed && len(cmd) > FIFOSize {
		return fmt.Errorf("%w: %d bytes", ErrCommandTooLong, len(cmd))
	}
	// The copy. On vulnerable versions an oversized command writes past
	// the FIFO — across the handler pointer — inside the device model's
	// memory: the VENOM erroneous state.
	if err := f.hv.Memory().WritePhys(f.base, cmd); err != nil {
		return err
	}
	if err := f.setStatus(StatusBusy); err != nil {
		return err
	}
	return f.process(cmd[0])
}

// process dispatches the command through the request handler.
func (f *FDC) process(opcode byte) error {
	handler, err := f.Handler()
	if err != nil {
		return err
	}
	if handler != 0 {
		// The handler pointer has been replaced: the device model jumps
		// to it, executing whatever it points at as a root dom0 process.
		f.devModel.Printk("fdc: dispatching request via handler %#x", handler)
		if err := f.devModel.ExecAsRootProcess(handler, "qemu-fdc"); err != nil {
			return fmt.Errorf("device: corrupted handler: %w", err)
		}
		return f.setStatus(StatusDone)
	}
	switch opcode {
	case CmdRecalibrate, CmdSeek, CmdReadID:
		return f.setStatus(StatusDone)
	default:
		// Unknown commands leave the controller busy, as the real
		// emulator's state machine does until reset.
		return nil
	}
}

func (f *FDC) setStatus(s byte) error {
	return f.hv.Memory().WritePhys(f.base+statusOffset, []byte{s})
}
