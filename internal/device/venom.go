package device

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/guest"
	"repro/internal/inject"
)

// VenomOutcome records one VENOM run.
type VenomOutcome struct {
	// Mode is "exploit" or "injection".
	Mode string
	// Version is the stack version under test.
	Version string
	// Log is the attack transcript.
	Log []string
	// ErroneousState reports whether the handler pointer was corrupted
	// (audited by reading it back).
	ErroneousState bool
	// Escalated reports whether attacker code ran as a dom0 root
	// process (the VENOM guest-escape security violation).
	Escalated bool
	// Err is the error that stopped the attack.
	Err error
}

func (o *VenomOutcome) logf(format string, args ...any) {
	o.Log = append(o.Log, fmt.Sprintf(format, args...))
}

// venomProofPath is the file the escape payload drops in dom0.
const venomProofPath = "/root/venom_proof"

// venomPayload builds the escape payload: executed by the device-model
// process, it writes proof of dom0 code execution.
func venomPayload() []byte {
	return cpu.Assemble(cpu.Program{
		{Op: cpu.OpLog, Args: []string{"venom payload running in device model"}},
		{Op: cpu.OpDropFileAll, Args: []string{venomProofPath, "escaped-to-@HOST"}},
	})
}

// RunVenomExploit performs the real XSA-133 attack: a malicious guest
// submits an oversized FDC command whose tail overwrites the request
// handler with the address of the payload carried in the same command —
// shellcode and pointer in one overflowing write, like the original.
func RunVenomExploit(f *FDC, attacker *guest.Kernel) *VenomOutcome {
	o := &VenomOutcome{Mode: "exploit", Version: f.hv.Version().Name}
	payload := venomPayload()
	if len(payload) > FIFOSize {
		o.Err = fmt.Errorf("device: payload larger than FIFO")
		return o
	}
	// Oversized command: payload at the front, padding to the FIFO edge,
	// then 8 bytes that land exactly on the handler pointer.
	cmd := make([]byte, FIFOSize+8)
	copy(cmd, payload)
	handlerVA := f.BufferVA() // payload sits at the FIFO base
	for i := 0; i < 8; i++ {
		cmd[FIFOSize+i] = byte(handlerVA >> (8 * i))
	}
	o.logf("venom: sending %d-byte command to the fdc (fifo is %d)", len(cmd), FIFOSize)
	if err := f.SubmitCommand(attacker.Domain().ID(), cmd); err != nil {
		o.Err = err
		o.logf("venom: command rejected: %v", err)
		return o
	}
	o.audit(f)
	return o
}

// RunVenomInjection induces the same erroneous state with the intrusion
// injector — the Section III-B proposal: write the payload into the
// device model's buffer and overwrite the FDC request handler, then let
// an ordinary guest I/O request trigger it.
func RunVenomInjection(f *FDC, attacker *guest.Kernel, c *inject.Client) *VenomOutcome {
	o := &VenomOutcome{Mode: "injection", Version: f.hv.Version().Name}
	payload := venomPayload()
	// The payload goes into a quiet region of the device-model page,
	// past the controller state, where ordinary FIFO traffic will not
	// clobber it.
	const payloadOffset = 1024
	o.logf("venom-inject: writing payload into the device-model process memory")
	if err := c.ArbitraryAccess(uint64(f.base)+payloadOffset, payload, inject.WritePhys); err != nil {
		o.Err = err
		return o
	}
	o.logf("venom-inject: overwriting the FDC request handler method")
	var buf [8]byte
	va := f.BufferVA() + payloadOffset
	for i := range buf {
		buf[i] = byte(va >> (8 * i))
	}
	if err := c.ArbitraryAccess(uint64(f.HandlerPhys()), buf[:], inject.WritePhys); err != nil {
		o.Err = err
		return o
	}
	// An ordinary, well-formed request now triggers the corrupted
	// handler — "when an IO request similar to an attack on VENOM is
	// sent to FDC, memory corruption could happen in QEMU in a similar
	// way" (Section III-B).
	o.logf("venom-inject: issuing a benign seek to trigger the handler")
	if err := f.SubmitCommand(attacker.Domain().ID(), []byte{CmdSeek, 0x01}); err != nil {
		o.Err = err
		o.logf("venom-inject: trigger failed: %v", err)
		return o
	}
	o.audit(f)
	return o
}

// audit verifies the erroneous state (handler pointer corrupted) and the
// violation (payload proof present in dom0) from system state.
func (o *VenomOutcome) audit(f *FDC) {
	if h, err := f.Handler(); err == nil && h != 0 {
		o.ErroneousState = true
		o.logf("audit: fdc request handler = %#x (corrupted)", h)
	} else {
		o.logf("audit: fdc request handler intact")
	}
	if content, err := f.devModel.ReadFile(venomProofPath, guest.UIDRoot); err == nil {
		o.Escalated = true
		o.logf("audit: dom0 %s = %q — guest escape confirmed", venomProofPath, content)
	} else {
		o.logf("audit: no escape evidence in dom0")
	}
}
