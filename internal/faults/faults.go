// Package faults is the deterministic fault-injection plane for the
// simulator substrate: the injector's philosophy turned inward. Where
// the paper's intrusion injector drives representative erroneous states
// into the guest-visible system, this package drives representative
// *infrastructure* faults into our own substrate — forced allocation
// failures in mm, hypercall-handler panics and forced hang states in
// hv, telemetry-sink write errors — so the campaign engine's tolerance
// of a misbehaving cell can be exercised reproducibly, the way IRIS
// seeds its virtualization-fuzzing runs for replay.
//
// Two kinds of state, mirroring the telemetry layer's split:
//
//   - Injector — per-environment, single-goroutine (one campaign cell
//     owns one Injector, like one cell owns one telemetry.Recorder): a
//     set of armed rules keyed by site + trigger count. A nil *Injector
//     is the disabled plane; every method is nil-safe and instrumented
//     hot paths cost one predicted branch when fault injection is off.
//   - Plan — campaign-wide and seed-keyed: a pure function from cell
//     identity to an armed Injector, so the same seed faults the same
//     cells in the same way at any worker count or run order.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
)

// Site identifies one instrumented injection point in the substrate.
// The constants below are the sites the substrate packages consult; the
// type is open so tests can arm private sites of their own.
type Site string

// Instrumented substrate sites.
const (
	// SiteAlloc forces a machine-frame allocation failure in
	// mm.Alloc/mm.AllocRange (ErrOutOfMemory wrapping ErrInjected).
	SiteAlloc Site = "mm.alloc"
	// SiteHypercallPanic panics inside the hypercall dispatcher before
	// the handler runs, modeling a handler bug taking the worker down.
	SiteHypercallPanic Site = "hv.hypercall.panic"
	// SiteHang forces the hypervisor into its hang state at hypercall
	// dispatch, the cooperative "stopped making progress" failure the
	// monitor classifies.
	SiteHang Site = "hv.hang"
	// SiteWedge parks the dispatching goroutine until Release — a true
	// runaway cell, food for the campaign runner's watchdog. Never armed
	// by seeded plans; tests arm it explicitly and must Release.
	SiteWedge Site = "hv.wedge"
	// SiteSinkWrite fails a telemetry-sink event write: the recorder
	// drops the event and counts telemetry.sink_errors.
	SiteSinkWrite Site = "telemetry.sink"
)

// ErrInjected marks every error manufactured by this package, so
// campaign-level classification can tell an injected substrate fault
// from an organic failure with errors.Is.
var ErrInjected = errors.New("faults: injected fault")

// Injector is one environment's armed fault set. It is intentionally
// not safe for concurrent use — one campaign cell is one goroutine —
// except for Release, which the watchdog's owner may call from outside.
// The nil Injector is the disabled plane: Hit always reports false.
type Injector struct {
	trigger map[Site]uint64
	hits    map[Site]uint64
	fired   []string
	release chan struct{}
	once    sync.Once
}

// NewInjector creates an injector with no armed rules.
func NewInjector() *Injector {
	return &Injector{
		trigger: make(map[Site]uint64),
		hits:    make(map[Site]uint64),
		release: make(chan struct{}),
	}
}

// Arm schedules the site to fire on its nth hit (1-based; n < 1 arms
// the first hit). Re-arming a site replaces its trigger. Returns the
// injector for chaining.
func (i *Injector) Arm(site Site, nth uint64) *Injector {
	if nth < 1 {
		nth = 1
	}
	i.trigger[site] = nth
	return i
}

// Hit records one pass through the site and reports whether the armed
// fault fires on this pass. Sites with no armed rule never fire.
func (i *Injector) Hit(site Site) bool {
	if i == nil {
		return false
	}
	i.hits[site]++
	if nth, ok := i.trigger[site]; ok && i.hits[site] == nth {
		i.fired = append(i.fired, fmt.Sprintf("%s@%d", site, nth))
		return true
	}
	return false
}

// WouldFire reports whether the armed rule for the site would fire
// within the next `within` hits, without recording any. The campaign's
// snapshot cache uses it to decide whether a cell's boot-time fault
// budget forces a fresh boot instead of a fork.
func (i *Injector) WouldFire(site Site, within uint64) bool {
	if i == nil {
		return false
	}
	nth, ok := i.trigger[site]
	if !ok {
		return false
	}
	h := i.hits[site]
	return nth > h && nth <= h+within
}

// Errorf manufactures a site's injected error, wrapping ErrInjected.
func (i *Injector) Errorf(site Site, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", ErrInjected, site, fmt.Sprintf(format, args...))
}

// Block parks the calling goroutine until Release: the body of a wedge
// fault, a cell that will never return on its own.
func (i *Injector) Block() {
	if i == nil {
		return
	}
	<-i.release
}

// Release unwedges every past and future Block call. Safe to call more
// than once and from any goroutine.
func (i *Injector) Release() {
	if i == nil {
		return
	}
	i.once.Do(func() { close(i.release) })
}

// Fired returns the rules that fired, in firing order, as "site@n"
// strings. Read it only after the owning cell has finished.
func (i *Injector) Fired() []string {
	if i == nil {
		return nil
	}
	out := make([]string, len(i.fired))
	copy(out, i.fired)
	return out
}

// Hits returns how many times the site has been passed (0 for nil).
func (i *Injector) Hits(site Site) uint64 {
	if i == nil {
		return 0
	}
	return i.hits[site]
}

// Armed reports whether any rule is armed (false for nil).
func (i *Injector) Armed() bool { return i != nil && len(i.trigger) > 0 }

// DefaultDensity is the fraction of cells a seeded plan faults.
const DefaultDensity = 0.5

// seededSites are the sites a seeded plan draws from. SiteWedge is
// deliberately absent: wedges require a watchdog timeout to resolve and
// an explicit Release to unpark, so only targeted rules arm them.
var seededSites = []Site{SiteAlloc, SiteHypercallPanic, SiteHang, SiteSinkWrite}

// seededTriggerBound caps a seeded rule's trigger count per site,
// calibrated against how often a campaign cell actually passes each
// site (boot makes ~9 allocator calls; a scenario fires a handful of
// hypercalls; the telemetry sink sees an event per traced operation).
// Most seeded rules thus fire during the cell while some stay dormant —
// both outcomes are valid chaos, and both are deterministic per cell.
var seededTriggerBound = map[Site]uint64{
	SiteAlloc:          12,
	SiteHypercallPanic: 6,
	SiteHang:           6,
	SiteSinkWrite:      64,
}

// Plan is a campaign-wide, seed-keyed fault plan: a deterministic
// function from cell identity to a freshly armed Injector. Derivation
// hashes only (seed, cell string), never run order, so identical seeds
// produce identical per-cell faults at any worker count. Explicit
// per-cell rules (ArmCell) override the seeded derivation for targeted
// tests. ForCell and ReleaseAll are safe for concurrent use.
type Plan struct {
	seed    int64
	density float64

	mu       sync.Mutex
	explicit map[string][]rule
	armed    []*Injector
}

type rule struct {
	site Site
	nth  uint64
}

// NewPlan creates a plan keyed by seed. density is the fraction of
// cells that receive seeded faults, clamped to [0, 1]; zero gives a
// plan that faults nothing until ArmCell adds explicit rules.
func NewPlan(seed int64, density float64) *Plan {
	if density < 0 {
		density = 0
	}
	if density > 1 {
		density = 1
	}
	return &Plan{seed: seed, density: density, explicit: make(map[string][]rule)}
}

// Seed returns the plan's seed, for artifact labeling.
func (p *Plan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// ArmCell pins an explicit rule for one cell identity. Explicit rules
// replace the cell's seeded derivation entirely.
func (p *Plan) ArmCell(cell string, site Site, nth uint64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.explicit[cell] = append(p.explicit[cell], rule{site: site, nth: nth})
	return p
}

// ForCell derives the cell's injector: explicit rules if any were
// pinned, otherwise the seeded derivation. Every call returns a fresh
// injector (a cell coordinate re-run — e.g. by the matrix and then the
// security benchmark — restarts its trigger counts), and the plan
// retains it so ReleaseAll can unwedge strays.
func (p *Plan) ForCell(cell string) *Injector {
	if p == nil {
		return nil
	}
	inj := NewInjector()
	p.mu.Lock()
	explicit, pinned := p.explicit[cell]
	p.armed = append(p.armed, inj)
	p.mu.Unlock()
	if pinned {
		for _, r := range explicit {
			inj.Arm(r.site, r.nth)
		}
		return inj
	}
	h := fnv.New64a()
	h.Write([]byte(cell))
	rng := rand.New(rand.NewSource(p.seed ^ int64(h.Sum64())))
	if rng.Float64() >= p.density {
		return inj
	}
	for k, n := 0, 1+rng.Intn(2); k < n; k++ {
		site := seededSites[rng.Intn(len(seededSites))]
		inj.Arm(site, 1+uint64(rng.Int63n(int64(seededTriggerBound[site]))))
	}
	return inj
}

// ReleaseAll unwedges every injector the plan has handed out. Call it
// after a campaign so watchdog-abandoned cells can terminate and their
// goroutines drain.
func (p *Plan) ReleaseAll() {
	if p == nil {
		return
	}
	p.mu.Lock()
	armed := p.armed
	p.armed = nil
	p.mu.Unlock()
	for _, inj := range armed {
		inj.Release()
	}
}
