package faults

import (
	"errors"
	"testing"
	"time"
)

// fireProfile drives every instrumented site through its first 128 hits
// and records the hit index on which each armed rule fired (0 = never).
// Two injectors with the same profile behave identically in a cell.
func fireProfile(i *Injector) map[Site]int {
	out := make(map[Site]int)
	for _, s := range []Site{SiteAlloc, SiteHypercallPanic, SiteHang, SiteSinkWrite, SiteWedge} {
		for n := 1; n <= 128; n++ {
			if i.Hit(s) {
				out[s] = n
				break
			}
		}
	}
	return out
}

func TestArmFiresOnNthHitExactlyOnce(t *testing.T) {
	i := NewInjector().Arm(SiteAlloc, 3)
	for n := 1; n <= 10; n++ {
		fired := i.Hit(SiteAlloc)
		if fired != (n == 3) {
			t.Errorf("hit %d: fired = %v", n, fired)
		}
	}
	if got := i.Fired(); len(got) != 1 || got[0] != "mm.alloc@3" {
		t.Errorf("Fired() = %v, want [mm.alloc@3]", got)
	}
	if i.Hits(SiteAlloc) != 10 {
		t.Errorf("Hits = %d, want 10", i.Hits(SiteAlloc))
	}
}

func TestArmClampsAndRearms(t *testing.T) {
	i := NewInjector().Arm(SiteHang, 0) // n < 1 arms the first hit
	if !i.Hit(SiteHang) {
		t.Error("trigger 0 did not fire on the first hit")
	}
	i = NewInjector().Arm(SiteHang, 5).Arm(SiteHang, 2) // re-arm replaces
	if i.Hit(SiteHang) {
		t.Error("fired on hit 1 after re-arming to 2")
	}
	if !i.Hit(SiteHang) {
		t.Error("did not fire on hit 2 after re-arming")
	}
}

func TestNilInjectorIsTheDisabledPlane(t *testing.T) {
	var i *Injector
	if i.Hit(SiteAlloc) {
		t.Error("nil injector fired")
	}
	if i.Hits(SiteAlloc) != 0 || i.Fired() != nil || i.Armed() {
		t.Error("nil injector reports state")
	}
	i.Block()   // must return immediately
	i.Release() // must not panic
}

func TestReleaseUnblocksAndIsIdempotent(t *testing.T) {
	i := NewInjector()
	done := make(chan struct{})
	go func() {
		i.Block()
		close(done)
	}()
	i.Release()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Block did not return after Release")
	}
	i.Release() // second release is a no-op
	i.Block()   // post-release blocks return immediately
}

func TestErrorfWrapsErrInjected(t *testing.T) {
	err := NewInjector().Errorf(SiteSinkWrite, "write %d", 7)
	if !errors.Is(err, ErrInjected) {
		t.Errorf("%v does not wrap ErrInjected", err)
	}
}

func TestForCellIsDeterministicAcrossPlansAndOrder(t *testing.T) {
	cells := []string{
		"4.6/XSA-182-test/exploit",
		"4.8/XSA-148-priv/injection",
		"4.13/XSA-212-crash/exploit",
		"4.13/XSA-212-priv/injection",
	}
	a := NewPlan(42, 1)
	b := NewPlan(42, 1)
	// Derive in opposite orders: the profile must depend only on
	// (seed, cell), never on derivation order.
	want := make(map[string]map[Site]int)
	for _, c := range cells {
		want[c] = fireProfile(a.ForCell(c))
	}
	for k := len(cells) - 1; k >= 0; k-- {
		c := cells[k]
		got := fireProfile(b.ForCell(c))
		if len(got) != len(want[c]) {
			t.Fatalf("cell %s: profile %v != %v", c, got, want[c])
		}
		for s, n := range want[c] {
			if got[s] != n {
				t.Errorf("cell %s site %s: fired at %d vs %d", c, s, got[s], n)
			}
		}
	}
	// A fresh derivation for the same cell restarts trigger counts.
	c := cells[0]
	if again := fireProfile(a.ForCell(c)); len(again) != len(want[c]) {
		t.Errorf("re-derived cell %s: %v != %v", c, again, want[c])
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	cells := []string{"a/b/c", "d/e/f", "g/h/i", "j/k/l", "m/n/o", "p/q/r"}
	same := true
	for _, c := range cells {
		p1 := fireProfile(NewPlan(1, 1).ForCell(c))
		p2 := fireProfile(NewPlan(2, 1).ForCell(c))
		if len(p1) != len(p2) {
			same = false
			break
		}
		for s, n := range p1 {
			if p2[s] != n {
				same = false
			}
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical fault plans for every probe cell")
	}
}

func TestDensityGate(t *testing.T) {
	zero := NewPlan(7, 0)
	for _, c := range []string{"a/b/c", "d/e/f", "g/h/i"} {
		if zero.ForCell(c).Armed() {
			t.Errorf("density 0 armed cell %s", c)
		}
	}
	full := NewPlan(7, 1)
	armed := 0
	for _, c := range []string{"a/b/c", "d/e/f", "g/h/i", "j/k/l"} {
		if full.ForCell(c).Armed() {
			armed++
		}
	}
	if armed != 4 {
		t.Errorf("density 1 armed %d/4 cells", armed)
	}
	// Out-of-range densities clamp instead of misbehaving.
	if NewPlan(7, -3).ForCell("a/b/c").Armed() {
		t.Error("negative density armed a cell")
	}
	if !NewPlan(7, 9).ForCell("a/b/c").Armed() {
		t.Error("density > 1 did not clamp to 1")
	}
}

func TestSeededPlansNeverArmWedge(t *testing.T) {
	p := NewPlan(99, 1)
	for _, c := range []string{"a/b/c", "d/e/f", "g/h/i", "j/k/l", "m/n/o", "p/q/r", "s/t/u", "v/w/x"} {
		inj := p.ForCell(c)
		for n := 0; n < 1024; n++ {
			if inj.Hit(SiteWedge) {
				t.Fatalf("seeded plan armed SiteWedge for cell %s", c)
			}
		}
	}
}

func TestArmCellOverridesSeededDerivation(t *testing.T) {
	p := NewPlan(42, 1).ArmCell("a/b/c", SiteWedge, 2)
	inj := p.ForCell("a/b/c")
	profile := fireProfile(inj)
	if n := profile[SiteWedge]; n != 2 {
		t.Errorf("explicit wedge rule fired at %d, want 2", n)
	}
	for _, s := range []Site{SiteAlloc, SiteHypercallPanic, SiteHang, SiteSinkWrite} {
		if n, ok := profile[s]; ok {
			t.Errorf("seeded rule %s@%d survived an explicit override", s, n)
		}
	}
}

func TestNilPlanIsTheDisabledPlane(t *testing.T) {
	var p *Plan
	if inj := p.ForCell("a/b/c"); inj != nil {
		t.Error("nil plan derived an injector")
	}
	if p.Seed() != 0 {
		t.Error("nil plan has a seed")
	}
	p.ReleaseAll() // must not panic
}

func TestReleaseAllUnwedgesDerivedInjectors(t *testing.T) {
	p := NewPlan(0, 0).ArmCell("a/b/c", SiteWedge, 1)
	inj := p.ForCell("a/b/c")
	done := make(chan struct{})
	go func() {
		if inj.Hit(SiteWedge) {
			inj.Block()
		}
		close(done)
	}()
	p.ReleaseAll()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ReleaseAll did not unwedge a derived injector")
	}
}
