package tracediff

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/hv"
)

// The RQ2 pairing. For every (scenario, version) cell the engine picks
// the strongest comparison the matrix supports:
//
//   - On a version where the exploit still induces the state, the
//     exploit run itself is the basis: its effect stream must equal the
//     injection run's (same version, different mechanism).
//   - On a fixed version the exploit is blocked — its trace ends at the
//     validation reject, so it cannot attest what the injected state
//     should look like. The basis is then the *reference* exploit: the
//     earliest version whose exploit induced the state (4.6 in the
//     paper's matrix). When the injection's security outcome matches
//     the reference's, the full effect streams are compared across
//     versions (canonicalization masks the version banners).
//   - When the outcomes differ — the hardened version *handled* the
//     injected state, the shield cells of Table III — the consequence
//     phases legitimately diverge, and the comparison narrows to the
//     monitor's marked erroneous-state audit: the injected state must
//     still look exactly like the exploit-induced one, even though the
//     system's reaction differs. That narrowing is the paper's RQ2
//     reading for handled cells: equivalence of the *state*, not of
//     the consequences the hardening suppressed.
type Basis string

// Comparison bases.
const (
	// BasisExploit compares against the same version's exploit run.
	BasisExploit Basis = "exploit@version"
	// BasisReference compares against the reference version's exploit
	// run (full effect streams, cross-version).
	BasisReference Basis = "reference-exploit"
	// BasisStateAudit compares only the marked erroneous-state audit
	// against the reference exploit's.
	BasisStateAudit Basis = "state-audit"
)

// CellVerdict is one (scenario, version) cell's trace-equivalence
// result.
type CellVerdict struct {
	// UseCase and Version identify the cell.
	UseCase string `json:"use_case"`
	Version string `json:"version"`
	// Tier is the verdict.
	Tier Tier `json:"tier"`
	// Basis says which comparison produced it.
	Basis Basis `json:"basis"`
	// RefVersion is the reference exploit's version when the basis is
	// cross-version.
	RefVersion string `json:"ref_version,omitempty"`
	// BaseEvents and InjectionEvents are the compared stream lengths
	// (effect events, or marked audit events under BasisStateAudit).
	BaseEvents      int `json:"base_events"`
	InjectionEvents int `json:"injection_events"`
	// Divergence is the first disagreement, nil unless divergent.
	Divergence *Divergence `json:"divergence,omitempty"`
}

// Equivalent reports whether the cell passed (identical or
// equivalent-modulo-noise).
func (cv *CellVerdict) Equivalent() bool { return cv.Tier != TierDivergent }

// MatrixEquivalence computes per-cell trace-equivalence verdicts for a
// profiled campaign matrix. Entries must come from a Runner with a
// Telemetry registry (every cell needs its event trace) and a fully
// successful run — a failed or unprofiled cell is an error, because an
// equivalence claim over a partial matrix would be vacuous. Verdicts
// are returned in matrix order (version-major, scenario-minor), one
// per exploit/injection pair.
func MatrixEquivalence(entries []campaign.MatrixEntry) ([]CellVerdict, error) {
	type key struct {
		version, useCase string
		mode             campaign.Mode
	}
	idx := make(map[key]*campaign.MatrixEntry, len(entries))
	for i := range entries {
		e := &entries[i]
		if e.Err != nil {
			return nil, fmt.Errorf("tracediff: cell %s/%s/%s failed: %w", e.Version, e.UseCase, e.Mode, e.Err)
		}
		if e.Result == nil || e.Result.Profile == nil {
			return nil, fmt.Errorf("tracediff: cell %s/%s/%s has no telemetry profile (run with a Telemetry registry)", e.Version, e.UseCase, e.Mode)
		}
		idx[key{e.Version, e.UseCase, e.Mode}] = e
	}

	// Reference exploit per scenario: the earliest release whose
	// exploit induced the erroneous state.
	reference := func(useCase string) *campaign.MatrixEntry {
		for _, v := range hv.Versions() {
			if e, ok := idx[key{v.Name, useCase, campaign.ModeExploit}]; ok && e.Result.Verdict.ErroneousState {
				return e
			}
		}
		return nil
	}

	// Canonical streams are cached per cell: the reference exploit's
	// stream is reused by every fixed version of its scenario.
	canon := make(map[key][]Event)
	streamOf := func(e *campaign.MatrixEntry) []Event {
		k := key{e.Version, e.UseCase, e.Mode}
		if s, ok := canon[k]; ok {
			return s
		}
		c := NewCanonicalizer(e.Version, campaign.MachineFrames)
		s := c.Events(e.Result.Profile.Events)
		canon[k] = s
		return s
	}

	var out []CellVerdict
	for i := range entries {
		e := &entries[i]
		if e.Mode != campaign.ModeExploit {
			continue
		}
		inj, ok := idx[key{e.Version, e.UseCase, campaign.ModeInjection}]
		if !ok {
			return nil, fmt.Errorf("tracediff: cell %s/%s has no injection sibling in the matrix", e.Version, e.UseCase)
		}
		cv := CellVerdict{UseCase: e.UseCase, Version: e.Version}
		iStream := streamOf(inj)

		switch {
		case e.Result.Verdict.ErroneousState:
			// The exploit worked here: strongest basis.
			cv.Basis = BasisExploit
			eStream := streamOf(e)
			cv.Tier, cv.Divergence = Compare(eStream, iStream)
			cv.BaseEvents, cv.InjectionEvents = len(effects(eStream)), len(effects(iStream))

		default:
			ref := reference(e.UseCase)
			if ref == nil {
				return nil, fmt.Errorf("tracediff: %s: no version's exploit induced the erroneous state; no reference to compare %s's injection against", e.UseCase, e.Version)
			}
			cv.RefVersion = ref.Version
			rStream := streamOf(ref)
			if inj.Result.Verdict.SecurityViolation == ref.Result.Verdict.SecurityViolation {
				cv.Basis = BasisReference
				re, ie := effects(rStream), effects(iStream)
				cv.BaseEvents, cv.InjectionEvents = len(re), len(ie)
				if d := firstDivergence(re, ie); d != nil {
					cv.Tier, cv.Divergence = TierDivergent, d
				} else {
					cv.Tier = TierEquivalent
				}
			} else {
				// Handled cell: compare the erroneous state itself.
				cv.Basis = BasisStateAudit
				ra, ia := stateAudit(rStream), stateAudit(iStream)
				cv.BaseEvents, cv.InjectionEvents = len(ra), len(ia)
				switch {
				case len(ra) == 0 && len(ia) == 0:
					// Nothing attested on either side: vacuous equality
					// is not equivalence evidence.
					cv.Tier = TierDivergent
					cv.Divergence = &Divergence{A: Absent, B: Absent}
				default:
					if d := firstDivergence(ra, ia); d != nil {
						cv.Tier, cv.Divergence = TierDivergent, d
					} else {
						cv.Tier = TierEquivalent
					}
				}
			}
		}
		out = append(out, cv)
	}
	return out, nil
}
