package tracediff

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// runProfiledMatrix runs the full default matrix with telemetry once
// per test binary; every test here reads the same entries.
func runProfiledMatrix(t *testing.T) []campaign.MatrixEntry {
	t.Helper()
	r := &campaign.Runner{Workers: 4, Telemetry: telemetry.NewRegistry()}
	entries, err := r.RunMatrix()
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	return entries
}

// TestMatrixEquivalenceGolden pins the trace-equivalence verdict of
// every default-matrix cell: the RQ2 claim at event granularity. The
// six cells pinned in detail are the same six the monitor evidence
// goldens cover (the four violated 4.6 cells and the two handled 4.13
// cells).
func TestMatrixEquivalenceGolden(t *testing.T) {
	entries := runProfiledMatrix(t)
	verdicts, err := MatrixEquivalence(entries)
	if err != nil {
		t.Fatalf("MatrixEquivalence: %v", err)
	}
	if len(verdicts) != 51 {
		t.Fatalf("got %d cell verdicts, want 51", len(verdicts))
	}
	for _, cv := range verdicts {
		if !cv.Equivalent() {
			t.Errorf("%s on %s: tier %s (basis %s), divergence %+v — every default-matrix cell must be equivalent",
				cv.UseCase, cv.Version, cv.Tier, cv.Basis, cv.Divergence)
		}
	}

	// The six monitor-golden cells, pinned in full.
	type pin struct {
		tier       Tier
		basis      Basis
		refVersion string
	}
	want := map[string]pin{
		"4.6/XSA-212-crash": {TierEquivalent, BasisExploit, ""},
		"4.6/XSA-212-priv":  {TierEquivalent, BasisExploit, ""},
		"4.6/XSA-148-priv":  {TierEquivalent, BasisExploit, ""},
		"4.6/XSA-182-test":  {TierEquivalent, BasisExploit, ""},
		// The hardened 4.13 handles these two injected states (Table
		// III shield cells): the comparison narrows to the monitor's
		// erroneous-state audit against the 4.6 reference exploit.
		"4.13/XSA-212-priv": {TierEquivalent, BasisStateAudit, "4.6"},
		"4.13/XSA-182-test": {TierEquivalent, BasisStateAudit, "4.6"},
	}
	seen := make(map[string]CellVerdict)
	for _, cv := range verdicts {
		seen[cv.Version+"/"+cv.UseCase] = cv
	}
	for cell, w := range want {
		cv, ok := seen[cell]
		if !ok {
			t.Errorf("%s: no verdict produced", cell)
			continue
		}
		if cv.Tier != w.tier || cv.Basis != w.basis || cv.RefVersion != w.refVersion {
			t.Errorf("%s: got tier=%s basis=%s ref=%q, want tier=%s basis=%s ref=%q",
				cell, cv.Tier, cv.Basis, cv.RefVersion, w.tier, w.basis, w.refVersion)
		}
		if cv.BaseEvents == 0 || cv.InjectionEvents == 0 {
			t.Errorf("%s: empty compared streams (base=%d injection=%d)", cell, cv.BaseEvents, cv.InjectionEvents)
		}
	}

	// Basis selection across the corpus: a cell whose exploit landed on
	// the same version compares in-version (BasisExploit) — all of 4.6,
	// plus the event-channel and domctl families whose trigger is the
	// legitimate interface on every version. Blocked PoCs (the
	// memory-corruption triggers on the fixed releases) fall back to the
	// 4.6 reference exploit; the two handled 4.13 paper cells narrow to
	// the erroneous-state audit.
	wantBasis := func(cv CellVerdict) (Basis, string) {
		switch {
		case cv.Version == "4.6":
			return BasisExploit, ""
		case strings.HasPrefix(cv.UseCase, "EVT-") || strings.HasPrefix(cv.UseCase, "DOMCTL-"):
			return BasisExploit, ""
		case cv.Version == "4.13" && (cv.UseCase == "XSA-212-priv" || cv.UseCase == "XSA-182-test"):
			return BasisStateAudit, "4.6"
		default:
			return BasisReference, "4.6"
		}
	}
	for _, cv := range verdicts {
		b, ref := wantBasis(cv)
		if cv.Basis != b || cv.RefVersion != ref {
			t.Errorf("%s/%s: got basis=%s ref=%q, want basis=%s ref=%q",
				cv.Version, cv.UseCase, cv.Basis, cv.RefVersion, b, ref)
		}
	}
}

// TestPerturbedTraceDiverges injects a single extra event into one
// cell's recorded stream and demands the diff reports it as divergent
// with the perturbation as the first-divergence evidence.
func TestPerturbedTraceDiverges(t *testing.T) {
	entries := runProfiledMatrix(t)
	var exp, inj *campaign.MatrixEntry
	for i := range entries {
		e := &entries[i]
		if e.Version == "4.6" && e.UseCase == "XSA-182-test" {
			switch e.Mode {
			case campaign.ModeExploit:
				exp = e
			case campaign.ModeInjection:
				inj = e
			}
		}
	}
	if exp == nil || inj == nil {
		t.Fatal("matrix missing the 4.6/XSA-182-test pair")
	}

	c := NewCanonicalizer("4.6", campaign.MachineFrames)
	base := c.Events(exp.Result.Profile.Events)

	// Perturb: duplicate one scenario step mid-stream in the injection
	// side — a single injected effect event.
	perturbed := make([]telemetry.Event, 0, len(inj.Result.Profile.Events)+1)
	idx := -1
	for i, e := range inj.Result.Profile.Events {
		perturbed = append(perturbed, e)
		if idx < 0 && e.Kind == telemetry.KindScenarioStep {
			perturbed = append(perturbed, telemetry.Event{
				Kind: telemetry.KindScenarioStep, Label: e.Label, Detail: "PERTURBED: injected event",
			})
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("injection stream has no scenario steps to perturb")
	}
	tier, div := Compare(base, c.Events(perturbed))
	if tier != TierDivergent {
		t.Fatalf("perturbed stream graded %s, want %s", tier, TierDivergent)
	}
	if div == nil {
		t.Fatal("divergent verdict carries no divergence evidence")
	}
	// The unperturbed pair is equivalent, so the first effect
	// divergence must be exactly the injected event.
	if want := "PERTURBED: injected event"; !strings.Contains(div.B, want) {
		t.Errorf("divergence evidence B = %q, want it to carry %q (divergence %+v)", div.B, want, div)
	}
}
