package tracediff

import (
	"strings"

	"repro/internal/span"
)

// Span canonicalization. A cell's span tree is structural by
// construction — virtual timestamps are deterministic per cell — but
// comparing trees *across* runs (exploit vs injection, version vs
// version) needs the same masking the event canonicalizer applies:
// version banners, mode words and addresses are run identity, and the
// virtual timestamps are mechanism-count dependent (an injector reaches
// the state in fewer events than the exploit by design). What remains
// after folding is the causal skeleton: which phases ran, what each
// dispatched, in what nesting.

// SpanTree canonicalizes one cell's span tree into indented structural
// lines, one per span in pre-order: "kind «name»", with names passed
// through the canonicalizer's text normalization and the mode-specific
// attack-phase name folded to the «mode» placeholder. Virtual and wall
// timestamps are dropped. Two runs that induced the same state through
// the same causal skeleton produce equal line slices.
func (c *Canonicalizer) SpanTree(spans []span.Span) []string {
	out := make([]string, 0, len(spans))
	depth := make([]int, len(spans))
	for i := range spans {
		s := &spans[i]
		d := 0
		if s.Parent >= 0 && s.Parent < len(spans) {
			d = depth[s.Parent] + 1
		}
		depth[i] = d
		name := c.normalizeText(s.Name)
		if s.Kind == span.KindPhase && (s.Name == span.PhaseExploit || s.Name == span.PhaseInject) {
			name = placeholderMode
		}
		var b strings.Builder
		b.WriteString(strings.Repeat("  ", d))
		b.WriteString(s.Kind.String())
		b.WriteString(" ")
		b.WriteString(name)
		if s.Aborted {
			b.WriteString(" aborted")
		}
		out = append(out, b.String())
	}
	return out
}

// CompareSpanTrees diffs two canonical span-line slices in lockstep,
// mirroring the event diff: the first disagreeing line — or the line
// where one tree ended early — is the divergence, nil if equal.
func CompareSpanTrees(a, b []string) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return &Divergence{Index: i, A: a[i], B: b[i]}
		}
	}
	switch {
	case len(a) > n:
		return &Divergence{Index: n, A: a[n], B: Absent}
	case len(b) > n:
		return &Divergence{Index: n, A: Absent, B: b[n]}
	}
	return nil
}
