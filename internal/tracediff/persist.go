package tracediff

import (
	"repro/internal/telemetry"
)

// The persisted form of a canonical stream. The campaign run ledger
// stores each profiled cell's effect stream (and its marked state-audit
// substream) as rendered lines, so RQ2 equivalence can be regraded
// offline from a run record — across resumes, and across runs in a
// cross-run diff — without keeping the raw trace. Event.String renders
// every field the structural comparison inspects, so line equality is
// event equality.

// CanonicalStreams canonicalizes a profiled cell's recorded events and
// renders its effect stream and marked state-audit substream as plain
// strings, the persisted form run-ledger records store.
func CanonicalStreams(version string, machineFrames uint64, evs []telemetry.Event) (effectLines, auditLines []string) {
	stream := NewCanonicalizer(version, machineFrames).Events(evs)
	eff := effects(stream)
	effectLines = make([]string, 0, len(eff))
	for _, e := range eff {
		effectLines = append(effectLines, e.String())
	}
	for _, e := range stateAudit(stream) {
		auditLines = append(auditLines, e.String())
	}
	return effectLines, auditLines
}

// CompareStreams grades two persisted canonical streams in lockstep,
// like Compare over live streams. Persisted streams carry only the
// effect substream — mechanism events are deliberately not kept in run
// records — so the strongest reachable tier is equivalent-modulo-noise;
// the identical tier requires the full streams. In practice this loses
// nothing: an exploit and an injection reach the state through
// different mechanisms by design, so a cross-mode comparison never
// grades identical even live.
func CompareStreams(a, b []string) (Tier, *Divergence) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return TierDivergent, &Divergence{Index: i, A: a[i], B: b[i]}
		}
	}
	switch {
	case len(a) > n:
		return TierDivergent, &Divergence{Index: n, A: a[n], B: Absent}
	case len(b) > n:
		return TierDivergent, &Divergence{Index: n, A: Absent, B: b[n]}
	}
	return TierEquivalent, nil
}
