package tracediff

// The structural diff. Equivalent runs produce structurally equal
// canonical streams, so the comparison is lockstep: the first index
// where the streams disagree — or where one ends early — is the
// divergence, reported with both events as evidence. No alignment
// recovery (LCS) is attempted: a diverging cell is a finding to
// investigate, and the first disagreement is exactly where to look.

// Tier is a cell's equivalence verdict.
type Tier string

// Verdict tiers, strongest first.
const (
	// TierIdentical means the full canonical streams — mechanism
	// included — are equal. Only runs of the same mode can earn it.
	TierIdentical Tier = "identical"
	// TierEquivalent means the effect streams are equal: the runs did
	// the same thing to the system through different mechanisms. This
	// is the RQ2 claim at event granularity.
	TierEquivalent Tier = "equivalent-modulo-noise"
	// TierDivergent means the compared streams disagree.
	TierDivergent Tier = "divergent"
)

// Divergence is the first point of disagreement between two compared
// streams: the canonical index and both events' rendered forms
// (Absent when one stream ended early).
type Divergence struct {
	// Index is the 0-based position in the compared canonical streams.
	Index int `json:"index"`
	// A and B render the disagreeing events.
	A string `json:"a"`
	B string `json:"b"`
	// ALine and BLine are 1-based JSONL source lines for offline
	// traces, 0 in-process.
	ALine int `json:"a_line,omitempty"`
	BLine int `json:"b_line,omitempty"`
}

// Absent marks the side of a divergence whose stream ended early.
const Absent = "<absent>"

// firstDivergence compares two canonical streams in lockstep and
// returns the first disagreement, nil if the streams are equal.
func firstDivergence(a, b []Event) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !a[i].equal(b[i]) {
			return &Divergence{Index: i, A: a[i].String(), B: b[i].String(), ALine: a[i].Line, BLine: b[i].Line}
		}
	}
	switch {
	case len(a) > n:
		return &Divergence{Index: n, A: a[n].String(), B: Absent, ALine: a[n].Line}
	case len(b) > n:
		return &Divergence{Index: n, A: Absent, B: b[n].String(), BLine: b[n].Line}
	}
	return nil
}

// effects extracts the effect substream.
func effects(evs []Event) []Event {
	out := make([]Event, 0, len(evs))
	for _, e := range evs {
		if e.isEffect() {
			out = append(out, e)
		}
	}
	return out
}

// stateAudit extracts the monitor's marked erroneous-state evidence.
func stateAudit(evs []Event) []Event {
	out := make([]Event, 0, 2)
	for _, e := range evs {
		if e.StateAudit {
			out = append(out, e)
		}
	}
	return out
}

// Compare grades two full canonical streams: identical if everything
// matches, equivalent-modulo-noise if the effect substreams match, and
// divergent otherwise — with the first effect divergence as evidence.
func Compare(a, b []Event) (Tier, *Divergence) {
	if firstDivergence(a, b) == nil {
		return TierIdentical, nil
	}
	ea, eb := effects(a), effects(b)
	if d := firstDivergence(ea, eb); d != nil {
		return TierDivergent, d
	}
	return TierEquivalent, nil
}
