// Package tracediff is the trace-level RQ2 equivalence engine: it
// canonicalizes per-cell telemetry event streams and structurally
// compares an exploit run's trace against an injection run's trace, so
// the paper's central claim — that injected erroneous states are
// equivalent to exploit-induced ones — is checked at event granularity
// instead of only at verdict granularity.
//
// Canonicalization removes what legitimately varies between two
// equivalent runs: wall times are never in the event stream, sequence
// numbers are renumbered per compared stream, raw addresses are folded
// to symbolic roles via the version's memory layout, and run-identity
// tokens (the version banner, the words "exploit"/"injection") are
// masked. What remains is the run's structure: which steps executed,
// which state the audit attested, in which order.
package tracediff

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/hv"
	"repro/internal/layout"
	"repro/internal/mm"
	"repro/internal/telemetry"
)

// Event is one canonicalized trace event. String fields are fully
// normalized; comparing two Events for equality (ignoring Line) is the
// unit operation of the structural diff.
type Event struct {
	// Kind is the wire name of the event kind.
	Kind string
	// Dom is the acting domain (domain ids are deterministic).
	Dom uint16
	// Nr is the hypercall number for dispatcher events.
	Nr int32
	// Addr is the symbolic form of the address operand.
	Addr string
	// Val is the decimal value operand (lengths, levels, refs — all
	// run-independent enumerations).
	Val string
	// Label and Detail are the normalized text fields.
	Label, Detail string
	// StateAudit marks the monitor's affirmative erroneous-state
	// evidence (telemetry.EvidenceStateVal on the wire).
	StateAudit bool
	// Line is the 1-based JSONL source line for offline traces, 0 for
	// in-process events.
	Line int
}

// equal reports structural equality, ignoring provenance (Line).
func (e Event) equal(o Event) bool {
	return e.Kind == o.Kind && e.Dom == o.Dom && e.Nr == o.Nr &&
		e.Addr == o.Addr && e.Val == o.Val &&
		e.Label == o.Label && e.Detail == o.Detail &&
		e.StateAudit == o.StateAudit
}

// String renders the event compactly for divergence evidence.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Kind)
	if e.Dom != 0 {
		fmt.Fprintf(&b, " dom=%d", e.Dom)
	}
	if e.Nr != 0 {
		fmt.Fprintf(&b, " nr=%d", e.Nr)
	}
	if e.Addr != "0" {
		fmt.Fprintf(&b, " addr=%s", e.Addr)
	}
	if e.Val != "0" {
		fmt.Fprintf(&b, " val=%s", e.Val)
	}
	if e.Label != "" {
		fmt.Fprintf(&b, " label=%q", e.Label)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " detail=%q", e.Detail)
	}
	if e.StateAudit {
		b.WriteString(" [state-audit]")
	}
	return b.String()
}

// Effect kinds: the events that express what a run *did to the system*
// (scenario transcript and monitor audit), as opposed to how the
// mechanism got there (hypercall traffic, frame validation churn). The
// injector reaches the erroneous state through a different mechanism
// than the exploit by design — §IV's point is precisely that the same
// state is reached without the vulnerability — so mechanism events are
// comparison noise while effect events must match.
const (
	kindScenarioStep    = "scenario_step"
	kindVerdictEvidence = "verdict_evidence"
)

// isEffect reports whether the canonical event belongs to the effect
// stream.
func (e Event) isEffect() bool {
	return e.Kind == kindScenarioStep || e.Kind == kindVerdictEvidence
}

// Canonicalizer folds one run's events into canonical form. It is bound
// to the run's version profile (for the memory-layout role lookup and
// the version-banner masking); build one per compared run.
type Canonicalizer struct {
	version       string
	roles         *layout.Map
	machineFrames uint64
	machineBytes  uint64
}

// Placeholders canonical text uses for masked run-identity tokens.
const (
	placeholderVer  = "«ver»"
	placeholderMode = "«mode»"
)

// NewCanonicalizer builds a canonicalizer for a run of the named
// version on a machine of machineFrames frames. An unknown version
// still canonicalizes (hex classification falls back to frame/phys/
// addr classes without symbolic roles), so offline traces from foreign
// builds remain diffable.
func NewCanonicalizer(version string, machineFrames uint64) *Canonicalizer {
	c := &Canonicalizer{
		version:       version,
		machineFrames: machineFrames,
		machineBytes:  machineFrames * mm.PageSize,
	}
	if v, err := hv.VersionByName(version); err == nil {
		// RoleLayout cannot fail for a known profile on a positive-size
		// machine; a failure just means no symbolic roles.
		if m, err := hv.RoleLayout(v, c.machineBytes); err == nil {
			c.roles = m
		}
	}
	return c
}

// Events canonicalizes a recorded in-process event slice, renumbering
// implicitly by order.
func (c *Canonicalizer) Events(evs []telemetry.Event) []Event {
	out := make([]Event, 0, len(evs))
	for i := range evs {
		e := &evs[i]
		out = append(out, c.canon(e.Kind.String(), e.Dom, e.Nr, e.Addr, e.Val, e.Label, e.Detail, 0))
	}
	return out
}

// Records canonicalizes JSONL trace records, skipping cell_end summary
// records (wall times and counters are not part of the event stream).
func (c *Canonicalizer) Records(recs []telemetry.TraceRecord) []Event {
	out := make([]Event, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		if r.Kind == telemetry.CellEndKind {
			continue
		}
		out = append(out, c.canon(r.Kind, r.Dom, r.Nr, r.Addr, r.Val, r.Label, r.Detail, r.Line))
	}
	return out
}

func (c *Canonicalizer) canon(kind string, dom uint16, nr int32, addr, val uint64, label, detail string, line int) Event {
	return Event{
		Kind:       kind,
		Dom:        dom,
		Nr:         nr,
		Addr:       c.classify(addr),
		Val:        strconv.FormatUint(val, 10),
		Label:      c.normalizeText(label),
		Detail:     c.normalizeText(detail),
		StateAudit: kind == kindVerdictEvidence && val == telemetry.EvidenceStateVal,
		Line:       line,
	}
}

// classify folds a numeric operand to its symbolic class: a named
// layout segment for hypervisor virtual addresses, «frame» for machine
// frame numbers, «phys» for machine-physical byte addresses, «addr»
// for anything else. Zero stays zero — it means "no operand".
func (c *Canonicalizer) classify(v uint64) string {
	switch {
	case v == 0:
		return "0"
	case c.roles != nil:
		if name, ok := c.roles.Role(v); ok {
			return "«seg:" + name + "»"
		}
	}
	switch {
	case v < c.machineFrames:
		return "«frame»"
	case v < c.machineBytes:
		return "«phys»"
	default:
		return "«addr»"
	}
}

// hexPrefixed matches 0x literals; bareHex matches unprefixed runs of
// four or more hex digits (checked for at least one decimal digit
// before replacing, so hex-alphabet words like "dead" survive).
var (
	hexPrefixed = regexp.MustCompile(`0x[0-9a-fA-F]+`)
	bareHex     = regexp.MustCompile(`\b[0-9a-fA-F]{4,}\b`)
)

// normalizeText masks the run-identity tokens out of a label or detail
// string: the run's own version banner, the mode words, and every
// address-bearing hex literal (classified like numeric operands).
func (c *Canonicalizer) normalizeText(s string) string {
	if s == "" {
		return s
	}
	if c.version != "" {
		s = strings.ReplaceAll(s, c.version, placeholderVer)
	}
	s = strings.ReplaceAll(s, "injection", placeholderMode)
	s = strings.ReplaceAll(s, "exploit", placeholderMode)
	s = hexPrefixed.ReplaceAllStringFunc(s, func(tok string) string {
		v, err := strconv.ParseUint(tok[2:], 16, 64)
		if err != nil {
			return tok
		}
		return c.classify(v)
	})
	s = bareHex.ReplaceAllStringFunc(s, func(tok string) string {
		if !strings.ContainsAny(tok, "0123456789") {
			return tok
		}
		v, err := strconv.ParseUint(tok, 16, 64)
		if err != nil {
			return tok
		}
		return c.classify(v)
	})
	return s
}
