package tracediff

import (
	"strings"

	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// Offline mode: diff two recorded JSONL traces cell by cell, without a
// live campaign's verdicts. Cells are matched by exact id
// ("version/use-case/mode"), so this compares run to run — two
// recordings of the same campaign, a known-good trace against a
// suspect one — rather than exploit to injection (that pairing needs
// the verdicts and is what `repro -equivalence` does in-process).

// TraceCellDiff is one cell's offline comparison result.
type TraceCellDiff struct {
	// Cell is the "version/use-case/mode" identity.
	Cell string `json:"cell"`
	// Tier is the verdict; a cell present in only one trace is
	// divergent by definition.
	Tier Tier `json:"tier"`
	// InA and InB report presence in each trace.
	InA bool `json:"in_a"`
	InB bool `json:"in_b"`
	// AEvents and BEvents count the cell's canonical events per side.
	AEvents int `json:"a_events"`
	BEvents int `json:"b_events"`
	// Divergence is the first disagreement, nil unless divergent (and
	// absent for one-sided cells, where the whole cell is the
	// divergence).
	Divergence *Divergence `json:"divergence,omitempty"`
}

// cellVersion extracts the version component of a cell id.
func cellVersion(cell string) string {
	if i := strings.IndexByte(cell, '/'); i >= 0 {
		return cell[:i]
	}
	return ""
}

// groupCells buckets trace records per cell, preserving first-
// appearance order.
func groupCells(recs []telemetry.TraceRecord) (map[string][]telemetry.TraceRecord, []string) {
	byCell := make(map[string][]telemetry.TraceRecord)
	var order []string
	for _, r := range recs {
		if _, ok := byCell[r.Cell]; !ok {
			order = append(order, r.Cell)
		}
		byCell[r.Cell] = append(byCell[r.Cell], r)
	}
	return byCell, order
}

// DiffTraces compares two JSONL traces cell by cell. Results follow
// trace A's cell order, with cells only in B appended in B's order.
func DiffTraces(a, b []telemetry.TraceRecord) []TraceCellDiff {
	aCells, aOrder := groupCells(a)
	bCells, bOrder := groupCells(b)

	var out []TraceCellDiff
	diffCell := func(cell string) {
		ar, inA := aCells[cell]
		br, inB := bCells[cell]
		d := TraceCellDiff{Cell: cell, InA: inA, InB: inB}
		c := NewCanonicalizer(cellVersion(cell), campaign.MachineFrames)
		var ca, cb []Event
		if inA {
			ca = c.Records(ar)
			d.AEvents = len(ca)
		}
		if inB {
			cb = c.Records(br)
			d.BEvents = len(cb)
		}
		if !inA || !inB {
			d.Tier = TierDivergent
		} else {
			d.Tier, d.Divergence = Compare(ca, cb)
		}
		out = append(out, d)
	}
	for _, cell := range aOrder {
		diffCell(cell)
	}
	for _, cell := range bOrder {
		if _, ok := aCells[cell]; !ok {
			diffCell(cell)
		}
	}
	return out
}
