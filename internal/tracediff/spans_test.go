package tracediff

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/span"
)

// buildTree assembles a small cell tree: boot, an attack phase of the
// given name with one hypercall, assess.
func buildTree(attack, hypercall string, abortAttack bool) *span.Tree {
	v := new(uint64)
	tr := span.NewTree("4.6/XSA-148-priv/x", func() uint64 { *v++; return *v })
	boot := tr.Phase(span.PhaseBoot)
	tr.End(boot)
	p := tr.Phase(attack)
	h := tr.Hypercall(hypercall)
	tr.End(h)
	if abortAttack {
		tr.Abort()
		return tr
	}
	tr.End(p)
	assess := tr.Phase(span.PhaseAssess)
	tr.End(assess)
	tr.Finish()
	return tr
}

// The canonical span skeleton folds the run's identity out: the
// mode-specific attack-phase name masks to «mode», timestamps drop, so
// an exploit tree and an injection tree that dispatched the same
// operations canonicalize identically — the RQ2 claim at span
// granularity.
func TestSpanTreeMasksModeAndTimestamps(t *testing.T) {
	c := NewCanonicalizer("4.6", campaign.MachineFrames)
	exp := c.SpanTree(buildTree(span.PhaseExploit, "mmu_update", false).Spans())
	inj := c.SpanTree(buildTree(span.PhaseInject, "mmu_update", false).Spans())
	if d := CompareSpanTrees(exp, inj); d != nil {
		t.Errorf("same-skeleton exploit/injection trees diverge: %+v", d)
	}
	var phaseLine string
	for _, l := range exp {
		if strings.Contains(l, placeholderMode) {
			phaseLine = l
		}
		if strings.Contains(l, span.PhaseExploit) {
			t.Errorf("canonical line leaks the mode word: %q", l)
		}
		if strings.Contains(l, "[") || strings.Contains(l, ",") {
			t.Errorf("canonical line leaks a timestamp interval: %q", l)
		}
	}
	if phaseLine == "" {
		t.Errorf("no masked attack-phase line in %q", exp)
	}
	// Depth renders as two-space indentation under the cell root.
	if want := "  phase " + placeholderMode; phaseLine != want {
		t.Errorf("attack-phase line = %q, want %q", phaseLine, want)
	}
}

// A differing dispatch diverges at the hypercall line; a tree that
// ended early diverges with the Absent sentinel; an aborted span is
// structurally distinct from a clean one.
func TestCompareSpanTreesDivergence(t *testing.T) {
	c := NewCanonicalizer("4.6", campaign.MachineFrames)
	base := c.SpanTree(buildTree(span.PhaseInject, "mmu_update", false).Spans())

	other := c.SpanTree(buildTree(span.PhaseInject, "grant_table_op", false).Spans())
	d := CompareSpanTrees(base, other)
	if d == nil {
		t.Fatal("different dispatches compare equal")
	}
	if !strings.Contains(d.A, "mmu_update") || !strings.Contains(d.B, "grant_table_op") {
		t.Errorf("divergence = %+v, want the differing hypercall lines", d)
	}

	short := c.SpanTree(buildTree(span.PhaseInject, "mmu_update", true).Spans())
	d = CompareSpanTrees(base, short)
	if d == nil {
		t.Fatal("aborted tree compares equal to the full run")
	}
	if !strings.Contains(d.A, "phase") && d.B != Absent {
		t.Errorf("divergence against aborted tree = %+v", d)
	}

	aborted := c.SpanTree(buildTree(span.PhaseInject, "mmu_update", true).Spans())
	found := false
	for _, l := range aborted {
		if strings.HasSuffix(l, " aborted") {
			found = true
		}
	}
	if !found {
		t.Errorf("aborted tree's canonical lines carry no aborted marker: %q", aborted)
	}

	if d := CompareSpanTrees(base, base); d != nil {
		t.Errorf("self-comparison diverges: %+v", d)
	}
}
