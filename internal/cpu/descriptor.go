// Package cpu simulates the virtual CPU surface the experiments need: an
// IDTR register exposed through sidt, 16-byte long-mode interrupt gate
// descriptors living in hypervisor memory, exception delivery with
// double-fault escalation, and a byte-coded payload execution engine that
// plays the role of attacker shellcode.
//
// Exception delivery is the causal chain behind the XSA-212-crash use
// case: corrupting the page-fault descriptor in the in-memory IDT makes
// the next #PF delivery fail, which escalates to a double fault and a
// hypervisor panic — the same mechanism, end to end, that the paper's
// experiment observes on real Xen.
package cpu

import (
	"errors"
	"fmt"
)

// Interrupt vectors used by the simulator.
const (
	// VectorDoubleFault is the x86 #DF vector.
	VectorDoubleFault = 8
	// VectorPageFault is the x86 #PF vector.
	VectorPageFault = 14
	// NumVectors is the size of the simulated IDT.
	NumVectors = 256
	// DescriptorSize is the size of a long-mode gate descriptor.
	DescriptorSize = 16
)

// Gate descriptor type field values (bits 40..43 of the low word).
const (
	gateTypeInterrupt = 0xE
	gateTypeTrap      = 0xF
)

// ErrBadDescriptor is returned when a gate descriptor cannot be used to
// dispatch an exception (not present, wrong type, garbage contents).
var ErrBadDescriptor = errors.New("cpu: invalid gate descriptor")

// GateDescriptor is a decoded long-mode interrupt/trap gate.
type GateDescriptor struct {
	// Offset is the 64-bit handler virtual address.
	Offset uint64
	// Selector is the code-segment selector (carried, not interpreted).
	Selector uint16
	// IST is the interrupt-stack-table index (carried, not interpreted).
	IST uint8
	// Type is the gate type field; interrupt and trap gates are valid.
	Type uint8
	// DPL is the descriptor privilege level.
	DPL uint8
	// Present is the P bit.
	Present bool
}

// Valid reports whether the descriptor can dispatch an exception.
func (g *GateDescriptor) Valid() bool {
	return g.Present && (g.Type == gateTypeInterrupt || g.Type == gateTypeTrap)
}

// Encode packs the descriptor into its 16-byte architectural form:
//
//	bits   0..15  offset 15:0
//	bits  16..31  selector
//	bits  32..34  IST
//	bits  40..43  type
//	bits  45..46  DPL
//	bit   47      present
//	bits  48..63  offset 31:16
//	bits  64..95  offset 63:32
func (g *GateDescriptor) Encode() [DescriptorSize]byte {
	var low, high uint64
	low |= g.Offset & 0xffff
	low |= uint64(g.Selector) << 16
	low |= uint64(g.IST&0x7) << 32
	low |= uint64(g.Type&0xf) << 40
	low |= uint64(g.DPL&0x3) << 45
	if g.Present {
		low |= 1 << 47
	}
	low |= (g.Offset >> 16 & 0xffff) << 48
	high = g.Offset >> 32
	var out [DescriptorSize]byte
	putLE64(out[0:8], low)
	putLE64(out[8:16], high)
	return out
}

// DecodeGate unpacks a 16-byte descriptor image.
func DecodeGate(raw []byte) (GateDescriptor, error) {
	if len(raw) < DescriptorSize {
		return GateDescriptor{}, fmt.Errorf("%w: %d bytes, need %d", ErrBadDescriptor, len(raw), DescriptorSize)
	}
	low := le64(raw[0:8])
	high := le64(raw[8:16])
	g := GateDescriptor{
		Offset:   low&0xffff | (low >> 48 & 0xffff << 16) | high<<32,
		Selector: uint16(low >> 16),
		IST:      uint8(low >> 32 & 0x7),
		Type:     uint8(low >> 40 & 0xf),
		DPL:      uint8(low >> 45 & 0x3),
		Present:  low&(1<<47) != 0,
	}
	return g, nil
}

// NewInterruptGate builds a present interrupt gate for the handler
// address with the hypervisor code selector.
func NewInterruptGate(handler uint64) GateDescriptor {
	return GateDescriptor{
		Offset:   handler,
		Selector: 0xe008, // __HYPERVISOR_CS
		Type:     gateTypeInterrupt,
		Present:  true,
	}
}

// IDTR is the IDT register exposed by sidt: a base linear address and a
// byte limit. The paper's XSA-212-crash use case leans on exactly this:
// "the sidt assembler instruction fetches the IDT address that is
// protected for write access".
type IDTR struct {
	Base  uint64
	Limit uint16
}

// DescriptorAddr returns the linear address of the descriptor for the
// vector.
func (r IDTR) DescriptorAddr(vector uint8) uint64 {
	return r.Base + uint64(vector)*DescriptorSize
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
