package cpu

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestGateDescriptorRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		g    GateDescriptor
	}{
		{"typical interrupt gate", NewInterruptGate(0xffff82d080201234)},
		{"trap gate with IST", GateDescriptor{Offset: 0xdeadbeefcafe, Selector: 0x10, IST: 3, Type: 0xF, DPL: 3, Present: true}},
		{"not present", GateDescriptor{Offset: 0x1000, Type: 0xE, Present: false}},
		{"zero", GateDescriptor{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			enc := tt.g.Encode()
			got, err := DecodeGate(enc[:])
			if err != nil {
				t.Fatalf("DecodeGate: %v", err)
			}
			if got != tt.g {
				t.Errorf("round trip = %+v, want %+v", got, tt.g)
			}
		})
	}
}

func TestDecodeGateShortBuffer(t *testing.T) {
	if _, err := DecodeGate(make([]byte, 5)); !errors.Is(err, ErrBadDescriptor) {
		t.Errorf("short decode: err = %v, want ErrBadDescriptor", err)
	}
}

func TestGateValidity(t *testing.T) {
	valid := NewInterruptGate(0x1000)
	if !valid.Valid() {
		t.Error("interrupt gate reported invalid")
	}
	notPresent := valid
	notPresent.Present = false
	if notPresent.Valid() {
		t.Error("non-present gate reported valid")
	}
	badType := valid
	badType.Type = 0x2
	if badType.Valid() {
		t.Error("non-gate type reported valid")
	}
	// A descriptor image made of an MFN-ish garbage value must decode to
	// something invalid — this is what makes overwriting an IDT slot with
	// an arbitrary 8-byte value fatal.
	var raw [DescriptorSize]byte
	putLE64(raw[0:8], 0x82da9)
	g, err := DecodeGate(raw[:])
	if err != nil {
		t.Fatalf("DecodeGate: %v", err)
	}
	if g.Valid() {
		t.Errorf("garbage descriptor decoded as valid: %+v", g)
	}
}

func TestIDTRDescriptorAddr(t *testing.T) {
	r := IDTR{Base: 0xffff82d080001000, Limit: NumVectors*DescriptorSize - 1}
	if got := r.DescriptorAddr(0); got != r.Base {
		t.Errorf("vector 0 at %#x, want base", got)
	}
	if got, want := r.DescriptorAddr(VectorPageFault), r.Base+14*16; got != want {
		t.Errorf("vector 14 at %#x, want %#x", got, want)
	}
}

// Property: Encode/DecodeGate round-trips for arbitrary field values
// within their architectural widths.
func TestQuickGateRoundTrip(t *testing.T) {
	f := func(offset uint64, sel uint16, ist, typ, dpl uint8, present bool) bool {
		g := GateDescriptor{
			Offset:   offset,
			Selector: sel,
			IST:      ist & 0x7,
			Type:     typ & 0xf,
			DPL:      dpl & 0x3,
			Present:  present,
		}
		enc := g.Encode()
		got, err := DecodeGate(enc[:])
		return err == nil && got == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
