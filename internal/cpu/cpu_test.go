package cpu

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/mm"
	"repro/internal/pagetable"
)

// fakePage describes one translated page of the fake address space.
type fakePage struct {
	phys    mm.PhysAddr
	perm    string // subset of "rwx"
	guestOK bool
}

// fakeSpace is a page-granular address space for CPU tests.
type fakeSpace struct {
	pages map[uint64]fakePage
}

func (s *fakeSpace) map4k(va uint64, phys mm.PhysAddr, perm string, guestOK bool) {
	if s.pages == nil {
		s.pages = make(map[uint64]fakePage)
	}
	s.pages[va&^uint64(mm.PageMask)] = fakePage{phys: phys, perm: perm, guestOK: guestOK}
}

func (s *fakeSpace) Translate(va uint64, acc pagetable.Access, guest bool) (mm.PhysAddr, error) {
	p, ok := s.pages[va&^uint64(mm.PageMask)]
	if !ok {
		return 0, &pagetable.Fault{VA: va, Access: acc, Reason: "not mapped"}
	}
	if guest && !p.guestOK {
		return 0, &pagetable.Fault{VA: va, Access: acc, Reason: "supervisor-only"}
	}
	need := map[pagetable.Access]string{
		pagetable.AccessRead:  "r",
		pagetable.AccessWrite: "w",
		pagetable.AccessExec:  "x",
	}[acc]
	if !strings.Contains(p.perm, need) {
		return 0, &pagetable.Fault{VA: va, Access: acc, Reason: "permission denied"}
	}
	return p.phys + mm.PhysAddr(va&mm.PageMask), nil
}

var _ AddressSpace = (*fakeSpace)(nil)

// fakePlat implements Platform with a crash flag and builtin registry.
type fakePlat struct {
	crashMsg string
	builtins map[uint64]BuiltinHandler
	ring0    *recordingCtx
}

func newFakePlat() *fakePlat {
	return &fakePlat{builtins: make(map[uint64]BuiltinHandler), ring0: &recordingCtx{}}
}

func (p *fakePlat) Crash(reason string) {
	if p.crashMsg == "" {
		p.crashMsg = reason
	}
}
func (p *fakePlat) Crashed() bool { return p.crashMsg != "" }
func (p *fakePlat) Builtin(va uint64) (BuiltinHandler, bool) {
	h, ok := p.builtins[va]
	return h, ok
}
func (p *fakePlat) Ring0Context() ExecContext { return p.ring0 }

var _ Platform = (*fakePlat)(nil)

// testCPU wires a machine, fake space and platform, with an IDT page
// mapped at idtVA backed by frame 0.
const (
	idtVA     = 0xffff82d080001000
	handlerVA = 0xffff82d080002000 // builtin handler addresses live here
	codeVA    = 0xffff82d080003000 // payload code page (frame 2)
)

func newTestCPU(t *testing.T) (*CPU, *mm.Memory, *fakeSpace, *fakePlat) {
	t.Helper()
	mem, err := mm.NewMemory(16)
	if err != nil {
		t.Fatal(err)
	}
	space := &fakeSpace{}
	space.map4k(idtVA, 0, "rw", false)
	space.map4k(codeVA, 2*mm.PageSize, "rwx", false)
	plat := newFakePlat()
	c := New(0, mem, space, plat)
	c.LIDT(IDTR{Base: idtVA, Limit: NumVectors*DescriptorSize - 1})
	return c, mem, space, plat
}

// installGate writes a descriptor for the vector into the IDT page.
func installGate(t *testing.T, c *CPU, vector uint8, g GateDescriptor) {
	t.Helper()
	enc := g.Encode()
	if err := c.WriteVirt(c.SIDT().DescriptorAddr(vector), enc[:], false); err != nil {
		t.Fatalf("installing gate %d: %v", vector, err)
	}
}

func TestVirtReadWriteCrossesPages(t *testing.T) {
	c, _, space, _ := newTestCPU(t)
	space.map4k(0xffff82d080004000, 4*mm.PageSize, "rw", false)
	space.map4k(0xffff82d080005000, 5*mm.PageSize, "rw", false)
	msg := []byte("crossing a page boundary here")
	va := uint64(0xffff82d080004ff0)
	if err := c.WriteVirt(va, msg, false); err != nil {
		t.Fatalf("WriteVirt: %v", err)
	}
	got := make([]byte, len(msg))
	if err := c.ReadVirt(va, got, false); err != nil {
		t.Fatalf("ReadVirt: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("round trip = %q, want %q", got, msg)
	}
}

func TestVirtU64Accessors(t *testing.T) {
	c, _, _, _ := newTestCPU(t)
	if err := c.WriteVirtU64(codeVA+8, 0x1122334455667788, false); err != nil {
		t.Fatalf("WriteVirtU64: %v", err)
	}
	v, err := c.ReadVirtU64(codeVA+8, false)
	if err != nil {
		t.Fatalf("ReadVirtU64: %v", err)
	}
	if v != 0x1122334455667788 {
		t.Errorf("read %#x", v)
	}
}

func TestVirtAccessFaults(t *testing.T) {
	c, _, _, _ := newTestCPU(t)
	var fault *pagetable.Fault
	if err := c.ReadVirt(0xffff82d080009000, make([]byte, 8), false); !errors.As(err, &fault) {
		t.Errorf("unmapped read: err = %v, want fault", err)
	}
	// Guest access to a supervisor-only page.
	if err := c.ReadVirt(idtVA, make([]byte, 8), true); !errors.As(err, &fault) {
		t.Errorf("guest read of IDT: err = %v, want fault", err)
	}
	// Write to a read-execute page.
	if err := c.WriteVirt(idtVA, make([]byte, 8), false); err != nil {
		t.Errorf("write to rw idt page: %v", err)
	}
}

func TestExecutePayloadAt(t *testing.T) {
	c, mem, _, _ := newTestCPU(t)
	raw := Assemble(Program{
		{Op: OpLog, Args: []string{"payload ran"}},
		{Op: OpEscalate},
	})
	if err := mem.WritePhys(2*mm.PageSize, raw); err != nil {
		t.Fatal(err)
	}
	ctx := &recordingCtx{}
	if err := c.ExecutePayloadAt(codeVA, ctx, false); err != nil {
		t.Fatalf("ExecutePayloadAt: %v", err)
	}
	if len(ctx.logs) != 1 || !ctx.escalated {
		t.Errorf("payload effects missing: %+v", ctx)
	}
}

func TestExecutePayloadRequiresExec(t *testing.T) {
	c, mem, space, _ := newTestCPU(t)
	space.map4k(0xffff82d080006000, 6*mm.PageSize, "rw", false) // no x
	raw := Assemble(Program{{Op: OpNop}})
	if err := mem.WritePhys(6*mm.PageSize, raw); err != nil {
		t.Fatal(err)
	}
	if err := c.ExecutePayloadAt(0xffff82d080006000, &recordingCtx{}, false); err == nil {
		t.Error("executing non-executable page succeeded")
	}
}

func TestExecutePayloadGarbageRejected(t *testing.T) {
	c, mem, _, _ := newTestCPU(t)
	if err := mem.WritePhys(2*mm.PageSize, []byte{0x12, 0x34, 0x56}); err != nil {
		t.Fatal(err)
	}
	if err := c.ExecutePayloadAt(codeVA, &recordingCtx{}, false); !errors.Is(err, ErrNotPayload) {
		t.Errorf("err = %v, want ErrNotPayload", err)
	}
}

func TestExecutePayloadTruncatesAtUnmappedPage(t *testing.T) {
	c, mem, _, _ := newTestCPU(t)
	// Payload sits at the very end of the code page; the next page is
	// unmapped, so the fetch must stop there and still decode.
	raw := Assemble(Program{{Op: OpLog, Args: []string{"tail"}}})
	off := mm.PageSize - len(raw)
	if err := mem.WritePhys(2*mm.PageSize+mm.PhysAddr(off), raw); err != nil {
		t.Fatal(err)
	}
	ctx := &recordingCtx{}
	if err := c.ExecutePayloadAt(codeVA+uint64(off), ctx, false); err != nil {
		t.Fatalf("ExecutePayloadAt at page tail: %v", err)
	}
	if len(ctx.logs) != 1 {
		t.Errorf("logs = %v", ctx.logs)
	}
}

func TestDeliverExceptionBuiltin(t *testing.T) {
	c, _, _, plat := newTestCPU(t)
	var gotVector uint8
	plat.builtins[handlerVA] = func(v uint8) error { gotVector = v; return nil }
	installGate(t, c, VectorPageFault, NewInterruptGate(handlerVA))
	if err := c.DeliverException(VectorPageFault); err != nil {
		t.Fatalf("DeliverException: %v", err)
	}
	if gotVector != VectorPageFault {
		t.Errorf("builtin got vector %d, want %d", gotVector, VectorPageFault)
	}
}

func TestDeliverExceptionPayloadHandler(t *testing.T) {
	c, mem, _, plat := newTestCPU(t)
	raw := Assemble(Program{{Op: OpLog, Args: []string{"attacker handler at ring0"}}})
	if err := mem.WritePhys(2*mm.PageSize, raw); err != nil {
		t.Fatal(err)
	}
	installGate(t, c, 0x80, NewInterruptGate(codeVA))
	if err := c.SoftwareInterrupt(0x80); err != nil {
		t.Fatalf("SoftwareInterrupt: %v", err)
	}
	if len(plat.ring0.logs) != 1 {
		t.Errorf("ring0 logs = %v", plat.ring0.logs)
	}
}

// The XSA-212-crash causal chain: corrupt #PF descriptor, valid #DF
// builtin that panics — delivering a page fault must end in the panic.
func TestDeliverCorruptPFDescriptorDoubleFaults(t *testing.T) {
	c, _, _, plat := newTestCPU(t)
	plat.builtins[handlerVA+16] = func(uint8) error {
		plat.Crash("FATAL TRAP: vector = 8 (double fault)")
		return ErrCrashed
	}
	installGate(t, c, VectorDoubleFault, NewInterruptGate(handlerVA+16))
	// Overwrite the #PF slot with a garbage 8-byte value, as the exploit
	// and the injector both do.
	if err := c.WriteVirtU64(c.SIDT().DescriptorAddr(VectorPageFault), 0x82da9, false); err != nil {
		t.Fatal(err)
	}
	err := c.DeliverException(VectorPageFault)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !strings.Contains(plat.crashMsg, "double fault") {
		t.Errorf("crash = %q, want double fault", plat.crashMsg)
	}
}

// With no valid #DF descriptor either, escalation must still kill the
// hypervisor (the built-in FATAL TRAP path).
func TestDeliverWithDeadIDTCrashes(t *testing.T) {
	c, _, _, plat := newTestCPU(t)
	err := c.DeliverException(VectorPageFault)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !strings.Contains(plat.crashMsg, "FATAL TRAP: vector = 8") {
		t.Errorf("crash = %q, want FATAL TRAP vector 8", plat.crashMsg)
	}
}

func TestTripleFault(t *testing.T) {
	c, _, _, plat := newTestCPU(t)
	// A #DF builtin that itself re-raises: fault during double-fault
	// delivery = triple fault.
	plat.builtins[handlerVA+16] = func(uint8) error {
		return c.DeliverException(VectorDoubleFault)
	}
	installGate(t, c, VectorDoubleFault, NewInterruptGate(handlerVA+16))
	err := c.DeliverException(VectorPageFault)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !strings.Contains(plat.crashMsg, "TRIPLE FAULT") {
		t.Errorf("crash = %q, want TRIPLE FAULT", plat.crashMsg)
	}
}

func TestCrashedCPUStopsWorking(t *testing.T) {
	c, _, _, plat := newTestCPU(t)
	plat.Crash("dead")
	if err := c.ReadVirt(idtVA, make([]byte, 1), false); !errors.Is(err, ErrCrashed) {
		t.Errorf("ReadVirt after crash: err = %v, want ErrCrashed", err)
	}
	if err := c.DeliverException(VectorPageFault); !errors.Is(err, ErrCrashed) {
		t.Errorf("DeliverException after crash: err = %v, want ErrCrashed", err)
	}
	if err := c.ExecutePayloadAt(codeVA, &recordingCtx{}, false); !errors.Is(err, ErrCrashed) {
		t.Errorf("ExecutePayloadAt after crash: err = %v, want ErrCrashed", err)
	}
}

func TestSIDTReflectsLIDT(t *testing.T) {
	c, _, _, _ := newTestCPU(t)
	r := IDTR{Base: 0xffff82d080007000, Limit: 4095}
	c.LIDT(r)
	if got := c.SIDT(); got != r {
		t.Errorf("SIDT = %+v, want %+v", got, r)
	}
	if c.ID() != 0 {
		t.Errorf("ID = %d", c.ID())
	}
}
