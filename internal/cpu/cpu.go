package cpu

import (
	"errors"
	"fmt"

	"repro/internal/mm"
	"repro/internal/pagetable"
)

// AddressSpace resolves virtual addresses for a CPU. The hypervisor
// provides one per domain: hypervisor segments are resolved through the
// layout map and everything else through the domain's page tables, with
// guestInitiated selecting the privilege the access is checked against.
type AddressSpace interface {
	// Translate resolves va for one access of kind acc, returning the
	// machine-physical address. Accesses never cross page boundaries.
	Translate(va uint64, acc pagetable.Access, guestInitiated bool) (mm.PhysAddr, error)
}

// Platform is the set of hypervisor services exception delivery needs.
type Platform interface {
	// Crash records a fatal hypervisor failure; after it is called the
	// machine stops making progress.
	Crash(reason string)
	// Crashed reports whether the hypervisor has crashed.
	Crashed() bool
	// Builtin resolves a handler virtual address to a registered native
	// handler (the hypervisor's own trap handlers).
	Builtin(handlerVA uint64) (BuiltinHandler, bool)
	// Ring0Context returns the execution context payloads dispatched
	// through the hardware IDT run under: hypervisor privilege with
	// reach into every domain.
	Ring0Context() ExecContext
}

// BuiltinHandler is a native hypervisor trap handler.
type BuiltinHandler func(vector uint8) error

// ErrCrashed is returned by CPU operations once the hypervisor has died.
var ErrCrashed = errors.New("cpu: hypervisor has crashed")

// maxFaultNesting bounds exception-in-exception recursion: a fault while
// delivering the double fault is a triple fault.
const maxFaultNesting = 2

// payloadFetchLimit bounds how many bytes ExecutePayloadAt reads.
const payloadFetchLimit = 2048

// CPU is one simulated virtual CPU.
type CPU struct {
	id         int
	mem        *mm.Memory
	space      AddressSpace
	plat       Platform
	idtr       IDTR
	delivering int
}

// New creates a CPU over the machine, bound to an address space and the
// hypervisor platform services.
func New(id int, mem *mm.Memory, space AddressSpace, plat Platform) *CPU {
	return &CPU{id: id, mem: mem, space: space, plat: plat}
}

// ID returns the CPU number.
func (c *CPU) ID() int { return c.id }

// SIDT returns the IDT register, as the unprivileged sidt instruction
// does — this is how the XSA-212-crash exploit learns where the IDT
// lives.
func (c *CPU) SIDT() IDTR { return c.idtr }

// LIDT loads the IDT register. Only the hypervisor does this, at boot.
func (c *CPU) LIDT(r IDTR) { c.idtr = r }

// ReadVirt reads len(buf) bytes from virtual memory, translating page by
// page. guestInitiated selects the privilege of the access.
func (c *CPU) ReadVirt(va uint64, buf []byte, guestInitiated bool) error {
	return c.accessVirt(va, buf, pagetable.AccessRead, guestInitiated)
}

// WriteVirt writes buf to virtual memory.
func (c *CPU) WriteVirt(va uint64, buf []byte, guestInitiated bool) error {
	return c.accessVirt(va, buf, pagetable.AccessWrite, guestInitiated)
}

// ReadVirtU64 reads a 64-bit little-endian word from virtual memory.
func (c *CPU) ReadVirtU64(va uint64, guestInitiated bool) (uint64, error) {
	var b [8]byte
	if err := c.ReadVirt(va, b[:], guestInitiated); err != nil {
		return 0, err
	}
	return le64(b[:]), nil
}

// WriteVirtU64 writes a 64-bit little-endian word to virtual memory.
func (c *CPU) WriteVirtU64(va uint64, v uint64, guestInitiated bool) error {
	var b [8]byte
	putLE64(b[:], v)
	return c.WriteVirt(va, b[:], guestInitiated)
}

func (c *CPU) accessVirt(va uint64, buf []byte, acc pagetable.Access, guestInitiated bool) error {
	if c.plat != nil && c.plat.Crashed() {
		return ErrCrashed
	}
	done := 0
	for done < len(buf) {
		cur := va + uint64(done)
		phys, err := c.space.Translate(cur, acc, guestInitiated)
		if err != nil {
			return err
		}
		// Stay within the current page for this chunk.
		pageRemain := int(mm.PageSize - cur&mm.PageMask)
		n := len(buf) - done
		if n > pageRemain {
			n = pageRemain
		}
		if acc == pagetable.AccessWrite {
			err = c.mem.WritePhys(phys, buf[done:done+n])
		} else {
			err = c.mem.ReadPhys(phys, buf[done:done+n])
		}
		if err != nil {
			return err
		}
		done += n
	}
	return nil
}

// ExecutePayloadAt fetches payload bytes from virtual memory starting at
// va — the first page with execute permission, continuations with read —
// decodes them and runs the program against ctx. It is how both IDT-
// dispatched shellcode and the patched vDSO run.
func (c *CPU) ExecutePayloadAt(va uint64, ctx ExecContext, guestInitiated bool) error {
	if c.plat != nil && c.plat.Crashed() {
		return ErrCrashed
	}
	buf := make([]byte, 0, payloadFetchLimit)
	for len(buf) < payloadFetchLimit {
		cur := va + uint64(len(buf))
		acc := pagetable.AccessRead
		if len(buf) == 0 {
			acc = pagetable.AccessExec
		}
		phys, err := c.space.Translate(cur, acc, guestInitiated)
		if err != nil {
			if len(buf) == 0 {
				return fmt.Errorf("cpu: fetching payload at %#x: %w", va, err)
			}
			break // later pages unmapped: decode what we have
		}
		chunk := int(mm.PageSize - cur&mm.PageMask)
		if remain := payloadFetchLimit - len(buf); chunk > remain {
			chunk = remain
		}
		tmp := make([]byte, chunk)
		if err := c.mem.ReadPhys(phys, tmp); err != nil {
			return err
		}
		buf = append(buf, tmp...)
	}
	prog, err := Disassemble(buf)
	if err != nil {
		return fmt.Errorf("cpu: decoding payload at %#x: %w", va, err)
	}
	return Run(prog, ctx)
}

// DeliverException vectors an exception through the in-memory IDT, the
// way hardware would. A descriptor that cannot dispatch — not present,
// wrong type, or pointing at garbage — escalates to a double fault; a
// failure while delivering the double fault is a triple fault. Either
// way the hypervisor dies, which is exactly the XSA-212-crash security
// violation.
func (c *CPU) DeliverException(vector uint8) error {
	if c.plat.Crashed() {
		return ErrCrashed
	}
	c.delivering++
	defer func() { c.delivering-- }()
	if c.delivering > maxFaultNesting {
		c.plat.Crash(fmt.Sprintf("TRIPLE FAULT on CPU %d — system reset", c.id))
		return ErrCrashed
	}

	raw := make([]byte, DescriptorSize)
	// The IDT is hypervisor memory; descriptor fetch happens at
	// hypervisor privilege.
	if err := c.ReadVirt(c.idtr.DescriptorAddr(vector), raw, false); err != nil {
		return c.escalate(vector, fmt.Sprintf("IDT descriptor for vector %d unreadable: %v", vector, err))
	}
	gate, err := DecodeGate(raw)
	if err != nil {
		return c.escalate(vector, err.Error())
	}
	if !gate.Valid() {
		return c.escalate(vector, fmt.Sprintf("descriptor for vector %d not present/valid", vector))
	}
	if handler, ok := c.plat.Builtin(gate.Offset); ok {
		return handler(vector)
	}
	// A non-builtin handler address: jump there and try to execute it as
	// code, at hypervisor privilege (this is how injected IDT entries
	// give attackers ring-0 execution).
	if err := c.ExecutePayloadAt(gate.Offset, c.plat.Ring0Context(), false); err != nil {
		if errors.Is(err, ErrCrashed) {
			return err
		}
		return c.escalate(vector, fmt.Sprintf("handler at %#x is not executable code: %v", gate.Offset, err))
	}
	return nil
}

// escalate promotes a failed delivery to a double fault, or panics the
// hypervisor when the double fault itself cannot be delivered.
func (c *CPU) escalate(vector uint8, reason string) error {
	if vector == VectorDoubleFault {
		c.plat.Crash(fmt.Sprintf("FATAL TRAP: vector = 8 (double fault) on CPU %d: %s", c.id, reason))
		return ErrCrashed
	}
	return c.DeliverException(VectorDoubleFault)
}

// SoftwareInterrupt raises a software interrupt (int n), dispatching it
// through the IDT like an exception. Exploits use it to invoke handler
// entries they registered.
func (c *CPU) SoftwareInterrupt(vector uint8) error {
	return c.DeliverException(vector)
}
