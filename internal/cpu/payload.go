package cpu

import (
	"errors"
	"fmt"
	"strings"
)

// Opcode is one instruction of the simulated payload machine. Payloads
// stand in for the native shellcode real exploits inject: they are
// assembled to bytes, must be physically written into simulated machine
// memory before they can run, and are executed by fetching those bytes
// back through the MMU — so a blocked memory write means no payload, the
// same causality as on hardware.
type Opcode uint8

// Payload instruction set.
const (
	// OpNop does nothing.
	OpNop Opcode = iota + 1
	// OpRet ends execution.
	OpRet
	// OpLog emits its string argument to the execution context's log.
	OpLog
	// OpDropFileAll writes a file into every domain's filesystem as
	// root; arguments are path and a content template in which "@HOST"
	// expands to each domain's hostname. This is the XSA-212-priv
	// payload's observable effect.
	OpDropFileAll
	// OpReverseShell connects from the current execution context to the
	// string argument address and serves an interactive shell with the
	// context's privileges. This is the XSA-148 backdoor's effect.
	OpReverseShell
	// OpClockGettime performs the benign work of the unpatched vDSO.
	OpClockGettime
	// OpEscalate raises the current execution context to root.
	OpEscalate
	// OpHalt spins forever (used to model hang-state injections); the
	// context's Halt hook decides how a hang is represented.
	OpHalt
)

// String returns the mnemonic of the opcode.
func (o Opcode) String() string {
	switch o {
	case OpNop:
		return "nop"
	case OpRet:
		return "ret"
	case OpLog:
		return "log"
	case OpDropFileAll:
		return "dropfile_all"
	case OpReverseShell:
		return "revshell"
	case OpClockGettime:
		return "clock_gettime"
	case OpEscalate:
		return "escalate"
	case OpHalt:
		return "halt"
	default:
		return fmt.Sprintf("Opcode(%d)", uint8(o))
	}
}

// argCount returns how many string arguments the opcode carries.
func (o Opcode) argCount() int {
	switch o {
	case OpLog, OpReverseShell:
		return 1
	case OpDropFileAll:
		return 2
	default:
		return 0
	}
}

// Instr is one decoded payload instruction.
type Instr struct {
	Op   Opcode
	Args []string
}

// String renders the instruction in assembly-like form.
func (i Instr) String() string {
	if len(i.Args) == 0 {
		return i.Op.String()
	}
	return i.Op.String() + " " + strings.Join(i.Args, ", ")
}

// Program is a payload instruction sequence.
type Program []Instr

// PayloadMagic prefixes every assembled payload so that executing
// arbitrary garbage is detectable as such (the MMU-level equivalent of
// jumping into non-code bytes).
var PayloadMagic = []byte{0x7f, 'P', 'L', 'D'}

// Payload codec errors.
var (
	// ErrNotPayload is returned when fetched bytes lack the payload magic.
	ErrNotPayload = errors.New("cpu: bytes are not a payload (bad magic)")
	// ErrTruncatedPayload is returned when decoding runs off the end.
	ErrTruncatedPayload = errors.New("cpu: truncated payload")
	// ErrRunawayPayload is returned when execution exceeds the step budget.
	ErrRunawayPayload = errors.New("cpu: payload exceeded execution budget")
)

// Assemble encodes the program: magic, then per instruction one opcode
// byte followed by length-prefixed (u16 little-endian) string arguments.
// A terminating OpRet is appended if the program lacks one.
func Assemble(p Program) []byte {
	out := make([]byte, 0, 64)
	out = append(out, PayloadMagic...)
	hasRet := false
	for _, ins := range p {
		out = append(out, byte(ins.Op))
		for _, a := range ins.Args {
			out = append(out, byte(len(a)), byte(len(a)>>8))
			out = append(out, a...)
		}
		if ins.Op == OpRet {
			hasRet = true
		}
	}
	if !hasRet {
		out = append(out, byte(OpRet))
	}
	return out
}

// Disassemble decodes an assembled payload image back into a program,
// stopping at the first OpRet.
func Disassemble(raw []byte) (Program, error) {
	if len(raw) < len(PayloadMagic) || string(raw[:len(PayloadMagic)]) != string(PayloadMagic) {
		return nil, ErrNotPayload
	}
	var prog Program
	pos := len(PayloadMagic)
	for {
		if pos >= len(raw) {
			return nil, fmt.Errorf("%w: no terminating ret", ErrTruncatedPayload)
		}
		op := Opcode(raw[pos])
		pos++
		n := op.argCount()
		if op.String() == fmt.Sprintf("Opcode(%d)", uint8(op)) {
			return nil, fmt.Errorf("%w: unknown opcode %#x at offset %d", ErrNotPayload, uint8(op), pos-1)
		}
		ins := Instr{Op: op}
		for i := 0; i < n; i++ {
			if pos+2 > len(raw) {
				return nil, fmt.Errorf("%w: argument length at offset %d", ErrTruncatedPayload, pos)
			}
			l := int(raw[pos]) | int(raw[pos+1])<<8
			pos += 2
			if pos+l > len(raw) {
				return nil, fmt.Errorf("%w: argument body at offset %d", ErrTruncatedPayload, pos)
			}
			ins.Args = append(ins.Args, string(raw[pos:pos+l]))
			pos += l
		}
		prog = append(prog, ins)
		if op == OpRet {
			return prog, nil
		}
	}
}

// ExecContext supplies the privileged operations payload instructions
// perform. The hypervisor provides a ring-0 context (all-domain reach);
// guest kernels provide per-process contexts (the vDSO backdoor runs with
// the invoking process's identity).
type ExecContext interface {
	// Logf records a message attributed to the executing payload.
	Logf(format string, args ...any)
	// DropFileAllDomains writes path with the content template (with
	// "@HOST" expanded per domain) as root into every domain.
	DropFileAllDomains(path, contentTemplate string) error
	// ReverseShell connects to addr and serves a shell with the current
	// context's privileges.
	ReverseShell(addr string) error
	// Escalate raises the context to root.
	Escalate()
	// ClockGettime performs the benign vDSO work.
	ClockGettime()
	// Halt models entering a hang state.
	Halt()
}

// maxPayloadSteps bounds execution so corrupt payloads cannot loop the
// simulator forever.
const maxPayloadSteps = 1024

// Run executes a decoded program against the context.
func Run(p Program, ctx ExecContext) error {
	steps := 0
	for _, ins := range p {
		steps++
		if steps > maxPayloadSteps {
			return ErrRunawayPayload
		}
		switch ins.Op {
		case OpNop:
		case OpRet:
			return nil
		case OpLog:
			ctx.Logf("%s", ins.Args[0])
		case OpDropFileAll:
			if err := ctx.DropFileAllDomains(ins.Args[0], ins.Args[1]); err != nil {
				return fmt.Errorf("cpu: dropfile_all: %w", err)
			}
		case OpReverseShell:
			if err := ctx.ReverseShell(ins.Args[0]); err != nil {
				return fmt.Errorf("cpu: revshell: %w", err)
			}
		case OpClockGettime:
			ctx.ClockGettime()
		case OpEscalate:
			ctx.Escalate()
		case OpHalt:
			ctx.Halt()
			return nil
		default:
			return fmt.Errorf("%w: opcode %d", ErrNotPayload, ins.Op)
		}
	}
	return nil
}
