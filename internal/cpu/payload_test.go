package cpu

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// recordingCtx records every context operation a payload performs.
type recordingCtx struct {
	logs      []string
	dropped   []string
	shells    []string
	escalated bool
	clock     int
	halted    bool
	shellErr  error
}

func (r *recordingCtx) Logf(format string, args ...any) {
	r.logs = append(r.logs, fmt.Sprintf(format, args...))
}
func (r *recordingCtx) DropFileAllDomains(path, tmpl string) error {
	r.dropped = append(r.dropped, path+"|"+tmpl)
	return nil
}
func (r *recordingCtx) ReverseShell(addr string) error {
	r.shells = append(r.shells, addr)
	return r.shellErr
}
func (r *recordingCtx) Escalate()     { r.escalated = true }
func (r *recordingCtx) ClockGettime() { r.clock++ }
func (r *recordingCtx) Halt()         { r.halted = true }

var _ ExecContext = (*recordingCtx)(nil)

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	prog := Program{
		{Op: OpLog, Args: []string{"hello from ring0"}},
		{Op: OpDropFileAll, Args: []string{"/tmp/injector_log", "|uid=0(root)|@HOST"}},
		{Op: OpEscalate},
		{Op: OpReverseShell, Args: []string{"10.3.1.100:1234"}},
		{Op: OpClockGettime},
		{Op: OpNop},
		{Op: OpRet},
	}
	raw := Assemble(prog)
	got, err := Disassemble(raw)
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	if len(got) != len(prog) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(prog))
	}
	for i := range prog {
		if got[i].String() != prog[i].String() {
			t.Errorf("instr %d = %v, want %v", i, got[i], prog[i])
		}
	}
}

func TestAssembleAppendsRet(t *testing.T) {
	raw := Assemble(Program{{Op: OpNop}})
	prog, err := Disassemble(raw)
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	if prog[len(prog)-1].Op != OpRet {
		t.Error("assembled program does not end in ret")
	}
}

func TestDisassembleRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		raw  []byte
		want error
	}{
		{"empty", nil, ErrNotPayload},
		{"bad magic", []byte("ELF\x7fwhatever"), ErrNotPayload},
		{"magic only", append([]byte{}, PayloadMagic...), ErrTruncatedPayload},
		{"unknown opcode", append(append([]byte{}, PayloadMagic...), 0xEE), ErrNotPayload},
		{"truncated arg length", append(append([]byte{}, PayloadMagic...), byte(OpLog), 0x10), ErrTruncatedPayload},
		{"truncated arg body", append(append([]byte{}, PayloadMagic...), byte(OpLog), 0x10, 0x00, 'h', 'i'), ErrTruncatedPayload},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Disassemble(tt.raw); !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestRunExecutesEffects(t *testing.T) {
	ctx := &recordingCtx{}
	prog := Program{
		{Op: OpLog, Args: []string{"installing"}},
		{Op: OpEscalate},
		{Op: OpDropFileAll, Args: []string{"/tmp/x", "c"}},
		{Op: OpReverseShell, Args: []string{"a:1"}},
		{Op: OpClockGettime},
		{Op: OpRet},
		{Op: OpLog, Args: []string{"unreachable"}},
	}
	if err := Run(prog, ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ctx.logs) != 1 || ctx.logs[0] != "installing" {
		t.Errorf("logs = %v", ctx.logs)
	}
	if !ctx.escalated || len(ctx.dropped) != 1 || len(ctx.shells) != 1 || ctx.clock != 1 {
		t.Errorf("effects = %+v", ctx)
	}
}

func TestRunHaltStops(t *testing.T) {
	ctx := &recordingCtx{}
	prog := Program{{Op: OpHalt}, {Op: OpLog, Args: []string{"after halt"}}}
	if err := Run(prog, ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ctx.halted || len(ctx.logs) != 0 {
		t.Errorf("halt semantics wrong: %+v", ctx)
	}
}

func TestRunPropagatesShellError(t *testing.T) {
	ctx := &recordingCtx{shellErr: errors.New("connection refused")}
	prog := Program{{Op: OpReverseShell, Args: []string{"b:2"}}}
	if err := Run(prog, ctx); err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Errorf("err = %v, want connection refused", err)
	}
}

func TestRunStepBudget(t *testing.T) {
	prog := make(Program, maxPayloadSteps+10)
	for i := range prog {
		prog[i] = Instr{Op: OpNop}
	}
	if err := Run(prog, &recordingCtx{}); !errors.Is(err, ErrRunawayPayload) {
		t.Errorf("err = %v, want ErrRunawayPayload", err)
	}
}

func TestOpcodeStrings(t *testing.T) {
	for _, op := range []Opcode{OpNop, OpRet, OpLog, OpDropFileAll, OpReverseShell, OpClockGettime, OpEscalate, OpHalt} {
		if s := op.String(); strings.HasPrefix(s, "Opcode(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if s := Opcode(99).String(); s != "Opcode(99)" {
		t.Errorf("unknown opcode string = %q", s)
	}
}

// Property: Assemble/Disassemble round-trips for arbitrary programs of
// string-bearing instructions.
func TestQuickPayloadRoundTrip(t *testing.T) {
	ops := []Opcode{OpNop, OpLog, OpDropFileAll, OpReverseShell, OpClockGettime, OpEscalate}
	f := func(picks []byte, argSeed string) bool {
		var prog Program
		for _, p := range picks {
			op := ops[int(p)%len(ops)]
			ins := Instr{Op: op}
			for i := 0; i < op.argCount(); i++ {
				// Vary argument contents and lengths from the seed.
				n := int(p) % (len(argSeed) + 1)
				ins.Args = append(ins.Args, argSeed[:n])
			}
			prog = append(prog, ins)
		}
		prog = append(prog, Instr{Op: OpRet})
		raw := Assemble(prog)
		got, err := Disassemble(raw)
		if err != nil || len(got) != len(prog) {
			return false
		}
		for i := range prog {
			if got[i].String() != prog[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Disassemble never panics and never loops on arbitrary bytes;
// it either decodes a terminated program or returns a typed error. This
// is the guarantee that makes "jump to garbage" a recoverable event the
// exception path can escalate, rather than a simulator hang.
func TestQuickDisassembleTotal(t *testing.T) {
	f := func(raw []byte) bool {
		prog, err := Disassemble(raw)
		if err != nil {
			return errors.Is(err, ErrNotPayload) || errors.Is(err, ErrTruncatedPayload)
		}
		return len(prog) > 0 && prog[len(prog)-1].Op == OpRet
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Same for magic-prefixed garbage, which exercises the decoder body.
	g := func(body []byte) bool {
		raw := append(append([]byte{}, PayloadMagic...), body...)
		prog, err := Disassemble(raw)
		if err != nil {
			return errors.Is(err, ErrNotPayload) || errors.Is(err, ErrTruncatedPayload)
		}
		return len(prog) > 0
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
