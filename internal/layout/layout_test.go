package layout

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mm"
)

func TestPermString(t *testing.T) {
	tests := []struct {
		p    Perm
		want string
	}{
		{PermNone, "---"},
		{PermR, "r--"},
		{PermRW, "rw-"},
		{PermRX, "r-x"},
		{PermRWX, "rwx"},
		{PermW, "-w-"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("Perm(%d).String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestPermAllows(t *testing.T) {
	if !PermRWX.Allows(PermRW) || !PermRW.Allows(PermR) || !PermR.Allows(PermNone) {
		t.Error("Allows rejected a subset")
	}
	if PermR.Allows(PermW) || PermRW.Allows(PermX) {
		t.Error("Allows granted a missing bit")
	}
}

func TestSegmentTranslate(t *testing.T) {
	s := Segment{Name: "directmap", Start: DirectmapBase, End: DirectmapBase + 1<<20, PhysBase: 0}
	phys, err := s.Translate(DirectmapBase + 0x1234)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if phys != 0x1234 {
		t.Errorf("Translate = %#x, want 0x1234", uint64(phys))
	}
	if _, err := s.Translate(DirectmapBase + 2<<20); err == nil {
		t.Error("Translate outside segment succeeded")
	}
}

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(Segment{Name: "bad", Start: 10, End: 10}); !errors.Is(err, ErrBadSegment) {
		t.Errorf("empty segment: err = %v, want ErrBadSegment", err)
	}
	if _, err := NewMap(Segment{Start: 0, End: 10}); !errors.Is(err, ErrBadSegment) {
		t.Errorf("unnamed segment: err = %v, want ErrBadSegment", err)
	}
}

func testMap(t *testing.T) *Map {
	t.Helper()
	m, err := NewMap(
		Segment{
			Name: "guest-ro", Start: GuestROBase, End: GuestROEnd,
			PhysBase: 0, GuestPerm: PermR, HVPerm: PermRW,
		},
		Segment{
			Name: "linear-pt-alias", Start: LinearPTBase, End: LinearPTEnd,
			PhysBase: 0, GuestPerm: PermRWX, HVPerm: PermRWX,
		},
		Segment{
			Name: "hv-text", Start: HypervisorVirtStart, End: HypervisorVirtStart + 1<<20,
			PhysBase: 0x100000, GuestPerm: PermNone, HVPerm: PermRWX,
		},
	)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	return m
}

func TestFindPrefersSmallestSegment(t *testing.T) {
	m := testMap(t)
	// An address inside the alias window is covered by both guest-ro and
	// the alias; the alias (smaller) must win.
	seg, err := m.Find(LinearPTBase + 0x1000)
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	if seg.Name != "linear-pt-alias" {
		t.Errorf("Find = %q, want linear-pt-alias", seg.Name)
	}
	// Outside the alias but inside guest-ro.
	seg, err = m.Find(GuestROBase + 0x1000)
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	if seg.Name != "guest-ro" {
		t.Errorf("Find = %q, want guest-ro", seg.Name)
	}
	if _, err := m.Find(0x1000); !errors.Is(err, ErrNoSegment) {
		t.Errorf("Find of unmapped va: err = %v, want ErrNoSegment", err)
	}
}

func TestByName(t *testing.T) {
	m := testMap(t)
	seg, err := m.ByName("hv-text")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if seg.Start != HypervisorVirtStart {
		t.Errorf("hv-text start = %#x", seg.Start)
	}
	if _, err := m.ByName("nope"); !errors.Is(err, ErrNoSegment) {
		t.Errorf("ByName(nope): err = %v, want ErrNoSegment", err)
	}
}

func TestMapTranslate(t *testing.T) {
	m := testMap(t)
	phys, seg, err := m.Translate(HypervisorVirtStart + 0x40)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if seg.Name != "hv-text" || phys != mm.PhysAddr(0x100040) {
		t.Errorf("Translate = %#x via %q, want 0x100040 via hv-text", uint64(phys), seg.Name)
	}
}

func TestMapString(t *testing.T) {
	m := testMap(t)
	s := m.String()
	for _, want := range []string{"guest-ro", "linear-pt-alias", "hv-text", "rwx", "r--"} {
		if !strings.Contains(s, want) {
			t.Errorf("Map.String() missing %q:\n%s", want, s)
		}
	}
	// Ordered by start: guest-ro (lowest) must appear before hv-text.
	if strings.Index(s, "guest-ro") > strings.Index(s, "hv-text") {
		t.Error("Map.String() not ordered by start address")
	}
}

func TestSegmentsReturnsCopy(t *testing.T) {
	m := testMap(t)
	segs := m.Segments()
	segs[0].Name = "mutated"
	if _, err := m.ByName("mutated"); err == nil {
		t.Error("mutating the returned slice affected the map")
	}
}

// Property: Translate is consistent with Find — any address Find covers
// translates via that segment's linear rule, and addresses outside all
// segments error.
func TestQuickTranslateConsistency(t *testing.T) {
	m := testMap(t)
	f := func(off uint32, pick uint8) bool {
		var va uint64
		switch pick % 4 {
		case 0:
			va = GuestROBase + uint64(off)
		case 1:
			va = LinearPTBase + uint64(off)%(LinearPTEnd-LinearPTBase)
		case 2:
			va = HypervisorVirtStart + uint64(off)%(1<<20)
		case 3:
			va = uint64(off) // low canonical, unmapped
		}
		phys, seg, err := m.Translate(va)
		found, ferr := m.Find(va)
		if (err == nil) != (ferr == nil) {
			return false
		}
		if err != nil {
			return true
		}
		if seg.Name != found.Name {
			return false
		}
		return phys == seg.PhysBase+mm.PhysAddr(va-seg.Start)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
