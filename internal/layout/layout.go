// Package layout describes a hypervisor's virtual memory map: the named
// address ranges ("segments") the hypervisor installs above the guest
// address space, each with its own translation rule and per-privilege
// access rights.
//
// Section V-A of the paper calls these out directly: "the memory layout
// of Xen has segmented areas with different access permission levels by
// definition ... e.g., the range 0xffff800000000000 - 0xffff807fffffffff
// is read-only for guest domains. These rules and definitions are checked
// and must be enforced by the hypervisor. Any error in this memory layout
// implementation directly affects the system security."
//
// The 4.13 profile's removal of the guest-accessible RWX linear-page-
// table alias (the XSA-213..315 follow-up hardening discussed in §VIII)
// is expressed simply as that segment's absence from the map.
package layout

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/mm"
)

// Perm is a set of access rights.
type Perm uint8

// Permission bits.
const (
	// PermR allows data reads.
	PermR Perm = 1 << iota
	// PermW allows data writes.
	PermW
	// PermX allows instruction fetch.
	PermX
)

// Convenience permission sets.
const (
	// PermNone grants nothing.
	PermNone Perm = 0
	// PermRW grants read and write.
	PermRW = PermR | PermW
	// PermRX grants read and execute.
	PermRX = PermR | PermX
	// PermRWX grants everything.
	PermRWX = PermR | PermW | PermX
)

// String renders the permission set in "rwx" notation.
func (p Perm) String() string {
	var b strings.Builder
	for _, bit := range []struct {
		p Perm
		c byte
	}{{PermR, 'r'}, {PermW, 'w'}, {PermX, 'x'}} {
		if p&bit.p != 0 {
			b.WriteByte(bit.c)
		} else {
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Allows reports whether the set includes all bits of want.
func (p Perm) Allows(want Perm) bool { return p&want == want }

// Canonical hypervisor address-space constants. The values match the Xen
// x86-64 memory map cited by the paper and its exploits so that addresses
// appearing in experiment logs are recognizable.
const (
	// GuestROBase..GuestROEnd is the hypervisor range that is, by
	// definition, readable but never writable by guest domains.
	GuestROBase = 0xffff800000000000
	GuestROEnd  = 0xffff808000000000

	// LinearPTBase..LinearPTEnd is the linear-page-table alias window the
	// XSA-212-priv exploit relied on to install its payload: a guest-
	// accessible RWX alias of machine memory present on 4.6/4.8 and
	// removed by the 4.9+ hardening.
	LinearPTBase = 0xffff804000000000
	LinearPTEnd  = 0xffff804040000000

	// HypervisorVirtStart is the base of the hypervisor's own text and
	// data, where the IDT and other global structures live.
	HypervisorVirtStart = 0xffff82d080000000

	// DirectmapBase is the hypervisor-private 1:1 map of all machine
	// memory, used by map_domain_page-style internal accesses and by the
	// injector's physical address mode.
	DirectmapBase = 0xffff830000000000
)

// Errors reported by map lookups.
var (
	// ErrNoSegment is returned when no segment covers the address.
	ErrNoSegment = errors.New("layout: address not covered by any segment")
	// ErrBadSegment is returned when a segment definition is invalid.
	ErrBadSegment = errors.New("layout: invalid segment")
)

// Segment is one named range of hypervisor virtual address space with a
// linear translation rule: virtual address v inside the segment maps to
// machine-physical PhysBase + (v - Start).
type Segment struct {
	// Name identifies the segment in logs and audits.
	Name string
	// Start and End delimit the half-open virtual range [Start, End).
	Start, End uint64
	// PhysBase is the machine-physical address the Start of the segment
	// maps to.
	PhysBase mm.PhysAddr
	// GuestPerm applies to guest-initiated accesses.
	GuestPerm Perm
	// HVPerm applies to the hypervisor's own accesses.
	HVPerm Perm
}

// Size returns the byte length of the segment.
func (s *Segment) Size() uint64 { return s.End - s.Start }

// Contains reports whether the virtual address falls inside the segment.
func (s *Segment) Contains(va uint64) bool { return va >= s.Start && va < s.End }

// Translate maps a virtual address inside the segment to its machine-
// physical address.
func (s *Segment) Translate(va uint64) (mm.PhysAddr, error) {
	if !s.Contains(va) {
		return 0, fmt.Errorf("layout: %#x outside segment %q", va, s.Name)
	}
	return s.PhysBase + mm.PhysAddr(va-s.Start), nil
}

// String renders the segment like a memory-map line.
func (s *Segment) String() string {
	return fmt.Sprintf("%#016x-%#016x %s guest=%s hv=%s (%s)",
		s.Start, s.End, s.Name, s.GuestPerm, s.HVPerm, humanSize(s.Size()))
}

func humanSize(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Map is an ordered collection of segments. Segments may nest (the
// linear-page-table alias sits inside the guest-RO window); lookups
// return the smallest segment containing the address so the most specific
// rule wins.
type Map struct {
	segments []Segment
}

// NewMap validates and assembles a memory map.
func NewMap(segments ...Segment) (*Map, error) {
	for i := range segments {
		s := &segments[i]
		if s.End <= s.Start {
			return nil, fmt.Errorf("%w: %q has non-positive extent [%#x, %#x)", ErrBadSegment, s.Name, s.Start, s.End)
		}
		if s.Name == "" {
			return nil, fmt.Errorf("%w: segment [%#x, %#x) has no name", ErrBadSegment, s.Start, s.End)
		}
	}
	m := &Map{segments: make([]Segment, len(segments))}
	copy(m.segments, segments)
	// Sort by size ascending so Find can return the first hit.
	sort.SliceStable(m.segments, func(i, j int) bool {
		return m.segments[i].Size() < m.segments[j].Size()
	})
	return m, nil
}

// Segments returns the segments ordered by ascending size.
func (m *Map) Segments() []Segment {
	out := make([]Segment, len(m.segments))
	copy(out, m.segments)
	return out
}

// Find returns the smallest segment containing the address.
func (m *Map) Find(va uint64) (*Segment, error) {
	for i := range m.segments {
		if m.segments[i].Contains(va) {
			return &m.segments[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %#x", ErrNoSegment, va)
}

// Role returns the name of the smallest segment containing the virtual
// address, and whether any segment covers it. It is the symbolic-role
// lookup trace canonicalization uses to replace raw hypervisor virtual
// addresses with stable names, so two runs that touch the same segment
// at different addresses still compare equal.
func (m *Map) Role(va uint64) (string, bool) {
	for i := range m.segments {
		if m.segments[i].Contains(va) {
			return m.segments[i].Name, true
		}
	}
	return "", false
}

// ByName returns the segment with the given name.
func (m *Map) ByName(name string) (*Segment, error) {
	for i := range m.segments {
		if m.segments[i].Name == name {
			return &m.segments[i], nil
		}
	}
	return nil, fmt.Errorf("%w: no segment named %q", ErrNoSegment, name)
}

// Translate resolves a hypervisor virtual address to physical, returning
// the governing segment alongside.
func (m *Map) Translate(va uint64) (mm.PhysAddr, *Segment, error) {
	seg, err := m.Find(va)
	if err != nil {
		return 0, nil, err
	}
	phys, err := seg.Translate(va)
	if err != nil {
		return 0, nil, err
	}
	return phys, seg, nil
}

// String renders the whole map, one line per segment, ordered by start
// address (the natural reading order for a memory map).
func (m *Map) String() string {
	ordered := m.Segments()
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })
	lines := make([]string, 0, len(ordered))
	for i := range ordered {
		lines = append(lines, ordered[i].String())
	}
	return strings.Join(lines, "\n")
}
