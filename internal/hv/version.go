// Package hv implements the paravirtualized hypervisor the experiments
// run against: domains, hypercall dispatch, direct-paging memory
// management with per-version validation, grant tables, event channels,
// the hardware IDT, and crash handling.
//
// Three version profiles reproduce the security-relevant deltas between
// the Xen releases the paper evaluates (4.6, 4.8, 4.13). The profiles
// gate *code paths*, not outcomes: a vulnerable profile simply lacks a
// check, and the exploit or injection plays out mechanistically from
// there.
package hv

import "fmt"

// Version is a hypervisor build profile: which validation checks exist
// and which hardening measures are in place.
type Version struct {
	// Name is the release string ("4.6", "4.8", "4.13").
	Name string

	// XSA148Fixed controls the L2 superpage (PSE) check in page-table
	// validation. When false, a PV guest can create a writable 2 MiB
	// mapping over arbitrary machine memory (XSA-148).
	XSA148Fixed bool

	// XSA182Fixed controls the L4 fast-path revalidation rules. When
	// false, flag-only updates that set RW skip revalidation, letting a
	// guest make its recursive L4 self-mapping writable (XSA-182).
	XSA182Fixed bool

	// XSA212Fixed controls the access_ok check on the memory_exchange
	// output handle. When false, the hypervisor writes the exchanged
	// frame list through an unchecked guest-supplied address (XSA-212).
	XSA212Fixed bool

	// LinearPTAlias reports whether the guest-accessible RWX alias of
	// machine memory (the "512GB RWX mapping of the linear page table")
	// is installed in every guest's address space. Removed by the
	// XSA-213..315 follow-up hardening present from 4.9 on.
	LinearPTAlias bool

	// RestrictPTWrites applies the hardened page-walk policy: guest
	// write access to frames validated as page tables is refused even
	// when PTE flags would permit it.
	RestrictPTWrites bool

	// GrantV2StatusLeak controls the grant-table v2 -> v1 transition
	// bug class (XSA-387 style): when true, status-page references are
	// leaked on downgrade, leaving the "Keep Page Access" erroneous
	// state reachable.
	GrantV2StatusLeak bool

	// VENOMFixed controls the bounds check in the emulated floppy disk
	// controller's command path (XSA-133, the paper's Section III
	// running example). When false, oversized commands overflow the
	// device model's internal buffer.
	VENOMFixed bool
}

// String returns the release name.
func (v Version) String() string { return "Xen " + v.Name }

// Version46 is the vulnerable baseline: all three use-case
// vulnerabilities present, no hardening.
func Version46() Version {
	return Version{
		Name:              "4.6",
		LinearPTAlias:     true,
		GrantV2StatusLeak: true,
		VENOMFixed:        false,
	}
}

// Version48 has the three vulnerabilities fixed but none of the later
// hardening: injected erroneous states still escalate exactly as on 4.6.
func Version48() Version {
	return Version{
		Name:          "4.8",
		XSA148Fixed:   true,
		XSA182Fixed:   true,
		XSA212Fixed:   true,
		LinearPTAlias: true,
		VENOMFixed:    true,
	}
}

// Version413 has the fixes plus the XSA-213..315 follow-up hardening:
// the linear-page-table alias is gone and guest writes to page-table
// frames are refused, which is what lets it *handle* two of the four
// injected erroneous states (Table III).
func Version413() Version {
	return Version{
		Name:             "4.13",
		XSA148Fixed:      true,
		XSA182Fixed:      true,
		XSA212Fixed:      true,
		RestrictPTWrites: true,
		VENOMFixed:       true,
	}
}

// Versions returns the three evaluated profiles in release order. The
// returned slice and its Version values are freshly allocated on every
// call — callers (including concurrent campaign workers) may mutate
// them without affecting other callers.
func Versions() []Version {
	return []Version{Version46(), Version48(), Version413()}
}

// VersionByName resolves a release string to its profile.
func VersionByName(name string) (Version, error) {
	for _, v := range Versions() {
		if v.Name == name {
			return v, nil
		}
	}
	return Version{}, fmt.Errorf("hv: unknown version %q (have 4.6, 4.8, 4.13)", name)
}
