package hv

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/layout"
	"repro/internal/mm"
	"repro/internal/pagetable"
)

// Reserved guest PFNs laid out by the domain builder.
const (
	// StartInfoPFN holds the start_info page whose fingerprint the
	// XSA-148 exploit scans machine memory for.
	StartInfoPFN mm.PFN = 0
	// VDSOPFN holds the vDSO page the XSA-148 backdoor patches.
	VDSOPFN mm.PFN = 1
	// firstDataPFN is the first PFN available to the guest kernel.
	firstDataPFN mm.PFN = 4
)

// StartInfoMagic fingerprints a start_info page in machine memory.
const StartInfoMagic = "xen-3.0-x86_64 start_info"

// VDSOSignature fingerprints a vDSO page in guest memory.
const VDSOSignature = "vdso64.so\x7f\x01"

// VDSOEntryOffset is where the vDSO's executable payload begins within
// its page; callers jump to page start + offset.
const VDSOEntryOffset = 32

// minDomainFrames is the smallest buildable domain: reserved pages, a
// little data room, and the page-table frames consumed from the top.
const minDomainFrames = 16

// Domain is one virtual machine.
type Domain struct {
	id         mm.DomID
	name       string
	privileged bool

	hv  *Hypervisor
	p2m *mm.P2M

	base   mm.MFN
	frames int

	cr3      mm.MFN
	ptFrames map[mm.MFN]int // guest page-table frames -> level
	ptShared bool           // ptFrames belongs to a sealed snapshot; clone before writing

	vcpu *cpu.CPU
	os   GuestOS

	nextFreePFN mm.PFN // guest data allocation cursor
	ptLowestPFN mm.PFN // lowest PFN consumed by page tables (exclusive bound for data)

	grantTable    *grantTable
	eventChannels []eventChannel

	tlb *pagetable.TLB

	destroyed bool
	paused    bool
}

// CreateDomain builds a new domain with the given contiguous
// pseudo-physical memory size. The first privileged domain gets ID 0.
// The builder lays out the start_info and vDSO pages, constructs the
// guest's physmap page tables from the domain's own top frames, links
// the shared Xen L3 into the guest L4, and validates every page-table
// frame's type.
func (h *Hypervisor) CreateDomain(name string, frames int, privileged bool) (*Domain, error) {
	if h.crashed {
		return nil, ErrCrashed
	}
	if frames < minDomainFrames {
		return nil, fmt.Errorf("%w: domain needs at least %d frames, got %d", ErrInval, minDomainFrames, frames)
	}
	var id mm.DomID
	if privileged {
		if _, ok := h.domains[mm.Dom0]; ok {
			return nil, fmt.Errorf("%w: dom0 already exists", ErrInval)
		}
		id = mm.Dom0
	} else {
		if h.nextDomID < mm.DomFirstGuest {
			h.nextDomID = mm.DomFirstGuest
		}
		id = h.nextDomID
		h.nextDomID++
	}

	base, err := h.mem.AllocRange(frames, id)
	if err != nil {
		return nil, fmt.Errorf("hv: allocating %d frames for %s: %w", frames, name, err)
	}
	d := &Domain{
		id:         id,
		name:       name,
		privileged: privileged,
		hv:         h,
		p2m:        h.mem.NewP2M(id),
		base:       base,
		frames:     frames,
		ptFrames:   make(map[mm.MFN]int),
	}
	for i := 0; i < frames; i++ {
		if err := d.p2m.Set(mm.PFN(i), base+mm.MFN(i)); err != nil {
			return nil, err
		}
	}
	if err := d.buildPageTables(); err != nil {
		return nil, fmt.Errorf("hv: building page tables for %s: %w", name, err)
	}
	if err := d.writeBootPages(); err != nil {
		return nil, fmt.Errorf("hv: writing boot pages for %s: %w", name, err)
	}

	d.tlb = pagetable.NewTLB(h.cfg.tlbCapacity)
	d.vcpu = cpu.New(h.nextCPUID, h.mem, &domainSpace{h: h, d: d}, h)
	h.nextCPUID++
	d.vcpu.LIDT(h.idtr)
	d.nextFreePFN = firstDataPFN

	h.domains[id] = d
	h.Logf("created %s (dom%d) with %d frames at mfn %#x..%#x",
		name, id, frames, uint64(base), uint64(base)+uint64(frames)-1)
	return d, nil
}

// buildPageTables constructs the guest's Linux-style physmap: every PFN
// mapped RW|US at GuestPhysmapBase + pfn*PageSize. Page-table frames are
// taken from the domain's own top PFNs, typed after construction, and
// their physmap mappings downgraded to read-only — the invariant that no
// guest-writable mapping of a page-table frame exists, which the use-case
// vulnerabilities then break.
func (d *Domain) buildPageTables() error {
	cursor := mm.PFN(d.frames)
	ptAlloc := func() (mm.MFN, error) {
		if cursor <= firstDataPFN+4 {
			return 0, fmt.Errorf("%w: domain too small for its page tables", ErrNoMem)
		}
		cursor--
		return d.p2m.Lookup(cursor)
	}
	b := pagetable.NewBuilder(d.hv.mem, ptAlloc)
	b.OnTableAlloc = func(mfn mm.MFN, level int) { d.setPTFrame(mfn, level) }

	root, err := b.NewRoot()
	if err != nil {
		return err
	}
	d.cr3 = root
	for pfn := mm.PFN(0); pfn < mm.PFN(d.frames); pfn++ {
		mfn, err := d.p2m.Lookup(pfn)
		if err != nil {
			return err
		}
		if err := b.Map(root, d.PhysmapVA(pfn), mfn,
			pagetable.FlagRW|pagetable.FlagUser); err != nil {
			return err
		}
	}
	// Link the shared hypervisor structures into the guest's L4.
	if err := d.hv.installXenSlots(root); err != nil {
		return err
	}
	d.ptLowestPFN = cursor

	// Validate the type of every page-table frame, then remove guest
	// write access to those frames through the physmap. Iterate in MFN
	// order: ptFrames is a map, and the accounting operations commute,
	// but the telemetry event stream should not depend on map order.
	for _, mfn := range d.ptFramesInOrder() {
		t, err := mm.TypeForLevel(d.ptFrames[mfn])
		if err != nil {
			return err
		}
		if err := d.hv.mem.GetType(mfn, t); err != nil {
			return err
		}
	}
	for _, mfn := range d.ptFramesInOrder() {
		_, pfn, err := d.hv.mem.M2P(mfn)
		if err != nil {
			return err
		}
		va := d.PhysmapVA(pfn)
		l1, err := b.TableAt(root, va, 1)
		if err != nil {
			return err
		}
		idx, err := pagetable.Index(va, 1)
		if err != nil {
			return err
		}
		e, err := pagetable.ReadEntry(d.hv.mem, l1, idx)
		if err != nil {
			return err
		}
		if err := pagetable.WriteEntry(d.hv.mem, l1, idx, e.WithoutFlags(pagetable.FlagRW)); err != nil {
			return err
		}
	}
	return d.accountBootMappings()
}

// setPTFrame records a validated page-table frame, cloning the map
// first when it is still shared with a sealed snapshot.
func (d *Domain) setPTFrame(mfn mm.MFN, level int) {
	if d.ptShared {
		clone := make(map[mm.MFN]int, len(d.ptFrames)+1)
		for k, v := range d.ptFrames {
			clone[k] = v
		}
		d.ptFrames = clone
		d.ptShared = false
	}
	d.ptFrames[mfn] = level
}

// ptFramesInOrder returns the domain's page-table frames in ascending
// MFN order for reproducible boot-time accounting.
func (d *Domain) ptFramesInOrder() []mm.MFN {
	mfns := make([]mm.MFN, 0, len(d.ptFrames))
	for mfn := range d.ptFrames {
		mfns = append(mfns, mfn)
	}
	sort.Slice(mfns, func(i, j int) bool { return mfns[i] < mfns[j] })
	return mfns
}

// installXenSlots writes the canonical hypervisor entries into an L4's
// reserved slot range (init_xen_l4_slots): the shared Xen L3 at
// XenL4Slot, the rest cleared. The XSA-213..315 follow-up hardening
// makes the slot supervisor-only: guests lose direct access to every
// address under it — including the linear-page-table range the
// XSA-212-priv exploit installs its payload through (§VIII).
func (h *Hypervisor) installXenSlots(l4 mm.MFN) error {
	flags := uint64(pagetable.FlagPresent | pagetable.FlagRW)
	if h.version.LinearPTAlias {
		flags |= pagetable.FlagUser
	}
	if err := pagetable.WriteEntry(h.mem, l4, XenL4Slot, pagetable.NewEntry(h.xenL3, flags)); err != nil {
		return err
	}
	for idx := XenL4Slot + 1; idx < XenL4Slot+16; idx++ {
		if err := pagetable.WriteEntry(h.mem, l4, idx, 0); err != nil {
			return err
		}
	}
	return nil
}

// accountBootMappings takes the per-entry references the validated
// mmu_update path would have taken had the guest installed these
// mappings itself, so that later guest-initiated updates balance: each
// writable leaf holds a writable type reference on its target, every
// entry holds a general reference, and the vCPU holds a reference on its
// CR3 root. It runs after page-table mappings are downgraded to
// read-only, so page-table frames never acquire a writable type.
func (d *Domain) accountBootMappings() error {
	mem := d.hv.mem
	for _, mfn := range d.ptFramesInOrder() {
		level := d.ptFrames[mfn]
		for idx := 0; idx < pagetable.EntriesPerTable; idx++ {
			if level == 4 && idx == XenL4Slot {
				continue // hypervisor-owned shared L3, not guest-accounted
			}
			e, err := pagetable.ReadEntry(mem, mfn, idx)
			if err != nil {
				return err
			}
			if !e.Present() {
				continue
			}
			if level == 1 && e.Writable() {
				if err := mem.GetType(e.MFN(), mm.TypeWritable); err != nil {
					return fmt.Errorf("accounting writable leaf %s: %w", e, err)
				}
			}
			if err := mem.GetRef(e.MFN(), d.id); err != nil {
				return fmt.Errorf("accounting entry %s in L%d frame %#x: %w", e, level, uint64(mfn), err)
			}
		}
	}
	return mem.GetRef(d.cr3, d.id)
}

// writeBootPages lays down the start_info and vDSO pages.
func (d *Domain) writeBootPages() error {
	si := make([]byte, 0, 128)
	si = append(si, StartInfoMagic...)
	si = append(si, 0)
	if d.privileged {
		si = append(si, 1)
	} else {
		si = append(si, 0)
	}
	si = append(si, byte(len(d.name)))
	si = append(si, d.name...)
	siMFN, err := d.p2m.Lookup(StartInfoPFN)
	if err != nil {
		return err
	}
	if err := d.hv.mem.WritePhys(siMFN.Addr(), si); err != nil {
		return err
	}

	vd := make([]byte, 0, 64)
	vd = append(vd, VDSOSignature...)
	for len(vd) < VDSOEntryOffset {
		vd = append(vd, 0)
	}
	vd = append(vd, cpu.Assemble(cpu.Program{{Op: cpu.OpClockGettime}})...)
	vdMFN, err := d.p2m.Lookup(VDSOPFN)
	if err != nil {
		return err
	}
	return d.hv.mem.WritePhys(vdMFN.Addr(), vd)
}

// Accessors.

// ID returns the domain identifier.
func (d *Domain) ID() mm.DomID { return d.id }

// Name returns the domain name (also its hostname).
func (d *Domain) Name() string { return d.name }

// Privileged reports whether this is the control domain.
func (d *Domain) Privileged() bool { return d.privileged }

// P2M returns the domain's pseudo-physical translation table.
func (d *Domain) P2M() *mm.P2M { return d.p2m }

// CR3 returns the machine frame of the domain's L4 root.
func (d *Domain) CR3() mm.MFN { return d.cr3 }

// VCPU returns the domain's virtual CPU.
func (d *Domain) VCPU() *cpu.CPU { return d.vcpu }

// Base returns the first machine frame of the domain's contiguous region.
func (d *Domain) Base() mm.MFN { return d.base }

// Frames returns the domain's memory size in frames.
func (d *Domain) Frames() int { return d.frames }

// Hypervisor returns the hypervisor hosting the domain.
func (d *Domain) Hypervisor() *Hypervisor { return d.hv }

// OS returns the attached guest OS, or nil.
func (d *Domain) OS() GuestOS { return d.os }

// AttachOS registers the guest operating system running in the domain.
func (d *Domain) AttachOS(os GuestOS) { d.os = os }

// PageTableLevel returns the level (1..4) of a guest page-table frame,
// or 0 if the frame is not one of the domain's page tables.
func (d *Domain) PageTableLevel(mfn mm.MFN) int { return d.ptFrames[mfn] }

// PageTableFrames returns the domain's page-table frames and levels.
func (d *Domain) PageTableFrames() map[mm.MFN]int {
	out := make(map[mm.MFN]int, len(d.ptFrames))
	for k, v := range d.ptFrames {
		out[k] = v
	}
	return out
}

// PhysmapVA returns the guest kernel virtual address mapping the PFN.
func (d *Domain) PhysmapVA(pfn mm.PFN) uint64 {
	return GuestPhysmapBase + uint64(pfn)*mm.PageSize
}

// AllocPage hands the guest kernel an unused PFN from the data region.
func (d *Domain) AllocPage() (mm.PFN, error) {
	if d.nextFreePFN >= d.ptLowestPFN {
		return 0, fmt.Errorf("%w: guest out of free pages", ErrNoMem)
	}
	pfn := d.nextFreePFN
	d.nextFreePFN++
	return pfn, nil
}

// Domains returns the number of live domains.
func (h *Hypervisor) Domains() int { return len(h.domains) }

// Domain looks up a domain by ID.
func (h *Hypervisor) Domain(id mm.DomID) (*Domain, error) {
	d, ok := h.domains[id]
	if !ok {
		return nil, fmt.Errorf("%w: dom%d", ErrDomGone, id)
	}
	return d, nil
}

// DomainList returns all domains ordered by ID.
func (h *Hypervisor) DomainList() []*Domain {
	out := make([]*Domain, 0, len(h.domains))
	for _, d := range h.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// domainSpace is a domain's address space as seen by its vCPU:
// hypervisor-privilege accesses may resolve through the hypervisor's
// layout map (trap handling, copy_to_guest); everything else walks the
// guest's page tables under the version's policy.
type domainSpace struct {
	h *Hypervisor
	d *Domain
}

var _ cpu.AddressSpace = (*domainSpace)(nil)

func (s *domainSpace) Translate(va uint64, acc pagetable.Access, guestInitiated bool) (mm.PhysAddr, error) {
	if !guestInitiated {
		if phys, seg, err := s.h.layout.Translate(va); err == nil {
			if !seg.HVPerm.Allows(permFor(acc)) {
				return 0, &pagetable.Fault{VA: va, Access: acc,
					Reason: fmt.Sprintf("segment %q is %s to the hypervisor", seg.Name, seg.HVPerm)}
			}
			return phys, nil
		}
		walk, err := s.h.walker.Translate(s.d.cr3, va, acc, false)
		if err != nil {
			return 0, err
		}
		return walk.Phys, nil
	}
	// Guest-initiated accesses go through the per-domain TLB, with the
	// effective rights computed at fill time — so raw page-table writes
	// that skip the flush protocol leave stale, still-honoured entries,
	// exactly the hazard real TLBs have.
	if e, ok := s.d.tlb.Lookup(va); ok {
		if err := checkTLBEntry(va, acc, e); err != nil {
			return 0, err
		}
		return e.Frame.Addr() + mm.PhysAddr(va&mm.PageMask), nil
	}
	walk, err := s.h.walker.Translate(s.d.cr3, va, acc, true)
	if err != nil {
		return 0, err
	}
	entry := pagetable.TLBEntry{
		Frame:    walk.MFN,
		User:     walk.User,
		NoExec:   walk.NoExec,
		Writable: walk.Writable && s.h.policy.CheckLeaf(s.h.mem, walk.MFN, pagetable.AccessWrite, true) == nil,
	}
	s.d.tlb.Insert(va, entry)
	return walk.Phys, nil
}

// checkTLBEntry enforces the cached effective rights on a hit.
func checkTLBEntry(va uint64, acc pagetable.Access, e pagetable.TLBEntry) error {
	switch acc {
	case pagetable.AccessWrite:
		if !e.Writable {
			return &pagetable.Fault{VA: va, Access: acc, Reason: "read-only mapping (TLB)"}
		}
	case pagetable.AccessExec:
		if e.NoExec {
			return &pagetable.Fault{VA: va, Access: acc, Reason: "no-execute mapping (TLB)"}
		}
	}
	return nil
}

// FlushTLB drops every cached translation of the domain's vCPU, as the
// guest's own tlb-flush (or Xen on its behalf) would.
func (d *Domain) FlushTLB() { d.tlb.Flush() }

// InvlPG drops one page's cached translation.
func (d *Domain) InvlPG(va uint64) { d.tlb.FlushVA(va) }

// TLBStats exposes the cache counters for the ablation benchmarks.
func (d *Domain) TLBStats() pagetable.TLBStats { return d.tlb.Stats() }

func permFor(acc pagetable.Access) layout.Perm {
	switch acc {
	case pagetable.AccessWrite:
		return layout.PermW
	case pagetable.AccessExec:
		return layout.PermX
	default:
		return layout.PermR
	}
}

// TranslateHV resolves a hypervisor linear address: through the layout
// map first, then through the idle page tables (which carry the shared
// Xen structures, including — on profiles that have it — the linear-
// page-table alias).
func (h *Hypervisor) TranslateHV(va uint64, acc pagetable.Access) (mm.PhysAddr, error) {
	if phys, seg, err := h.layout.Translate(va); err == nil {
		if !seg.HVPerm.Allows(permFor(acc)) {
			return 0, &pagetable.Fault{VA: va, Access: acc,
				Reason: fmt.Sprintf("segment %q is %s to the hypervisor", seg.Name, seg.HVPerm)}
		}
		return phys, nil
	}
	walk, err := h.walker.Translate(h.xenL4, va, acc, false)
	if err != nil {
		return 0, err
	}
	return walk.Phys, nil
}

// ReadHV reads hypervisor-linear memory page by page.
func (h *Hypervisor) ReadHV(va uint64, buf []byte) error {
	return h.accessHV(va, buf, pagetable.AccessRead)
}

// WriteHV writes hypervisor-linear memory page by page. This is the raw
// internal access the injector's linear mode and the broken 4.6
// copy-to-guest path both bottom out in.
func (h *Hypervisor) WriteHV(va uint64, buf []byte) error {
	return h.accessHV(va, buf, pagetable.AccessWrite)
}

func (h *Hypervisor) accessHV(va uint64, buf []byte, acc pagetable.Access) error {
	done := 0
	for done < len(buf) {
		cur := va + uint64(done)
		phys, err := h.TranslateHV(cur, acc)
		if err != nil {
			return err
		}
		n := len(buf) - done
		if remain := int(mm.PageSize - cur&mm.PageMask); n > remain {
			n = remain
		}
		if acc == pagetable.AccessWrite {
			err = h.mem.WritePhys(phys, buf[done:done+n])
		} else {
			err = h.mem.ReadPhys(phys, buf[done:done+n])
		}
		if err != nil {
			return err
		}
		done += n
	}
	return nil
}

// Walker exposes the hypervisor's page-table walker (with the version's
// policy installed) for audits and monitors.
func (h *Hypervisor) Walker() *pagetable.Walker { return h.walker }
