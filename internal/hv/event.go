package hv

import (
	"fmt"

	"repro/internal/mm"
)

// Event channels are the PV interrupt substrate: interdomain
// notifications delivered as pending bits the guest kernel consumes.
// They exist here both as a realistic substrate and as the target of the
// "Uncontrolled Arbitrary Interrupts Requests" abusive functionality:
// the injector can flood a domain with events it never bound.
const (
	// MaxEventChannels is the per-domain port count.
	MaxEventChannels = 64
)

// eventChannel is one port's state.
type eventChannel struct {
	inUse      bool
	remoteDom  int32 // -1 when unbound
	remotePort int
	pending    int
}

// EventAllocArgs allocates an unbound port for RemoteDom to bind later.
type EventAllocArgs struct {
	RemoteDom int32

	// Port receives the allocated port number.
	Port int
}

// EventBindArgs binds a local port to a remote domain's port.
type EventBindArgs struct {
	Port       int
	RemoteDom  int32
	RemotePort int
}

// EventSendArgs raises an event on the caller's port, marking the bound
// remote end pending.
type EventSendArgs struct {
	Port int
}

func (d *Domain) channels() []eventChannel {
	if d.eventChannels == nil {
		d.eventChannels = make([]eventChannel, MaxEventChannels)
		for i := range d.eventChannels {
			d.eventChannels[i].remoteDom = -1
		}
	}
	return d.eventChannels
}

// PendingEvents returns the total pending-event count across the
// domain's ports, the observable an interrupt-flood injection perturbs.
func (d *Domain) PendingEvents() int {
	total := 0
	for i := range d.channels() {
		total += d.eventChannels[i].pending
	}
	return total
}

// ConsumeEvents clears and returns the pending count on a port, as the
// guest kernel's event loop does.
func (d *Domain) ConsumeEvents(port int) (int, error) {
	chs := d.channels()
	if port < 0 || port >= len(chs) {
		return 0, fmt.Errorf("%w: port %d", ErrInval, port)
	}
	n := chs[port].pending
	chs[port].pending = 0
	return n, nil
}

func (h *Hypervisor) eventChannelOp(d *Domain, arg any) error {
	switch a := arg.(type) {
	case *EventAllocArgs:
		chs := d.channels()
		for i := range chs {
			if !chs[i].inUse {
				chs[i] = eventChannel{inUse: true, remoteDom: a.RemoteDom, remotePort: -1}
				a.Port = i
				return nil
			}
		}
		return fmt.Errorf("%w: no free event channel", ErrNoMem)

	case *EventBindArgs:
		chs := d.channels()
		if a.Port < 0 || a.Port >= len(chs) || !chs[a.Port].inUse {
			return fmt.Errorf("%w: port %d", ErrInval, a.Port)
		}
		remote, err := h.Domain(mm.DomID(a.RemoteDom))
		if err != nil {
			return err
		}
		rchs := remote.channels()
		if a.RemotePort < 0 || a.RemotePort >= len(rchs) || !rchs[a.RemotePort].inUse {
			return fmt.Errorf("%w: remote port %d", ErrInval, a.RemotePort)
		}
		if rchs[a.RemotePort].remoteDom >= 0 && mm.DomID(rchs[a.RemotePort].remoteDom) != d.id {
			return fmt.Errorf("%w: remote port %d reserved for dom%d", ErrPerm, a.RemotePort, rchs[a.RemotePort].remoteDom)
		}
		chs[a.Port].remoteDom = a.RemoteDom
		chs[a.Port].remotePort = a.RemotePort
		rchs[a.RemotePort].remotePort = a.Port
		return nil

	case *EventSendArgs:
		chs := d.channels()
		if a.Port < 0 || a.Port >= len(chs) || !chs[a.Port].inUse {
			return fmt.Errorf("%w: port %d", ErrInval, a.Port)
		}
		ch := &chs[a.Port]
		if ch.remoteDom < 0 || ch.remotePort < 0 {
			return fmt.Errorf("%w: port %d not bound", ErrInval, a.Port)
		}
		remote, err := h.Domain(mm.DomID(ch.remoteDom))
		if err != nil {
			return err
		}
		remote.channels()[ch.remotePort].pending++
		return nil

	default:
		return fmt.Errorf("%w: event_channel_op got %T", ErrInval, arg)
	}
}
