package hv

import (
	"fmt"
	"strings"

	"repro/internal/coverage"
	"repro/internal/cpu"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/mm"
	"repro/internal/pagetable"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// Boot-time machine layout constants. The hypervisor reserves its own
// frames first, so their machine addresses are deterministic — the same
// property real exploits rely on when they hardcode per-version offsets.
const (
	// hvTextFrames is the size of the hypervisor text/data region.
	hvTextFrames = 16
	// xenHeapFrames is the size of the Xen heap, the anonymous
	// hypervisor-owned memory the XSA-212-priv payload hides in.
	xenHeapFrames = 32

	// idtFrameOffset places the IDT in the second hv-text frame.
	idtFrameOffset = 1

	// XenL4Slot is the guest L4 slot through which all shared hypervisor
	// structures are reachable (the architectural slot for
	// 0xffff8000_00000000).
	XenL4Slot = 256

	// AliasL3Index is the index in the shared Xen L3 serving the
	// linear-page-table alias region (VA layout.LinearPTBase).
	AliasL3Index = 256

	// MiscL3Index is an index in the shared Xen L3 with no boot-time
	// mapping, directly above the alias window: the "target PUD" slot
	// the XSA-212-priv attack links its forged page directory into.
	MiscL3Index = AliasL3Index + 1

	// GuestPhysmapBase is where guest kernels map their pseudo-physical
	// memory (the Linux-style physmap the XSA-148 exploit logs show as
	// ffff8800_xxxxxxxx addresses).
	GuestPhysmapBase = 0xffff880000000000
)

// Builtin trap-handler pseudo-addresses inside hv-text. They are never
// executed as payload bytes; the CPU resolves them through the builtin
// registry, modeling native handler code.
const (
	pfHandlerVA = layout.HypervisorVirtStart + 2*mm.PageSize + 0x10
	dfHandlerVA = layout.HypervisorVirtStart + 2*mm.PageSize + 0x20
	gpHandlerVA = layout.HypervisorVirtStart + 2*mm.PageSize + 0x30
)

// GuestOS is the view the hypervisor has of an attached guest operating
// system, used by ring-0 payload execution to produce its cross-domain
// effects. The guest package implements it.
type GuestOS interface {
	// Hostname returns the guest's hostname.
	Hostname() string
	// WriteFileAsRoot creates path with content, owned by root.
	WriteFileAsRoot(path, content string) error
	// ReverseShellAsRoot dials addr and serves a root shell.
	ReverseShellAsRoot(addr string) error
}

// Option configures hypervisor construction.
type Option func(*config)

type config struct {
	trace       bool
	tlbCapacity int
	tel         *telemetry.Recorder
	flt         *faults.Injector
	spans       *span.Tree
	cov         *coverage.Map
}

// defaultTLBCapacity is the per-vCPU translation-cache size.
const defaultTLBCapacity = 64

// WithTrace makes the hypervisor log every hypercall to the console,
// useful when debugging campaigns.
func WithTrace() Option { return func(c *config) { c.trace = true } }

// WithTLBCapacity sets the per-vCPU TLB size; zero disables translation
// caching (used by the TLB ablation benchmark).
func WithTLBCapacity(n int) Option { return func(c *config) { c.tlbCapacity = n } }

// WithTelemetry installs the environment's telemetry recorder on the
// build: hypercall dispatch, page-type transitions, validation rejects
// and grant/domctl activity are traced into it, and the machine and
// page walker are wired to the same sink. A nil recorder (the default)
// keeps telemetry disabled at near-zero cost.
func WithTelemetry(r *telemetry.Recorder) Option { return func(c *config) { c.tel = r } }

// WithFaults arms the substrate fault-injection plane on the build: the
// hypercall dispatcher consults it for injected handler panics, forced
// hang states and wedges, and the machine consults it for forced
// allocation failures. A nil injector (the default) keeps the plane
// disabled at the cost of one predicted branch per instrumented site.
func WithFaults(f *faults.Injector) Option { return func(c *config) { c.flt = f } }

// WithCoverage installs the cell's coverage map on the build: the
// telemetry instrumentation sites feed it behaviour edges (hypercall
// outcomes, page-type transitions, validation rejects, walk denials,
// injector transitions, grant/domctl ops). Coverage rides on the
// telemetry recorder; if none was configured, boot creates a private
// one so coverage works standalone. A nil map (the default) keeps
// coverage disabled at zero cost.
func WithCoverage(m *coverage.Map) Option { return func(c *config) { c.cov = m } }

// WithSpans installs the cell's causal span tree on the build: every
// hypercall dispatch and machine range allocation opens a span in it,
// and the monitor nests its audit pass under the assess phase. A nil
// tree (the default) keeps span capture disabled at the cost of one
// predicted branch per instrumented site.
func WithSpans(t *span.Tree) Option { return func(c *config) { c.spans = t } }

// Hypervisor is one booted instance of the simulated PV hypervisor.
type Hypervisor struct {
	mem     *mm.Memory
	version Version
	cfg     config

	layout  *layout.Map
	walker  *pagetable.Walker
	builder *pagetable.Builder
	policy  pagetable.Policy

	hvTextBase mm.MFN
	heapBase   mm.MFN
	xenL4      mm.MFN
	xenL3      mm.MFN
	aliasL2    mm.MFN

	idtr     cpu.IDTR
	builtins map[uint64]cpu.BuiltinHandler

	domains   map[mm.DomID]*Domain
	nextDomID mm.DomID
	nextCPUID int

	hypercalls map[int]Hypercall

	console    []string
	crashed    bool
	crashMsg   string
	hung       bool
	pfCount    int
	clockTicks int
}

// New boots a hypervisor of the given version on the machine. The
// machine must be large enough for the hypervisor's own reservations
// (text, heap, shared page tables) plus whatever domains will be built.
func New(mem *mm.Memory, version Version, opts ...Option) (*Hypervisor, error) {
	h := &Hypervisor{
		mem:        mem,
		version:    version,
		builtins:   make(map[uint64]cpu.BuiltinHandler),
		domains:    make(map[mm.DomID]*Domain),
		hypercalls: make(map[int]Hypercall),
	}
	h.cfg.tlbCapacity = defaultTLBCapacity
	for _, opt := range opts {
		opt(&h.cfg)
	}
	if err := h.boot(); err != nil {
		return nil, fmt.Errorf("hv: boot failed: %w", err)
	}
	return h, nil
}

func (h *Hypervisor) boot() error {
	// Coverage rides on the telemetry recorder: discover a map a caller
	// attached to the recorder directly, or — when WithCoverage came
	// without telemetry — create a private recorder to feed it.
	if h.cfg.cov == nil && h.cfg.tel != nil {
		h.cfg.cov = h.cfg.tel.Coverage()
	}
	if h.cfg.cov != nil {
		if h.cfg.tel == nil {
			h.cfg.tel = telemetry.NewRecorder(0)
		}
		h.cfg.tel.AttachCoverage(h.cfg.cov)
	}
	// Wire the telemetry sink before the first reservation so boot-time
	// allocator and frame-type activity is part of the trace.
	if h.cfg.tel != nil {
		h.mem.AttachTelemetry(h.cfg.tel)
	}
	// Wire the fault plane equally early: forced allocation failures
	// during boot model a machine that was sick before the first domain.
	if h.cfg.flt != nil {
		h.mem.AttachFaults(h.cfg.flt)
	}
	// And the span tree, so boot-time range allocations appear as mm_op
	// spans under the boot phase.
	if h.cfg.spans != nil {
		h.mem.AttachSpans(h.cfg.spans)
	}
	// Reserve hypervisor text/data and heap at deterministic addresses.
	var err error
	if h.hvTextBase, err = h.mem.AllocRange(hvTextFrames, mm.DomXen); err != nil {
		return fmt.Errorf("reserving hv text: %w", err)
	}
	if h.heapBase, err = h.mem.AllocRange(xenHeapFrames, mm.DomXen); err != nil {
		return fmt.Errorf("reserving xen heap: %w", err)
	}
	// The region classifier depends only on the two reservations above,
	// so it is identical for a fresh boot and a snapshot fork; install
	// it before buildSharedTables takes the first page-type references.
	h.cfg.cov.SetFrameClassifier(h.FrameClassifier())

	// The hypervisor's own view of memory: its text, the directmap, and
	// the declared guest-visible windows. Guest-side access rights flow
	// from real page tables built below; the map records the policy and
	// serves hypervisor-internal (linear) translation.
	segs := standardSegments(h.version, h.mem.Bytes(), h.hvTextBase.Addr())
	if h.layout, err = layout.NewMap(segs...); err != nil {
		return err
	}

	// Page-walk policy per version profile.
	if h.version.RestrictPTWrites {
		h.policy = hardenedPolicy{}
	} else {
		h.policy = pagetable.PermissivePolicy{}
	}
	h.walker = pagetable.NewWalker(h.mem, h.policy)
	if h.cfg.tel != nil {
		h.walker.AttachTelemetry(h.cfg.tel)
	}
	h.builder = pagetable.NewBuilder(h.mem, func() (mm.MFN, error) { return h.mem.Alloc(mm.DomXen) })

	if err := h.buildSharedTables(); err != nil {
		return err
	}
	if err := h.initIDT(); err != nil {
		return err
	}
	h.registerCoreHypercalls()

	h.Logf("Xen version %s (simulated) booting", h.version.Name)
	h.Logf("machine: %d frames (%d KiB)", h.mem.NumFrames(), h.mem.Bytes()>>10)
	h.Logf("hv text at mfn %#x, heap at mfn %#x", uint64(h.hvTextBase), uint64(h.heapBase))
	if h.version.LinearPTAlias {
		h.Logf("linear page-table alias mapped RWX at %#x", uint64(layout.LinearPTBase))
	} else {
		h.Logf("linear page-table alias removed (XSA-213..315 follow-up hardening)")
	}
	return nil
}

// standardSegments is the version profile's memory map: the segment
// names, extents and permissions every hypervisor of that profile boots
// with, parameterized only by machine size and the text's physical
// placement. boot and RoleLayout share it so symbolic role names resolve
// identically in a live environment and in offline trace analysis.
func standardSegments(v Version, machineBytes uint64, hvTextPhys mm.PhysAddr) []layout.Segment {
	segs := []layout.Segment{
		{
			Name:  "hv-text",
			Start: layout.HypervisorVirtStart, End: layout.HypervisorVirtStart + hvTextFrames*mm.PageSize,
			PhysBase:  hvTextPhys,
			GuestPerm: layout.PermNone, HVPerm: layout.PermRWX,
		},
		{
			Name:  "directmap",
			Start: layout.DirectmapBase, End: layout.DirectmapBase + machineBytes,
			PhysBase:  0,
			GuestPerm: layout.PermNone, HVPerm: layout.PermRW,
		},
		{
			Name:  "guest-ro",
			Start: layout.GuestROBase, End: layout.GuestROBase + machineBytes,
			PhysBase:  0,
			GuestPerm: layout.PermR, HVPerm: layout.PermRW,
		},
	}
	if v.LinearPTAlias {
		segs = append(segs, layout.Segment{
			Name:  "linear-pt-alias",
			Start: layout.LinearPTBase, End: layout.LinearPTBase + machineBytes,
			PhysBase:  0,
			GuestPerm: layout.PermRWX, HVPerm: layout.PermRWX,
		})
	}
	return segs
}

// RoleLayout builds the version profile's memory map without booting a
// hypervisor: same segment names and extents as a live environment of
// that profile on a machine of machineBytes, with the text's physical
// base pinned to zero (role lookups never translate). Trace
// canonicalization uses it to map raw virtual addresses in a recorded
// trace back to symbolic segment roles.
func RoleLayout(v Version, machineBytes uint64) (*layout.Map, error) {
	return layout.NewMap(standardSegments(v, machineBytes, 0)...)
}

// buildSharedTables constructs the idle L4 and the shared Xen L3 that is
// installed into every guest's L4 at XenL4Slot, plus — on profiles that
// have it — the RWX alias of machine memory under AliasL3Index.
func (h *Hypervisor) buildSharedTables() error {
	var err error
	if h.xenL4, err = h.mem.Alloc(mm.DomXen); err != nil {
		return fmt.Errorf("allocating idle L4: %w", err)
	}
	if err := h.mem.GetType(h.xenL4, mm.TypeL4); err != nil {
		return err
	}
	if h.xenL3, err = h.mem.Alloc(mm.DomXen); err != nil {
		return fmt.Errorf("allocating shared Xen L3: %w", err)
	}
	if err := h.mem.GetType(h.xenL3, mm.TypeL3); err != nil {
		return err
	}
	if err := pagetable.WriteEntry(h.mem, h.xenL4, XenL4Slot,
		pagetable.NewEntry(h.xenL3, pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser)); err != nil {
		return err
	}

	if !h.version.LinearPTAlias {
		return nil
	}
	// The alias: 2 MiB superpage entries covering all machine memory,
	// user-accessible, writable and executable — the exact property the
	// XSA-212-priv payload installation depends on.
	if h.aliasL2, err = h.mem.Alloc(mm.DomXen); err != nil {
		return fmt.Errorf("allocating alias L2: %w", err)
	}
	if err := h.mem.GetType(h.aliasL2, mm.TypeL2); err != nil {
		return err
	}
	superpages := int((h.mem.Bytes() + pagetable.SuperpageSize - 1) / pagetable.SuperpageSize)
	if superpages > pagetable.EntriesPerTable {
		superpages = pagetable.EntriesPerTable
	}
	for i := 0; i < superpages; i++ {
		base := mm.MFN(i * (pagetable.SuperpageSize / mm.PageSize))
		e := pagetable.NewEntry(base,
			pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser|pagetable.FlagPSE)
		if err := pagetable.WriteEntry(h.mem, h.aliasL2, i, e); err != nil {
			return err
		}
	}
	return pagetable.WriteEntry(h.mem, h.xenL3, AliasL3Index,
		pagetable.NewEntry(h.aliasL2, pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser))
}

// initIDT lays out the interrupt descriptor table in hv-text and installs
// the native page-fault and double-fault handlers.
func (h *Hypervisor) initIDT() error {
	h.idtr = cpu.IDTR{
		Base:  layout.HypervisorVirtStart + idtFrameOffset*mm.PageSize,
		Limit: cpu.NumVectors*cpu.DescriptorSize - 1,
	}
	h.installBuiltins()
	gates := map[uint8]uint64{
		cpu.VectorPageFault:   pfHandlerVA,
		cpu.VectorDoubleFault: dfHandlerVA,
		13:                    gpHandlerVA,
	}
	for vector, handler := range gates {
		g := cpu.NewInterruptGate(handler)
		enc := g.Encode()
		phys, _, err := h.layout.Translate(h.idtr.DescriptorAddr(vector))
		if err != nil {
			return err
		}
		if err := h.mem.WritePhys(phys, enc[:]); err != nil {
			return err
		}
	}
	return nil
}

// installBuiltins registers the native trap handlers. They close over
// the hypervisor, so a forked instance must install its own set rather
// than share the prototype's.
func (h *Hypervisor) installBuiltins() {
	h.builtins[pfHandlerVA] = func(vector uint8) error {
		// The native #PF handler fixes up or reflects the fault to the
		// guest; from the machine's point of view delivery succeeded.
		h.pfCount++
		return nil
	}
	h.builtins[dfHandlerVA] = func(vector uint8) error {
		h.Crash("FATAL TRAP: vector = 8 (double fault)")
		return cpu.ErrCrashed
	}
	h.builtins[gpHandlerVA] = func(vector uint8) error {
		h.pfCount++
		return nil
	}
}

// hardenedPolicy is the 4.13 page-walk policy: guest-initiated writes
// that resolve to a frame validated as a page table are refused even
// when every PTE flag in the chain permits them.
type hardenedPolicy struct{}

var _ pagetable.Policy = hardenedPolicy{}

func (hardenedPolicy) CheckLeaf(mem *mm.Memory, target mm.MFN, acc pagetable.Access, guest bool) error {
	if !guest || acc != pagetable.AccessWrite {
		return nil
	}
	pi, err := mem.Info(target)
	if err != nil {
		return err
	}
	if pi.Type.IsPageTable() {
		return fmt.Errorf("hardened: guest write to %s page-table frame %#x refused", pi.Type, uint64(target))
	}
	return nil
}

// Accessors.

// Memory returns the machine the hypervisor runs on.
func (h *Hypervisor) Memory() *mm.Memory { return h.mem }

// Version returns the build profile.
func (h *Hypervisor) Version() Version { return h.version }

// Layout returns the hypervisor's virtual memory map.
func (h *Hypervisor) Layout() *layout.Map { return h.layout }

// IDTR returns the loaded IDT register value.
func (h *Hypervisor) IDTR() cpu.IDTR { return h.idtr }

// XenL3 returns the machine frame of the shared Xen L3 — the "target
// PUD" of the XSA-212-priv attack. Real exploits obtain the equivalent
// as hardcoded per-version build constants.
func (h *Hypervisor) XenL3() mm.MFN { return h.xenL3 }

// XenL4 returns the idle L4 root.
func (h *Hypervisor) XenL4() mm.MFN { return h.xenL4 }

// HeapBase returns the first frame of the Xen heap.
func (h *Hypervisor) HeapBase() mm.MFN { return h.heapBase }

// HeapFrames returns the size of the Xen heap in frames.
func (h *Hypervisor) HeapFrames() int { return xenHeapFrames }

// PageFaults returns how many faults the native #PF handler absorbed.
func (h *Hypervisor) PageFaults() int { return h.pfCount }

// Telemetry returns the build's telemetry recorder (nil when tracing
// is disabled). Packages holding the hypervisor — the injector, the
// scenarios, the monitor — reach the environment's sink through this.
func (h *Hypervisor) Telemetry() *telemetry.Recorder { return h.cfg.tel }

// Spans returns the build's causal span tree (nil when span capture is
// disabled). The campaign engine and the monitor nest their phases and
// audit passes in it.
func (h *Hypervisor) Spans() *span.Tree { return h.cfg.spans }

// Coverage returns the build's coverage map (nil when coverage is
// disabled).
func (h *Hypervisor) Coverage() *coverage.Map { return h.cfg.cov }

// FrameClassifier returns the region classifier coverage uses for
// page-type edges: the hypervisor's own reservations classify as
// "hv-text" and "xen-heap", everything else as "general". The classes
// depend only on the boot-time reservation bases, which are
// deterministic, so classification is identical across fresh boots,
// snapshot forks and worker counts.
func (h *Hypervisor) FrameClassifier() coverage.FrameClassifier {
	text, heap := uint64(h.hvTextBase), uint64(h.heapBase)
	return func(mfn uint64) string {
		switch {
		case mfn >= text && mfn < text+hvTextFrames:
			return "hv-text"
		case mfn >= heap && mfn < heap+xenHeapFrames:
			return "xen-heap"
		}
		return "general"
	}
}

// ClockTicks returns how many benign vDSO clock reads have executed.
func (h *Hypervisor) ClockTicks() int { return h.clockTicks }

// Console and crash handling.

// Logf appends a line to the hypervisor console, "(XEN)"-prefixed like
// the serial output the paper's monitoring terminal captures.
func (h *Hypervisor) Logf(format string, args ...any) {
	h.console = append(h.console, "(XEN) "+fmt.Sprintf(format, args...))
}

// Console returns a copy of the console log.
func (h *Hypervisor) Console() []string {
	out := make([]string, len(h.console))
	copy(out, h.console)
	return out
}

// ConsoleContains reports whether any console line contains the
// substring — the oracle the crash monitor uses.
func (h *Hypervisor) ConsoleContains(sub string) bool {
	for _, line := range h.console {
		if strings.Contains(line, sub) {
			return true
		}
	}
	return false
}

// Crash records a fatal hypervisor failure and prints the panic banner.
// Implements cpu.Platform.
func (h *Hypervisor) Crash(reason string) {
	if h.crashed {
		return
	}
	h.crashed = true
	h.crashMsg = reason
	h.console = append(h.console,
		"(XEN) ****************************************",
		"(XEN) Panic on CPU 0:",
		"(XEN) "+reason,
		"(XEN) ****************************************",
		"(XEN) Reboot in five seconds...",
	)
}

// Crashed reports whether the hypervisor has panicked. Implements
// cpu.Platform.
func (h *Hypervisor) Crashed() bool { return h.crashed }

// CrashReason returns the recorded panic reason, empty if alive.
func (h *Hypervisor) CrashReason() string { return h.crashMsg }

// Hung reports whether a payload drove the hypervisor into a hang state.
func (h *Hypervisor) Hung() bool { return h.hung }

// Builtin resolves native trap handlers. Implements cpu.Platform.
func (h *Hypervisor) Builtin(va uint64) (cpu.BuiltinHandler, bool) {
	f, ok := h.builtins[va]
	return f, ok
}

// Ring0Context returns the execution context IDT-dispatched payloads run
// under. Implements cpu.Platform.
func (h *Hypervisor) Ring0Context() cpu.ExecContext { return &ring0Ctx{h: h} }

// ring0Ctx is hypervisor-privilege payload execution: reach into every
// domain, no further escalation possible.
type ring0Ctx struct {
	h *Hypervisor
}

var _ cpu.ExecContext = (*ring0Ctx)(nil)

func (c *ring0Ctx) Logf(format string, args ...any) {
	c.h.Logf("ring0 payload: "+format, args...)
}

func (c *ring0Ctx) DropFileAllDomains(path, tmpl string) error {
	for _, d := range c.h.DomainList() {
		os := d.OS()
		if os == nil {
			continue
		}
		content := strings.ReplaceAll(tmpl, "@HOST", "@"+os.Hostname())
		if err := os.WriteFileAsRoot(path, content); err != nil {
			return fmt.Errorf("hv: dropping %s in %s: %w", path, d.Name(), err)
		}
	}
	return nil
}

func (c *ring0Ctx) ReverseShell(addr string) error {
	for _, d := range c.h.DomainList() {
		if d.Privileged() && d.OS() != nil {
			return d.OS().ReverseShellAsRoot(addr)
		}
	}
	return fmt.Errorf("hv: no privileged domain with an attached OS")
}

func (c *ring0Ctx) Escalate() { c.h.Logf("ring0 payload: already at hypervisor privilege") }

func (c *ring0Ctx) ClockGettime() { c.h.clockTicks++ }

func (c *ring0Ctx) Halt() {
	c.h.hung = true
	c.h.Logf("ring0 payload: CPU wedged in tight loop (hang state)")
}

var _ cpu.Platform = (*Hypervisor)(nil)
