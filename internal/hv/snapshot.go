package hv

import (
	"repro/internal/coverage"
	"repro/internal/cpu"
	"repro/internal/faults"
	"repro/internal/mm"
	"repro/internal/pagetable"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// Snapshot is a sealed hypervisor build: the booted instance becomes an
// immutable prototype from which per-cell forks are stamped out. The
// prototype must never be driven again — its machine has been sealed by
// mm.Seal, and every fork shares its structural state.
type Snapshot struct {
	proto *Hypervisor
}

// Seal captures the hypervisor as the prototype for forks. Call it
// after the full environment (domains, guests, listeners) is built and
// the machine has been sealed.
func (h *Hypervisor) Seal() *Snapshot { return &Snapshot{proto: h} }

// FrameClassifier returns the prototype's coverage region classifier.
// Forks share the prototype's reservation bases, so the classifier is
// valid for every cell stamped from this snapshot; the campaign
// installs it on a cell's coverage map before replaying the boot
// journal.
func (s *Snapshot) FrameClassifier() coverage.FrameClassifier {
	return s.proto.FrameClassifier()
}

// Fork stamps out a per-cell hypervisor instance on a forked machine.
// Immutable structure (layout, policy, shared-table addresses, IDT
// geometry) is shared with the prototype; everything mutable is either
// freshly built (handler closures, walker, builder, TLBs, vCPUs) or
// cloned copy-on-write (per-domain P2M and page-table maps). The given
// per-cell sinks replace the prototype's.
func (s *Snapshot) Fork(mem *mm.Memory, tel *telemetry.Recorder, flt *faults.Injector, spans *span.Tree) *Hypervisor {
	p := s.proto
	h := &Hypervisor{
		mem:     mem,
		version: p.version,
		cfg:     p.cfg,

		layout: p.layout,
		policy: p.policy,

		hvTextBase: p.hvTextBase,
		heapBase:   p.heapBase,
		xenL4:      p.xenL4,
		xenL3:      p.xenL3,
		aliasL2:    p.aliasL2,

		idtr:     p.idtr,
		builtins: make(map[uint64]cpu.BuiltinHandler),

		domains:   make(map[mm.DomID]*Domain),
		nextDomID: p.nextDomID,
		nextCPUID: p.nextCPUID,

		hypercalls: make(map[int]Hypercall),

		// Clip the shared boot console so a fork's appends reallocate
		// instead of scribbling over the prototype's backing array.
		console:    p.console[:len(p.console):len(p.console)],
		crashed:    p.crashed,
		crashMsg:   p.crashMsg,
		hung:       p.hung,
		pfCount:    p.pfCount,
		clockTicks: p.clockTicks,
	}
	h.cfg.tel = tel
	h.cfg.flt = flt
	h.cfg.spans = spans
	// Coverage rides on the cell's recorder, as in boot. The campaign
	// installed the classifier (via FrameClassifier) before replaying
	// the boot journal, so fork-path classification matches fresh boot.
	h.cfg.cov = tel.Coverage()

	// Handlers close over their hypervisor, so each fork installs its
	// own set; sharing the prototype's closures would route a fork's
	// traps and hypercalls into the prototype.
	h.installBuiltins()
	h.registerCoreHypercalls()

	// Walker and builder are cheap stateless shells over the machine;
	// rebuild them on the fork's machine with the fork's sinks.
	h.walker = pagetable.NewWalker(mem, h.policy)
	if tel != nil {
		h.walker.AttachTelemetry(tel)
	}
	h.builder = pagetable.NewBuilder(mem, func() (mm.MFN, error) { return mem.Alloc(mm.DomXen) })

	for _, pd := range p.DomainList() {
		d := &Domain{
			id:         pd.id,
			name:       pd.name,
			privileged: pd.privileged,
			hv:         h,
			p2m:        pd.p2m.ForkOnto(mem),
			base:       pd.base,
			frames:     pd.frames,
			cr3:        pd.cr3,
			ptFrames:   pd.ptFrames,
			ptShared:   true,

			nextFreePFN: pd.nextFreePFN,
			ptLowestPFN: pd.ptLowestPFN,

			tlb: pagetable.NewTLB(h.cfg.tlbCapacity),

			destroyed: pd.destroyed,
			paused:    pd.paused,
		}
		// Grant tables and event channels are built lazily on first use
		// and are nil at seal time, so forks start from nil too.
		d.vcpu = cpu.New(pd.vcpu.ID(), mem, &domainSpace{h: h, d: d}, h)
		d.vcpu.LIDT(h.idtr)
		h.domains[d.id] = d
	}
	return h
}
