package hv

import (
	"fmt"
	"sort"

	"repro/internal/mm"
	"repro/internal/pagetable"
)

// AuditMemory cross-checks the frame table against the actual contents
// of every domain's page tables: each present entry should be backed by
// the references the validated update path takes, every writable leaf by
// a writable type, and P2M/M2P should agree. Discrepancies are the
// auditable form of the "Corrupt a Page Reference" erroneous-state class
// of Table I — exactly what raw (vulnerability- or injector-made) writes
// leave behind and validated interfaces never do.
//
// The returned findings are human-readable, one per discrepancy, empty
// when the accounting is coherent.
func (h *Hypervisor) AuditMemory() []string {
	var findings []string

	// Expected per-frame counts derived from live page-table contents.
	expectedRefs := make(map[mm.MFN]uint32)
	expectedWritable := make(map[mm.MFN]uint32)

	for _, d := range h.DomainList() {
		// The vCPU's CR3 reference.
		expectedRefs[d.cr3]++
		for mfn, level := range d.ptFrames {
			pi, err := h.mem.Info(mfn)
			if err != nil || !pi.Type.IsPageTable() {
				continue // demoted while recorded: stale bookkeeping, not a frame
			}
			for idx := 0; idx < pagetable.EntriesPerTable; idx++ {
				if level == 4 && idx >= XenL4Slot && idx < XenL4Slot+16 {
					continue
				}
				e, err := pagetable.ReadEntry(h.mem, mfn, idx)
				if err != nil || !e.Present() {
					continue
				}
				if level == 2 && e.Superpage() {
					// The XSA-148 state: a superpage entry took no
					// references, by the vulnerable design.
					findings = append(findings, fmt.Sprintf(
						"dom%d L2 frame %#x[%d]: unaccounted superpage entry %v",
						d.id, uint64(mfn), idx, e))
					continue
				}
				if !h.mem.ValidMFN(e.MFN()) {
					findings = append(findings, fmt.Sprintf(
						"dom%d L%d frame %#x[%d]: entry references invalid frame %#x",
						d.id, level, uint64(mfn), idx, uint64(e.MFN())))
					continue
				}
				expectedRefs[e.MFN()]++
				if level == 1 && e.Writable() {
					expectedWritable[e.MFN()]++
				}
			}
		}
	}

	// Compare against the frame table for every frame owned by a domain.
	checked := make(map[mm.MFN]bool)
	for _, d := range h.DomainList() {
		for i := 0; i < d.frames; i++ {
			mfn := d.base + mm.MFN(i)
			if checked[mfn] {
				continue
			}
			checked[mfn] = true
			pi, err := h.mem.Info(mfn)
			if err != nil {
				continue
			}
			expected := expectedRefs[mfn]
			if pi.Pinned {
				expected++ // an MMUEXT pin holds one reference
			}
			if pi.RefCount != expected {
				findings = append(findings, fmt.Sprintf(
					"frame %#x (dom%d, %s): refcount %d but %d live references found",
					uint64(mfn), pi.Owner, pi.Type, pi.RefCount, expected))
			}
			if pi.Type == mm.TypeWritable && pi.TypeCount != expectedWritable[mfn] {
				findings = append(findings, fmt.Sprintf(
					"frame %#x (dom%d): writable type count %d but %d writable mappings found",
					uint64(mfn), pi.Owner, pi.TypeCount, expectedWritable[mfn]))
			}
			if pi.Type.IsPageTable() && expectedWritable[mfn] > 0 {
				findings = append(findings, fmt.Sprintf(
					"frame %#x (dom%d): %s page table has %d guest-writable mappings",
					uint64(mfn), pi.Owner, pi.Type, expectedWritable[mfn]))
			}
		}
	}

	// P2M/M2P agreement per domain.
	for _, d := range h.DomainList() {
		for _, pfn := range d.p2m.PFNs() {
			mfn, err := d.p2m.Lookup(pfn)
			if err != nil {
				continue
			}
			dom, back, err := h.mem.M2P(mfn)
			if err != nil || dom != d.id || back != pfn {
				findings = append(findings, fmt.Sprintf(
					"dom%d p2m[%#x] = %#x but m2p disagrees (dom%d pfn %#x err %v)",
					d.id, uint64(pfn), uint64(mfn), dom, uint64(back), err))
			}
		}
	}

	sort.Strings(findings)
	return findings
}
