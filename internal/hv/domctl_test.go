package hv

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/mm"
)

func domctlEnv(t *testing.T) (*Hypervisor, *Domain, *Domain) {
	t.Helper()
	h := bootVersion(t, Version413())
	dom0 := mustDomain(t, h, "xen3", 64, true)
	guest := mustDomain(t, h, "guest01", 64, false)
	return h, dom0, guest
}

func TestDomctlRequiresPrivilege(t *testing.T) {
	_, _, g := domctlEnv(t)
	err := g.Hypercall(HypercallDomctl, &DomctlArgs{Op: DomctlGetInfo, Target: mm.Dom0})
	if !errors.Is(err, ErrPerm) {
		t.Errorf("guest domctl: err = %v, want ErrPerm", err)
	}
}

func TestDomctlPauseUnpause(t *testing.T) {
	_, d0, g := domctlEnv(t)
	if err := d0.Hypercall(HypercallDomctl, &DomctlArgs{Op: DomctlPause, Target: g.ID()}); err != nil {
		t.Fatal(err)
	}
	if !g.Paused() {
		t.Fatal("guest not paused")
	}
	// Paused guests cannot issue hypercalls.
	if err := g.Hypercall(HypercallConsoleIO, "hello"); err == nil || !strings.Contains(err.Error(), "paused") {
		t.Errorf("paused guest hypercall: %v", err)
	}
	if err := d0.Hypercall(HypercallDomctl, &DomctlArgs{Op: DomctlUnpause, Target: g.ID()}); err != nil {
		t.Fatal(err)
	}
	if g.Paused() {
		t.Fatal("guest still paused")
	}
	if err := g.Hypercall(HypercallConsoleIO, "back"); err != nil {
		t.Errorf("unpaused guest hypercall: %v", err)
	}
}

func TestDomctlDestroy(t *testing.T) {
	h, d0, g := domctlEnv(t)
	id := g.ID()
	if err := d0.Hypercall(HypercallDomctl, &DomctlArgs{Op: DomctlDestroy, Target: id}); err != nil {
		t.Fatal(err)
	}
	if !g.Destroyed() {
		t.Error("guest not marked destroyed")
	}
	if _, err := h.Domain(id); !errors.Is(err, ErrDomGone) {
		t.Errorf("destroyed domain still listed: %v", err)
	}
	if err := g.Hypercall(HypercallConsoleIO, "zombie"); !errors.Is(err, ErrDomGone) {
		t.Errorf("zombie hypercall: %v", err)
	}
	// Zombie semantics: the frames stay allocated.
	pi, err := h.Memory().Info(g.Base())
	if err != nil {
		t.Fatal(err)
	}
	if pi.Owner != id {
		t.Errorf("zombie frame owner = dom%d", pi.Owner)
	}
	// dom0 is indestructible.
	if err := d0.Hypercall(HypercallDomctl, &DomctlArgs{Op: DomctlDestroy, Target: mm.Dom0}); !errors.Is(err, ErrInval) {
		t.Errorf("destroying dom0: %v", err)
	}
	// Operating on a gone domain fails.
	if err := d0.Hypercall(HypercallDomctl, &DomctlArgs{Op: DomctlPause, Target: id}); !errors.Is(err, ErrDomGone) {
		t.Errorf("pausing zombie: %v", err)
	}
}

func TestDomctlReadMemory(t *testing.T) {
	h, d0, g := domctlEnv(t)
	// The toolstack reads the guest's start_info page.
	buf := make([]byte, 32)
	err := d0.Hypercall(HypercallDomctl, &DomctlArgs{
		Op: DomctlReadMemory, Target: g.ID(), PFN: StartInfoPFN, Buf: buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(buf), StartInfoMagic[:25]) {
		t.Errorf("read = %q", buf)
	}
	// Bad sizes and absent PFNs are rejected.
	if err := d0.Hypercall(HypercallDomctl, &DomctlArgs{Op: DomctlReadMemory, Target: g.ID(), PFN: 0, Buf: nil}); !errors.Is(err, ErrInval) {
		t.Errorf("empty read: %v", err)
	}
	if err := d0.Hypercall(HypercallDomctl, &DomctlArgs{Op: DomctlReadMemory, Target: g.ID(), PFN: 5000, Buf: buf}); !errors.Is(err, ErrInval) {
		t.Errorf("absent pfn: %v", err)
	}
	_ = h
}

func TestDomctlGetInfo(t *testing.T) {
	_, d0, g := domctlEnv(t)
	args := &DomctlArgs{Op: DomctlGetInfo, Target: g.ID()}
	if err := d0.Hypercall(HypercallDomctl, args); err != nil {
		t.Fatal(err)
	}
	if args.Info.Name != "guest01" || args.Info.Frames != 64 || args.Info.Privileged || args.Info.Paused {
		t.Errorf("info = %+v", args.Info)
	}
	// Bad ops and arg types.
	if err := d0.Hypercall(HypercallDomctl, &DomctlArgs{Op: DomctlOp(99), Target: g.ID()}); !errors.Is(err, ErrInval) {
		t.Errorf("bad op: %v", err)
	}
	if err := d0.Hypercall(HypercallDomctl, "nope"); !errors.Is(err, ErrInval) {
		t.Errorf("bad args: %v", err)
	}
}

func TestDomctlOpStrings(t *testing.T) {
	for _, op := range []DomctlOp{DomctlPause, DomctlUnpause, DomctlDestroy, DomctlReadMemory, DomctlGetInfo} {
		if strings.HasPrefix(op.String(), "DomctlOp(") {
			t.Errorf("op %d unnamed", op)
		}
	}
	if !strings.HasPrefix(DomctlOp(42).String(), "DomctlOp(") {
		t.Error("unknown op string")
	}
}
