package hv

import (
	"fmt"

	"repro/internal/mm"
	"repro/internal/pagetable"
)

// MMUUpdateArgs is the argument to HypercallMMUUpdate: a batch of
// validated page-table entry writes, the PV direct-paging interface.
type MMUUpdateArgs struct {
	Updates []MMUUpdate
}

// MMUUpdate is one entry write: Ptr is the machine-physical address of
// the page-table entry, Val the new entry.
type MMUUpdate struct {
	Ptr mm.PhysAddr
	Val pagetable.Entry
}

// MMUExtOp selects an extended MMU operation.
type MMUExtOp uint8

// Extended MMU operations.
const (
	// MMUExtPinL1Table .. MMUExtPinL4Table validate and pin a frame as a
	// page table of the given level.
	MMUExtPinL1Table MMUExtOp = iota + 1
	MMUExtPinL2Table
	MMUExtPinL3Table
	MMUExtPinL4Table
	// MMUExtUnpinTable releases a pin.
	MMUExtUnpinTable
	// MMUExtNewBaseptr switches the domain's CR3 to a validated L4.
	MMUExtNewBaseptr
)

// MMUExtArgs is the argument to HypercallMMUExtOp.
type MMUExtArgs struct {
	Op  MMUExtOp
	MFN mm.MFN
}

// safeFlagMask returns the flag bits the L4/L3/L2/L1 fast path may change
// without revalidation. The pre-XSA-182 mask wrongly includes RW: a
// flag-only update that sets RW on an existing entry — including a
// recursive L4 self-reference — skips the check that would reject a
// writable mapping of a page table.
func (h *Hypervisor) safeFlagMask() uint64 {
	base := pagetable.FlagAccessed | pagetable.FlagDirty |
		pagetable.FlagPWT | pagetable.FlagPCD | pagetable.FlagGlobal
	if !h.version.XSA182Fixed {
		base |= pagetable.FlagRW
	}
	return base
}

// mmuUpdate applies a batch of validated entry writes.
func (h *Hypervisor) mmuUpdate(d *Domain, args *MMUUpdateArgs) error {
	for i := range args.Updates {
		if err := h.applyMMUUpdate(d, args.Updates[i].Ptr, args.Updates[i].Val); err != nil {
			return fmt.Errorf("hv: mmu_update %d/%d: %w", i+1, len(args.Updates), err)
		}
	}
	return nil
}

func (h *Hypervisor) applyMMUUpdate(d *Domain, ptr mm.PhysAddr, val pagetable.Entry) error {
	if ptr%pagetable.EntrySize != 0 {
		return fmt.Errorf("%w: unaligned PTE address %#x", ErrInval, uint64(ptr))
	}
	table := ptr.Frame()
	pi, err := h.mem.Info(table)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrInval, err)
	}
	if pi.Owner != d.id {
		return fmt.Errorf("%w: PTE frame %#x belongs to dom%d", ErrPerm, uint64(table), pi.Owner)
	}
	level := pi.Type.PageTableLevel()
	if level == 0 {
		return fmt.Errorf("%w: frame %#x is %s, not a page table", ErrInval, uint64(table), pi.Type)
	}
	idx := int(ptr.Offset() / pagetable.EntrySize)
	// The hypervisor's reserved L4 slots are not guest slots: updates
	// there are rejected outright (Xen's is_guest_l4_slot check), which
	// protects the shared Xen mappings from legitimate-interface abuse.
	if level == 4 && idx >= XenL4Slot && idx < XenL4Slot+16 {
		return fmt.Errorf("%w: L4 slot %d is reserved for the hypervisor", ErrPerm, idx)
	}
	old, err := pagetable.ReadEntry(h.mem, table, idx)
	if err != nil {
		return err
	}

	// Fast path: flag-only change within the safe mask skips
	// revalidation (the XSA-182 bug lives in the mask).
	if old.Present() && val.Present() && old.MFN() == val.MFN() {
		changed := old.Flags() ^ val.Flags()
		if changed&^h.safeFlagMask() == 0 {
			d.FlushTLB()
			return pagetable.WriteEntry(h.mem, table, idx, val)
		}
	}

	if val.Present() {
		v := &validation{h: h, d: d}
		if err := v.getPageFromEntry(val, level); err != nil {
			h.cfg.tel.ValidationReject(uint16(d.id), level, err.Error())
			return fmt.Errorf("%w: L%d entry %s rejected: %v", ErrInval, level, val, err)
		}
	}
	if old.Present() {
		h.putPageFromEntry(old, level)
	}
	// Validated updates are followed by the TLB flush the interface
	// guarantees; raw writes (vulnerabilities, the injector) are not.
	d.FlushTLB()
	return pagetable.WriteEntry(h.mem, table, idx, val)
}

// validation carries the state of one recursive entry validation,
// guarding against reference cycles between tables.
type validation struct {
	h          *Hypervisor
	d          *Domain
	inProgress map[mm.MFN]bool
}

// getPageFromEntry validates an entry being installed at the given table
// level and takes the references it pins, the analogue of Xen's
// get_page_from_lNe family. This is where the XSA-148 (missing L2 PSE
// check) gate lives.
func (v *validation) getPageFromEntry(e pagetable.Entry, level int) error {
	h, d := v.h, v.d
	target := e.MFN()
	if !h.mem.ValidMFN(target) {
		return fmt.Errorf("target frame %#x outside machine memory", uint64(target))
	}
	switch level {
	case 1:
		pi, err := h.mem.Info(target)
		if err != nil {
			return err
		}
		if pi.Owner != d.id {
			return fmt.Errorf("%w: frame %#x belongs to dom%d", ErrPerm, uint64(target), pi.Owner)
		}
		if e.Writable() {
			if err := h.mem.GetType(target, mm.TypeWritable); err != nil {
				return fmt.Errorf("writable mapping refused: %w", err)
			}
		}
		if err := h.mem.GetRef(target, d.id); err != nil {
			if e.Writable() {
				_ = h.mem.PutType(target)
			}
			return err
		}
		return nil

	case 2:
		if e.Superpage() {
			if !h.version.XSA148Fixed {
				// XSA-148: the PSE bit is not checked at all — the entry
				// is accepted with no validation and no references,
				// handing the guest a 2 MiB window over arbitrary
				// machine memory.
				return nil
			}
			return fmt.Errorf("superpage (PSE) mappings are not permitted for PV guests")
		}
		return v.getTable(target, 1)

	case 3:
		return v.getTable(target, 2)

	case 4:
		pi, err := h.mem.Info(target)
		if err != nil {
			return err
		}
		if pi.Type == mm.TypeL4 {
			// A recursive (linear page table) reference to an L4 root is
			// legal only read-only; writable L4 references are exactly
			// what validation exists to prevent.
			if e.Writable() {
				return fmt.Errorf("writable L4 self-reference refused")
			}
			if err := h.mem.GetType(target, mm.TypeL4); err != nil {
				return err
			}
			if err := h.mem.GetRef(target, d.id); err != nil {
				_ = h.mem.PutType(target)
				return err
			}
			return nil
		}
		return v.getTable(target, 3)

	default:
		return fmt.Errorf("%w: level %d", pagetable.ErrBadLevel, level)
	}
}

// getTable validates mfn for use as a page table of the given level,
// recursively validating its current contents on first promotion, and
// takes a type and a general reference — Xen's get_page_type +
// get_page pair.
func (v *validation) getTable(mfn mm.MFN, level int) error {
	h, d := v.h, v.d
	pi, err := h.mem.Info(mfn)
	if err != nil {
		return err
	}
	if pi.Owner != d.id {
		return fmt.Errorf("%w: table frame %#x belongs to dom%d", ErrPerm, uint64(mfn), pi.Owner)
	}
	want, err := mm.TypeForLevel(level)
	if err != nil {
		return err
	}
	if v.inProgress[mfn] {
		return fmt.Errorf("circular page-table reference through frame %#x", uint64(mfn))
	}
	switch {
	case pi.TypeCount > 0 && pi.Type == want:
		// Already validated at this level: just take references.
		if err := h.mem.GetType(mfn, want); err != nil {
			return err
		}
	case pi.TypeCount > 0:
		return fmt.Errorf("frame %#x is in use as %s (count %d)", uint64(mfn), pi.Type, pi.TypeCount)
	default:
		// First promotion: every present entry must validate at the
		// level below before the type is granted.
		if v.inProgress == nil {
			v.inProgress = make(map[mm.MFN]bool)
		}
		v.inProgress[mfn] = true
		defer delete(v.inProgress, mfn)
		if level == 4 {
			// A frame becoming an L4 gets the canonical hypervisor slots
			// installed (init_xen_l4_slots); whatever the guest put there
			// is not validated and not honoured.
			if err := h.installXenSlots(mfn); err != nil {
				return err
			}
		}
		var validated []pagetable.Entry
		for idx := 0; idx < pagetable.EntriesPerTable; idx++ {
			if level == 4 && idx >= XenL4Slot && idx < XenL4Slot+16 {
				continue
			}
			e, err := pagetable.ReadEntry(h.mem, mfn, idx)
			if err != nil {
				return err
			}
			if !e.Present() {
				continue
			}
			if err := v.getPageFromEntry(e, level); err != nil {
				for _, ve := range validated {
					h.putPageFromEntry(ve, level)
				}
				return fmt.Errorf("entry %d: %w", idx, err)
			}
			validated = append(validated, e)
		}
		if err := h.mem.GetType(mfn, want); err != nil {
			for _, ve := range validated {
				h.putPageFromEntry(ve, level)
			}
			return err
		}
		d.setPTFrame(mfn, level)
	}
	return h.mem.GetRef(mfn, d.id)
}

// putPageFromEntry releases the references a validated entry held, the
// analogue of put_page_from_lNe. Errors are logged, not propagated:
// teardown must make progress, and an imbalance here is itself evidence
// of a corrupted state worth surfacing on the console.
func (h *Hypervisor) putPageFromEntry(e pagetable.Entry, level int) {
	target := e.MFN()
	pi, err := h.mem.Info(target)
	if err != nil {
		h.Logf("WARNING: put of entry %s at L%d: %v", e, level, err)
		return
	}
	switch level {
	case 1:
		if e.Writable() {
			if err := h.mem.PutType(target); err != nil {
				h.Logf("WARNING: type underflow releasing %s: %v", e, err)
			}
		}
	case 2:
		if e.Superpage() {
			return // no references were ever taken (see getPageFromEntry)
		}
		h.putTable(target, 1)
	case 3:
		h.putTable(target, 2)
	case 4:
		if pi.Type == mm.TypeL4 {
			if err := h.mem.PutType(target); err != nil {
				h.Logf("WARNING: type underflow releasing L4 self-map: %v", err)
			}
		} else {
			h.putTable(target, 3)
		}
	}
	if err := h.mem.PutRef(target); err != nil {
		h.Logf("WARNING: ref underflow releasing %s at L%d: %v", e, level, err)
	}
}

// putTable drops a type reference on a page-table frame; when the last
// use goes away the frame's own entries release their references in turn
// (free_page_type).
func (h *Hypervisor) putTable(mfn mm.MFN, level int) {
	if err := h.mem.PutType(mfn); err != nil {
		h.Logf("WARNING: type underflow on table %#x: %v", uint64(mfn), err)
		return
	}
	pi, err := h.mem.Info(mfn)
	if err != nil || pi.TypeCount > 0 || pi.Pinned {
		return
	}
	for idx := 0; idx < pagetable.EntriesPerTable; idx++ {
		// Reserved Xen slots in an L4 are hypervisor-owned and carry no
		// guest references (free_l4_table skips them).
		if level == 4 && idx >= XenL4Slot && idx < XenL4Slot+16 {
			continue
		}
		e, err := pagetable.ReadEntry(h.mem, mfn, idx)
		if err != nil {
			return
		}
		if e.Present() {
			h.putPageFromEntry(e, level)
		}
	}
}

// mmuExtOp implements pin/unpin/baseptr switching.
func (h *Hypervisor) mmuExtOp(d *Domain, args *MMUExtArgs) error {
	switch args.Op {
	case MMUExtPinL1Table, MMUExtPinL2Table, MMUExtPinL3Table, MMUExtPinL4Table:
		level := int(args.Op-MMUExtPinL1Table) + 1
		v := &validation{h: h, d: d}
		if err := v.getTable(args.MFN, level); err != nil {
			h.cfg.tel.ValidationReject(uint16(d.id), level, err.Error())
			return fmt.Errorf("%w: pin L%d of %#x: %v", ErrInval, level, uint64(args.MFN), err)
		}
		pi, err := h.mem.Info(args.MFN)
		if err != nil {
			return err
		}
		if pi.Pinned {
			// Undo the extra references: a frame pins only once.
			h.putTable(args.MFN, level)
			_ = h.mem.PutRef(args.MFN)
			return fmt.Errorf("%w: frame %#x already pinned", ErrInval, uint64(args.MFN))
		}
		pi.Pinned = true
		return nil

	case MMUExtUnpinTable:
		pi, err := h.mem.Info(args.MFN)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInval, err)
		}
		if pi.Owner != d.id {
			return fmt.Errorf("%w: frame %#x belongs to dom%d", ErrPerm, uint64(args.MFN), pi.Owner)
		}
		if !pi.Pinned {
			return fmt.Errorf("%w: frame %#x is not pinned", ErrInval, uint64(args.MFN))
		}
		level := pi.Type.PageTableLevel()
		if level == 0 {
			return fmt.Errorf("%w: pinned frame %#x is not a page table", ErrInval, uint64(args.MFN))
		}
		pi.Pinned = false
		h.putTable(args.MFN, level)
		_ = h.mem.PutRef(args.MFN)
		return nil

	case MMUExtNewBaseptr:
		v := &validation{h: h, d: d}
		if err := v.getTable(args.MFN, 4); err != nil {
			h.cfg.tel.ValidationReject(uint16(d.id), 4, err.Error())
			return fmt.Errorf("%w: new baseptr %#x: %v", ErrInval, uint64(args.MFN), err)
		}
		old := d.cr3
		d.cr3 = args.MFN
		d.FlushTLB()
		if old != args.MFN {
			h.putTable(old, 4)
			_ = h.mem.PutRef(old)
		} else {
			// Same root re-loaded: drop the extra references just taken.
			h.putTable(args.MFN, 4)
			_ = h.mem.PutRef(args.MFN)
		}
		return nil

	default:
		return fmt.Errorf("%w: mmuext op %d", ErrInval, args.Op)
	}
}
