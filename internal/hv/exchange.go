package hv

import (
	"fmt"

	"repro/internal/mm"
	"repro/internal/pagetable"
)

// ExchangeArgs is the argument to the XENMEM_exchange sub-op of
// HypercallMemoryOp: the guest donates the frames behind In and receives
// fresh frames at the same PFNs; the 64-bit identifier of each new frame
// is stored to OutStart + 8*i through a guest handle.
//
// The XSA-212 vulnerability is the missing access check on that handle:
// on the 4.6 profile the store resolves through the hypervisor's own
// linear address space, so OutStart may point anywhere — including the
// IDT or a shared page table.
//
// OutValues, when non-nil, overrides the stored value per extent. This is
// the modeling concession documented in DESIGN.md §1: the real PoC
// constructs attacker-chosen values from the primitive via partial
// overwrites; the simulator surfaces the constructed value directly. The
// override changes nothing on fixed profiles, where the handle check
// confines the store to the guest's own writable memory.
type ExchangeArgs struct {
	In        []mm.PFN
	OutStart  uint64
	OutValues []uint64

	// Result fields, filled by the hypercall.
	NrExchanged int
	NewMFNs     []mm.MFN
}

// PopulatePhysmapArgs asks for a fresh frame at the given PFN.
type PopulatePhysmapArgs struct {
	PFN mm.PFN

	// MFN receives the allocated frame.
	MFN mm.MFN
}

// DecreaseReservationArgs releases the frame at the given PFN back to the
// hypervisor. The PFN must not be mapped anywhere (references drained).
type DecreaseReservationArgs struct {
	PFN mm.PFN
}

// memoryOp multiplexes the memory sub-operations on argument type.
func (h *Hypervisor) memoryOp(d *Domain, arg any) error {
	switch a := arg.(type) {
	case *ExchangeArgs:
		return h.memoryExchange(d, a)
	case *PopulatePhysmapArgs:
		return h.populatePhysmap(d, a)
	case *DecreaseReservationArgs:
		return h.decreaseReservation(d, a)
	default:
		return fmt.Errorf("%w: memory_op wants exchange/populate/decrease args, got %T", ErrInval, arg)
	}
}

func (h *Hypervisor) memoryExchange(d *Domain, args *ExchangeArgs) error {
	if args.OutValues != nil && len(args.OutValues) != len(args.In) {
		return fmt.Errorf("%w: %d out values for %d extents", ErrInval, len(args.OutValues), len(args.In))
	}
	args.NrExchanged = 0
	args.NewMFNs = args.NewMFNs[:0]
	for i, pfn := range args.In {
		old, err := d.p2m.Lookup(pfn)
		if err != nil {
			return fmt.Errorf("%w: exchange extent %d: pfn %#x not populated", ErrInval, i, uint64(pfn))
		}
		pi, err := h.mem.Info(old)
		if err != nil {
			return err
		}
		if pi.RefCount != 0 || pi.TypeCount != 0 {
			return fmt.Errorf("%w: exchange extent %d: frame %#x still mapped (ref=%d type=%d)",
				ErrInval, i, uint64(old), pi.RefCount, pi.TypeCount)
		}
		if _, err := d.p2m.Clear(pfn); err != nil {
			return err
		}
		if err := h.mem.Free(old); err != nil {
			return err
		}
		fresh, err := h.mem.Alloc(d.id)
		if err != nil {
			return fmt.Errorf("%w: exchange extent %d: %v", ErrNoMem, i, err)
		}
		if err := d.p2m.Set(pfn, fresh); err != nil {
			return err
		}
		args.NewMFNs = append(args.NewMFNs, fresh)

		val := uint64(fresh)
		if args.OutValues != nil {
			val = args.OutValues[i]
		}
		dst := args.OutStart + 8*uint64(args.NrExchanged)
		if err := h.copyToGuestU64(d, dst, val); err != nil {
			return fmt.Errorf("exchange extent %d: storing result: %w", i, err)
		}
		args.NrExchanged++
	}
	d.FlushTLB()
	return nil
}

// accessOK is the guest-handle check the XSA-212 fix adds: a handle must
// lie outside the hypervisor's reserved virtual range.
func accessOK(va uint64, n int) bool {
	end := va + uint64(n)
	if end < va {
		return false
	}
	const hvStart, hvEnd = 0xffff800000000000, uint64(GuestPhysmapBase)
	return end <= hvStart || va >= hvEnd
}

// copyToGuestU64 stores one 64-bit value through a guest handle. On
// profiles with the XSA-212 fix the handle is checked and then resolved
// through the guest's page tables; on 4.6 the check is missing and the
// store resolves through the hypervisor's own linear space first — the
// arbitrary-write primitive.
func (h *Hypervisor) copyToGuestU64(d *Domain, va uint64, val uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(val >> (8 * i))
	}
	if h.version.XSA212Fixed && !accessOK(va, len(b)) {
		return fmt.Errorf("%w: guest handle %#x is in the hypervisor range", ErrFault, va)
	}
	space := &domainSpace{h: h, d: d}
	done := 0
	for done < len(b) {
		cur := va + uint64(done)
		phys, err := space.Translate(cur, pagetable.AccessWrite, false)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrFault, err)
		}
		n := len(b) - done
		if remain := int(mm.PageSize - cur&mm.PageMask); n > remain {
			n = remain
		}
		if err := h.mem.WritePhys(phys, b[done:done+n]); err != nil {
			return err
		}
		done += n
	}
	return nil
}

func (h *Hypervisor) populatePhysmap(d *Domain, args *PopulatePhysmapArgs) error {
	if d.p2m.Contains(args.PFN) {
		return fmt.Errorf("%w: pfn %#x already populated", ErrInval, uint64(args.PFN))
	}
	mfn, err := h.mem.Alloc(d.id)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoMem, err)
	}
	if err := d.p2m.Set(args.PFN, mfn); err != nil {
		return err
	}
	args.MFN = mfn
	return nil
}

func (h *Hypervisor) decreaseReservation(d *Domain, args *DecreaseReservationArgs) error {
	mfn, err := d.p2m.Lookup(args.PFN)
	if err != nil {
		return fmt.Errorf("%w: pfn %#x not populated", ErrInval, uint64(args.PFN))
	}
	pi, err := h.mem.Info(mfn)
	if err != nil {
		return err
	}
	if pi.RefCount != 0 || pi.TypeCount != 0 {
		return fmt.Errorf("%w: frame %#x still mapped (ref=%d type=%d)",
			ErrInval, uint64(mfn), pi.RefCount, pi.TypeCount)
	}
	if _, err := d.p2m.Clear(args.PFN); err != nil {
		return err
	}
	d.FlushTLB()
	return h.mem.Free(mfn)
}
