package hv

import (
	"fmt"

	"repro/internal/mm"
)

// Injector support surface: the hooks a state-level intrusion injector
// needs to drive the system into erroneous states that are not plain
// memory corruption (Section IX-C: "we are expanding our prototype to
// cover IMs related with malicious interrupts and activities originating
// from the management interface"). Like the arbitrary-access hypercall,
// these deliberately bypass the machinery that makes the states
// unreachable through legitimate interfaces; they exist only on injector
// builds (the inject package wires them to a hypercall).

// InjectGrantStatusLeak places the domain into the XSA-387-class
// erroneous state directly: a hypervisor-owned status frame to which the
// domain retains a reference, regardless of the version's grant-table
// behaviour. Returns the leaked frame for auditing.
func (h *Hypervisor) InjectGrantStatusLeak(d *Domain) (mm.MFN, error) {
	if h.crashed {
		return 0, ErrCrashed
	}
	status, err := h.mem.Alloc(mm.DomXen)
	if err != nil {
		return 0, fmt.Errorf("%w: allocating status frame: %v", ErrNoMem, err)
	}
	if err := h.mem.GetType(status, mm.TypeGrant); err != nil {
		return 0, err
	}
	if err := h.mem.GetRef(status, mm.DomXen); err != nil {
		return 0, err
	}
	gt := d.grants()
	gt.statusFrames = append(gt.statusFrames, status)
	h.Logf("injected keep-page-access state: dom%d retains hv frame %#x", d.id, uint64(status))
	return status, nil
}

// InjectEventFlood marks count pending events on the victim's port
// without any binding — the "Uncontrolled Arbitrary Interrupts Requests"
// erroneous state.
func (h *Hypervisor) InjectEventFlood(victim *Domain, port, count int) error {
	if h.crashed {
		return ErrCrashed
	}
	chs := victim.channels()
	if port < 0 || port >= len(chs) {
		return fmt.Errorf("%w: port %d", ErrInval, port)
	}
	if count <= 0 {
		return fmt.Errorf("%w: count %d", ErrInval, count)
	}
	chs[port].inUse = true
	chs[port].pending += count
	h.Logf("injected interrupt flood: %d events pending on dom%d port %d", count, victim.id, port)
	return nil
}

// InjectDomainPause suspends the victim with no toolstack involvement —
// the management-plane state a compromised toolstack's domctl pause
// leaves behind, induced directly.
func (h *Hypervisor) InjectDomainPause(victim *Domain) error {
	if h.crashed {
		return ErrCrashed
	}
	victim.paused = true
	h.Logf("injected pause state: dom%d suspended", victim.id)
	return nil
}

// InjectZombie tears the victim down exactly as an unreaped destroy
// leaves it: destroyed, paused, delisted from the domain table, frames
// still allocated.
func (h *Hypervisor) InjectZombie(victim *Domain) error {
	if h.crashed {
		return ErrCrashed
	}
	if victim.privileged {
		return fmt.Errorf("%w: refusing to destroy dom0", ErrInval)
	}
	victim.destroyed = true
	victim.paused = true
	delete(h.domains, victim.id)
	h.Logf("injected zombie state: dom%d destroyed, frames linger unreaped", victim.id)
	return nil
}

// InjectHang wedges the hypervisor in a non-terminating handler — the
// "Induce a Hang State" erroneous state. The machine keeps its memory
// contents but stops making progress.
func (h *Hypervisor) InjectHang(reason string) {
	if h.crashed || h.hung {
		return
	}
	h.hung = true
	h.Logf("injected hang state: %s", reason)
}

// InjectFatalException drives execution into an "impossible" abort path
// (a BUG()/ASSERT with a FATAL directive) — the "Induce a Fatal
// Exception" erroneous state. The hypervisor panics by design.
func (h *Hypervisor) InjectFatalException(site string) {
	if h.crashed {
		return
	}
	h.Crash(fmt.Sprintf("Assertion failed at %s — FATAL: unreachable state reached", site))
}
