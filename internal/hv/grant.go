package hv

import (
	"fmt"

	"repro/internal/mm"
)

// Grant-table sizes.
const (
	// GrantEntries is the number of grant references per domain.
	GrantEntries = 32
)

// GrantEntry is one v1-style grant: the owner domain permits ToDom to map
// the frame behind PFN.
type GrantEntry struct {
	InUse    bool
	ToDom    mm.DomID
	PFN      mm.PFN
	ReadOnly bool
	MapCount int
}

// grantTable is a domain's grant state. Version 2 adds hypervisor-owned
// status frames the guest holds a reference to; the v2 -> v1 downgrade is
// where the XSA-387-class bug lives: on leaky profiles the status-frame
// references are not released, leaving the guest with access to a page
// that has been returned to the hypervisor — the "Keep Page Access"
// abusive functionality of Table I.
type grantTable struct {
	version      int
	entries      [GrantEntries]GrantEntry
	statusFrames []mm.MFN
}

// Grant-table operations, multiplexed on argument type.

// GrantSetVersionArgs switches the domain's grant-table ABI version.
type GrantSetVersionArgs struct {
	Version int
}

// GrantAccessArgs fills a grant entry permitting ToDom to map PFN.
type GrantAccessArgs struct {
	Ref      int
	ToDom    mm.DomID
	PFN      mm.PFN
	ReadOnly bool
}

// GrantMapArgs maps a grant offered by FromDom at reference Ref into the
// calling domain.
type GrantMapArgs struct {
	FromDom mm.DomID
	Ref     int

	// MFN receives the mapped machine frame.
	MFN mm.MFN
}

// GrantUnmapArgs releases a mapping taken with GrantMapArgs.
type GrantUnmapArgs struct {
	FromDom mm.DomID
	Ref     int
}

func (d *Domain) grants() *grantTable {
	if d.grantTable == nil {
		d.grantTable = &grantTable{version: 1}
	}
	return d.grantTable
}

// GrantTableVersion returns the domain's current grant ABI version.
func (d *Domain) GrantTableVersion() int { return d.grants().version }

// GrantStatusFrames returns the hypervisor-owned status frames currently
// referenced by the domain — nonempty after a leaky downgrade even though
// the table is back at v1, which is the auditable erroneous state.
func (d *Domain) GrantStatusFrames() []mm.MFN {
	out := make([]mm.MFN, len(d.grants().statusFrames))
	copy(out, d.grants().statusFrames)
	return out
}

func (h *Hypervisor) grantTableOp(d *Domain, arg any) error {
	switch a := arg.(type) {
	case *GrantSetVersionArgs:
		h.cfg.tel.GrantOp(uint16(d.id), "set_version", a.Version)
		return h.grantSetVersion(d, a)
	case *GrantAccessArgs:
		h.cfg.tel.GrantOp(uint16(d.id), "access", a.Ref)
		return h.grantAccess(d, a)
	case *GrantMapArgs:
		h.cfg.tel.GrantOp(uint16(d.id), "map", a.Ref)
		return h.grantMap(d, a)
	case *GrantUnmapArgs:
		h.cfg.tel.GrantOp(uint16(d.id), "unmap", a.Ref)
		return h.grantUnmap(d, a)
	default:
		return fmt.Errorf("%w: grant_table_op got %T", ErrInval, arg)
	}
}

func (h *Hypervisor) grantSetVersion(d *Domain, args *GrantSetVersionArgs) error {
	gt := d.grants()
	switch args.Version {
	case 1:
		if gt.version == 2 {
			if h.version.GrantV2StatusLeak {
				// The bug: the table downgrades but the status-frame
				// references are never released. The guest keeps access
				// to hypervisor pages it should have lost.
				h.Logf("grant table of dom%d switched v2->v1 (status pages NOT reclaimed)", d.id)
				gt.version = 1
				return nil
			}
			for _, mfn := range gt.statusFrames {
				if err := h.mem.PutRef(mfn); err != nil {
					return err
				}
				if err := h.mem.PutType(mfn); err != nil {
					return err
				}
				if err := h.mem.Free(mfn); err != nil {
					return err
				}
			}
			gt.statusFrames = nil
		}
		gt.version = 1
		return nil
	case 2:
		if gt.version == 2 {
			return nil
		}
		status, err := h.mem.Alloc(mm.DomXen)
		if err != nil {
			return fmt.Errorf("%w: allocating grant status frame: %v", ErrNoMem, err)
		}
		if err := h.mem.GetType(status, mm.TypeGrant); err != nil {
			return err
		}
		// The guest's mapping of the status page is modeled as a
		// reference held on its behalf.
		if err := h.mem.GetRef(status, mm.DomXen); err != nil {
			return err
		}
		gt.statusFrames = append(gt.statusFrames, status)
		gt.version = 2
		return nil
	default:
		return fmt.Errorf("%w: grant table version %d", ErrInval, args.Version)
	}
}

func (h *Hypervisor) grantAccess(d *Domain, args *GrantAccessArgs) error {
	gt := d.grants()
	if args.Ref < 0 || args.Ref >= GrantEntries {
		return fmt.Errorf("%w: grant ref %d", ErrInval, args.Ref)
	}
	if !d.p2m.Contains(args.PFN) {
		return fmt.Errorf("%w: pfn %#x not populated", ErrInval, uint64(args.PFN))
	}
	e := &gt.entries[args.Ref]
	if e.InUse && e.MapCount > 0 {
		return fmt.Errorf("%w: grant ref %d has %d live mappings", ErrInval, args.Ref, e.MapCount)
	}
	*e = GrantEntry{InUse: true, ToDom: args.ToDom, PFN: args.PFN, ReadOnly: args.ReadOnly}
	return nil
}

func (h *Hypervisor) grantMap(d *Domain, args *GrantMapArgs) error {
	from, err := h.Domain(args.FromDom)
	if err != nil {
		return err
	}
	gt := from.grants()
	if args.Ref < 0 || args.Ref >= GrantEntries {
		return fmt.Errorf("%w: grant ref %d", ErrInval, args.Ref)
	}
	e := &gt.entries[args.Ref]
	if !e.InUse {
		return fmt.Errorf("%w: grant ref %d not granted", ErrInval, args.Ref)
	}
	if e.ToDom != d.id {
		return fmt.Errorf("%w: grant ref %d is for dom%d, not dom%d", ErrPerm, args.Ref, e.ToDom, d.id)
	}
	mfn, err := from.p2m.Lookup(e.PFN)
	if err != nil {
		return fmt.Errorf("%w: granted pfn vanished: %v", ErrInval, err)
	}
	e.MapCount++
	args.MFN = mfn
	return nil
}

func (h *Hypervisor) grantUnmap(d *Domain, args *GrantUnmapArgs) error {
	from, err := h.Domain(args.FromDom)
	if err != nil {
		return err
	}
	gt := from.grants()
	if args.Ref < 0 || args.Ref >= GrantEntries {
		return fmt.Errorf("%w: grant ref %d", ErrInval, args.Ref)
	}
	e := &gt.entries[args.Ref]
	if !e.InUse || e.MapCount == 0 {
		return fmt.Errorf("%w: grant ref %d has no mapping to release", ErrInval, args.Ref)
	}
	e.MapCount--
	return nil
}
