package hv

import (
	"testing"

	"repro/internal/mm"
	"repro/internal/pagetable"
)

// guestRead performs a guest-privilege read through the domain's vCPU.
func guestRead(t *testing.T, d *Domain, va uint64) error {
	t.Helper()
	return d.VCPU().ReadVirt(va, make([]byte, 8), true)
}

func TestTLBCachesGuestTranslations(t *testing.T) {
	h := bootVersion(t, Version48())
	d := mustDomain(t, h, "guest01", 64, false)
	va := d.PhysmapVA(5)
	if err := guestRead(t, d, va); err != nil {
		t.Fatal(err)
	}
	if err := guestRead(t, d, va); err != nil {
		t.Fatal(err)
	}
	stats := d.TLBStats()
	if stats.Hits == 0 {
		t.Errorf("no TLB hits after repeated access: %+v", stats)
	}
}

func TestValidatedUpdatesFlushTheTLB(t *testing.T) {
	h := bootVersion(t, Version48())
	d := mustDomain(t, h, "guest01", 64, false)
	va := d.PhysmapVA(5)
	if err := guestRead(t, d, va); err != nil {
		t.Fatal(err)
	}
	before := d.TLBStats().Flushes
	// Any mmu_update flushes, even a clearing write of an empty slot.
	ptr := leafPTEAddr(t, h, d, d.PhysmapVA(0)) + mm.PhysAddr((uint64(d.Frames())+50)*pagetable.EntrySize)
	if err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: ptr, Val: 0}}}); err != nil {
		t.Fatal(err)
	}
	if d.TLBStats().Flushes <= before {
		t.Error("mmu_update did not flush the TLB")
	}
}

// TestStaleTLBErroneousState demonstrates the stale-translation hazard
// as an injectable erroneous state: a raw page-table write (as the
// injector performs) does NOT flush, so the guest keeps resolving — and
// writing through — a translation the tables no longer grant. The
// explicit flush then makes the new tables take effect.
func TestStaleTLBErroneousState(t *testing.T) {
	h := bootVersion(t, Version48())
	d := mustDomain(t, h, "guest01", 64, false)
	pfnA := mm.PFN(10)
	va := d.PhysmapVA(pfnA)
	mfnA, err := d.P2M().Lookup(pfnA)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the TLB.
	if err := guestRead(t, d, va); err != nil {
		t.Fatal(err)
	}
	// Raw write: retarget the leaf entry to another frame, no flush.
	mfnB, err := d.P2M().Lookup(11)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := pagetable.LeafEntryAddr(h.Memory(), d.CR3(), va)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Memory().WriteU64(addr, uint64(pagetable.NewEntry(mfnB,
		pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser))); err != nil {
		t.Fatal(err)
	}
	// The guest writes through the VA: with the stale entry it still
	// lands in frame A.
	if err := d.VCPU().WriteVirt(va, []byte("stale!"), true); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if err := h.Memory().ReadPhys(mfnA.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "stale!" {
		t.Errorf("write went to %q in frame A; stale TLB not honoured", buf)
	}
	// After the flush, the same VA resolves to frame B.
	d.FlushTLB()
	if err := d.VCPU().WriteVirt(va, []byte("fresh!"), true); err != nil {
		t.Fatal(err)
	}
	if err := h.Memory().ReadPhys(mfnB.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "fresh!" {
		t.Errorf("post-flush write landed elsewhere: %q", buf)
	}
}

func TestTLBEnforcesCachedRights(t *testing.T) {
	h := bootVersion(t, Version413())
	d := mustDomain(t, h, "guest01", 64, false)
	// A page-table frame's physmap VA: read fills the TLB with an entry
	// whose effective write permission reflects the hardened policy.
	var pfn mm.PFN
	for mfn := range d.PageTableFrames() {
		_, p, err := h.Memory().M2P(mfn)
		if err != nil {
			t.Fatal(err)
		}
		pfn = p
		break
	}
	va := d.PhysmapVA(pfn)
	if err := guestRead(t, d, va); err != nil {
		t.Fatal(err)
	}
	// The cached entry must refuse writes on a TLB hit just as the walk
	// would.
	if err := d.VCPU().WriteVirt(va, make([]byte, 8), true); err == nil {
		t.Error("TLB hit granted a write the policy forbids")
	}
}

func TestWithTLBCapacityZeroDisables(t *testing.T) {
	mem, err := mm.NewMemory(testMachineFrames)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(mem, Version48(), WithTLBCapacity(0))
	if err != nil {
		t.Fatal(err)
	}
	d, err := h.CreateDomain("guest01", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	va := d.PhysmapVA(5)
	for i := 0; i < 3; i++ {
		if err := guestRead(t, d, va); err != nil {
			t.Fatal(err)
		}
	}
	if stats := d.TLBStats(); stats.Hits != 0 {
		t.Errorf("disabled TLB produced hits: %+v", stats)
	}
}

func TestInvlPG(t *testing.T) {
	h := bootVersion(t, Version48())
	d := mustDomain(t, h, "guest01", 64, false)
	va := d.PhysmapVA(5)
	if err := guestRead(t, d, va); err != nil {
		t.Fatal(err)
	}
	d.InvlPG(va)
	h1 := d.TLBStats().Hits
	if err := guestRead(t, d, va); err != nil {
		t.Fatal(err)
	}
	if d.TLBStats().Hits != h1 {
		t.Error("access after invlpg hit the cache")
	}
}
