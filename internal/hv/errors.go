package hv

import "errors"

// Hypercall errors, mirroring the errno values the real interfaces
// return. The paper's §VII observations hinge on these: "the exploit
// execution fails with a return code of -EFAULT (bad address return
// code)".
var (
	// ErrFault is -EFAULT: a guest handle failed the access check or an
	// address could not be translated.
	ErrFault = errors.New("hv: -EFAULT (bad address)")
	// ErrInval is -EINVAL: malformed hypercall arguments or an entry
	// that fails validation.
	ErrInval = errors.New("hv: -EINVAL (invalid argument)")
	// ErrPerm is -EPERM: the calling domain lacks the privilege.
	ErrPerm = errors.New("hv: -EPERM (operation not permitted)")
	// ErrNoSys is -ENOSYS: the hypercall number is not in this build's
	// dispatch table.
	ErrNoSys = errors.New("hv: -ENOSYS (hypercall not implemented)")
	// ErrNoMem is -ENOMEM: the hypervisor could not allocate memory.
	ErrNoMem = errors.New("hv: -ENOMEM (out of memory)")
	// ErrCrashed is returned for any operation after a hypervisor panic.
	ErrCrashed = errors.New("hv: hypervisor has crashed")
	// ErrDomGone is returned for operations on destroyed domains.
	ErrDomGone = errors.New("hv: no such domain")
)
