package hv

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/mm"
)

// fakeOS is a minimal GuestOS for exercising ring-0 context edges.
type fakeOS struct {
	host     string
	files    map[string]string
	writeErr error
	shellErr error
	dialed   []string
}

func (f *fakeOS) Hostname() string { return f.host }
func (f *fakeOS) WriteFileAsRoot(path, content string) error {
	if f.writeErr != nil {
		return f.writeErr
	}
	if f.files == nil {
		f.files = make(map[string]string)
	}
	f.files[path] = content
	return nil
}
func (f *fakeOS) ReverseShellAsRoot(addr string) error {
	f.dialed = append(f.dialed, addr)
	return f.shellErr
}

var _ GuestOS = (*fakeOS)(nil)

func TestRing0DropFileAllDomains(t *testing.T) {
	h := bootVersion(t, Version46())
	d0 := mustDomain(t, h, "xen3", 64, true)
	g1 := mustDomain(t, h, "guest01", 64, false)
	g2 := mustDomain(t, h, "guest02", 64, false) // no OS attached: skipped
	os0 := &fakeOS{host: "xen3"}
	os1 := &fakeOS{host: "guest01"}
	d0.AttachOS(os0)
	g1.AttachOS(os1)
	_ = g2

	ctx := h.Ring0Context()
	if err := ctx.DropFileAllDomains("/tmp/x", "hello @HOST"); err != nil {
		t.Fatal(err)
	}
	if os0.files["/tmp/x"] != "hello @xen3" || os1.files["/tmp/x"] != "hello @guest01" {
		t.Errorf("files = %v / %v", os0.files, os1.files)
	}

	// A failing guest OS aborts the sweep with context.
	os1.writeErr = errors.New("disk full")
	err := ctx.DropFileAllDomains("/tmp/y", "z")
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("err = %v", err)
	}
}

func TestRing0ReverseShell(t *testing.T) {
	h := bootVersion(t, Version46())
	// Without a privileged domain carrying an OS, the op fails.
	if err := h.Ring0Context().ReverseShell("a:1"); err == nil {
		t.Error("reverse shell with no dom0 OS succeeded")
	}
	d0 := mustDomain(t, h, "xen3", 64, true)
	os0 := &fakeOS{host: "xen3"}
	d0.AttachOS(os0)
	if err := h.Ring0Context().ReverseShell("10.0.0.1:9"); err != nil {
		t.Fatal(err)
	}
	if len(os0.dialed) != 1 || os0.dialed[0] != "10.0.0.1:9" {
		t.Errorf("dialed = %v", os0.dialed)
	}
	os0.shellErr = errors.New("refused")
	if err := h.Ring0Context().ReverseShell("10.0.0.1:9"); err == nil {
		t.Error("shell error swallowed")
	}
}

func TestRing0MiscOps(t *testing.T) {
	h := bootVersion(t, Version46())
	ctx := h.Ring0Context()
	ctx.Logf("payload says %d", 42)
	if !h.ConsoleContains("payload says 42") {
		t.Error("ring0 log missing")
	}
	ctx.Escalate() // no-op at ring0, but logged
	if !h.ConsoleContains("already at hypervisor privilege") {
		t.Error("escalate log missing")
	}
	before := h.ClockTicks()
	ctx.ClockGettime()
	if h.ClockTicks() != before+1 {
		t.Error("clock not ticked")
	}
	if h.Hung() {
		t.Fatal("hung before halt")
	}
	ctx.Halt()
	if !h.Hung() {
		t.Error("halt did not hang the hypervisor")
	}
}

func TestVersionString(t *testing.T) {
	if got := Version46().String(); got != "Xen 4.6" {
		t.Errorf("String = %q", got)
	}
}

func TestWithTraceLogsHypercalls(t *testing.T) {
	mem, err := newTestMem()
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(mem, Version46(), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	d, err := h.CreateDomain("guest01", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Hypercall(HypercallConsoleIO, "traced"); err != nil {
		t.Fatal(err)
	}
	if !h.ConsoleContains("hypercall 18 from dom1") {
		t.Error("trace line missing")
	}
}

func newTestMem() (*mm.Memory, error) { return mm.NewMemory(testMachineFrames) }
