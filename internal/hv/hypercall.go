package hv

import (
	"fmt"

	"repro/internal/faults"
)

// Hypercall numbers, following the real PV ABI where one exists.
const (
	// HypercallMMUUpdate validates and applies page-table entry updates.
	HypercallMMUUpdate = 1
	// HypercallConsoleIO writes to the hypervisor console.
	HypercallConsoleIO = 18
	// HypercallGrantTableOp manipulates grant tables.
	HypercallGrantTableOp = 20
	// HypercallMMUExtOp pins/unpins tables and switches baseptr.
	HypercallMMUExtOp = 26
	// HypercallMemoryOp multiplexes exchange / populate / decrease.
	HypercallMemoryOp = 12
	// HypercallEventChannelOp manipulates event channels.
	HypercallEventChannelOp = 32
	// HypercallArbitraryAccess is the injector's hypercall (Section V-B
	// of the paper). It is absent unless an injector build registers it.
	HypercallArbitraryAccess = 41
	// HypercallStateInject is the injector's direct state-mutation
	// hypercall; like arbitrary_access it exists only in injector builds.
	HypercallStateInject = 42
)

// hypercallName maps a hypercall number to its ABI name, used to key
// per-hypercall telemetry counters. Unknown numbers fall back to the
// decimal form so experimental registrations still show up in metrics.
func hypercallName(nr int) string {
	switch nr {
	case HypercallMMUUpdate:
		return "mmu_update"
	case HypercallMemoryOp:
		return "memory_op"
	case HypercallConsoleIO:
		return "console_io"
	case HypercallGrantTableOp:
		return "grant_table_op"
	case HypercallMMUExtOp:
		return "mmuext_op"
	case HypercallEventChannelOp:
		return "event_channel_op"
	case HypercallDomctl:
		return "domctl"
	case HypercallArbitraryAccess:
		return "arbitrary_access"
	case HypercallStateInject:
		return "state_inject"
	default:
		return fmt.Sprintf("nr_%d", nr)
	}
}

// Hypercall is one dispatch-table entry. arg carries the per-call
// argument struct; handlers type-assert it.
type Hypercall func(d *Domain, arg any) error

// RegisterHypercall installs a handler at the given number, the hook the
// injector uses to add HYPERVISOR_arbitrary_access to the build ("small
// changes in the hypercalls table had to be done to add the new hypercall
// into the code base", Section V-B).
func (h *Hypervisor) RegisterHypercall(nr int, fn Hypercall) error {
	if fn == nil {
		return fmt.Errorf("%w: nil hypercall handler", ErrInval)
	}
	if _, ok := h.hypercalls[nr]; ok {
		return fmt.Errorf("%w: hypercall %d already registered", ErrInval, nr)
	}
	h.hypercalls[nr] = fn
	return nil
}

// registerCoreHypercalls fills the dispatch table with this build's
// standard handlers.
func (h *Hypervisor) registerCoreHypercalls() {
	h.hypercalls[HypercallMMUUpdate] = func(d *Domain, arg any) error {
		a, ok := arg.(*MMUUpdateArgs)
		if !ok {
			return fmt.Errorf("%w: mmu_update wants *MMUUpdateArgs, got %T", ErrInval, arg)
		}
		return h.mmuUpdate(d, a)
	}
	h.hypercalls[HypercallMMUExtOp] = func(d *Domain, arg any) error {
		a, ok := arg.(*MMUExtArgs)
		if !ok {
			return fmt.Errorf("%w: mmuext_op wants *MMUExtArgs, got %T", ErrInval, arg)
		}
		return h.mmuExtOp(d, a)
	}
	h.hypercalls[HypercallMemoryOp] = func(d *Domain, arg any) error {
		return h.memoryOp(d, arg)
	}
	h.hypercalls[HypercallConsoleIO] = func(d *Domain, arg any) error {
		s, ok := arg.(string)
		if !ok {
			return fmt.Errorf("%w: console_io wants string, got %T", ErrInval, arg)
		}
		h.Logf("[%s] %s", d.Name(), s)
		return nil
	}
	h.hypercalls[HypercallGrantTableOp] = func(d *Domain, arg any) error {
		return h.grantTableOp(d, arg)
	}
	h.hypercalls[HypercallEventChannelOp] = func(d *Domain, arg any) error {
		return h.eventChannelOp(d, arg)
	}
	h.hypercalls[HypercallDomctl] = func(d *Domain, arg any) error {
		a, ok := arg.(*DomctlArgs)
		if !ok {
			return fmt.Errorf("%w: domctl wants *DomctlArgs, got %T", ErrInval, arg)
		}
		return h.domctl(d, a)
	}
}

// Hypercall is the guest-side entry point: dispatch through the build's
// table, exactly like the real syscall-style vector.
func (d *Domain) Hypercall(nr int, arg any) error {
	h := d.hv
	if h.crashed {
		return ErrCrashed
	}
	if d.destroyed {
		return ErrDomGone
	}
	if d.paused && nr != HypercallDomctl {
		return fmt.Errorf("%w: dom%d is paused", ErrInval, d.id)
	}
	fn, ok := h.hypercalls[nr]
	if !ok {
		return fmt.Errorf("%w: hypercall %d", ErrNoSys, nr)
	}
	// Each dispatched hypercall is one causal span. It opens before the
	// fault sites and closes on defer, so even an injected handler panic
	// unwinds through the End and never leaks an open span.
	if t := h.cfg.spans; t != nil {
		sp := t.Hypercall(hypercallName(nr))
		defer t.End(sp)
	}
	// The substrate fault plane fires at dispatch, before the handler:
	// an injected handler panic models a hypercall-handler bug taking
	// the campaign worker down (the Milenkoski-style untrusted-handler
	// threat turned against our own engine), a forced hang leaves the
	// build in the wedged state the monitor classifies, and a wedge
	// parks the goroutine until the injector is released.
	if flt := h.cfg.flt; flt != nil {
		if flt.Hit(faults.SiteHypercallPanic) {
			panic(fmt.Sprintf("faults: injected panic in hypercall %s handler (dom%d)", hypercallName(nr), d.id))
		}
		if flt.Hit(faults.SiteHang) && !h.hung {
			h.hung = true
			h.Logf("faults: injected hang state at hypercall %s dispatch", hypercallName(nr))
		}
		if flt.Hit(faults.SiteWedge) {
			flt.Block()
		}
	}
	if h.cfg.trace {
		h.Logf("hypercall %d from dom%d (%T)", nr, d.id, arg)
	}
	if tel := h.cfg.tel; tel != nil {
		name := hypercallName(nr)
		tel.HypercallEnter(uint16(d.id), int32(nr), name)
		err := fn(d, arg)
		tel.HypercallExit(uint16(d.id), int32(nr), name, err)
		return err
	}
	return fn(d, arg)
}
