package hv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mm"
	"repro/internal/pagetable"
)

// Property: after any sequence of (legitimate or malformed) hypercalls
// from a guest, on versions with the fixes no page-table frame of any
// domain is guest-writable through that domain's address space — the
// invariant whose violation is the Guest-Writable Page Table Entry
// erroneous state.
func TestQuickNoWritablePTMappingSurvivesHypercalls(t *testing.T) {
	for _, version := range []Version{Version48(), Version413()} {
		version := version
		t.Run(version.Name, func(t *testing.T) {
			f := func(seed int64, opsRaw uint8) bool {
				mem, err := mm.NewMemory(1024)
				if err != nil {
					return false
				}
				h, err := New(mem, version)
				if err != nil {
					return false
				}
				d, err := h.CreateDomain("guest01", 64, false)
				if err != nil {
					return false
				}
				rng := rand.New(rand.NewSource(seed))
				ops := int(opsRaw%40) + 10
				for i := 0; i < ops; i++ {
					runRandomHypercall(h, d, rng)
				}
				// Invariant check: every PT frame is non-writable via the
				// guest's own mappings.
				for mfn := range d.PageTableFrames() {
					pi, err := mem.Info(mfn)
					if err != nil {
						return false
					}
					if !pi.Type.IsPageTable() && pi.TypeCount > 0 {
						continue // frame was legitimately demoted
					}
					_, pfn, err := mem.M2P(mfn)
					if err != nil {
						continue
					}
					if _, err := h.Walker().Translate(d.CR3(), d.PhysmapVA(pfn), pagetable.AccessWrite, true); err == nil {
						t.Logf("seed %d: pt frame %#x guest-writable after %d ops", seed, uint64(mfn), ops)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

// runRandomHypercall fires one randomized hypercall, mixing plausible
// and garbage arguments; errors are expected and ignored.
func runRandomHypercall(h *Hypervisor, d *Domain, rng *rand.Rand) {
	switch rng.Intn(6) {
	case 0:
		ptr := mm.PhysAddr(rng.Uint64()%h.mem.Bytes()) &^ 7
		val := pagetable.Entry(rng.Uint64())
		_ = d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: ptr, Val: val}}})
	case 1:
		// A *plausible* mmu_update: map one of the guest's own data
		// frames at a spare physmap slot.
		pfn := mm.PFN(rng.Intn(d.Frames()))
		target, err := d.p2m.Lookup(pfn)
		if err != nil {
			return
		}
		base, err := pagetable.LeafEntryAddr(h.mem, d.CR3(), d.PhysmapVA(0))
		if err != nil {
			return
		}
		slot := uint64(d.Frames() + rng.Intn(200))
		flags := uint64(pagetable.FlagPresent | pagetable.FlagUser)
		if rng.Intn(2) == 0 {
			flags |= pagetable.FlagRW
		}
		_ = d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{
			Ptr: base + mm.PhysAddr(slot*pagetable.EntrySize),
			Val: pagetable.NewEntry(target, flags),
		}}})
	case 2:
		_ = d.Hypercall(HypercallMemoryOp, &ExchangeArgs{
			In:       []mm.PFN{mm.PFN(rng.Intn(2 * d.Frames()))},
			OutStart: rng.Uint64(),
		})
	case 3:
		_ = d.Hypercall(HypercallMemoryOp, &PopulatePhysmapArgs{PFN: mm.PFN(0x1000 + rng.Intn(4096))})
	case 4:
		_ = d.Hypercall(HypercallMMUExtOp, &MMUExtArgs{
			Op:  MMUExtOp(rng.Intn(8)),
			MFN: mm.MFN(rng.Intn(h.mem.NumFrames())),
		})
	default:
		_ = d.Hypercall(HypercallGrantTableOp, &GrantSetVersionArgs{Version: 1 + rng.Intn(3)})
	}
}

// Property: the same storms never corrupt reference counting into
// underflow warnings on the console, and never kill a fixed hypervisor.
func TestQuickHypercallStormsAreContained(t *testing.T) {
	f := func(seed int64) bool {
		mem, err := mm.NewMemory(1024)
		if err != nil {
			return false
		}
		h, err := New(mem, Version413())
		if err != nil {
			return false
		}
		d, err := h.CreateDomain("guest01", 64, false)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 60; i++ {
			runRandomHypercall(h, d, rng)
		}
		if h.Crashed() {
			t.Logf("seed %d: crash: %s", seed, h.CrashReason())
			return false
		}
		if h.ConsoleContains("underflow") {
			t.Logf("seed %d: refcount underflow logged", seed)
			return false
		}
		// The accounting auditor must find the system coherent after any
		// storm of validated (accepted or rejected) operations.
		if findings := h.AuditMemory(); len(findings) != 0 {
			t.Logf("seed %d: audit findings: %v", seed, findings)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: on the vulnerable 4.6 profile, the fast-path mask really is
// the only validation difference for flag-only updates: any flag-only
// change within {A,D,RW,PWT,PCD,G} is accepted, and the same update with
// the frame changed goes through full validation.
func TestQuickFastPathMask(t *testing.T) {
	f := func(flagPick uint8) bool {
		mem, err := mm.NewMemory(1024)
		if err != nil {
			return false
		}
		h, err := New(mem, Version46())
		if err != nil {
			return false
		}
		d, err := h.CreateDomain("guest01", 64, false)
		if err != nil {
			return false
		}
		// Install a read-only self-map, then apply a random flag-only
		// change drawn from the vulnerable safe mask.
		ptr, err := pagetable.EntryAddr(d.CR3(), 42)
		if err != nil {
			return false
		}
		ro := pagetable.NewEntry(d.CR3(), pagetable.FlagPresent|pagetable.FlagUser)
		if err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: ptr, Val: ro}}}); err != nil {
			return false
		}
		mask := []uint64{
			pagetable.FlagAccessed, pagetable.FlagDirty, pagetable.FlagRW,
			pagetable.FlagPWT, pagetable.FlagPCD, pagetable.FlagGlobal,
		}
		change := mask[int(flagPick)%len(mask)]
		err = d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{
			Ptr: ptr, Val: ro.WithFlags(change),
		}}})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: TLB coherence — after any interleaving of guest reads and
// validated remaps, a guest read through the (TLB-backed) vCPU returns
// exactly the bytes at the frame a fresh page walk resolves to.
func TestQuickTLBCoherence(t *testing.T) {
	f := func(seed int64) bool {
		mem, err := mm.NewMemory(1024)
		if err != nil {
			return false
		}
		h, err := New(mem, Version48())
		if err != nil {
			return false
		}
		d, err := h.CreateDomain("guest01", 64, false)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		// A spare physmap slot remapped between two data frames.
		a, err := d.p2m.Lookup(6)
		if err != nil {
			return false
		}
		b, err := d.p2m.Lookup(7)
		if err != nil {
			return false
		}
		_ = mem.WritePhys(a.Addr(), []byte("frame-A"))
		_ = mem.WritePhys(b.Addr(), []byte("frame-B"))
		base, err := pagetable.LeafEntryAddr(mem, d.CR3(), d.PhysmapVA(0))
		if err != nil {
			return false
		}
		slot := uint64(d.Frames()) + 5
		ptr := base + mm.PhysAddr(slot*pagetable.EntrySize)
		va := d.PhysmapVA(mm.PFN(slot))
		install := func(target mm.MFN) error {
			return d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{
				Ptr: ptr,
				Val: pagetable.NewEntry(target, pagetable.FlagPresent|pagetable.FlagUser),
			}}})
		}
		if err := install(a); err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			if rng.Intn(3) == 0 {
				target := a
				if rng.Intn(2) == 0 {
					target = b
				}
				if err := install(target); err != nil {
					return false
				}
			}
			got := make([]byte, 7)
			if err := d.VCPU().ReadVirt(va, got, true); err != nil {
				return false
			}
			walk, err := h.Walker().Translate(d.CR3(), va, pagetable.AccessRead, true)
			if err != nil {
				return false
			}
			want := make([]byte, 7)
			if err := mem.ReadPhys(walk.Phys, want); err != nil {
				return false
			}
			if string(got) != string(want) {
				t.Logf("seed %d iter %d: TLB read %q, tables say %q", seed, i, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
