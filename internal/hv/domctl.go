package hv

import (
	"fmt"

	"repro/internal/mm"
)

// HypercallDomctl is the management-plane hypercall, callable only from
// the privileged domain. It is the substrate for the intrusion models
// the paper plans around "activities originating from the management
// interface" (Section IX-C): a compromised toolstack wields exactly
// these operations.
const HypercallDomctl = 36

// DomctlOp selects a management operation.
type DomctlOp uint8

// Management operations.
const (
	// DomctlPause stops a domain from making hypercalls.
	DomctlPause DomctlOp = iota + 1
	// DomctlUnpause resumes it.
	DomctlUnpause
	// DomctlDestroy tears the domain down; it lingers as a zombie (its
	// frames stay allocated) until reaped, as in the real toolstack.
	DomctlDestroy
	// DomctlReadMemory reads a page of the target's pseudo-physical
	// memory, the debugger/introspection path.
	DomctlReadMemory
	// DomctlGetInfo reports the domain's state.
	DomctlGetInfo
)

// String names the operation.
func (o DomctlOp) String() string {
	switch o {
	case DomctlPause:
		return "pause"
	case DomctlUnpause:
		return "unpause"
	case DomctlDestroy:
		return "destroy"
	case DomctlReadMemory:
		return "read-memory"
	case DomctlGetInfo:
		return "get-info"
	default:
		return fmt.Sprintf("DomctlOp(%d)", uint8(o))
	}
}

// DomainInfo is the DomctlGetInfo result.
type DomainInfo struct {
	Name       string
	Frames     int
	Privileged bool
	Paused     bool
	Destroyed  bool
}

// DomctlArgs is the management hypercall argument.
type DomctlArgs struct {
	Op     DomctlOp
	Target mm.DomID

	// PFN and Buf parameterize DomctlReadMemory.
	PFN mm.PFN
	Buf []byte

	// Info receives the DomctlGetInfo result.
	Info DomainInfo
}

// Paused reports whether the domain's execution is suspended.
func (d *Domain) Paused() bool { return d.paused }

// Destroyed reports whether the domain has been torn down.
func (d *Domain) Destroyed() bool { return d.destroyed }

func (h *Hypervisor) domctl(caller *Domain, args *DomctlArgs) error {
	if !caller.privileged {
		return fmt.Errorf("%w: domctl from unprivileged dom%d", ErrPerm, caller.id)
	}
	target, err := h.Domain(args.Target)
	if err != nil {
		return err
	}
	h.cfg.tel.DomctlOp(uint16(caller.id), args.Op.String(), uint16(args.Target))
	switch args.Op {
	case DomctlPause:
		target.paused = true
		h.Logf("dom%d paused by the toolstack", target.id)
		return nil
	case DomctlUnpause:
		target.paused = false
		h.Logf("dom%d unpaused", target.id)
		return nil
	case DomctlDestroy:
		if target.privileged {
			return fmt.Errorf("%w: refusing to destroy dom0", ErrInval)
		}
		target.destroyed = true
		target.paused = true
		delete(h.domains, target.id)
		h.Logf("dom%d (%s) destroyed; frames linger as zombie until reaped", target.id, target.name)
		return nil
	case DomctlReadMemory:
		if len(args.Buf) == 0 || len(args.Buf) > mm.PageSize {
			return fmt.Errorf("%w: read size %d", ErrInval, len(args.Buf))
		}
		mfn, err := target.p2m.Lookup(args.PFN)
		if err != nil {
			return fmt.Errorf("%w: target pfn %#x: %v", ErrInval, uint64(args.PFN), err)
		}
		return h.mem.ReadPhys(mfn.Addr(), args.Buf)
	case DomctlGetInfo:
		args.Info = DomainInfo{
			Name:       target.name,
			Frames:     target.frames,
			Privileged: target.privileged,
			Paused:     target.paused,
			Destroyed:  target.destroyed,
		}
		return nil
	default:
		return fmt.Errorf("%w: domctl op %d", ErrInval, args.Op)
	}
}
