package hv

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/layout"
	"repro/internal/mm"
	"repro/internal/pagetable"
)

const testMachineFrames = 2048

func bootVersion(t *testing.T, v Version) *Hypervisor {
	t.Helper()
	mem, err := mm.NewMemory(testMachineFrames)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(mem, v)
	if err != nil {
		t.Fatalf("New(%s): %v", v, err)
	}
	return h
}

func mustDomain(t *testing.T, h *Hypervisor, name string, frames int, priv bool) *Domain {
	t.Helper()
	d, err := h.CreateDomain(name, frames, priv)
	if err != nil {
		t.Fatalf("CreateDomain(%s): %v", name, err)
	}
	return d
}

func TestBootAllVersions(t *testing.T) {
	for _, v := range Versions() {
		t.Run(v.Name, func(t *testing.T) {
			h := bootVersion(t, v)
			if h.Crashed() {
				t.Fatal("crashed at boot")
			}
			_, err := h.Layout().ByName("linear-pt-alias")
			if v.LinearPTAlias && err != nil {
				t.Errorf("alias segment missing on %s", v.Name)
			}
			if !v.LinearPTAlias && err == nil {
				t.Errorf("alias segment present on hardened %s", v.Name)
			}
			if !h.ConsoleContains("booting") {
				t.Error("boot banner missing from console")
			}
		})
	}
}

func TestVersionByName(t *testing.T) {
	for _, name := range []string{"4.6", "4.8", "4.13"} {
		v, err := VersionByName(name)
		if err != nil || v.Name != name {
			t.Errorf("VersionByName(%s) = %v, %v", name, v, err)
		}
	}
	if _, err := VersionByName("5.0"); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestSharedXenTables(t *testing.T) {
	h := bootVersion(t, Version46())
	// The idle L4's Xen slot points at the shared L3.
	e, err := pagetable.ReadEntry(h.Memory(), h.XenL4(), XenL4Slot)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Present() || e.MFN() != h.XenL3() {
		t.Errorf("idle L4 slot %d = %v, want shared L3 %#x", XenL4Slot, e, uint64(h.XenL3()))
	}
	// The alias L3 entry exists and leads to user-accessible RWX
	// superpages on 4.6.
	ae, err := pagetable.ReadEntry(h.Memory(), h.XenL3(), AliasL3Index)
	if err != nil {
		t.Fatal(err)
	}
	if !ae.Present() {
		t.Fatal("alias L3 entry missing on 4.6")
	}
	sp, err := pagetable.ReadEntry(h.Memory(), ae.MFN(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Superpage() || !sp.Writable() || !sp.User() {
		t.Errorf("alias superpage entry = %v, want PSE|RW|US", sp)
	}
	// MiscL3Index starts empty — it is the attack's link target.
	me, err := pagetable.ReadEntry(h.Memory(), h.XenL3(), MiscL3Index)
	if err != nil {
		t.Fatal(err)
	}
	if me.Present() {
		t.Errorf("misc L3 slot unexpectedly populated: %v", me)
	}

	h13 := bootVersion(t, Version413())
	ae13, err := pagetable.ReadEntry(h13.Memory(), h13.XenL3(), AliasL3Index)
	if err != nil {
		t.Fatal(err)
	}
	if ae13.Present() {
		t.Error("alias L3 entry present on 4.13")
	}
}

func TestCreateDomainLayout(t *testing.T) {
	h := bootVersion(t, Version46())
	d := mustDomain(t, h, "guest01", 64, false)

	if d.ID() != mm.DomFirstGuest {
		t.Errorf("first guest id = %d", d.ID())
	}
	if d.Frames() != 64 || d.P2M().Len() != 64 {
		t.Errorf("frames = %d, p2m = %d", d.Frames(), d.P2M().Len())
	}
	// Every PFN's physmap VA resolves to its machine frame.
	for pfn := mm.PFN(0); pfn < 64; pfn++ {
		mfn, err := d.P2M().Lookup(pfn)
		if err != nil {
			t.Fatal(err)
		}
		walk, err := h.Walker().Translate(d.CR3(), d.PhysmapVA(pfn), pagetable.AccessRead, true)
		if err != nil {
			t.Fatalf("pfn %d: %v", pfn, err)
		}
		if walk.MFN != mfn {
			t.Errorf("pfn %d resolves to %#x, want %#x", pfn, uint64(walk.MFN), uint64(mfn))
		}
	}
	// Page-table frames are typed and not guest-writable via physmap.
	if len(d.PageTableFrames()) == 0 {
		t.Fatal("no page-table frames recorded")
	}
	for mfn, level := range d.PageTableFrames() {
		pi, err := h.Memory().Info(mfn)
		if err != nil {
			t.Fatal(err)
		}
		if pi.Type.PageTableLevel() != level {
			t.Errorf("pt frame %#x type %v, want level %d", uint64(mfn), pi.Type, level)
		}
		_, pfn, err := h.Memory().M2P(mfn)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Walker().Translate(d.CR3(), d.PhysmapVA(pfn), pagetable.AccessWrite, true); err == nil {
			t.Errorf("physmap mapping of pt frame %#x is guest-writable", uint64(mfn))
		}
	}
	// Guest L4 carries the shared Xen slot.
	e, err := pagetable.ReadEntry(h.Memory(), d.CR3(), XenL4Slot)
	if err != nil {
		t.Fatal(err)
	}
	if e.MFN() != h.XenL3() {
		t.Errorf("guest Xen slot = %v", e)
	}
}

func TestCreateDomainBootPages(t *testing.T) {
	h := bootVersion(t, Version46())
	d0 := mustDomain(t, h, "xen3", 64, true)
	if d0.ID() != mm.Dom0 || !d0.Privileged() {
		t.Errorf("dom0 = id %d priv %v", d0.ID(), d0.Privileged())
	}
	siMFN, err := d0.P2M().Lookup(StartInfoPFN)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := h.Memory().ReadPhys(siMFN.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	s := string(buf)
	if !strings.HasPrefix(s, StartInfoMagic) {
		t.Errorf("start_info magic missing: %q", s[:32])
	}
	if !strings.Contains(s, "xen3") {
		t.Errorf("start_info lacks domain name: %q", s)
	}
	if buf[len(StartInfoMagic)+1] != 1 {
		t.Error("dom0 start_info not flagged privileged")
	}

	vdMFN, err := d0.P2M().Lookup(VDSOPFN)
	if err != nil {
		t.Fatal(err)
	}
	vbuf := make([]byte, 64)
	if err := h.Memory().ReadPhys(vdMFN.Addr(), vbuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(vbuf), VDSOSignature) {
		t.Error("vDSO signature missing")
	}
	prog, err := cpu.Disassemble(vbuf[VDSOEntryOffset:])
	if err != nil {
		t.Fatalf("vDSO payload: %v", err)
	}
	if prog[0].Op != cpu.OpClockGettime {
		t.Errorf("vDSO program = %v", prog)
	}

	if _, err := h.CreateDomain("xen4", 64, true); !errors.Is(err, ErrInval) {
		t.Errorf("second dom0: err = %v, want ErrInval", err)
	}
	if _, err := h.CreateDomain("tiny", 4, false); !errors.Is(err, ErrInval) {
		t.Errorf("undersized domain: err = %v, want ErrInval", err)
	}
}

// leafPTEAddr returns the machine address of the L1 entry serving the
// guest VA, as an exploit computes it.
func leafPTEAddr(t *testing.T, h *Hypervisor, d *Domain, va uint64) mm.PhysAddr {
	t.Helper()
	addr, err := pagetable.LeafEntryAddr(h.Memory(), d.CR3(), va)
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestMMUUpdateMapAndUnmap(t *testing.T) {
	h := bootVersion(t, Version48())
	d := mustDomain(t, h, "guest01", 64, false)
	pfn, err := d.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	target, err := d.P2M().Lookup(pfn)
	if err != nil {
		t.Fatal(err)
	}
	// Map the page a second time at an unused physmap slot... pick a VA
	// in the physmap range beyond the domain's frames; its L1 exists
	// because the physmap L1 covers 2 MiB (512 pages > 64 frames).
	va := d.PhysmapVA(mm.PFN(d.Frames()) + 10)
	ptr := leafPTEAddr(t, h, d, d.PhysmapVA(0)) // L1 base via pfn 0
	idxDelta := mm.PhysAddr((uint64(d.Frames()) + 10) * pagetable.EntrySize)
	ptr += idxDelta

	before, _ := h.Memory().Info(target)
	beforeRef, beforeType := before.RefCount, before.TypeCount

	err = d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{
		Ptr: ptr,
		Val: pagetable.NewEntry(target, pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser),
	}}})
	if err != nil {
		t.Fatalf("mmu_update map: %v", err)
	}
	walk, err := h.Walker().Translate(d.CR3(), va, pagetable.AccessWrite, true)
	if err != nil || walk.MFN != target {
		t.Fatalf("new mapping walk = %v, %v", walk, err)
	}
	after, _ := h.Memory().Info(target)
	if after.RefCount != beforeRef+1 || after.TypeCount != beforeType+1 {
		t.Errorf("refs after map = (%d,%d), want (%d,%d)",
			after.RefCount, after.TypeCount, beforeRef+1, beforeType+1)
	}

	// Unmap: counts return to baseline.
	if err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: ptr, Val: 0}}}); err != nil {
		t.Fatalf("mmu_update clear: %v", err)
	}
	final, _ := h.Memory().Info(target)
	if final.RefCount != beforeRef || final.TypeCount != beforeType {
		t.Errorf("refs after unmap = (%d,%d), want (%d,%d)",
			final.RefCount, final.TypeCount, beforeRef, beforeType)
	}
}

func TestMMUUpdateRejections(t *testing.T) {
	h := bootVersion(t, Version48())
	d := mustDomain(t, h, "guest01", 64, false)
	other := mustDomain(t, h, "guest02", 64, false)

	l1ptr := leafPTEAddr(t, h, d, d.PhysmapVA(0))
	otherTarget, _ := other.P2M().Lookup(5)
	dataMFN, _ := d.P2M().Lookup(5)

	tests := []struct {
		name string
		ptr  mm.PhysAddr
		val  pagetable.Entry
		want error
	}{
		{"unaligned ptr", l1ptr + 3, 0, ErrInval},
		{"pte frame not a page table", dataMFN.Addr(), 0, ErrInval},
		{"foreign pte frame", leafPTEAddr(t, h, other, other.PhysmapVA(0)), 0, ErrPerm},
		{"entry maps foreign frame", l1ptr, pagetable.NewEntry(otherTarget, pagetable.FlagPresent|pagetable.FlagRW), ErrInval},
		{"entry maps hv frame", l1ptr, pagetable.NewEntry(h.XenL3(), pagetable.FlagPresent), ErrInval},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: tt.ptr, Val: tt.val}}})
			if !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

// The writable-mapping invariant: a frame that is writable-mapped cannot
// become a page table, and a page-table frame cannot be writable-mapped.
func TestWritableMappingInvariant(t *testing.T) {
	h := bootVersion(t, Version48())
	d := mustDomain(t, h, "guest01", 64, false)

	// Try to writable-map one of the domain's own L1 frames.
	var l1 mm.MFN
	for mfn, level := range d.PageTableFrames() {
		if level == 1 {
			l1 = mfn
			break
		}
	}
	spareVA := d.PhysmapVA(mm.PFN(d.Frames()) + 20)
	ptr := leafPTEAddr(t, h, d, d.PhysmapVA(0)) + mm.PhysAddr((uint64(d.Frames())+20)*pagetable.EntrySize)
	err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{
		Ptr: ptr,
		Val: pagetable.NewEntry(l1, pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser),
	}}})
	if !errors.Is(err, ErrInval) {
		t.Errorf("writable mapping of L1 frame: err = %v, want ErrInval", err)
	}
	// Read-only mapping of the same frame is legal.
	err = d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{
		Ptr: ptr,
		Val: pagetable.NewEntry(l1, pagetable.FlagPresent|pagetable.FlagUser),
	}}})
	if err != nil {
		t.Errorf("read-only mapping of L1 frame: %v", err)
	}
	if _, err := h.Walker().Translate(d.CR3(), spareVA, pagetable.AccessRead, true); err != nil {
		t.Errorf("reading through RO mapping: %v", err)
	}
}

func TestXSA148Gate(t *testing.T) {
	for _, tt := range []struct {
		version Version
		wantErr bool
	}{
		{Version46(), false},
		{Version48(), true},
		{Version413(), true},
	} {
		t.Run(tt.version.Name, func(t *testing.T) {
			h := bootVersion(t, tt.version)
			d := mustDomain(t, h, "guest01", 64, false)
			// Write a PSE superpage entry into the guest's own physmap L2.
			l2, err := pagetable.TableFor(h.Memory(), d.CR3(), d.PhysmapVA(0), 2)
			if err != nil {
				t.Fatal(err)
			}
			idx, _ := pagetable.Index(d.PhysmapVA(0)+8*pagetable.SuperpageSize, 2)
			ptr, _ := pagetable.EntryAddr(l2, idx)
			err = d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{
				Ptr: ptr,
				Val: pagetable.NewEntry(0, pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser|pagetable.FlagPSE),
			}}})
			if tt.wantErr {
				if !errors.Is(err, ErrInval) {
					t.Errorf("PSE entry on %s: err = %v, want ErrInval", tt.version.Name, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("PSE entry on 4.6: %v", err)
			}
			// The guest now reads arbitrary machine memory through the
			// superpage window — e.g. the hypervisor's own text frames.
			winVA := d.PhysmapVA(0) + 8*pagetable.SuperpageSize
			walk, err := h.Walker().Translate(d.CR3(), winVA+uint64(h.hvTextBase)*mm.PageSize, pagetable.AccessWrite, true)
			if err != nil {
				t.Fatalf("walking superpage window: %v", err)
			}
			if walk.MFN != h.hvTextBase {
				t.Errorf("window resolves to %#x, want hv text %#x", uint64(walk.MFN), uint64(h.hvTextBase))
			}
		})
	}
}

func TestXSA182Gate(t *testing.T) {
	for _, tt := range []struct {
		version   Version
		flipWorks bool
	}{
		{Version46(), true},
		{Version48(), false},
		{Version413(), false},
	} {
		t.Run(tt.version.Name, func(t *testing.T) {
			h := bootVersion(t, tt.version)
			d := mustDomain(t, h, "guest01", 64, false)
			const slot = 42
			rootPtr, _ := pagetable.EntryAddr(d.CR3(), slot)
			// Installing a read-only self-map is legal everywhere.
			roEntry := pagetable.NewEntry(d.CR3(), pagetable.FlagPresent|pagetable.FlagUser)
			if err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: rootPtr, Val: roEntry}}}); err != nil {
				t.Fatalf("read-only self-map: %v", err)
			}
			// A direct writable self-map must be rejected everywhere.
			rwEntry := roEntry.WithFlags(pagetable.FlagRW)
			// First clear, then try to install writable directly.
			if err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: rootPtr, Val: 0}}}); err != nil {
				t.Fatal(err)
			}
			if err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: rootPtr, Val: rwEntry}}}); !errors.Is(err, ErrInval) {
				t.Errorf("direct writable self-map: err = %v, want ErrInval", err)
			}
			// Reinstall RO, then attempt the XSA-182 flag-only RW flip.
			if err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: rootPtr, Val: roEntry}}}); err != nil {
				t.Fatal(err)
			}
			err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: rootPtr, Val: rwEntry}}})
			if tt.flipWorks && err != nil {
				t.Errorf("fast-path RW flip on %s: %v", tt.version.Name, err)
			}
			if !tt.flipWorks && !errors.Is(err, ErrInval) {
				t.Errorf("fast-path RW flip on %s: err = %v, want ErrInval", tt.version.Name, err)
			}
			got, _ := pagetable.ReadEntry(h.Memory(), d.CR3(), slot)
			if got.Writable() != tt.flipWorks {
				t.Errorf("self-map entry after flip = %v", got)
			}
		})
	}
}

func TestXSA212Gate(t *testing.T) {
	for _, tt := range []struct {
		version  Version
		idtWrite bool
	}{
		{Version46(), true},
		{Version48(), false},
		{Version413(), false},
	} {
		t.Run(tt.version.Name, func(t *testing.T) {
			h := bootVersion(t, tt.version)
			d := mustDomain(t, h, "guest01", 64, false)
			pfn := prepareExchangeablePage(t, h, d)

			// Benign use: results land in the guest's own memory.
			dstPFN, err := d.AllocPage()
			if err != nil {
				t.Fatal(err)
			}
			args := &ExchangeArgs{In: []mm.PFN{pfn}, OutStart: d.PhysmapVA(dstPFN)}
			if err := d.Hypercall(HypercallMemoryOp, args); err != nil {
				t.Fatalf("benign exchange: %v", err)
			}
			if args.NrExchanged != 1 || len(args.NewMFNs) != 1 {
				t.Fatalf("exchange result = %+v", args)
			}
			dstMFN, _ := d.P2M().Lookup(dstPFN)
			got, err := h.Memory().ReadU64(dstMFN.Addr())
			if err != nil {
				t.Fatal(err)
			}
			if got != uint64(args.NewMFNs[0]) {
				t.Errorf("stored value %#x, want new mfn %#x", got, uint64(args.NewMFNs[0]))
			}

			// Malicious use: the out handle points at the IDT.
			pfn2 := prepareExchangeablePage(t, h, d)
			idtDst := h.IDTR().DescriptorAddr(cpu.VectorPageFault)
			evil := &ExchangeArgs{In: []mm.PFN{pfn2}, OutStart: idtDst}
			err = d.Hypercall(HypercallMemoryOp, evil)
			if tt.idtWrite {
				if err != nil {
					t.Fatalf("evil exchange on 4.6: %v", err)
				}
				phys, _, terr := h.Layout().Translate(idtDst)
				if terr != nil {
					t.Fatal(terr)
				}
				v, _ := h.Memory().ReadU64(phys)
				if v != uint64(evil.NewMFNs[0]) {
					t.Errorf("IDT slot = %#x, want %#x", v, uint64(evil.NewMFNs[0]))
				}
				return
			}
			if !errors.Is(err, ErrFault) {
				t.Errorf("evil exchange on %s: err = %v, want -EFAULT", tt.version.Name, err)
			}
		})
	}
}

// prepareExchangeablePage allocates a guest page and unmaps it from the
// physmap (dropping its boot references) so memory_exchange accepts it.
func prepareExchangeablePage(t *testing.T, h *Hypervisor, d *Domain) mm.PFN {
	t.Helper()
	pfn, err := d.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	ptr := leafPTEAddr(t, h, d, d.PhysmapVA(pfn))
	if err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: ptr, Val: 0}}}); err != nil {
		t.Fatalf("unmapping pfn %d: %v", pfn, err)
	}
	return pfn
}

func TestExchangeValueOverride(t *testing.T) {
	h := bootVersion(t, Version46())
	d := mustDomain(t, h, "guest01", 64, false)
	pfn := prepareExchangeablePage(t, h, d)
	dstPFN, _ := d.AllocPage()
	const crafted = 0xdeadbeefcafe0007
	args := &ExchangeArgs{
		In:        []mm.PFN{pfn},
		OutStart:  d.PhysmapVA(dstPFN),
		OutValues: []uint64{crafted},
	}
	if err := d.Hypercall(HypercallMemoryOp, args); err != nil {
		t.Fatal(err)
	}
	dstMFN, _ := d.P2M().Lookup(dstPFN)
	got, _ := h.Memory().ReadU64(dstMFN.Addr())
	if got != crafted {
		t.Errorf("stored %#x, want crafted %#x", got, uint64(crafted))
	}
	// Mismatched override length is rejected.
	if err := d.Hypercall(HypercallMemoryOp, &ExchangeArgs{
		In: []mm.PFN{pfn}, OutStart: d.PhysmapVA(dstPFN), OutValues: []uint64{1, 2},
	}); !errors.Is(err, ErrInval) {
		t.Errorf("bad override length: err = %v, want ErrInval", err)
	}
}

func TestExchangeRejectsMappedPage(t *testing.T) {
	h := bootVersion(t, Version46())
	d := mustDomain(t, h, "guest01", 64, false)
	pfn, _ := d.AllocPage() // still physmap-mapped
	err := d.Hypercall(HypercallMemoryOp, &ExchangeArgs{In: []mm.PFN{pfn}, OutStart: d.PhysmapVA(2)})
	if !errors.Is(err, ErrInval) {
		t.Errorf("exchanging a mapped page: err = %v, want ErrInval", err)
	}
}

func TestPopulateAndDecrease(t *testing.T) {
	h := bootVersion(t, Version46())
	d := mustDomain(t, h, "guest01", 64, false)
	args := &PopulatePhysmapArgs{PFN: 500}
	if err := d.Hypercall(HypercallMemoryOp, args); err != nil {
		t.Fatalf("populate: %v", err)
	}
	if got, err := d.P2M().Lookup(500); err != nil || got != args.MFN {
		t.Errorf("p2m[500] = %#x, %v", uint64(got), err)
	}
	if err := d.Hypercall(HypercallMemoryOp, &PopulatePhysmapArgs{PFN: 500}); !errors.Is(err, ErrInval) {
		t.Errorf("double populate: err = %v", err)
	}
	if err := d.Hypercall(HypercallMemoryOp, &DecreaseReservationArgs{PFN: 500}); err != nil {
		t.Fatalf("decrease: %v", err)
	}
	if d.P2M().Contains(500) {
		t.Error("pfn still populated after decrease")
	}
	if err := d.Hypercall(HypercallMemoryOp, &DecreaseReservationArgs{PFN: 500}); !errors.Is(err, ErrInval) {
		t.Errorf("double decrease: err = %v", err)
	}
}

func TestAliasAccessByVersion(t *testing.T) {
	for _, tt := range []struct {
		version Version
		want    bool
	}{
		{Version46(), true},
		{Version48(), true},
		{Version413(), false},
	} {
		t.Run(tt.version.Name, func(t *testing.T) {
			h := bootVersion(t, tt.version)
			d := mustDomain(t, h, "guest01", 64, false)
			// Write through the alias to a Xen heap frame via guest access.
			target := h.HeapBase() + 3
			va := layout.LinearPTBase + uint64(target)*mm.PageSize
			_, err := h.Walker().Translate(d.CR3(), va, pagetable.AccessWrite, true)
			if tt.want && err != nil {
				t.Errorf("alias write on %s failed: %v", tt.version.Name, err)
			}
			if !tt.want && err == nil {
				t.Errorf("alias write on %s succeeded", tt.version.Name)
			}
		})
	}
}

func TestHardenedPolicyBlocksPTWrites(t *testing.T) {
	h := bootVersion(t, Version413())
	d := mustDomain(t, h, "guest01", 64, false)
	// Force a writable PTE onto a page-table frame by raw write (as the
	// injector would), then check the walk still refuses guest writes.
	var l1 mm.MFN
	for mfn, level := range d.PageTableFrames() {
		if level == 1 {
			l1 = mfn
			break
		}
	}
	_, pfn, err := h.Memory().M2P(l1)
	if err != nil {
		t.Fatal(err)
	}
	va := d.PhysmapVA(pfn)
	addr, err := pagetable.LeafEntryAddr(h.Memory(), d.CR3(), va)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := pagetable.ReadEntry(h.Memory(), addr.Frame(), int(addr.Offset()/8))
	if err := h.Memory().WriteU64(addr, uint64(e.WithFlags(pagetable.FlagRW))); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Walker().Translate(d.CR3(), va, pagetable.AccessWrite, true); err == nil {
		t.Error("hardened walk allowed guest write to a page-table frame")
	}
	// Reads and hypervisor-internal writes still pass.
	if _, err := h.Walker().Translate(d.CR3(), va, pagetable.AccessRead, true); err != nil {
		t.Errorf("hardened walk refused a read: %v", err)
	}
	if _, err := h.Walker().Translate(d.CR3(), va, pagetable.AccessWrite, false); err != nil {
		t.Errorf("hardened walk refused a hypervisor write: %v", err)
	}
}

func TestTranslateHV(t *testing.T) {
	h := bootVersion(t, Version46())
	// IDT address resolves through hv-text.
	phys, err := h.TranslateHV(h.IDTR().Base, pagetable.AccessWrite)
	if err != nil {
		t.Fatalf("TranslateHV(IDT): %v", err)
	}
	if want := (h.hvTextBase + idtFrameOffset).Addr(); phys != want {
		t.Errorf("IDT phys = %#x, want %#x", uint64(phys), uint64(want))
	}
	// Directmap covers all machine memory.
	phys, err = h.TranslateHV(layout.DirectmapBase+0x5000, pagetable.AccessRead)
	if err != nil || phys != 0x5000 {
		t.Errorf("directmap translate = %#x, %v", uint64(phys), err)
	}
	// Alias resolves via the idle tables on 4.6.
	if _, err := h.TranslateHV(layout.LinearPTBase+0x3000, pagetable.AccessWrite); err != nil {
		t.Errorf("alias translate on 4.6: %v", err)
	}
	h13 := bootVersion(t, Version413())
	if _, err := h13.TranslateHV(layout.LinearPTBase+0x3000, pagetable.AccessWrite); err == nil {
		t.Error("alias translate on 4.13 succeeded")
	}
}

func TestReadWriteHV(t *testing.T) {
	h := bootVersion(t, Version46())
	msg := []byte("written through the directmap")
	va := layout.DirectmapBase + uint64(h.HeapBase())*mm.PageSize
	if err := h.WriteHV(va, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := h.ReadHV(va, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Errorf("round trip = %q", got)
	}
}

func TestCrashSemantics(t *testing.T) {
	h := bootVersion(t, Version46())
	d := mustDomain(t, h, "guest01", 64, false)
	h.Crash("FATAL TRAP: vector = 8 (double fault)")
	if !h.Crashed() || h.CrashReason() == "" {
		t.Fatal("crash not recorded")
	}
	if !h.ConsoleContains("Panic on CPU 0") {
		t.Error("panic banner missing")
	}
	if err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{}); !errors.Is(err, ErrCrashed) {
		t.Errorf("hypercall after crash: err = %v, want ErrCrashed", err)
	}
	if _, err := h.CreateDomain("late", 64, false); !errors.Is(err, ErrCrashed) {
		t.Errorf("domain creation after crash: err = %v", err)
	}
	// Crash is idempotent; the first reason wins.
	h.Crash("second")
	if h.CrashReason() != "FATAL TRAP: vector = 8 (double fault)" {
		t.Errorf("crash reason overwritten: %q", h.CrashReason())
	}
}

func TestHypercallDispatch(t *testing.T) {
	h := bootVersion(t, Version46())
	d := mustDomain(t, h, "guest01", 64, false)
	if err := d.Hypercall(99, nil); !errors.Is(err, ErrNoSys) {
		t.Errorf("unknown hypercall: err = %v, want ErrNoSys", err)
	}
	if err := d.Hypercall(HypercallConsoleIO, "hello from guest"); err != nil {
		t.Fatalf("console_io: %v", err)
	}
	if !h.ConsoleContains("hello from guest") {
		t.Error("console_io output missing")
	}
	if err := d.Hypercall(HypercallMMUUpdate, "wrong type"); !errors.Is(err, ErrInval) {
		t.Errorf("wrong arg type: err = %v, want ErrInval", err)
	}
	// Registration: duplicates and nil handlers are rejected.
	if err := h.RegisterHypercall(HypercallMMUUpdate, func(*Domain, any) error { return nil }); !errors.Is(err, ErrInval) {
		t.Errorf("duplicate registration: err = %v", err)
	}
	if err := h.RegisterHypercall(77, nil); !errors.Is(err, ErrInval) {
		t.Errorf("nil handler: err = %v", err)
	}
	called := false
	if err := h.RegisterHypercall(77, func(*Domain, any) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Hypercall(77, nil); err != nil || !called {
		t.Errorf("custom hypercall: err = %v called = %v", err, called)
	}
}

func TestMMUExtPinUnpin(t *testing.T) {
	h := bootVersion(t, Version48())
	d := mustDomain(t, h, "guest01", 64, false)
	// Build a fresh, empty L1 in guest memory and pin it.
	pfn, _ := d.AllocPage()
	mfn, _ := d.P2M().Lookup(pfn)
	// Must first drop the writable physmap mapping.
	ptr := leafPTEAddr(t, h, d, d.PhysmapVA(pfn))
	old, _ := pagetable.ReadEntry(h.Memory(), ptr.Frame(), int(ptr.Offset()/8))
	if err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: ptr, Val: old.WithoutFlags(pagetable.FlagRW)}}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Hypercall(HypercallMMUExtOp, &MMUExtArgs{Op: MMUExtPinL1Table, MFN: mfn}); err != nil {
		t.Fatalf("pin: %v", err)
	}
	pi, _ := h.Memory().Info(mfn)
	if !pi.Pinned || pi.Type != mm.TypeL1 {
		t.Errorf("after pin: %+v", *pi)
	}
	if err := d.Hypercall(HypercallMMUExtOp, &MMUExtArgs{Op: MMUExtPinL1Table, MFN: mfn}); !errors.Is(err, ErrInval) {
		t.Errorf("double pin: err = %v", err)
	}
	if err := d.Hypercall(HypercallMMUExtOp, &MMUExtArgs{Op: MMUExtUnpinTable, MFN: mfn}); err != nil {
		t.Fatalf("unpin: %v", err)
	}
	pi, _ = h.Memory().Info(mfn)
	if pi.Pinned {
		t.Error("still pinned after unpin")
	}
	if err := d.Hypercall(HypercallMMUExtOp, &MMUExtArgs{Op: MMUExtUnpinTable, MFN: mfn}); !errors.Is(err, ErrInval) {
		t.Errorf("double unpin: err = %v", err)
	}
}

func TestGrantV2DowngradeLeak(t *testing.T) {
	for _, tt := range []struct {
		version Version
		leaks   bool
	}{
		{Version46(), true},
		{Version48(), false},
	} {
		t.Run(tt.version.Name, func(t *testing.T) {
			h := bootVersion(t, tt.version)
			d := mustDomain(t, h, "guest01", 64, false)
			if err := d.Hypercall(HypercallGrantTableOp, &GrantSetVersionArgs{Version: 2}); err != nil {
				t.Fatalf("v2: %v", err)
			}
			status := d.GrantStatusFrames()
			if len(status) != 1 {
				t.Fatalf("status frames = %d", len(status))
			}
			if err := d.Hypercall(HypercallGrantTableOp, &GrantSetVersionArgs{Version: 1}); err != nil {
				t.Fatalf("v1: %v", err)
			}
			pi, err := h.Memory().Info(status[0])
			if err != nil {
				t.Fatal(err)
			}
			if tt.leaks {
				if pi.RefCount == 0 {
					t.Error("leaky profile released the status reference")
				}
				if len(d.GrantStatusFrames()) == 0 {
					t.Error("leak state not auditable")
				}
			} else {
				if pi.Owner != mm.DomInvalid {
					t.Errorf("status frame not freed: owner dom%d", pi.Owner)
				}
				if len(d.GrantStatusFrames()) != 0 {
					t.Error("status frames remain after clean downgrade")
				}
			}
		})
	}
}

func TestGrantAccessAndMap(t *testing.T) {
	h := bootVersion(t, Version48())
	a := mustDomain(t, h, "guest01", 64, false)
	b := mustDomain(t, h, "guest02", 64, false)
	if err := a.Hypercall(HypercallGrantTableOp, &GrantAccessArgs{Ref: 3, ToDom: b.ID(), PFN: 5}); err != nil {
		t.Fatalf("grant access: %v", err)
	}
	m := &GrantMapArgs{FromDom: a.ID(), Ref: 3}
	if err := b.Hypercall(HypercallGrantTableOp, m); err != nil {
		t.Fatalf("grant map: %v", err)
	}
	want, _ := a.P2M().Lookup(5)
	if m.MFN != want {
		t.Errorf("mapped %#x, want %#x", uint64(m.MFN), uint64(want))
	}
	// A third domain cannot map it.
	c := mustDomain(t, h, "guest03", 64, false)
	if err := c.Hypercall(HypercallGrantTableOp, &GrantMapArgs{FromDom: a.ID(), Ref: 3}); !errors.Is(err, ErrPerm) {
		t.Errorf("foreign map: err = %v, want ErrPerm", err)
	}
	if err := b.Hypercall(HypercallGrantTableOp, &GrantUnmapArgs{FromDom: a.ID(), Ref: 3}); err != nil {
		t.Fatalf("unmap: %v", err)
	}
	if err := b.Hypercall(HypercallGrantTableOp, &GrantUnmapArgs{FromDom: a.ID(), Ref: 3}); !errors.Is(err, ErrInval) {
		t.Errorf("double unmap: err = %v", err)
	}
}

func TestEventChannels(t *testing.T) {
	h := bootVersion(t, Version48())
	a := mustDomain(t, h, "guest01", 64, false)
	b := mustDomain(t, h, "guest02", 64, false)
	alloc := &EventAllocArgs{RemoteDom: int32(b.ID())}
	if err := a.Hypercall(HypercallEventChannelOp, alloc); err != nil {
		t.Fatalf("alloc: %v", err)
	}
	ballocs := &EventAllocArgs{RemoteDom: int32(a.ID())}
	if err := b.Hypercall(HypercallEventChannelOp, ballocs); err != nil {
		t.Fatalf("alloc b: %v", err)
	}
	if err := a.Hypercall(HypercallEventChannelOp, &EventBindArgs{
		Port: alloc.Port, RemoteDom: int32(b.ID()), RemotePort: ballocs.Port,
	}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Hypercall(HypercallEventChannelOp, &EventSendArgs{Port: alloc.Port}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if got := b.PendingEvents(); got != 5 {
		t.Errorf("pending = %d, want 5", got)
	}
	n, err := b.ConsumeEvents(ballocs.Port)
	if err != nil || n != 5 {
		t.Errorf("consume = %d, %v", n, err)
	}
	if b.PendingEvents() != 0 {
		t.Error("events not consumed")
	}
	// Sending on an unbound port fails.
	ua := &EventAllocArgs{RemoteDom: int32(b.ID())}
	if err := a.Hypercall(HypercallEventChannelOp, ua); err != nil {
		t.Fatal(err)
	}
	if err := a.Hypercall(HypercallEventChannelOp, &EventSendArgs{Port: ua.Port}); !errors.Is(err, ErrInval) {
		t.Errorf("send unbound: err = %v", err)
	}
}

func TestDomainSpaceGuestCannotTouchHypervisorText(t *testing.T) {
	h := bootVersion(t, Version46())
	d := mustDomain(t, h, "guest01", 64, false)
	// Guest-initiated access to the IDT's address must fault even on the
	// vulnerable version; only the hypercall primitive reaches it.
	if err := d.VCPU().ReadVirt(h.IDTR().Base, make([]byte, 8), true); err == nil {
		t.Error("guest read of hv text succeeded")
	}
	// Hypervisor-privilege access through the same vCPU resolves.
	if err := d.VCPU().ReadVirt(h.IDTR().Base, make([]byte, 8), false); err != nil {
		t.Errorf("hv-privilege read failed: %v", err)
	}
}

// TestReservedL4SlotsProtected pins the is_guest_l4_slot semantics the
// hypercall storms uncovered: guests can neither modify their L4's
// reserved Xen slots nor smuggle entries through them when promoting a
// fresh L4.
func TestReservedL4SlotsProtected(t *testing.T) {
	h := bootVersion(t, Version48())
	d := mustDomain(t, h, "guest01", 64, false)
	// Direct update of the Xen slot is -EPERM.
	ptr, err := pagetable.EntryAddr(d.CR3(), XenL4Slot)
	if err != nil {
		t.Fatal(err)
	}
	err = d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: ptr, Val: 0}}})
	if !errors.Is(err, ErrPerm) {
		t.Errorf("clearing the Xen slot: err = %v, want ErrPerm", err)
	}
	// A guest-crafted L4 gets the canonical slots installed on
	// promotion, replacing whatever was there.
	pfn, err := d.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	mfn, err := d.P2M().Lookup(pfn)
	if err != nil {
		t.Fatal(err)
	}
	// Unmap it so it can be promoted, then scribble into its Xen slot.
	l1ptr := leafPTEAddr(t, h, d, d.PhysmapVA(pfn))
	if err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: l1ptr, Val: 0}}}); err != nil {
		t.Fatal(err)
	}
	bogus := pagetable.NewEntry(0x42, pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser)
	if err := pagetable.WriteEntry(h.Memory(), mfn, XenL4Slot, bogus); err != nil {
		t.Fatal(err)
	}
	if err := d.Hypercall(HypercallMMUExtOp, &MMUExtArgs{Op: MMUExtNewBaseptr, MFN: mfn}); err != nil {
		t.Fatalf("new baseptr: %v", err)
	}
	got, err := pagetable.ReadEntry(h.Memory(), mfn, XenL4Slot)
	if err != nil {
		t.Fatal(err)
	}
	if got.MFN() != h.XenL3() {
		t.Errorf("promoted L4 Xen slot = %v, want shared L3 %#x", got, uint64(h.XenL3()))
	}
	if d.CR3() != mfn {
		t.Errorf("cr3 = %#x, want %#x", uint64(d.CR3()), uint64(mfn))
	}
}

// TestPinL2RecursivelyValidates builds a two-level table structure in
// guest data pages and pins the L2: validation must descend into the L1
// and take balanced references, and unpinning must release them.
func TestPinL2RecursivelyValidates(t *testing.T) {
	h := bootVersion(t, Version48())
	d := mustDomain(t, h, "guest01", 64, false)

	newUnmapped := func() (mm.PFN, mm.MFN) {
		pfn, err := d.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		ptr := leafPTEAddr(t, h, d, d.PhysmapVA(pfn))
		if err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: ptr, Val: 0}}}); err != nil {
			t.Fatal(err)
		}
		mfn, err := d.P2M().Lookup(pfn)
		if err != nil {
			t.Fatal(err)
		}
		return pfn, mfn
	}
	_, l1 := newUnmapped()
	_, l2 := newUnmapped()
	dataMFN, err := d.P2M().Lookup(6)
	if err != nil {
		t.Fatal(err)
	}
	// Craft contents via raw writes (the guest writing its own pages
	// before handing them to the hypervisor for validation).
	if err := pagetable.WriteEntry(h.Memory(), l1, 3,
		pagetable.NewEntry(dataMFN, pagetable.FlagPresent|pagetable.FlagUser)); err != nil {
		t.Fatal(err)
	}
	if err := pagetable.WriteEntry(h.Memory(), l2, 7,
		pagetable.NewEntry(l1, pagetable.FlagPresent|pagetable.FlagUser)); err != nil {
		t.Fatal(err)
	}
	if err := d.Hypercall(HypercallMMUExtOp, &MMUExtArgs{Op: MMUExtPinL2Table, MFN: l2}); err != nil {
		t.Fatalf("pin L2: %v", err)
	}
	l1pi, _ := h.Memory().Info(l1)
	if l1pi.Type != mm.TypeL1 || l1pi.TypeCount != 1 || l1pi.RefCount == 0 {
		t.Errorf("l1 after pin: %+v", *l1pi)
	}
	if findings := h.AuditMemory(); len(findings) != 0 {
		t.Errorf("audit after pin:\n%s", strings.Join(findings, "\n"))
	}
	if err := d.Hypercall(HypercallMMUExtOp, &MMUExtArgs{Op: MMUExtUnpinTable, MFN: l2}); err != nil {
		t.Fatalf("unpin: %v", err)
	}
	l1pi, _ = h.Memory().Info(l1)
	if l1pi.TypeCount != 0 || l1pi.RefCount != 0 {
		t.Errorf("l1 after unpin: %+v", *l1pi)
	}
	// A malformed inner entry makes the whole pin fail cleanly.
	if err := pagetable.WriteEntry(h.Memory(), l1, 4,
		pagetable.NewEntry(h.XenL3(), pagetable.FlagPresent|pagetable.FlagRW)); err != nil {
		t.Fatal(err)
	}
	if err := d.Hypercall(HypercallMMUExtOp, &MMUExtArgs{Op: MMUExtPinL2Table, MFN: l2}); !errors.Is(err, ErrInval) {
		t.Errorf("pin with foreign inner entry: err = %v", err)
	}
	if findings := h.AuditMemory(); len(findings) != 0 {
		t.Errorf("audit after failed pin (unwind leak):\n%s", strings.Join(findings, "\n"))
	}
}

// TestBootFailsOnTinyMachines exercises the boot error paths: the
// hypervisor refuses machines too small for its own reservations, and a
// domain build fails cleanly when machine memory runs out.
func TestBootFailsOnTinyMachines(t *testing.T) {
	mem, err := mm.NewMemory(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(mem, Version46()); err == nil {
		t.Error("boot on an 8-frame machine succeeded")
	}
	// Enough for boot, not for a domain.
	mem2, err := mm.NewMemory(60)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(mem2, Version46())
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	if _, err := h.CreateDomain("guest01", 64, false); err == nil {
		t.Error("domain larger than free memory created")
	}
}
