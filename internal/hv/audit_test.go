package hv

import (
	"strings"
	"testing"

	"repro/internal/mm"
	"repro/internal/pagetable"
)

func TestAuditCleanSystem(t *testing.T) {
	for _, v := range Versions() {
		t.Run(v.Name, func(t *testing.T) {
			h := bootVersion(t, v)
			mustDomain(t, h, "xen3", 64, true)
			mustDomain(t, h, "guest01", 64, false)
			if findings := h.AuditMemory(); len(findings) != 0 {
				t.Errorf("clean system has findings:\n%s", strings.Join(findings, "\n"))
			}
		})
	}
}

func TestAuditStaysCleanUnderLegitimateUpdates(t *testing.T) {
	h := bootVersion(t, Version48())
	d := mustDomain(t, h, "guest01", 64, false)
	// Map, remap, unmap a page through the validated interface.
	pfn, err := d.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	target, err := d.P2M().Lookup(pfn)
	if err != nil {
		t.Fatal(err)
	}
	base := leafPTEAddr(t, h, d, d.PhysmapVA(0))
	ptr := base + mm.PhysAddr((uint64(d.Frames())+60)*pagetable.EntrySize)
	for _, val := range []pagetable.Entry{
		pagetable.NewEntry(target, pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser),
		pagetable.NewEntry(target, pagetable.FlagPresent|pagetable.FlagUser),
		0,
	} {
		if err := d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{Ptr: ptr, Val: val}}}); err != nil {
			t.Fatal(err)
		}
		if findings := h.AuditMemory(); len(findings) != 0 {
			t.Fatalf("findings after validated update %v:\n%s", val, strings.Join(findings, "\n"))
		}
	}
}

func TestAuditDetectsRawPTEWrite(t *testing.T) {
	h := bootVersion(t, Version48())
	d := mustDomain(t, h, "guest01", 64, false)
	// A raw write (what the injector or an arbitrary-write vulnerability
	// does) installs a mapping with no references: the Corrupt-a-Page-
	// Reference erroneous state.
	target, err := d.P2M().Lookup(5)
	if err != nil {
		t.Fatal(err)
	}
	base := leafPTEAddr(t, h, d, d.PhysmapVA(0))
	ptr := base + mm.PhysAddr((uint64(d.Frames())+61)*pagetable.EntrySize)
	raw := pagetable.NewEntry(target, pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser)
	if err := h.Memory().WriteU64(ptr, uint64(raw)); err != nil {
		t.Fatal(err)
	}
	findings := h.AuditMemory()
	if len(findings) == 0 {
		t.Fatal("raw PTE write invisible to the audit")
	}
	joined := strings.Join(findings, "\n")
	if !strings.Contains(joined, "live references") && !strings.Contains(joined, "writable mappings") {
		t.Errorf("findings lack the reference discrepancy:\n%s", joined)
	}
}

func TestAuditDetectsXSA148State(t *testing.T) {
	h := bootVersion(t, Version46())
	d := mustDomain(t, h, "guest01", 64, false)
	// Create the superpage window through the vulnerable interface.
	l2, err := pagetable.TableFor(h.Memory(), d.CR3(), GuestPhysmapBase, 2)
	if err != nil {
		t.Fatal(err)
	}
	ptr, err := pagetable.EntryAddr(l2, 9)
	if err != nil {
		t.Fatal(err)
	}
	err = d.Hypercall(HypercallMMUUpdate, &MMUUpdateArgs{Updates: []MMUUpdate{{
		Ptr: ptr,
		Val: pagetable.NewEntry(0, pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser|pagetable.FlagPSE),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	findings := h.AuditMemory()
	found := false
	for _, f := range findings {
		if strings.Contains(f, "unaccounted superpage") {
			found = true
		}
	}
	if !found {
		t.Errorf("XSA-148 state invisible to the audit:\n%s", strings.Join(findings, "\n"))
	}
}

func TestAuditDetectsWritablePTMapping(t *testing.T) {
	h := bootVersion(t, Version48())
	d := mustDomain(t, h, "guest01", 64, false)
	// Raw-flip RW on the physmap mapping of an L1 frame: the audit must
	// flag a page table with a guest-writable mapping.
	var l1 mm.MFN
	for mfn, level := range d.PageTableFrames() {
		if level == 1 {
			l1 = mfn
			break
		}
	}
	_, pfn, err := h.Memory().M2P(l1)
	if err != nil {
		t.Fatal(err)
	}
	ptr, err := pagetable.LeafEntryAddr(h.Memory(), d.CR3(), d.PhysmapVA(pfn))
	if err != nil {
		t.Fatal(err)
	}
	e, err := pagetable.ReadEntry(h.Memory(), ptr.Frame(), int(ptr.Offset()/8))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Memory().WriteU64(ptr, uint64(e.WithFlags(pagetable.FlagRW))); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(h.AuditMemory(), "\n")
	if !strings.Contains(joined, "page table has") {
		t.Errorf("writable PT mapping invisible:\n%s", joined)
	}
}
