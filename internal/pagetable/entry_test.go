package pagetable

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/mm"
)

func TestEntryCodec(t *testing.T) {
	tests := []struct {
		name  string
		mfn   mm.MFN
		flags uint64
	}{
		{"zero frame, present", 0, FlagPresent},
		{"typical leaf", 0x1234, FlagPresent | FlagRW | FlagUser},
		{"superpage", 0x200, FlagPresent | FlagRW | FlagPSE},
		{"nx leaf", 7, FlagPresent | FlagNX},
		{"max frame", mm.MFN(0xffffffffff), FlagPresent | FlagRW},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := NewEntry(tt.mfn, tt.flags)
			if got := e.MFN(); got != tt.mfn {
				t.Errorf("MFN() = %#x, want %#x", uint64(got), uint64(tt.mfn))
			}
			if got := e.Flags(); got != tt.flags {
				t.Errorf("Flags() = %#x, want %#x", got, tt.flags)
			}
		})
	}
}

func TestEntryPredicates(t *testing.T) {
	e := NewEntry(5, FlagPresent|FlagRW|FlagUser|FlagPSE|FlagNX)
	if !e.Present() || !e.Writable() || !e.User() || !e.Superpage() || !e.NoExec() {
		t.Errorf("predicates wrong for %v", e)
	}
	var zero Entry
	if zero.Present() || zero.Writable() || zero.User() || zero.Superpage() || zero.NoExec() {
		t.Errorf("zero entry has unexpected attributes")
	}
}

func TestEntryFlagEditing(t *testing.T) {
	e := NewEntry(9, FlagPresent)
	e = e.WithFlags(FlagRW | FlagUser)
	if !e.Writable() || !e.User() {
		t.Error("WithFlags did not set RW|US")
	}
	e = e.WithoutFlags(FlagRW)
	if e.Writable() {
		t.Error("WithoutFlags did not clear RW")
	}
	if e.MFN() != 9 {
		t.Errorf("flag edits disturbed the frame: %#x", uint64(e.MFN()))
	}
}

func TestEntryStringShowsFlags(t *testing.T) {
	e := NewEntry(0x82da9, FlagPresent|FlagRW|FlagUser)
	s := e.String()
	for _, want := range []string{"0x0000000082da9007", "P", "RW", "US"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if got := NewEntry(1, 0).String(); strings.Contains(got, "[") {
		t.Errorf("non-present entry should print without flags: %q", got)
	}
}

func TestCanonical(t *testing.T) {
	tests := []struct {
		va   uint64
		want bool
	}{
		{0, true},
		{0x00007fffffffffff, true},
		{0xffff800000000000, true},
		{0xffffffffffffffff, true},
		{0x0000800000000000, false},
		{0xfffe800000000000, false},
		{0x0001000000000000, false},
	}
	for _, tt := range tests {
		if got := Canonical(tt.va); got != tt.want {
			t.Errorf("Canonical(%#x) = %v, want %v", tt.va, got, tt.want)
		}
	}
}

func TestIndexAndCompose(t *testing.T) {
	va, err := Compose(256, 1, 2, 3, 0x45)
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	// Index 256 sets bit 47, so the address must be sign-extended.
	if !Canonical(va) {
		t.Fatalf("Compose produced non-canonical %#x", va)
	}
	for level, want := range map[int]int{4: 256, 3: 1, 2: 2, 1: 3} {
		got, err := Index(va, level)
		if err != nil {
			t.Fatalf("Index(level %d): %v", level, err)
		}
		if got != want {
			t.Errorf("Index(%#x, %d) = %d, want %d", va, level, got, want)
		}
	}
	if va&mm.PageMask != 0x45 {
		t.Errorf("offset = %#x, want 0x45", va&mm.PageMask)
	}
	if _, err := Index(va, 5); !errors.Is(err, ErrBadLevel) {
		t.Errorf("Index level 5: err = %v, want ErrBadLevel", err)
	}
	if _, err := Compose(512, 0, 0, 0, 0); !errors.Is(err, ErrBadIndex) {
		t.Errorf("Compose index 512: err = %v, want ErrBadIndex", err)
	}
	if _, err := Compose(0, 0, 0, 0, mm.PageSize); err == nil {
		t.Error("Compose with oversized offset succeeded")
	}
}

func TestEntryAddr(t *testing.T) {
	addr, err := EntryAddr(3, 7)
	if err != nil {
		t.Fatalf("EntryAddr: %v", err)
	}
	if want := mm.PhysAddr(3*mm.PageSize + 7*EntrySize); addr != want {
		t.Errorf("EntryAddr = %#x, want %#x", uint64(addr), uint64(want))
	}
	if _, err := EntryAddr(3, EntriesPerTable); !errors.Is(err, ErrBadIndex) {
		t.Errorf("EntryAddr bad index: err = %v, want ErrBadIndex", err)
	}
}

func TestReadWriteEntry(t *testing.T) {
	mem, err := mm.NewMemory(8)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEntry(5, FlagPresent|FlagRW)
	if err := WriteEntry(mem, 2, 100, e); err != nil {
		t.Fatalf("WriteEntry: %v", err)
	}
	got, err := ReadEntry(mem, 2, 100)
	if err != nil {
		t.Fatalf("ReadEntry: %v", err)
	}
	if got != e {
		t.Errorf("round trip = %v, want %v", got, e)
	}
}
