package pagetable

import "repro/internal/mm"

// TLBEntry caches one page translation with the effective permissions
// computed at fill time — including the walk policy's verdict, the way a
// hardware TLB caches the access rights it validated when the entry was
// loaded. This is what makes stale TLB state an erroneous state in its
// own right: a raw page-table write that bypasses the flush protocol
// leaves translations (and rights) in the TLB that the tables no longer
// grant.
type TLBEntry struct {
	// Frame is the cached target machine frame.
	Frame mm.MFN
	// Writable is the effective write permission (flags and policy).
	Writable bool
	// User is the accumulated user-accessibility.
	User bool
	// NoExec is the accumulated no-execute bit.
	NoExec bool
}

// TLBStats counts cache behaviour for the ablation benchmarks.
type TLBStats struct {
	Hits, Misses, Flushes uint64
}

// TLB is a per-vCPU translation cache with FIFO replacement. A capacity
// of zero disables caching entirely.
type TLB struct {
	capacity int
	entries  map[uint64]TLBEntry
	order    []uint64
	stats    TLBStats
}

// NewTLB creates a cache holding up to capacity page translations. The
// backing storage is allocated lazily on the first Insert, so the many
// short-lived vCPUs a snapshot-forking campaign stamps out pay nothing
// until they actually translate.
func NewTLB(capacity int) *TLB {
	return &TLB{capacity: capacity}
}

// Enabled reports whether the cache holds anything at all.
func (t *TLB) Enabled() bool { return t.capacity > 0 }

// Stats returns the counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// Len returns the number of cached translations.
func (t *TLB) Len() int { return len(t.entries) }

func pageOf(va uint64) uint64 { return va &^ uint64(mm.PageMask) }

// Lookup returns the cached entry for the page of va.
func (t *TLB) Lookup(va uint64) (TLBEntry, bool) {
	if !t.Enabled() {
		return TLBEntry{}, false
	}
	e, ok := t.entries[pageOf(va)]
	if ok {
		t.stats.Hits++
	} else {
		t.stats.Misses++
	}
	return e, ok
}

// Insert caches a translation for the page of va, evicting the oldest
// entry when full.
func (t *TLB) Insert(va uint64, e TLBEntry) {
	if !t.Enabled() {
		return
	}
	if t.entries == nil {
		t.entries = make(map[uint64]TLBEntry, t.capacity)
		t.order = make([]uint64, 0, t.capacity)
	}
	page := pageOf(va)
	if _, exists := t.entries[page]; !exists {
		if len(t.order) >= t.capacity {
			oldest := t.order[0]
			t.order = t.order[1:]
			delete(t.entries, oldest)
		}
		t.order = append(t.order, page)
	}
	t.entries[page] = e
}

// Flush drops every cached translation (the full flush Xen performs
// after validated page-table updates).
func (t *TLB) Flush() {
	if !t.Enabled() || len(t.entries) == 0 {
		t.stats.Flushes++
		return
	}
	clear(t.entries)
	t.order = t.order[:0]
	t.stats.Flushes++
}

// FlushVA drops the translation of one page (invlpg).
func (t *TLB) FlushVA(va uint64) {
	if !t.Enabled() {
		return
	}
	page := pageOf(va)
	if _, ok := t.entries[page]; !ok {
		return
	}
	delete(t.entries, page)
	for i, p := range t.order {
		if p == page {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}
