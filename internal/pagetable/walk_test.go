package pagetable

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/mm"
)

// testEnv wires a machine, a trusted builder and a permissive walker.
type testEnv struct {
	mem    *mm.Memory
	b      *Builder
	walker *Walker
	root   mm.MFN
}

func newTestEnv(t *testing.T, frames int) *testEnv {
	t.Helper()
	mem, err := mm.NewMemory(frames)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(mem, func() (mm.MFN, error) { return mem.Alloc(mm.DomXen) })
	root, err := b.NewRoot()
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{mem: mem, b: b, walker: NewWalker(mem, nil), root: root}
}

func (e *testEnv) mustAlloc(t *testing.T) mm.MFN {
	t.Helper()
	mfn, err := e.mem.Alloc(mm.DomXen)
	if err != nil {
		t.Fatal(err)
	}
	return mfn
}

func TestWalkSimpleMapping(t *testing.T) {
	env := newTestEnv(t, 64)
	target := env.mustAlloc(t)
	const va = 0xffff880000003000
	if err := env.b.Map(env.root, va, target, FlagRW|FlagUser); err != nil {
		t.Fatalf("Map: %v", err)
	}
	walk, err := env.walker.Translate(env.root, va+0x123, AccessWrite, true)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if walk.MFN != target {
		t.Errorf("walk.MFN = %#x, want %#x", uint64(walk.MFN), uint64(target))
	}
	if want := target.Addr() + 0x123; walk.Phys != want {
		t.Errorf("walk.Phys = %#x, want %#x", uint64(walk.Phys), uint64(want))
	}
	if len(walk.Entries) != 4 || walk.Superpage {
		t.Errorf("expected a 4-level walk, got %d levels superpage=%v", len(walk.Entries), walk.Superpage)
	}
	if !walk.Writable || !walk.User {
		t.Errorf("permissions = RW:%v US:%v, want true/true", walk.Writable, walk.User)
	}
}

func TestWalkFaults(t *testing.T) {
	env := newTestEnv(t, 64)
	target := env.mustAlloc(t)
	roVA := uint64(0xffff880000001000)
	supVA := uint64(0xffff880000002000)
	nxVA := uint64(0xffff880000004000)
	if err := env.b.Map(env.root, roVA, target, FlagUser); err != nil {
		t.Fatal(err)
	}
	if err := env.b.Map(env.root, supVA, target, FlagRW); err != nil {
		t.Fatal(err)
	}
	if err := env.b.Map(env.root, nxVA, target, FlagRW|FlagUser|FlagNX); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name   string
		va     uint64
		acc    Access
		guest  bool
		reason string
	}{
		{"write to read-only", roVA, AccessWrite, true, "read-only"},
		{"guest touch of supervisor page", supVA, AccessRead, true, "supervisor-only"},
		{"exec of NX page", nxVA, AccessExec, true, "no-execute"},
		{"unmapped address", 0xffff880000009000, AccessRead, true, "not present"},
		{"non-canonical", 0x0000900000000000, AccessRead, true, "non-canonical"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := env.walker.Translate(env.root, tt.va, tt.acc, tt.guest)
			var fault *Fault
			if !errors.As(err, &fault) {
				t.Fatalf("err = %v, want *Fault", err)
			}
			if fault.VA != tt.va {
				t.Errorf("fault.VA = %#x, want %#x", fault.VA, tt.va)
			}
			if got := fault.Error(); !contains(got, tt.reason) {
				t.Errorf("fault = %q, want reason containing %q", got, tt.reason)
			}
		})
	}

	// Read of the read-only page is fine; the hypervisor (non-guest) may
	// touch supervisor pages.
	if _, err := env.walker.Translate(env.root, roVA, AccessRead, true); err != nil {
		t.Errorf("read of RO page: %v", err)
	}
	if _, err := env.walker.Translate(env.root, supVA, AccessRead, false); err != nil {
		t.Errorf("hypervisor read of supervisor page: %v", err)
	}
}

func TestWalkSuperpage(t *testing.T) {
	env := newTestEnv(t, 1024)
	base, err := env.mem.AllocRange(512, mm.DomXen)
	if err != nil {
		t.Fatal(err)
	}
	const va = 0xffff880040000000 // 2MiB-aligned
	if err := env.b.MapSuperpage(env.root, va, base, FlagRW|FlagUser); err != nil {
		t.Fatalf("MapSuperpage: %v", err)
	}
	// An address deep inside the superpage resolves to base + L1 index.
	probe := uint64(va) + 37*mm.PageSize + 0x10
	walk, err := env.walker.Translate(env.root, probe, AccessWrite, true)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if !walk.Superpage {
		t.Error("walk did not report a superpage leaf")
	}
	if want := base + 37; walk.MFN != want {
		t.Errorf("walk.MFN = %#x, want %#x", uint64(walk.MFN), uint64(want))
	}
	if len(walk.Entries) != 3 {
		t.Errorf("superpage walk consulted %d levels, want 3", len(walk.Entries))
	}
}

func TestWalkSuperpagePastEndOfMemory(t *testing.T) {
	env := newTestEnv(t, 64)
	// Point a superpage at the last frame so base+index overflows memory.
	last := mm.MFN(env.mem.NumFrames() - 1)
	const va = 0xffff880040000000
	if err := env.b.MapSuperpage(env.root, va, last, FlagRW|FlagUser); err != nil {
		t.Fatal(err)
	}
	if _, err := env.walker.Translate(env.root, va+5*mm.PageSize, AccessRead, true); err == nil {
		t.Error("walk through out-of-memory superpage succeeded")
	}
}

func TestWalkSetsAccessedAndDirty(t *testing.T) {
	env := newTestEnv(t, 64)
	target := env.mustAlloc(t)
	const va = 0xffff880000005000
	if err := env.b.Map(env.root, va, target, FlagRW|FlagUser); err != nil {
		t.Fatal(err)
	}
	if _, err := env.walker.Translate(env.root, va, AccessRead, true); err != nil {
		t.Fatal(err)
	}
	l1, err := env.b.TableAt(env.root, va, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := Index(va, 1)
	e, err := ReadEntry(env.mem, l1, idx)
	if err != nil {
		t.Fatal(err)
	}
	if e.Flags()&FlagAccessed == 0 {
		t.Error("read did not set the Accessed bit")
	}
	if e.Flags()&FlagDirty != 0 {
		t.Error("read set the Dirty bit")
	}
	if _, err := env.walker.Translate(env.root, va, AccessWrite, true); err != nil {
		t.Fatal(err)
	}
	e, _ = ReadEntry(env.mem, l1, idx)
	if e.Flags()&FlagDirty == 0 {
		t.Error("write did not set the Dirty bit")
	}
}

// denyPTWrites models the hardened policy: no guest write access to
// page-table frames.
type denyPTWrites struct{}

func (denyPTWrites) CheckLeaf(mem *mm.Memory, target mm.MFN, acc Access, guest bool) error {
	if !guest || acc != AccessWrite {
		return nil
	}
	pi, err := mem.Info(target)
	if err != nil {
		return err
	}
	if pi.Type.IsPageTable() {
		return fmt.Errorf("hardened: write to %s frame refused", pi.Type)
	}
	return nil
}

func TestWalkPolicyVeto(t *testing.T) {
	env := newTestEnv(t, 64)
	hardened := NewWalker(env.mem, denyPTWrites{})
	target := env.mustAlloc(t)
	if err := env.mem.GetType(target, mm.TypeL4); err != nil {
		t.Fatal(err)
	}
	const va = 0xffff880000006000
	if err := env.b.Map(env.root, va, target, FlagRW|FlagUser); err != nil {
		t.Fatal(err)
	}
	// The permissive walker allows the write that the PTE flags permit...
	if _, err := env.walker.Translate(env.root, va, AccessWrite, true); err != nil {
		t.Fatalf("permissive walker refused: %v", err)
	}
	// ...the hardened walker vetoes it...
	_, err := hardened.Translate(env.root, va, AccessWrite, true)
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("hardened walker: err = %v, want *Fault", err)
	}
	// ...but still allows reads, and hypervisor-internal writes.
	if _, err := hardened.Translate(env.root, va, AccessRead, true); err != nil {
		t.Errorf("hardened walker refused a read: %v", err)
	}
	if _, err := hardened.Translate(env.root, va, AccessWrite, false); err != nil {
		t.Errorf("hardened walker refused a hypervisor write: %v", err)
	}
}

func TestBuilderTableAt(t *testing.T) {
	env := newTestEnv(t, 64)
	target := env.mustAlloc(t)
	const va = 0xffff880000007000
	if err := env.b.Map(env.root, va, target, FlagRW|FlagUser); err != nil {
		t.Fatal(err)
	}
	if got, err := env.b.TableAt(env.root, va, 4); err != nil || got != env.root {
		t.Errorf("TableAt level 4 = %#x, %v; want root %#x", uint64(got), err, uint64(env.root))
	}
	l1, err := env.b.TableAt(env.root, va, 1)
	if err != nil {
		t.Fatalf("TableAt level 1: %v", err)
	}
	idx, _ := Index(va, 1)
	e, err := ReadEntry(env.mem, l1, idx)
	if err != nil {
		t.Fatal(err)
	}
	if e.MFN() != target {
		t.Errorf("L1 entry points at %#x, want %#x", uint64(e.MFN()), uint64(target))
	}
	if _, err := env.b.TableAt(env.root, 0xffff881000000000, 1); err == nil {
		t.Error("TableAt for unmapped region succeeded")
	}
}

func TestBuilderMapRange(t *testing.T) {
	env := newTestEnv(t, 128)
	base, err := env.mem.AllocRange(5, mm.DomXen)
	if err != nil {
		t.Fatal(err)
	}
	const va = 0xffff880000100000
	if err := env.b.MapRange(env.root, va, base, 5, FlagRW|FlagUser); err != nil {
		t.Fatalf("MapRange: %v", err)
	}
	for i := 0; i < 5; i++ {
		walk, err := env.walker.Translate(env.root, va+uint64(i)*mm.PageSize, AccessRead, true)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if walk.MFN != base+mm.MFN(i) {
			t.Errorf("page %d resolved to %#x, want %#x", i, uint64(walk.MFN), uint64(base+mm.MFN(i)))
		}
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	env := newTestEnv(t, 64)
	if err := env.b.Map(env.root, 0x0000900000000000, 1, FlagRW); err == nil {
		t.Error("Map of non-canonical va succeeded")
	}
	if err := env.b.MapSuperpage(env.root, 0xffff880000001000, 1, FlagRW); err == nil {
		t.Error("MapSuperpage of unaligned va succeeded")
	}
}

func TestBuilderOnTableAllocCallback(t *testing.T) {
	mem, err := mm.NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(mem, func() (mm.MFN, error) { return mem.Alloc(mm.DomXen) })
	levels := make(map[int]int)
	b.OnTableAlloc = func(_ mm.MFN, level int) { levels[level]++ }
	root, err := b.NewRoot()
	if err != nil {
		t.Fatal(err)
	}
	target, _ := mem.Alloc(mm.DomXen)
	if err := b.Map(root, 0xffff880000000000, target, FlagRW); err != nil {
		t.Fatal(err)
	}
	want := map[int]int{4: 1, 3: 1, 2: 1, 1: 1}
	for level, n := range want {
		if levels[level] != n {
			t.Errorf("level %d allocations = %d, want %d", level, levels[level], n)
		}
	}
}

func TestWalkerAllocationFailurePropagates(t *testing.T) {
	mem, err := mm.NewMemory(2)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(mem, func() (mm.MFN, error) { return mem.Alloc(mm.DomXen) })
	root, err := b.NewRoot()
	if err != nil {
		t.Fatal(err)
	}
	// Only one frame left; building a 4-level mapping needs three more.
	if err := b.Map(root, 0xffff880000000000, 0, FlagRW); !errors.Is(err, mm.ErrOutOfMemory) {
		t.Errorf("Map on full machine: err = %v, want ErrOutOfMemory", err)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
