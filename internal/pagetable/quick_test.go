package pagetable

import (
	"testing"
	"testing/quick"

	"repro/internal/mm"
)

// Property: entry pack/unpack round-trips for every frame/flags pair.
func TestQuickEntryRoundTrip(t *testing.T) {
	f := func(rawMFN uint64, rawFlags uint64) bool {
		mfn := mm.MFN(rawMFN & 0xffffffffff) // 40-bit frame numbers
		flags := rawFlags & (0xfff | FlagNX)
		e := NewEntry(mfn, flags)
		return e.MFN() == mfn && e.Flags() == flags
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Compose and Index are inverses for all in-range indexes, and
// Compose always yields canonical addresses.
func TestQuickComposeIndexInverse(t *testing.T) {
	f := func(a, b, c, d uint16, off uint16) bool {
		l4 := int(a) % EntriesPerTable
		l3 := int(b) % EntriesPerTable
		l2 := int(c) % EntriesPerTable
		l1 := int(d) % EntriesPerTable
		offset := uint64(off) % mm.PageSize
		va, err := Compose(l4, l3, l2, l1, offset)
		if err != nil {
			return false
		}
		if !Canonical(va) {
			return false
		}
		for level, want := range map[int]int{4: l4, 3: l3, 2: l2, 1: l1} {
			got, err := Index(va, level)
			if err != nil || got != want {
				return false
			}
		}
		return va&mm.PageMask == offset
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: for any set of mappings installed by the trusted builder, the
// walker resolves each mapped page to exactly the frame that was mapped
// (walker/builder agreement).
func TestQuickWalkerBuilderAgreement(t *testing.T) {
	f := func(pages []uint16) bool {
		mem, err := mm.NewMemory(512)
		if err != nil {
			return false
		}
		b := NewBuilder(mem, func() (mm.MFN, error) { return mem.Alloc(mm.DomXen) })
		root, err := b.NewRoot()
		if err != nil {
			return false
		}
		w := NewWalker(mem, nil)
		installed := make(map[uint64]mm.MFN)
		for _, p := range pages {
			if len(installed) > 40 {
				break
			}
			va, err := Compose(256+int(p%4), int(p/4)%8, int(p/32)%8, int(p)%EntriesPerTable, 0)
			if err != nil {
				return false
			}
			target, err := mem.Alloc(mm.DomXen)
			if err != nil {
				return false
			}
			if err := b.Map(root, va, target, FlagRW|FlagUser); err != nil {
				return false
			}
			installed[va] = target
		}
		for va, want := range installed {
			walk, err := w.Translate(root, va, AccessWrite, true)
			if err != nil || walk.MFN != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the walker never resolves an address whose leaf is absent,
// and never grants a guest write through an entry chain that contains a
// read-only level.
func TestQuickWalkerNeverEscalates(t *testing.T) {
	f := func(roLevel uint8) bool {
		mem, err := mm.NewMemory(128)
		if err != nil {
			return false
		}
		b := NewBuilder(mem, func() (mm.MFN, error) { return mem.Alloc(mm.DomXen) })
		root, err := b.NewRoot()
		if err != nil {
			return false
		}
		target, err := mem.Alloc(mm.DomXen)
		if err != nil {
			return false
		}
		const va = 0xffff880000042000
		if err := b.Map(root, va, target, FlagRW|FlagUser); err != nil {
			return false
		}
		// Clear RW at one arbitrary level of the chain.
		level := int(roLevel)%4 + 1
		table, err := b.TableAt(root, va, level)
		if err != nil {
			return false
		}
		idx, err := Index(va, level)
		if err != nil {
			return false
		}
		e, err := ReadEntry(mem, table, idx)
		if err != nil {
			return false
		}
		if err := WriteEntry(mem, table, idx, e.WithoutFlags(FlagRW)); err != nil {
			return false
		}
		w := NewWalker(mem, nil)
		if _, err := w.Translate(root, va, AccessWrite, true); err == nil {
			return false // write must fault: some level is read-only
		}
		_, err = w.Translate(root, va, AccessRead, true)
		return err == nil // read stays fine
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
