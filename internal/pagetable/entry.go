// Package pagetable models x86-64 long-mode paging as used by a
// paravirtualized hypervisor practicing direct paging: guests write
// page-table entries holding machine frame numbers, and the hypervisor
// validates every update. The package provides the entry codec, virtual
// address geometry, and a 4-level table walker with pluggable access
// policy — the hook through which version-specific hardening (removal of
// writable mappings of page-table frames in the 4.13 profile) is applied.
package pagetable

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/mm"
)

// Entry flag bits, the subset of the x86-64 PTE format the simulator
// honours. Bit positions match the architecture so that values printed in
// experiment logs (e.g. "page_directory[42] = 0x...007") read exactly as
// they would on hardware.
const (
	// FlagPresent (P) marks the entry as valid.
	FlagPresent uint64 = 1 << 0
	// FlagRW allows writes through this entry.
	FlagRW uint64 = 1 << 1
	// FlagUser (U/S) allows user-mode (and, in the PV model, guest
	// kernel ring-3) access.
	FlagUser uint64 = 1 << 2
	// FlagPWT and FlagPCD are cache-control bits, carried but ignored.
	FlagPWT uint64 = 1 << 3
	FlagPCD uint64 = 1 << 4
	// FlagAccessed and FlagDirty are set by the walker on use.
	FlagAccessed uint64 = 1 << 5
	FlagDirty    uint64 = 1 << 6
	// FlagPSE (page size) in an L2 entry maps a 2 MiB superpage. The
	// missing check on this bit in the 4.6 profile is XSA-148.
	FlagPSE uint64 = 1 << 7
	// FlagGlobal is carried but ignored.
	FlagGlobal uint64 = 1 << 8
	// FlagNX (bit 63) forbids instruction fetch through the entry.
	FlagNX uint64 = 1 << 63
)

// addrMask extracts the frame base address from an entry: bits 12..51.
const addrMask uint64 = 0x000ffffffffff000

// flagsMask are the bits Flags() reports: the low attribute bits plus NX.
const flagsMask uint64 = 0xfff | FlagNX

// Entry is one 64-bit page-table entry holding a machine address and
// attribute flags, as written by a PV guest.
type Entry uint64

// NewEntry builds an entry pointing at the given machine frame with the
// given flags.
func NewEntry(mfn mm.MFN, flags uint64) Entry {
	return Entry((uint64(mfn) << mm.PageShift & addrMask) | (flags & flagsMask))
}

// MFN returns the machine frame the entry points at.
func (e Entry) MFN() mm.MFN { return mm.MFN((uint64(e) & addrMask) >> mm.PageShift) }

// Flags returns the attribute bits of the entry.
func (e Entry) Flags() uint64 { return uint64(e) & flagsMask }

// Present reports whether the entry is valid.
func (e Entry) Present() bool { return uint64(e)&FlagPresent != 0 }

// Writable reports whether the entry permits writes.
func (e Entry) Writable() bool { return uint64(e)&FlagRW != 0 }

// User reports whether the entry permits unprivileged access.
func (e Entry) User() bool { return uint64(e)&FlagUser != 0 }

// Superpage reports whether the PSE bit is set.
func (e Entry) Superpage() bool { return uint64(e)&FlagPSE != 0 }

// NoExec reports whether the NX bit is set.
func (e Entry) NoExec() bool { return uint64(e)&FlagNX != 0 }

// WithFlags returns a copy of the entry with the given flag bits set.
func (e Entry) WithFlags(flags uint64) Entry { return e | Entry(flags&flagsMask) }

// WithoutFlags returns a copy of the entry with the given flag bits clear.
func (e Entry) WithoutFlags(flags uint64) Entry { return e &^ Entry(flags&flagsMask) }

// String formats the entry the way the experiment logs print PTEs.
func (e Entry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%#016x", uint64(e))
	if e.Present() {
		b.WriteString(" [P")
		if e.Writable() {
			b.WriteString("|RW")
		}
		if e.User() {
			b.WriteString("|US")
		}
		if e.Superpage() {
			b.WriteString("|PSE")
		}
		if e.NoExec() {
			b.WriteString("|NX")
		}
		b.WriteString("]")
	}
	return b.String()
}

// Virtual address geometry: 48-bit canonical addresses, 9 index bits per
// level, 12 offset bits.
const (
	// EntriesPerTable is the number of entries in one page-table frame.
	EntriesPerTable = 512
	// EntrySize is the size of one entry in bytes.
	EntrySize = 8
	// SuperpageShift is log2 of a 2 MiB L2 superpage.
	SuperpageShift = 21
	// SuperpageSize is the extent mapped by an L2 superpage entry.
	SuperpageSize = 1 << SuperpageShift
)

// Errors reported by the walker.
var (
	// ErrNotCanonical is returned for addresses whose bits 48..63 are not
	// a sign extension of bit 47.
	ErrNotCanonical = errors.New("pagetable: address is not canonical")
	// ErrBadLevel is returned for page-table levels outside 1..4.
	ErrBadLevel = errors.New("pagetable: level out of range")
	// ErrBadIndex is returned for table indexes outside 0..511.
	ErrBadIndex = errors.New("pagetable: index out of range")
)

// Canonical reports whether va is a valid 48-bit sign-extended address.
func Canonical(va uint64) bool {
	top := va >> 47
	return top == 0 || top == 0x1ffff
}

// Index returns the 9-bit table index of va at the given level (1..4).
func Index(va uint64, level int) (int, error) {
	if level < 1 || level > 4 {
		return 0, fmt.Errorf("%w: %d", ErrBadLevel, level)
	}
	shift := mm.PageShift + 9*(level-1)
	return int(va >> shift & (EntriesPerTable - 1)), nil
}

// Compose builds the canonical virtual address addressed by the four
// table indexes and page offset. It is the inverse of Index and is used
// by exploits to craft addresses that resolve through attacker-linked
// tables.
func Compose(l4, l3, l2, l1 int, offset uint64) (uint64, error) {
	for _, idx := range []int{l4, l3, l2, l1} {
		if idx < 0 || idx >= EntriesPerTable {
			return 0, fmt.Errorf("%w: %d", ErrBadIndex, idx)
		}
	}
	if offset >= mm.PageSize {
		return 0, fmt.Errorf("pagetable: offset %#x exceeds page size", offset)
	}
	va := uint64(l4)<<39 | uint64(l3)<<30 | uint64(l2)<<21 | uint64(l1)<<12 | offset
	// Sign-extend bit 47.
	if va&(1<<47) != 0 {
		va |= 0xffff << 48
	}
	return va, nil
}

// EntryAddr returns the machine-physical address of entry idx in the
// table frame.
func EntryAddr(table mm.MFN, idx int) (mm.PhysAddr, error) {
	if idx < 0 || idx >= EntriesPerTable {
		return 0, fmt.Errorf("%w: %d", ErrBadIndex, idx)
	}
	return table.Addr() + mm.PhysAddr(idx*EntrySize), nil
}

// ReadEntry loads entry idx of the table frame from machine memory.
func ReadEntry(mem *mm.Memory, table mm.MFN, idx int) (Entry, error) {
	addr, err := EntryAddr(table, idx)
	if err != nil {
		return 0, err
	}
	v, err := mem.ReadU64(addr)
	if err != nil {
		return 0, err
	}
	return Entry(v), nil
}

// WriteEntry stores entry idx of the table frame to machine memory. This
// is the raw store; validated updates go through the hypervisor's
// mmu_update path.
func WriteEntry(mem *mm.Memory, table mm.MFN, idx int, e Entry) error {
	addr, err := EntryAddr(table, idx)
	if err != nil {
		return err
	}
	return mem.WriteU64(addr, uint64(e))
}
