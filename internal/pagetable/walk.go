package pagetable

import (
	"fmt"

	"repro/internal/mm"
	"repro/internal/telemetry"
)

// Access is the kind of memory access a walk authorizes.
type Access uint8

// Access kinds.
const (
	// AccessRead is a data read.
	AccessRead Access = iota + 1
	// AccessWrite is a data write.
	AccessWrite
	// AccessExec is an instruction fetch.
	AccessExec
)

// String returns the short name of the access kind.
func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	default:
		return fmt.Sprintf("Access(%d)", uint8(a))
	}
}

// Fault describes a page-translation failure: the simulated #PF. The CPU
// layer turns it into exception delivery; guest kernels report it as an
// "unable to handle page request" oops, matching the failure mode the
// paper observes for the original PoCs on fixed versions.
type Fault struct {
	// VA is the faulting virtual address (CR2).
	VA uint64
	// Access is the attempted access kind.
	Access Access
	// Level is the page-table level at which the walk failed (4..1), or
	// 0 for failures not tied to a level (non-canonical, policy denial).
	Level int
	// Reason is a human-readable cause for experiment logs.
	Reason string
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if f.Level > 0 {
		return fmt.Sprintf("page fault: %s of %#x denied at L%d: %s", f.Access, f.VA, f.Level, f.Reason)
	}
	return fmt.Sprintf("page fault: %s of %#x denied: %s", f.Access, f.VA, f.Reason)
}

// Policy is the version-dependent access policy consulted at the end of a
// successful flag walk. The 4.13 hardening profile uses it to refuse
// guest write access to frames validated as page tables even when the
// PTE flags would allow the write (the XSA-213..315 follow-up measures);
// earlier profiles install a permissive policy.
type Policy interface {
	// CheckLeaf may veto an access that the PTE flags permit. target is
	// the machine frame the walk resolved to; guestInitiated
	// distinguishes guest accesses from hypervisor-internal ones.
	CheckLeaf(mem *mm.Memory, target mm.MFN, acc Access, guestInitiated bool) error
}

// PermissivePolicy accepts every access the PTE flags allow; it models
// the pre-hardening profiles (4.6, 4.8).
type PermissivePolicy struct{}

var _ Policy = PermissivePolicy{}

// CheckLeaf implements Policy by always allowing the access.
func (PermissivePolicy) CheckLeaf(*mm.Memory, mm.MFN, Access, bool) error { return nil }

// Walk records the outcome of a successful translation: every entry
// consulted, the accumulated permissions, and the target machine address.
// The erroneous-state auditors use it to compare the page linkage induced
// by exploits against the one produced by injection ("a page-table walk
// to audit the same erroneous state was performed", Section VI-C).
type Walk struct {
	// VA is the translated virtual address.
	VA uint64
	// Tables[i] is the frame of the level-(4-i) table consulted, so
	// Tables[0] is the L4 root.
	Tables []mm.MFN
	// Entries[i] is the entry read from Tables[i].
	Entries []Entry
	// Superpage reports whether translation ended at a 2 MiB L2 leaf.
	Superpage bool
	// MFN is the target machine frame.
	MFN mm.MFN
	// Phys is the full target machine-physical address.
	Phys mm.PhysAddr
	// Writable, User and NoExec are the permissions accumulated across
	// all consulted levels.
	Writable bool
	User     bool
	NoExec   bool
}

// Walker translates virtual addresses through a page-table tree in
// machine memory, applying the architecture's flag semantics and the
// installed policy.
type Walker struct {
	mem    *mm.Memory
	policy Policy
	tel    *telemetry.Recorder
}

// NewWalker creates a walker over the machine. A nil policy means
// permissive.
func NewWalker(mem *mm.Memory, policy Policy) *Walker {
	if policy == nil {
		policy = PermissivePolicy{}
	}
	return &Walker{mem: mem, policy: policy}
}

// AttachTelemetry installs the walker's telemetry sink; nil disables.
// Faults are counted; policy vetoes additionally emit a walk_denied
// event, since those are the hardening decisions an assessment audits.
func (w *Walker) AttachTelemetry(r *telemetry.Recorder) { w.tel = r }

// Translate walks the tree rooted at root for va. guestInitiated marks
// accesses performed on behalf of guest code (subject to the U/S bit and
// the policy) as opposed to hypervisor-internal accesses. A/D bits are
// written back on success, mirroring hardware behaviour; flag-only A/D
// updates are precisely the "safe" changes the XSA-182 fast path was
// meant to allow.
func (w *Walker) Translate(root mm.MFN, va uint64, acc Access, guestInitiated bool) (*Walk, error) {
	walk, err := w.translate(root, va, acc, guestInitiated)
	if err != nil {
		w.tel.WalkFault()
	}
	return walk, err
}

func (w *Walker) translate(root mm.MFN, va uint64, acc Access, guestInitiated bool) (*Walk, error) {
	if !Canonical(va) {
		return nil, &Fault{VA: va, Access: acc, Reason: "non-canonical address"}
	}
	if !w.mem.ValidMFN(root) {
		return nil, &Fault{VA: va, Access: acc, Level: 4, Reason: "page-table root outside machine memory"}
	}
	walk := &Walk{
		VA:       va,
		Tables:   make([]mm.MFN, 0, 4),
		Entries:  make([]Entry, 0, 4),
		Writable: true,
		User:     true,
	}
	table := root
	for level := 4; level >= 1; level-- {
		idx, err := Index(va, level)
		if err != nil {
			return nil, err
		}
		e, err := ReadEntry(w.mem, table, idx)
		if err != nil {
			return nil, &Fault{VA: va, Access: acc, Level: level, Reason: fmt.Sprintf("table frame unreadable: %v", err)}
		}
		walk.Tables = append(walk.Tables, table)
		walk.Entries = append(walk.Entries, e)
		if !e.Present() {
			return nil, &Fault{VA: va, Access: acc, Level: level, Reason: "entry not present"}
		}
		walk.Writable = walk.Writable && e.Writable()
		walk.User = walk.User && e.User()
		walk.NoExec = walk.NoExec || e.NoExec()
		if !w.mem.ValidMFN(e.MFN()) {
			return nil, &Fault{VA: va, Access: acc, Level: level, Reason: "entry references frame outside machine memory"}
		}
		if level == 2 && e.Superpage() {
			// 2 MiB leaf: frame = base + L1 index.
			l1, err := Index(va, 1)
			if err != nil {
				return nil, err
			}
			walk.Superpage = true
			walk.MFN = e.MFN() + mm.MFN(l1)
			if !w.mem.ValidMFN(walk.MFN) {
				return nil, &Fault{VA: va, Access: acc, Level: level, Reason: "superpage extends past machine memory"}
			}
			break
		}
		if level == 1 {
			walk.MFN = e.MFN()
			break
		}
		table = e.MFN()
	}
	walk.Phys = walk.MFN.Addr() + mm.PhysAddr(va&mm.PageMask)
	if err := w.check(walk, acc, guestInitiated); err != nil {
		return nil, err
	}
	w.setAccessedDirty(walk, acc)
	return walk, nil
}

func (w *Walker) check(walk *Walk, acc Access, guestInitiated bool) error {
	if guestInitiated && !walk.User {
		return &Fault{VA: walk.VA, Access: acc, Reason: "supervisor-only mapping"}
	}
	switch acc {
	case AccessWrite:
		if !walk.Writable {
			return &Fault{VA: walk.VA, Access: acc, Reason: "read-only mapping"}
		}
	case AccessExec:
		if walk.NoExec {
			return &Fault{VA: walk.VA, Access: acc, Reason: "no-execute mapping"}
		}
	case AccessRead:
		// Present is sufficient.
	default:
		return fmt.Errorf("pagetable: unknown access kind %d", acc)
	}
	if err := w.policy.CheckLeaf(w.mem, walk.MFN, acc, guestInitiated); err != nil {
		w.tel.WalkDenied(walk.VA, err.Error())
		return &Fault{VA: walk.VA, Access: acc, Reason: err.Error()}
	}
	return nil
}

// setAccessedDirty writes A bits on every consulted entry and the D bit
// on the leaf for writes. Failures are ignored: the entries were just
// read successfully, and A/D write-back is best-effort on hardware too.
func (w *Walker) setAccessedDirty(walk *Walk, acc Access) {
	for i, e := range walk.Entries {
		level := 4 - i
		idx, err := Index(walk.VA, level)
		if err != nil {
			return
		}
		updated := e.WithFlags(FlagAccessed)
		leaf := i == len(walk.Entries)-1
		if leaf && acc == AccessWrite {
			updated = updated.WithFlags(FlagDirty)
		}
		if updated != e {
			_ = WriteEntry(w.mem, walk.Tables[i], idx, updated)
			walk.Entries[i] = updated
		}
	}
}
