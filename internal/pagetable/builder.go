package pagetable

import (
	"fmt"

	"repro/internal/mm"
)

// FrameSource supplies zeroed frames to the Builder for intermediate
// tables. The hypervisor's domain builder passes an allocator that also
// records frame-table types; tests pass a plain allocation closure.
type FrameSource func() (mm.MFN, error)

// Builder constructs page-table trees directly in machine memory. It is
// the trusted-path constructor used at boot and by the domain builder —
// no validation happens here because the hypervisor itself is the author.
// Runtime updates coming from guests go through the hypervisor's
// validated mmu_update path instead.
type Builder struct {
	mem   *mm.Memory
	alloc FrameSource
	// OnTableAlloc, when set, is told about every intermediate table
	// frame the builder creates and the level (1..4) it serves.
	OnTableAlloc func(mfn mm.MFN, level int)
}

// NewBuilder creates a builder over the machine with the given frame
// source.
func NewBuilder(mem *mm.Memory, alloc FrameSource) *Builder {
	return &Builder{mem: mem, alloc: alloc}
}

// NewRoot allocates and returns a fresh, empty L4 root.
func (b *Builder) NewRoot() (mm.MFN, error) {
	mfn, err := b.alloc()
	if err != nil {
		return 0, fmt.Errorf("pagetable: allocating L4 root: %w", err)
	}
	if b.OnTableAlloc != nil {
		b.OnTableAlloc(mfn, 4)
	}
	return mfn, nil
}

// Map installs a 4 KiB translation va -> mfn with the given leaf flags,
// creating intermediate tables as needed. Intermediate entries get
// P|RW|US so that leaf flags alone decide effective permissions; this is
// how both Linux-style guest kernels and the hypervisor's own mappings
// are commonly laid out.
func (b *Builder) Map(root mm.MFN, va uint64, mfn mm.MFN, flags uint64) error {
	if !Canonical(va) {
		return fmt.Errorf("%w: %#x", ErrNotCanonical, va)
	}
	table := root
	for level := 4; level >= 2; level-- {
		next, err := b.descend(table, va, level)
		if err != nil {
			return err
		}
		table = next
	}
	idx, err := Index(va, 1)
	if err != nil {
		return err
	}
	return WriteEntry(b.mem, table, idx, NewEntry(mfn, flags|FlagPresent))
}

// MapSuperpage installs a 2 MiB L2 superpage leaf covering va. The base
// frame maps the start of the aligned 2 MiB region.
func (b *Builder) MapSuperpage(root mm.MFN, va uint64, base mm.MFN, flags uint64) error {
	if !Canonical(va) {
		return fmt.Errorf("%w: %#x", ErrNotCanonical, va)
	}
	if va&(SuperpageSize-1) != 0 {
		return fmt.Errorf("pagetable: superpage va %#x not 2MiB-aligned", va)
	}
	table := root
	for level := 4; level >= 3; level-- {
		next, err := b.descend(table, va, level)
		if err != nil {
			return err
		}
		table = next
	}
	idx, err := Index(va, 2)
	if err != nil {
		return err
	}
	return WriteEntry(b.mem, table, idx, NewEntry(base, flags|FlagPresent|FlagPSE))
}

// MapRange installs n consecutive 4 KiB translations starting at va for
// frames base, base+1, ...
func (b *Builder) MapRange(root mm.MFN, va uint64, base mm.MFN, n int, flags uint64) error {
	for i := 0; i < n; i++ {
		if err := b.Map(root, va+uint64(i)*mm.PageSize, base+mm.MFN(i), flags); err != nil {
			return fmt.Errorf("pagetable: mapping page %d of range: %w", i, err)
		}
	}
	return nil
}

// TableAt returns the table frame serving the given level (4..1) for va,
// without creating anything. Exploits use it to locate the exact L2/L3
// frames whose entries they corrupt.
func (b *Builder) TableAt(root mm.MFN, va uint64, level int) (mm.MFN, error) {
	return TableFor(b.mem, root, va, level)
}

// TableFor walks the tree rooted at root down to the table frame serving
// the given level (4..1) for va, without creating anything.
func TableFor(mem *mm.Memory, root mm.MFN, va uint64, level int) (mm.MFN, error) {
	if level < 1 || level > 4 {
		return 0, fmt.Errorf("%w: %d", ErrBadLevel, level)
	}
	table := root
	for cur := 4; cur > level; cur-- {
		idx, err := Index(va, cur)
		if err != nil {
			return 0, err
		}
		e, err := ReadEntry(mem, table, idx)
		if err != nil {
			return 0, err
		}
		if !e.Present() {
			return 0, fmt.Errorf("pagetable: no L%d table for %#x (L%d entry not present)", level, va, cur)
		}
		table = e.MFN()
	}
	return table, nil
}

// LeafEntryAddr returns the machine-physical address of the level-1
// entry translating va under root — the "PTE machine address" that
// mmu_update takes and that attacks target.
func LeafEntryAddr(mem *mm.Memory, root mm.MFN, va uint64) (mm.PhysAddr, error) {
	l1, err := TableFor(mem, root, va, 1)
	if err != nil {
		return 0, err
	}
	idx, err := Index(va, 1)
	if err != nil {
		return 0, err
	}
	return EntryAddr(l1, idx)
}

func (b *Builder) descend(table mm.MFN, va uint64, level int) (mm.MFN, error) {
	idx, err := Index(va, level)
	if err != nil {
		return 0, err
	}
	e, err := ReadEntry(b.mem, table, idx)
	if err != nil {
		return 0, err
	}
	if e.Present() {
		if e.Superpage() {
			return 0, fmt.Errorf("pagetable: L%d entry for %#x is a superpage leaf", level, va)
		}
		return e.MFN(), nil
	}
	next, err := b.alloc()
	if err != nil {
		return 0, fmt.Errorf("pagetable: allocating L%d table: %w", level-1, err)
	}
	if b.OnTableAlloc != nil {
		b.OnTableAlloc(next, level-1)
	}
	if err := WriteEntry(b.mem, table, idx, NewEntry(next, FlagPresent|FlagRW|FlagUser)); err != nil {
		return 0, err
	}
	return next, nil
}
