package pagetable

import (
	"testing"
	"testing/quick"

	"repro/internal/mm"
)

func TestTLBBasicHitMiss(t *testing.T) {
	tlb := NewTLB(4)
	if !tlb.Enabled() {
		t.Fatal("not enabled")
	}
	if _, ok := tlb.Lookup(0x1000); ok {
		t.Error("hit on empty cache")
	}
	tlb.Insert(0x1234, TLBEntry{Frame: 7, Writable: true, User: true})
	e, ok := tlb.Lookup(0x1fff) // same page
	if !ok || e.Frame != 7 || !e.Writable {
		t.Errorf("lookup = %+v, %v", e, ok)
	}
	if _, ok := tlb.Lookup(0x2000); ok {
		t.Error("hit on a different page")
	}
	stats := tlb.Stats()
	if stats.Hits != 1 || stats.Misses != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestTLBFIFOEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(0x1000, TLBEntry{Frame: 1})
	tlb.Insert(0x2000, TLBEntry{Frame: 2})
	tlb.Insert(0x3000, TLBEntry{Frame: 3}) // evicts 0x1000
	if _, ok := tlb.Lookup(0x1000); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := tlb.Lookup(0x2000); !ok {
		t.Error("second entry evicted prematurely")
	}
	if tlb.Len() != 2 {
		t.Errorf("len = %d", tlb.Len())
	}
	// Reinserting an existing page must not duplicate it.
	tlb.Insert(0x2000, TLBEntry{Frame: 22})
	if tlb.Len() != 2 {
		t.Errorf("len after reinsert = %d", tlb.Len())
	}
	if e, _ := tlb.Lookup(0x2000); e.Frame != 22 {
		t.Errorf("reinsert did not update: %+v", e)
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(8)
	for i := uint64(0); i < 5; i++ {
		tlb.Insert(i<<12, TLBEntry{Frame: mm.MFN(i)})
	}
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Errorf("len after flush = %d", tlb.Len())
	}
	if tlb.Stats().Flushes != 1 {
		t.Errorf("flushes = %d", tlb.Stats().Flushes)
	}
}

func TestTLBFlushVA(t *testing.T) {
	tlb := NewTLB(8)
	tlb.Insert(0x1000, TLBEntry{Frame: 1})
	tlb.Insert(0x2000, TLBEntry{Frame: 2})
	tlb.FlushVA(0x1abc) // same page as 0x1000
	if _, ok := tlb.Lookup(0x1000); ok {
		t.Error("invlpg missed the page")
	}
	if _, ok := tlb.Lookup(0x2000); !ok {
		t.Error("invlpg hit the wrong page")
	}
	// Flushing an absent page is a no-op.
	tlb.FlushVA(0x9000)
	if tlb.Len() != 1 {
		t.Errorf("len = %d", tlb.Len())
	}
}

func TestTLBDisabled(t *testing.T) {
	tlb := NewTLB(0)
	if tlb.Enabled() {
		t.Fatal("capacity 0 should disable")
	}
	tlb.Insert(0x1000, TLBEntry{Frame: 1})
	if _, ok := tlb.Lookup(0x1000); ok {
		t.Error("disabled cache produced a hit")
	}
	tlb.Flush()
	tlb.FlushVA(0x1000)
	if tlb.Len() != 0 {
		t.Errorf("len = %d", tlb.Len())
	}
}

// Property: the cache never exceeds its capacity and a flush always
// empties it, for arbitrary insert/flush interleavings.
func TestQuickTLBCapacityInvariant(t *testing.T) {
	f := func(ops []uint16, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		tlb := NewTLB(capacity)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1, 2:
				tlb.Insert(uint64(op)<<12, TLBEntry{Frame: mm.MFN(op)})
			case 3:
				tlb.Flush()
				if tlb.Len() != 0 {
					return false
				}
			}
			if tlb.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
