package pagetable_test

import (
	"fmt"

	"repro/internal/pagetable"
)

// Entries print the way the experiment transcripts show PTEs — the
// XSA-182 success line "page_directory[42] = 0x...007" is this format.
func ExampleEntry_String() {
	e := pagetable.NewEntry(0x82da9, pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser)
	fmt.Println(e)
	// Output:
	// 0x0000000082da9007 [P|RW|US]
}

// Compose crafts the recursive self-mapping address the XSA-182 test
// uses: all four levels index the same slot.
func ExampleCompose() {
	va, _ := pagetable.Compose(42, 42, 42, 42, 42*pagetable.EntrySize)
	fmt.Printf("%#x\n", va)
	idx, _ := pagetable.Index(va, 4)
	fmt.Println("L4 index:", idx)
	// Output:
	// 0x150a8542a150
	// L4 index: 42
}
