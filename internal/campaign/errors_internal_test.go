package campaign

import (
	"context"
	"strings"
	"testing"

	"repro/internal/hv"
	"repro/internal/telemetry"
)

// The failure-semantics contract of runCells: serial (Workers: 1) and
// parallel pools agree exactly on a partially failing batch — every
// valid cell still runs to completion, and the first error in cell
// order is the one reported. The serial path used to stop at the first
// failing cell, which made a -workers 1 rerun of a failing campaign
// see strictly less of the batch than the parallel run it was meant to
// debug.

// batchWithFailures puts bogus use cases in the middle and at the end,
// with valid cells after the first failure.
func batchWithFailures() []cell {
	v := hv.Version46()
	return []cell{
		{v, "XSA-182-test", ModeExploit},
		{v, "no-such-use-case", ModeExploit},
		{v, "XSA-182-test", ModeInjection},
		{v, "also-missing", ModeInjection},
		{v, "XSA-148-priv", ModeExploit},
	}
}

func runBatch(t *testing.T, workers int) (string, uint64) {
	t.Helper()
	reg := telemetry.NewRegistry()
	r := &Runner{Workers: workers, Telemetry: reg}
	_, _, err := r.runCells(context.Background(), batchWithFailures(), func(c cell, err error) error {
		return err
	})
	if err == nil {
		t.Fatalf("workers=%d: batch with bogus cells succeeded", workers)
	}
	var completed uint64
	for _, h := range reg.Histograms() {
		if h.Name == telemetry.CellWallHistogram {
			completed = h.Count
		}
	}
	return err.Error(), completed
}

func TestSerialAndParallelFailureSemanticsAgree(t *testing.T) {
	serialErr, serialDone := runBatch(t, 1)
	if !strings.Contains(serialErr, "no-such-use-case") {
		t.Errorf("serial error %q does not name the first failing cell in cell order", serialErr)
	}
	// All three valid cells completed despite the failure at index 1.
	if serialDone != 3 {
		t.Errorf("serial path completed %d cells, want 3 (must not stop at first failure)", serialDone)
	}
	for _, w := range []int{2, 4} {
		parallelErr, parallelDone := runBatch(t, w)
		if parallelErr != serialErr {
			t.Errorf("workers=%d error %q != serial error %q", w, parallelErr, serialErr)
		}
		if parallelDone != serialDone {
			t.Errorf("workers=%d completed %d cells, serial completed %d", w, parallelDone, serialDone)
		}
	}
}
