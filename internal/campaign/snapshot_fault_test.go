package campaign

// Fault-plane interaction with the snapshot cache, from inside the
// package so the pool and cache internals are checkable: faults armed
// on a forked cell fire in the fork only and never corrupt the shared
// snapshot, boot-window faults force a fresh boot, and poisoned forks
// are abandoned to the collector instead of returning to the pool.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/hv"
)

// poolVersion returns a version profile with a private name, so each
// test gets its own snapshot-cache entry and pool.
func poolVersion(t *testing.T) hv.Version {
	v := hv.Version46()
	v.Name = "4.6#" + t.Name()
	return v
}

func TestCleanForkReturnsToPool(t *testing.T) {
	v := poolVersion(t)
	s := snapshotFor(campaignPlan(), v, ModeExploit)
	if s.err != nil {
		t.Fatal(s.err)
	}
	if got := s.ms.PoolSize(); got != 0 {
		t.Fatalf("fresh snapshot pool size %d, want 0", got)
	}
	if _, err := runCell(cell{version: v, useCase: "XSA-182-test", mode: ModeExploit}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.ms.PoolSize(); got != 1 {
		t.Errorf("pool size %d after a clean cell, want 1 (fork recycled)", got)
	}
}

func TestPanickedForkIsAbandonedNotPooled(t *testing.T) {
	v := poolVersion(t)
	s := snapshotFor(campaignPlan(), v, ModeExploit)
	if s.err != nil {
		t.Fatal(s.err)
	}
	id := v.Name + "/XSA-182-test/exploit"
	// Prime the pool with one clean run, so the panicking cell provably
	// consumes the pooled fork and fails to return it.
	if _, err := runCell(cell{version: v, useCase: "XSA-182-test", mode: ModeExploit}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.ms.PoolSize(); got != 1 {
		t.Fatalf("pool size %d after priming, want 1", got)
	}
	plan := faults.NewPlan(0, 0).ArmCell(id, faults.SiteHypercallPanic, 1)
	r := &Runner{Workers: 1, Faults: plan}
	_, err := r.Run(v, "XSA-182-test", ModeExploit)
	var ce *CellError
	if !errors.As(err, &ce) || ce.Class != FailPanic {
		t.Fatalf("err = %v, want a FailPanic record", err)
	}
	if got := s.ms.PoolSize(); got != 0 {
		t.Errorf("pool size %d after a panicked cell, want 0 (poisoned fork abandoned)", got)
	}
	// The snapshot itself is uncorrupted: the next clean run succeeds
	// and recycles a fresh fork.
	if _, err := runCell(cell{version: v, useCase: "XSA-182-test", mode: ModeExploit}, nil, nil); err != nil {
		t.Fatalf("clean run after panicked fork: %v", err)
	}
	if got := s.ms.PoolSize(); got != 1 {
		t.Errorf("pool size %d after recovery run, want 1", got)
	}
}

func TestWedgedForkIsAbandonedNotPooled(t *testing.T) {
	v := poolVersion(t)
	s := snapshotFor(campaignPlan(), v, ModeExploit)
	if s.err != nil {
		t.Fatal(s.err)
	}
	id := v.Name + "/XSA-182-test/exploit"
	plan := faults.NewPlan(0, 0).ArmCell(id, faults.SiteWedge, 1)
	r := &Runner{Workers: 1, CellTimeout: 50 * time.Millisecond, Faults: plan}
	_, err := r.Run(v, "XSA-182-test", ModeExploit)
	var ce *CellError
	if !errors.As(err, &ce) || ce.Class != FailHang {
		t.Fatalf("err = %v, want a FailHang record", err)
	}
	plan.ReleaseAll()
	// Give the released goroutine a moment to drain; it must not
	// recycle its fork even after release (its runCellWith unwound
	// through the wedged hypercall's error path).
	time.Sleep(50 * time.Millisecond)
	if got := s.ms.PoolSize(); got != 0 {
		t.Errorf("pool size %d after a wedged cell, want 0", got)
	}
	if _, err := runCell(cell{version: v, useCase: "XSA-182-test", mode: ModeExploit}, nil, nil); err != nil {
		t.Fatalf("clean run after wedged fork: %v", err)
	}
}

// TestBootWindowAllocFaultBootsFresh: a SiteAlloc rule armed inside the
// boot's consult budget must not fork — the fault belongs in the cell's
// own boot — and must reproduce the fresh-boot failure exactly.
func TestBootWindowAllocFaultBootsFresh(t *testing.T) {
	v := poolVersion(t)
	s := snapshotFor(campaignPlan(), v, ModeExploit)
	if s.err != nil {
		t.Fatal(s.err)
	}
	if s.ms.BootAllocConsults() == 0 {
		t.Fatal("boot recorded no alloc consults; the boot-window check is vacuous")
	}
	run := func() string {
		inj := faults.NewInjector().Arm(faults.SiteAlloc, 1)
		_, err := runCell(cell{version: v, useCase: "XSA-182-test", mode: ModeExploit}, nil, inj)
		if err == nil {
			t.Fatal("boot-window alloc fault did not fail the cell")
		}
		if !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("boot failure %v does not unwrap to ErrInjected", err)
		}
		return err.Error()
	}
	forked := run()
	EnableSnapshots(false)
	defer EnableSnapshots(true)
	fresh := run()
	if forked != fresh {
		t.Errorf("boot-window failure differs between paths\nsnapshots on:  %s\nsnapshots off: %s", forked, fresh)
	}
	if got := s.ms.PoolSize(); got != 0 {
		t.Errorf("pool size %d, want 0 (boot-window cells never fork)", got)
	}
}

// TestPostBootAllocFaultFiresInForkOnly: a SiteAlloc rule armed beyond
// the boot window fires inside the forked cell's attack phase (the
// XSA-212 exploit primitive allocates via populate_physmap/exchange)
// and the shared snapshot stays pristine for the next cell.
func TestPostBootAllocFaultFiresInForkOnly(t *testing.T) {
	v := poolVersion(t)
	s := snapshotFor(campaignPlan(), v, ModeExploit)
	if s.err != nil {
		t.Fatal(s.err)
	}
	boot := s.ms.BootAllocConsults()
	inj := faults.NewInjector().Arm(faults.SiteAlloc, boot+1)
	c := cell{version: v, useCase: "XSA-212-crash", mode: ModeExploit}
	res, err := runCell(c, nil, inj)
	if err != nil {
		t.Fatalf("post-boot fault should land in the outcome, not fail the cell: %v", err)
	}
	// The hv layer collapses causes into its ABI errors (%v, not %w), so
	// match the injected-fault marker in the message.
	if res.Outcome.Err == nil || !strings.Contains(res.Outcome.Err.Error(), "faults: injected fault") {
		t.Fatalf("outcome error = %v, want an injected allocation failure", res.Outcome.Err)
	}
	// The same cell with no faults reproduces the pristine result.
	clean, err := runCell(c, nil, nil)
	if err != nil {
		t.Fatalf("clean run after faulted fork: %v", err)
	}
	if clean.Outcome.Err != nil {
		t.Errorf("clean run inherited an error from the faulted fork: %v", clean.Outcome.Err)
	}
	if !clean.Verdict.ErroneousState {
		t.Error("clean exploit run did not reach its erroneous state; the snapshot was corrupted")
	}
}

// TestForkHangFiresInForkOnly: a forced hang on a forked cell leaves
// the hang state in that fork's hypervisor; a sibling fork from the
// same snapshot is healthy.
func TestForkHangFiresInForkOnly(t *testing.T) {
	v := poolVersion(t)
	s := snapshotFor(campaignPlan(), v, ModeExploit)
	if s.err != nil {
		t.Fatal(s.err)
	}
	inj := faults.NewInjector().Arm(faults.SiteHang, 1)
	e1, _, err := s.forkEnvironment(nil, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	env, err := e1.ScenarioEnv(ModeExploit)
	if err != nil {
		t.Fatal(err)
	}
	scen := campaignPlan().scenarios["XSA-182-test"]
	if out := scen.Run(env); out == nil {
		t.Fatal("scenario produced no outcome")
	}
	if !e1.HV.Hung() {
		t.Fatal("armed hang fault never fired in the fork")
	}
	e2, recycle, err := s.forkEnvironment(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e2.HV.Hung() {
		t.Error("hang state leaked from one fork into its sibling")
	}
	if strings.Contains(strings.Join(e2.HV.Console(), "\n"), "injected hang") {
		t.Error("fork 1's console output leaked into fork 2")
	}
	recycle()
}
