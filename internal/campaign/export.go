package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/exploits"
	"repro/internal/telemetry"
)

// The export format: a stable JSON artifact a paper-reproduction package
// ships alongside its tables, so downstream tooling can diff campaign
// results across code revisions without parsing rendered text.

// ExportedRun is the JSON form of one (version, use case, mode) result.
type ExportedRun struct {
	Version           string   `json:"version"`
	UseCase           string   `json:"use_case"`
	Mode              string   `json:"mode"`
	ErroneousState    bool     `json:"erroneous_state"`
	SecurityViolation bool     `json:"security_violation"`
	Handled           bool     `json:"handled"`
	ScriptError       string   `json:"script_error,omitempty"`
	Transcript        []string `json:"transcript"`
	Evidence          []string `json:"evidence"`

	// Telemetry fields, populated only when the campaign ran under a
	// profiling Runner — omitted otherwise so artifacts produced without
	// telemetry are byte-identical to earlier revisions. Counters are
	// deterministic for a cell at any worker count; WallNS is not.
	WallNS        int64                    `json:"wall_ns,omitempty"`
	Counters      []telemetry.CounterValue `json:"counters,omitempty"`
	DroppedEvents uint64                   `json:"dropped_events,omitempty"`

	// Error is the cell's failure record, present only for cells that
	// failed under a ContinueOnError campaign — default campaigns never
	// emit it, keeping their artifacts byte-identical to earlier
	// revisions.
	Error *CellError `json:"error,omitempty"`
}

// ExportedCampaign is the top-level artifact.
type ExportedCampaign struct {
	Paper   string        `json:"paper"`
	Machine string        `json:"machine"`
	Runs    []ExportedRun `json:"runs"`
	Scores  []Score       `json:"scores,omitempty"`

	// Chaos metadata, present only when the campaign ran under a fault
	// plan and/or ContinueOnError — omitted otherwise so default
	// artifacts are byte-identical to earlier revisions.
	FaultPlanSeed   int64 `json:"fault_plan_seed,omitempty"`
	ContinueOnError bool  `json:"continue_on_error,omitempty"`
}

// exportRun converts one result; exactly one of res and cerr is set.
func exportRun(version, useCase string, mode Mode, res *RunResult, cerr *CellError) ExportedRun {
	out := ExportedRun{
		Version: version,
		UseCase: useCase,
		Mode:    string(mode),
	}
	if cerr != nil {
		out.Error = cerr
		return out
	}
	out.ErroneousState = res.Verdict.ErroneousState
	out.SecurityViolation = res.Verdict.SecurityViolation
	out.Handled = res.Verdict.Handled
	out.Transcript = res.Outcome.Log
	out.Evidence = res.Verdict.Evidence
	if res.Outcome.Err != nil {
		out.ScriptError = res.Outcome.Err.Error()
	}
	if p := res.Profile; p != nil {
		out.WallNS = p.WallNS
		out.Counters = p.Counters
		out.DroppedEvents = p.DroppedEvents
	}
	return out
}

// ExportMatrix runs the full campaign serially and writes the JSON
// artifact, including the per-version security-benchmark scores. Use a
// Runner's ExportMatrix to spread the runs over a worker pool.
func ExportMatrix(w io.Writer) error {
	return (&Runner{Workers: 1}).ExportMatrix(w)
}

// ExportMatrix runs the full campaign across the pool and writes the
// JSON artifact, including the per-version security-benchmark scores.
func (r *Runner) ExportMatrix(w io.Writer) error {
	return r.ExportMatrixContext(context.Background(), w)
}

// ExportMatrixContext is ExportMatrix under a context. Under
// ContinueOnError the artifact always materializes: failed cells carry
// their per-cell error records, and the benchmark scores are omitted
// when the benchmark's own cells fail (the per-cell records already
// describe the failures).
func (r *Runner) ExportMatrixContext(ctx context.Context, w io.Writer) error {
	return r.exportMatrixSpecs(ctx, w, nil)
}

// ExportMatrixSpecs is ExportMatrixContext scoped to an explicit
// registry subset, like RunMatrixSpecs. The seed-identity regression
// uses it to re-derive the frozen pre-expansion JSON artifact.
func (r *Runner) ExportMatrixSpecs(ctx context.Context, w io.Writer, specs []exploits.Spec) error {
	return r.exportMatrixSpecs(ctx, w, specs)
}

// exportMatrixSpecs materializes the artifact; a nil spec list means the
// full registry.
func (r *Runner) exportMatrixSpecs(ctx context.Context, w io.Writer, specs []exploits.Spec) error {
	if specs == nil {
		specs = campaignPlan().specs
	}
	entries, err := r.runMatrixSpecs(ctx, specs)
	if err != nil {
		return err
	}
	scores, err := r.securityBenchmarkSpecs(ctx, specs)
	if err != nil {
		if !r.ContinueOnError {
			return err
		}
		scores = nil
	}
	artifact := ExportedCampaign{
		Paper:           "Intrusion Injection for Virtualized Systems: Concepts and Approach (DSN 2023)",
		Machine:         fmt.Sprintf("simulated PV hypervisor, %d frames, %d-frame domains", MachineFrames, DomainFrames),
		Runs:            make([]ExportedRun, 0, len(entries)),
		Scores:          scores,
		FaultPlanSeed:   r.Faults.Seed(),
		ContinueOnError: r.ContinueOnError,
	}
	for _, e := range entries {
		artifact.Runs = append(artifact.Runs, exportRun(e.Version, e.UseCase, e.Mode, e.Result, e.Err))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(artifact)
}

// MarshalJSON exports a Score with its derived resilience.
func (s Score) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Version          string  `json:"version"`
		StatesInjected   int     `json:"states_injected"`
		Violations       int     `json:"violations"`
		Handled          int     `json:"handled"`
		FailedInjections int     `json:"failed_injections"`
		Resilience       float64 `json:"resilience"`
	}{s.Version, s.StatesInjected, s.Violations, s.Handled, s.FailedInjections, s.Resilience()})
}
