package campaign

import (
	"fmt"

	"repro/internal/exploits"
	"repro/internal/hv"
	"repro/internal/workload"
)

// AvailabilityRow is one cell of the availability-under-injection
// experiment: a victim guest runs the standard workload after the
// erroneous state is injected, and the completion rate measures how much
// service survives.
type AvailabilityRow struct {
	Version string
	UseCase string
	// Injected reports whether the erroneous state landed.
	Injected bool
	// Violation reports the monitor's verdict.
	Violation bool
	// VictimCompletion is the victim guest's workload completion rate
	// after the injection, in [0, 1].
	VictimCompletion float64
	// Stopped notes an availability-terminal platform state.
	Stopped    bool
	StopReason string
}

// AvailabilityUnderInjection runs the injection campaign on one version
// and, after each injection, drives the standard workload on a victim
// guest (not the attacker). Crash-class states zero out availability;
// handled states leave it intact — the dependability-benchmark view of
// Table III.
func AvailabilityUnderInjection(v hv.Version, cfg workload.Config) ([]AvailabilityRow, error) {
	rows := make([]AvailabilityRow, 0, len(exploits.Scenarios()))
	for _, scen := range exploits.Scenarios() {
		if spec, err := exploits.SpecByName(scen.Name); err != nil || !spec.AppliesTo(v.Name) {
			continue
		}
		e, err := NewEnvironment(v, ModeInjection)
		if err != nil {
			return nil, err
		}
		env, err := e.ScenarioEnv(ModeInjection)
		if err != nil {
			return nil, err
		}
		outcome := scen.Run(env)
		victim := e.Guests[1] // guest01: neither dom0 nor the attacker
		res := workload.Run(victim, cfg)
		rows = append(rows, AvailabilityRow{
			Version:          v.Name,
			UseCase:          scen.Name,
			Injected:         outcome.ErroneousState,
			Violation:        e.HV.Crashed(),
			VictimCompletion: res.CompletionRate(cfg),
			Stopped:          res.Stopped,
			StopReason:       res.StopReason,
		})
	}
	return rows, nil
}

// String renders a row.
func (r AvailabilityRow) String() string {
	s := fmt.Sprintf("%s on %s: injected=%v completion=%.2f", r.UseCase, r.Version, r.Injected, r.VictimCompletion)
	if r.Stopped {
		s += " (" + r.StopReason + ")"
	}
	return s
}
