package campaign_test

// The scheduler-observer suite: the wall-clock SchedObserver hook must
// deliver exactly one terminal CellSettled per cell — including cells
// that panic, hang, or are canceled before pickup — and installing the
// hook (or the structured logger) must leave the deterministic
// artifact byte-for-byte untouched.

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// recordingSched is a thread-safe SchedObserver that remembers every
// hook invocation. Workers call the hooks concurrently.
type recordingSched struct {
	mu         sync.Mutex
	queued     []string
	dispatched map[string]int // cell -> worker
	settled    map[string]int // cell -> settle count
	classes    map[string]campaign.FailureClass
	workers    map[string]int // cell -> worker at settle
	badQueueNS int
}

func newRecordingSched() *recordingSched {
	return &recordingSched{
		dispatched: make(map[string]int),
		settled:    make(map[string]int),
		classes:    make(map[string]campaign.FailureClass),
		workers:    make(map[string]int),
	}
}

func (r *recordingSched) BatchQueued(cells []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queued = append(r.queued, cells...)
}

func (r *recordingSched) CellDispatched(cell string, worker int, queueNS int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dispatched[cell] = worker
	if queueNS < 0 {
		r.badQueueNS++
	}
}

func (r *recordingSched) CellSettled(cell string, worker int, queueNS, runNS int64, profile *telemetry.CellProfile, cerr *campaign.CellError) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.settled[cell]++
	r.workers[cell] = worker
	if cerr != nil {
		r.classes[cell] = cerr.Class
	}
	if queueNS < 0 || runNS < 0 {
		r.badQueueNS++
	}
}

// TestSchedObserverExactlyOncePerCell runs the chaos matrix — panics,
// hangs, forced errors, the lot — and checks the terminal-event
// contract: one CellSettled per cell, class agreeing with the entry's
// error record, worker identity consistent with dispatch.
func TestSchedObserverExactlyOncePerCell(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		plan := faults.NewPlan(seed, faults.DefaultDensity)
		rec := newRecordingSched()
		r := &campaign.Runner{Workers: 8, ContinueOnError: true, Faults: plan, Sched: rec}
		entries, err := r.RunMatrixContext(context.Background())
		plan.ReleaseAll()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rec.queued) != len(entries) {
			t.Fatalf("seed %d: BatchQueued saw %d cells, matrix has %d", seed, len(rec.queued), len(entries))
		}
		if rec.badQueueNS != 0 {
			t.Fatalf("seed %d: %d hook calls carried negative queue/run durations", seed, rec.badQueueNS)
		}
		for _, e := range entries {
			id := e.Version + "/" + e.UseCase + "/" + string(e.Mode)
			if n := rec.settled[id]; n != 1 {
				t.Errorf("seed %d: cell %s settled %d times, want exactly 1", seed, id, n)
			}
			if e.Err != nil {
				if got := rec.classes[id]; got != e.Err.Class {
					t.Errorf("seed %d: cell %s event class %q, entry class %q", seed, id, got, e.Err.Class)
				}
			} else if _, failed := rec.classes[id]; failed {
				t.Errorf("seed %d: cell %s succeeded but its event carried a failure class", seed, id)
			}
			// A dispatched cell settles on the worker that ran it; an
			// undispatched (canceled) cell settles on the synthetic -1.
			if w, ok := rec.dispatched[id]; ok {
				if rec.workers[id] != w {
					t.Errorf("seed %d: cell %s dispatched on worker %d, settled on %d", seed, id, w, rec.workers[id])
				}
			} else if rec.workers[id] != -1 {
				t.Errorf("seed %d: undispatched cell %s settled on worker %d, want -1", seed, id, rec.workers[id])
			}
		}
		if len(rec.settled) != len(entries) {
			t.Fatalf("seed %d: %d distinct cells settled, want %d", seed, len(rec.settled), len(entries))
		}
	}
}

// TestSchedHooksDoNotPerturbArtifact is the quarantine gate for this
// PR: wiring the wall-clock observer and the structured logger must
// not move a single byte of the deterministic matrix artifact.
func TestSchedHooksDoNotPerturbArtifact(t *testing.T) {
	export := func(sched campaign.SchedObserver, log *slog.Logger) []byte {
		t.Helper()
		r := &campaign.Runner{Workers: 4, Sched: sched, Log: log}
		var buf bytes.Buffer
		if err := r.ExportMatrixContext(context.Background(), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := export(nil, nil)
	logger := slog.New(slog.NewJSONHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug}))
	if got := export(newRecordingSched(), logger); !bytes.Equal(ref, got) {
		t.Fatal("matrix artifact differs with the sched observer and logger installed")
	}
}
