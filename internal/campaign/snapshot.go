package campaign

import (
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/guest"
	"repro/internal/hv"
	"repro/internal/inject"
	"repro/internal/mm"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/vnet"
)

// Snapshot/COW cell boot: the campaign engine boots each (version, mode)
// environment exactly once per process, seals the booted machine and
// hypervisor build into an immutable snapshot, and stamps out a
// copy-on-write fork per cell instead of re-booting. The paper's
// "fresh, identical environment per cell" guarantee is preserved two
// ways: structurally, because every mutable structure clones before its
// first write (mm COW chunks, P2M maps, page-table maps, clip-shared
// logs); and observably, because the sealed machine's boot journal is
// replayed into each cell's telemetry recorder, fault injector and span
// tree, reproducing the exact event sequence a fresh boot would emit.
//
// A cell whose armed fault plane would fire inside the boot (SiteAlloc
// within the boot's consult budget) cannot fork — the fault belongs
// inside its boot — so it falls back to a fresh boot with its injector
// untouched. All other boot-reachable sites fire at hypercall dispatch
// or sink writes, which the fork path reproduces exactly.

// snapshotsOn gates the cache process-wide. The REPRO_NO_SNAPSHOT
// environment knob (any non-empty value) and the CLI's -no-snapshot
// flag both force every cell onto the fresh-boot path.
var snapshotsOn atomic.Bool

func init() { snapshotsOn.Store(os.Getenv("REPRO_NO_SNAPSHOT") == "") }

// EnableSnapshots toggles snapshot/COW cell boot process-wide.
func EnableSnapshots(on bool) { snapshotsOn.Store(on) }

// SnapshotsEnabled reports whether cells boot from snapshots.
func SnapshotsEnabled() bool { return snapshotsOn.Load() }

// snapKey identifies one snapshot: the full version profile (not just
// its name — Runner.Run accepts custom Version values) plus the mode,
// which decides whether the injector hypercall is compiled in.
type snapKey struct {
	version hv.Version
	mode    Mode
}

// envSnapshot is one sealed (version, mode) environment.
type envSnapshot struct {
	once   sync.Once
	mode   Mode
	ms     *mm.Snapshot
	hs     *hv.Snapshot
	net    *vnet.Network
	guests []*guest.Kernel
	err    error
}

var (
	snapMu    sync.Mutex
	snapCache = make(map[snapKey]*envSnapshot)
)

// snapshotFor returns the sealed environment for the key, booting and
// sealing it on first use. Concurrent workers share one build.
func snapshotFor(p *plan, v hv.Version, mode Mode) *envSnapshot {
	key := snapKey{version: v, mode: mode}
	snapMu.Lock()
	s, ok := snapCache[key]
	if !ok {
		s = &envSnapshot{mode: mode}
		snapCache[key] = s
	}
	snapMu.Unlock()
	s.once.Do(func() { s.build(p, v, mode) })
	return s
}

// build boots the prototype environment with no sinks attached but the
// boot journal recording, then seals machine and hypervisor.
func (s *envSnapshot) build(p *plan, v hv.Version, mode Mode) {
	mem, err := mm.NewMemory(MachineFrames)
	if err != nil {
		s.err = err
		return
	}
	mem.StartBootJournal()
	e, err := buildEnvironment(p, mem, v, mode, nil, nil, nil)
	if err != nil {
		s.err = err
		return
	}
	s.ms = mem.Seal()
	s.hs = e.HV.Seal()
	s.net = e.Net
	s.guests = e.Guests
}

// forkEnvironment stamps out one cell's environment from the sealed
// state: fork the machine, attach the cell's sinks, replay the boot
// journal into them, fork the hypervisor onto the machine, and rebind
// network and kernels. The returned recycle func returns the machine
// fork to the snapshot's pool; call it only when the cell completed
// cleanly — a poisoned fork must be abandoned to the collector.
func (s *envSnapshot) forkEnvironment(tel *telemetry.Recorder, flt *faults.Injector, tree *span.Tree) (*Environment, func(), error) {
	fm := s.ms.Fork()
	if tel != nil {
		fm.AttachTelemetry(tel)
	}
	if flt != nil {
		fm.AttachFaults(flt)
	}
	if tree != nil {
		fm.AttachSpans(tree)
	}
	// A coverage map riding on the cell's recorder needs the region
	// classifier installed before the boot journal replays, so the
	// replayed page-type events classify exactly as a fresh boot's.
	if cov := tel.Coverage(); cov != nil {
		cov.SetFrameClassifier(s.hs.FrameClassifier())
	}
	s.ms.Replay(tel, flt, tree)

	fh := s.hs.Fork(fm, tel, flt, tree)
	if s.mode == ModeInjection {
		if err := inject.Attach(fh); err != nil {
			return nil, nil, err
		}
		if err := inject.AttachStateOps(fh); err != nil {
			return nil, nil, err
		}
	}
	net := s.net.Fork()

	e := &Environment{HV: fh, Net: net, Tel: tel}
	for _, pk := range s.guests {
		d, err := fh.Domain(pk.Domain().ID())
		if err != nil {
			return nil, nil, err
		}
		e.Guests = append(e.Guests, pk.ForkOnto(d, net))
	}
	e.Dom0 = e.Guests[0]
	e.Attacker = e.Guests[len(e.Guests)-1]
	l, ok := net.Listener(ListenerAddr)
	if !ok {
		// The sealed environment always bound the listener; a miss means
		// the snapshot is unusable.
		return nil, nil, vnet.ErrRefused
	}
	e.Listener = l
	if s.mode == ModeInjection {
		e.Injector = inject.NewClient(e.Attacker.Domain())
		e.State = inject.NewStateClient(e.Attacker.Domain())
	}
	return e, func() { s.ms.Recycle(fm) }, nil
}

// cellEnvironment builds one cell's environment, from the snapshot
// cache when possible and by fresh boot otherwise. The recycle func is
// non-nil only on the fork path; callers invoke it after the cell
// completes cleanly.
func cellEnvironment(p *plan, c cell, tel *telemetry.Recorder, flt *faults.Injector, tree *span.Tree) (*Environment, func(), error) {
	if snapshotsOn.Load() {
		s := snapshotFor(p, c.version, c.mode)
		// A build error falls back to fresh boot so the cell reports the
		// boot failure itself; a boot-window allocation fault must boot
		// fresh with the injector untouched so it fires inside the boot.
		if s.err == nil && !flt.WouldFire(faults.SiteAlloc, s.ms.BootAllocConsults()) {
			e, recycle, err := s.forkEnvironment(tel, flt, tree)
			if err == nil {
				return e, recycle, nil
			}
		}
	}
	e, err := newEnvironment(p, c.version, c.mode, tel, flt, tree)
	return e, nil, err
}

// NewForkedEnvironment boots (once) and forks the standard environment
// for the given cell coordinates, regardless of the process-wide
// snapshot toggle. The benchmarks use it to measure the fork path in
// isolation; the recycle func returns the fork to the pool.
func NewForkedEnvironment(v hv.Version, mode Mode) (*Environment, func(), error) {
	s := snapshotFor(campaignPlan(), v, mode)
	if s.err != nil {
		return nil, nil, s.err
	}
	return s.forkEnvironment(nil, nil, nil)
}

// BuildSnapshot boots and seals one environment outside the cache, so
// benchmarks can measure the one-time snapshot construction cost.
func BuildSnapshot(v hv.Version, mode Mode) error {
	s := &envSnapshot{mode: mode}
	s.build(campaignPlan(), v, mode)
	return s.err
}
