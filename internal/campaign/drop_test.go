package campaign_test

// Drop accounting at the campaign level: sink-write faults are a
// per-cell deterministic function of the fault plan, so a cell's
// DroppedEvents and telemetry.sink_errors readings are identical at
// any worker count — losing an event to a faulted sink never depends
// on scheduling.

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// sinkFaultedCells pins explicit SiteSinkWrite rules (density 0 keeps
// every other cell clean) so exactly these cells drop exactly one
// event each, regardless of where their nth write falls.
var sinkFaultedCells = []string{
	"4.6/XSA-148-priv/exploit",
	"4.8/XSA-182-test/injection",
	"4.13/XSA-212-priv/exploit",
}

func matrixDropStats(t *testing.T, workers int) map[string][2]uint64 {
	t.Helper()
	plan := faults.NewPlan(0, 0)
	for i, cell := range sinkFaultedCells {
		// Spread the faulted write across the cell's lifetime: early,
		// mid-scenario, and deeper into the event stream (forked cells
		// emit a few hundred events, so stay well inside that).
		plan.ArmCell(cell, faults.SiteSinkWrite, uint64(5+75*i))
	}
	defer plan.ReleaseAll()
	r := &campaign.Runner{Workers: workers, Telemetry: telemetry.NewRegistry(), Faults: plan}
	entries, err := r.RunMatrix()
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	out := make(map[string][2]uint64, len(entries))
	for _, e := range entries {
		p := e.Result.Profile
		if p == nil {
			t.Fatalf("workers=%d: %s/%s/%s has no profile", workers, e.Version, e.UseCase, e.Mode)
		}
		var sinkErrs uint64
		for _, c := range p.Counters {
			if c.Name == "telemetry.sink_errors" {
				sinkErrs = c.Value
			}
		}
		out[p.Cell] = [2]uint64{p.DroppedEvents, sinkErrs}
	}
	return out
}

func TestDropAccountingDeterministicAcrossWorkerCounts(t *testing.T) {
	base := matrixDropStats(t, 1)
	if len(base) != 102 {
		t.Fatalf("matrix produced %d distinct cells, want 102", len(base))
	}
	want := make(map[string]bool, len(sinkFaultedCells))
	for _, cell := range sinkFaultedCells {
		want[cell] = true
	}
	for cell, stats := range base {
		if want[cell] {
			if stats != [2]uint64{1, 1} {
				t.Errorf("workers=1: %s dropped/sink_errors = %d/%d, want 1/1", cell, stats[0], stats[1])
			}
		} else if stats != [2]uint64{0, 0} {
			t.Errorf("workers=1: unfaulted %s dropped/sink_errors = %d/%d, want 0/0", cell, stats[0], stats[1])
		}
	}
	for _, w := range []int{4, 8} {
		got := matrixDropStats(t, w)
		for cell, stats := range base {
			if got[cell] != stats {
				t.Errorf("workers=%d: %s dropped/sink_errors = %v, want %v (workers=1)", w, cell, got[cell], stats)
			}
		}
	}
}
