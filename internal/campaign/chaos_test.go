package campaign_test

// The chaos suite: the campaign engine runs the full matrix while the
// faults plane misbehaves underneath it — forced allocation failures,
// hypercall-handler panics, forced hangs, wedged cells — and the
// process must never die, every faulted cell must land as a classified
// per-cell record, the artifact must be byte-identical at any worker
// count for the same fault-plan seed, and cancellation must not leak
// goroutines.

import (
	"bytes"
	"context"
	"errors"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/faults"
	"repro/internal/hv"
	"repro/internal/telemetry"
)

// awaitGoroutineBaseline waits for the goroutine count to drop back to
// (or below) base, failing the test if abandoned cell goroutines are
// still alive after the grace period.
func awaitGoroutineBaseline(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the scheduler
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChaosMatrixEveryCellClassified(t *testing.T) {
	validClasses := map[campaign.FailureClass]bool{
		campaign.FailError: true, campaign.FailPanic: true,
		campaign.FailHang: true, campaign.FailCanceled: true,
	}
	faulted := 0
	for _, seed := range []int64{1, 7, 99} {
		plan := faults.NewPlan(seed, faults.DefaultDensity)
		r := &campaign.Runner{Workers: 8, ContinueOnError: true, Faults: plan}
		entries, err := r.RunMatrixContext(context.Background())
		plan.ReleaseAll()
		if err != nil {
			t.Fatalf("seed %d: matrix failed as a whole under ContinueOnError: %v", seed, err)
		}
		if len(entries) != 102 {
			t.Fatalf("seed %d: %d entries, want 102", seed, len(entries))
		}
		for _, e := range entries {
			switch {
			case e.Result != nil && e.Err != nil:
				t.Errorf("seed %d: cell %s/%s/%s has both a result and an error", seed, e.Version, e.UseCase, e.Mode)
			case e.Result == nil && e.Err == nil:
				t.Errorf("seed %d: cell %s/%s/%s has neither a result nor an error", seed, e.Version, e.UseCase, e.Mode)
			case e.Err != nil:
				faulted++
				if !validClasses[e.Err.Class] {
					t.Errorf("seed %d: cell %s classified as unknown class %q", seed, e.Err.Cell, e.Err.Class)
				}
				if e.Err.Message == "" {
					t.Errorf("seed %d: cell %s has an empty failure message", seed, e.Err.Cell)
				}
			}
		}
	}
	if faulted == 0 {
		t.Error("no cell failed across three seeded chaos runs; the fault plane is not biting")
	}
}

func TestChaosArtifactDeterministicAcrossWorkerCounts(t *testing.T) {
	const seed = 7
	export := func(workers int) []byte {
		t.Helper()
		plan := faults.NewPlan(seed, faults.DefaultDensity)
		r := &campaign.Runner{Workers: workers, ContinueOnError: true, Faults: plan}
		var buf bytes.Buffer
		if err := r.ExportMatrixContext(context.Background(), &buf); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		plan.ReleaseAll()
		return buf.Bytes()
	}
	ref := export(1)
	if !bytes.Contains(ref, []byte(`"fault_plan_seed": 7`)) {
		t.Error("artifact does not carry the fault-plan seed")
	}
	if !bytes.Contains(ref, []byte(`"error"`)) {
		t.Error("seed 7 artifact carries no per-cell error record; the plan is not biting")
	}
	for _, w := range []int{4, 8} {
		if got := export(w); !bytes.Equal(ref, got) {
			t.Errorf("workers=%d artifact differs from serial artifact under the same fault-plan seed", w)
		}
	}
}

func TestPanicIsolationGoldenErrorRecord(t *testing.T) {
	const target = "4.6/XSA-182-test/exploit"
	record := func() *campaign.CellError {
		t.Helper()
		plan := faults.NewPlan(0, 0).ArmCell(target, faults.SiteHypercallPanic, 1)
		r := &campaign.Runner{Workers: 4, ContinueOnError: true, Faults: plan}
		entries, err := r.RunMatrixContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var got *campaign.CellError
		for _, e := range entries {
			id := e.Version + "/" + e.UseCase + "/" + string(e.Mode)
			if id == target {
				if e.Err == nil {
					t.Fatalf("target cell %s did not fail", target)
				}
				got = e.Err
			} else if e.Err != nil {
				t.Errorf("panic leaked into cell %s: %v", e.Err.Cell, e.Err)
			}
		}
		return got
	}
	ce := record()
	if ce.Class != campaign.FailPanic {
		t.Errorf("class = %q, want %q", ce.Class, campaign.FailPanic)
	}
	if ce.Cell != target {
		t.Errorf("cell = %q, want %q", ce.Cell, target)
	}
	if !strings.Contains(ce.Message, "injected panic in hypercall") {
		t.Errorf("message = %q", ce.Message)
	}
	if ce.Stack == "" {
		t.Error("panic record carries no stack")
	}
	if regexp.MustCompile(`goroutine \d`).MatchString(ce.Stack) {
		t.Error("stack carries a raw goroutine number")
	}
	if i := strings.Index(ce.Stack, "0x"); i >= 0 && !strings.HasPrefix(ce.Stack[i:], "0x?") {
		t.Errorf("stack carries an unnormalized hex literal near %q", ce.Stack[i:min(i+20, len(ce.Stack))])
	}
	// The record is golden: a second run reproduces it byte for byte.
	again := record()
	if again.Message != ce.Message || again.Stack != ce.Stack {
		t.Error("panic record is not deterministic across runs")
	}
}

func TestWatchdogClassifiesWedgedCellAsHang(t *testing.T) {
	base := runtime.NumGoroutine()
	const target = "4.6/XSA-182-test/exploit"
	plan := faults.NewPlan(0, 0).ArmCell(target, faults.SiteWedge, 1)
	r := &campaign.Runner{Workers: 1, CellTimeout: 50 * time.Millisecond, Faults: plan}
	_, err := r.Run(hv.Version46(), "XSA-182-test", campaign.ModeExploit)
	var ce *campaign.CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want a *CellError", err)
	}
	if ce.Class != campaign.FailHang {
		t.Errorf("class = %q, want %q", ce.Class, campaign.FailHang)
	}
	if !strings.Contains(ce.Message, "watchdog") {
		t.Errorf("message = %q", ce.Message)
	}
	// Releasing the plan unparks the abandoned cell so it drains.
	plan.ReleaseAll()
	awaitGoroutineBaseline(t, base)
}

func TestCancellationMarksRemainingCellsAndLeaksNothing(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first cell dispatches
	r := &campaign.Runner{Workers: 4, ContinueOnError: true}
	entries, err := r.RunMatrixContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Err == nil || e.Err.Class != campaign.FailCanceled {
			t.Fatalf("cell %s/%s/%s not classified canceled: %+v", e.Version, e.UseCase, e.Mode, e.Err)
		}
	}
	// Default mode surfaces the first canceled cell as the error.
	if _, err := (&campaign.Runner{Workers: 4}).RunMatrixContext(ctx); err == nil {
		t.Error("default mode returned no error for a cancelled matrix")
	} else if !errors.Is(err, context.Canceled) {
		t.Errorf("default-mode error %v does not unwrap to context.Canceled", err)
	}
	awaitGoroutineBaseline(t, base)
}

func TestCancellationMidRunSalvagesCompletedProfiles(t *testing.T) {
	base := runtime.NumGoroutine()
	const wedged = "4.6/XSA-148-priv/exploit" // fifth cell in matrix order
	plan := faults.NewPlan(0, 0).ArmCell(wedged, faults.SiteWedge, 1)
	reg := telemetry.NewRegistry()
	r := &campaign.Runner{
		Workers:         1, // serial: cells before the wedge complete deterministically
		ContinueOnError: true,
		CellTimeout:     -1, // watchdog off; cancellation is what unblocks the run
		Faults:          plan,
		Telemetry:       reg,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel once the run is provably wedged: the four cells before
		// the wedged one have recorded their profiles.
		deadline := time.Now().Add(5 * time.Second)
		for len(reg.CellProfiles()) < 4 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	entries, err := r.RunMatrixContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	var completed, canceled int
	for _, e := range entries {
		switch {
		case e.Result != nil:
			completed++
		case e.Err != nil && e.Err.Class == campaign.FailCanceled:
			canceled++
		default:
			t.Errorf("cell %s/%s/%s: unexpected outcome %+v", e.Version, e.UseCase, e.Mode, e.Err)
		}
	}
	if completed != 4 {
		t.Errorf("%d cells completed before the wedge, want 4", completed)
	}
	if canceled != 98 {
		t.Errorf("%d cells canceled, want 98", canceled)
	}
	// The registry retains the completed cells' profiles in completion
	// order — the salvage path the CLI uses to flush -trace after ^C.
	if got := len(reg.CellProfiles()); got < 4 {
		t.Errorf("registry retained %d profiles, want >= 4", got)
	}
	plan.ReleaseAll()
	awaitGoroutineBaseline(t, base)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
