package campaign

import (
	"fmt"

	"repro/internal/exploits"
	"repro/internal/hv"
)

// Fig4Row is one use case of the RQ1 validation (Fig. 4): the original
// exploit and the injection script on the vulnerable version, compared.
type Fig4Row struct {
	UseCase   string
	Exploit   *RunResult
	Injection *RunResult
	// StatesMatch and ViolationsMatch are the equivalence the figure's
	// "compare" step asserts.
	StatesMatch     bool
	ViolationsMatch bool
}

// RunFig4 executes the RQ1 experiment: every use case, exploit vs
// injection, on the vulnerable 4.6 version, each in a fresh environment.
func RunFig4() ([]Fig4Row, error) {
	v := hv.Version46()
	rows := make([]Fig4Row, 0, len(exploits.Scenarios()))
	for _, s := range exploits.Scenarios() {
		ex, err := Run(v, s.Name, ModeExploit)
		if err != nil {
			return nil, fmt.Errorf("campaign: fig4 %s exploit: %w", s.Name, err)
		}
		in, err := Run(v, s.Name, ModeInjection)
		if err != nil {
			return nil, fmt.Errorf("campaign: fig4 %s injection: %w", s.Name, err)
		}
		rows = append(rows, Fig4Row{
			UseCase:         s.Name,
			Exploit:         ex,
			Injection:       in,
			StatesMatch:     ex.Verdict.ErroneousState == in.Verdict.ErroneousState,
			ViolationsMatch: ex.Verdict.SecurityViolation == in.Verdict.SecurityViolation,
		})
	}
	return rows, nil
}

// Table3Cell is one (use case, version) cell of Table III.
type Table3Cell struct {
	ErrState bool
	SecViol  bool
}

// Table3Row is one use case across the non-vulnerable versions.
type Table3Row struct {
	UseCase string
	Cells   map[string]Table3Cell // keyed by version name
}

// Table3Versions are the non-vulnerable versions the campaign injects
// into.
func Table3Versions() []hv.Version {
	return []hv.Version{hv.Version48(), hv.Version413()}
}

// RunTable3 executes the RQ2/RQ3 injection campaign: every use case's
// injection script against 4.8 and 4.13.
func RunTable3() ([]Table3Row, error) {
	rows := make([]Table3Row, 0, len(exploits.Scenarios()))
	for _, s := range exploits.Scenarios() {
		row := Table3Row{UseCase: s.Name, Cells: make(map[string]Table3Cell, 2)}
		for _, v := range Table3Versions() {
			res, err := Run(v, s.Name, ModeInjection)
			if err != nil {
				return nil, fmt.Errorf("campaign: table3 %s on %s: %w", s.Name, v.Name, err)
			}
			row.Cells[v.Name] = Table3Cell{
				ErrState: res.Verdict.ErroneousState,
				SecViol:  res.Verdict.SecurityViolation,
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MatrixEntry is one cell of the full campaign: every version, use case
// and mode. The exploit rows on fixed versions document Section VII's
// "we could not induce the erroneous states" with the original PoCs.
type MatrixEntry struct {
	Version string
	UseCase string
	Mode    Mode
	Result  *RunResult
}

// RunMatrix executes the full 3 versions x 4 use cases x 2 modes
// campaign (24 runs, each in a fresh environment).
func RunMatrix() ([]MatrixEntry, error) {
	var out []MatrixEntry
	for _, v := range hv.Versions() {
		for _, s := range exploits.Scenarios() {
			for _, mode := range []Mode{ModeExploit, ModeInjection} {
				res, err := Run(v, s.Name, mode)
				if err != nil {
					return nil, fmt.Errorf("campaign: matrix %s/%s/%s: %w", v.Name, s.Name, mode, err)
				}
				out = append(out, MatrixEntry{Version: v.Name, UseCase: s.Name, Mode: mode, Result: res})
			}
		}
	}
	return out, nil
}
