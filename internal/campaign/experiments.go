package campaign

import "repro/internal/hv"

// Fig4Row is one use case of the RQ1 validation (Fig. 4): the original
// exploit and the injection script on the vulnerable version, compared.
type Fig4Row struct {
	UseCase   string
	Exploit   *RunResult
	Injection *RunResult
	// StatesMatch and ViolationsMatch are the equivalence the figure's
	// "compare" step asserts.
	StatesMatch     bool
	ViolationsMatch bool
}

// RunFig4 executes the RQ1 experiment: every use case, exploit vs
// injection, on the vulnerable 4.6 version, each in a fresh environment.
// Cells run serially; use a Runner to spread them over a worker pool.
func RunFig4() ([]Fig4Row, error) {
	return (&Runner{Workers: 1}).RunFig4()
}

// Table3Cell is one (use case, version) cell of Table III.
type Table3Cell struct {
	ErrState bool
	SecViol  bool
}

// Table3Row is one use case across the non-vulnerable versions.
type Table3Row struct {
	UseCase string
	Cells   map[string]Table3Cell // keyed by version name
}

// Table3Versions are the non-vulnerable versions the campaign injects
// into. The returned slice is freshly allocated on every call; callers
// may mutate it freely.
func Table3Versions() []hv.Version {
	return []hv.Version{hv.Version48(), hv.Version413()}
}

// RunTable3 executes the RQ2/RQ3 injection campaign: every use case's
// injection script against 4.8 and 4.13. Cells run serially; use a
// Runner to spread them over a worker pool.
func RunTable3() ([]Table3Row, error) {
	return (&Runner{Workers: 1}).RunTable3()
}

// MatrixEntry is one cell of the full campaign: every version, use case
// and mode. The exploit rows on fixed versions document Section VII's
// "we could not induce the erroneous states" with the original PoCs.
type MatrixEntry struct {
	Version string
	UseCase string
	Mode    Mode
	// Result is the cell's outcome, nil when the cell failed under a
	// ContinueOnError campaign.
	Result *RunResult
	// Err is the cell's failure record, nil when the cell succeeded.
	// Populated only by ContinueOnError campaigns; the default mode
	// reports the first failure as the campaign error instead.
	Err *CellError
}

// RunMatrix executes the full 3 versions x 4 use cases x 2 modes
// campaign (24 runs, each in a fresh environment). Cells run serially;
// use a Runner to spread them over a worker pool.
func RunMatrix() ([]MatrixEntry, error) {
	return (&Runner{Workers: 1}).RunMatrix()
}
