package campaign_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/exploits"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/tracediff"
)

// seedNames are the four paper scenarios the pre-expansion corpus
// consisted of, in registry order. The artifacts under testdata/seed
// were produced by running exactly these through the engine before the
// registry grew; the tests below re-derive them from today's registry
// and demand byte identity — corpus growth must not perturb a single
// byte of the original cells' output.
var seedNames = []string{"XSA-212-crash", "XSA-212-priv", "XSA-148-priv", "XSA-182-test"}

func seedSpecs(t *testing.T) []exploits.Spec {
	t.Helper()
	specs := make([]exploits.Spec, 0, len(seedNames))
	for _, name := range seedNames {
		s, err := exploits.SpecByName(name)
		if err != nil {
			t.Fatalf("seed scenario %s missing from registry: %v", name, err)
		}
		specs = append(specs, s)
	}
	return specs
}

func seedFile(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "seed", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSeedMatrixByteIdentical diffs the rendered matrix of the original
// twelve cells against the frozen seed artifact.
func TestSeedMatrixByteIdentical(t *testing.T) {
	r := &campaign.Runner{Workers: 1}
	entries, err := r.RunMatrixSpecs(context.Background(), seedSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := report.Matrix(entries), seedFile(t, "matrix.txt"); got != want {
		t.Errorf("seed matrix drifted from the frozen artifact:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSeedEquivalenceByteIdentical diffs the rendered RQ2 equivalence
// table of the original cells against the frozen seed artifact.
func TestSeedEquivalenceByteIdentical(t *testing.T) {
	r := &campaign.Runner{Workers: 4, Telemetry: telemetry.NewRegistry()}
	entries, err := r.RunMatrixSpecs(context.Background(), seedSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := tracediff.MatrixEquivalence(entries)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := report.TraceEquivalence(verdicts), seedFile(t, "equivalence.txt"); got != want {
		t.Errorf("seed equivalence table drifted from the frozen artifact:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSeedExportByteIdentical diffs the JSON campaign artifact of the
// original cells — transcripts, evidence and benchmark scores included —
// against the frozen seed artifact.
func TestSeedExportByteIdentical(t *testing.T) {
	var buf bytes.Buffer
	r := &campaign.Runner{Workers: 1}
	if err := r.ExportMatrixSpecs(context.Background(), &buf, seedSpecs(t)); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), seedFile(t, "matrix.json"); got != want {
		t.Errorf("seed JSON artifact drifted from the frozen artifact (got %d bytes, want %d)", len(got), len(want))
	}
}
