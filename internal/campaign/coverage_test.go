package campaign_test

// The coverage differential suite: the campaign's coverage report —
// per-cell edge maps, union membership, first-witness attribution and
// the canonical digest — must be byte-identical at any worker count,
// under seeded chaos, and whether cells boot fresh or fork from the
// snapshot. This is the determinism the coverage-guided fuzzer
// (ROADMAP item 3) will rely on: a digest change means behaviour
// changed, never scheduling.

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/faults"
)

// matrixCoverage runs the full default matrix with coverage enabled
// and returns the settled report.
func matrixCoverage(t *testing.T, workers int, seed int64) *coverage.Report {
	t.Helper()
	col := coverage.NewCollector()
	r := &campaign.Runner{Workers: workers, Coverage: col}
	var plan *faults.Plan
	if seed >= 0 {
		plan = faults.NewPlan(seed, faults.DefaultDensity)
		r.Faults = plan
		r.ContinueOnError = true
	}
	if _, err := r.RunMatrix(); err != nil {
		t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
	}
	if plan != nil {
		plan.ReleaseAll()
	}
	return col.Report()
}

// TestCoverageDeterministicAcrossWorkers pins the canonical coverage
// report — not just the digest — across worker counts and chaos seeds.
func TestCoverageDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{-1, 7, 99} { // -1 = no fault plan
		want := matrixCoverage(t, 1, seed).Canonical()
		for _, w := range []int{4, 8} {
			got := matrixCoverage(t, w, seed).Canonical()
			if got != want {
				t.Errorf("seed=%d: coverage at workers=%d diverges from workers=1\n%s",
					seed, w, firstDiffLines(want, got))
			}
		}
	}
}

// TestCoverageForkVsFreshIdentical compares the canonical coverage
// report between snapshot-fork and fresh-boot cell construction.
func TestCoverageForkVsFreshIdentical(t *testing.T) {
	set := withSnapshots(t)
	for _, w := range []int{1, 4} {
		set(false)
		fresh := matrixCoverage(t, w, -1)
		set(true)
		fork := matrixCoverage(t, w, -1)
		if fresh.Canonical() != fork.Canonical() {
			t.Errorf("workers=%d: fork coverage diverges from fresh\n%s",
				w, firstDiffLines(fresh.Canonical(), fork.Canonical()))
		}
	}
}

// TestCoverageReportShape checks the structural invariants of the
// settled report: every matrix cell present in dispatch order, new-edge
// attribution summing to the union, digests verifying, and a JSON
// round trip preserving them.
func TestCoverageReportShape(t *testing.T) {
	rep := matrixCoverage(t, 4, -1)
	if len(rep.Cells) != 102 {
		t.Fatalf("expected 102 cells, got %d", len(rep.Cells))
	}
	newSum := 0
	for _, c := range rep.Cells {
		if len(c.Edges) == 0 {
			t.Errorf("cell %s: empty coverage", c.Cell)
		}
		newSum += c.NewEdges
	}
	if newSum != rep.TotalEdges {
		t.Errorf("per-cell new edges sum to %d, union has %d", newSum, rep.TotalEdges)
	}
	if rep.Cells[0].NewEdges != len(rep.Cells[0].Edges) {
		t.Errorf("first cell must witness all its edges as new: new=%d edges=%d",
			rep.Cells[0].NewEdges, len(rep.Cells[0].Edges))
	}
	for _, u := range rep.Union {
		if u.FirstCell == "" || u.Cells == 0 || u.Count == 0 {
			t.Errorf("union edge %s/%s missing attribution: %+v", u.Family, u.Name, u)
		}
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("report fails self-verification: %v", err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back coverage.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := back.Verify(); err != nil {
		t.Errorf("report fails verification after JSON round trip: %v", err)
	}
	if back.Canonical() != rep.Canonical() {
		t.Errorf("canonical rendering changed across JSON round trip")
	}
}

// minSharedEdgeFraction is the pinned RQ1 floor: the exploit and
// injection variants of every scenario cell must share at least this
// fraction of their combined edge set (Jaccard index). The observed
// minimum across the matrix sits comfortably above it; a drop below
// the pin means injection stopped exercising the exploit's hypervisor
// paths and the RQ1 claim needs re-examination.
const minSharedEdgeFraction = 0.50

// TestCoverageExploitVsInjectionShared pins the RQ1 signal for all 51
// scenario cells (17 use cases across their applicable versions).
func TestCoverageExploitVsInjectionShared(t *testing.T) {
	rep := matrixCoverage(t, 4, -1)
	type key struct{ version, useCase string }
	edges := make(map[key]map[string]map[string]bool) // key → mode → edge set
	for _, c := range rep.Cells {
		parts := strings.Split(c.Cell, "/")
		if len(parts) != 3 {
			t.Fatalf("unexpected cell id %q", c.Cell)
		}
		k := key{parts[0], parts[1]}
		if edges[k] == nil {
			edges[k] = make(map[string]map[string]bool)
		}
		set := make(map[string]bool, len(c.Edges))
		for _, e := range c.Edges {
			set[string(e.Family)+"/"+e.Name] = true
		}
		edges[k][parts[2]] = set
	}
	if len(edges) != 51 {
		t.Fatalf("expected 51 scenario cells, got %d", len(edges))
	}
	for k, modes := range edges {
		ex, in := modes["exploit"], modes["injection"]
		if ex == nil || in == nil {
			t.Errorf("%s/%s: missing a mode variant", k.version, k.useCase)
			continue
		}
		shared := 0
		for e := range ex {
			if in[e] {
				shared++
			}
		}
		union := len(ex) + len(in) - shared
		frac := float64(shared) / float64(union)
		if frac < minSharedEdgeFraction {
			t.Errorf("%s/%s: exploit and injection share %d/%d edges (%.2f), below the %.2f pin",
				k.version, k.useCase, shared, union, frac, minSharedEdgeFraction)
		}
	}
}
