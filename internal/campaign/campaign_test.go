package campaign

import (
	"strings"
	"testing"

	"repro/internal/hv"
)

// expectation is the paper's reported result for one cell.
type expectation struct {
	errState bool
	secViol  bool
}

// Shorthand cell outcomes for the ground-truth table.
var (
	full    = map[Mode]expectation{ModeExploit: {true, true}, ModeInjection: {true, true}}    // exploit and injection both violate
	fixed   = map[Mode]expectation{ModeExploit: {false, false}, ModeInjection: {true, true}}  // PoC blocked, injection violates
	shield  = map[Mode]expectation{ModeExploit: {false, false}, ModeInjection: {true, false}} // PoC blocked, injected state handled
	latent  = map[Mode]expectation{ModeExploit: {true, false}, ModeInjection: {true, false}}  // state induced, never felt (handled)
	blocked = map[Mode]expectation{ModeExploit: {false, false}, ModeInjection: {true, false}} // PoC blocked, injected state handled
)

// paperResults is the ground truth. The four paper scenarios reproduce
// Sections VI-VIII: the exploit column reproduces "we were able to
// exploit ... in 4.6" and "we were not able to execute any of the
// exploits in versions 4.8 and 4.13"; the injection column reproduces
// Table III plus the 4.6 baseline. The corpus-extension scenarios pin
// the same shape for their families: memory-corruption triggers
// (XSA-387 grant downgrade, MX memory_exchange writes) are blocked on
// the fixed releases, while event-channel and domctl abuse goes through
// the legitimate interface and lands on every version.
var paperResults = map[string]map[string]map[Mode]expectation{
	"4.6": {
		"XSA-212-crash": full, "XSA-212-priv": full, "XSA-148-priv": full, "XSA-182-test": full,
		"XSA-387-leak": full, "XSA-387-x2": full, "XSA-387-x3": full,
		"EVT-flood-64": full, "EVT-flood-512": full, "EVT-flood-dom0": full,
		"DOMCTL-pause": full, "DOMCTL-pauseall": full, "DOMCTL-zombie": full, "DOMCTL-exfil": full,
		"MX-heap-smash": full, "MX-heap-wide": full, "MX-idt-gp": latent,
	},
	"4.8": {
		"XSA-212-crash": fixed, "XSA-212-priv": fixed, "XSA-148-priv": fixed, "XSA-182-test": fixed,
		"XSA-387-leak": fixed, "XSA-387-x2": fixed, "XSA-387-x3": fixed,
		"EVT-flood-64": full, "EVT-flood-512": full, "EVT-flood-dom0": full,
		"DOMCTL-pause": full, "DOMCTL-pauseall": full, "DOMCTL-zombie": full, "DOMCTL-exfil": full,
		"MX-heap-smash": fixed, "MX-heap-wide": fixed, "MX-idt-gp": blocked,
	},
	"4.13": {
		"XSA-212-crash": fixed, "XSA-212-priv": shield, "XSA-148-priv": fixed, "XSA-182-test": shield,
		"XSA-387-leak": fixed, "XSA-387-x2": fixed, "XSA-387-x3": fixed,
		"EVT-flood-64": full, "EVT-flood-512": full, "EVT-flood-dom0": full,
		"DOMCTL-pause": full, "DOMCTL-pauseall": full, "DOMCTL-zombie": full, "DOMCTL-exfil": full,
		"MX-heap-smash": fixed, "MX-heap-wide": fixed, "MX-idt-gp": blocked,
	},
}

// TestFullMatrixMatchesPaper is the headline integration test: all 102
// (version, use case, mode) cells produce the expected results — the
// paper's reported numbers for the original scenarios, the pinned
// family shapes for the corpus extensions.
func TestFullMatrixMatchesPaper(t *testing.T) {
	entries, err := RunMatrix()
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	if len(entries) != 102 {
		t.Fatalf("matrix has %d entries, want 102", len(entries))
	}
	for _, e := range entries {
		want := paperResults[e.Version][e.UseCase][e.Mode]
		v := e.Result.Verdict
		if v.ErroneousState != want.errState || v.SecurityViolation != want.secViol {
			t.Errorf("%s %s %s: got err-state=%v violation=%v, paper reports %v/%v\nlog:\n  %s\nevidence:\n  %s",
				e.Version, e.UseCase, e.Mode,
				v.ErroneousState, v.SecurityViolation, want.errState, want.secViol,
				strings.Join(e.Result.Outcome.Log, "\n  "),
				strings.Join(v.Evidence, "\n  "))
		}
	}
}

// TestFig4Equivalence asserts RQ1: on 4.6 the injected states and the
// resulting violations are the same as the exploits'.
func TestFig4Equivalence(t *testing.T) {
	rows, err := RunFig4()
	if err != nil {
		t.Fatalf("RunFig4: %v", err)
	}
	if len(rows) != 17 {
		t.Fatalf("fig4 rows = %d, want 17", len(rows))
	}
	for _, r := range rows {
		if !r.StatesMatch || !r.ViolationsMatch {
			t.Errorf("%s: states-match=%v violations-match=%v\nexploit: %v\ninjection: %v",
				r.UseCase, r.StatesMatch, r.ViolationsMatch,
				r.Exploit.Verdict, r.Injection.Verdict)
		}
		if !r.Exploit.Verdict.ErroneousState {
			t.Errorf("%s: exploit on 4.6 induced no state: %v", r.UseCase, r.Exploit.Verdict)
		}
		if !r.Exploit.Verdict.SecurityViolation && !r.Exploit.Verdict.Handled {
			t.Errorf("%s: exploit on 4.6 neither violated nor was handled: %v", r.UseCase, r.Exploit.Verdict)
		}
	}
}

// TestTable3 asserts the published Table III shape: every injected state
// lands on both versions; 4.13 handles XSA-212-priv and XSA-182-test.
func TestTable3(t *testing.T) {
	rows, err := RunTable3()
	if err != nil {
		t.Fatalf("RunTable3: %v", err)
	}
	want := map[string]map[string]Table3Cell{
		"XSA-212-crash": {"4.8": {true, true}, "4.13": {true, true}},
		"XSA-212-priv":  {"4.8": {true, true}, "4.13": {true, false}},
		"XSA-148-priv":  {"4.8": {true, true}, "4.13": {true, true}},
		"XSA-182-test":  {"4.8": {true, true}, "4.13": {true, false}},
	}
	// Corpus extensions: every injected state lands on both fixed
	// versions; only the never-dispatched IDT corruption is handled.
	for _, name := range []string{
		"XSA-387-leak", "XSA-387-x2", "XSA-387-x3",
		"EVT-flood-64", "EVT-flood-512", "EVT-flood-dom0",
		"DOMCTL-pause", "DOMCTL-pauseall", "DOMCTL-zombie", "DOMCTL-exfil",
		"MX-heap-smash", "MX-heap-wide",
	} {
		want[name] = map[string]Table3Cell{"4.8": {true, true}, "4.13": {true, true}}
	}
	want["MX-idt-gp"] = map[string]Table3Cell{"4.8": {true, false}, "4.13": {true, false}}
	if len(rows) != 17 {
		t.Fatalf("table III rows = %d, want 17", len(rows))
	}
	for _, r := range rows {
		for version, cell := range r.Cells {
			if cell != want[r.UseCase][version] {
				t.Errorf("Table III %s on %s = %+v, paper reports %+v",
					r.UseCase, version, cell, want[r.UseCase][version])
			}
		}
	}
}

// TestEnvironmentShape verifies the standard experimental setup.
func TestEnvironmentShape(t *testing.T) {
	e, err := NewEnvironment(hv.Version46(), ModeInjection)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Guests) != 4 {
		t.Errorf("guests = %d, want 4 (dom0 + 3)", len(e.Guests))
	}
	if !e.Guests[0].Domain().Privileged() {
		t.Error("first guest is not dom0")
	}
	if e.Attacker.Hostname() != "guest03" || e.Attacker.Addr() != AttackerIP {
		t.Errorf("attacker = %s@%s", e.Attacker.Hostname(), e.Attacker.Addr())
	}
	if e.Injector == nil {
		t.Error("injection-mode environment lacks an injector client")
	}
	ex, err := NewEnvironment(hv.Version46(), ModeExploit)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Injector != nil {
		t.Error("exploit-mode environment has an injector")
	}
	if _, err := ex.ScenarioEnv(ModeInjection); err == nil {
		t.Error("injection scenario on exploit build succeeded")
	}
	if _, err := ex.ScenarioEnv("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
}

// TestRunUnknownUseCase covers the error path.
func TestRunUnknownUseCase(t *testing.T) {
	if _, err := Run(hv.Version46(), "XSA-000", ModeExploit); err == nil {
		t.Error("unknown use case accepted")
	}
}

// TestInjectorAbsentOnExploitBuilds asserts that the arbitrary_access
// hypercall is genuinely absent unless compiled in — the injector is a
// build-time addition, not a latent capability.
func TestInjectorAbsentOnExploitBuilds(t *testing.T) {
	e, err := NewEnvironment(hv.Version46(), ModeExploit)
	if err != nil {
		t.Fatal(err)
	}
	err = e.Attacker.Domain().Hypercall(hv.HypercallArbitraryAccess, nil)
	if err == nil || !strings.Contains(err.Error(), "ENOSYS") {
		t.Errorf("arbitrary_access on exploit build: err = %v, want -ENOSYS", err)
	}
}

// TestSecurityBenchmark asserts the aggregate ranking over the full
// corpus: every version handles the latent IDT corruption, 4.13
// additionally handles XSA-212-priv and XSA-182-test (resilience 3/17);
// all injections succeed everywhere.
func TestSecurityBenchmark(t *testing.T) {
	scores, err := SecurityBenchmark()
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores = %d", len(scores))
	}
	want := map[string]struct {
		handled    int
		resilience float64
	}{
		"4.6":  {1, 1.0 / 17},
		"4.8":  {1, 1.0 / 17},
		"4.13": {3, 3.0 / 17},
	}
	for _, s := range scores {
		if s.FailedInjections != 0 {
			t.Errorf("%s: %d failed injections", s.Version, s.FailedInjections)
		}
		if s.StatesInjected != 17 {
			t.Errorf("%s: states = %d, want 17", s.Version, s.StatesInjected)
		}
		w := want[s.Version]
		if s.Handled != w.handled || s.Resilience() != w.resilience {
			t.Errorf("%s: handled=%d resilience=%.2f, want %d/%.2f",
				s.Version, s.Handled, s.Resilience(), w.handled, w.resilience)
		}
		if s.Violations+s.Handled != s.StatesInjected {
			t.Errorf("%s: counts do not add up: %+v", s.Version, s)
		}
	}
}

// TestScoreZeroValue covers the empty-score edge.
func TestScoreZeroValue(t *testing.T) {
	var s Score
	if s.Resilience() != 0 {
		t.Errorf("zero score resilience = %f", s.Resilience())
	}
	if !strings.Contains(s.String(), "resilience=0.00") {
		t.Errorf("String = %q", s.String())
	}
}
