package campaign

import (
	"context"
	"fmt"
	"log/slog"
	"regexp"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coverage"
	"repro/internal/exploits"
	"repro/internal/faults"
	"repro/internal/hv"
	"repro/internal/monitor"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// The parallel campaign engine. Every cell of the paper's evaluation
// runs "in a fresh environment" by design — no state is shared between
// runs — so the registry-sized matrix is embarrassingly parallel. The
// Runner
// fans cells out to a worker pool of goroutine-owned environments and
// reassembles the results in deterministic cell order, so the rendered
// tables are byte-identical to the serial path no matter how many
// workers raced to produce them.
//
// The engine is also fault-tolerant, because a campaign that injects
// erroneous states for a living must survive its own substrate
// misbehaving: every cell runs under a recover() barrier (a panicking
// cell becomes a per-cell error record with a stack, and the pool keeps
// draining), under a watchdog deadline (a runaway cell is classified as
// a hang instead of wedging the run), and under a context (cancellation
// classifies unfinished cells instead of abandoning the batch).

// Runner executes campaign cells on a configurable worker pool.
// The zero value uses one worker per available CPU.
type Runner struct {
	// Workers is the worker-pool size. Zero means GOMAXPROCS; negative
	// values are clamped to 1 (the CLI rejects them before they get
	// here, and a library caller passing a negative by accident gets
	// the strictly serial debug path rather than a surprise fan-out).
	// Workers == 1 runs cells strictly serially in cell order, kept for
	// debugging. Failure semantics are identical at any pool size:
	// every cell runs to completion and the first error in cell order
	// is reported.
	Workers int

	// Telemetry, when set, profiles every cell: each gets a fresh
	// per-environment Recorder, and its counters, wall time and retained
	// events are snapshotted into RunResult.Profile and merged into the
	// registry. Nil disables profiling at near-zero cost.
	Telemetry *telemetry.Registry

	// Faults, when set, arms the substrate fault-injection plane for
	// every cell: each gets the injector the plan derives for its cell
	// identity, wired through the hypervisor build into the machine
	// allocator, the hypercall dispatcher and the telemetry sink. Nil
	// disables fault injection.
	Faults *faults.Plan

	// ContinueOnError keeps the campaign going past failing cells:
	// instead of reporting the first error in cell order, RunMatrix and
	// ExportMatrix carry a per-cell *CellError record for every failed
	// cell alongside the successful results. Experiments whose row
	// shapes need every cell (RunFig4, RunTable3, SecurityBenchmark)
	// still run all cells but return the first failure. The default
	// (false) preserves first-error-in-cell-order semantics exactly.
	ContinueOnError bool

	// CellTimeout is the per-cell watchdog deadline. A cell that blows
	// it is abandoned and classified as a hang-class failure rather
	// than wedging the whole run. Zero means DefaultCellTimeout;
	// negative disables the watchdog.
	CellTimeout time.Duration

	// Progress, when set, observes the campaign live: batch dispatch
	// and per-cell start/finish, including each failed cell's telemetry
	// profile where one could be salvaged. Implementations must be safe
	// for concurrent use — workers notify in parallel. Nil disables
	// observation at no cost.
	Progress Progress

	// SalvageProfiles gives every cell a telemetry recorder even
	// without a Telemetry registry, solely so a failing cell's event
	// ring reaches the Progress observer (the flight recorder).
	// Successful cells are unaffected — no Profile is attached to their
	// results and nothing is merged anywhere — so rendered tables and
	// JSON exports stay byte-identical to an unprofiled run.
	SalvageProfiles bool

	// Spans, when set, captures a causal span tree per cell — cell →
	// phase → hypercall/mm-op — and assembles the campaign's span
	// forest. Each cell gets a recorder (as with SalvageProfiles) so the
	// tree's virtual clock is the cell's event counter; results and
	// rendered tables stay byte-identical to an uninstrumented run. Nil
	// disables span capture.
	Spans *span.Collector

	// Coverage, when set, accumulates a deterministic coverage map per
	// cell — behaviour edges derived from the telemetry stream — and
	// aggregates the campaign union with dispatch-order new-edge
	// attribution. Each cell gets a recorder (as with SalvageProfiles)
	// to feed its map; results and rendered tables stay byte-identical
	// to an uninstrumented run. Nil disables coverage.
	Coverage *coverage.Collector

	// Sched, when set, observes the wall-clock schedule: batch queueing
	// and per-cell dispatch/settle with worker identity, queue wait and
	// run time. It feeds the live event bus and the scheduler timeline —
	// pure observation, never deterministic artifacts. Implementations
	// must be safe for concurrent use. Nil disables it at no cost.
	Sched SchedObserver

	// Log, when set, receives structured scheduling logs (cell
	// dispatched/settled/failed with worker and verdict attrs) at Debug
	// and Warn. Nil (the default) is silent and free.
	Log *slog.Logger

	// Observer, when set, receives every settled cell's full outcome —
	// verdict or failure record, coverage map, detection latency, span
	// length, wall time — exactly once, the persistence hook the run
	// ledger implements. Unlike Progress it sees the result itself, not
	// just the telemetry profile. Setting it gives every cell a
	// recorder, a coverage map and a span tree (as with SalvageProfiles
	// / Coverage / Spans), which leaves results and rendered tables
	// byte-identical to an unobserved run. Implementations must be safe
	// for concurrent use.
	Observer CellObserver
}

// CellObserver observes settled cells with their full outcomes. The
// hook fires on the worker goroutine that settled the cell — once per
// cell, every outcome class included (canceled cells carry only their
// failure record) — so implementations must synchronize internally and
// return quickly.
type CellObserver interface {
	// CellSettled delivers one cell's settled outcome. Exactly one of
	// res/cerr is non-nil. cov is the cell's coverage map (nil for
	// abandoned cells), lat its RQ3 detection latency, spanV the
	// virtual-time length of its span tree, and wall the observed wall
	// time (not deterministic).
	CellSettled(cell string, res *RunResult, cerr *CellError, cov *coverage.Map, lat span.Latency, spanV uint64, wall time.Duration)
}

// SchedObserver observes the engine's wall-clock scheduling decisions:
// which worker ran which cell, how long the cell waited in the queue,
// and how long it ran. The hooks fire on the worker goroutines, so
// implementations must synchronize internally and return quickly.
// Everything it sees is wall-clock observability — feeding it back into
// campaign results or artifacts would break their determinism.
type SchedObserver interface {
	// BatchQueued announces the cells about to be dispatched, in cell
	// order, before any of them runs.
	BatchQueued(cells []string)
	// CellDispatched fires when a worker picks the cell up. queueNS is
	// the wall time the cell spent announced-but-undispatched.
	CellDispatched(cell string, worker int, queueNS int64)
	// CellSettled fires when the engine settles the cell — exactly once
	// per cell, every outcome class included. worker is -1 and queueNS 0
	// for cells canceled before any worker picked them up. runNS is the
	// observed run time; profile is the cell's telemetry snapshot when
	// one was salvaged (nil otherwise); cerr is nil on success.
	CellSettled(cell string, worker int, queueNS, runNS int64, profile *telemetry.CellProfile, cerr *CellError)
}

// Progress observes a running campaign. The hooks fire on the worker
// goroutines driving the cells, so implementations must synchronize
// internally and return quickly.
type Progress interface {
	// BatchStarted announces the cells about to be dispatched, in cell
	// order, before any of them runs.
	BatchStarted(cells []string)
	// CellStarted fires when a cell is picked up by a worker.
	CellStarted(cell string)
	// CellFinished fires when the engine settles the cell's outcome:
	// cerr is nil on success; profile is the cell's telemetry snapshot
	// when the runner profiles cells and the cell's goroutine could be
	// snapshotted (success, error and panic outcomes — hung and
	// canceled cells are abandoned with their recorder, so their
	// profile is nil).
	CellFinished(cell string, wall time.Duration, profile *telemetry.CellProfile, cerr *CellError)
}

// DefaultCellTimeout is the watchdog deadline applied when
// Runner.CellTimeout is zero. A healthy cell completes in well under a
// millisecond; five orders of magnitude of headroom keeps the watchdog
// out of every legitimate run while still unwedging a stuck matrix in
// human time.
const DefaultCellTimeout = 30 * time.Second

// workers resolves the configured pool size.
func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	if r.Workers < 0 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// cellTimeout resolves the watchdog deadline (0 = disabled).
func (r *Runner) cellTimeout() time.Duration {
	switch {
	case r.CellTimeout < 0:
		return 0
	case r.CellTimeout == 0:
		return DefaultCellTimeout
	}
	return r.CellTimeout
}

// FailureClass buckets how a campaign cell failed.
type FailureClass string

// Failure classes.
const (
	// FailError is an ordinary error return from the cell.
	FailError FailureClass = "error"
	// FailPanic is a recovered panic in the cell's worker.
	FailPanic FailureClass = "panic"
	// FailHang is a cell that exceeded the watchdog deadline.
	FailHang FailureClass = "hang"
	// FailCanceled is a cell cut short by context cancellation.
	FailCanceled FailureClass = "canceled"
)

// CellError is the per-cell failure record a fault-tolerant campaign
// carries instead of dying: which cell, how it failed, and — for panics
// — the sanitized stack of the worker goroutine.
type CellError struct {
	// Cell is the failing cell's "version/use-case/mode" identity.
	Cell string `json:"cell"`
	// Class buckets the failure.
	Class FailureClass `json:"class"`
	// Message is the error or panic text.
	Message string `json:"message"`
	// Stack is the panicking goroutine's stack, with goroutine header
	// and hex addresses normalized so identical faults produce
	// identical records at any worker count. Empty unless Class is
	// FailPanic.
	Stack string `json:"stack,omitempty"`

	cause error
}

// Error renders the record as "class: message".
func (e *CellError) Error() string { return string(e.Class) + ": " + e.Message }

// Unwrap exposes the underlying error (nil for panics and hangs).
func (e *CellError) Unwrap() error { return e.cause }

// hexLiteral and goroutineID match the parts of a panic stack that vary
// run to run (argument values, frame pointers, scheduler-assigned
// goroutine numbers in "created by ... in goroutine N" lines) —
// everything else in the stack is a property of the binary, so
// normalizing these makes the record deterministic at any worker count.
var (
	hexLiteral  = regexp.MustCompile(`0x[0-9a-fA-F]+`)
	goroutineID = regexp.MustCompile(`goroutine \d+`)
)

// sanitizeStack strips the "goroutine N [running]:" header and
// normalizes hex literals and goroutine numbers, keeping the function
// names and file:line frames a diagnosis needs.
func sanitizeStack(stack []byte) string {
	lines := strings.Split(strings.TrimRight(string(stack), "\n"), "\n")
	if len(lines) > 0 && strings.HasPrefix(lines[0], "goroutine ") {
		lines = lines[1:]
	}
	s := hexLiteral.ReplaceAllString(strings.Join(lines, "\n"), "0x?")
	return goroutineID.ReplaceAllString(s, "goroutine ?")
}

// cell is one (version, use case, mode) coordinate of a campaign.
type cell struct {
	version hv.Version
	useCase string
	mode    Mode
}

// plan is the version-independent part of the experimental setup,
// precomputed once per process instead of once per run: the scenario
// registry (declarative specs in campaign order), the derived scenario
// lookup, and the domain/IP layout of the standard environment.
// Everything in it is immutable after construction, so concurrent
// workers may share it freely.
type plan struct {
	specs      []exploits.Spec
	scenarios  map[string]exploits.Scenario
	order      []exploits.Scenario
	guestNames []string
	guestIPs   []string
}

var (
	planOnce   sync.Once
	sharedPlan *plan
)

// campaignPlan returns the shared warm-boot prototype.
func campaignPlan() *plan {
	planOnce.Do(func() {
		p := &plan{scenarios: make(map[string]exploits.Scenario)}
		p.specs = exploits.Specs()
		p.order = exploits.Scenarios()
		for _, s := range p.order {
			p.scenarios[s.Name] = s
		}
		p.guestIPs = []string{"10.3.1.178", "10.3.1.179", AttackerIP}
		for i := range p.guestIPs {
			p.guestNames = append(p.guestNames, fmt.Sprintf("guest%02d", i+1))
		}
		sharedPlan = p
	})
	return sharedPlan
}

// String renders the cell's trace identity, "version/use-case/mode".
func (c cell) String() string {
	return c.version.Name + "/" + c.useCase + "/" + string(c.mode)
}

// runCell executes one cell in its own fresh environment. It is the
// unit of work a pool worker owns; nothing it touches outlives the call
// or is shared with another cell. A non-nil registry gives the cell its
// own Recorder and merges the resulting profile; the recorder is
// single-goroutine by design, matching one-cell-one-worker ownership.
// A non-nil injector arms the cell's substrate fault plane the same
// way: one cell, one injector.
func runCell(c cell, reg *telemetry.Registry, inj *faults.Injector) (*RunResult, error) {
	var rec *telemetry.Recorder
	var start time.Time
	if reg != nil {
		rec = telemetry.NewRecorder(0)
		rec.AttachFaults(inj)
		start = time.Now()
	}
	return runCellWith(c, reg, rec, inj, nil, start, nil)
}

// runCellWith is runCell with the recorder owned by the caller, so the
// guarded path can snapshot a salvage profile from a cell that errors
// or panics mid-run. The recorder (and start, its creation time) must
// come from the same goroutine that calls this. tree, when non-nil, is
// the cell's span tree: the lifecycle phases (boot, exploit/inject,
// assess) open under its root, and the environment is built with the
// tree installed so hypercall and mm-op spans nest inside them. Error
// returns leave the failing phase open — the guarded caller's Abort
// closes and marks it. abandoned, when non-nil, is set by the guarded
// caller once it stops waiting for this cell (watchdog or cancel); a
// cell that finishes after that point must not recycle its machine fork
// — the runner already wrote it off as poisoned.
func runCellWith(c cell, reg *telemetry.Registry, rec *telemetry.Recorder, inj *faults.Injector, tree *span.Tree, start time.Time, abandoned *atomic.Bool) (*RunResult, error) {
	p := campaignPlan()
	scen, ok := p.scenarios[c.useCase]
	if !ok {
		// Fall through to the canonical lookup for its error message.
		var err error
		if scen, err = exploits.ScenarioByName(c.useCase); err != nil {
			return nil, err
		}
	}
	boot := tree.Phase(span.PhaseBoot)
	e, recycle, err := cellEnvironment(p, c, rec, inj, tree)
	if err != nil {
		return nil, err
	}
	env, err := e.ScenarioEnv(c.mode)
	if err != nil {
		return nil, err
	}
	tree.End(boot)
	// The attack phase is named after the cell's mode, so exploit and
	// injection trees for the same use case stay distinguishable.
	attack := span.PhaseExploit
	if c.mode == ModeInjection {
		attack = span.PhaseInject
	}
	ap := tree.Phase(attack)
	outcome := scen.Run(env)
	tree.End(ap)
	as := tree.Phase(span.PhaseAssess)
	verdict := monitor.Assess(e.HV, e.Guests, outcome)
	tree.End(as)
	res := &RunResult{Outcome: outcome, Verdict: verdict}
	if reg != nil {
		res.Profile = rec.Profile(c.String(), time.Since(start).Nanoseconds())
		reg.Record(res.Profile)
	}
	// Only a cleanly completed cell that the runner is still waiting for
	// returns its machine fork to the snapshot pool; every error path
	// above — and a cell the watchdog or a cancellation already wrote
	// off, even if it later unwedges and finishes — abandons a possibly
	// poisoned fork to the collector instead.
	if recycle != nil && (abandoned == nil || !abandoned.Load()) {
		recycle()
	}
	return res, nil
}

// cellOutcome pairs one cell's result with its failure record; exactly
// one of res/err is set. profile carries the cell's telemetry snapshot
// when one exists — on failure it is the salvage profile the flight
// recorder dumps. tree and latency carry the cell's span capture when
// the runner collects spans; sending them over the outcome channel is
// what hands tree ownership from the cell goroutine back to the worker
// (an abandoned cell keeps its tree, and the worker records a stub).
type cellOutcome struct {
	res     *RunResult
	err     *CellError
	profile *telemetry.CellProfile
	tree    *span.Tree
	latency span.Latency
	cov     *coverage.Map
}

// runGuarded executes one cell behind the engine's fault barriers: a
// recover() that converts a worker panic into a FailPanic record (with
// sanitized stack), a watchdog that classifies a runaway cell as
// FailHang, and the context, which classifies a cancelled cell as
// FailCanceled. The cell body runs on its own goroutine so the worker
// can abandon it; an abandoned body parks on a buffered channel and
// exits when it eventually finishes (or is released from a wedge), so
// nothing leaks once the campaign's injectors are released.
func (r *Runner) runGuarded(ctx context.Context, c cell, worker int, queuedAt time.Time) cellOutcome {
	id := c.String()
	if err := ctx.Err(); err != nil {
		return r.settle(id, -1, 0, 0, cellOutcome{err: &CellError{Cell: id, Class: FailCanceled, Message: err.Error(), cause: err}})
	}
	var inj *faults.Injector
	if r.Faults != nil {
		inj = r.Faults.ForCell(id)
	}
	if r.Progress != nil {
		r.Progress.CellStarted(id)
	}
	began := time.Now()
	queueNS := began.Sub(queuedAt).Nanoseconds()
	if queueNS < 0 {
		queueNS = 0
	}
	if r.Sched != nil {
		r.Sched.CellDispatched(id, worker, queueNS)
	}
	if r.Log != nil {
		r.Log.Debug("cell dispatched", "cell", id, "worker", worker, "queue_ns", queueNS)
	}
	done := make(chan cellOutcome, 1)
	// abandoned flips once the worker stops waiting (watchdog, cancel):
	// from then on the cell body, should it ever finish, must not
	// recycle its machine fork into the snapshot pool.
	var abandoned atomic.Bool
	// The cell body runs under pprof labels so CPU and goroutine
	// profiles of a live campaign attribute samples to the cell, its
	// scenario and its hypervisor version.
	go pprof.Do(ctx, pprof.Labels(
		"cell", id,
		"scenario", c.useCase,
		"version", c.version.Name,
	), func(context.Context) {
		// The cell's recorder and span tree live on this goroutine so a
		// panicking or erroring cell can still be snapshotted for the
		// flight recorder and the span forest. The watchdog/cancel paths
		// abandon the goroutine, the recorder and the tree with it —
		// they must never touch them.
		var rec *telemetry.Recorder
		var tree *span.Tree
		var start time.Time
		if r.Telemetry != nil || r.SalvageProfiles || r.Spans != nil || r.Coverage != nil || r.Observer != nil {
			rec = telemetry.NewRecorder(0)
			rec.AttachFaults(inj)
			start = time.Now()
		}
		if r.Coverage != nil || r.Observer != nil {
			rec.AttachCoverage(coverage.NewMap())
		}
		if r.Spans != nil || r.Observer != nil {
			tree = span.NewTree(id, rec.Emitted)
		}
		salvage := func() *telemetry.CellProfile {
			if rec == nil {
				return nil
			}
			return rec.Profile(id, time.Since(start).Nanoseconds())
		}
		defer func() {
			if p := recover(); p != nil {
				tree.Abort()
				done <- cellOutcome{err: &CellError{
					Cell:    id,
					Class:   FailPanic,
					Message: fmt.Sprint(p),
					Stack:   sanitizeStack(debug.Stack()),
				}, profile: salvage(), tree: tree, latency: span.DetectionLatency(tree, rec.Events()), cov: rec.Coverage()}
			}
		}()
		res, err := runCellWith(c, r.Telemetry, rec, inj, tree, start, &abandoned)
		if err != nil {
			tree.Abort()
			done <- cellOutcome{err: &CellError{Cell: id, Class: FailError, Message: err.Error(), cause: err},
				profile: salvage(), tree: tree, latency: span.DetectionLatency(tree, rec.Events()), cov: rec.Coverage()}
			return
		}
		tree.Finish()
		if res.Profile == nil && r.Observer != nil {
			// An observer receives the full outcome even without a
			// registry: the ledger persists the profile's effect stream.
			res.Profile = salvage()
		}
		done <- cellOutcome{res: res, profile: res.Profile, tree: tree, latency: span.DetectionLatency(tree, rec.Events()), cov: rec.Coverage()}
	})

	var watchdog <-chan time.Time
	if d := r.cellTimeout(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		watchdog = t.C
	}
	select {
	case out := <-done:
		return r.settleSpans(id, worker, began, queueNS, time.Since(began), out)
	case <-watchdog:
		abandoned.Store(true)
		return r.settleSpans(id, worker, began, queueNS, time.Since(began), cellOutcome{err: &CellError{
			Cell:    id,
			Class:   FailHang,
			Message: fmt.Sprintf("cell exceeded the %s watchdog deadline", r.cellTimeout()),
		}})
	case <-ctx.Done():
		abandoned.Store(true)
		return r.settleSpans(id, worker, began, queueNS, time.Since(began), cellOutcome{err: &CellError{Cell: id, Class: FailCanceled, Message: ctx.Err().Error(), cause: ctx.Err()}})
	}
}

// settle notifies the progress observer of a cell's settled outcome,
// files its coverage map, and passes it through. Every cell outcome —
// success, error, panic, hang, cancel, even cells never dispatched —
// funnels through here, so the coverage collector sees exactly one
// FinishCell per cell (abandoned cells file a nil map, which settles
// as empty coverage deterministically).
func (r *Runner) settle(id string, worker int, queueNS int64, wall time.Duration, out cellOutcome) cellOutcome {
	if r.Coverage != nil {
		r.Coverage.FinishCell(id, out.cov)
	}
	if r.Observer != nil {
		r.Observer.CellSettled(id, out.res, out.err, out.cov, out.latency, rootSpanV(out.tree), wall)
	}
	if r.Progress != nil {
		r.Progress.CellFinished(id, wall, out.profile, out.err)
	}
	if r.Sched != nil {
		r.Sched.CellSettled(id, worker, queueNS, wall.Nanoseconds(), out.profile, out.err)
	}
	if r.Log != nil {
		if out.err != nil {
			r.Log.Warn("cell failed", "cell", id, "worker", worker,
				"wall_ns", wall.Nanoseconds(), "class", string(out.err.Class), "error", out.err.Message)
		} else {
			r.Log.Debug("cell settled", "cell", id, "worker", worker,
				"wall_ns", wall.Nanoseconds(),
				"err_state", out.res.Verdict.ErroneousState,
				"sec_viol", out.res.Verdict.SecurityViolation)
		}
	}
	return out
}

// rootSpanV is the virtual-time length of a settled cell's span tree
// (its root span's duration), 0 for abandoned cells that kept no tree.
func rootSpanV(t *span.Tree) uint64 {
	if t == nil {
		return 0
	}
	spans := t.Spans()
	if len(spans) == 0 {
		return 0
	}
	return spans[0].EndV - spans[0].StartV
}

// settleSpans is settle for cells that actually started: it also files
// the cell's span capture with the collector and feeds the RQ3
// detection-latency histogram. Abandoned cells (hang, cancel while
// running) carry no tree — the stub records only worker, wall placement
// and failure class, and the racing goroutine keeps its tree.
func (r *Runner) settleSpans(id string, worker int, began time.Time, queueNS int64, wall time.Duration, out cellOutcome) cellOutcome {
	if r.Spans != nil {
		cs := &span.CellSpans{
			Cell:     id,
			Worker:   worker,
			OffsetNS: began.Sub(r.Spans.Epoch()).Nanoseconds(),
			WallNS:   wall.Nanoseconds(),
			Latency:  out.latency,
			Tree:     out.tree,
		}
		if out.err != nil {
			cs.Class = string(out.err.Class)
		}
		r.Spans.FinishCell(cs)
		if r.Telemetry != nil && out.latency.Found && out.latency.Events >= 0 {
			r.Telemetry.Histogram(telemetry.DetectionLatencyHistogram).Observe(uint64(out.latency.Events))
		}
	}
	return r.settle(id, worker, queueNS, wall, out)
}

// runCellsDetailed executes a batch of cells and returns one outcome
// per cell, in cell order, never failing as a whole: panics, hangs and
// cancellation all land as per-cell records. On cancellation, cells
// never dispatched are marked FailCanceled without running.
func (r *Runner) runCellsDetailed(ctx context.Context, cells []cell) []cellOutcome {
	outs := make([]cellOutcome, len(cells))
	if r.Progress != nil || r.Spans != nil || r.Coverage != nil || r.Sched != nil || r.Log != nil {
		ids := make([]string, len(cells))
		for i, c := range cells {
			ids[i] = c.String()
		}
		if r.Progress != nil {
			r.Progress.BatchStarted(ids)
		}
		if r.Spans != nil {
			r.Spans.StartBatch(ids)
		}
		if r.Coverage != nil {
			r.Coverage.StartBatch(ids)
		}
		if r.Sched != nil {
			r.Sched.BatchQueued(ids)
		}
		if r.Log != nil {
			r.Log.Info("batch queued", "cells", len(ids), "workers", r.workers())
		}
	}
	// queuedAt anchors every cell's queue-wait measurement: a cell is
	// runnable from the moment its batch is announced, so its dispatch
	// latency is pickup time minus this.
	queuedAt := time.Now()
	n := r.workers()
	if n > len(cells) {
		n = len(cells)
	}
	if n <= 1 {
		for i, c := range cells {
			outs[i] = r.runGuarded(ctx, c, 0, queuedAt)
		}
		return outs
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range next {
				outs[i] = r.runGuarded(ctx, cells[i], w, queuedAt)
			}
		}(w)
	}
	for i := range cells {
		select {
		case next <- i:
		case <-ctx.Done():
			err := ctx.Err()
			for j := i; j < len(cells); j++ {
				outs[j] = r.settle(cells[j].String(), -1, 0, 0, cellOutcome{err: &CellError{
					Cell: cells[j].String(), Class: FailCanceled, Message: err.Error(), cause: err,
				}})
			}
			close(next)
			wg.Wait()
			return outs
		}
	}
	close(next)
	wg.Wait()
	return outs
}

// runCells executes a batch of cells and returns results in cell order.
// wrap contextualizes a cell's error for the caller's experiment.
// Failure semantics are uniform across pool sizes: every cell runs to
// completion and the first error in cell order is reported, so serial
// and parallel runs of a partially failing batch agree on the error.
// With ContinueOnError no error is reported; the caller reads the
// per-cell records instead.
func (r *Runner) runCells(ctx context.Context, cells []cell, wrap func(cell, error) error) ([]*RunResult, []*CellError, error) {
	outs := r.runCellsDetailed(ctx, cells)
	results := make([]*RunResult, len(cells))
	cerrs := make([]*CellError, len(cells))
	for i, o := range outs {
		results[i], cerrs[i] = o.res, o.err
	}
	if !r.ContinueOnError {
		for i, ce := range cerrs {
			if ce == nil {
				continue
			}
			// Plain errors surface exactly as they always have (the
			// cause, not the record), preserving the engine's
			// first-error-in-cell-order messages byte for byte; the
			// classes that used to kill or wedge the process surface
			// as their records.
			err := error(ce)
			if ce.Class == FailError {
				err = ce.cause
			}
			return nil, nil, wrap(cells[i], err)
		}
	}
	return results, cerrs, nil
}

// firstFailure returns the first per-cell failure in cell order, nil if
// every cell succeeded. Experiments whose row shapes need every cell
// use it to fail even under ContinueOnError.
func firstFailure(cells []cell, cerrs []*CellError, wrap func(cell, error) error) error {
	for i, ce := range cerrs {
		if ce != nil {
			return wrap(cells[i], ce)
		}
	}
	return nil
}

// Run executes one cell under the runner's telemetry and fault
// configuration: the single-cell entry point behind the CLI's -cell
// flag. It runs behind the same barriers as a campaign cell, so a
// panicking or wedged cell reports a classified error instead of
// killing the caller.
func (r *Runner) Run(v hv.Version, useCase string, mode Mode) (*RunResult, error) {
	return r.RunContext(context.Background(), v, useCase, mode)
}

// RunContext is Run under a context: cancellation classifies the cell
// as canceled instead of letting it run to completion.
func (r *Runner) RunContext(ctx context.Context, v hv.Version, useCase string, mode Mode) (*RunResult, error) {
	out := r.runGuarded(ctx, cell{version: v, useCase: useCase, mode: mode}, 0, time.Now())
	if out.err != nil {
		if out.err.Class == FailError {
			return nil, out.err.cause
		}
		return nil, out.err
	}
	return out.res, nil
}

// RunFig4 executes the RQ1 experiment (every use case, exploit vs
// injection, on the vulnerable 4.6 version) across the pool.
func (r *Runner) RunFig4() ([]Fig4Row, error) {
	return r.RunFig4Context(context.Background())
}

// applicable filters the registry to the specs scheduling cells on the
// version.
func applicable(specs []exploits.Spec, version string) []exploits.Spec {
	out := make([]exploits.Spec, 0, len(specs))
	for _, s := range specs {
		if s.AppliesTo(version) {
			out = append(out, s)
		}
	}
	return out
}

// RunFig4Context is RunFig4 under a context: cancellation stops
// dispatching cells and reports the first unfinished cell. The figure's
// rows need every cell, so a failed cell is an error even under
// ContinueOnError.
func (r *Runner) RunFig4Context(ctx context.Context) ([]Fig4Row, error) {
	v := hv.Version46()
	specs := applicable(campaignPlan().specs, v.Name)
	cells := make([]cell, 0, 2*len(specs))
	for _, s := range specs {
		cells = append(cells,
			cell{v, s.Name, ModeExploit},
			cell{v, s.Name, ModeInjection})
	}
	wrap := func(c cell, err error) error {
		return fmt.Errorf("campaign: fig4 %s %s: %w", c.useCase, c.mode, err)
	}
	results, cerrs, err := r.runCells(ctx, cells, wrap)
	if err != nil {
		return nil, err
	}
	if err := firstFailure(cells, cerrs, wrap); err != nil {
		return nil, err
	}
	rows := make([]Fig4Row, 0, len(specs))
	for i, s := range specs {
		ex, in := results[2*i], results[2*i+1]
		rows = append(rows, Fig4Row{
			UseCase:         s.Name,
			Exploit:         ex,
			Injection:       in,
			StatesMatch:     ex.Verdict.ErroneousState == in.Verdict.ErroneousState,
			ViolationsMatch: ex.Verdict.SecurityViolation == in.Verdict.SecurityViolation,
		})
	}
	return rows, nil
}

// RunTable3 executes the RQ2/RQ3 injection campaign (every use case's
// injection script against 4.8 and 4.13) across the pool.
func (r *Runner) RunTable3() ([]Table3Row, error) {
	return r.RunTable3Context(context.Background())
}

// RunTable3Context is RunTable3 under a context. The table's rows need
// every cell, so a failed cell is an error even under ContinueOnError.
func (r *Runner) RunTable3Context(ctx context.Context) ([]Table3Row, error) {
	p := campaignPlan()
	versions := Table3Versions()
	cells := make([]cell, 0, len(p.specs)*len(versions))
	for _, s := range p.specs {
		for _, v := range versions {
			if s.AppliesTo(v.Name) {
				cells = append(cells, cell{v, s.Name, ModeInjection})
			}
		}
	}
	wrap := func(c cell, err error) error {
		return fmt.Errorf("campaign: table3 %s on %s: %w", c.useCase, c.version.Name, err)
	}
	results, cerrs, err := r.runCells(ctx, cells, wrap)
	if err != nil {
		return nil, err
	}
	if err := firstFailure(cells, cerrs, wrap); err != nil {
		return nil, err
	}
	rows := make([]Table3Row, 0, len(p.specs))
	next := 0
	for _, s := range p.specs {
		row := Table3Row{UseCase: s.Name, Cells: make(map[string]Table3Cell, len(versions))}
		for _, v := range versions {
			if !s.AppliesTo(v.Name) {
				continue
			}
			res := results[next]
			next++
			row.Cells[v.Name] = Table3Cell{
				ErrState: res.Verdict.ErroneousState,
				SecViol:  res.Verdict.SecurityViolation,
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunMatrix executes the full campaign — every version, every registry
// spec applicable to it, both modes, each cell in a fresh environment —
// across the pool.
func (r *Runner) RunMatrix() ([]MatrixEntry, error) {
	return r.RunMatrixContext(context.Background())
}

// RunMatrixContext is RunMatrix under a context. Under ContinueOnError
// it never fails: every cell appears in the returned entries, failed
// ones carrying their *CellError in Err with a nil Result.
func (r *Runner) RunMatrixContext(ctx context.Context) ([]MatrixEntry, error) {
	return r.runMatrixSpecs(ctx, campaignPlan().specs)
}

// RunMatrixSpecs is RunMatrixContext over an explicit spec list: the
// same scheduling, dispatch and settle path as the full matrix, scoped
// to a registry subset. The seed-identity regression uses it to run the
// original paper scenarios alone and diff their artifacts against the
// frozen pre-expansion output.
func (r *Runner) RunMatrixSpecs(ctx context.Context, specs []exploits.Spec) ([]MatrixEntry, error) {
	return r.runMatrixSpecs(ctx, specs)
}

// CellRef identifies one campaign cell by name — the resumable-campaign
// currency: a run-ledger delta plan is a list of refs in dispatch order.
type CellRef struct {
	Version string
	UseCase string
	Mode    Mode
}

// RunCellRefs executes an explicit cell list, the delta-rerun entry
// point behind `repro -ledger -resume`. Refs run in the given order
// through the same dispatch and settle path as a full matrix, so a
// subset rerun is deterministic exactly like the campaign it patches —
// callers must pass refs in dispatch order (version-major, registry
// spec order, exploit before injection) for the settled artifacts to
// merge byte-identically. An unknown version name is an error before
// anything runs.
func (r *Runner) RunCellRefs(ctx context.Context, refs []CellRef) ([]MatrixEntry, error) {
	cells := make([]cell, 0, len(refs))
	for _, ref := range refs {
		v, err := hv.VersionByName(ref.Version)
		if err != nil {
			return nil, fmt.Errorf("campaign: cell ref %s/%s/%s: %w", ref.Version, ref.UseCase, ref.Mode, err)
		}
		cells = append(cells, cell{v, ref.UseCase, ref.Mode})
	}
	results, cerrs, err := r.runCells(ctx, cells, func(c cell, err error) error {
		return fmt.Errorf("campaign: matrix %s/%s/%s: %w", c.version.Name, c.useCase, c.mode, err)
	})
	if err != nil {
		return nil, err
	}
	out := make([]MatrixEntry, len(cells))
	for i, c := range cells {
		out[i] = MatrixEntry{Version: c.version.Name, UseCase: c.useCase, Mode: c.mode, Result: results[i], Err: cerrs[i]}
	}
	return out, nil
}

// runMatrixSpecs is RunMatrixContext over an explicit spec list, so the
// seed-identity tests can run the original scenarios alone.
func (r *Runner) runMatrixSpecs(ctx context.Context, specs []exploits.Spec) ([]MatrixEntry, error) {
	var cells []cell
	for _, v := range hv.Versions() {
		for _, s := range specs {
			if !s.AppliesTo(v.Name) {
				continue
			}
			for _, mode := range []Mode{ModeExploit, ModeInjection} {
				cells = append(cells, cell{v, s.Name, mode})
			}
		}
	}
	results, cerrs, err := r.runCells(ctx, cells, func(c cell, err error) error {
		return fmt.Errorf("campaign: matrix %s/%s/%s: %w", c.version.Name, c.useCase, c.mode, err)
	})
	if err != nil {
		return nil, err
	}
	out := make([]MatrixEntry, len(cells))
	for i, c := range cells {
		out[i] = MatrixEntry{Version: c.version.Name, UseCase: c.useCase, Mode: c.mode, Result: results[i], Err: cerrs[i]}
	}
	return out, nil
}

// SecurityBenchmark runs the injection campaign (all use cases) against
// every version across the pool and aggregates per-version scores.
func (r *Runner) SecurityBenchmark() ([]Score, error) {
	return r.SecurityBenchmarkContext(context.Background())
}

// SecurityBenchmarkContext is SecurityBenchmark under a context. The
// aggregate scores need every cell, so a failed cell is an error even
// under ContinueOnError.
func (r *Runner) SecurityBenchmarkContext(ctx context.Context) ([]Score, error) {
	return r.securityBenchmarkSpecs(ctx, campaignPlan().specs)
}

// SecurityBenchmarkSpecs is SecurityBenchmarkContext over an explicit
// spec list, scoped like RunMatrixSpecs.
func (r *Runner) SecurityBenchmarkSpecs(ctx context.Context, specs []exploits.Spec) ([]Score, error) {
	return r.securityBenchmarkSpecs(ctx, specs)
}

// securityBenchmarkSpecs is SecurityBenchmarkContext over an explicit
// spec list, so the seed-identity tests can score the original
// scenarios alone.
func (r *Runner) securityBenchmarkSpecs(ctx context.Context, specs []exploits.Spec) ([]Score, error) {
	versions := hv.Versions()
	cells := make([]cell, 0, len(versions)*len(specs))
	for _, v := range versions {
		for _, s := range specs {
			if s.AppliesTo(v.Name) {
				cells = append(cells, cell{v, s.Name, ModeInjection})
			}
		}
	}
	wrap := func(c cell, err error) error {
		return fmt.Errorf("campaign: benchmark %s on %s: %w", c.useCase, c.version.Name, err)
	}
	results, cerrs, err := r.runCells(ctx, cells, wrap)
	if err != nil {
		return nil, err
	}
	if err := firstFailure(cells, cerrs, wrap); err != nil {
		return nil, err
	}
	scores := make([]Score, 0, len(versions))
	next := 0
	for _, v := range versions {
		s := Score{Version: v.Name}
		for _, sp := range specs {
			if !sp.AppliesTo(v.Name) {
				continue
			}
			verdict := results[next].Verdict
			next++
			if !verdict.ErroneousState {
				s.FailedInjections++
				continue
			}
			s.StatesInjected++
			if verdict.SecurityViolation {
				s.Violations++
			} else {
				s.Handled++
			}
		}
		scores = append(scores, s)
	}
	return scores, nil
}
