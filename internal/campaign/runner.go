package campaign

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/exploits"
	"repro/internal/hv"
	"repro/internal/monitor"
)

// The parallel campaign engine. Every cell of the paper's evaluation
// runs "in a fresh environment" by design — no state is shared between
// runs — so the 24-run matrix is embarrassingly parallel. The Runner
// fans cells out to a worker pool of goroutine-owned environments and
// reassembles the results in deterministic cell order, so the rendered
// tables are byte-identical to the serial path no matter how many
// workers raced to produce them.

// Runner executes campaign cells on a configurable worker pool.
// The zero value uses one worker per available CPU.
type Runner struct {
	// Workers is the worker-pool size. Zero (or negative) means
	// GOMAXPROCS. Workers == 1 runs cells strictly serially in cell
	// order — today's single-threaded behaviour, kept for debugging —
	// and stops at the first failing cell instead of finishing the
	// batch.
	Workers int
}

// workers resolves the configured pool size.
func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// cell is one (version, use case, mode) coordinate of a campaign.
type cell struct {
	version hv.Version
	useCase string
	mode    Mode
}

// plan is the version-independent part of the experimental setup,
// precomputed once per process instead of once per run: the scenario
// lookup, the paper-ordered scenario list, and the domain/IP layout of
// the standard environment. Everything in it is immutable after
// construction, so concurrent workers may share it freely.
type plan struct {
	scenarios  map[string]exploits.Scenario
	order      []exploits.Scenario
	guestNames []string
	guestIPs   []string
}

var (
	planOnce   sync.Once
	sharedPlan *plan
)

// campaignPlan returns the shared warm-boot prototype.
func campaignPlan() *plan {
	planOnce.Do(func() {
		p := &plan{scenarios: make(map[string]exploits.Scenario)}
		p.order = exploits.Scenarios()
		for _, s := range p.order {
			p.scenarios[s.Name] = s
		}
		p.guestIPs = []string{"10.3.1.178", "10.3.1.179", AttackerIP}
		for i := range p.guestIPs {
			p.guestNames = append(p.guestNames, fmt.Sprintf("guest%02d", i+1))
		}
		sharedPlan = p
	})
	return sharedPlan
}

// runCell executes one cell in its own fresh environment. It is the
// unit of work a pool worker owns; nothing it touches outlives the call
// or is shared with another cell.
func runCell(c cell) (*RunResult, error) {
	p := campaignPlan()
	scen, ok := p.scenarios[c.useCase]
	if !ok {
		// Fall through to the canonical lookup for its error message.
		var err error
		if scen, err = exploits.ScenarioByName(c.useCase); err != nil {
			return nil, err
		}
	}
	e, err := newEnvironment(p, c.version, c.mode)
	if err != nil {
		return nil, err
	}
	env, err := e.ScenarioEnv(c.mode)
	if err != nil {
		return nil, err
	}
	outcome := scen.Run(env)
	verdict := monitor.Assess(e.HV, e.Guests, outcome)
	return &RunResult{Outcome: outcome, Verdict: verdict}, nil
}

// runCells executes a batch of cells and returns results in cell order.
// wrap contextualizes a cell's error for the caller's experiment. With
// more than one worker every cell runs to completion and the first
// error in cell order is reported, matching the serial path's choice of
// error deterministically.
func (r *Runner) runCells(cells []cell, wrap func(cell, error) error) ([]*RunResult, error) {
	results := make([]*RunResult, len(cells))
	n := r.workers()
	if n > len(cells) {
		n = len(cells)
	}
	if n <= 1 {
		for i, c := range cells {
			res, err := runCell(c)
			if err != nil {
				return nil, wrap(c, err)
			}
			results[i] = res
		}
		return results, nil
	}
	errs := make([]error, len(cells))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = runCell(cells[i])
			}
		}()
	}
	for i := range cells {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, wrap(cells[i], err)
		}
	}
	return results, nil
}

// RunFig4 executes the RQ1 experiment (every use case, exploit vs
// injection, on the vulnerable 4.6 version) across the pool.
func (r *Runner) RunFig4() ([]Fig4Row, error) {
	v := hv.Version46()
	p := campaignPlan()
	cells := make([]cell, 0, 2*len(p.order))
	for _, s := range p.order {
		cells = append(cells,
			cell{v, s.Name, ModeExploit},
			cell{v, s.Name, ModeInjection})
	}
	results, err := r.runCells(cells, func(c cell, err error) error {
		return fmt.Errorf("campaign: fig4 %s %s: %w", c.useCase, c.mode, err)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig4Row, 0, len(p.order))
	for i, s := range p.order {
		ex, in := results[2*i], results[2*i+1]
		rows = append(rows, Fig4Row{
			UseCase:         s.Name,
			Exploit:         ex,
			Injection:       in,
			StatesMatch:     ex.Verdict.ErroneousState == in.Verdict.ErroneousState,
			ViolationsMatch: ex.Verdict.SecurityViolation == in.Verdict.SecurityViolation,
		})
	}
	return rows, nil
}

// RunTable3 executes the RQ2/RQ3 injection campaign (every use case's
// injection script against 4.8 and 4.13) across the pool.
func (r *Runner) RunTable3() ([]Table3Row, error) {
	p := campaignPlan()
	versions := Table3Versions()
	cells := make([]cell, 0, len(p.order)*len(versions))
	for _, s := range p.order {
		for _, v := range versions {
			cells = append(cells, cell{v, s.Name, ModeInjection})
		}
	}
	results, err := r.runCells(cells, func(c cell, err error) error {
		return fmt.Errorf("campaign: table3 %s on %s: %w", c.useCase, c.version.Name, err)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, 0, len(p.order))
	for i, s := range p.order {
		row := Table3Row{UseCase: s.Name, Cells: make(map[string]Table3Cell, len(versions))}
		for j, v := range versions {
			res := results[i*len(versions)+j]
			row.Cells[v.Name] = Table3Cell{
				ErrState: res.Verdict.ErroneousState,
				SecViol:  res.Verdict.SecurityViolation,
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunMatrix executes the full 3 versions x 4 use cases x 2 modes
// campaign (24 runs, each in a fresh environment) across the pool.
func (r *Runner) RunMatrix() ([]MatrixEntry, error) {
	p := campaignPlan()
	var cells []cell
	for _, v := range hv.Versions() {
		for _, s := range p.order {
			for _, mode := range []Mode{ModeExploit, ModeInjection} {
				cells = append(cells, cell{v, s.Name, mode})
			}
		}
	}
	results, err := r.runCells(cells, func(c cell, err error) error {
		return fmt.Errorf("campaign: matrix %s/%s/%s: %w", c.version.Name, c.useCase, c.mode, err)
	})
	if err != nil {
		return nil, err
	}
	out := make([]MatrixEntry, len(cells))
	for i, c := range cells {
		out[i] = MatrixEntry{Version: c.version.Name, UseCase: c.useCase, Mode: c.mode, Result: results[i]}
	}
	return out, nil
}

// SecurityBenchmark runs the injection campaign (all use cases) against
// every version across the pool and aggregates per-version scores.
func (r *Runner) SecurityBenchmark() ([]Score, error) {
	p := campaignPlan()
	versions := hv.Versions()
	cells := make([]cell, 0, len(versions)*len(p.order))
	for _, v := range versions {
		for _, s := range p.order {
			cells = append(cells, cell{v, s.Name, ModeInjection})
		}
	}
	results, err := r.runCells(cells, func(c cell, err error) error {
		return fmt.Errorf("campaign: benchmark %s on %s: %w", c.useCase, c.version.Name, err)
	})
	if err != nil {
		return nil, err
	}
	scores := make([]Score, 0, len(versions))
	for i, v := range versions {
		s := Score{Version: v.Name}
		for j := range p.order {
			verdict := results[i*len(p.order)+j].Verdict
			if !verdict.ErroneousState {
				s.FailedInjections++
				continue
			}
			s.StatesInjected++
			if verdict.SecurityViolation {
				s.Violations++
			} else {
				s.Handled++
			}
		}
		scores = append(scores, s)
	}
	return scores, nil
}
