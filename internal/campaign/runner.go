package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/exploits"
	"repro/internal/hv"
	"repro/internal/monitor"
	"repro/internal/telemetry"
)

// The parallel campaign engine. Every cell of the paper's evaluation
// runs "in a fresh environment" by design — no state is shared between
// runs — so the 24-run matrix is embarrassingly parallel. The Runner
// fans cells out to a worker pool of goroutine-owned environments and
// reassembles the results in deterministic cell order, so the rendered
// tables are byte-identical to the serial path no matter how many
// workers raced to produce them.

// Runner executes campaign cells on a configurable worker pool.
// The zero value uses one worker per available CPU.
type Runner struct {
	// Workers is the worker-pool size. Zero (or negative) means
	// GOMAXPROCS. Workers == 1 runs cells strictly serially in cell
	// order, kept for debugging. Failure semantics are identical at any
	// pool size: every cell runs to completion and the first error in
	// cell order is reported.
	Workers int

	// Telemetry, when set, profiles every cell: each gets a fresh
	// per-environment Recorder, and its counters, wall time and retained
	// events are snapshotted into RunResult.Profile and merged into the
	// registry. Nil disables profiling at near-zero cost.
	Telemetry *telemetry.Registry
}

// workers resolves the configured pool size.
func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// cell is one (version, use case, mode) coordinate of a campaign.
type cell struct {
	version hv.Version
	useCase string
	mode    Mode
}

// plan is the version-independent part of the experimental setup,
// precomputed once per process instead of once per run: the scenario
// lookup, the paper-ordered scenario list, and the domain/IP layout of
// the standard environment. Everything in it is immutable after
// construction, so concurrent workers may share it freely.
type plan struct {
	scenarios  map[string]exploits.Scenario
	order      []exploits.Scenario
	guestNames []string
	guestIPs   []string
}

var (
	planOnce   sync.Once
	sharedPlan *plan
)

// campaignPlan returns the shared warm-boot prototype.
func campaignPlan() *plan {
	planOnce.Do(func() {
		p := &plan{scenarios: make(map[string]exploits.Scenario)}
		p.order = exploits.Scenarios()
		for _, s := range p.order {
			p.scenarios[s.Name] = s
		}
		p.guestIPs = []string{"10.3.1.178", "10.3.1.179", AttackerIP}
		for i := range p.guestIPs {
			p.guestNames = append(p.guestNames, fmt.Sprintf("guest%02d", i+1))
		}
		sharedPlan = p
	})
	return sharedPlan
}

// String renders the cell's trace identity, "version/use-case/mode".
func (c cell) String() string {
	return c.version.Name + "/" + c.useCase + "/" + string(c.mode)
}

// runCell executes one cell in its own fresh environment. It is the
// unit of work a pool worker owns; nothing it touches outlives the call
// or is shared with another cell. A non-nil registry gives the cell its
// own Recorder and merges the resulting profile; the recorder is
// single-goroutine by design, matching one-cell-one-worker ownership.
func runCell(c cell, reg *telemetry.Registry) (*RunResult, error) {
	p := campaignPlan()
	scen, ok := p.scenarios[c.useCase]
	if !ok {
		// Fall through to the canonical lookup for its error message.
		var err error
		if scen, err = exploits.ScenarioByName(c.useCase); err != nil {
			return nil, err
		}
	}
	var rec *telemetry.Recorder
	var start time.Time
	if reg != nil {
		rec = telemetry.NewRecorder(0)
		start = time.Now()
	}
	e, err := newEnvironment(p, c.version, c.mode, rec)
	if err != nil {
		return nil, err
	}
	env, err := e.ScenarioEnv(c.mode)
	if err != nil {
		return nil, err
	}
	outcome := scen.Run(env)
	verdict := monitor.Assess(e.HV, e.Guests, outcome)
	res := &RunResult{Outcome: outcome, Verdict: verdict}
	if reg != nil {
		res.Profile = rec.Profile(c.String(), time.Since(start).Nanoseconds())
		reg.Record(res.Profile)
	}
	return res, nil
}

// runCells executes a batch of cells and returns results in cell order.
// wrap contextualizes a cell's error for the caller's experiment.
// Failure semantics are uniform across pool sizes: every cell runs to
// completion and the first error in cell order is reported, so serial
// and parallel runs of a partially failing batch agree on the error.
func (r *Runner) runCells(cells []cell, wrap func(cell, error) error) ([]*RunResult, error) {
	results := make([]*RunResult, len(cells))
	errs := make([]error, len(cells))
	n := r.workers()
	if n > len(cells) {
		n = len(cells)
	}
	if n <= 1 {
		for i, c := range cells {
			results[i], errs[i] = runCell(c, r.Telemetry)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(n)
		for w := 0; w < n; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = runCell(cells[i], r.Telemetry)
				}
			}()
		}
		for i := range cells {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, wrap(cells[i], err)
		}
	}
	return results, nil
}

// Run executes one cell under the runner's telemetry configuration: the
// single-cell entry point behind the CLI's -cell flag.
func (r *Runner) Run(v hv.Version, useCase string, mode Mode) (*RunResult, error) {
	return runCell(cell{version: v, useCase: useCase, mode: mode}, r.Telemetry)
}

// RunFig4 executes the RQ1 experiment (every use case, exploit vs
// injection, on the vulnerable 4.6 version) across the pool.
func (r *Runner) RunFig4() ([]Fig4Row, error) {
	v := hv.Version46()
	p := campaignPlan()
	cells := make([]cell, 0, 2*len(p.order))
	for _, s := range p.order {
		cells = append(cells,
			cell{v, s.Name, ModeExploit},
			cell{v, s.Name, ModeInjection})
	}
	results, err := r.runCells(cells, func(c cell, err error) error {
		return fmt.Errorf("campaign: fig4 %s %s: %w", c.useCase, c.mode, err)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig4Row, 0, len(p.order))
	for i, s := range p.order {
		ex, in := results[2*i], results[2*i+1]
		rows = append(rows, Fig4Row{
			UseCase:         s.Name,
			Exploit:         ex,
			Injection:       in,
			StatesMatch:     ex.Verdict.ErroneousState == in.Verdict.ErroneousState,
			ViolationsMatch: ex.Verdict.SecurityViolation == in.Verdict.SecurityViolation,
		})
	}
	return rows, nil
}

// RunTable3 executes the RQ2/RQ3 injection campaign (every use case's
// injection script against 4.8 and 4.13) across the pool.
func (r *Runner) RunTable3() ([]Table3Row, error) {
	p := campaignPlan()
	versions := Table3Versions()
	cells := make([]cell, 0, len(p.order)*len(versions))
	for _, s := range p.order {
		for _, v := range versions {
			cells = append(cells, cell{v, s.Name, ModeInjection})
		}
	}
	results, err := r.runCells(cells, func(c cell, err error) error {
		return fmt.Errorf("campaign: table3 %s on %s: %w", c.useCase, c.version.Name, err)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, 0, len(p.order))
	for i, s := range p.order {
		row := Table3Row{UseCase: s.Name, Cells: make(map[string]Table3Cell, len(versions))}
		for j, v := range versions {
			res := results[i*len(versions)+j]
			row.Cells[v.Name] = Table3Cell{
				ErrState: res.Verdict.ErroneousState,
				SecViol:  res.Verdict.SecurityViolation,
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunMatrix executes the full 3 versions x 4 use cases x 2 modes
// campaign (24 runs, each in a fresh environment) across the pool.
func (r *Runner) RunMatrix() ([]MatrixEntry, error) {
	p := campaignPlan()
	var cells []cell
	for _, v := range hv.Versions() {
		for _, s := range p.order {
			for _, mode := range []Mode{ModeExploit, ModeInjection} {
				cells = append(cells, cell{v, s.Name, mode})
			}
		}
	}
	results, err := r.runCells(cells, func(c cell, err error) error {
		return fmt.Errorf("campaign: matrix %s/%s/%s: %w", c.version.Name, c.useCase, c.mode, err)
	})
	if err != nil {
		return nil, err
	}
	out := make([]MatrixEntry, len(cells))
	for i, c := range cells {
		out[i] = MatrixEntry{Version: c.version.Name, UseCase: c.useCase, Mode: c.mode, Result: results[i]}
	}
	return out, nil
}

// SecurityBenchmark runs the injection campaign (all use cases) against
// every version across the pool and aggregates per-version scores.
func (r *Runner) SecurityBenchmark() ([]Score, error) {
	p := campaignPlan()
	versions := hv.Versions()
	cells := make([]cell, 0, len(versions)*len(p.order))
	for _, v := range versions {
		for _, s := range p.order {
			cells = append(cells, cell{v, s.Name, ModeInjection})
		}
	}
	results, err := r.runCells(cells, func(c cell, err error) error {
		return fmt.Errorf("campaign: benchmark %s on %s: %w", c.useCase, c.version.Name, err)
	})
	if err != nil {
		return nil, err
	}
	scores := make([]Score, 0, len(versions))
	for i, v := range versions {
		s := Score{Version: v.Name}
		for j := range p.order {
			verdict := results[i*len(p.order)+j].Verdict
			if !verdict.ErroneousState {
				s.FailedInjections++
				continue
			}
			s.StatesInjected++
			if verdict.SecurityViolation {
				s.Violations++
			} else {
				s.Handled++
			}
		}
		scores = append(scores, s)
	}
	return scores, nil
}
