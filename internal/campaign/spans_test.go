package campaign_test

// The causal span layer's campaign-level contract: span trees are
// measured in virtual time, so the forest's canonical structure — and
// the RQ3 detection latencies derived from it — are byte-identical at
// any worker count and pinned here as goldens; installing the
// collector changes no rendered artifact; and every tree the engine
// salvages from a chaos-faulted cell still satisfies the
// closed-exactly-once invariant.

import (
	"context"
	"crypto/sha256"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/faults"
	"repro/internal/report"
	"repro/internal/span"
)

// matrixForest runs the full matrix with span collection at the given
// pool size and returns the snapshot.
func matrixForest(t *testing.T, workers int, opts func(*campaign.Runner)) *span.Forest {
	t.Helper()
	r := &campaign.Runner{Workers: workers, Spans: span.NewCollector()}
	if opts != nil {
		opts(r)
	}
	if _, err := r.RunMatrixContext(context.Background()); err != nil {
		t.Fatalf("workers=%d RunMatrix: %v", workers, err)
	}
	return r.Spans.Forest()
}

// matrixForestDigest is the pinned SHA-256 of the default matrix's
// canonical span forest. It moves only when the simulated stack's
// event flow changes — which is exactly the kind of change that must
// be reviewed, not absorbed.
const matrixForestDigest = "d691b31efbf5439e5f824c3757d0089a96de2640beacd2b8c491425a2bdf7dc2"

// The golden canonical subtree of one injection cell, pinned in full:
// boot's page-table allocations, the three-step arbitrary_access
// injection, and the assess audit, all in event-count time.
const goldenInjectionCell = `  4.6/XSA-148-priv/injection latency=0
    cell "4.6/XSA-148-priv/injection" [0,283]
      phase "boot" [0,259]
        mm_op "alloc_range[16]" [0,0]
        mm_op "alloc_range[32]" [0,0]
        mm_op "alloc_range[64]" [3,3]
        mm_op "alloc_range[64]" [67,67]
        mm_op "alloc_range[64]" [131,131]
        mm_op "alloc_range[64]" [195,195]
      phase "inject" [259,281]
        hypercall "arbitrary_access" [262,265]
        hypercall "arbitrary_access" [266,269]
        hypercall "arbitrary_access" [271,274]
      phase "assess" [281,283]
        audit "audit:XSA-148-priv" [281,283]
`

func TestMatrixSpanForestDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := matrixForest(t, 1, nil)
	if err := serial.Check(); err != nil {
		t.Fatalf("serial forest invariants: %v", err)
	}
	canon := serial.Canonical()
	for _, w := range workerCounts[1:] {
		f := matrixForest(t, w, nil)
		if err := f.Check(); err != nil {
			t.Fatalf("workers=%d forest invariants: %v", w, err)
		}
		if got := f.Canonical(); got != canon {
			t.Errorf("workers=%d canonical forest differs from serial", w)
		}
	}
	if got := fmt.Sprintf("%x", sha256.Sum256([]byte(canon))); got != matrixForestDigest {
		t.Errorf("canonical forest digest = %s, want pinned %s\n(structure changed; review the canonical diff and re-pin)\n%s",
			got, matrixForestDigest, canon)
	}
	if !strings.Contains(canon, goldenInjectionCell) {
		t.Errorf("canonical forest lost the pinned 4.6/XSA-148-priv/injection subtree:\n%s", canon)
	}
	if cells := serial.Cells(); len(cells) != 102 {
		t.Errorf("forest has %d cells, want the full 102-cell matrix", len(cells))
	}
}

// The RQ3 table: per-injection-cell detection latency in virtual-time
// events. The trigger (injection complete) varies per cell with the
// attack's event cost; the monitor's audit fires on the very next
// event in every default-matrix cell, so the latency distance is 0.
func TestDetectionLatencyGolden(t *testing.T) {
	wantTrigger := map[string]uint64{
		"4.6/XSA-212-crash/injection":  267,
		"4.6/XSA-212-priv/injection":   276,
		"4.6/XSA-148-priv/injection":   281,
		"4.6/XSA-182-test/injection":   268,
		"4.8/XSA-212-crash/injection":  267,
		"4.8/XSA-212-priv/injection":   276,
		"4.8/XSA-148-priv/injection":   281,
		"4.8/XSA-182-test/injection":   268,
		"4.13/XSA-212-crash/injection": 266,
		"4.13/XSA-212-priv/injection":  266,
		"4.13/XSA-148-priv/injection":  280,
		"4.13/XSA-182-test/injection":  267,
	}
	f := matrixForest(t, 4, nil)
	seen := 0
	for _, cs := range f.Cells() {
		want, ok := wantTrigger[cs.Cell]
		if !ok {
			// Exploit cells measure too (exploit phase as trigger) but
			// only the injection cells are the pinned RQ3 table.
			if !cs.Latency.Found {
				t.Errorf("%s: no detection latency measured", cs.Cell)
			}
			continue
		}
		seen++
		l := cs.Latency
		if !l.Found || l.TriggerV != want || l.EvidenceV != want || l.Events != 0 {
			t.Errorf("%s: latency = found=%v trigger=%d evidence=%d events=%d, want trigger=evidence=%d events=0",
				cs.Cell, l.Found, l.TriggerV, l.EvidenceV, l.Events, want)
		}
	}
	if seen != len(wantTrigger) {
		t.Errorf("pinned %d injection cells, found %d in the forest", len(wantTrigger), seen)
	}
}

// Installing the span collector must not perturb the campaign's
// rendered artifact — spans observe the run, they don't participate.
func TestMatrixOutputUnchangedBySpans(t *testing.T) {
	plain, err := (&campaign.Runner{Workers: 4}).RunMatrix()
	if err != nil {
		t.Fatalf("plain RunMatrix: %v", err)
	}
	r := &campaign.Runner{Workers: 4, Spans: span.NewCollector()}
	spanned, err := r.RunMatrix()
	if err != nil {
		t.Fatalf("spanned RunMatrix: %v", err)
	}
	if got, want := report.Matrix(spanned), report.Matrix(plain); got != want {
		t.Errorf("matrix report changed when span collection was enabled:\n--- plain ---\n%s\n--- spanned ---\n%s", want, got)
	}
}

// The single-cell entry point also collects: one implicit batch, one
// tree, latency measured.
func TestRunSingleCellCollectsSpans(t *testing.T) {
	r := &campaign.Runner{Workers: 1, Spans: span.NewCollector()}
	if _, err := r.Run(campaign.Table3Versions()[0], "XSA-148-priv", campaign.ModeInjection); err != nil {
		t.Fatalf("Run: %v", err)
	}
	f := r.Spans.Forest()
	if err := f.Check(); err != nil {
		t.Fatalf("forest Check: %v", err)
	}
	cells := f.Cells()
	if len(cells) != 1 || cells[0].Tree == nil {
		t.Fatalf("got %d settled cells (tree present: %v), want 1 with a tree", len(cells), len(cells) == 1 && cells[0].Tree != nil)
	}
	if !cells[0].Latency.Found {
		t.Errorf("single-cell run measured no detection latency: %+v", cells[0].Latency)
	}
}

// Satellite: the span invariants hold under chaos. Every tree the
// engine salvages — including from panicking cells — passes Check,
// and cells the engine must abandon (hangs, cancellations) appear as
// tree-less stubs with their failure class rather than as leaked or
// half-open trees.
func TestSpanInvariantsUnderSeededChaos(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		plan := faults.NewPlan(seed, faults.DefaultDensity)
		f := matrixForest(t, 8, func(r *campaign.Runner) {
			r.ContinueOnError = true
			r.Faults = plan
		})
		plan.ReleaseAll()
		if err := f.Check(); err != nil {
			t.Errorf("seed %d: span invariant violated: %v", seed, err)
		}
		for _, cs := range f.Cells() {
			switch campaign.FailureClass(cs.Class) {
			case campaign.FailHang, campaign.FailCanceled:
				if cs.Tree != nil {
					t.Errorf("seed %d: abandoned cell %s carries a tree the engine cannot own", seed, cs.Cell)
				}
			default:
				if cs.Tree == nil {
					t.Errorf("seed %d: settled cell %s (class %q) has no tree", seed, cs.Cell, cs.Class)
				}
			}
		}
	}
}

// A hypercall-handler panic unwinds through the span layer: the
// salvaged tree closes every span, marks the interrupted ones aborted,
// and still carries the boot phase that completed before the blast.
func TestPanicLeavesClosedAbortedTree(t *testing.T) {
	const target = "4.6/XSA-182-test/exploit"
	plan := faults.NewPlan(0, 0).ArmCell(target, faults.SiteHypercallPanic, 1)
	f := matrixForest(t, 1, func(r *campaign.Runner) {
		r.ContinueOnError = true
		r.Faults = plan
	})
	if err := f.Check(); err != nil {
		t.Fatalf("forest invariants after panic: %v", err)
	}
	var hit *span.CellSpans
	for _, cs := range f.Cells() {
		if cs.Cell == target {
			hit = cs
		}
	}
	if hit == nil || hit.Tree == nil {
		t.Fatalf("panicked cell %s missing from the forest or tree-less", target)
	}
	if campaign.FailureClass(hit.Class) != campaign.FailPanic {
		t.Errorf("panicked cell classified %q, want %q", hit.Class, campaign.FailPanic)
	}
	aborted := 0
	for _, s := range hit.Tree.Spans() {
		if s.Aborted {
			aborted++
		}
	}
	if aborted == 0 {
		t.Error("panicked cell's tree has no aborted spans; the unwind left no trace")
	}
	if _, ok := hit.Tree.PhaseEnd(span.PhaseBoot); !ok {
		t.Error("panicked cell's tree lost its completed boot phase")
	}
	if hit.Latency.Found {
		t.Errorf("panicked cell measured a detection latency: %+v", hit.Latency)
	}
}

// A wedged cell is abandoned by the watchdog: its goroutine still owns
// the tree, so the forest records a tree-less hang stub and the
// remaining trees stay intact.
func TestWedgedCellRecordsTreelessStub(t *testing.T) {
	const target = "4.6/XSA-148-priv/exploit"
	base := runtime.NumGoroutine()
	plan := faults.NewPlan(0, 0).ArmCell(target, faults.SiteWedge, 1)
	f := matrixForest(t, 1, func(r *campaign.Runner) {
		r.ContinueOnError = true
		r.Faults = plan
		r.CellTimeout = 50 * time.Millisecond
	})
	if err := f.Check(); err != nil {
		t.Errorf("forest invariants after hang: %v", err)
	}
	found := false
	for _, cs := range f.Cells() {
		if cs.Cell != target {
			continue
		}
		found = true
		if cs.Tree != nil {
			t.Error("hung cell carries a tree owned by its abandoned goroutine")
		}
		if campaign.FailureClass(cs.Class) != campaign.FailHang {
			t.Errorf("hung cell classified %q, want %q", cs.Class, campaign.FailHang)
		}
	}
	if !found {
		t.Errorf("hung cell %s not recorded in the forest", target)
	}
	plan.ReleaseAll()
	awaitGoroutineBaseline(t, base)
}

// Cancellation before dispatch settles nothing: the batch is
// announced, no cell ever starts, and the forest snapshot drops every
// unsettled slot instead of presenting half-born trees.
func TestCanceledRunYieldsEmptyForest(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &campaign.Runner{Workers: 4, ContinueOnError: true, Spans: span.NewCollector()}
	if _, err := r.RunMatrixContext(ctx); err != nil {
		t.Fatalf("canceled matrix run errored as a whole under ContinueOnError: %v", err)
	}
	f := r.Spans.Forest()
	if err := f.Check(); err != nil {
		t.Errorf("canceled forest invariants: %v", err)
	}
	for _, cs := range f.Cells() {
		if campaign.FailureClass(cs.Class) != campaign.FailCanceled || cs.Tree != nil {
			t.Errorf("canceled run settled cell %s (class %q, tree %v)", cs.Cell, cs.Class, cs.Tree != nil)
		}
	}
}
