package campaign_test

// The telemetry determinism contract: a cell's counters are a function
// of the cell alone — fresh environment, single-goroutine recorder —
// so per-cell counter snapshots are identical at any worker count.
// Wall time is the one explicitly nondeterministic field.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// matrixProfiles runs the matrix under a profiling runner and returns
// cell -> counters.
func matrixProfiles(t *testing.T, workers int) map[string][]telemetry.CounterValue {
	t.Helper()
	r := &campaign.Runner{Workers: workers, Telemetry: telemetry.NewRegistry()}
	entries, err := r.RunMatrix()
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	out := make(map[string][]telemetry.CounterValue, len(entries))
	for _, e := range entries {
		p := e.Result.Profile
		if p == nil {
			t.Fatalf("workers=%d: %s/%s/%s has no profile", workers, e.Version, e.UseCase, e.Mode)
		}
		if p.Cell == "" || len(p.Counters) == 0 {
			t.Fatalf("workers=%d: profile %+v missing cell or counters", workers, p)
		}
		out[p.Cell] = p.Counters
	}
	return out
}

func TestPerCellCountersDeterministicAcrossWorkerCounts(t *testing.T) {
	base := matrixProfiles(t, 1)
	if len(base) != 102 {
		t.Fatalf("matrix produced %d distinct cells, want 102", len(base))
	}
	for _, w := range []int{4, 8} {
		got := matrixProfiles(t, w)
		for cellID, counters := range base {
			if !reflect.DeepEqual(got[cellID], counters) {
				t.Errorf("workers=%d: %s counters diverge:\n serial:  %v\n pool:    %v",
					w, cellID, counters, got[cellID])
			}
		}
	}
}

// TestMatrixTraceCoversEveryCell checks the acceptance contract of the
// JSONL trace: every campaign cell contributes hypercall and page-type
// events, injection cells contribute injector events, and every cell
// is closed by a cell_end summary.
func TestMatrixTraceCoversEveryCell(t *testing.T) {
	r := &campaign.Runner{Workers: 4, Telemetry: telemetry.NewRegistry()}
	entries, err := r.RunMatrix()
	if err != nil {
		t.Fatal(err)
	}
	profiles := make([]*telemetry.CellProfile, 0, len(entries))
	for _, e := range entries {
		profiles = append(profiles, e.Result.Profile)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteTrace(&buf, profiles); err != nil {
		t.Fatal(err)
	}
	records, err := telemetry.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]map[string]int{}
	ended := map[string]bool{}
	for _, rec := range records {
		if rec.Kind == telemetry.CellEndKind {
			ended[rec.Cell] = true
			continue
		}
		if kinds[rec.Cell] == nil {
			kinds[rec.Cell] = map[string]int{}
		}
		kinds[rec.Cell][rec.Kind]++
	}
	if len(kinds) != 102 {
		t.Fatalf("trace covers %d cells, want 102", len(kinds))
	}
	for _, e := range entries {
		cellID := e.Result.Profile.Cell
		k := kinds[cellID]
		if !ended[cellID] {
			t.Errorf("%s: no cell_end record", cellID)
		}
		for _, want := range []string{"hypercall_enter", "hypercall_exit", "page_type_get"} {
			if k[want] == 0 {
				t.Errorf("%s: no %s events", cellID, want)
			}
		}
		if e.Mode == campaign.ModeInjection && k["injector_op"] == 0 {
			t.Errorf("%s: injection cell has no injector_op events", cellID)
		}
	}
}

// TestTraceEventOrderDeterministic pins the stronger trace contract:
// not just per-cell counters but the full event stream is identical at
// any worker count (wall time excluded), so two traces of the same
// campaign can be diffed line by line. This is what makes a trace
// usable as a regression artifact for a diverging Table III cell.
func TestTraceEventOrderDeterministic(t *testing.T) {
	trace := func(workers int) []telemetry.TraceRecord {
		r := &campaign.Runner{Workers: workers, Telemetry: telemetry.NewRegistry()}
		entries, err := r.RunMatrix()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		profiles := make([]*telemetry.CellProfile, 0, len(entries))
		for _, e := range entries {
			profiles = append(profiles, e.Result.Profile)
		}
		var buf bytes.Buffer
		if err := telemetry.WriteTrace(&buf, profiles); err != nil {
			t.Fatal(err)
		}
		records, err := telemetry.ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range records {
			records[i].WallNS = 0 // the one explicitly nondeterministic field
		}
		return records
	}
	serial, pooled := trace(1), trace(4)
	if len(serial) != len(pooled) {
		t.Fatalf("trace lengths diverge: serial %d, pooled %d", len(serial), len(pooled))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], pooled[i]) {
			t.Fatalf("record %d diverges:\n serial: %+v\n pooled: %+v", i, serial[i], pooled[i])
		}
	}
}

// TestExportCarriesTelemetryOnlyWhenProfiled checks the artifact
// contract both ways: a profiling runner's JSON export includes
// per-run counters, and a plain runner's export has no telemetry keys
// (so pre-telemetry artifacts remain byte-comparable).
func TestExportCarriesTelemetryOnlyWhenProfiled(t *testing.T) {
	var plain, profiled bytes.Buffer
	if err := (&campaign.Runner{Workers: 4}).ExportMatrix(&plain); err != nil {
		t.Fatal(err)
	}
	if err := (&campaign.Runner{Workers: 4, Telemetry: telemetry.NewRegistry()}).ExportMatrix(&profiled); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain.Bytes(), []byte(`"counters"`)) || bytes.Contains(plain.Bytes(), []byte(`"wall_ns"`)) {
		t.Error("unprofiled export leaks telemetry fields")
	}
	var artifact struct {
		Runs []struct {
			Version  string                   `json:"version"`
			UseCase  string                   `json:"use_case"`
			WallNS   int64                    `json:"wall_ns"`
			Counters []telemetry.CounterValue `json:"counters"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(profiled.Bytes(), &artifact); err != nil {
		t.Fatal(err)
	}
	if len(artifact.Runs) != 102 {
		t.Fatalf("profiled export has %d runs, want 24", len(artifact.Runs))
	}
	for _, run := range artifact.Runs {
		if run.WallNS <= 0 || len(run.Counters) == 0 {
			t.Errorf("%s/%s: missing wall_ns or counters in profiled export", run.Version, run.UseCase)
		}
	}
}
