package campaign

import "fmt"

// Score aggregates one version's behaviour under the injection campaign
// into benchmark-style numbers — the "security benchmark for virtualized
// infrastructures" the paper's conclusions aim at: instead of counting
// vulnerabilities (which says nothing about unknown ones), count how
// many injected intrusion effects the system tolerates.
type Score struct {
	// Version is the hypervisor release.
	Version string
	// StatesInjected counts erroneous states successfully induced.
	StatesInjected int
	// Violations counts those that became security violations.
	Violations int
	// Handled counts those the system coped with.
	Handled int
	// FailedInjections counts states that could not be induced (should
	// be zero for a working injector).
	FailedInjections int
}

// Resilience returns the fraction of injected states the system
// handled, in [0, 1]; the benchmark's headline number.
func (s Score) Resilience() float64 {
	if s.StatesInjected == 0 {
		return 0
	}
	return float64(s.Handled) / float64(s.StatesInjected)
}

// String renders the score as a benchmark row.
func (s Score) String() string {
	return fmt.Sprintf("Xen %-5s states=%d violations=%d handled=%d resilience=%.2f",
		s.Version, s.StatesInjected, s.Violations, s.Handled, s.Resilience())
}

// SecurityBenchmark runs the injection campaign (all use cases) against
// every version and aggregates the per-version scores. On the paper's
// data the expected ranking is 4.13 (0.50) > 4.8 (0.00) = 4.6 (0.00).
// Cells run serially; use a Runner to spread them over a worker pool.
func SecurityBenchmark() ([]Score, error) {
	return (&Runner{Workers: 1}).SecurityBenchmark()
}
