package campaign_test

// State-sharing audit for the package-level value factories that
// concurrent campaign workers call: each must hand out fresh copies, so
// one caller's mutation can never bleed into another worker's run.

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/exploits"
	"repro/internal/fieldstudy"
	"repro/internal/hv"
)

func TestScenariosReturnsFreshCopies(t *testing.T) {
	a := exploits.Scenarios()
	a[0].Name = "CLOBBERED"
	a[0].Run = nil
	b := exploits.Scenarios()
	if b[0].Name != "XSA-212-crash" || b[0].Run == nil {
		t.Errorf("mutating one Scenarios() result bled into the next call: %+v", b[0])
	}
}

func TestVersionsReturnsFreshCopies(t *testing.T) {
	a := hv.Versions()
	a[0].Name = "0.0"
	a[0].XSA148Fixed = true
	b := hv.Versions()
	if b[0].Name != "4.6" || b[0].XSA148Fixed {
		t.Errorf("mutating one Versions() result bled into the next call: %+v", b[0])
	}
}

func TestTable3VersionsReturnsFreshCopies(t *testing.T) {
	a := campaign.Table3Versions()
	a[1].Name = "0.0"
	a[1].RestrictPTWrites = false
	b := campaign.Table3Versions()
	if b[1].Name != "4.13" || !b[1].RestrictPTWrites {
		t.Errorf("mutating one Table3Versions() result bled into the next call: %+v", b[1])
	}
}

func TestDatasetReturnsFreshCopies(t *testing.T) {
	a := fieldstudy.Dataset()
	wantCVE := a[0].CVE
	wantFunc := a[0].Functionalities[0]
	a[0].CVE = "CVE-0000-0000"
	a[0].Functionalities[0] = 0 // mutate through the nested slice
	b := fieldstudy.Dataset()
	if b[0].CVE != wantCVE {
		t.Errorf("Dataset()[0].CVE bled: got %q, want %q", b[0].CVE, wantCVE)
	}
	if b[0].Functionalities[0] != wantFunc {
		t.Errorf("Dataset()[0].Functionalities aliased across calls: got %v, want %v",
			b[0].Functionalities[0], wantFunc)
	}
}
