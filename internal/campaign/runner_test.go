package campaign_test

// The parallel campaign engine's contract: any worker count produces
// results identical to the serial path, because every cell runs in its
// own fresh environment and results are reassembled in cell order. The
// tests compare the *rendered* artifacts (report strings and the JSON
// export), which is exactly what the paper-reproduction pipeline
// consumes — byte equality there is the whole guarantee.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/report"
)

var workerCounts = []int{1, 4, 8}

func TestRunnerMatrixDeterministicAcrossWorkerCounts(t *testing.T) {
	entries, err := campaign.RunMatrix()
	if err != nil {
		t.Fatalf("serial RunMatrix: %v", err)
	}
	serial := report.Matrix(entries)
	for _, w := range workerCounts {
		r := &campaign.Runner{Workers: w}
		entries, err := r.RunMatrix()
		if err != nil {
			t.Fatalf("Workers=%d RunMatrix: %v", w, err)
		}
		if got := report.Matrix(entries); got != serial {
			t.Errorf("Workers=%d matrix differs from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				w, serial, w, got)
		}
	}
}

func TestRunnerTable3DeterministicAcrossWorkerCounts(t *testing.T) {
	versions := []string{"4.8", "4.13"}
	rows, err := campaign.RunTable3()
	if err != nil {
		t.Fatalf("serial RunTable3: %v", err)
	}
	serial := report.TableIII(rows, versions)
	for _, w := range workerCounts {
		r := &campaign.Runner{Workers: w}
		rows, err := r.RunTable3()
		if err != nil {
			t.Fatalf("Workers=%d RunTable3: %v", w, err)
		}
		if got := report.TableIII(rows, versions); got != serial {
			t.Errorf("Workers=%d Table III differs from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				w, serial, w, got)
		}
	}
}

func TestRunnerFig4DeterministicAcrossWorkerCounts(t *testing.T) {
	rows, err := campaign.RunFig4()
	if err != nil {
		t.Fatalf("serial RunFig4: %v", err)
	}
	serial := report.Fig4(rows)
	for _, w := range workerCounts {
		r := &campaign.Runner{Workers: w}
		rows, err := r.RunFig4()
		if err != nil {
			t.Fatalf("Workers=%d RunFig4: %v", w, err)
		}
		if got := report.Fig4(rows); got != serial {
			t.Errorf("Workers=%d Fig. 4 differs from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				w, serial, w, got)
		}
	}
}

func TestRunnerExportMatrixDeterministic(t *testing.T) {
	var serial bytes.Buffer
	if err := campaign.ExportMatrix(&serial); err != nil {
		t.Fatalf("serial ExportMatrix: %v", err)
	}
	var parallel bytes.Buffer
	r := &campaign.Runner{Workers: 6}
	if err := r.ExportMatrix(&parallel); err != nil {
		t.Fatalf("parallel ExportMatrix: %v", err)
	}
	if serial.String() != parallel.String() {
		t.Error("parallel JSON export differs from serial")
	}
}

func TestRunnerSecurityBenchmarkDeterministic(t *testing.T) {
	serial, err := campaign.SecurityBenchmark()
	if err != nil {
		t.Fatalf("serial SecurityBenchmark: %v", err)
	}
	r := &campaign.Runner{Workers: 4}
	parallel, err := r.SecurityBenchmark()
	if err != nil {
		t.Fatalf("parallel SecurityBenchmark: %v", err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("score count: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("score %d: serial %v, parallel %v", i, serial[i], parallel[i])
		}
	}
}

// The engine must surface a cell's failure with the same error text the
// serial loops used, picking the first failing cell in cell order no
// matter which worker hit it.
func TestRunnerUnknownUseCaseError(t *testing.T) {
	for _, w := range []int{1, 4} {
		_, err := campaign.Run(campaign.Table3Versions()[0], "XSA-0-bogus", campaign.ModeInjection)
		if err == nil {
			t.Fatalf("Workers=%d: run of unknown use case succeeded", w)
		}
		if !strings.Contains(err.Error(), `unknown use case "XSA-0-bogus"`) {
			t.Errorf("Workers=%d: error = %v, want unknown-use-case text", w, err)
		}
	}
}

// A zero-value Runner must resolve to a positive pool size.
func TestRunnerDefaultWorkers(t *testing.T) {
	r := &campaign.Runner{}
	rows, err := r.RunFig4()
	if err != nil {
		t.Fatalf("zero-value Runner RunFig4: %v", err)
	}
	if len(rows) != 17 {
		t.Errorf("got %d Fig. 4 rows, want 17", len(rows))
	}
}

// A negative Workers value clamps to the serial path instead of
// surprising a library caller with a fan-out (the CLI rejects negatives
// before they get here). The output must match the serial run exactly.
func TestRunnerNegativeWorkersClampToSerial(t *testing.T) {
	serial, err := (&campaign.Runner{Workers: 1}).RunFig4()
	if err != nil {
		t.Fatalf("serial RunFig4: %v", err)
	}
	neg, err := (&campaign.Runner{Workers: -3}).RunFig4()
	if err != nil {
		t.Fatalf("Workers=-3 RunFig4: %v", err)
	}
	if got, want := report.Fig4(neg), report.Fig4(serial); got != want {
		t.Errorf("Workers=-3 output differs from serial:\n%s\nvs\n%s", got, want)
	}
}
