// Package campaign orchestrates the paper's experimental campaigns
// (Fig. 4): it builds a fresh, identical environment for every run —
// "the build and experimental environment are kept the same during all
// process ... the only difference was the Xen version" — executes a use
// case in exploit or injection mode, and has the monitor assess the
// outcome.
package campaign

import (
	"fmt"

	"repro/internal/exploits"
	"repro/internal/faults"
	"repro/internal/guest"
	"repro/internal/hv"
	"repro/internal/inject"
	"repro/internal/mm"
	"repro/internal/monitor"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/vnet"
)

// Fixed experimental-environment parameters.
const (
	// MachineFrames is the simulated machine size (2048 frames = 8 MiB).
	MachineFrames = 2048
	// DomainFrames is each domain's memory size.
	DomainFrames = 64
	// ListenerAddr is where the remote attacker host listens
	// (nc -l -vvv -p 1234).
	ListenerAddr = "10.3.1.100:1234"
	// AttackerIP is the compromised guest's address; the paper's
	// transcript shows the reverse connection arriving from 10.3.1.181.
	AttackerIP = "10.3.1.181"
)

// Mode selects which primitive drives a use case.
type Mode string

// Modes.
const (
	// ModeExploit runs the original PoC against the real vulnerability.
	ModeExploit Mode = "exploit"
	// ModeInjection runs the injection script on an injector build.
	ModeInjection Mode = "injection"
)

// Environment is one freshly built experimental setup: a hypervisor of
// the requested version, dom0 plus three guests with kernels, and the
// attacker's remote listener.
type Environment struct {
	HV       *hv.Hypervisor
	Net      *vnet.Network
	Dom0     *guest.Kernel
	Attacker *guest.Kernel
	Guests   []*guest.Kernel // dom0 first, then guest01..guest03
	Listener *vnet.Listener
	Injector *inject.Client      // nil on exploit-mode builds
	State    *inject.StateClient // nil on exploit-mode builds
	// Tel is the environment's telemetry recorder, nil when tracing is
	// disabled. The same recorder is installed on the hypervisor build,
	// so everything the environment does lands in one trace.
	Tel *telemetry.Recorder
}

// NewEnvironment boots the standard experimental environment. Injection
// mode compiles the injector hypercall into the build, as the prototype
// does per version.
func NewEnvironment(v hv.Version, mode Mode) (*Environment, error) {
	return newEnvironment(campaignPlan(), v, mode, nil, nil, nil)
}

// newEnvironment boots an environment from the precomputed campaign
// plan, so the version-independent pieces (IP plan, domain names) are
// laid out once per process instead of once per run. tel, when non-nil,
// is installed as the build's telemetry sink before boot; flt, when
// non-nil, arms the build's substrate fault-injection plane the same
// way; tree, when non-nil, is installed as the build's span tree so
// hypercall and mm-op spans nest under the cell's phases.
func newEnvironment(p *plan, v hv.Version, mode Mode, tel *telemetry.Recorder, flt *faults.Injector, tree *span.Tree) (*Environment, error) {
	mem, err := mm.NewMemory(MachineFrames)
	if err != nil {
		return nil, err
	}
	return buildEnvironment(p, mem, v, mode, tel, flt, tree)
}

// buildEnvironment boots the standard environment on a caller-provided
// machine, so the snapshot cache can journal the boot on a fresh machine
// and seal the result.
func buildEnvironment(p *plan, mem *mm.Memory, v hv.Version, mode Mode, tel *telemetry.Recorder, flt *faults.Injector, tree *span.Tree) (*Environment, error) {
	var opts []hv.Option
	if tel != nil {
		opts = append(opts, hv.WithTelemetry(tel))
	}
	if flt != nil {
		opts = append(opts, hv.WithFaults(flt))
	}
	if tree != nil {
		opts = append(opts, hv.WithSpans(tree))
	}
	h, err := hv.New(mem, v, opts...)
	if err != nil {
		return nil, err
	}
	e := &Environment{HV: h, Net: vnet.New(), Tel: tel}
	if mode == ModeInjection {
		if err := inject.Enable(h); err != nil {
			return nil, err
		}
		if err := inject.EnableStateOps(h); err != nil {
			return nil, err
		}
	}

	dom0, err := h.CreateDomain("xen3", DomainFrames, true)
	if err != nil {
		return nil, fmt.Errorf("campaign: creating dom0: %w", err)
	}
	e.Dom0 = guest.New(dom0, e.Net, "10.3.1.1")
	e.Guests = append(e.Guests, e.Dom0)

	for i, ip := range p.guestIPs {
		name := p.guestNames[i]
		d, err := h.CreateDomain(name, DomainFrames, false)
		if err != nil {
			return nil, fmt.Errorf("campaign: creating %s: %w", name, err)
		}
		k := guest.New(d, e.Net, ip)
		e.Guests = append(e.Guests, k)
	}
	e.Attacker = e.Guests[len(e.Guests)-1] // guest03, per the paper's transcript

	if e.Listener, err = e.Net.Listen(ListenerAddr); err != nil {
		return nil, err
	}
	if mode == ModeInjection {
		e.Injector = inject.NewClient(e.Attacker.Domain())
		e.State = inject.NewStateClient(e.Attacker.Domain())
	}
	return e, nil
}

// ScenarioEnv adapts the environment for the exploits package, selecting
// the primitive by mode.
func (e *Environment) ScenarioEnv(mode Mode) (*exploits.Env, error) {
	env := &exploits.Env{
		HV:           e.HV,
		Attacker:     e.Attacker,
		Dom0:         e.Dom0,
		Guests:       e.Guests,
		Net:          e.Net,
		Listener:     e.Listener,
		ListenerAddr: ListenerAddr,
	}
	switch mode {
	case ModeExploit:
		env.Prim = exploits.NewVulnPrimitive(e.Attacker)
	case ModeInjection:
		if e.Injector == nil || e.State == nil {
			return nil, fmt.Errorf("campaign: environment was not built with an injector")
		}
		env.Prim = e.Injector
		// Assigned only here: an exploit-mode Env must carry a nil State
		// interface, not a typed-nil client.
		env.State = e.State
	default:
		return nil, fmt.Errorf("campaign: unknown mode %q", mode)
	}
	return env, nil
}

// RunResult bundles a scenario transcript with the monitor's assessment
// and, when the runner profiles cells, the telemetry snapshot.
type RunResult struct {
	Outcome *exploits.Outcome
	Verdict *monitor.Verdict
	// Profile is the cell's telemetry snapshot, nil unless the cell ran
	// under a profiling Runner.
	Profile *telemetry.CellProfile
}

// Run executes one (version, use case, mode) cell in a fresh
// environment, without telemetry or fault injection. Use a Runner with
// a Telemetry registry to profile cells.
func Run(v hv.Version, useCase string, mode Mode) (*RunResult, error) {
	return runCell(cell{version: v, useCase: useCase, mode: mode}, nil, nil)
}
