package campaign_test

// The snapshot differential suite: every artifact the campaign engine
// produces — the JSON export, per-cell canonical traces, the span
// forest — must be byte-identical whether cells boot fresh or fork from
// the (version, mode) snapshot, at any worker count and under seeded
// chaos. This is the guarantee that lets the fork path replace the
// fresh boot without touching a single golden pin.

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/faults"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/tracediff"
)

// withSnapshots flips the process-wide snapshot toggle for one test,
// restoring the previous state afterward.
func withSnapshots(t *testing.T) func(on bool) {
	t.Helper()
	prev := campaign.SnapshotsEnabled()
	t.Cleanup(func() { campaign.EnableSnapshots(prev) })
	return campaign.EnableSnapshots
}

// TestForkVsFreshArtifactByteIdentical compares the full matrix JSON
// artifact between fresh-boot and fork-boot, at workers 1/4/8, without
// faults and under two chaos seeds.
func TestForkVsFreshArtifactByteIdentical(t *testing.T) {
	set := withSnapshots(t)
	export := func(snapshots bool, workers int, seed int64) []byte {
		t.Helper()
		set(snapshots)
		r := &campaign.Runner{Workers: workers}
		var plan *faults.Plan
		if seed >= 0 {
			plan = faults.NewPlan(seed, faults.DefaultDensity)
			r.Faults = plan
			r.ContinueOnError = true
		}
		var buf bytes.Buffer
		if err := r.ExportMatrixContext(context.Background(), &buf); err != nil {
			t.Fatalf("snapshots=%v workers=%d seed=%d: %v", snapshots, workers, seed, err)
		}
		if plan != nil {
			plan.ReleaseAll()
		}
		return buf.Bytes()
	}
	for _, seed := range []int64{-1, 7, 99} { // -1 = no fault plan
		for _, w := range []int{1, 4, 8} {
			fresh := export(false, w, seed)
			fork := export(true, w, seed)
			if !bytes.Equal(fresh, fork) {
				i := 0
				for i < len(fresh) && i < len(fork) && fresh[i] == fork[i] {
					i++
				}
				lo := max(0, i-80)
				t.Errorf("workers=%d seed=%d: fork artifact diverges from fresh at byte %d\nfresh: ...%s\nfork:  ...%s",
					w, seed, i, fresh[lo:min(i+80, len(fresh))], fork[lo:min(i+80, len(fork))])
			}
		}
	}
}

// TestForkVsFreshCanonicalTracesIdentical compares every default matrix
// cell's canonical telemetry trace (the RQ2 equivalence surface) and
// final counters between fresh-boot and fork-boot.
func TestForkVsFreshCanonicalTracesIdentical(t *testing.T) {
	set := withSnapshots(t)
	collect := func(snapshots bool) map[string]string {
		t.Helper()
		set(snapshots)
		reg := telemetry.NewRegistry()
		r := &campaign.Runner{Workers: 4, Telemetry: reg}
		if _, err := r.RunMatrix(); err != nil {
			t.Fatalf("snapshots=%v: %v", snapshots, err)
		}
		out := make(map[string]string)
		for _, p := range reg.CellProfiles() {
			version := p.Cell[:strings.IndexByte(p.Cell, '/')]
			c := tracediff.NewCanonicalizer(version, campaign.MachineFrames)
			var sb strings.Builder
			for _, cv := range p.Counters {
				sb.WriteString(cv.Name)
				sb.WriteByte('=')
				sb.WriteString(fmtUint(cv.Value))
				sb.WriteByte('\n')
			}
			for _, e := range c.Events(p.Events) {
				sb.WriteString(e.String())
				sb.WriteByte('\n')
			}
			out[p.Cell] = sb.String()
		}
		return out
	}
	fresh := collect(false)
	fork := collect(true)
	if len(fresh) != len(fork) {
		t.Fatalf("profile counts differ: fresh=%d fork=%d", len(fresh), len(fork))
	}
	for cell, want := range fresh {
		got, ok := fork[cell]
		if !ok {
			t.Errorf("cell %s missing from fork run", cell)
			continue
		}
		if got != want {
			t.Errorf("cell %s: canonical trace diverges\n--- fresh ---\n%s\n--- fork ---\n%s", cell, firstDiffLines(want, got), firstDiffLines(got, want))
		}
	}
}

// TestForkVsFreshSpanForestIdentical compares the campaign's canonical
// span forest between fresh-boot and fork-boot at workers 1/4/8.
func TestForkVsFreshSpanForestIdentical(t *testing.T) {
	set := withSnapshots(t)
	forest := func(snapshots bool, workers int) string {
		t.Helper()
		set(snapshots)
		col := span.NewCollector()
		r := &campaign.Runner{Workers: workers, Spans: col}
		if _, err := r.RunMatrix(); err != nil {
			t.Fatalf("snapshots=%v workers=%d: %v", snapshots, workers, err)
		}
		return col.Forest().Canonical()
	}
	for _, w := range []int{1, 4, 8} {
		fresh := forest(false, w)
		fork := forest(true, w)
		if fresh != fork {
			t.Errorf("workers=%d: span forest diverges\n%s", w, firstDiffLines(fresh, fork))
		}
	}
}

// fmtUint renders a counter value without pulling in strconv at every
// call site.
func fmtUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// firstDiffLines returns the first few lines around the first differing
// line of a vs b, for readable failure output.
func firstDiffLines(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			lo := max(0, i-2)
			hi := min(i+3, len(al))
			return "line " + fmtUint(uint64(i)) + ":\n" + strings.Join(al[lo:hi], "\n")
		}
	}
	if len(al) != len(bl) {
		return "line counts differ: " + fmtUint(uint64(len(al))) + " vs " + fmtUint(uint64(len(bl)))
	}
	return "(no line-level difference found)"
}
