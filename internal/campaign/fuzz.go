package campaign

import (
	"fmt"
	"math/rand"

	"repro/internal/cpu"
	"repro/internal/hv"
	"repro/internal/inject"
	"repro/internal/mm"
	"repro/internal/pagetable"
)

// OutcomeClass buckets a randomized trial's observed behaviour.
type OutcomeClass uint8

// Trial outcome classes.
const (
	// ClassRejected: the interface refused the input (an error return).
	ClassRejected OutcomeClass = iota + 1
	// ClassAccepted: the interface accepted the input with no observable
	// state perturbation relevant to security.
	ClassAccepted
	// ClassStateInduced: a security-relevant erroneous state was left in
	// the system (audited, not assumed).
	ClassStateInduced
	// ClassHandledOops: the perturbation surfaced as a contained guest
	// kernel exception.
	ClassHandledOops
	// ClassCrash: the hypervisor died.
	ClassCrash
	// ClassHang: the hypervisor stopped making progress.
	ClassHang
)

// String names the class.
func (c OutcomeClass) String() string {
	switch c {
	case ClassRejected:
		return "rejected"
	case ClassAccepted:
		return "accepted"
	case ClassStateInduced:
		return "state-induced"
	case ClassHandledOops:
		return "handled-oops"
	case ClassCrash:
		return "crash"
	case ClassHang:
		return "hang"
	default:
		return fmt.Sprintf("OutcomeClass(%d)", uint8(c))
	}
}

// Distribution counts trial outcomes per class.
type Distribution map[OutcomeClass]int

// Total returns the number of trials recorded.
func (d Distribution) Total() int {
	n := 0
	for _, v := range d {
		n += v
	}
	return n
}

// ErroneousStates returns how many trials induced an erroneous state,
// including those whose state then surfaced as a crash, a hang or a
// handled guest oops. A handled oops still presupposes an induced
// state — the system *coped* with it, which is exactly the distinction
// the paper's Table III draws between erroneous state and security
// violation — so ClassHandledOops counts here. Only ClassRejected and
// ClassAccepted (no security-relevant perturbation) are excluded.
func (d Distribution) ErroneousStates() int {
	return d[ClassStateInduced] + d[ClassHandledOops] + d[ClassCrash] + d[ClassHang]
}

// RandomInjectionCampaign implements the randomized-input injection idea
// of Section IV-C ("one possibility is to randomize inputs to an
// injector, creating an approach that resembles fuzzing testing but in
// another level of interaction, in a post-attack phase"): each trial
// boots a fresh environment, injects one randomized memory-corruption
// erroneous state through the injector — confined to targets the
// use-case intrusion models declare security-relevant (IDT descriptors
// and page-table entries) — then exercises the system and classifies the
// observed behaviour.
func RandomInjectionCampaign(v hv.Version, trials int, seed int64) (Distribution, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("campaign: trials must be positive, got %d", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	dist := make(Distribution)
	for i := 0; i < trials; i++ {
		e, err := NewEnvironment(v, ModeInjection)
		if err != nil {
			return nil, err
		}
		class, err := randomInjectionTrial(e, rng)
		if err != nil {
			return nil, fmt.Errorf("campaign: trial %d: %w", i, err)
		}
		dist[class]++
	}
	return dist, nil
}

func randomInjectionTrial(e *Environment, rng *rand.Rand) (OutcomeClass, error) {
	d := e.Attacker.Domain()
	switch rng.Intn(3) {
	case 0:
		// Corrupt a random IDT descriptor with a random value, then let
		// the guest fault so delivery exercises the table.
		vector := uint8(rng.Intn(32))
		dst := e.HV.IDTR().DescriptorAddr(vector)
		if err := e.Injector.WriteLinear64(dst, rng.Uint64()); err != nil {
			return 0, err
		}
		err := e.Attacker.TriggerPageFault()
		switch {
		case e.HV.Crashed():
			return ClassCrash, nil
		case err != nil && vector == cpu.VectorPageFault:
			return ClassHandledOops, nil
		default:
			// Descriptor corrupted but delivery path unaffected: a
			// latent erroneous state.
			return ClassStateInduced, nil
		}

	case 1:
		// Corrupt a random entry of a random page-table frame of the
		// attacker with a random (present) entry value.
		frames := make([]mm.MFN, 0, 8)
		for mfn := range d.PageTableFrames() {
			frames = append(frames, mfn)
		}
		if len(frames) == 0 {
			return ClassAccepted, nil
		}
		table := frames[rng.Intn(len(frames))]
		idx := rng.Intn(pagetable.EntriesPerTable)
		val := pagetable.Entry(rng.Uint64()).WithFlags(pagetable.FlagPresent)
		ptr, err := pagetable.EntryAddr(table, idx)
		if err != nil {
			return 0, err
		}
		if err := e.Injector.WritePTE(ptr, val); err != nil {
			return 0, err
		}
		// Exercise the address space: walk the whole physmap.
		var sawOops bool
		buf := make([]byte, 8)
		for pfn := mm.PFN(0); pfn < mm.PFN(d.Frames()); pfn += 7 {
			if err := e.Attacker.Peek(d.PhysmapVA(pfn), buf); err != nil {
				if e.HV.Crashed() {
					return ClassCrash, nil
				}
				sawOops = true
			}
		}
		if sawOops {
			return ClassHandledOops, nil
		}
		return ClassStateInduced, nil

	default:
		// Corrupt a random word of a random guest-owned frame — memory
		// corruption outside translation structures.
		target := d.Base() + mm.MFN(rng.Intn(d.Frames()))
		off := uint64(rng.Intn(mm.PageSize/8)) * 8
		if err := e.Injector.ArbitraryAccess(uint64(target.Addr())+off,
			[]byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0}, inject.WritePhys); err != nil {
			return 0, err
		}
		if e.HV.Crashed() {
			return ClassCrash, nil
		}
		return ClassStateInduced, nil
	}
}

// HypercallFuzzCampaign is the related-work baseline (hypercall attack
// injection in the style of Milenkoski et al., discussed in Section II):
// each trial fires one randomized, malformed hypercall from the guest
// through the *legitimate* interface. On versions without reachable
// vulnerabilities the interface rejects essentially everything, which is
// exactly the coverage limitation intrusion injection exists to
// overcome — quantified by comparing the two campaigns' erroneous-state
// counts (see BenchmarkBaselineComparison and the fuzz example).
func HypercallFuzzCampaign(v hv.Version, trials int, seed int64) (Distribution, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("campaign: trials must be positive, got %d", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	dist := make(Distribution)
	// A single environment: the baseline interacts only through
	// legitimate interfaces, so state accumulates as it would in a real
	// attack session.
	e, err := NewEnvironment(v, ModeExploit)
	if err != nil {
		return nil, err
	}
	d := e.Attacker.Domain()
	for i := 0; i < trials; i++ {
		err := randomHypercall(e, d, rng)
		switch {
		case e.HV.Crashed():
			dist[ClassCrash]++
		case err != nil:
			dist[ClassRejected]++
		default:
			dist[ClassAccepted]++
		}
	}
	// Audit: did the session leave a guest-writable mapping of any
	// page-table frame? That is the erroneous state this interface could
	// produce only through a vulnerability.
	if n := auditWritablePTMappings(e); n > 0 {
		dist[ClassStateInduced] += n
	}
	return dist, nil
}

func randomHypercall(e *Environment, d *hv.Domain, rng *rand.Rand) error {
	switch rng.Intn(5) {
	case 0:
		ptr := mm.PhysAddr(rng.Uint64() % e.HV.Memory().Bytes())
		val := pagetable.Entry(rng.Uint64())
		return d.Hypercall(hv.HypercallMMUUpdate, &hv.MMUUpdateArgs{
			Updates: []hv.MMUUpdate{{Ptr: ptr &^ 7, Val: val}},
		})
	case 1:
		return d.Hypercall(hv.HypercallMemoryOp, &hv.ExchangeArgs{
			In:       []mm.PFN{mm.PFN(rng.Intn(2 * d.Frames()))},
			OutStart: rng.Uint64(),
		})
	case 2:
		return d.Hypercall(hv.HypercallMMUExtOp, &hv.MMUExtArgs{
			Op:  hv.MMUExtOp(rng.Intn(8)),
			MFN: mm.MFN(rng.Intn(e.HV.Memory().NumFrames())),
		})
	case 3:
		return d.Hypercall(hv.HypercallGrantTableOp, &hv.GrantAccessArgs{
			Ref:   rng.Intn(2 * hv.GrantEntries),
			ToDom: mm.DomID(rng.Intn(5)),
			PFN:   mm.PFN(rng.Intn(2 * d.Frames())),
		})
	default:
		return d.Hypercall(hv.HypercallEventChannelOp, &hv.EventSendArgs{
			Port: rng.Intn(2 * hv.MaxEventChannels),
		})
	}
}

// auditWritablePTMappings counts page-table frames of the attacker that
// are guest-writable through its own address space — the
// Guest-Writable Page Table Entry erroneous state.
func auditWritablePTMappings(e *Environment) int {
	d := e.Attacker.Domain()
	n := 0
	for mfn := range d.PageTableFrames() {
		_, pfn, err := e.HV.Memory().M2P(mfn)
		if err != nil {
			continue
		}
		if _, err := e.HV.Walker().Translate(d.CR3(), d.PhysmapVA(pfn), pagetable.AccessWrite, true); err == nil {
			n++
		}
	}
	return n
}

// BaselineComparison runs both campaigns with the same budget and
// returns their distributions: the quantitative form of the paper's
// argument that driving erroneous states directly beats attacking
// through the interface when no vulnerability is reachable.
type BaselineComparison struct {
	Version   string
	Trials    int
	Injection Distribution
	Baseline  Distribution
}

// CompareWithBaseline runs the two campaigns on the same version with
// the same trial budget and seed.
func CompareWithBaseline(v hv.Version, trials int, seed int64) (*BaselineComparison, error) {
	inj, err := RandomInjectionCampaign(v, trials, seed)
	if err != nil {
		return nil, err
	}
	base, err := HypercallFuzzCampaign(v, trials, seed)
	if err != nil {
		return nil, err
	}
	return &BaselineComparison{
		Version:   v.Name,
		Trials:    trials,
		Injection: inj,
		Baseline:  base,
	}, nil
}
