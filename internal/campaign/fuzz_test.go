package campaign

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/hv"
)

const fuzzTrials = 40

func TestRandomInjectionCampaignIsDeterministic(t *testing.T) {
	a, err := RandomInjectionCampaign(hv.Version48(), fuzzTrials, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomInjectionCampaign(hv.Version48(), fuzzTrials, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != fuzzTrials || b.Total() != fuzzTrials {
		t.Fatalf("totals = %d, %d", a.Total(), b.Total())
	}
	for class, n := range a {
		if b[class] != n {
			t.Errorf("class %v: %d vs %d across identical seeds", class, n, b[class])
		}
	}
}

func TestRandomInjectionCampaignInducesStates(t *testing.T) {
	// Injection reaches erroneous states on every version, including the
	// hardened one — that is the whole point of the technique.
	for _, v := range []hv.Version{hv.Version46(), hv.Version413()} {
		t.Run(v.Name, func(t *testing.T) {
			dist, err := RandomInjectionCampaign(v, fuzzTrials, 42)
			if err != nil {
				t.Fatal(err)
			}
			if got := dist.ErroneousStates(); got == 0 {
				t.Errorf("no erroneous states in %d trials: %v", fuzzTrials, dist)
			}
			// Every injector write is accepted: nothing is "rejected" at
			// the injection interface.
			if dist[ClassRejected] != 0 {
				t.Errorf("injector rejected inputs: %v", dist)
			}
		})
	}
}

func TestHypercallFuzzBaselineCannotReachStatesOnFixedVersions(t *testing.T) {
	dist, err := HypercallFuzzCampaign(hv.Version413(), 300, 42)
	if err != nil {
		t.Fatal(err)
	}
	if dist[ClassCrash] != 0 {
		t.Errorf("baseline crashed a fixed hypervisor: %v", dist)
	}
	if dist[ClassStateInduced] != 0 {
		t.Errorf("baseline induced erroneous states through legitimate interfaces: %v", dist)
	}
	// The interface must have rejected the bulk of malformed input.
	if dist[ClassRejected] == 0 {
		t.Errorf("baseline never rejected: %v", dist)
	}
}

func TestCompareWithBaselineQuantifiesTheGap(t *testing.T) {
	cmp, err := CompareWithBaseline(hv.Version413(), fuzzTrials, 99)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Version != "4.13" || cmp.Trials != fuzzTrials {
		t.Errorf("metadata = %+v", cmp)
	}
	inj := cmp.Injection.ErroneousStates()
	base := cmp.Baseline.ErroneousStates()
	if inj <= base {
		t.Errorf("injection (%d states) does not beat the baseline (%d states)", inj, base)
	}
}

// TestErroneousStatesCountsHandledOopses pins the Table III semantics
// of the accounting: a handled oops presupposes an induced erroneous
// state, so it counts toward ErroneousStates alongside state-induced,
// crash and hang trials — and nothing else does. The sum used to omit
// ClassHandledOops, undercounting induced states on versions that cope.
func TestErroneousStatesCountsHandledOopses(t *testing.T) {
	d := Distribution{
		ClassRejected:     100,
		ClassAccepted:     10,
		ClassStateInduced: 7,
		ClassHandledOops:  5,
		ClassCrash:        3,
		ClassHang:         2,
	}
	if got, want := d.ErroneousStates(), 7+5+3+2; got != want {
		t.Errorf("ErroneousStates() = %d, want %d (state-induced + handled-oops + crash + hang)", got, want)
	}
	if got, want := d.Total(), 127; got != want {
		t.Errorf("Total() = %d, want %d", got, want)
	}
}

func TestCampaignRejectsBadTrialCounts(t *testing.T) {
	if _, err := RandomInjectionCampaign(hv.Version46(), 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := HypercallFuzzCampaign(hv.Version46(), -3, 1); err == nil {
		t.Error("negative trials accepted")
	}
}

func TestOutcomeClassStrings(t *testing.T) {
	for _, c := range []OutcomeClass{ClassRejected, ClassAccepted, ClassStateInduced, ClassHandledOops, ClassCrash, ClassHang} {
		if strings.HasPrefix(c.String(), "OutcomeClass(") {
			t.Errorf("class %d has no name", c)
		}
	}
	if !strings.HasPrefix(OutcomeClass(99).String(), "OutcomeClass(") {
		t.Error("unknown class string")
	}
}

func TestExportMatrixProducesValidArtifact(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportMatrix(&buf); err != nil {
		t.Fatal(err)
	}
	var artifact ExportedCampaign
	if err := json.Unmarshal(buf.Bytes(), &artifact); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(artifact.Runs) != 102 {
		t.Errorf("runs = %d, want 102", len(artifact.Runs))
	}
	if len(artifact.Scores) != 3 {
		t.Errorf("scores = %d, want 3", len(artifact.Scores))
	}
	if !strings.Contains(artifact.Paper, "Intrusion Injection") {
		t.Errorf("paper = %q", artifact.Paper)
	}
	// Spot-check one known cell survives the round trip.
	found := false
	for _, r := range artifact.Runs {
		if r.Version == "4.13" && r.UseCase == "XSA-182-test" && r.Mode == "injection" {
			found = true
			if !r.ErroneousState || r.SecurityViolation || !r.Handled {
				t.Errorf("cell = %+v", r)
			}
			if len(r.Transcript) == 0 {
				t.Error("transcript missing")
			}
		}
	}
	if !found {
		t.Error("expected cell absent from artifact")
	}
	// The score JSON carries the derived resilience (3/17 on 4.13).
	if !strings.Contains(buf.String(), `"resilience": 0.17647058823529413`) {
		t.Error("resilience not exported")
	}
}
