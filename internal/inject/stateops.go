package inject

import (
	"fmt"

	"repro/internal/hv"
	"repro/internal/mm"
)

// HypercallStateInject is the dispatch-table slot of the second
// prototype injector: where arbitrary_access covers memory-corruption
// erroneous states, state_inject covers the remaining Table I classes —
// page-lifecycle, exceptional-condition and non-memory states. The paper
// anticipates exactly this: "several implementations of this component
// may be needed, as different erroneous states may require different
// injection approaches and locations" (Section IV-A).
const HypercallStateInject = 42

// StateOp selects which erroneous state the state injector induces.
type StateOp uint8

// State-injection operations, each implementing one extension intrusion
// model (see ExtensionModels).
const (
	// OpKeepPageAccess leaves the calling domain holding a reference to
	// a hypervisor-owned page (XSA-387/393 class).
	OpKeepPageAccess StateOp = iota + 1
	// OpInterruptFlood marks pending events on a victim domain that
	// nothing ever sent.
	OpInterruptFlood
	// OpHangState wedges a CPU in a non-terminating handler.
	OpHangState
	// OpFatalException drives execution into an abort path.
	OpFatalException
	// OpDomainPause suspends a victim domain with no toolstack intent.
	OpDomainPause
	// OpZombieDomain destroys a victim domain and withholds the reap,
	// leaving its frames allocated to a domain that no longer exists.
	OpZombieDomain
)

// String returns the operation name.
func (o StateOp) String() string {
	switch o {
	case OpKeepPageAccess:
		return "KEEP_PAGE_ACCESS"
	case OpInterruptFlood:
		return "INTERRUPT_FLOOD"
	case OpHangState:
		return "HANG_STATE"
	case OpFatalException:
		return "FATAL_EXCEPTION"
	case OpDomainPause:
		return "DOMAIN_PAUSE"
	case OpZombieDomain:
		return "ZOMBIE_DOMAIN"
	default:
		return fmt.Sprintf("StateOp(%d)", uint8(o))
	}
}

// StateArgs is the state-injection hypercall argument.
type StateArgs struct {
	Op StateOp
	// Victim selects the target domain for OpInterruptFlood,
	// OpDomainPause and OpZombieDomain.
	Victim mm.DomID
	// Port and Count parameterize OpInterruptFlood.
	Port  int
	Count int
	// Site labels the abort location for OpFatalException.
	Site string

	// LeakedFrame receives the retained frame for OpKeepPageAccess.
	LeakedFrame mm.MFN
}

// EnableStateOps compiles the state injector into the build alongside
// (or independently of) the arbitrary-access injector.
func EnableStateOps(h *hv.Hypervisor) error {
	if err := AttachStateOps(h); err != nil {
		return err
	}
	h.Logf("state injector enabled (hypercall %d)", HypercallStateInject)
	return nil
}

// AttachStateOps registers the state-injection hypercall without
// logging. Snapshot forks use it: the prototype's console already
// carries the boot-time "state injector enabled" line, so a fork
// re-attaching the handler must not log a second one.
func AttachStateOps(h *hv.Hypervisor) error {
	handler := func(d *hv.Domain, arg any) error {
		a, ok := arg.(*StateArgs)
		if !ok {
			return fmt.Errorf("%w: state_inject wants *StateArgs, got %T", hv.ErrInval, arg)
		}
		h.Telemetry().InjectorOp(uint16(d.ID()), a.Op.String(), 0, a.Count)
		err := stateInject(h, d, a)
		if err == nil {
			// A successful state injection is the abstract machine's one
			// abusive-functionality edge, taken operationally.
			h.Telemetry().InjectorTransition(uint16(d.ID()), "initial", "erroneous", a.Op.String())
		}
		return err
	}
	if err := h.RegisterHypercall(HypercallStateInject, handler); err != nil {
		return fmt.Errorf("inject: enabling state injector: %w", err)
	}
	return nil
}

func stateInject(h *hv.Hypervisor, d *hv.Domain, a *StateArgs) error {
	switch a.Op {
	case OpKeepPageAccess:
		mfn, err := h.InjectGrantStatusLeak(d)
		if err != nil {
			return err
		}
		a.LeakedFrame = mfn
		return nil
	case OpInterruptFlood:
		victim, err := h.Domain(a.Victim)
		if err != nil {
			return err
		}
		return h.InjectEventFlood(victim, a.Port, a.Count)
	case OpHangState:
		h.InjectHang(fmt.Sprintf("requested by dom%d", d.ID()))
		return nil
	case OpFatalException:
		site := a.Site
		if site == "" {
			site = "common/unreachable.c:42"
		}
		h.InjectFatalException(site)
		return nil
	case OpDomainPause:
		victim, err := h.Domain(a.Victim)
		if err != nil {
			return err
		}
		return h.InjectDomainPause(victim)
	case OpZombieDomain:
		victim, err := h.Domain(a.Victim)
		if err != nil {
			return err
		}
		return h.InjectZombie(victim)
	default:
		return fmt.Errorf("%w: state op %d", hv.ErrInval, a.Op)
	}
}

// StateClient wraps the state-injection hypercall for testing scripts.
type StateClient struct {
	d *hv.Domain
}

// NewStateClient returns a state injector client for the domain.
func NewStateClient(d *hv.Domain) *StateClient { return &StateClient{d: d} }

// KeepPageAccess induces the page-reference-retention state and returns
// the leaked frame.
func (c *StateClient) KeepPageAccess() (mm.MFN, error) {
	args := &StateArgs{Op: OpKeepPageAccess}
	if err := c.d.Hypercall(HypercallStateInject, args); err != nil {
		return 0, err
	}
	return args.LeakedFrame, nil
}

// InterruptFlood marks count unsolicited pending events on the victim.
func (c *StateClient) InterruptFlood(victim mm.DomID, port, count int) error {
	return c.d.Hypercall(HypercallStateInject, &StateArgs{
		Op: OpInterruptFlood, Victim: victim, Port: port, Count: count,
	})
}

// HangState wedges the hypervisor.
func (c *StateClient) HangState() error {
	return c.d.Hypercall(HypercallStateInject, &StateArgs{Op: OpHangState})
}

// FatalException drives the hypervisor into an abort path.
func (c *StateClient) FatalException(site string) error {
	return c.d.Hypercall(HypercallStateInject, &StateArgs{Op: OpFatalException, Site: site})
}

// PauseDomain suspends the victim with no toolstack intent.
func (c *StateClient) PauseDomain(victim mm.DomID) error {
	return c.d.Hypercall(HypercallStateInject, &StateArgs{Op: OpDomainPause, Victim: victim})
}

// ZombieDomain destroys the victim and withholds the reap.
func (c *StateClient) ZombieDomain(victim mm.DomID) error {
	return c.d.Hypercall(HypercallStateInject, &StateArgs{Op: OpZombieDomain, Victim: victim})
}
