// Package inject implements the paper's primary contribution: the
// intrusion-injection framework for virtualized systems.
//
// Its three pieces map directly onto Section IV and V of the paper:
//
//   - The prototype injector (this file): a new hypercall,
//     HYPERVISOR_arbitrary_access(addr, buf, len, action), compiled into
//     the hypervisor build, that lets a guest kernel read or write n
//     bytes at an arbitrary linear or physical hypervisor address —
//     bypassing the restriction machinery that normally makes such
//     accesses impossible.
//   - Intrusion models (model.go): the abstraction that ties an
//     injectable erroneous state to a triggering source, a target
//     component, an interaction interface and an abusive functionality.
//   - Injection scripts (scripts.go): per-use-case drivers that induce
//     the same erroneous states as the public exploits, with the
//     vulnerability-dependent step replaced by the injector hypercall.
package inject

import (
	"fmt"

	"repro/internal/hv"
	"repro/internal/mm"
	"repro/internal/pagetable"
)

// Action selects the operation and address mode of an arbitrary access,
// mirroring the prototype's hypercall interface:
//
//	HYPERVISOR_arbitrary_access(unsigned long addr, void *buff,
//	                            unsigned long len, unsigned int action)
type Action uint8

// Actions. Linear addresses must already be mapped in the hypervisor
// (some privileged instructions, e.g. sidt, return linear addresses);
// physical addresses are mapped into the hypervisor address space before
// the access, the __copy_from_user/__copy_to_user path of the prototype.
const (
	// ReadLinear reads from an already-mapped hypervisor linear address.
	ReadLinear Action = iota + 1
	// WriteLinear writes to an already-mapped hypervisor linear address.
	WriteLinear
	// ReadPhys maps a machine-physical address and reads it.
	ReadPhys
	// WritePhys maps a machine-physical address and writes it.
	WritePhys
)

// String returns the script-facing constant name of the action.
func (a Action) String() string {
	switch a {
	case ReadLinear:
		return "ARBITRARY_READ_LINEAR"
	case WriteLinear:
		return "ARBITRARY_WRITE_LINEAR"
	case ReadPhys:
		return "ARBITRARY_READ_PHYS"
	case WritePhys:
		return "ARBITRARY_WRITE_PHYS"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// AccessArgs is the hypercall argument structure.
type AccessArgs struct {
	Addr   uint64
	Buf    []byte
	Action Action
}

// Enable compiles the injector into a hypervisor build by adding the
// arbitrary_access hypercall to its dispatch table — the per-version
// "small changes in the hypercalls table" of Section V-B. The core of
// the injector is identical across versions.
func Enable(h *hv.Hypervisor) error {
	if err := Attach(h); err != nil {
		return err
	}
	h.Logf("intrusion injector enabled (hypercall %d)", hv.HypercallArbitraryAccess)
	return nil
}

// Attach registers the arbitrary_access hypercall without logging.
// Snapshot forks use it: the prototype's console already carries the
// boot-time "injector enabled" line, so a fork re-attaching the handler
// (its dispatch table is rebuilt per fork) must not log a second one.
func Attach(h *hv.Hypervisor) error {
	handler := func(d *hv.Domain, arg any) error {
		a, ok := arg.(*AccessArgs)
		if !ok {
			return fmt.Errorf("%w: arbitrary_access wants *AccessArgs, got %T", hv.ErrInval, arg)
		}
		h.Telemetry().InjectorOp(uint16(d.ID()), a.Action.String(), a.Addr, len(a.Buf))
		return arbitraryAccess(h, a)
	}
	if err := h.RegisterHypercall(hv.HypercallArbitraryAccess, handler); err != nil {
		return fmt.Errorf("inject: enabling injector: %w", err)
	}
	return nil
}

// arbitraryAccess is the in-hypervisor implementation: deliberately free
// of the checks that protect these paths in normal operation.
func arbitraryAccess(h *hv.Hypervisor, a *AccessArgs) error {
	if len(a.Buf) == 0 {
		return fmt.Errorf("%w: empty buffer", hv.ErrInval)
	}
	switch a.Action {
	case ReadLinear:
		return h.ReadHV(a.Addr, a.Buf)
	case WriteLinear:
		return h.WriteHV(a.Addr, a.Buf)
	case ReadPhys:
		return h.Memory().ReadPhys(mm.PhysAddr(a.Addr), a.Buf)
	case WritePhys:
		return h.Memory().WritePhys(mm.PhysAddr(a.Addr), a.Buf)
	default:
		return fmt.Errorf("%w: action %d", hv.ErrInval, a.Action)
	}
}

// Client is the guest-side wrapper a tester links into the compromised
// guest's kernel: thin helpers over the raw hypercall.
type Client struct {
	d *hv.Domain
}

// NewClient returns an injector client issuing hypercalls from the
// domain.
func NewClient(d *hv.Domain) *Client { return &Client{d: d} }

// ArbitraryAccess issues the raw hypercall.
func (c *Client) ArbitraryAccess(addr uint64, buf []byte, action Action) error {
	return c.d.Hypercall(hv.HypercallArbitraryAccess, &AccessArgs{Addr: addr, Buf: buf, Action: action})
}

// WriteLinear64 stores an 8-byte value at a hypervisor linear address.
// Its signature matches the arbitrary-write primitive the exploit
// scenarios are parameterized over, so an injection script is the
// exploit script with this primitive swapped in.
func (c *Client) WriteLinear64(addr uint64, val uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(val >> (8 * i))
	}
	return c.ArbitraryAccess(addr, b[:], WriteLinear)
}

// ReadLinear64 loads an 8-byte value from a hypervisor linear address.
func (c *Client) ReadLinear64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := c.ArbitraryAccess(addr, b[:], ReadLinear); err != nil {
		return 0, err
	}
	var v uint64
	for i := range b {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}

// WritePTE stores a page-table entry at a machine-physical address,
// using physical mode — page tables are reached by machine address.
func (c *Client) WritePTE(ptr mm.PhysAddr, e pagetable.Entry) error {
	var b [8]byte
	v := uint64(e)
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return c.ArbitraryAccess(uint64(ptr), b[:], WritePhys)
}

// ReadPTE loads a page-table entry from a machine-physical address.
func (c *Client) ReadPTE(ptr mm.PhysAddr) (pagetable.Entry, error) {
	var b [8]byte
	if err := c.ArbitraryAccess(uint64(ptr), b[:], ReadPhys); err != nil {
		return 0, err
	}
	var v uint64
	for i := range b {
		v |= uint64(b[i]) << (8 * i)
	}
	return pagetable.Entry(v), nil
}

// Name identifies the primitive in experiment transcripts.
func (c *Client) Name() string { return "injection" }
