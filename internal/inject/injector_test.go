package inject

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/hv"
	"repro/internal/layout"
	"repro/internal/mm"
	"repro/internal/pagetable"
)

func newInjectorEnv(t *testing.T, v hv.Version) (*hv.Hypervisor, *hv.Domain, *Client) {
	t.Helper()
	mem, err := mm.NewMemory(2048)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hv.New(mem, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := Enable(h); err != nil {
		t.Fatal(err)
	}
	d, err := h.CreateDomain("guest01", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	return h, d, NewClient(d)
}

func TestEnableRegistersHypercall(t *testing.T) {
	h, d, _ := newInjectorEnv(t, hv.Version46())
	if !h.ConsoleContains("intrusion injector enabled") {
		t.Error("enable not logged")
	}
	// Double enable fails: the hypercall slot is taken.
	if err := Enable(h); err == nil {
		t.Error("double Enable succeeded")
	}
	// Wrong argument type is rejected.
	if err := d.Hypercall(hv.HypercallArbitraryAccess, "nope"); !errors.Is(err, hv.ErrInval) {
		t.Errorf("bad arg: err = %v", err)
	}
}

func TestWriteReadLinearIDT(t *testing.T) {
	h, _, c := newInjectorEnv(t, hv.Version413())
	// The canonical use: write the IDT through its linear address, on a
	// version where no vulnerability would allow it.
	dst := h.IDTR().DescriptorAddr(cpu.VectorPageFault)
	if err := c.WriteLinear64(dst, 0x82da9); err != nil {
		t.Fatalf("WriteLinear64(IDT): %v", err)
	}
	got, err := c.ReadLinear64(dst)
	if err != nil {
		t.Fatalf("ReadLinear64: %v", err)
	}
	if got != 0x82da9 {
		t.Errorf("read back %#x", got)
	}
}

func TestPhysicalMode(t *testing.T) {
	h, _, c := newInjectorEnv(t, hv.Version413())
	target := (h.HeapBase() + 2).Addr()
	msg := []byte("injected into the xen heap")
	if err := c.ArbitraryAccess(uint64(target), msg, WritePhys); err != nil {
		t.Fatalf("WritePhys: %v", err)
	}
	got := make([]byte, len(msg))
	if err := c.ArbitraryAccess(uint64(target), got, ReadPhys); err != nil {
		t.Fatalf("ReadPhys: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("round trip = %q", got)
	}
}

func TestWriteReadPTE(t *testing.T) {
	_, d, c := newInjectorEnv(t, hv.Version413())
	ptr, err := pagetable.EntryAddr(d.CR3(), 42)
	if err != nil {
		t.Fatal(err)
	}
	e := pagetable.NewEntry(d.CR3(), pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser)
	if err := c.WritePTE(ptr, e); err != nil {
		t.Fatalf("WritePTE: %v", err)
	}
	got, err := c.ReadPTE(ptr)
	if err != nil {
		t.Fatalf("ReadPTE: %v", err)
	}
	if got != e {
		t.Errorf("ReadPTE = %v, want %v", got, e)
	}
}

func TestLinearModeRequiresMapping(t *testing.T) {
	// "A linear (i.e., virtual) address is already mapped in the
	// hypervisor and can be used directly" — an unmapped one fails.
	_, _, c := newInjectorEnv(t, hv.Version413())
	err := c.WriteLinear64(layout.LinearPTBase+0x1000, 1)
	if err == nil {
		t.Error("linear write through the removed alias succeeded on 4.13")
	}
	// On 4.6 the alias exists, so the same linear address works.
	_, _, c46 := newInjectorEnv(t, hv.Version46())
	if err := c46.WriteLinear64(layout.LinearPTBase+0x1000, 1); err != nil {
		t.Errorf("linear write via alias on 4.6: %v", err)
	}
}

func TestArbitraryAccessValidation(t *testing.T) {
	_, _, c := newInjectorEnv(t, hv.Version46())
	if err := c.ArbitraryAccess(0x1000, nil, ReadPhys); !errors.Is(err, hv.ErrInval) {
		t.Errorf("empty buffer: err = %v", err)
	}
	if err := c.ArbitraryAccess(0x1000, make([]byte, 8), Action(99)); !errors.Is(err, hv.ErrInval) {
		t.Errorf("bad action: err = %v", err)
	}
	// Physical access outside machine memory fails cleanly.
	if err := c.ArbitraryAccess(1<<40, make([]byte, 8), ReadPhys); err == nil {
		t.Error("out-of-range physical read succeeded")
	}
}

func TestActionStrings(t *testing.T) {
	for a, want := range map[Action]string{
		ReadLinear:  "ARBITRARY_READ_LINEAR",
		WriteLinear: "ARBITRARY_WRITE_LINEAR",
		ReadPhys:    "ARBITRARY_READ_PHYS",
		WritePhys:   "ARBITRARY_WRITE_PHYS",
	} {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
	if !strings.HasPrefix(Action(9).String(), "Action(") {
		t.Error("unknown action string")
	}
}

func TestClientName(t *testing.T) {
	_, _, c := newInjectorEnv(t, hv.Version46())
	if c.Name() != "injection" {
		t.Errorf("Name = %q", c.Name())
	}
}
