package inject

import "fmt"

// State is one node of an intrusion state machine (Fig. 3).
type State string

// Distinguished states.
const (
	// StateInitial is where the system awaits input.
	StateInitial State = "initial"
	// StateErroneous is the intrusion-induced error state.
	StateErroneous State = "erroneous"
)

// Transition is one labelled edge.
type Transition struct {
	From, To State
	// Label names the input or step driving the transition.
	Label string
}

// StateMachine models a system's reaction to adversarial input. Two
// machines appear in Fig. 3: the internal view (every instruction-set
// step the intrusion takes through the implementation) and the abstract
// view (one abusive-functionality edge from the initial state to the
// erroneous state). The paper's claim is that the two are equivalent in
// functionality: both place the system in the same erroneous state for
// the same input.
type StateMachine struct {
	Name        string
	Initial     State
	Transitions []Transition
}

// States returns every state mentioned by the machine.
func (m *StateMachine) States() []State {
	seen := map[State]bool{m.Initial: true}
	out := []State{m.Initial}
	for _, t := range m.Transitions {
		for _, s := range []State{t.From, t.To} {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// Reachable reports whether target can be reached from the initial
// state, and returns one witness path of transition labels.
func (m *StateMachine) Reachable(target State) (bool, []string) {
	type node struct {
		s    State
		path []string
	}
	visited := map[State]bool{m.Initial: true}
	queue := []node{{s: m.Initial}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.s == target {
			return true, cur.path
		}
		for _, t := range m.Transitions {
			if t.From != cur.s || visited[t.To] {
				continue
			}
			visited[t.To] = true
			next := make([]string, len(cur.path), len(cur.path)+1)
			copy(next, cur.path)
			queue = append(queue, node{s: t.To, path: append(next, t.Label)})
		}
	}
	return false, nil
}

// InternalIntrusionMachine is the left diagram of Fig. 3: the system
// transits internal states processing instruction sets until the
// vulnerability activation lands it in the erroneous state.
func InternalIntrusionMachine() *StateMachine {
	return &StateMachine{
		Name:    "internal",
		Initial: StateInitial,
		Transitions: []Transition{
			{From: StateInitial, To: "state-2", Label: "malicious input / instruction set a"},
			{From: "state-2", To: "state-3", Label: "instruction set b"},
			{From: "state-3", To: "state-n", Label: "instruction set c"},
			{From: "state-n", To: StateErroneous, Label: "vulnerability activation"},
		},
	}
}

// AbstractIntrusionMachine is the right diagram of Fig. 3: the external
// (attacker) view, where the whole interaction is one abusive
// functionality taking the system straight to the erroneous state.
func AbstractIntrusionMachine(f AbusiveFunctionality) *StateMachine {
	return &StateMachine{
		Name:    "abstract",
		Initial: StateInitial,
		Transitions: []Transition{
			{From: StateInitial, To: StateErroneous,
				Label: fmt.Sprintf("abusive functionality: %s", f)},
		},
	}
}

// Equivalent implements Fig. 3's equivalence claim operationally: both
// machines must reach the erroneous state from the initial state.
func Equivalent(a, b *StateMachine) bool {
	ra, _ := a.Reachable(StateErroneous)
	rb, _ := b.Reachable(StateErroneous)
	return ra && rb
}
