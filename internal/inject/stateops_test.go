package inject

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/hv"
	"repro/internal/mm"
)

func newStateEnv(t *testing.T, v hv.Version) (*hv.Hypervisor, *hv.Domain, *hv.Domain, *StateClient) {
	t.Helper()
	mem, err := mm.NewMemory(2048)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hv.New(mem, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := EnableStateOps(h); err != nil {
		t.Fatal(err)
	}
	attacker, err := h.CreateDomain("guest01", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := h.CreateDomain("guest02", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	return h, attacker, victim, NewStateClient(attacker)
}

func TestKeepPageAccessInjection(t *testing.T) {
	// The point of the state injector: induce the XSA-387-class state on
	// a version whose grant code does NOT leak.
	h, attacker, _, c := newStateEnv(t, hv.Version413())
	leaked, err := c.KeepPageAccess()
	if err != nil {
		t.Fatalf("KeepPageAccess: %v", err)
	}
	pi, err := h.Memory().Info(leaked)
	if err != nil {
		t.Fatal(err)
	}
	if pi.Owner != mm.DomXen || pi.RefCount == 0 {
		t.Errorf("leaked frame: owner dom%d refs %d, want DomXen-owned with refs", pi.Owner, pi.RefCount)
	}
	// The state is auditable through the same surface the grant-leak
	// vulnerability would leave behind.
	found := false
	for _, f := range attacker.GrantStatusFrames() {
		if f == leaked {
			found = true
		}
	}
	if !found {
		t.Error("leaked frame not visible in the domain's status-frame audit")
	}
	// The frame cannot be freed while the reference is retained: the
	// erroneous state is load-bearing, not cosmetic.
	if err := h.Memory().Free(leaked); !errors.Is(err, mm.ErrFrameBusy) {
		t.Errorf("freeing leaked frame: err = %v, want ErrFrameBusy", err)
	}
}

func TestInterruptFloodInjection(t *testing.T) {
	_, _, victim, c := newStateEnv(t, hv.Version413())
	if victim.PendingEvents() != 0 {
		t.Fatal("victim has pending events before injection")
	}
	if err := c.InterruptFlood(victim.ID(), 3, 500); err != nil {
		t.Fatalf("InterruptFlood: %v", err)
	}
	if got := victim.PendingEvents(); got != 500 {
		t.Errorf("pending = %d, want 500", got)
	}
	// Bad parameters are rejected.
	if err := c.InterruptFlood(victim.ID(), -1, 5); !errors.Is(err, hv.ErrInval) {
		t.Errorf("bad port: err = %v", err)
	}
	if err := c.InterruptFlood(victim.ID(), 0, 0); !errors.Is(err, hv.ErrInval) {
		t.Errorf("zero count: err = %v", err)
	}
	if err := c.InterruptFlood(999, 0, 5); !errors.Is(err, hv.ErrDomGone) {
		t.Errorf("missing victim: err = %v", err)
	}
}

func TestHangStateInjection(t *testing.T) {
	h, _, _, c := newStateEnv(t, hv.Version48())
	if h.Hung() {
		t.Fatal("hung before injection")
	}
	if err := c.HangState(); err != nil {
		t.Fatalf("HangState: %v", err)
	}
	if !h.Hung() {
		t.Error("hypervisor not hung")
	}
	if !h.ConsoleContains("injected hang state") {
		t.Error("hang not logged")
	}
	// Memory contents survive a hang (unlike a crash).
	if h.Crashed() {
		t.Error("hang crashed the hypervisor")
	}
}

func TestFatalExceptionInjection(t *testing.T) {
	h, _, _, c := newStateEnv(t, hv.Version48())
	err := c.FatalException("arch/x86/mm.c:1337")
	if err != nil {
		t.Fatalf("FatalException: %v", err)
	}
	if !h.Crashed() {
		t.Fatal("no crash")
	}
	if !strings.Contains(h.CrashReason(), "arch/x86/mm.c:1337") {
		t.Errorf("crash reason = %q", h.CrashReason())
	}
	// Everything after the fatal exception fails, including the injector.
	if err := c.HangState(); !errors.Is(err, hv.ErrCrashed) {
		t.Errorf("post-crash injection: err = %v", err)
	}
}

func TestStateInjectValidation(t *testing.T) {
	_, attacker, _, _ := newStateEnv(t, hv.Version48())
	if err := attacker.Hypercall(HypercallStateInject, "nope"); !errors.Is(err, hv.ErrInval) {
		t.Errorf("bad arg type: err = %v", err)
	}
	if err := attacker.Hypercall(HypercallStateInject, &StateArgs{Op: StateOp(99)}); !errors.Is(err, hv.ErrInval) {
		t.Errorf("bad op: err = %v", err)
	}
}

func TestStateOpStrings(t *testing.T) {
	for op, want := range map[StateOp]string{
		OpKeepPageAccess: "KEEP_PAGE_ACCESS",
		OpInterruptFlood: "INTERRUPT_FLOOD",
		OpHangState:      "HANG_STATE",
		OpFatalException: "FATAL_EXCEPTION",
	} {
		if op.String() != want {
			t.Errorf("%d = %q, want %q", op, op.String(), want)
		}
	}
	if !strings.HasPrefix(StateOp(77).String(), "StateOp(") {
		t.Error("unknown op string")
	}
}

func TestBothInjectorsCoexist(t *testing.T) {
	mem, err := mm.NewMemory(2048)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hv.New(mem, hv.Version413())
	if err != nil {
		t.Fatal(err)
	}
	if err := Enable(h); err != nil {
		t.Fatal(err)
	}
	if err := EnableStateOps(h); err != nil {
		t.Fatal(err)
	}
	d, err := h.CreateDomain("guest01", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewClient(d)
	sc := NewStateClient(d)
	if _, err := mc.ReadLinear64(h.IDTR().Base); err != nil {
		t.Errorf("memory injector: %v", err)
	}
	if _, err := sc.KeepPageAccess(); err != nil {
		t.Errorf("state injector: %v", err)
	}
}

// TestKeepPageAccessEquivalence is RQ1 in miniature for the extension
// model: the erroneous state reached by exploiting the leaky grant
// downgrade (on the vulnerable version) and the one induced by the state
// injector (on the fixed version) are the same auditable condition — a
// hypervisor-owned frame the domain still references.
func TestKeepPageAccessEquivalence(t *testing.T) {
	characterize := func(h *hv.Hypervisor, d *hv.Domain) (int, bool) {
		frames := d.GrantStatusFrames()
		allReferenced := len(frames) > 0
		for _, f := range frames {
			pi, err := h.Memory().Info(f)
			if err != nil || pi.Owner != mm.DomXen || pi.RefCount == 0 {
				allReferenced = false
			}
		}
		return len(frames), allReferenced
	}

	// Exploit route: leaky downgrade on 4.6.
	memA, err := mm.NewMemory(2048)
	if err != nil {
		t.Fatal(err)
	}
	hA, err := hv.New(memA, hv.Version46())
	if err != nil {
		t.Fatal(err)
	}
	dA, err := hA.CreateDomain("guest01", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := dA.Hypercall(hv.HypercallGrantTableOp, &hv.GrantSetVersionArgs{Version: 2}); err != nil {
		t.Fatal(err)
	}
	if err := dA.Hypercall(hv.HypercallGrantTableOp, &hv.GrantSetVersionArgs{Version: 1}); err != nil {
		t.Fatal(err)
	}
	nA, okA := characterize(hA, dA)

	// Injection route: state injector on 4.13 (no leak in the grant code).
	_, dB, _, sc := newStateEnv(t, hv.Version413())
	if _, err := sc.KeepPageAccess(); err != nil {
		t.Fatal(err)
	}
	hB := dB.Hypervisor()
	nB, okB := characterize(hB, dB)

	if nA != nB || okA != okB || !okA {
		t.Errorf("states differ: exploit (%d frames, referenced=%v) vs injection (%d, %v)",
			nA, okA, nB, okB)
	}
}
