package inject

import "fmt"

// FunctionalityClass groups abusive functionalities by their primary
// goal, the four classes of Table I.
type FunctionalityClass uint8

// Functionality classes.
const (
	// ClassMemoryAccess covers direct unauthorized reads and writes.
	ClassMemoryAccess FunctionalityClass = iota + 1
	// ClassMemoryManagement covers corruption of translation structures
	// and page lifecycle state.
	ClassMemoryManagement
	// ClassExceptionalConditions covers functionalities that trigger the
	// system's own exception/abort machinery.
	ClassExceptionalConditions
	// ClassNonMemory covers the non-memory side effects observed while
	// classifying memory-related advisories (hangs, interrupt floods).
	ClassNonMemory
)

// String returns the class name as Table I prints it.
func (c FunctionalityClass) String() string {
	switch c {
	case ClassMemoryAccess:
		return "Memory Access"
	case ClassMemoryManagement:
		return "Memory Management"
	case ClassExceptionalConditions:
		return "Exceptional Conditions"
	case ClassNonMemory:
		return "Non-Memory Related"
	default:
		return fmt.Sprintf("FunctionalityClass(%d)", uint8(c))
	}
}

// AbusiveFunctionality is the advantage an adversary acquires by
// activating a vulnerability — the generalizable core of an intrusion
// model (Section IV-B). The enumeration is Table I's taxonomy.
type AbusiveFunctionality uint8

// The taxonomy of Table I.
const (
	// ReadUnauthorizedMemory leaks memory the caller must not see.
	ReadUnauthorizedMemory AbusiveFunctionality = iota + 1
	// WriteUnauthorizedMemory corrupts memory at positions the attacker
	// does not fully control.
	WriteUnauthorizedMemory
	// WriteArbitraryMemory is the write-what-where condition (CWE-123).
	WriteArbitraryMemory
	// ReadWriteUnauthorizedMemory combines both directions.
	ReadWriteUnauthorizedMemory
	// FailMemoryAccess makes a legitimate access fail.
	FailMemoryAccess
	// CorruptVirtualMemoryMapping corrupts an address translation.
	CorruptVirtualMemoryMapping
	// CorruptPageReference corrupts page reference/type bookkeeping.
	CorruptPageReference
	// DecreasePageMappingAvailability exhausts or blocks mappings.
	DecreasePageMappingAvailability
	// GuestWritablePageTableEntry hands the guest a writable mapping of
	// a page table (XSA-148, XSA-182).
	GuestWritablePageTableEntry
	// FailMemoryMapping makes a mapping operation fail.
	FailMemoryMapping
	// UncontrolledMemoryAllocation allocates without bounds.
	UncontrolledMemoryAllocation
	// KeepPageAccess retains access to a page after its release
	// (XSA-387, XSA-393).
	KeepPageAccess
	// InduceFatalException reaches a BUG/assert/FATAL path.
	InduceFatalException
	// InduceMemoryException triggers hardware memory exceptions.
	InduceMemoryException
	// InduceHangState wedges a CPU or the whole system.
	InduceHangState
	// UncontrolledInterruptRequests floods interrupt delivery.
	UncontrolledInterruptRequests
)

// String returns the functionality name as Table I prints it.
func (f AbusiveFunctionality) String() string {
	switch f {
	case ReadUnauthorizedMemory:
		return "Read Unauthorized Memory"
	case WriteUnauthorizedMemory:
		return "Write Unauthorized Memory"
	case WriteArbitraryMemory:
		return "Write Unauthorized Arbitrary Memory"
	case ReadWriteUnauthorizedMemory:
		return "R/W Unauthorized Memory"
	case FailMemoryAccess:
		return "Fail a Memory Access"
	case CorruptVirtualMemoryMapping:
		return "Corrupt Virtual Memory Mapping"
	case CorruptPageReference:
		return "Corrupt a Page Reference"
	case DecreasePageMappingAvailability:
		return "Decrease Page Mapping Availability"
	case GuestWritablePageTableEntry:
		return "Guest-Writable Page Table Entry"
	case FailMemoryMapping:
		return "Fail a memory mapping"
	case UncontrolledMemoryAllocation:
		return "Uncontrolled Memory Allocation"
	case KeepPageAccess:
		return "Keep Page Access"
	case InduceFatalException:
		return "Induce a Fatal Exception"
	case InduceMemoryException:
		return "Induce a Memory Exception"
	case InduceHangState:
		return "Induce a Hang State"
	case UncontrolledInterruptRequests:
		return "Uncontrolled Arbitrary Interrupts Requests"
	default:
		return fmt.Sprintf("AbusiveFunctionality(%d)", uint8(f))
	}
}

// Class returns the Table I class the functionality belongs to.
func (f AbusiveFunctionality) Class() FunctionalityClass {
	switch f {
	case ReadUnauthorizedMemory, WriteUnauthorizedMemory, WriteArbitraryMemory,
		ReadWriteUnauthorizedMemory, FailMemoryAccess:
		return ClassMemoryAccess
	case CorruptVirtualMemoryMapping, CorruptPageReference, DecreasePageMappingAvailability,
		GuestWritablePageTableEntry, FailMemoryMapping, UncontrolledMemoryAllocation, KeepPageAccess:
		return ClassMemoryManagement
	case InduceFatalException, InduceMemoryException:
		return ClassExceptionalConditions
	default:
		return ClassNonMemory
	}
}

// AllFunctionalities returns the taxonomy in Table I order.
func AllFunctionalities() []AbusiveFunctionality {
	return []AbusiveFunctionality{
		ReadUnauthorizedMemory, WriteUnauthorizedMemory, WriteArbitraryMemory,
		ReadWriteUnauthorizedMemory, FailMemoryAccess,
		CorruptVirtualMemoryMapping, CorruptPageReference, DecreasePageMappingAvailability,
		GuestWritablePageTableEntry, FailMemoryMapping, UncontrolledMemoryAllocation, KeepPageAccess,
		InduceFatalException, InduceMemoryException,
		InduceHangState, UncontrolledInterruptRequests,
	}
}

// Source is the triggering source of an intrusion model instantiation
// (Section IV-C): who performs the abusive functionality.
type Source uint8

// Triggering sources.
const (
	// SourceUnprivilegedGuest is a malicious unprivileged guest VM.
	SourceUnprivilegedGuest Source = iota + 1
	// SourcePrivilegedGuest is a compromised control domain (dom0).
	SourcePrivilegedGuest
	// SourceDeviceDriver is a malicious or compromised device driver.
	SourceDeviceDriver
	// SourceManagementInterface is the toolstack/management plane.
	SourceManagementInterface
)

// String returns the source description.
func (s Source) String() string {
	switch s {
	case SourceUnprivilegedGuest:
		return "unprivileged guest VM"
	case SourcePrivilegedGuest:
		return "privileged guest (dom0)"
	case SourceDeviceDriver:
		return "device driver"
	case SourceManagementInterface:
		return "management interface"
	default:
		return fmt.Sprintf("Source(%d)", uint8(s))
	}
}

// Component is the target component of an intrusion model.
type Component uint8

// Target components.
const (
	// ComponentMemoryManagement is the hypervisor MM subsystem.
	ComponentMemoryManagement Component = iota + 1
	// ComponentEventHandling is interrupts and event channels.
	ComponentEventHandling
	// ComponentGrantTables is the grant-table subsystem.
	ComponentGrantTables
	// ComponentScheduler is CPU scheduling.
	ComponentScheduler
)

// String returns the component name.
func (c Component) String() string {
	switch c {
	case ComponentMemoryManagement:
		return "memory management"
	case ComponentEventHandling:
		return "event handling"
	case ComponentGrantTables:
		return "grant tables"
	case ComponentScheduler:
		return "scheduler"
	default:
		return fmt.Sprintf("Component(%d)", uint8(c))
	}
}

// Interface is the adversary-system interaction interface.
type Interface uint8

// Interaction interfaces.
const (
	// InterfaceHypercall is the PV hypercall ABI.
	InterfaceHypercall Interface = iota + 1
	// InterfaceIOPort is emulated I/O.
	InterfaceIOPort
	// InterfaceSharedMemory is grant/shared-ring communication.
	InterfaceSharedMemory
)

// String returns the interface name.
func (i Interface) String() string {
	switch i {
	case InterfaceHypercall:
		return "hypercall"
	case InterfaceIOPort:
		return "I/O port"
	case InterfaceSharedMemory:
		return "shared memory"
	default:
		return fmt.Sprintf("Interface(%d)", uint8(i))
	}
}

// IntrusionModel abstracts how an erroneous state is achieved when using
// an abusive functionality through a given interface (Fig. 3): the
// portable, implementation-independent definition a testing campaign
// instantiates.
type IntrusionModel struct {
	// Name identifies the model (usually after the advisory family that
	// motivated it).
	Name string
	// Functionality is the generalized adversary advantage.
	Functionality AbusiveFunctionality
	// TriggeringSource is who exercises the functionality.
	TriggeringSource Source
	// TargetComponent is the subsystem whose state is corrupted.
	TargetComponent Component
	// Interface is the adversary-system interaction channel.
	Interface Interface
	// ErroneousState describes the state the injection must reach, in
	// auditable terms.
	ErroneousState string
	// Advisories lists the known vulnerabilities the model generalizes.
	Advisories []string
}

// String renders the model as a one-line instantiation summary.
func (m IntrusionModel) String() string {
	return fmt.Sprintf("%s: %s via %s by %s targeting %s",
		m.Name, m.Functionality, m.Interface, m.TriggeringSource, m.TargetComponent)
}

// UseCaseModels returns the intrusion models of the four evaluated use
// cases, Table II: the full instantiation is an unprivileged guest
// virtual machine using a hypercall against the memory-management
// component of the virtualization layer.
func UseCaseModels() []IntrusionModel {
	return []IntrusionModel{
		{
			Name:             "XSA-212-crash",
			Functionality:    WriteArbitraryMemory,
			TriggeringSource: SourceUnprivilegedGuest,
			TargetComponent:  ComponentMemoryManagement,
			Interface:        InterfaceHypercall,
			ErroneousState:   "IDT page-fault descriptor overwritten with an arbitrary value",
			Advisories:       []string{"XSA-212"},
		},
		{
			Name:             "XSA-212-priv",
			Functionality:    WriteArbitraryMemory,
			TriggeringSource: SourceUnprivilegedGuest,
			TargetComponent:  ComponentMemoryManagement,
			Interface:        InterfaceHypercall,
			ErroneousState:   "forged PMD linked into a shared target PUD (guest-reachable mapping of hidden code)",
			Advisories:       []string{"XSA-212"},
		},
		{
			Name:             "XSA-148-priv",
			Functionality:    GuestWritablePageTableEntry,
			TriggeringSource: SourceUnprivilegedGuest,
			TargetComponent:  ComponentMemoryManagement,
			Interface:        InterfaceHypercall,
			ErroneousState:   "guest L2 entry with PSE+RW mapping arbitrary machine memory",
			Advisories:       []string{"XSA-148"},
		},
		{
			Name:             "XSA-182-test",
			Functionality:    GuestWritablePageTableEntry,
			TriggeringSource: SourceUnprivilegedGuest,
			TargetComponent:  ComponentMemoryManagement,
			Interface:        InterfaceHypercall,
			ErroneousState:   "writable recursive L4 self-mapping",
			Advisories:       []string{"XSA-182"},
		},
	}
}

// ExtensionModels returns additional models beyond the paper's four use
// cases, demonstrating the single-interface coverage claim: the same
// injector (or a sibling) covers page-reference, exception, hang and
// interrupt states.
func ExtensionModels() []IntrusionModel {
	return []IntrusionModel{
		{
			Name:             "grant-status-leak",
			Functionality:    KeepPageAccess,
			TriggeringSource: SourceUnprivilegedGuest,
			TargetComponent:  ComponentGrantTables,
			Interface:        InterfaceHypercall,
			ErroneousState:   "guest retains a reference to a hypervisor status page after grant v2->v1 downgrade",
			Advisories:       []string{"XSA-387", "XSA-393"},
		},
		{
			Name:             "fatal-exception",
			Functionality:    InduceFatalException,
			TriggeringSource: SourceUnprivilegedGuest,
			TargetComponent:  ComponentMemoryManagement,
			Interface:        InterfaceHypercall,
			ErroneousState:   "unservable exception vector reached (double fault path)",
			Advisories:       []string{"XSA-denial-class"},
		},
		{
			Name:             "hang-state",
			Functionality:    InduceHangState,
			TriggeringSource: SourceUnprivilegedGuest,
			TargetComponent:  ComponentScheduler,
			Interface:        InterfaceHypercall,
			ErroneousState:   "CPU wedged executing a non-terminating handler",
			Advisories:       []string{"CVE-hang-class"},
		},
		{
			Name:             "interrupt-flood",
			Functionality:    UncontrolledInterruptRequests,
			TriggeringSource: SourceUnprivilegedGuest,
			TargetComponent:  ComponentEventHandling,
			Interface:        InterfaceHypercall,
			ErroneousState:   "unbounded pending-event backlog on a victim domain",
			Advisories:       []string{"CVE-2019-17343-class"},
		},
	}
}
