package inject

import (
	"strings"
	"testing"
)

func TestTaxonomyCoversTableI(t *testing.T) {
	all := AllFunctionalities()
	if len(all) != 16 {
		t.Fatalf("taxonomy has %d functionalities, Table I lists 16", len(all))
	}
	seen := make(map[AbusiveFunctionality]bool)
	for _, f := range all {
		if seen[f] {
			t.Errorf("%v appears twice", f)
		}
		seen[f] = true
		if strings.HasPrefix(f.String(), "AbusiveFunctionality(") {
			t.Errorf("functionality %d has no name", f)
		}
	}
}

func TestClassAssignment(t *testing.T) {
	wantCounts := map[FunctionalityClass]int{
		ClassMemoryAccess:          5,
		ClassMemoryManagement:      7,
		ClassExceptionalConditions: 2,
		ClassNonMemory:             2,
	}
	got := make(map[FunctionalityClass]int)
	for _, f := range AllFunctionalities() {
		got[f.Class()]++
	}
	for class, want := range wantCounts {
		if got[class] != want {
			t.Errorf("class %v has %d functionalities, want %d (Table I)", class, got[class], want)
		}
	}
}

func TestClassNamesMatchTableI(t *testing.T) {
	for class, want := range map[FunctionalityClass]string{
		ClassMemoryAccess:          "Memory Access",
		ClassMemoryManagement:      "Memory Management",
		ClassExceptionalConditions: "Exceptional Conditions",
		ClassNonMemory:             "Non-Memory Related",
	} {
		if class.String() != want {
			t.Errorf("class %d = %q, want %q", class, class.String(), want)
		}
	}
	if !strings.HasPrefix(FunctionalityClass(9).String(), "FunctionalityClass(") {
		t.Error("unknown class string")
	}
}

func TestFunctionalityNamesMatchTableI(t *testing.T) {
	// Spot-check the names the paper prints verbatim.
	for f, want := range map[AbusiveFunctionality]string{
		ReadUnauthorizedMemory:        "Read Unauthorized Memory",
		WriteArbitraryMemory:          "Write Unauthorized Arbitrary Memory",
		GuestWritablePageTableEntry:   "Guest-Writable Page Table Entry",
		KeepPageAccess:                "Keep Page Access",
		InduceHangState:               "Induce a Hang State",
		UncontrolledInterruptRequests: "Uncontrolled Arbitrary Interrupts Requests",
	} {
		if f.String() != want {
			t.Errorf("%d = %q, want %q", f, f.String(), want)
		}
	}
}

func TestUseCaseModelsMatchTableII(t *testing.T) {
	models := UseCaseModels()
	if len(models) != 4 {
		t.Fatalf("use-case models = %d, want 4", len(models))
	}
	want := map[string]AbusiveFunctionality{
		"XSA-212-crash": WriteArbitraryMemory,
		"XSA-212-priv":  WriteArbitraryMemory,
		"XSA-148-priv":  GuestWritablePageTableEntry,
		"XSA-182-test":  GuestWritablePageTableEntry,
	}
	for _, m := range models {
		if got, ok := want[m.Name]; !ok || m.Functionality != got {
			t.Errorf("%s -> %v, Table II says %v", m.Name, m.Functionality, got)
		}
		// The full instantiation of Section VI-A.
		if m.TriggeringSource != SourceUnprivilegedGuest ||
			m.TargetComponent != ComponentMemoryManagement ||
			m.Interface != InterfaceHypercall {
			t.Errorf("%s instantiation = %v", m.Name, m)
		}
		if m.ErroneousState == "" || len(m.Advisories) == 0 {
			t.Errorf("%s: incomplete model", m.Name)
		}
	}
}

func TestExtensionModelsCoverOtherClasses(t *testing.T) {
	classes := make(map[FunctionalityClass]bool)
	for _, m := range ExtensionModels() {
		classes[m.Functionality.Class()] = true
		if m.String() == "" || m.ErroneousState == "" {
			t.Errorf("incomplete extension model %q", m.Name)
		}
	}
	for _, want := range []FunctionalityClass{
		ClassMemoryManagement, ClassExceptionalConditions, ClassNonMemory,
	} {
		if !classes[want] {
			t.Errorf("extension models do not cover class %v", want)
		}
	}
}

func TestModelString(t *testing.T) {
	m := UseCaseModels()[0]
	s := m.String()
	for _, want := range []string{"XSA-212-crash", "hypercall", "unprivileged guest", "memory management"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	for src, want := range map[Source]string{
		SourcePrivilegedGuest:     "dom0",
		SourceDeviceDriver:        "device driver",
		SourceManagementInterface: "management interface",
	} {
		if !strings.Contains(src.String(), want) {
			t.Errorf("source %d = %q", src, src.String())
		}
	}
	for comp, want := range map[Component]string{
		ComponentEventHandling: "event",
		ComponentGrantTables:   "grant",
		ComponentScheduler:     "scheduler",
	} {
		if !strings.Contains(comp.String(), want) {
			t.Errorf("component %d = %q", comp, comp.String())
		}
	}
	for iface, want := range map[Interface]string{
		InterfaceIOPort:       "I/O",
		InterfaceSharedMemory: "shared",
	} {
		if !strings.Contains(iface.String(), want) {
			t.Errorf("interface %d = %q", iface, iface.String())
		}
	}
}

func TestStateMachineReachability(t *testing.T) {
	internal := InternalIntrusionMachine()
	ok, path := internal.Reachable(StateErroneous)
	if !ok {
		t.Fatal("internal machine cannot reach the erroneous state")
	}
	if len(path) != 4 || path[len(path)-1] != "vulnerability activation" {
		t.Errorf("witness = %v", path)
	}
	abstract := AbstractIntrusionMachine(WriteArbitraryMemory)
	ok, path = abstract.Reachable(StateErroneous)
	if !ok || len(path) != 1 {
		t.Errorf("abstract reach = %v, %v", ok, path)
	}
	if !strings.Contains(path[0], "Write Unauthorized Arbitrary Memory") {
		t.Errorf("abstract edge = %q", path[0])
	}
	if !Equivalent(internal, abstract) {
		t.Error("Fig. 3 equivalence does not hold")
	}
	// An unreachable target.
	if ok, _ := internal.Reachable("mars"); ok {
		t.Error("reached a nonexistent state")
	}
}

func TestStateMachineStates(t *testing.T) {
	m := InternalIntrusionMachine()
	states := m.States()
	if states[0] != StateInitial {
		t.Errorf("first state = %v", states[0])
	}
	if len(states) != 5 {
		t.Errorf("states = %v", states)
	}
	// A machine with a cycle still terminates.
	cyclic := &StateMachine{
		Name:    "cyclic",
		Initial: "a",
		Transitions: []Transition{
			{From: "a", To: "b", Label: "x"},
			{From: "b", To: "a", Label: "y"},
		},
	}
	if ok, _ := cyclic.Reachable("c"); ok {
		t.Error("cyclic machine reached missing state")
	}
	if ok, _ := cyclic.Reachable("b"); !ok {
		t.Error("cyclic machine failed to reach b")
	}
}
