package inject_test

import (
	"fmt"

	"repro/internal/inject"
)

// The use-case intrusion models print their full Section IV-C
// instantiation: triggering source, interface, target component.
func ExampleIntrusionModel() {
	m := inject.UseCaseModels()[0]
	fmt.Println(m)
	// Output:
	// XSA-212-crash: Write Unauthorized Arbitrary Memory via hypercall by unprivileged guest VM targeting memory management
}

// Every abusive functionality files under one Table I class.
func ExampleAbusiveFunctionality_Class() {
	fmt.Println(inject.GuestWritablePageTableEntry.Class())
	fmt.Println(inject.InduceHangState.Class())
	// Output:
	// Memory Management
	// Non-Memory Related
}

// Fig. 3's equivalence: the multi-step internal view and the one-edge
// abstract view both reach the erroneous state.
func ExampleEquivalent() {
	internal := inject.InternalIntrusionMachine()
	abstract := inject.AbstractIntrusionMachine(inject.WriteArbitraryMemory)
	fmt.Println(inject.Equivalent(internal, abstract))
	// Output:
	// true
}
