package ledger_test

// Unit contract of the run ledger: content-addressed identity,
// canonical settling, self-verification, journal crash-safety, delta
// planning, and the regression diff — everything below the campaign
// integration layer.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/exploits"
	"repro/internal/ledger"
	"repro/internal/span"
)

// testConfig is a small fixed-identity config for unit tests; the
// version order is deliberately non-lexicographic (4.13 < "4.6" as a
// string) so dispatch-order sorting is actually exercised.
func testConfig() ledger.Config {
	return ledger.Config{
		RegistryDigest: "0123456789abcdef",
		Versions:       []string{"4.6", "4.8", "4.13"},
		Seed:           0,
		BuildVersion:   "test",
	}
}

func entry(version, scenario, mode string, wallNS int64) *ledger.Entry {
	return &ledger.Entry{
		Scenario: scenario,
		Version:  version,
		Mode:     mode,
		Verdict:  &ledger.VerdictRecord{ErroneousState: true, SecurityViolation: true},
		WallNS:   wallNS,
	}
}

func TestRunIDStableAndSensitive(t *testing.T) {
	base := testConfig()
	if base.RunID() != testConfig().RunID() {
		t.Fatal("identical configs must share a run ID")
	}
	seen := map[string]string{base.RunID(): "base"}
	for name, mutate := range map[string]func(*ledger.Config){
		"seed":     func(c *ledger.Config) { c.Seed = 7 },
		"registry": func(c *ledger.Config) { c.RegistryDigest = "fedcba9876543210" },
		"versions": func(c *ledger.Config) { c.Versions = c.Versions[:2] },
		"continue": func(c *ledger.Config) { c.ContinueOnError = true },
		"build":    func(c *ledger.Config) { c.BuildVersion = "other" },
	} {
		c := testConfig()
		mutate(&c)
		id := c.RunID()
		if prior, dup := seen[id]; dup {
			t.Errorf("mutating %s collides with %s: run ID %s", name, prior, id)
		}
		seen[id] = name
	}
}

func TestCompatibleExemptsRegistryOnly(t *testing.T) {
	base := testConfig()
	drift := testConfig()
	drift.RegistryDigest = "fedcba9876543210"
	if !drift.Compatible(base) {
		t.Error("registry drift must stay compatible (delta reruns patch corpus growth)")
	}
	for name, mutate := range map[string]func(*ledger.Config){
		"seed":     func(c *ledger.Config) { c.Seed = 7 },
		"versions": func(c *ledger.Config) { c.Versions = c.Versions[:2] },
		"continue": func(c *ledger.Config) { c.ContinueOnError = true },
		"build":    func(c *ledger.Config) { c.BuildVersion = "other" },
	} {
		c := testConfig()
		mutate(&c)
		if c.Compatible(base) {
			t.Errorf("%s mismatch must be incompatible", name)
		}
	}
}

// TestSettleCanonicalForm pins the settle semantics: canceled entries
// dropped, wall time zeroed, dispatch order imposed regardless of
// arrival order, and the digest verifying.
func TestSettleCanonicalForm(t *testing.T) {
	cfg := testConfig()
	run := &ledger.Run{RunID: cfg.RunID(), Config: cfg, CreatedUnixNS: 12345, Cells: 4}
	entries := []*ledger.Entry{
		entry("4.13", "XSA-212-crash", "injection", 900),
		entry("4.6", "XSA-212-crash", "exploit", 100),
		{Scenario: "XSA-212-crash", Version: "4.8", Mode: "exploit",
			Error: &campaign.CellError{Cell: "4.8/XSA-212-crash/exploit", Class: campaign.FailCanceled, Message: "interrupted"}},
		entry("4.6", "XSA-212-crash", "injection", 200),
	}
	rec := ledger.Settle(run, entries)

	if rec.Completed != 3 {
		t.Fatalf("settled %d cells, want 3 (canceled dropped)", rec.Completed)
	}
	order := make([]string, len(rec.Entries))
	for i, e := range rec.Entries {
		if e.WallNS != 0 {
			t.Errorf("entry %s keeps wall time %d in canonical record", e.Key(), e.WallNS)
		}
		order[i] = e.Version + "/" + e.Mode
	}
	want := []string{"4.6/exploit", "4.6/injection", "4.13/injection"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
	if entries[0].WallNS != 900 {
		t.Error("Settle must not mutate the caller's entries")
	}
	if err := rec.Verify(); err != nil {
		t.Fatalf("settled record fails verification: %v", err)
	}
	if got := ledger.Settle(run, entries).Digest; got != rec.Digest {
		t.Errorf("settling twice gives digests %s and %s", rec.Digest, got)
	}
}

func TestRecordFileRoundTripAndTamperDetection(t *testing.T) {
	cfg := testConfig()
	run := &ledger.Run{RunID: cfg.RunID(), Config: cfg, Cells: 1}
	rec := ledger.Settle(run, []*ledger.Entry{entry("4.6", "XSA-212-crash", "exploit", 0)})
	path := filepath.Join(t.TempDir(), "record.json")
	if err := ledger.WriteRecordFile(path, rec); err != nil {
		t.Fatal(err)
	}
	back, err := ledger.LoadRecordFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Canonical() != rec.Canonical() {
		t.Error("canonical form changed across the file round trip")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"erroneous_state": true`, `"erroneous_state": false`, 1)
	if tampered == string(data) {
		t.Fatal("tamper substitution did not apply")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ledger.LoadRecordFile(path); err == nil {
		t.Error("hand-edited record must fail verification")
	}
}

// TestJournalLastWinsAndCrashSafety corrupts a journal the ways a crash
// can: duplicate keys (a resumed re-execution), a garbage line, and a
// truncated final line. Load must settle last-wins and skip the damage.
func TestJournalLastWinsAndCrashSafety(t *testing.T) {
	dir := t.TempDir()
	store, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	w, err := store.NewWriter(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	stale := entry("4.6", "XSA-212-crash", "exploit", 1)
	stale.Verdict.Handled = true
	fresh := entry("4.6", "XSA-212-crash", "exploit", 2)
	other := entry("4.6", "XSA-212-crash", "injection", 3)
	w.Import([]*ledger.Entry{stale, fresh, other})
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(store.RunDir(cfg.RunID()), "cells.jsonl")
	f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not json\n{\"scenario\":\"XSA-212-cra"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec, err := store.Load(cfg.RunID())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Completed != 2 {
		t.Fatalf("settled %d cells, want 2 (last-wins dedupe, damage skipped)", rec.Completed)
	}
	e := rec.EntryByKey(ledger.Key{Scenario: "XSA-212-crash", Version: "4.6", Mode: "exploit"})
	if e == nil || e.Verdict.Handled {
		t.Errorf("stale journal entry survived dedupe: %+v", e)
	}
}

func TestStoreRunsNewestFirst(t *testing.T) {
	store, err := ledger.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2, 3} {
		cfg := testConfig()
		cfg.Seed = seed
		w, err := store.NewWriter(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := store.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("store lists %d runs, want 3", len(runs))
	}
	for i := 1; i < len(runs); i++ {
		if runs[i-1].CreatedUnixNS < runs[i].CreatedUnixNS {
			t.Errorf("runs not newest-first: %d before %d", runs[i-1].CreatedUnixNS, runs[i].CreatedUnixNS)
		}
	}
	latest, err := store.LatestMatching(func() ledger.Config { c := testConfig(); c.Seed = 2; return c }())
	if err != nil || latest == nil {
		t.Fatalf("LatestMatching(seed=2) = %v, %v", latest, err)
	}
	none, err := store.LatestMatching(func() ledger.Config { c := testConfig(); c.Seed = 99; return c }())
	if err != nil || none != nil {
		t.Errorf("LatestMatching(seed=99) = %v, %v, want nil, nil", none, err)
	}
}

// livePrefix builds entries for the live registry's first n (version,
// spec, mode) coordinates in dispatch order — the shape PlanDelta walks.
func livePrefix(cfg ledger.Config, n int) []*ledger.Entry {
	var out []*ledger.Entry
	for _, v := range cfg.Versions {
		for _, s := range exploits.Specs() {
			if !s.AppliesTo(v) {
				continue
			}
			for _, mode := range []string{string(campaign.ModeExploit), string(campaign.ModeInjection)} {
				if len(out) >= n {
					return out
				}
				e := entry(v, s.Name, mode, 0)
				e.Seed = cfg.Seed
				e.SpecDigest = s.Digest()
				out = append(out, e)
			}
		}
	}
	return out
}

func TestPlanDelta(t *testing.T) {
	cfg := ledger.CurrentConfig(0, false)

	full := ledger.PlanDelta(nil, cfg)
	if len(full.Rerun) != full.Expected || len(full.Reused) != 0 || full.Expected == 0 {
		t.Fatalf("nil prior must plan a full rerun: %+v", full)
	}

	run := &ledger.Run{RunID: cfg.RunID(), Config: cfg, Cells: full.Expected}
	entries := livePrefix(cfg, full.Expected)
	if len(entries) != full.Expected {
		t.Fatalf("live prefix built %d entries, expected %d", len(entries), full.Expected)
	}
	complete := ledger.Settle(run, entries)
	d := ledger.PlanDelta(complete, cfg)
	if len(d.Rerun) != 0 || len(d.Reused) != full.Expected || d.Stale != 0 {
		t.Errorf("complete prior must plan zero rerun: rerun=%d reused=%d stale=%d", len(d.Rerun), len(d.Reused), d.Stale)
	}

	partial := ledger.Settle(run, entries[:len(entries)-3])
	d = ledger.PlanDelta(partial, cfg)
	if len(d.Rerun) != 3 || len(d.Reused) != full.Expected-3 {
		t.Errorf("3 absent cells must plan 3 reruns: rerun=%d reused=%d", len(d.Rerun), len(d.Reused))
	}

	stale := livePrefix(cfg, full.Expected)
	stale[0].SpecDigest = "0000000000000000"
	d = ledger.PlanDelta(ledger.Settle(run, stale), cfg)
	if len(d.Rerun) != 1 || d.Stale != 1 {
		t.Errorf("a changed spec digest must invalidate exactly its cell: rerun=%d stale=%d", len(d.Rerun), d.Stale)
	}

	interrupted := livePrefix(cfg, full.Expected)
	interrupted[1].Verdict = nil
	interrupted[1].Error = &campaign.CellError{Cell: "x", Class: campaign.FailCanceled, Message: "interrupted"}
	d = ledger.PlanDelta(ledger.Settle(run, interrupted), cfg)
	if len(d.Rerun) != 1 || d.Stale != 0 {
		t.Errorf("a canceled cell must rerun as absent: rerun=%d stale=%d", len(d.Rerun), d.Stale)
	}
}

// diffFixtures builds a baseline record and a mutated candidate with
// one verdict flip, one lost coverage edge, and one latency drift.
func diffFixtures(t *testing.T) (*ledger.Record, *ledger.Record) {
	t.Helper()
	cfg := testConfig()
	mk := func(mutate bool) *ledger.Record {
		a := entry("4.6", "XSA-212-crash", "exploit", 0)
		a.Coverage = &ledger.CoverageRecord{EdgeList: []coverage.Edge{
			{Family: "hypercall", Name: "mmu_update:ok", Count: 3},
			{Family: "pagetype", Name: "get:l1@general", Count: 1},
		}}
		a.Latency = &span.Latency{Found: true, Events: 5}
		b := entry("4.6", "XSA-212-crash", "injection", 0)
		if mutate {
			a.Coverage.EdgeList = a.Coverage.EdgeList[:1]
			a.Latency = &span.Latency{Found: true, Events: 9}
			b.Verdict.SecurityViolation = false
		}
		for _, e := range []*ledger.Entry{a, b} {
			if e.Coverage != nil {
				m := coverage.FromEdges(e.Coverage.EdgeList)
				e.Coverage.Digest, e.Coverage.Edges = m.Digest(), m.Len()
			}
		}
		run := &ledger.Run{RunID: cfg.RunID(), Config: cfg, Cells: 2}
		return ledger.Settle(run, []*ledger.Entry{a, b})
	}
	return mk(false), mk(true)
}

func TestDiffDetectsRegressions(t *testing.T) {
	base, cand := diffFixtures(t)

	clean := ledger.Diff(base, base)
	if !clean.Clean() || clean.Fatal() {
		t.Errorf("self-diff must be clean: %s", clean.Render())
	}
	if !strings.Contains(clean.Render(), "no differences") {
		t.Errorf("clean render missing marker:\n%s", clean.Render())
	}

	d := ledger.Diff(base, cand)
	if len(d.Flips) != 1 {
		t.Fatalf("got %d verdict flips, want 1:\n%s", len(d.Flips), d.Render())
	}
	if len(d.LostEdges) != 1 || d.LostEdges[0].Name != "get:l1@general" {
		t.Errorf("lost edges %+v, want exactly get:l1@general", d.LostEdges)
	}
	if len(d.LatencyDrifts) != 1 || d.LatencyDrifts[0].From != 5 || d.LatencyDrifts[0].To != 9 {
		t.Errorf("latency drifts %+v, want 5 -> 9", d.LatencyDrifts)
	}
	if !d.Fatal() {
		t.Error("a verdict flip and a lost edge must be fatal")
	}
	out := d.Render()
	for _, want := range []string{"VERDICT FLIPS (1)", "LOST pagetype/get:l1@general", "DETECTION LATENCY DRIFT (1)", "5 -> 9 events"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff render missing %q:\n%s", want, out)
		}
	}
	if got := ledger.Diff(base, cand).Render(); got != out {
		t.Error("diff render is not deterministic")
	}

	// Growth alone — new edges, new cells — must not be fatal.
	growth := ledger.Diff(cand, base)
	if len(growth.Flips) != 1 {
		t.Errorf("reverse diff still flips the verdict: %d", len(growth.Flips))
	}
	if len(growth.NewEdges) != 1 || len(growth.LostEdges) != 0 {
		t.Errorf("reverse diff edges: new=%d lost=%d, want 1/0", len(growth.NewEdges), len(growth.LostEdges))
	}
}
