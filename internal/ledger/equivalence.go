package ledger

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/tracediff"
)

// Equivalence grades the RQ2 trace-equivalence verdicts from a record's
// persisted canonical streams, mirroring tracediff.MatrixEquivalence
// over live matrices: same basis selection (exploit@version where the
// exploit induced the state, reference-exploit on fixed versions,
// state-audit for handled cells), same verdict order (version-major,
// scenario-minor). Because it reads only the record, a resumed run —
// part reused entries, part re-executed — grades identically to an
// uninterrupted one; that is what makes merged equivalence artifacts
// byte-identical.
//
// Like the live engine, a failed or unprofiled cell is an error: an
// equivalence claim over a partial matrix would be vacuous.
func Equivalence(rec *Record) ([]tracediff.CellVerdict, error) {
	type mk struct{ version, scenario, mode string }
	idx := make(map[mk]*Entry, len(rec.Entries))
	for _, e := range rec.Entries {
		if e.Error != nil {
			return nil, fmt.Errorf("ledger: cell %s/%s/%s failed: %s", e.Version, e.Scenario, e.Mode, e.Error)
		}
		if !e.Profiled || e.Verdict == nil {
			return nil, fmt.Errorf("ledger: cell %s/%s/%s has no persisted trace streams (run with telemetry)", e.Version, e.Scenario, e.Mode)
		}
		idx[mk{e.Version, e.Scenario, e.Mode}] = e
	}

	// Reference exploit per scenario: the earliest version (record's
	// version order) whose exploit induced the erroneous state.
	reference := func(scenario string) *Entry {
		for _, v := range rec.Config.Versions {
			if e, ok := idx[mk{v, scenario, string(campaign.ModeExploit)}]; ok && e.Verdict.ErroneousState {
				return e
			}
		}
		return nil
	}

	var out []tracediff.CellVerdict
	for _, e := range rec.Entries {
		if e.Mode != string(campaign.ModeExploit) {
			continue
		}
		inj, ok := idx[mk{e.Version, e.Scenario, string(campaign.ModeInjection)}]
		if !ok {
			return nil, fmt.Errorf("ledger: cell %s/%s has no injection sibling in the record", e.Version, e.Scenario)
		}
		cv := tracediff.CellVerdict{UseCase: e.Scenario, Version: e.Version}

		switch {
		case e.Verdict.ErroneousState:
			// The exploit worked here: strongest basis.
			cv.Basis = tracediff.BasisExploit
			cv.Tier, cv.Divergence = tracediff.CompareStreams(e.Effects, inj.Effects)
			cv.BaseEvents, cv.InjectionEvents = len(e.Effects), len(inj.Effects)

		default:
			ref := reference(e.Scenario)
			if ref == nil {
				return nil, fmt.Errorf("ledger: %s: no version's exploit induced the erroneous state; no reference to compare %s's injection against", e.Scenario, e.Version)
			}
			cv.RefVersion = ref.Version
			if inj.Verdict.SecurityViolation == ref.Verdict.SecurityViolation {
				cv.Basis = tracediff.BasisReference
				cv.Tier, cv.Divergence = tracediff.CompareStreams(ref.Effects, inj.Effects)
				cv.BaseEvents, cv.InjectionEvents = len(ref.Effects), len(inj.Effects)
			} else {
				// Handled cell: compare the erroneous state itself.
				cv.Basis = tracediff.BasisStateAudit
				ra, ia := ref.StateAudit, inj.StateAudit
				cv.BaseEvents, cv.InjectionEvents = len(ra), len(ia)
				if len(ra) == 0 && len(ia) == 0 {
					// Nothing attested on either side: vacuous equality
					// is not equivalence evidence.
					cv.Tier = tracediff.TierDivergent
					cv.Divergence = &tracediff.Divergence{A: tracediff.Absent, B: tracediff.Absent}
				} else {
					cv.Tier, cv.Divergence = tracediff.CompareStreams(ra, ia)
				}
			}
		}
		out = append(out, cv)
	}
	return out, nil
}
