package ledger

import (
	"errors"

	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/exploits"
	"repro/internal/monitor"
	"repro/internal/tracediff"
)

// Artifact reconstruction. Under `-ledger` the repro binary renders its
// matrix, equivalence and coverage artifacts from the settled record
// rather than from live in-memory results — full runs and delta reruns
// share one rendering source, which is what makes a merged rerun's
// artifacts byte-identical to an uninterrupted run's.

// MatrixEntries reconstructs renderable campaign matrix entries from
// the record, in dispatch order. Successful cells rebuild the verdict
// booleans and the script's terminating error (the "PoC failed" note);
// failed cells carry their classified CellError.
func (r *Record) MatrixEntries() []campaign.MatrixEntry {
	out := make([]campaign.MatrixEntry, 0, len(r.Entries))
	for _, e := range r.Entries {
		me := campaign.MatrixEntry{Version: e.Version, UseCase: e.Scenario, Mode: campaign.Mode(e.Mode), Err: e.Error}
		if e.Error == nil && e.Verdict != nil {
			oc := &exploits.Outcome{UseCase: e.Scenario, Mode: e.Mode, Version: e.Version}
			if e.Verdict.ScriptError != "" {
				oc.Err = errors.New(e.Verdict.ScriptError)
			}
			me.Result = &campaign.RunResult{
				Outcome: oc,
				Verdict: &monitor.Verdict{
					UseCase:           e.Scenario,
					Mode:              e.Mode,
					Version:           e.Version,
					ErroneousState:    e.Verdict.ErroneousState,
					SecurityViolation: e.Verdict.SecurityViolation,
					Handled:           e.Verdict.Handled,
				},
			}
		}
		out = append(out, me)
	}
	return out
}

// EquivalenceVerdicts returns the record's attached RQ2 verdicts in
// matrix order. ok is false when the record is not fully graded (some
// expected injection entry lacks a verdict, or a cell failed) — the
// cases where a live run would not render the table either.
func (r *Record) EquivalenceVerdicts() (verdicts []tracediff.CellVerdict, ok bool) {
	for _, e := range r.Entries {
		if e.Error != nil {
			return nil, false
		}
		if e.Mode != string(campaign.ModeInjection) {
			continue
		}
		if e.Equivalence == nil {
			return nil, false
		}
		verdicts = append(verdicts, *e.Equivalence)
	}
	return verdicts, len(verdicts) > 0
}

// CoverageReport replays the record's per-cell coverage through the
// live campaign aggregation: one batch of all cells in dispatch order,
// so union membership, first-witness attribution and the report digest
// are identical to what the campaign's own collector produced.
func (r *Record) CoverageReport() *coverage.Report {
	c := coverage.NewCollector()
	ids := make([]string, 0, len(r.Entries))
	for _, e := range r.Entries {
		ids = append(ids, e.Key().Cell())
	}
	c.StartBatch(ids)
	for _, e := range r.Entries {
		var m *coverage.Map
		if e.Coverage != nil {
			m = coverage.FromEdges(e.Coverage.EdgeList)
		}
		c.FinishCell(e.Key().Cell(), m)
	}
	return c.Report()
}
