package ledger

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/tracediff"
)

// The cross-run regression diff. Two records — typically a committed
// baseline and a fresh run — compare cell by cell on the
// (scenario, version, mode) coordinate (the seed is config-level and
// reported in the header, so diffing across fault loads stays
// meaningful). The diff reuses the repo's canonical machinery: coverage
// edge gains/losses come from coverage.Diff over the reconstructed
// campaign reports (first-witness cells included), equivalence-tier
// changes compare the records' attached tracediff verdicts, and the
// rendering is canonical text — dispatch order, no wall times — so the
// diff itself is a byte-stable artifact.

// cellCoord matches entries across runs (seed excluded; it is config).
type cellCoord struct{ scenario, version, mode string }

func coord(e *Entry) cellCoord { return cellCoord{e.Scenario, e.Version, e.Mode} }

func (c cellCoord) String() string { return c.version + "/" + c.scenario + "/" + c.mode }

// VerdictFlip is one cell whose outcome changed between runs: verdict
// booleans, failure class, or success vs failure.
type VerdictFlip struct {
	Cell cellCoord
	From *Entry
	To   *Entry
}

// outcomeString renders an entry's outcome compactly for flip lines.
func outcomeString(e *Entry) string {
	if e.Error != nil {
		return fmt.Sprintf("failed(%s)", e.Error.Class)
	}
	if e.Verdict == nil {
		return "unknown"
	}
	mark := func(v bool) string {
		if v {
			return "✓"
		}
		return "-"
	}
	s := "err-state=" + mark(e.Verdict.ErroneousState) + " sec-viol=" + mark(e.Verdict.SecurityViolation)
	if e.Verdict.Handled {
		s += " handled"
	}
	return s
}

// sameOutcome reports whether two entries agree on verdict and failure
// classification.
func sameOutcome(a, b *Entry) bool {
	switch {
	case a.Error != nil || b.Error != nil:
		return a.Error != nil && b.Error != nil && a.Error.Class == b.Error.Class
	case a.Verdict == nil || b.Verdict == nil:
		return a.Verdict == nil && b.Verdict == nil
	}
	return a.Verdict.ErroneousState == b.Verdict.ErroneousState &&
		a.Verdict.SecurityViolation == b.Verdict.SecurityViolation &&
		a.Verdict.Handled == b.Verdict.Handled
}

// TierChange is one injection cell whose RQ2 verdict changed tier or
// basis between runs.
type TierChange struct {
	Cell     cellCoord
	From, To *tracediff.CellVerdict
}

// LatencyDrift is one cell whose RQ3 detection latency moved.
type LatencyDrift struct {
	Cell     cellCoord
	From, To int64
}

// SpanDrift is one cell whose span makespan (virtual time) moved.
type SpanDrift struct {
	Cell     cellCoord
	From, To uint64
}

// RunDiff is the settled comparison of two run records.
type RunDiff struct {
	A, B *Record
	// OnlyA and OnlyB list cells present in one record only, in that
	// record's dispatch order.
	OnlyA, OnlyB []cellCoord
	// Flips are outcome changes on shared cells (B's dispatch order).
	Flips []VerdictFlip
	// TierChanges are RQ2 verdict changes on shared injection cells.
	TierChanges []TierChange
	// NewEdges and LostEdges are the campaign coverage union's gains and
	// losses (coverage.Diff over the reconstructed reports), each with
	// its first-witness cell.
	NewEdges, LostEdges []coverage.UnionEdge
	// LatencyDrifts and SpanDrifts are virtual-time movements on shared
	// successful cells.
	LatencyDrifts []LatencyDrift
	SpanDrifts    []SpanDrift
}

// Diff compares two records, a as the baseline and b as the candidate.
func Diff(a, b *Record) *RunDiff {
	d := &RunDiff{A: a, B: b}
	inA := make(map[cellCoord]*Entry, len(a.Entries))
	for _, e := range a.Entries {
		inA[coord(e)] = e
	}
	inB := make(map[cellCoord]*Entry, len(b.Entries))
	for _, e := range b.Entries {
		inB[coord(e)] = e
	}
	for _, e := range a.Entries {
		if _, ok := inB[coord(e)]; !ok {
			d.OnlyA = append(d.OnlyA, coord(e))
		}
	}
	for _, e := range b.Entries {
		c := coord(e)
		prev, ok := inA[c]
		if !ok {
			d.OnlyB = append(d.OnlyB, c)
			continue
		}
		if !sameOutcome(prev, e) {
			d.Flips = append(d.Flips, VerdictFlip{Cell: c, From: prev, To: e})
		}
		if e.Mode == string(campaign.ModeInjection) && !sameTier(prev.Equivalence, e.Equivalence) {
			d.TierChanges = append(d.TierChanges, TierChange{Cell: c, From: prev.Equivalence, To: e.Equivalence})
		}
		if prev.Error == nil && e.Error == nil {
			la, lb := latencyOf(prev), latencyOf(e)
			if la != lb {
				d.LatencyDrifts = append(d.LatencyDrifts, LatencyDrift{Cell: c, From: la, To: lb})
			}
			if prev.SpanV != e.SpanV {
				d.SpanDrifts = append(d.SpanDrifts, SpanDrift{Cell: c, From: prev.SpanV, To: e.SpanV})
			}
		}
	}
	d.NewEdges, d.LostEdges = coverage.Diff(a.CoverageReport(), b.CoverageReport())
	sortUnion(d.NewEdges)
	sortUnion(d.LostEdges)
	return d
}

// latencyOf folds an entry's latency to a comparable scalar: the event
// distance when found, a sentinel when not measured.
func latencyOf(e *Entry) int64 {
	if e.Latency == nil || !e.Latency.Found {
		return -1 << 62
	}
	return e.Latency.Events
}

func sameTier(a, b *tracediff.CellVerdict) bool {
	switch {
	case a == nil || b == nil:
		return (a == nil) == (b == nil)
	}
	return a.Tier == b.Tier && a.Basis == b.Basis && a.RefVersion == b.RefVersion
}

func sortUnion(edges []coverage.UnionEdge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Family != edges[j].Family {
			return edges[i].Family < edges[j].Family
		}
		return edges[i].Name < edges[j].Name
	})
}

// Fatal reports whether the diff crosses the regression gate `make
// ledger-diff` enforces: a verdict flip or a lost coverage edge.
// Tier changes, drift and growth are reported but not fatal.
func (d *RunDiff) Fatal() bool {
	return len(d.Flips) > 0 || len(d.LostEdges) > 0
}

// Clean reports a diff with nothing to say.
func (d *RunDiff) Clean() bool {
	return len(d.OnlyA) == 0 && len(d.OnlyB) == 0 && len(d.Flips) == 0 &&
		len(d.TierChanges) == 0 && len(d.NewEdges) == 0 && len(d.LostEdges) == 0 &&
		len(d.LatencyDrifts) == 0 && len(d.SpanDrifts) == 0
}

// Render writes the diff as a canonical text report.
func (d *RunDiff) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RUN DIFF %s -> %s\n", d.A.RunID, d.B.RunID)
	fmt.Fprintf(&b, "  baseline:  %s (%d/%d cells)\n", d.A.Config.canonical(), d.A.Completed, d.A.Cells)
	fmt.Fprintf(&b, "  candidate: %s (%d/%d cells)\n", d.B.Config.canonical(), d.B.Completed, d.B.Cells)
	if d.Clean() {
		b.WriteString("no differences\n")
		return b.String()
	}
	if len(d.OnlyA) > 0 {
		fmt.Fprintf(&b, "CELLS ONLY IN BASELINE (%d)\n", len(d.OnlyA))
		for _, c := range d.OnlyA {
			fmt.Fprintf(&b, "  %s\n", c)
		}
	}
	if len(d.OnlyB) > 0 {
		fmt.Fprintf(&b, "CELLS ONLY IN CANDIDATE (%d)\n", len(d.OnlyB))
		for _, c := range d.OnlyB {
			fmt.Fprintf(&b, "  %s\n", c)
		}
	}
	if len(d.Flips) > 0 {
		fmt.Fprintf(&b, "VERDICT FLIPS (%d)\n", len(d.Flips))
		for _, f := range d.Flips {
			fmt.Fprintf(&b, "  %s: %s -> %s\n", f.Cell, outcomeString(f.From), outcomeString(f.To))
		}
	}
	if len(d.TierChanges) > 0 {
		fmt.Fprintf(&b, "EQUIVALENCE TIER CHANGES (%d)\n", len(d.TierChanges))
		for _, t := range d.TierChanges {
			fmt.Fprintf(&b, "  %s: %s -> %s\n", t.Cell, tierString(t.From), tierString(t.To))
		}
	}
	if len(d.NewEdges) > 0 || len(d.LostEdges) > 0 {
		fmt.Fprintf(&b, "COVERAGE: +%d new edges, -%d lost edges\n", len(d.NewEdges), len(d.LostEdges))
		for _, e := range d.NewEdges {
			fmt.Fprintf(&b, "  NEW  %s/%s x%d first=%s\n", e.Family, e.Name, e.Count, e.FirstCell)
		}
		for _, e := range d.LostEdges {
			fmt.Fprintf(&b, "  LOST %s/%s x%d first=%s\n", e.Family, e.Name, e.Count, e.FirstCell)
		}
	}
	if len(d.LatencyDrifts) > 0 {
		fmt.Fprintf(&b, "DETECTION LATENCY DRIFT (%d)\n", len(d.LatencyDrifts))
		for _, l := range d.LatencyDrifts {
			fmt.Fprintf(&b, "  %s: %s -> %s events\n", l.Cell, latencyString(l.From), latencyString(l.To))
		}
	}
	if len(d.SpanDrifts) > 0 {
		fmt.Fprintf(&b, "SPAN MAKESPAN DRIFT (%d)\n", len(d.SpanDrifts))
		for _, s := range d.SpanDrifts {
			fmt.Fprintf(&b, "  %s: %d -> %d virtual\n", s.Cell, s.From, s.To)
		}
	}
	return b.String()
}

func tierString(cv *tracediff.CellVerdict) string {
	if cv == nil {
		return "ungraded"
	}
	s := string(cv.Tier) + "/" + string(cv.Basis)
	if cv.RefVersion != "" {
		s += "@" + cv.RefVersion
	}
	return s
}

func latencyString(v int64) string {
	if v == -1<<62 {
		return "unmeasured"
	}
	return fmt.Sprintf("%d", v)
}
