package ledger_test

// Campaign integration: the ledger's determinism and resume contract
// against the real matrix. The settled record — the bytes of
// record.json, not just the digest — must be identical at any worker
// count, under seeded chaos, and fork vs fresh boot; an interrupted
// campaign resumed from its journal must merge to the same bytes an
// uninterrupted run writes.

import (
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/faults"
	"repro/internal/ledger"
	"repro/internal/telemetry"
)

// runLedgerCampaign mirrors the repro binary's -ledger flow: plan the
// delta against the store's latest compatible record, journal the
// rerun, grade equivalence when the merged record is clean, settle.
// When interruptAfter > 0 the campaign context is canceled after that
// many cells finish, simulating SIGINT mid-run.
func runLedgerCampaign(t *testing.T, dir string, workers int, seed int64, interruptAfter int32) *ledger.Record {
	t.Helper()
	store, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	continueOnError := seed != 0
	cfg := ledger.CurrentConfig(seed, continueOnError)
	prev, err := store.LatestMatching(cfg)
	if err != nil {
		t.Fatal(err)
	}
	delta := ledger.PlanDelta(prev, cfg)
	w, err := store.NewWriter(cfg, delta.Expected)
	if err != nil {
		t.Fatal(err)
	}
	if prev != nil && prev.RunID != w.RunID() {
		w.Import(delta.Reused)
	}

	ctx := context.Background()
	r := &campaign.Runner{Workers: workers, Observer: w, ContinueOnError: continueOnError}
	if seed != 0 {
		plan := faults.NewPlan(seed, faults.DefaultDensity)
		r.Faults = plan
		defer plan.ReleaseAll()
	}
	if interruptAfter > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		r.Progress = &cancelAfter{n: interruptAfter, cancel: cancel}
	}

	_, runErr := r.RunCellRefs(ctx, delta.Rerun)
	if runErr != nil {
		if interruptAfter == 0 {
			t.Fatalf("workers=%d seed=%d: %v", workers, seed, runErr)
		}
		// The interrupted path: close flushes everything that settled.
		w.StripEquivalence()
		rec, _ := w.Close()
		return rec
	}
	if snap := w.Snapshot(); snap.Complete() && snap.Failed() == 0 {
		verdicts, eqErr := ledger.Equivalence(snap)
		if eqErr != nil {
			t.Fatalf("equivalence from record: %v", eqErr)
		}
		w.RecordEquivalence(verdicts)
	} else {
		w.StripEquivalence()
	}
	rec, err := w.Close()
	if err != nil {
		t.Fatalf("close ledger: %v", err)
	}
	return rec
}

// cancelAfter cancels the campaign context once n cells have finished.
type cancelAfter struct {
	n      int32
	done   atomic.Int32
	cancel context.CancelFunc
}

func (c *cancelAfter) BatchStarted([]string) {}
func (c *cancelAfter) CellStarted(string)    {}
func (c *cancelAfter) CellFinished(string, time.Duration, *telemetry.CellProfile, *campaign.CellError) {
	if c.done.Add(1) == c.n {
		c.cancel()
	}
}

// recordBytes reads the settled record.json a run wrote.
func recordBytes(t *testing.T, dir, runID string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, runID, "record.json"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestLedgerRecordDeterministic pins the settled record bytes across
// worker counts, with and without seeded chaos. Under chaos some cells
// fail; the record must still be byte-identical — failure class and
// message are part of the canonical outcome.
func TestLedgerRecordDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 7, 99} {
		ref := runLedgerCampaign(t, t.TempDir(), 1, seed, 0)
		refBytes := ""
		for _, workers := range []int{1, 4, 8} {
			dir := t.TempDir()
			rec := runLedgerCampaign(t, dir, workers, seed, 0)
			if rec.RunID != ref.RunID {
				t.Fatalf("seed=%d workers=%d: run ID %s, want %s", seed, workers, rec.RunID, ref.RunID)
			}
			got := recordBytes(t, dir, rec.RunID)
			if refBytes == "" {
				refBytes = got
				if err := rec.Verify(); err != nil {
					t.Fatalf("seed=%d: record fails verification: %v", seed, err)
				}
				if !rec.Complete() {
					t.Fatalf("seed=%d: record incomplete: %d/%d", seed, rec.Completed, rec.Cells)
				}
				if seed == 0 && rec.Failed() != 0 {
					t.Fatalf("clean run has %d failed cells", rec.Failed())
				}
				continue
			}
			if got != refBytes {
				t.Errorf("seed=%d: record bytes at workers=%d diverge from workers=1", seed, workers)
			}
		}
	}
}

// TestLedgerForkVsFreshIdentical compares the settled record between
// snapshot-fork and fresh-boot cell construction.
func TestLedgerForkVsFreshIdentical(t *testing.T) {
	was := campaign.SnapshotsEnabled()
	defer campaign.EnableSnapshots(was)

	campaign.EnableSnapshots(false)
	freshDir := t.TempDir()
	fresh := runLedgerCampaign(t, freshDir, 4, 0, 0)

	campaign.EnableSnapshots(true)
	forkDir := t.TempDir()
	fork := runLedgerCampaign(t, forkDir, 4, 0, 0)

	if a, b := recordBytes(t, freshDir, fresh.RunID), recordBytes(t, forkDir, fork.RunID); a != b {
		t.Error("fork record bytes diverge from fresh boot")
	}
}

// TestResumeAfterInterruptMergesByteIdentical interrupts a campaign
// mid-run, then resumes from the journal and checks the merged record
// and its graded equivalence are byte-identical to an uninterrupted
// run — and that the resume actually skipped the settled cells.
func TestResumeAfterInterruptMergesByteIdentical(t *testing.T) {
	refDir := t.TempDir()
	ref := runLedgerCampaign(t, refDir, 4, 0, 0)

	dir := t.TempDir()
	partial := runLedgerCampaign(t, dir, 4, 0, 10)
	if partial.Completed == 0 || partial.Completed >= partial.Cells {
		t.Fatalf("interrupt settled %d/%d cells, want a strict partial", partial.Completed, partial.Cells)
	}

	// The resume plan must reuse exactly the settled cells.
	cfg := ledger.CurrentConfig(0, false)
	store, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := store.LatestMatching(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := ledger.PlanDelta(prev, cfg)
	if len(d.Reused) != partial.Completed || len(d.Rerun) != partial.Cells-partial.Completed {
		t.Fatalf("resume plan reuses %d and reruns %d, want %d and %d",
			len(d.Reused), len(d.Rerun), partial.Completed, partial.Cells-partial.Completed)
	}

	merged := runLedgerCampaign(t, dir, 4, 0, 0)
	if merged.RunID != ref.RunID {
		t.Fatalf("merged run ID %s, want %s", merged.RunID, ref.RunID)
	}
	if a, b := recordBytes(t, refDir, ref.RunID), recordBytes(t, dir, merged.RunID); a != b {
		t.Error("merged record bytes diverge from the uninterrupted run")
	}
}

// TestRecordDerivedArtifacts checks the record rebuilds the campaign's
// downstream artifacts: matrix entries for every cell, a verifying
// coverage report with the full matrix, and a graded equivalence table.
func TestRecordDerivedArtifacts(t *testing.T) {
	dir := t.TempDir()
	rec := runLedgerCampaign(t, dir, 4, 0, 0)

	entries := rec.MatrixEntries()
	if len(entries) != rec.Completed {
		t.Fatalf("rebuilt %d matrix entries from %d cells", len(entries), rec.Completed)
	}
	verdicts, ok := rec.EquivalenceVerdicts()
	if !ok || len(verdicts) != rec.Completed/2 {
		t.Fatalf("equivalence: ok=%t verdicts=%d, want %d (one per injection cell)", ok, len(verdicts), rec.Completed/2)
	}
	for _, cv := range verdicts {
		if cv.Tier == "" || cv.Basis == "" {
			t.Errorf("ungraded verdict in record: %+v", cv)
		}
	}
	rep := rec.CoverageReport()
	if len(rep.Cells) != rec.Completed {
		t.Fatalf("coverage report rebuilt %d cells from %d", len(rep.Cells), rec.Completed)
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("rebuilt coverage report fails verification: %v", err)
	}
}
