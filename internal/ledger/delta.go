package ledger

import (
	"repro/internal/campaign"
	"repro/internal/exploits"
)

// The resume planner. A delta rerun walks the full expected matrix of
// the current configuration in dispatch order and, for every cell,
// either reuses the prior record's entry or schedules a re-execution.
// An entry is reusable when it exists (a canceled cell never enters the
// canonical record, so interrupted work is simply absent) and its
// scenario's declarative spec digest still matches the live registry —
// a changed or new spec invalidates its cells; corpus growth adds
// absent ones. Failed cells are reused too: under a fixed chaos seed a
// failure is a deterministic outcome, not a flake.

// Delta is a resume plan: the entries carried over from the prior
// record and the cells to re-execute, both in dispatch order.
type Delta struct {
	// Reused are the prior record's still-valid entries.
	Reused []*Entry
	// Rerun are the cells to execute, in dispatch order.
	Rerun []campaign.CellRef
	// Stale counts prior entries invalidated by a spec change (a subset
	// of what Rerun re-executes; absent cells are not counted).
	Stale int
	// Expected is the full matrix size of the current configuration.
	Expected int
}

// PlanDelta computes the resume plan for cfg against a prior record.
// With a nil prior record everything reruns — a fresh campaign is the
// degenerate delta. The prior record must be Compatible with cfg;
// callers enforce that (ErrIncompatible) before planning.
func PlanDelta(prev *Record, cfg Config) Delta {
	var d Delta
	for _, v := range cfg.Versions {
		for _, s := range exploits.Specs() {
			if !s.AppliesTo(v) {
				continue
			}
			for _, mode := range []campaign.Mode{campaign.ModeExploit, campaign.ModeInjection} {
				d.Expected++
				if prev != nil {
					e := prev.EntryByKey(Key{Scenario: s.Name, Version: v, Mode: string(mode), Seed: cfg.Seed})
					if e != nil && e.SpecDigest == s.Digest() {
						d.Reused = append(d.Reused, e)
						continue
					}
					if e != nil {
						d.Stale++
					}
				}
				d.Rerun = append(d.Rerun, campaign.CellRef{Version: v, UseCase: s.Name, Mode: mode})
			}
		}
	}
	return d
}
