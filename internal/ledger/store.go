package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The on-disk layout. A store directory holds one subdirectory per run
// ID:
//
//	<dir>/<run-id>/run.json     — Run metadata (wall-time provenance lives here)
//	<dir>/<run-id>/cells.jsonl  — append-only journal, one Entry per line,
//	                              completion order, crash-safe
//	<dir>/<run-id>/record.json  — canonical settled Record, written on close
//
// The journal is the source of truth: Load rebuilds the record from it
// (last entry per key wins, so a resumed run's re-executions supersede
// interrupted ones) and record.json is a derived, self-verifying
// convenience — the byte-identity artifact, the committed-baseline
// format, and the diff input.

const (
	runFile     = "run.json"
	journalFile = "cells.jsonl"
	recordFile  = "record.json"
)

// Store is a directory of campaign run records.
type Store struct {
	dir string
}

// Open opens (creating if needed) a run store directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// RunDir returns the record directory for a run ID.
func (s *Store) RunDir(id string) string { return filepath.Join(s.dir, id) }

// Runs lists the store's run metadata, newest first (by creation time,
// run ID as the tiebreak). Directories without a readable run.json are
// skipped — a run is only visible once its metadata hit the disk.
func (s *Store) Runs() ([]*Run, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ledger: list runs: %w", err)
	}
	var runs []*Run
	for _, de := range ents {
		if !de.IsDir() {
			continue
		}
		r, err := readRunFile(filepath.Join(s.dir, de.Name(), runFile))
		if err != nil {
			continue
		}
		runs = append(runs, r)
	}
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].CreatedUnixNS != runs[j].CreatedUnixNS {
			return runs[i].CreatedUnixNS > runs[j].CreatedUnixNS
		}
		return runs[i].RunID < runs[j].RunID
	})
	return runs, nil
}

// Load rebuilds a run's canonical record from its journal. The journal
// may be live (a running or interrupted campaign): entries settle
// last-wins per key, canceled cells drop out, and the result is the
// same canonical form a clean close writes.
func (s *Store) Load(id string) (*Record, error) {
	dir := s.RunDir(id)
	run, err := readRunFile(filepath.Join(dir, runFile))
	if err != nil {
		return nil, err
	}
	entries, err := readJournal(filepath.Join(dir, journalFile))
	if err != nil {
		return nil, err
	}
	return Settle(run, entries), nil
}

// LatestMatching returns the newest run record compatible with cfg
// (same seed, flags, versions and build — the registry digest may
// drift), or nil when the store holds none.
func (s *Store) LatestMatching(cfg Config) (*Record, error) {
	runs, err := s.Runs()
	if err != nil {
		return nil, err
	}
	for _, r := range runs {
		if cfg.Compatible(r.Config) {
			return s.Load(r.RunID)
		}
	}
	return nil, nil
}

// readRunFile decodes one run.json.
func readRunFile(path string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: read run metadata: %w", err)
	}
	var r Run
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("ledger: parse %s: %w", path, err)
	}
	return &r, nil
}

// readJournal decodes a cells.jsonl journal, last entry per key wins.
// A truncated final line (crash mid-append) is skipped, not fatal: the
// cell it carried simply reruns on resume.
func readJournal(path string) ([]*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ledger: open journal: %w", err)
	}
	defer f.Close()

	byKey := make(map[Key]int)
	var entries []*Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		if i, ok := byKey[e.Key()]; ok {
			entries[i] = &e
			continue
		}
		byKey[e.Key()] = len(entries)
		entries = append(entries, &e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ledger: scan journal: %w", err)
	}
	return entries, nil
}

// marshalRecord renders a record as the settled record.json bytes: the
// canonical interchange form byte-identity is asserted over.
func marshalRecord(rec *Record) ([]byte, error) {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteRecordFile writes a record's settled JSON form, the format
// `make ledger-baseline` commits and `tracecheck runs diff` consumes.
func WriteRecordFile(path string, rec *Record) error {
	data, err := marshalRecord(rec)
	if err != nil {
		return fmt.Errorf("ledger: marshal record: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("ledger: write record: %w", err)
	}
	return nil
}

// LoadRecordFile reads and verifies a settled record file (a run
// directory's record.json or a committed baseline).
func LoadRecordFile(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: read record: %w", err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("ledger: parse %s: %w", path, err)
	}
	if err := rec.Verify(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}
