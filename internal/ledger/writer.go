package ledger

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/exploits"
	"repro/internal/span"
	"repro/internal/tracediff"
)

// Writer journals a live campaign into a run record directory. It is
// the campaign.CellObserver the repro binary attaches under `-ledger`:
// every settled cell becomes one appended journal line, so the record
// survives a SIGINT or crash at any point with everything that had
// settled. Settle order is the runner's deterministic dispatch-order
// funnel, so the journal itself — not just the settled record — is
// byte-identical at any worker count (modulo the segregated wall_ns
// field).
//
// Ledger I/O never fails the campaign: write errors accumulate and
// surface via Errors / Close, mirroring the flight recorder's
// discipline.
type Writer struct {
	store *Store
	run   *Run
	dir   string

	mu      sync.Mutex
	f       *os.File
	entries map[Key]*Entry
	errs    []error
}

// NewWriter opens (creating or resuming) the record directory for cfg
// and starts journaling. A directory left by an earlier run of the same
// config is appended to — same experiment, same run ID, one journal —
// and keeps its original creation provenance.
func (s *Store) NewWriter(cfg Config, expectedCells int) (*Writer, error) {
	id := cfg.RunID()
	dir := s.RunDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: create run dir: %w", err)
	}
	run := &Run{RunID: id, Config: cfg, CreatedUnixNS: time.Now().UnixNano(), Cells: expectedCells}
	if prev, err := readRunFile(filepath.Join(dir, runFile)); err == nil && prev.CreatedUnixNS != 0 {
		run.CreatedUnixNS = prev.CreatedUnixNS
	}
	if err := writeRunFile(dir, run); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: open journal: %w", err)
	}
	w := &Writer{store: s, run: run, dir: dir, f: f, entries: make(map[Key]*Entry, expectedCells)}
	// A resumed same-config run starts from what the journal already
	// holds; re-executed cells supersede their old entries as they land.
	if prior, err := readJournal(filepath.Join(dir, journalFile)); err == nil {
		for _, e := range prior {
			w.entries[e.Key()] = e
		}
	}
	return w, nil
}

// RunID returns the run's content-addressed identity.
func (w *Writer) RunID() string { return w.run.RunID }

// Dir returns the run's record directory.
func (w *Writer) Dir() string { return w.dir }

// CellSettled implements campaign.CellObserver: it converts one settled
// cell into a journal entry. res is non-nil for a successful cell, cerr
// for a failed one; cov, lat and spanV carry the cell's coverage map,
// RQ3 latency and span makespan.
func (w *Writer) CellSettled(cell string, res *campaign.RunResult, cerr *campaign.CellError, cov *coverage.Map, lat span.Latency, spanV uint64, wall time.Duration) {
	parts := strings.SplitN(cell, "/", 3)
	if len(parts) != 3 {
		w.fail(fmt.Errorf("ledger: malformed cell id %q", cell))
		return
	}
	e := &Entry{
		Scenario: parts[1],
		Version:  parts[0],
		Mode:     parts[2],
		Seed:     w.run.Config.Seed,
		SpanV:    spanV,
		Error:    cerr,
		WallNS:   wall.Nanoseconds(),
	}
	if s, err := exploits.SpecByName(e.Scenario); err == nil {
		e.SpecDigest = s.Digest()
	}
	if res != nil && res.Verdict != nil {
		e.Verdict = &VerdictRecord{
			ErroneousState:    res.Verdict.ErroneousState,
			SecurityViolation: res.Verdict.SecurityViolation,
			Handled:           res.Verdict.Handled,
		}
		if res.Outcome != nil && res.Outcome.Err != nil {
			e.Verdict.ScriptError = res.Outcome.Err.Error()
		}
	}
	if res != nil && res.Profile != nil {
		e.Profiled = true
		e.Effects, e.StateAudit = tracediff.CanonicalStreams(e.Version, campaign.MachineFrames, res.Profile.Events)
	}
	if cov != nil {
		e.Coverage = &CoverageRecord{Digest: cov.Digest(), Edges: cov.Len(), EdgeList: cov.Edges()}
	}
	if lat.Found || lat.TriggerV != 0 {
		l := lat
		e.Latency = &l
	}
	w.append(e)
}

// Import journals entries reused from a prior record (the resume plan's
// carried-over cells), so the new run's record directory is
// self-contained. Imported entries are canonical (wall fields already
// zeroed) and keep their original content.
func (w *Writer) Import(entries []*Entry) {
	for _, e := range entries {
		c := *e
		w.append(&c)
	}
}

// RecordEquivalence attaches graded RQ2 verdicts to their injection
// entries and journals the updated entries (superseding lines; the
// journal stays append-only).
func (w *Writer) RecordEquivalence(verdicts []tracediff.CellVerdict) {
	for i := range verdicts {
		cv := verdicts[i]
		k := Key{Scenario: cv.UseCase, Version: cv.Version, Mode: string(campaign.ModeInjection), Seed: w.run.Config.Seed}
		w.mu.Lock()
		e, ok := w.entries[k]
		w.mu.Unlock()
		if !ok {
			w.fail(fmt.Errorf("ledger: equivalence verdict for unrecorded cell %s", k))
			continue
		}
		c := *e
		c.Equivalence = &cv
		w.append(&c)
	}
}

// StripEquivalence removes carried RQ2 verdicts from the journaled
// entries (superseding re-appends, in dispatch order so the journal
// stays deterministic). A merged record that cannot be graded — some
// cell failed — must not keep verdicts inherited from a prior fully
// successful run: an uninterrupted rerun would not have them.
func (w *Writer) StripEquivalence() {
	w.mu.Lock()
	var stale []*Entry
	for _, e := range w.entries {
		if e.Equivalence != nil {
			stale = append(stale, e)
		}
	}
	w.mu.Unlock()
	ix := newOrderIndex(w.run.Config.Versions)
	sort.SliceStable(stale, func(i, j int) bool { return ix.less(stale[i], stale[j]) })
	for _, e := range stale {
		c := *e
		c.Equivalence = nil
		w.append(&c)
	}
}

// append journals one entry and indexes it (last write wins).
func (w *Writer) append(e *Entry) {
	data, err := json.Marshal(e)
	if err != nil {
		w.fail(fmt.Errorf("ledger: marshal entry %s: %w", e.Key(), err))
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.entries[e.Key()] = e
	if w.f == nil {
		return
	}
	if _, err := w.f.Write(append(data, '\n')); err != nil {
		w.errs = append(w.errs, fmt.Errorf("ledger: journal %s: %w", e.Key(), err))
	}
}

func (w *Writer) fail(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.errs = append(w.errs, err)
}

// Snapshot settles the entries journaled so far into a canonical record
// without closing the writer — the live view behind the /runs endpoints
// and the input to equivalence grading before close.
func (w *Writer) Snapshot() *Record {
	w.mu.Lock()
	entries := make([]*Entry, 0, len(w.entries))
	for _, e := range w.entries {
		entries = append(entries, e)
	}
	w.mu.Unlock()
	return Settle(w.run, entries)
}

// Errors returns the accumulated ledger I/O errors.
func (w *Writer) Errors() []error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]error(nil), w.errs...)
}

// Close settles the record, writes record.json, finalizes run.json and
// closes the journal. The returned record is the run's canonical
// outcome; the first accumulated I/O error (if any) is the returned
// error.
func (w *Writer) Close() (*Record, error) {
	rec := w.Snapshot()
	w.mu.Lock()
	if w.f != nil {
		if err := w.f.Close(); err != nil {
			w.errs = append(w.errs, fmt.Errorf("ledger: close journal: %w", err))
		}
		w.f = nil
	}
	w.mu.Unlock()
	if err := WriteRecordFile(filepath.Join(w.dir, recordFile), rec); err != nil {
		w.fail(err)
	}
	w.run.Completed = rec.Completed
	w.run.Digest = rec.Digest
	if err := writeRunFile(w.dir, w.run); err != nil {
		w.fail(err)
	}
	if errs := w.Errors(); len(errs) > 0 {
		return rec, errs[0]
	}
	return rec, nil
}

// writeRunFile writes run.json atomically enough for a single-writer
// store: full rewrite, short file.
func writeRunFile(dir string, r *Run) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("ledger: marshal run metadata: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, runFile), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("ledger: write run metadata: %w", err)
	}
	return nil
}
