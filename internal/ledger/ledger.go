// Package ledger is the campaign's persistent memory: a
// content-addressed, self-verifying store of run records that turns the
// one-shot repro binary into a regression instrument. Every campaign
// gets a deterministic run ID — the digest of everything that
// determines its canonical outcome (scenario registry digest, version
// set, chaos seed, mode flags, build version) — and an append-only
// record directory of per-cell entries journaled live as cells settle.
//
// The record is the claim the paper's tables make, made durable:
// verdict booleans, RQ2 equivalence tier and basis, coverage digest and
// edges, RQ3 detection latency, span makespan, failure class. Entries
// also keep each profiled cell's canonical effect stream, so
// equivalence is regradable offline — a resumed run merges reused and
// re-executed cells and regrades the whole matrix from the record,
// byte-identical to an uninterrupted run.
//
// Determinism discipline matches the rest of the tree: the canonical
// record is byte-identical at any `-workers` count, any chaos seed
// (given the same seed), and fork vs `-no-snapshot`. Wall time appears
// only in two explicitly segregated fields — the journal's per-entry
// wall_ns and run.json's created_unix_ns — and is zeroed out of the
// canonical settled form.
package ledger

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/exploits"
	"repro/internal/hv"
	"repro/internal/span"
	"repro/internal/tracediff"
)

// FNV-1a 64-bit, the same short-digest scheme coverage and the scenario
// registry use; a ledger digest is 16 hex digits.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func digest16(s string) string {
	return fmt.Sprintf("%016x", fnvString(fnvOffset, s))
}

// Key identifies one recorded cell: the (scenario, version, mode, seed)
// coordinate resumable campaigns are keyed by. Seed is the run's chaos
// seed — constant across a record, but part of the key so entries from
// different fault loads never alias.
type Key struct {
	Scenario string
	Version  string
	Mode     string
	Seed     int64
}

// String renders the key in cell-identity order (version/scenario/mode,
// matching the runner's cell IDs) with the seed qualifier.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s@seed=%d", k.Version, k.Scenario, k.Mode, k.Seed)
}

// Cell is the runner's "version/use-case/mode" identity for the key.
func (k Key) Cell() string {
	return k.Version + "/" + k.Scenario + "/" + k.Mode
}

// VerdictRecord persists the monitor's Table III booleans plus the
// scenario's self-reported failure, everything the matrix rendering
// needs from a successful cell.
type VerdictRecord struct {
	ErroneousState    bool `json:"erroneous_state"`
	SecurityViolation bool `json:"security_violation"`
	Handled           bool `json:"handled"`
	// ScriptError is the scenario script's terminating error text, empty
	// when the script completed ("PoC failed" rows keep their note).
	ScriptError string `json:"script_error,omitempty"`
}

// CoverageRecord persists a cell's settled coverage map: the digest and
// edge count the canonical record pins, plus the full edge list so a
// merged campaign coverage report is reconstructable from the record.
type CoverageRecord struct {
	Digest   string          `json:"digest"`
	Edges    int             `json:"edges"`
	EdgeList []coverage.Edge `json:"edge_list,omitempty"`
}

// Entry is one settled cell's persisted outcome. Exactly one of
// Verdict (success) and Error (failure) is set.
type Entry struct {
	Scenario string `json:"scenario"`
	Version  string `json:"version"`
	Mode     string `json:"mode"`
	Seed     int64  `json:"seed,omitempty"`
	// SpecDigest pins the declarative identity of the scenario spec the
	// cell ran under; a resume invalidates entries whose spec changed.
	SpecDigest string `json:"spec_digest,omitempty"`
	// Profiled reports the cell ran under a telemetry registry, i.e. its
	// Effects stream attests the run (an empty stream from an unprofiled
	// cell is not evidence).
	Profiled bool           `json:"profiled,omitempty"`
	Verdict  *VerdictRecord `json:"verdict,omitempty"`
	// Equivalence is the cell's RQ2 verdict, attached to injection
	// entries once the run's matrix is graded.
	Equivalence *tracediff.CellVerdict `json:"equivalence,omitempty"`
	Coverage    *CoverageRecord        `json:"coverage,omitempty"`
	// Latency is the RQ3 detection latency (virtual time only).
	Latency *span.Latency `json:"latency,omitempty"`
	// SpanV is the cell's span-tree makespan in virtual time (the root
	// span's duration), 0 for abandoned cells that kept no tree.
	SpanV uint64 `json:"span_v,omitempty"`
	// Effects and StateAudit are the persisted canonical streams
	// (tracediff.CanonicalStreams) equivalence is regraded from.
	Effects    []string `json:"effects,omitempty"`
	StateAudit []string `json:"state_audit,omitempty"`
	// Error is the classified failure record for a failed cell.
	Error *campaign.CellError `json:"error,omitempty"`
	// WallNS is the cell's observed wall time — the explicitly
	// segregated wall field, kept in the journal for profiling and
	// zeroed in the canonical settled record.
	WallNS int64 `json:"wall_ns,omitempty"`
}

// Key returns the entry's ledger key.
func (e *Entry) Key() Key {
	return Key{Scenario: e.Scenario, Version: e.Version, Mode: e.Mode, Seed: e.Seed}
}

// canceled reports the entry records interrupted (not failed) work: a
// canceled cell is absent work a resume re-executes, and it never
// enters the canonical record.
func (e *Entry) canceled() bool {
	return e.Error != nil && e.Error.Class == campaign.FailCanceled
}

// canonicalLine renders the entry's semantic content as one line of the
// record's canonical text. Streams and coverage edge lists are folded
// to length+digest so the canonical form stays readable; the digests
// still pin every byte of them.
func (e *Entry) canonicalLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cell %s/%s/%s seed=%d spec=%s", e.Version, e.Scenario, e.Mode, e.Seed, e.SpecDigest)
	if e.Verdict != nil {
		mark := func(v bool) byte {
			if v {
				return '1'
			}
			return '0'
		}
		fmt.Fprintf(&b, " verdict=%c%c%c", mark(e.Verdict.ErroneousState), mark(e.Verdict.SecurityViolation), mark(e.Verdict.Handled))
		if e.Verdict.ScriptError != "" {
			fmt.Fprintf(&b, " script-err=%q", e.Verdict.ScriptError)
		}
	}
	if e.Equivalence != nil {
		cv := e.Equivalence
		fmt.Fprintf(&b, " equiv=%s/%s", cv.Tier, cv.Basis)
		if cv.RefVersion != "" {
			fmt.Fprintf(&b, "@%s", cv.RefVersion)
		}
		fmt.Fprintf(&b, ":%d/%d", cv.BaseEvents, cv.InjectionEvents)
	}
	if e.Coverage != nil {
		fmt.Fprintf(&b, " cov=%sx%d", e.Coverage.Digest, e.Coverage.Edges)
	}
	if e.Latency != nil && e.Latency.Found {
		fmt.Fprintf(&b, " latency=%d", e.Latency.Events)
	}
	if e.SpanV != 0 {
		fmt.Fprintf(&b, " span_v=%d", e.SpanV)
	}
	if e.Profiled {
		fmt.Fprintf(&b, " effects=%d:%s audit=%d:%s",
			len(e.Effects), digest16(strings.Join(e.Effects, "\n")),
			len(e.StateAudit), digest16(strings.Join(e.StateAudit, "\n")))
	}
	if e.Error != nil {
		fmt.Fprintf(&b, " err=%s:%q", e.Error.Class, e.Error.Message)
	}
	return b.String()
}

// Config is a run's identity: everything that determines the campaign's
// canonical record. Worker count and the snapshot/fork flag are
// deliberately absent — the engine guarantees those do not change the
// settled outcome, so the same experiment at `-workers 8` and
// `-no-snapshot -workers 1` is the same run.
type Config struct {
	// RegistryDigest pins the declarative scenario corpus.
	RegistryDigest string `json:"registry_digest"`
	// Versions is the hypervisor version set, in campaign order.
	Versions []string `json:"versions"`
	// Seed is the chaos fault seed (0 = chaos off).
	Seed int64 `json:"seed"`
	// ContinueOnError records the fault-tolerance mode: it changes which
	// cells produce entries after a failure, so it is identity.
	ContinueOnError bool `json:"continue_on_error"`
	// BuildVersion pins the engine: scenario Run functions are code, and
	// code is versioned by the build, not by the declarative digest.
	BuildVersion string `json:"build_version"`
}

// CurrentConfig builds the config for a campaign of this process: the
// live scenario registry, the live version set, and the build version.
func CurrentConfig(seed int64, continueOnError bool) Config {
	vs := hv.Versions()
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return Config{
		RegistryDigest:  exploits.RegistryDigest(),
		Versions:        names,
		Seed:            seed,
		ContinueOnError: continueOnError,
		BuildVersion:    buildinfo.Version,
	}
}

// canonical renders the config identity as one line.
func (c Config) canonical() string {
	return fmt.Sprintf("registry=%s versions=%s seed=%d continue-on-error=%t build=%s",
		c.RegistryDigest, strings.Join(c.Versions, ","), c.Seed, c.ContinueOnError, c.BuildVersion)
}

// Canonical renders the config identity line for display (run listings
// and diff headers).
func (c Config) Canonical() string { return c.canonical() }

// RunID is the run's content-addressed identity: the digest of the
// canonical config line. Same experiment, same ID — at any worker
// count, and fork or fresh-boot alike.
func (c Config) RunID() string { return digest16(c.canonical()) }

// Compatible reports whether a prior run's record can seed a delta
// rerun of this config. Everything must match except the registry
// digest: corpus growth is exactly what delta reruns patch over (stale
// entries are invalidated per spec by their SpecDigest instead).
func (c Config) Compatible(o Config) bool {
	return c.Seed == o.Seed &&
		c.ContinueOnError == o.ContinueOnError &&
		c.BuildVersion == o.BuildVersion &&
		strings.Join(c.Versions, ",") == strings.Join(o.Versions, ",")
}

// Run is a run's metadata (the record directory's run.json). It is the
// only place besides Entry.WallNS where wall time lives.
type Run struct {
	RunID  string `json:"run_id"`
	Config Config `json:"config"`
	// CreatedUnixNS is wall-clock provenance (first creation of the
	// record directory), segregated here and never part of any digest.
	CreatedUnixNS int64 `json:"created_unix_ns"`
	// Cells is the expected matrix size; Completed counts settled,
	// non-canceled entries.
	Cells     int `json:"cells"`
	Completed int `json:"completed"`
	// Digest is the canonical record digest, filled when the run closes.
	Digest string `json:"digest,omitempty"`
}

// Record is the canonical settled form of a run: config, dispatch-order
// entries with wall fields zeroed and canceled cells dropped, and the
// self-verifying digest over the canonical text.
type Record struct {
	RunID     string   `json:"run_id"`
	Config    Config   `json:"config"`
	Cells     int      `json:"cells"`
	Completed int      `json:"completed"`
	Digest    string   `json:"digest"`
	Entries   []*Entry `json:"entries"`
}

// modeRank orders exploit before injection, the dispatch order within a
// (version, scenario) pair.
func modeRank(m string) int {
	switch m {
	case string(campaign.ModeExploit):
		return 0
	case string(campaign.ModeInjection):
		return 1
	}
	return 2
}

// orderIndex ranks entries into dispatch order: version-major (the
// record's version order), registry-spec order, exploit before
// injection. Names outside the live registry or version set — a record
// from a larger, later corpus — rank after all known ones,
// lexicographically, so sorting stays total and deterministic.
type orderIndex struct {
	version map[string]int
	spec    map[string]int
}

func newOrderIndex(versions []string) *orderIndex {
	ix := &orderIndex{version: make(map[string]int, len(versions)), spec: make(map[string]int)}
	for i, v := range versions {
		ix.version[v] = i
	}
	for i, s := range exploits.Specs() {
		ix.spec[s.Name] = i
	}
	return ix
}

// rank returns the position of name in idx, with unknown names pushed
// past every known one.
func rank(idx map[string]int, name string) int {
	if i, ok := idx[name]; ok {
		return i
	}
	return len(idx)
}

func (ix *orderIndex) less(a, b *Entry) bool {
	if va, vb := rank(ix.version, a.Version), rank(ix.version, b.Version); va != vb {
		return va < vb
	}
	if a.Version != b.Version {
		return a.Version < b.Version
	}
	if sa, sb := rank(ix.spec, a.Scenario), rank(ix.spec, b.Scenario); sa != sb {
		return sa < sb
	}
	if a.Scenario != b.Scenario {
		return a.Scenario < b.Scenario
	}
	if ma, mb := modeRank(a.Mode), modeRank(b.Mode); ma != mb {
		return ma < mb
	}
	return a.Mode < b.Mode
}

// Settle builds the canonical record from a run's deduped entries:
// dispatch order, wall fields zeroed, canceled cells dropped (they are
// interrupted work a resume re-executes, not results). Entries are
// copied; the caller's slice is untouched.
func Settle(run *Run, entries []*Entry) *Record {
	ix := newOrderIndex(run.Config.Versions)
	keep := make([]*Entry, 0, len(entries))
	for _, e := range entries {
		if e.canceled() {
			continue
		}
		c := *e
		c.WallNS = 0
		keep = append(keep, &c)
	}
	sort.SliceStable(keep, func(i, j int) bool { return ix.less(keep[i], keep[j]) })
	rec := &Record{RunID: run.RunID, Config: run.Config, Cells: run.Cells, Completed: len(keep), Entries: keep}
	rec.Digest = rec.computeDigest()
	return rec
}

// Canonical renders the record's canonical text: the config header and
// one line per entry in dispatch order. Nothing here depends on wall
// time, completion order, worker count, or the fork path.
func (r *Record) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %s\n", r.RunID)
	fmt.Fprintf(&b, "config %s\n", r.Config.canonical())
	fmt.Fprintf(&b, "cells %d completed %d\n", r.Cells, r.Completed)
	for _, e := range r.Entries {
		b.WriteString(e.canonicalLine())
		b.WriteByte('\n')
	}
	return b.String()
}

func (r *Record) computeDigest() string { return digest16(r.Canonical()) }

// Verify recomputes the record's identity from its contents: the run ID
// from the config and the digest from the canonical text, catching
// hand-edited or truncated records and baselines.
func (r *Record) Verify() error {
	if got := r.Config.RunID(); got != r.RunID {
		return fmt.Errorf("ledger: run ID %s does not match config (recomputed %s)", r.RunID, got)
	}
	if got := r.computeDigest(); got != r.Digest {
		return fmt.Errorf("ledger: record digest %s does not match contents (recomputed %s)", r.Digest, got)
	}
	return nil
}

// EntryByKey returns the record's entry for a key, nil when absent.
func (r *Record) EntryByKey(k Key) *Entry {
	for _, e := range r.Entries {
		if e.Key() == k {
			return e
		}
	}
	return nil
}

// Failed counts the record's failed cells.
func (r *Record) Failed() int {
	n := 0
	for _, e := range r.Entries {
		if e.Error != nil {
			n++
		}
	}
	return n
}

// Complete reports whether every expected cell settled.
func (r *Record) Complete() bool { return r.Completed == r.Cells }

// ErrIncompatible marks a resume attempted against a record from a
// different experiment (seed, flags, versions or build differ).
var ErrIncompatible = errors.New("ledger: prior run record is not compatible with this configuration")
