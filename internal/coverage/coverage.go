// Package coverage turns the telemetry stream into a deterministic
// coverage signal: a compact counting map of hypervisor behaviour
// edges, keyed by a stable FNV-1a hash of a canonical edge name.
//
// An edge is a small, version-stable description of one observable
// hypervisor behaviour: a hypercall number paired with its exit
// outcome, a page-type get/put paired with the frame's region class, a
// validation reject (level × masked reason), a walk denial, an
// injector state-machine transition, or a grant/domctl op kind. Edge
// names deliberately contain no wall times, no sequence numbers and no
// raw machine addresses (hex and long digit runs are masked), so the
// same cell produces byte-identical coverage across worker counts,
// chaos seeds, and snapshot-fork vs fresh boot.
//
// The package sits below telemetry in the import DAG: telemetry and hv
// call into it, never the reverse. A nil *Map is a valid no-op sink —
// every hook method nil-checks its receiver — so disabled coverage
// costs one predicted branch per event and zero allocations.
package coverage

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Family groups edges by the instrumentation site that produced them.
type Family string

// The edge families, in canonical (alphabetical) order.
const (
	FamDomctl     Family = "domctl"
	FamGrant      Family = "grant"
	FamHypercall  Family = "hypercall"
	FamInjector   Family = "injector"
	FamPageType   Family = "pagetype"
	FamValidation Family = "validation"
	FamWalk       Family = "walk"
)

// FrameClassifier maps a machine frame number to a small, stable
// region class ("hv-text", "xen-heap", "general"). Page-type edges use
// the class instead of the raw mfn so the edge space stays compact and
// identical across layouts that only shift individual frames.
type FrameClassifier func(mfn uint64) string

// Edge is one observed behaviour edge with its hit count.
type Edge struct {
	Family Family `json:"family"`
	Name   string `json:"name"`
	Count  uint64 `json:"count"`
}

type edge struct {
	family Family
	name   string
	count  uint64
}

// Map is a per-cell counting coverage map. It is not safe for
// concurrent use; like telemetry.Recorder it belongs to a single cell
// goroutine. The zero-size map is ready to use via NewMap.
type Map struct {
	frameClass FrameClassifier
	edges      map[uint64]*edge
}

// NewMap returns an empty coverage map.
func NewMap() *Map { return &Map{edges: make(map[uint64]*edge)} }

// SetFrameClassifier installs the region classifier used by page-type
// edges. Before one is installed frames classify as "general".
func (m *Map) SetFrameClassifier(fc FrameClassifier) {
	if m == nil {
		return
	}
	m.frameClass = fc
}

// FNV-1a 64-bit, unrolled here so hashing an edge identity allocates
// nothing on the hot path.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime
	return h
}

func fnvUint(h uint64, v uint64) uint64 {
	// Hash the decimal rendering without producing it: push digits
	// most-significant first via a fixed-size buffer.
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	for ; i < len(buf); i++ {
		h = fnvByte(h, buf[i])
	}
	return h
}

// bump increments the edge with the given identity hash, materialising
// its display name (from the ≤3 parts, ":"-joined) only on first
// sight. Hash collisions merge counts under the first-seen name; with
// a 64-bit space and a few hundred live edges the chance is
// negligible, and a collision is deterministic, so digests stay
// stable.
func (m *Map) bump(h uint64, fam Family, a, b, c string) {
	if e, ok := m.edges[h]; ok {
		e.count++
		return
	}
	name := a
	if b != "" {
		name = a + ":" + b
	}
	if c != "" {
		name += ":" + c
	}
	m.edges[h] = &edge{family: fam, name: name, count: 1}
}

// seed returns the hash state for a family, separating the family
// namespace from the edge parts.
func seed(fam Family) uint64 {
	h := fnvString(fnvOffset, string(fam))
	return fnvByte(h, '/')
}

// Hypercall records a (hypercall nr × exit outcome) edge.
func (m *Map) Hypercall(nr int, name string, errored bool) {
	if m == nil {
		return
	}
	outcome := "ok"
	if errored {
		outcome = "err"
	}
	h := fnvString(seed(FamHypercall), name)
	h = fnvByte(h, ':')
	h = fnvString(h, outcome)
	_ = nr // nr is implied by name; kept in the signature for call-site clarity
	m.bump(h, FamHypercall, name, outcome, "")
}

// PageType records a page-type transition edge: op is "get" or "put",
// typ the frame type name, and the frame classifies into a region
// class via the installed classifier.
func (m *Map) PageType(op string, mfn uint64, typ string) {
	if m == nil {
		return
	}
	class := "general"
	if m.frameClass != nil {
		class = m.frameClass(mfn)
	}
	h := fnvString(seed(FamPageType), op)
	h = fnvByte(h, ':')
	h = fnvString(h, typ)
	h = fnvByte(h, '@')
	h = fnvString(h, class)
	if e, ok := m.edges[h]; ok {
		e.count++
		return
	}
	m.edges[h] = &edge{family: FamPageType, name: op + ":" + typ + "@" + class, count: 1}
}

// ValidationReject records a (level × masked reason) edge.
func (m *Map) ValidationReject(level int, reason string) {
	if m == nil {
		return
	}
	masked := MaskReason(reason)
	h := fnvUint(seed(FamValidation), uint64(level))
	h = fnvByte(h, ':')
	h = fnvString(h, masked)
	m.bump(h, FamValidation, fmt.Sprintf("L%d", level), masked, "")
}

// WalkDenied records a masked walk-denial reason edge.
func (m *Map) WalkDenied(reason string) {
	if m == nil {
		return
	}
	masked := MaskReason(reason)
	h := fnvString(seed(FamWalk), masked)
	m.bump(h, FamWalk, masked, "", "")
}

// InjectorOp records an injector operation kind edge.
func (m *Map) InjectorOp(action string) {
	if m == nil {
		return
	}
	h := fnvString(seed(FamInjector), "op")
	h = fnvByte(h, ':')
	h = fnvString(h, action)
	m.bump(h, FamInjector, "op", action, "")
}

// InjectorTransition records a state-machine transition edge
// (from→to, qualified by the driving input).
func (m *Map) InjectorTransition(from, to, input string) {
	if m == nil {
		return
	}
	h := fnvString(seed(FamInjector), from)
	h = fnvString(h, "->")
	h = fnvString(h, to)
	h = fnvByte(h, ':')
	h = fnvString(h, input)
	m.bump(h, FamInjector, from+"->"+to, input, "")
}

// GrantOp records a grant-table operation kind edge.
func (m *Map) GrantOp(op string) {
	if m == nil {
		return
	}
	h := fnvString(seed(FamGrant), op)
	m.bump(h, FamGrant, op, "", "")
}

// DomctlOp records a domctl operation kind edge.
func (m *Map) DomctlOp(op string) {
	if m == nil {
		return
	}
	h := fnvString(seed(FamDomctl), op)
	m.bump(h, FamDomctl, op, "", "")
}

// FromEdges reconstructs a map from a settled edge list, for replaying
// persisted per-cell coverage (the campaign run ledger) back through
// the campaign aggregation. The reconstructed map renders and digests
// identically to the live one: Edges() output depends only on the
// (family, name, count) triples, not on the identity hashes used for
// in-map dedupe.
func FromEdges(edges []Edge) *Map {
	m := NewMap()
	for _, e := range edges {
		h := fnvString(seed(e.Family), e.Name)
		m.edges[h] = &edge{family: e.Family, name: e.Name, count: e.Count}
	}
	return m
}

// Len reports the number of distinct edges observed.
func (m *Map) Len() int {
	if m == nil {
		return 0
	}
	return len(m.edges)
}

// Edges returns the observed edges sorted by (family, name) — the
// canonical order used for rendering and digests.
func (m *Map) Edges() []Edge {
	if m == nil {
		return nil
	}
	out := make([]Edge, 0, len(m.edges))
	for _, e := range m.edges {
		out = append(out, Edge{Family: e.family, Name: e.name, Count: e.count})
	}
	SortEdges(out)
	return out
}

// SortEdges sorts edges into canonical (family, name) order.
func SortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Family != edges[j].Family {
			return edges[i].Family < edges[j].Family
		}
		return edges[i].Name < edges[j].Name
	})
}

// Canonical renders a sorted edge list in the canonical text form:
// one "family/name xCount" line per edge, no wall times, no ordering
// dependence on observation order.
func Canonical(edges []Edge) string {
	var b strings.Builder
	for _, e := range edges {
		b.WriteString(string(e.Family))
		b.WriteByte('/')
		b.WriteString(e.Name)
		b.WriteString(" x")
		fmt.Fprintf(&b, "%d", e.Count)
		b.WriteByte('\n')
	}
	return b.String()
}

// DigestOf returns the short hex digest (FNV-1a 64) of the canonical
// rendering of the edge list.
func DigestOf(edges []Edge) string {
	return fmt.Sprintf("%016x", fnvString(fnvOffset, Canonical(edges)))
}

// Digest returns the map's canonical digest.
func (m *Map) Digest() string { return DigestOf(m.Edges()) }

// Reason strings originate from error messages and may embed machine
// addresses or frame numbers ("mfn 0x2a", "frame 1055"). Edge names
// must be stable across layouts, so hex literals, bare hex runs and
// multi-digit decimal runs are masked. Single digits survive — they
// carry level numbers and domain ids, which are part of the behaviour.
var (
	hexLiteral = regexp.MustCompile(`0x[0-9a-fA-F]+`)
	bareHexRun = regexp.MustCompile(`\b[0-9a-f]{4,}\b`)
	digitRun   = regexp.MustCompile(`[0-9]{2,}`)
)

// MaskReason canonicalises a reason string for use in an edge name.
// A bare hex run is masked only when it mixes digits and letters —
// all-letter matches are English words ("feed", "dead"), and all-digit
// runs are decimal numbers, masked separately as «n».
func MaskReason(s string) string {
	s = hexLiteral.ReplaceAllString(s, "«x»")
	s = bareHexRun.ReplaceAllStringFunc(s, func(m string) string {
		hasDigit := strings.IndexFunc(m, func(r rune) bool { return r >= '0' && r <= '9' }) >= 0
		hasLetter := strings.IndexFunc(m, func(r rune) bool { return r >= 'a' && r <= 'f' }) >= 0
		if hasDigit && hasLetter {
			return "«x»"
		}
		return m
	})
	s = digitRun.ReplaceAllString(s, "«n»")
	return s
}
