package coverage

import (
	"strings"
	"testing"
)

func TestEdgeNamesAndFamilies(t *testing.T) {
	m := NewMap()
	m.Hypercall(1, "mmu_update", false)
	m.Hypercall(1, "mmu_update", true)
	m.PageType("get", 100, "l4")
	m.PageType("put", 100, "l4")
	m.ValidationReject(2, "superpage (PSE) mappings are not permitted")
	m.WalkDenied("hardened: guest write to l4 page-table frame 0x2a refused")
	m.InjectorOp("ARBITRARY_WRITE_PHYS")
	m.InjectorTransition("initial", "erroneous", "KEEP_PAGE_ACCESS")
	m.GrantOp("map")
	m.DomctlOp("pausedomain")
	want := []string{
		"domctl/pausedomain x1",
		"grant/map x1",
		"hypercall/mmu_update:err x1",
		"hypercall/mmu_update:ok x1",
		"injector/initial->erroneous:KEEP_PAGE_ACCESS x1",
		"injector/op:ARBITRARY_WRITE_PHYS x1",
		"pagetype/get:l4@general x1",
		"pagetype/put:l4@general x1",
		"validation/L2:superpage (PSE) mappings are not permitted x1",
		"walk/hardened: guest write to l4 page-table frame «x» refused x1",
	}
	got := strings.Split(strings.TrimRight(Canonical(m.Edges()), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("edge count: got %d, want %d\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edge %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCountingAndOrderIndependence(t *testing.T) {
	a, b := NewMap(), NewMap()
	a.Hypercall(1, "mmu_update", false)
	a.Hypercall(1, "mmu_update", false)
	a.GrantOp("map")
	// Same edges, observed in the opposite order.
	b.GrantOp("map")
	b.Hypercall(1, "mmu_update", false)
	b.Hypercall(1, "mmu_update", false)
	if a.Digest() != b.Digest() {
		t.Errorf("digest depends on observation order: %s vs %s", a.Digest(), b.Digest())
	}
	edges := a.Edges()
	if edges[1].Name != "mmu_update:ok" || edges[1].Count != 2 {
		t.Errorf("expected mmu_update:ok x2, got %+v", edges[1])
	}
	if a.Len() != 2 {
		t.Errorf("Len: got %d, want 2", a.Len())
	}
}

func TestFrameClassifier(t *testing.T) {
	m := NewMap()
	m.SetFrameClassifier(func(mfn uint64) string {
		if mfn < 16 {
			return "hv-text"
		}
		return "general"
	})
	m.PageType("get", 3, "writable")
	m.PageType("get", 100, "writable")
	canon := Canonical(m.Edges())
	if !strings.Contains(canon, "get:writable@hv-text x1") || !strings.Contains(canon, "get:writable@general x1") {
		t.Errorf("classifier not applied:\n%s", canon)
	}
}

func TestMaskReason(t *testing.T) {
	cases := map[string]string{
		"frame 0x2a refused":        "frame «x» refused",
		"mfn 1055 out of range":     "mfn «n» out of range",
		"bad entry 7f3a refused":    "bad entry «x» refused",
		"level 3 dom2 denied":       "level 3 dom2 denied", // single digits survive
		"all-letter word feed kept": "all-letter word feed kept",
	}
	for in, want := range cases {
		if got := MaskReason(in); got != want {
			t.Errorf("MaskReason(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestDigestPinned pins the FNV edge hashing and canonical rendering:
// if this digest moves, every committed coverage golden moves with it,
// so treat a failure as an intentional format change and regenerate
// the goldens.
func TestDigestPinned(t *testing.T) {
	m := NewMap()
	m.Hypercall(1, "mmu_update", false)
	m.GrantOp("map")
	const want = "16af8e58c8ed0252"
	if got := m.Digest(); got != want {
		t.Errorf("pinned digest moved: got %s, want %s (regenerate coverage goldens if intentional)", got, want)
	}
}

func TestNilMapIsNoOp(t *testing.T) {
	var m *Map
	m.Hypercall(1, "x", false)
	m.PageType("get", 0, "l1")
	m.ValidationReject(1, "r")
	m.WalkDenied("r")
	m.InjectorOp("a")
	m.InjectorTransition("a", "b", "c")
	m.GrantOp("g")
	m.DomctlOp("d")
	m.SetFrameClassifier(nil)
	if m.Len() != 0 || m.Edges() != nil {
		t.Errorf("nil map must stay empty")
	}
	if m.Digest() != DigestOf(nil) {
		t.Errorf("nil map digest must equal empty digest")
	}
}

func TestCollectorDispatchOrderAttribution(t *testing.T) {
	mk := func(names ...string) *Map {
		m := NewMap()
		for _, n := range names {
			m.GrantOp(n)
		}
		return m
	}
	col := NewCollector()
	col.StartBatch([]string{"c1", "c2", "c3"})
	// Completion order is adversarial: c3 first, then c1, then c2.
	col.FinishCell("c3", mk("a", "c"))
	col.FinishCell("c1", mk("a", "b"))
	col.FinishCell("c2", mk("b", "c"))
	rep := col.Report()
	if rep.TotalEdges != 3 {
		t.Fatalf("union: got %d edges, want 3", rep.TotalEdges)
	}
	// Attribution follows dispatch order c1, c2, c3 — not completion.
	wantNew := map[string]int{"c1": 2, "c2": 1, "c3": 0}
	for _, c := range rep.Cells {
		if c.NewEdges != wantNew[c.Cell] {
			t.Errorf("cell %s: new=%d, want %d", c.Cell, c.NewEdges, wantNew[c.Cell])
		}
	}
	for _, u := range rep.Union {
		first := map[string]string{"grant/a": "c1", "grant/b": "c1", "grant/c": "c2"}[string(u.Family)+"/"+u.Name]
		if u.FirstCell != first {
			t.Errorf("edge %s/%s: first=%s, want %s", u.Family, u.Name, u.FirstCell, first)
		}
		if u.Cells != 2 {
			t.Errorf("edge %s/%s: cells=%d, want 2", u.Family, u.Name, u.Cells)
		}
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestCollectorImplicitBatchAndNilMaps(t *testing.T) {
	col := NewCollector()
	// A cell never announced settles into an implicit one-cell batch.
	m := NewMap()
	m.DomctlOp("createdomain")
	col.FinishCell("solo", m)
	// An announced cell abandoned before producing coverage files nil.
	col.StartBatch([]string{"dead"})
	col.FinishCell("dead", nil)
	rep := col.Report()
	if len(rep.Cells) != 2 {
		t.Fatalf("cells: got %d, want 2", len(rep.Cells))
	}
	if rep.Cells[0].Cell != "solo" || rep.Cells[0].NewEdges != 1 {
		t.Errorf("solo cell wrong: %+v", rep.Cells[0])
	}
	if rep.Cells[1].Cell != "dead" || len(rep.Cells[1].Edges) != 0 || rep.Cells[1].NewEdges != 0 {
		t.Errorf("dead cell must settle empty: %+v", rep.Cells[1])
	}
}

func TestReportDiff(t *testing.T) {
	mk := func(names ...string) *Report {
		col := NewCollector()
		m := NewMap()
		for _, n := range names {
			m.GrantOp(n)
		}
		col.FinishCell("cell", m)
		return col.Report()
	}
	a := mk("x", "y")
	b := mk("y", "z")
	newEdges, lostEdges := Diff(a, b)
	if len(newEdges) != 1 || newEdges[0].Name != "z" {
		t.Errorf("new edges: %+v", newEdges)
	}
	if len(lostEdges) != 1 || lostEdges[0].Name != "x" {
		t.Errorf("lost edges: %+v", lostEdges)
	}
	if n, l := Diff(a, a); n != nil || l != nil {
		t.Errorf("self-diff must be empty: new=%v lost=%v", n, l)
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	col := NewCollector()
	m := NewMap()
	m.GrantOp("map")
	col.FinishCell("cell", m)
	rep := col.Report()
	rep.Union[0].Count++
	if err := rep.Verify(); err == nil {
		t.Errorf("Verify must fail after tampering with the union")
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var col *Collector
	col.StartBatch([]string{"a"})
	col.FinishCell("a", NewMap())
	rep := col.Report()
	if rep.TotalEdges != 0 || len(rep.Cells) != 0 {
		t.Errorf("nil collector must report empty: %+v", rep)
	}
}
