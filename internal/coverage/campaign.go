package coverage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Collector aggregates per-cell coverage maps across a campaign. It
// mirrors span.Collector's batch discipline: the runner announces each
// batch's cells in dispatch order via StartBatch, workers hand in
// finished maps via FinishCell in whatever order they complete, and
// Report settles everything into dispatch order — so union membership,
// first-witness cells and per-cell new-edge attribution are identical
// at any worker count.
type Collector struct {
	mu      sync.Mutex
	batches []*batch
}

type batch struct {
	order []string
	cells map[string]*cellEntry
}

type cellEntry struct {
	m    *Map
	done bool
}

// NewCollector returns an empty campaign coverage collector.
func NewCollector() *Collector { return &Collector{} }

// StartBatch announces the next batch of cells in dispatch order.
func (c *Collector) StartBatch(cells []string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := &batch{order: append([]string(nil), cells...), cells: make(map[string]*cellEntry, len(cells))}
	for _, id := range cells {
		b.cells[id] = &cellEntry{}
	}
	c.batches = append(c.batches, b)
}

// FinishCell records a cell's finished map (nil for a cell that was
// abandoned before producing coverage). A cell the runner never
// announced — the single-run path — settles into an implicit one-cell
// batch, preserving overall dispatch order.
func (c *Collector) FinishCell(cell string, m *Map) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.batches) - 1; i >= 0; i-- {
		if e, ok := c.batches[i].cells[cell]; ok && !e.done {
			e.m, e.done = m, true
			return
		}
	}
	b := &batch{order: []string{cell}, cells: map[string]*cellEntry{cell: {m: m, done: true}}}
	c.batches = append(c.batches, b)
}

// CellCoverage is one cell's settled coverage in a Report.
type CellCoverage struct {
	Cell string `json:"cell"`
	// Edges is the cell's full sorted edge list with counts.
	Edges []Edge `json:"edges,omitempty"`
	// NewEdges counts edges first witnessed by this cell, attributed
	// in dispatch order.
	NewEdges int `json:"new_edges"`
	// Digest is the canonical digest of this cell's edge list.
	Digest string `json:"digest"`
}

// UnionEdge is one edge of the campaign union with attribution.
type UnionEdge struct {
	Family Family `json:"family"`
	Name   string `json:"name"`
	// Count sums the edge's hits across all cells.
	Count uint64 `json:"count"`
	// Cells counts how many cells witnessed the edge.
	Cells int `json:"cells"`
	// FirstCell is the dispatch-order first witness.
	FirstCell string `json:"first_cell"`
}

// Report is the settled campaign coverage: per-cell maps in dispatch
// order plus the attributed union. It is the `-coverage cov.json`
// artifact and the `/coverage` endpoint payload.
type Report struct {
	TotalEdges int            `json:"total_edges"`
	Digest     string         `json:"digest"`
	Families   []FamilyCount  `json:"families"`
	Cells      []CellCoverage `json:"cells"`
	Union      []UnionEdge    `json:"union"`
}

// FamilyCount is the number of distinct union edges in one family.
type FamilyCount struct {
	Family Family `json:"family"`
	Edges  int    `json:"edges"`
}

// Report settles the collected maps into dispatch order and computes
// the union with first-witness attribution. It may be called while the
// campaign is live (the /coverage endpoint does); unfinished cells
// appear with empty coverage until they settle.
func (c *Collector) Report() *Report {
	if c == nil {
		return &Report{}
	}
	c.mu.Lock()
	type settled struct {
		id string
		m  *Map
	}
	var cells []settled
	for _, b := range c.batches {
		for _, id := range b.order {
			cells = append(cells, settled{id: id, m: b.cells[id].m})
		}
	}
	c.mu.Unlock()

	rep := &Report{}
	union := make(map[string]*UnionEdge)
	for _, s := range cells {
		edges := s.m.Edges()
		cc := CellCoverage{Cell: s.id, Edges: edges, Digest: DigestOf(edges)}
		for _, e := range edges {
			key := string(e.Family) + "/" + e.Name
			u, ok := union[key]
			if !ok {
				u = &UnionEdge{Family: e.Family, Name: e.Name, FirstCell: s.id}
				union[key] = u
				cc.NewEdges++
			}
			u.Count += e.Count
			u.Cells++
		}
		rep.Cells = append(rep.Cells, cc)
	}
	rep.Union = make([]UnionEdge, 0, len(union))
	for _, u := range union {
		rep.Union = append(rep.Union, *u)
	}
	sort.Slice(rep.Union, func(i, j int) bool {
		if rep.Union[i].Family != rep.Union[j].Family {
			return rep.Union[i].Family < rep.Union[j].Family
		}
		return rep.Union[i].Name < rep.Union[j].Name
	})
	rep.TotalEdges = len(rep.Union)
	famCount := make(map[Family]int)
	for _, u := range rep.Union {
		famCount[u.Family]++
	}
	for _, fam := range []Family{FamDomctl, FamGrant, FamHypercall, FamInjector, FamPageType, FamValidation, FamWalk} {
		if n := famCount[fam]; n > 0 {
			rep.Families = append(rep.Families, FamilyCount{Family: fam, Edges: n})
		}
	}
	rep.Digest = rep.computeDigest()
	return rep
}

// Canonical renders the report in its canonical text form: per-cell
// header lines in dispatch order followed by the attributed union.
// Everything the digest covers is here; nothing here depends on wall
// time, completion order or worker count.
func (r *Report) Canonical() string {
	var b strings.Builder
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "cell %s edges=%d new=%d digest=%s\n", c.Cell, len(c.Edges), c.NewEdges, c.Digest)
	}
	for _, u := range r.Union {
		fmt.Fprintf(&b, "%s/%s x%d cells=%d first=%s\n", u.Family, u.Name, u.Count, u.Cells, u.FirstCell)
	}
	return b.String()
}

func (r *Report) computeDigest() string {
	return fmt.Sprintf("%016x", fnvString(fnvOffset, r.Canonical()))
}

// Verify recomputes each cell digest and the report digest from the
// exported fields, catching hand-edited or truncated artifacts.
func (r *Report) Verify() error {
	for _, c := range r.Cells {
		if got := DigestOf(c.Edges); got != c.Digest {
			return fmt.Errorf("cell %s: digest %s does not match edges (recomputed %s)", c.Cell, c.Digest, got)
		}
	}
	if got := r.computeDigest(); got != r.Digest {
		return fmt.Errorf("report digest %s does not match contents (recomputed %s)", r.Digest, got)
	}
	return nil
}

// CellByID returns the named cell's coverage, if present.
func (r *Report) CellByID(id string) (CellCoverage, bool) {
	for _, c := range r.Cells {
		if c.Cell == id {
			return c, true
		}
	}
	return CellCoverage{}, false
}

// Diff compares two reports' unions. New edges are present in b but
// not a; lost edges are present in a but not b. Both carry b's (or
// a's, for lost) first-witness cell so a diff names where the edge
// came from.
func Diff(a, b *Report) (newEdges, lostEdges []UnionEdge) {
	inA := make(map[string]bool, len(a.Union))
	for _, u := range a.Union {
		inA[string(u.Family)+"/"+u.Name] = true
	}
	inB := make(map[string]bool, len(b.Union))
	for _, u := range b.Union {
		inB[string(u.Family)+"/"+u.Name] = true
	}
	for _, u := range b.Union {
		if !inA[string(u.Family)+"/"+u.Name] {
			newEdges = append(newEdges, u)
		}
	}
	for _, u := range a.Union {
		if !inB[string(u.Family)+"/"+u.Name] {
			lostEdges = append(lostEdges, u)
		}
	}
	return newEdges, lostEdges
}
