package events

import (
	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// Publisher adapts the engine's scheduler hook onto the bus: it
// implements campaign.SchedObserver and turns every scheduling
// decision into a bus event. It holds no state of its own — ordering
// and IDs come from the bus — so it is safe for the concurrent worker
// notifications the hook contract requires.
type Publisher struct {
	Bus *Bus
}

var _ campaign.SchedObserver = (*Publisher)(nil)

// BatchQueued implements campaign.SchedObserver.
func (p *Publisher) BatchQueued(cells []string) {
	p.Bus.Publish(Event{Type: TypeBatchStarted, Worker: -1, Cells: len(cells)})
}

// CellDispatched implements campaign.SchedObserver.
func (p *Publisher) CellDispatched(cell string, worker int, queueNS int64) {
	p.Bus.Publish(Event{Type: TypeCellStarted, Cell: cell, Worker: worker, QueueNS: queueNS})
}

// CellSettled implements campaign.SchedObserver. Every outcome class
// produces exactly one terminal event per cell: successes carry the
// cell's telemetry activity when profiled, failures their class and
// message (panicked, hung and canceled cells included).
func (p *Publisher) CellSettled(cell string, worker int, queueNS, runNS int64, profile *telemetry.CellProfile, cerr *campaign.CellError) {
	ev := Event{Type: TypeCellFinished, Cell: cell, Worker: worker, QueueNS: queueNS, WallNS: runNS}
	if profile != nil {
		// Emitted ≈ retained + overwritten: the ring keeps the newest
		// events and counts what it evicted.
		ev.Events = uint64(len(profile.Events)) + profile.DroppedEvents
		ev.Dropped = profile.DroppedEvents
	}
	if cerr != nil {
		ev.Class = string(cerr.Class)
		ev.Error = cerr.Message
	}
	p.Bus.Publish(ev)
}

// CampaignDone publishes the stream's terminal event: how many cells
// settled and how many failed, so a subscriber knows the run is over
// without watching for the connection to close.
func (p *Publisher) CampaignDone(cells, failed int) {
	p.Bus.Publish(Event{Type: TypeCampaignDone, Worker: -1, Cells: cells, Failed: failed})
}

// Fanout dispatches every scheduler hook to each observer in order,
// letting the CLI install the bus publisher and the timeline side by
// side on the runner's single Sched slot.
type Fanout []campaign.SchedObserver

var _ campaign.SchedObserver = (Fanout)(nil)

// BatchQueued implements campaign.SchedObserver.
func (f Fanout) BatchQueued(cells []string) {
	for _, o := range f {
		o.BatchQueued(cells)
	}
}

// CellDispatched implements campaign.SchedObserver.
func (f Fanout) CellDispatched(cell string, worker int, queueNS int64) {
	for _, o := range f {
		o.CellDispatched(cell, worker, queueNS)
	}
}

// CellSettled implements campaign.SchedObserver.
func (f Fanout) CellSettled(cell string, worker int, queueNS, runNS int64, profile *telemetry.CellProfile, cerr *campaign.CellError) {
	for _, o := range f {
		o.CellSettled(cell, worker, queueNS, runNS, profile, cerr)
	}
}
