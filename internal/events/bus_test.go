package events

import (
	"sync"
	"testing"
)

// drain reads everything currently buffered on the subscriber without
// blocking.
func drain(sub *Subscriber) []Event {
	var out []Event
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestBusMonotonicIDs(t *testing.T) {
	b := NewBus(16, 16)
	sub := b.Subscribe()
	for i := 0; i < 5; i++ {
		b.Publish(Event{Type: TypeCellStarted, Cell: "c"})
	}
	got := drain(sub)
	if len(got) != 5 {
		t.Fatalf("got %d events, want 5", len(got))
	}
	for i, ev := range got {
		if ev.ID != uint64(i+1) {
			t.Fatalf("event %d: ID %d, want %d", i, ev.ID, i+1)
		}
		if ev.OffsetNS < 0 {
			t.Fatalf("event %d: negative offset %d", i, ev.OffsetNS)
		}
		if i > 0 && ev.OffsetNS < got[i-1].OffsetNS {
			t.Fatalf("event %d: offset went backwards (%d after %d)", i, ev.OffsetNS, got[i-1].OffsetNS)
		}
	}
	if b.LastID() != 5 {
		t.Fatalf("LastID = %d, want 5", b.LastID())
	}
}

// TestBusSlowConsumerDrops is the never-block contract: a subscriber
// that stops reading loses events — counted on the subscription and in
// the bus total — while the publisher sails through.
func TestBusSlowConsumerDrops(t *testing.T) {
	b := NewBus(1024, 4)
	slow := b.Subscribe()
	fast := b.Subscribe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range fast.C() {
		}
	}()
	const n = 100
	for i := 0; i < n; i++ {
		b.Publish(Event{Type: TypeCellStarted}) // must never block
	}
	if got := slow.Dropped(); got != n-4 {
		t.Fatalf("slow subscriber dropped %d, want %d", got, n-4)
	}
	if got := len(drain(slow)); got != 4 {
		t.Fatalf("slow subscriber retained %d buffered events, want 4", got)
	}
	st := b.Stats()
	if st.Published != n {
		t.Fatalf("Stats.Published = %d, want %d", st.Published, n)
	}
	if st.Dropped < n-4 {
		t.Fatalf("Stats.Dropped = %d, want >= %d", st.Dropped, n-4)
	}
	if st.Subscribers != 2 {
		t.Fatalf("Stats.Subscribers = %d, want 2", st.Subscribers)
	}
	b.Close()
	<-done
}

// TestBusReplayGapless is the Last-Event-ID contract: replay plus the
// live channel reconstruct the stream exactly, no gaps, no duplicates,
// as long as the resume point is inside the retention window.
func TestBusReplayGapless(t *testing.T) {
	b := NewBus(64, 64)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: TypeCellStarted})
	}
	sub, replay, gap := b.SubscribeFrom(4)
	if gap {
		t.Fatal("gap reported inside the retention window")
	}
	for i := 0; i < 3; i++ {
		b.Publish(Event{Type: TypeCellFinished})
	}
	got := append(replay, drain(sub)...)
	if len(got) != 9 {
		t.Fatalf("got %d events after resume, want 9 (5..13)", len(got))
	}
	for i, ev := range got {
		if want := uint64(5 + i); ev.ID != want {
			t.Fatalf("resumed event %d: ID %d, want %d", i, ev.ID, want)
		}
	}
	b.Unsubscribe(sub)
}

func TestBusReplayBeyondRetention(t *testing.T) {
	b := NewBus(4, 16)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: TypeCellStarted})
	}
	// Events 1..6 have been evicted; resuming after 2 must flag the gap
	// and replay what retention still holds (7..10).
	_, replay, gap := b.SubscribeFrom(2)
	if !gap {
		t.Fatal("no gap reported for a resume point older than retention")
	}
	if len(replay) != 4 || replay[0].ID != 7 || replay[3].ID != 10 {
		t.Fatalf("replay = %+v, want IDs 7..10", replay)
	}
	// Resuming at the head is not a gap: nothing was missed.
	_, replay, gap = b.SubscribeFrom(10)
	if gap || len(replay) != 0 {
		t.Fatalf("resume at head: gap=%v replay=%d, want no gap, empty replay", gap, len(replay))
	}
	// A live-only subscription never reports a gap.
	_, replay, gap = b.SubscribeFrom(^uint64(0))
	if gap || len(replay) != 0 {
		t.Fatalf("live-only: gap=%v replay=%d, want no gap, empty replay", gap, len(replay))
	}
}

func TestBusCloseSemantics(t *testing.T) {
	b := NewBus(16, 16)
	sub := b.Subscribe()
	b.Publish(Event{Type: TypeCellStarted})
	b.Close()
	b.Close() // idempotent
	// The buffered event is still readable, then end-of-stream.
	if ev, ok := <-sub.C(); !ok || ev.ID != 1 {
		t.Fatalf("buffered event after close: ok=%v ev=%+v", ok, ev)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel still open after Close")
	}
	b.Publish(Event{Type: TypeCellStarted}) // no-op, must not panic
	if b.LastID() != 1 {
		t.Fatalf("publish after close advanced LastID to %d", b.LastID())
	}
	b.Unsubscribe(sub) // idempotent after close
	// Subscribing to a closed bus replays the tail and then ends.
	late, replay, _ := b.SubscribeFrom(0)
	if len(replay) != 1 {
		t.Fatalf("closed-bus replay = %d events, want 1", len(replay))
	}
	if _, ok := <-late.C(); ok {
		t.Fatal("closed-bus subscription delivered a live event")
	}
}

// TestBusConcurrent exercises the bus from racing publishers,
// subscribers and closers; correctness is "no panic, no deadlock, IDs
// unique" under -race.
func TestBusConcurrent(t *testing.T) {
	b := NewBus(128, 8)
	var pubs, subs sync.WaitGroup
	for p := 0; p < 4; p++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for i := 0; i < 200; i++ {
				b.Publish(Event{Type: TypeCellStarted})
			}
		}()
	}
	for s := 0; s < 4; s++ {
		subs.Add(1)
		sub, replay, _ := b.SubscribeFrom(0)
		ids := make(map[uint64]bool)
		for _, ev := range replay {
			ids[ev.ID] = true
		}
		go func() {
			defer subs.Done()
			for ev := range sub.C() {
				if ids[ev.ID] {
					t.Errorf("duplicate event ID %d", ev.ID)
					return
				}
				ids[ev.ID] = true
			}
		}()
	}
	pubs.Wait()
	b.Close()
	subs.Wait()
	if got := b.Stats().Published; got != 800 {
		t.Fatalf("published %d, want 800", got)
	}
}
