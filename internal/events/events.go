// Package events is the campaign's live event stream: a broadcast bus
// fed by the engine's scheduler hook that fans batch/cell lifecycle
// events out to bounded per-subscriber buffers, with a retained ring
// for Last-Event-ID replay. Everything in it is wall-clock-side
// observability — event IDs, offsets and queue/run times exist only on
// this bus and on the surfaces that serve it (SSE /events, /schedule,
// the -schedule export), never in deterministic campaign artifacts.
//
// The bus never blocks a publisher: a subscriber whose buffer is full
// loses the event and the loss is counted, per subscriber and in the
// bus total, so a slow SSE client can stall itself but not the worker
// pool settling cells.
package events

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event types published by the campaign.
const (
	// TypeBatchStarted announces a batch: Cells carries the batch size.
	TypeBatchStarted = "batch_started"
	// TypeCellStarted fires when a worker picks a cell up: Worker and
	// QueueNS carry its scheduling placement.
	TypeCellStarted = "cell_started"
	// TypeCellFinished fires when the engine settles a cell: WallNS is
	// the observed run time, Class/Error the failure record if any, and
	// Events/Dropped the cell's telemetry activity when profiled.
	TypeCellFinished = "cell_finished"
	// TypeCampaignDone is the terminal event the CLI publishes after
	// the campaign body returns.
	TypeCampaignDone = "campaign_done"
)

// Event is one bus message, the SSE data payload. OffsetNS is wall
// time relative to the bus epoch — like every field here it is
// observational and never feeds a deterministic artifact.
type Event struct {
	// ID is the bus-assigned monotonic event ID, from 1.
	ID uint64 `json:"id"`
	// OffsetNS is the publish time relative to the bus epoch.
	OffsetNS int64 `json:"offset_ns"`
	// Type is one of the Type* constants.
	Type string `json:"type"`
	// Cell is the cell identity for cell-scoped events.
	Cell string `json:"cell,omitempty"`
	// Worker is the worker index that owns the cell, -1 when no worker
	// ever did (batch events, undispatched cancels).
	Worker int `json:"worker"`
	// Cells is the batch size on TypeBatchStarted.
	Cells int `json:"cells,omitempty"`
	// QueueNS is the cell's dispatch latency (announce → pickup).
	QueueNS int64 `json:"queue_ns,omitempty"`
	// WallNS is the cell's observed run time on TypeCellFinished.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Class and Error carry the failure record for failed cells.
	Class string `json:"class,omitempty"`
	Error string `json:"error,omitempty"`
	// Events and Dropped are the cell's telemetry event count and
	// ring/sink drop count, when the runner profiled it.
	Events  uint64 `json:"events,omitempty"`
	Dropped uint64 `json:"dropped,omitempty"`
	// Failed is the failed-cell count on TypeCampaignDone.
	Failed int `json:"failed,omitempty"`
}

// Default bus sizing. The retention ring comfortably holds every event
// of a full-matrix campaign (102 cells ≈ 205 events), so a reconnecting
// subscriber replays the whole run; the subscriber buffer absorbs the
// burst a 3ms matrix produces faster than any HTTP client drains it.
const (
	DefaultRetain    = 4096
	DefaultSubBuffer = 256
)

// Subscriber is one bus subscription: a bounded event channel plus the
// subscription's drop counter.
type Subscriber struct {
	ch      chan Event
	dropped atomic.Uint64
}

// C is the subscription's event channel. It is closed by Unsubscribe
// and by Bus.Close.
func (s *Subscriber) C() <-chan Event { return s.ch }

// Dropped is the number of events this subscription lost to a full
// buffer since it was created.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Stats is a bus snapshot for gauges.
type Stats struct {
	// Published is the total number of events published.
	Published uint64 `json:"published"`
	// Dropped is the total number of per-subscriber deliveries lost to
	// full buffers (one event missed by two subscribers counts twice).
	Dropped uint64 `json:"dropped"`
	// Subscribers is the current subscription count.
	Subscribers int `json:"subscribers"`
	// Retained is the number of events currently replayable.
	Retained int `json:"retained"`
}

// Bus is the broadcast event bus. The zero value is not usable; use
// NewBus. All methods are safe for concurrent use.
type Bus struct {
	epoch time.Time

	mu        sync.Mutex
	nextID    uint64
	ring      []Event // retained events, oldest first
	retain    int
	subBuf    int
	subs      map[*Subscriber]struct{}
	published uint64
	dropped   uint64
	closed    bool
}

// NewBus creates a bus retaining the last retain events for replay and
// giving each subscriber a buffer of subBuf events. Non-positive values
// select the defaults.
func NewBus(retain, subBuf int) *Bus {
	if retain <= 0 {
		retain = DefaultRetain
	}
	if subBuf <= 0 {
		subBuf = DefaultSubBuffer
	}
	return &Bus{
		epoch:  time.Now(),
		retain: retain,
		subBuf: subBuf,
		subs:   make(map[*Subscriber]struct{}),
	}
}

// Epoch is the bus creation time, the zero point of every OffsetNS.
func (b *Bus) Epoch() time.Time { return b.epoch }

// Publish assigns the event its ID and offset, retains it, and offers
// it to every subscriber without ever blocking: a full subscriber
// buffer drops the delivery and counts the loss. Publishing on a
// closed bus is a no-op.
func (b *Bus) Publish(ev Event) {
	off := time.Since(b.epoch).Nanoseconds()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.nextID++
	ev.ID = b.nextID
	ev.OffsetNS = off
	b.published++
	if len(b.ring) == b.retain {
		copy(b.ring, b.ring[1:])
		b.ring[len(b.ring)-1] = ev
	} else {
		b.ring = append(b.ring, ev)
	}
	for sub := range b.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			b.dropped++
		}
	}
}

// Subscribe registers a subscription receiving every event published
// from now on.
func (b *Bus) Subscribe() *Subscriber {
	sub, _, _ := b.SubscribeFrom(^uint64(0))
	return sub
}

// SubscribeFrom registers a subscription resuming after event afterID
// (the SSE Last-Event-ID contract): the returned replay slice holds
// every retained event with ID > afterID, and the subscription's
// channel carries everything published after the call — the two are
// split under one lock, so together they are gapless. gap reports that
// the retention ring no longer reaches afterID+1, i.e. events between
// afterID and the replay's first event are lost to retention. Passing
// ^uint64(0) (or any ID at or past the bus head) subscribes live-only.
func (b *Bus) SubscribeFrom(afterID uint64) (sub *Subscriber, replay []Event, gap bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	sub = &Subscriber{ch: make(chan Event, b.subBuf)}
	if b.closed {
		// A subscription on a closed bus still replays the retained
		// tail, then reads immediate end-of-stream.
		close(sub.ch)
	} else {
		b.subs[sub] = struct{}{}
	}
	for _, ev := range b.ring {
		if ev.ID > afterID {
			replay = append(replay, ev)
		}
	}
	if afterID < b.nextID {
		// The subscriber asked to resume inside the published range;
		// a gap exists unless retention still holds afterID+1.
		if len(b.ring) == 0 || b.ring[0].ID > afterID+1 {
			gap = true
		}
	}
	return sub, replay, gap
}

// Unsubscribe removes the subscription and closes its channel. It is
// idempotent and safe after Close.
func (b *Bus) Unsubscribe(sub *Subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[sub]; !ok {
		return
	}
	delete(b.subs, sub)
	close(sub.ch)
}

// Close closes every subscription channel and stops accepting events.
// Subscribers observe end-of-stream after draining their buffers, so
// an SSE handler's read loop terminates on its own.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		delete(b.subs, sub)
		close(sub.ch)
	}
}

// Stats snapshots the bus counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		Published:   b.published,
		Dropped:     b.dropped,
		Subscribers: len(b.subs),
		Retained:    len(b.ring),
	}
}

// LastID is the most recently assigned event ID (0 before any publish).
func (b *Bus) LastID() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextID
}
