package events

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// Timeline is the wall-clock scheduler timeline: it implements
// campaign.SchedObserver and accumulates, per worker, which cells the
// worker ran, when, and how long each waited in the queue. It backs
// the /schedule endpoint, the scheduler gauges on /metrics, and the
// -schedule Perfetto export. Everything it measures is wall time —
// two runs of the same campaign produce different timelines, which is
// exactly why none of it ever reaches a deterministic artifact.
type Timeline struct {
	epoch time.Time

	mu         sync.Mutex
	total      int // cells announced
	dispatched int
	running    map[string]runningCell
	slots      []Slot
	failed     int
	sumQueue   int64
	sumRun     int64
}

// runningCell is a dispatched, unsettled cell.
type runningCell struct {
	worker  int
	startNS int64
	queueNS int64
}

// Slot is one settled cell's occupancy record: which worker ran it,
// where on the wall clock, and how it ended.
type Slot struct {
	Cell string `json:"cell"`
	// Worker is the owning worker index, -1 for cells canceled before
	// dispatch.
	Worker int `json:"worker"`
	// StartNS is the dispatch time relative to the timeline epoch.
	StartNS int64 `json:"start_ns"`
	// QueueNS is the announce→dispatch wait.
	QueueNS int64 `json:"queue_ns"`
	// RunNS is the dispatch→settle run time.
	RunNS int64 `json:"run_ns"`
	// Class is the failure class for failed cells, empty on success.
	Class string `json:"class,omitempty"`
}

// NewTimeline creates a timeline with its epoch at the call.
func NewTimeline() *Timeline {
	return &Timeline{epoch: time.Now(), running: make(map[string]runningCell)}
}

var _ campaign.SchedObserver = (*Timeline)(nil)

// BatchQueued implements campaign.SchedObserver.
func (t *Timeline) BatchQueued(cells []string) {
	t.mu.Lock()
	t.total += len(cells)
	t.mu.Unlock()
}

// CellDispatched implements campaign.SchedObserver.
func (t *Timeline) CellDispatched(cell string, worker int, queueNS int64) {
	now := time.Since(t.epoch).Nanoseconds()
	t.mu.Lock()
	t.dispatched++
	t.running[cell] = runningCell{worker: worker, startNS: now, queueNS: queueNS}
	t.mu.Unlock()
}

// CellSettled implements campaign.SchedObserver.
func (t *Timeline) CellSettled(cell string, worker int, queueNS, runNS int64, _ *telemetry.CellProfile, cerr *campaign.CellError) {
	now := time.Since(t.epoch).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	slot := Slot{Cell: cell, Worker: worker, StartNS: now - runNS, QueueNS: queueNS, RunNS: runNS}
	if rc, ok := t.running[cell]; ok {
		slot.StartNS = rc.startNS
		delete(t.running, cell)
	}
	if cerr != nil {
		slot.Class = string(cerr.Class)
		t.failed++
	}
	// A cell settled without a CellDispatched (canceled before any
	// worker picked it up) still counts toward completion, but never
	// occupied a worker; it keeps Worker == -1.
	if slot.Worker < 0 {
		slot.StartNS = now
	}
	t.slots = append(t.slots, slot)
	t.sumQueue += slot.QueueNS
	t.sumRun += slot.RunNS
}

// WorkerLane is one worker's occupancy in a Schedule snapshot.
type WorkerLane struct {
	Worker int `json:"worker"`
	// Cells is how many cells the worker settled.
	Cells int `json:"cells"`
	// BusyNS is the worker's total run-time occupancy.
	BusyNS int64 `json:"busy_ns"`
	// Slots are the worker's settled cells in settle order.
	Slots []Slot `json:"slots"`
}

// Schedule is a point-in-time snapshot of the wall schedule, the
// /schedule wire format and the summary's input.
type Schedule struct {
	// ElapsedNS is wall time since the timeline epoch.
	ElapsedNS int64 `json:"elapsed_ns"`
	// Total/Running/Queued/Completed/Failed count cells by state.
	Total     int `json:"total"`
	Running   int `json:"running"`
	Queued    int `json:"queued"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Workers is the per-worker occupancy, ordered by worker index.
	// Undispatched cancels appear as worker -1.
	Workers []WorkerLane `json:"workers"`
	// MakespanNS is first dispatch → last settle (the observed wall
	// critical path of the schedule so far).
	MakespanNS int64 `json:"makespan_ns"`
	// Utilization is busy time over worker-lane capacity across the
	// makespan, 0..1.
	Utilization float64 `json:"utilization"`
	// AvgQueueNS / AvgRunNS average the settled cells' queue waits and
	// run times.
	AvgQueueNS int64 `json:"avg_queue_ns"`
	AvgRunNS   int64 `json:"avg_run_ns"`
	// ETANS estimates remaining wall time from the average run time and
	// the observed worker parallelism; 0 once the campaign is done.
	ETANS int64 `json:"eta_ns"`
}

// Snapshot captures the schedule as of now.
func (t *Timeline) Snapshot() Schedule {
	now := time.Since(t.epoch).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()

	s := Schedule{
		ElapsedNS: now,
		Total:     t.total,
		Running:   len(t.running),
		Completed: len(t.slots),
		Failed:    t.failed,
	}
	s.Queued = s.Total - s.Running - s.Completed
	if s.Queued < 0 {
		s.Queued = 0 // single cells run without a batch announcement
	}

	lanes := make(map[int]*WorkerLane)
	var first, last int64 = -1, 0
	for _, slot := range t.slots {
		ln := lanes[slot.Worker]
		if ln == nil {
			ln = &WorkerLane{Worker: slot.Worker}
			lanes[slot.Worker] = ln
		}
		ln.Cells++
		ln.BusyNS += slot.RunNS
		ln.Slots = append(ln.Slots, slot)
		if slot.Worker >= 0 {
			if first < 0 || slot.StartNS < first {
				first = slot.StartNS
			}
			if end := slot.StartNS + slot.RunNS; end > last {
				last = end
			}
		}
	}
	for _, rc := range t.running {
		ln := lanes[rc.worker]
		if ln == nil {
			ln = &WorkerLane{Worker: rc.worker}
			lanes[rc.worker] = ln
		}
		ln.BusyNS += now - rc.startNS
		if first < 0 || rc.startNS < first {
			first = rc.startNS
		}
		if now > last {
			last = now
		}
	}
	for _, ln := range lanes {
		s.Workers = append(s.Workers, *ln)
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Worker < s.Workers[j].Worker })

	if first >= 0 && last > first {
		s.MakespanNS = last - first
	}
	realLanes := 0
	var busy int64
	for _, ln := range s.Workers {
		if ln.Worker >= 0 {
			realLanes++
			busy += ln.BusyNS
		}
	}
	if s.MakespanNS > 0 && realLanes > 0 {
		s.Utilization = float64(busy) / float64(s.MakespanNS*int64(realLanes))
		if s.Utilization > 1 {
			s.Utilization = 1
		}
	}
	if n := len(t.slots); n > 0 {
		s.AvgQueueNS = t.sumQueue / int64(n)
		s.AvgRunNS = t.sumRun / int64(n)
	}
	if remaining := s.Total - s.Completed; remaining > 0 && realLanes > 0 && s.AvgRunNS > 0 {
		s.ETANS = int64(remaining) * s.AvgRunNS / int64(realLanes)
	}
	return s
}

// WriteChrome writes the wall schedule as Chrome trace-event JSON in
// object form ({"traceEvents": [...], "schedule": {...}}), which
// Perfetto and chrome://tracing load directly: one track per worker,
// one complete event per settled cell, queue wait and failure class in
// args, and the Schedule snapshot embedded for tracecheck sched.
func (t *Timeline) WriteChrome(w io.Writer) error {
	s := t.Snapshot()
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\": [\n")
	first := true
	emit := func(ev map[string]any) error {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		raw, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(raw)
		return err
	}
	if err := emit(map[string]any{
		"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
		"args": map[string]any{"name": "repro wall schedule"},
	}); err != nil {
		return err
	}
	for _, ln := range s.Workers {
		name := fmt.Sprintf("worker %d", ln.Worker)
		if ln.Worker < 0 {
			name = "undispatched"
		}
		if err := emit(map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": ln.Worker + 1,
			"args": map[string]any{"name": name},
		}); err != nil {
			return err
		}
		for _, slot := range ln.Slots {
			args := map[string]any{"queue_us": float64(slot.QueueNS) / 1e3}
			if slot.Class != "" {
				args["class"] = slot.Class
			}
			if err := emit(map[string]any{
				"name": slot.Cell, "cat": "cell", "ph": "X",
				"ts":  float64(slot.StartNS) / 1e3,
				"dur": float64(slot.RunNS) / 1e3,
				"pid": 1, "tid": ln.Worker + 1,
				"args": args,
			}); err != nil {
				return err
			}
		}
	}
	bw.WriteString("\n], \"schedule\": ")
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	bw.Write(raw)
	bw.WriteString("}\n")
	return bw.Flush()
}

// fmtNS renders a nanosecond quantity human-readably.
func fmtNS(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// RenderSummary renders a Schedule as the text block `repro -schedule`
// prints and `tracecheck sched` recomputes: per-worker occupancy, the
// observed wall critical path (the makespan and the busiest lane), and
// the queue-wait/utilization aggregates.
func RenderSummary(s Schedule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "WALL SCHEDULE SUMMARY\n")
	fmt.Fprintf(&b, "  cells: %d settled, %d failed", s.Completed, s.Failed)
	if s.Running > 0 || s.Queued > 0 {
		fmt.Fprintf(&b, " (%d running, %d queued)", s.Running, s.Queued)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  makespan: %s  utilization: %.1f%%  avg queue wait: %s  avg run: %s\n",
		fmtNS(s.MakespanNS), s.Utilization*100, fmtNS(s.AvgQueueNS), fmtNS(s.AvgRunNS))
	var busiest *WorkerLane
	for i := range s.Workers {
		ln := &s.Workers[i]
		if ln.Worker < 0 {
			continue
		}
		if busiest == nil || ln.BusyNS > busiest.BusyNS {
			busiest = ln
		}
	}
	if busiest != nil {
		fmt.Fprintf(&b, "  wall critical path: worker %d busy %s over %d cells\n",
			busiest.Worker, fmtNS(busiest.BusyNS), busiest.Cells)
	}
	for _, ln := range s.Workers {
		if ln.Worker < 0 {
			fmt.Fprintf(&b, "  undispatched: %d cells canceled before pickup\n", ln.Cells)
			continue
		}
		fmt.Fprintf(&b, "  worker %d: %d cells, busy %s\n", ln.Worker, ln.Cells, fmtNS(ln.BusyNS))
	}
	return b.String()
}
