package events

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/telemetry"
)

func TestPublisherEventShapes(t *testing.T) {
	b := NewBus(64, 64)
	sub := b.Subscribe()
	p := &Publisher{Bus: b}

	p.BatchQueued([]string{"a", "b"})
	p.CellDispatched("a", 2, 123)
	rec := telemetry.NewRecorder(0)
	rec.HypercallEnter(1, 1, "mmu_update")
	rec.HypercallExit(1, 1, "mmu_update", nil)
	profile := rec.Profile("a", 456)
	p.CellSettled("a", 2, 123, 789, profile, nil)
	p.CellSettled("b", 1, 50, 60, nil,
		&campaign.CellError{Cell: "b", Class: campaign.FailHang, Message: "watchdog"})
	p.CampaignDone(2, 1)

	got := drain(sub)
	if len(got) != 5 {
		t.Fatalf("published %d events, want 5", len(got))
	}
	if got[0].Type != TypeBatchStarted || got[0].Cells != 2 || got[0].Worker != -1 {
		t.Fatalf("batch event = %+v", got[0])
	}
	if got[1].Type != TypeCellStarted || got[1].Cell != "a" || got[1].Worker != 2 || got[1].QueueNS != 123 {
		t.Fatalf("start event = %+v", got[1])
	}
	fin := got[2]
	if fin.Type != TypeCellFinished || fin.Cell != "a" || fin.WallNS != 789 || fin.Class != "" {
		t.Fatalf("finish event = %+v", fin)
	}
	if fin.Events == 0 {
		t.Fatalf("finish event lost the profile's telemetry count: %+v", fin)
	}
	fail := got[3]
	if fail.Class != string(campaign.FailHang) || fail.Error != "watchdog" {
		t.Fatalf("failure event = %+v", fail)
	}
	if fail.Events != 0 || fail.Dropped != 0 {
		t.Fatalf("unprofiled failure carries telemetry counts: %+v", fail)
	}
	done := got[4]
	if done.Type != TypeCampaignDone || done.Cells != 2 || done.Failed != 1 {
		t.Fatalf("done event = %+v", done)
	}
}

// TestFanoutOrder verifies the CLI's bus+timeline composition: every
// hook reaches every observer.
func TestFanoutOrder(t *testing.T) {
	b := NewBus(16, 16)
	sub := b.Subscribe()
	tl := NewTimeline()
	f := Fanout{&Publisher{Bus: b}, tl}

	f.BatchQueued([]string{"a"})
	f.CellDispatched("a", 0, 1)
	f.CellSettled("a", 0, 1, 2, nil, nil)

	if got := len(drain(sub)); got != 3 {
		t.Fatalf("bus saw %d events, want 3", got)
	}
	if s := tl.Snapshot(); s.Total != 1 || s.Completed != 1 {
		t.Fatalf("timeline saw total %d completed %d, want 1/1", s.Total, s.Completed)
	}
}
