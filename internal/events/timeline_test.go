package events

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/campaign"
)

func TestTimelineSnapshot(t *testing.T) {
	tl := NewTimeline()
	tl.BatchQueued([]string{"a", "b", "c", "d"})
	tl.CellDispatched("a", 0, 100)
	tl.CellDispatched("b", 1, 200)
	tl.CellSettled("a", 0, 100, 1000, nil, nil)
	tl.CellSettled("b", 1, 200, 2000, nil, &campaign.CellError{Cell: "b", Class: campaign.FailPanic, Message: "boom"})
	tl.CellDispatched("c", 0, 300)

	s := tl.Snapshot()
	if s.Total != 4 || s.Completed != 2 || s.Running != 1 || s.Queued != 1 || s.Failed != 1 {
		t.Fatalf("snapshot counts = total %d completed %d running %d queued %d failed %d",
			s.Total, s.Completed, s.Running, s.Queued, s.Failed)
	}
	if s.AvgQueueNS != 150 || s.AvgRunNS != 1500 {
		t.Fatalf("avg queue %d avg run %d, want 150/1500", s.AvgQueueNS, s.AvgRunNS)
	}
	if s.Utilization < 0 || s.Utilization > 1 {
		t.Fatalf("utilization %v out of [0,1]", s.Utilization)
	}
	if s.ETANS <= 0 {
		t.Fatalf("ETA %d, want > 0 with 2 cells remaining", s.ETANS)
	}
	if len(s.Workers) != 2 {
		t.Fatalf("%d worker lanes, want 2", len(s.Workers))
	}
	w0 := s.Workers[0]
	if w0.Worker != 0 || w0.Cells != 1 {
		t.Fatalf("lane 0 = %+v, want worker 0 with 1 settled cell", w0)
	}
	if w0.BusyNS < 1000 {
		t.Fatalf("lane 0 busy %d, want >= 1000 (settled run plus the in-flight cell)", w0.BusyNS)
	}
	found := false
	for _, slot := range s.Workers[1].Slots {
		if slot.Cell == "b" && slot.Class == string(campaign.FailPanic) {
			found = true
		}
	}
	if !found {
		t.Fatal("failed cell b missing its failure class in lane 1")
	}
}

// TestTimelineUndispatchedCancel mirrors the engine's cancel path:
// cells settled without a dispatch land on the synthetic -1 lane and
// still count toward completion.
func TestTimelineUndispatchedCancel(t *testing.T) {
	tl := NewTimeline()
	tl.BatchQueued([]string{"a", "b"})
	tl.CellDispatched("a", 0, 10)
	tl.CellSettled("a", 0, 10, 500, nil, nil)
	tl.CellSettled("b", -1, 0, 0, nil, &campaign.CellError{Cell: "b", Class: campaign.FailCanceled, Message: "ctx"})

	s := tl.Snapshot()
	if s.Completed != 2 || s.Failed != 1 || s.Queued != 0 || s.Running != 0 {
		t.Fatalf("counts = %+v", s)
	}
	if len(s.Workers) != 2 || s.Workers[0].Worker != -1 {
		t.Fatalf("want a -1 lane first, got %+v", s.Workers)
	}
	// The undispatched lane never contributes occupancy.
	if s.Workers[0].BusyNS != 0 {
		t.Fatalf("-1 lane busy %d, want 0", s.Workers[0].BusyNS)
	}
	sum := RenderSummary(s)
	if !strings.Contains(sum, "undispatched: 1 cells canceled before pickup") {
		t.Fatalf("summary missing the undispatched line:\n%s", sum)
	}
}

func TestTimelineWriteChrome(t *testing.T) {
	tl := NewTimeline()
	tl.BatchQueued([]string{"a", "b", "c"})
	for i, c := range []string{"a", "b", "c"} {
		w := i % 2
		tl.CellDispatched(c, w, int64(i)*100)
		tl.CellSettled(c, w, int64(i)*100, int64(i+1)*1000, nil, nil)
	}
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Schedule    Schedule         `json:"schedule"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var xEvents, meta int
	for _, ev := range f.TraceEvents {
		switch ev["ph"] {
		case "X":
			xEvents++
			if ev["cat"] != "cell" {
				t.Fatalf("X event without cell cat: %+v", ev)
			}
		case "M":
			meta++
		}
	}
	if xEvents != 3 {
		t.Fatalf("%d complete events, want 3", xEvents)
	}
	if meta != 3 { // process_name + 2 worker tracks
		t.Fatalf("%d metadata events, want 3", meta)
	}
	if f.Schedule.Completed != 3 {
		t.Fatalf("embedded schedule settled %d, want 3", f.Schedule.Completed)
	}
}

func TestRenderSummary(t *testing.T) {
	tl := NewTimeline()
	tl.BatchQueued([]string{"a"})
	tl.CellDispatched("a", 0, 50)
	tl.CellSettled("a", 0, 50, 1000, nil, nil)
	sum := RenderSummary(tl.Snapshot())
	for _, want := range []string{
		"WALL SCHEDULE SUMMARY",
		"cells: 1 settled, 0 failed",
		"wall critical path: worker 0",
		"worker 0: 1 cells",
		"utilization:",
		"avg queue wait:",
	} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}
