package monitor_test

// Golden tests for the monitor's Verdict evidence. The evidence lines
// are the human-auditable core of a Table III cell — the exact
// addresses, frames and transcripts the audit saw — and the machine
// layout is fully deterministic, so they can be pinned verbatim. A
// diff here means the audit now *sees* something different, which is
// either a real behaviour change (update the golden deliberately) or a
// regression in the walkers/oracles the monitor relies on.

import (
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/hv"
)

type goldenCell struct {
	version  hv.Version
	useCase  string
	violated bool // true = confirmed violation, false = handled
	evidence []string
}

func goldenCells() []goldenCell {
	return []goldenCell{
		// Confirmed violations: injection on the vulnerable 4.6 profile.
		{hv.Version46(), "XSA-212-crash", true, []string{
			"IDT #PF descriptor at 0xffff82d0800010e0 decodes invalid (corrupted): a9 2d 08 00 00 00 00 00",
			"hypervisor panic: FATAL TRAP: vector = 8 (double fault)",
		}},
		{hv.Version46(), "XSA-212-priv", true, []string{
			"target PUD[257] -> PMD 0xf8 -> PT 0xf7 -> payload frame 0x18: linkage verified by walk",
			"xen3: /tmp/injector_log = \"|uid=0(root) gid=0(root) groups=0(root)|@xen3\"",
			"guest01: /tmp/injector_log = \"|uid=0(root) gid=0(root) groups=0(root)|@guest01\"",
			"guest02: /tmp/injector_log = \"|uid=0(root) gid=0(root) groups=0(root)|@guest02\"",
			"guest03: /tmp/injector_log = \"|uid=0(root) gid=0(root) groups=0(root)|@guest03\"",
			"privilege escalation confirmed in all 4 domains",
		}},
		{hv.Version46(), "XSA-148-priv", true, []string{
			"guest L2 holds writable PSE superpage entry: 0x00000000000000a7 [P|RW|US|PSE]",
			"dom0 (xen3) served a root reverse shell",
		}},
		{hv.Version46(), "XSA-182-test", true, []string{
			"L4[42] is a writable self-reference: 0x0000000000132027 [P|RW|US]",
			"guest write access through self-mapping granted at 0x150a8542a150",
		}},
		// Handled cells: the 4.13 hardening absorbs the induced state
		// (the shield cells of Table III).
		{hv.Version413(), "XSA-212-priv", false, []string{
			"target PUD[257] -> PMD 0xf7 -> PT 0xf6 -> payload frame 0x18: linkage verified by walk",
			"xen3: no escalation evidence",
			"guest01: no escalation evidence",
			"guest02: no escalation evidence",
			"guest03: no escalation evidence",
		}},
		{hv.Version413(), "XSA-182-test", false, []string{
			"L4[42] is a writable self-reference: 0x0000000000131027 [P|RW|US]",
			"guest write through self-mapping refused: page fault: write of 0x150a8542a150 denied: hardened: guest write to l4 page-table frame 0x131 refused",
		}},
	}
}

func TestVerdictEvidenceGoldens(t *testing.T) {
	for _, g := range goldenCells() {
		g := g
		t.Run(g.version.Name+"/"+g.useCase, func(t *testing.T) {
			t.Parallel()
			res, err := campaign.Run(g.version, g.useCase, campaign.ModeInjection)
			if err != nil {
				t.Fatal(err)
			}
			v := res.Verdict
			if !v.ErroneousState {
				t.Error("erroneous state not induced")
			}
			if v.SecurityViolation != g.violated {
				t.Errorf("SecurityViolation = %v, want %v", v.SecurityViolation, g.violated)
			}
			if v.Handled != !g.violated {
				t.Errorf("Handled = %v, want %v", v.Handled, !g.violated)
			}
			if !reflect.DeepEqual(v.Evidence, g.evidence) {
				t.Errorf("evidence diverged from golden:\n got:\n  %q\n want:\n  %q", v.Evidence, g.evidence)
			}
		})
	}
}
