package monitor_test

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/exploits"
	"repro/internal/hv"
	"repro/internal/monitor"
	"repro/internal/pagetable"
)

// assess runs a scenario and returns the verdict plus environment.
func assess(t *testing.T, v hv.Version, useCase string, mode campaign.Mode) (*campaign.Environment, *monitor.Verdict) {
	t.Helper()
	e, err := campaign.NewEnvironment(v, mode)
	if err != nil {
		t.Fatal(err)
	}
	env, err := e.ScenarioEnv(mode)
	if err != nil {
		t.Fatal(err)
	}
	scen, err := exploits.ScenarioByName(useCase)
	if err != nil {
		t.Fatal(err)
	}
	o := scen.Run(env)
	return e, monitor.Assess(e.HV, e.Guests, o)
}

func TestVerdictEvidenceIsSpecific(t *testing.T) {
	_, v := assess(t, hv.Version46(), "XSA-212-priv", campaign.ModeInjection)
	joined := strings.Join(v.Evidence, "\n")
	for _, want := range []string{"linkage verified by walk", "/tmp/injector_log", "privilege escalation confirmed"} {
		if !strings.Contains(joined, want) {
			t.Errorf("evidence missing %q:\n%s", want, joined)
		}
	}
}

func TestVerdictHandledFlag(t *testing.T) {
	// 4.13 handling of XSA-182-test: state induced, violation prevented.
	_, v := assess(t, hv.Version413(), "XSA-182-test", campaign.ModeInjection)
	if !v.ErroneousState || v.SecurityViolation {
		t.Fatalf("verdict = %+v", v)
	}
	if !v.Handled {
		t.Error("Handled flag not set for a tolerated state")
	}
	if !strings.Contains(v.String(), "handled by the system") {
		t.Errorf("String() = %q", v.String())
	}
	// A full violation is not "handled".
	_, v46 := assess(t, hv.Version46(), "XSA-182-test", campaign.ModeExploit)
	if v46.Handled {
		t.Error("Handled set on a successful violation")
	}
}

func TestAuditorDoesNotTrustScriptClaims(t *testing.T) {
	// Build an outcome that *claims* the erroneous state but never
	// touched the system: the auditor must reject the claim.
	e, err := campaign.NewEnvironment(hv.Version46(), campaign.ModeExploit)
	if err != nil {
		t.Fatal(err)
	}
	fake := &exploits.Outcome{
		UseCase:        "XSA-182-test",
		Mode:           "exploit",
		Version:        "4.6",
		ErroneousState: true, // a lie
	}
	fake.Artifacts.SelfMapSlot = 42
	// Point at the attacker's real L4, which holds no self-map.
	addr, aerr := pagetable.EntryAddr(e.Attacker.Domain().CR3(), 42)
	if aerr != nil {
		t.Fatal(aerr)
	}
	fake.Artifacts.SelfMapPTEAddr = addr
	v := monitor.Assess(e.HV, e.Guests, fake)
	if v.ErroneousState {
		t.Error("auditor believed an unbacked claim")
	}
	if v.SecurityViolation {
		t.Error("violation without state")
	}
}

func TestMissingArtifactsAreSafe(t *testing.T) {
	e, err := campaign.NewEnvironment(hv.Version46(), campaign.ModeExploit)
	if err != nil {
		t.Fatal(err)
	}
	for _, useCase := range []string{"XSA-212-crash", "XSA-212-priv", "XSA-148-priv", "XSA-182-test", "unknown"} {
		o := &exploits.Outcome{UseCase: useCase, Mode: "exploit", Version: "4.6"}
		v := monitor.Assess(e.HV, e.Guests, o)
		if v.ErroneousState || v.SecurityViolation {
			t.Errorf("%s: empty outcome assessed as %+v", useCase, v)
		}
	}
}

func TestCrashOracle(t *testing.T) {
	e, v := assess(t, hv.Version46(), "XSA-212-crash", campaign.ModeExploit)
	if !v.ErroneousState || !v.SecurityViolation {
		t.Fatalf("verdict = %+v", v)
	}
	if !e.HV.Crashed() {
		t.Fatal("hypervisor alive after crash case")
	}
	joined := strings.Join(v.Evidence, "\n")
	for _, want := range []string{"decodes invalid", "hypervisor panic"} {
		if !strings.Contains(joined, want) {
			t.Errorf("evidence missing %q:\n%s", want, joined)
		}
	}
}

func TestReverseShellOracleRequiresRootShell(t *testing.T) {
	// Without the attack, dom0 shows no reverse-shell evidence even if
	// asked to assess a fabricated 148 outcome with real window state.
	e, err := campaign.NewEnvironment(hv.Version46(), campaign.ModeExploit)
	if err != nil {
		t.Fatal(err)
	}
	o := &exploits.Outcome{UseCase: "XSA-148-priv", Mode: "exploit", Version: "4.6"}
	v := monitor.Assess(e.HV, e.Guests, o)
	if v.SecurityViolation {
		t.Error("violation without any shell")
	}
}
