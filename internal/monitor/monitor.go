// Package monitor implements the system-monitoring step of the
// methodology (Fig. 2): after a scenario runs, it audits whether the
// erroneous state was really induced — by reading the relevant
// descriptors and walking the relevant page tables, never by trusting
// the attack script's own transcript — and decides whether a security
// violation occurred.
package monitor

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/exploits"
	"repro/internal/guest"
	"repro/internal/hv"
	"repro/internal/pagetable"
	"repro/internal/telemetry"
)

// Verdict is the assessed result of one run: the two columns of
// Table III.
type Verdict struct {
	// UseCase, Mode and Version identify the run.
	UseCase, Mode, Version string
	// ErroneousState reports whether the audit found the state induced.
	ErroneousState bool
	// SecurityViolation reports whether the violation materialized.
	SecurityViolation bool
	// Handled reports that the state was induced but the system coped —
	// the shield cells of Table III.
	Handled bool
	// Evidence records what the audit saw.
	Evidence []string

	// tel mirrors evidence lines into the environment's trace (nil when
	// telemetry is disabled).
	tel *telemetry.Recorder
}

func (v *Verdict) addf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	v.Evidence = append(v.Evidence, line)
	v.tel.Evidence(v.UseCase, line)
}

// addfState records an affirmative state-audit finding: the evidence
// line that establishes ErroneousState from live system state (descriptor
// bytes, page-table walks). Its trace event carries the EvidenceStateVal
// marker so the RQ2 trace-equivalence engine can compare the state audit
// across runs whose consequence phases legitimately differ.
func (v *Verdict) addfState(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	v.Evidence = append(v.Evidence, line)
	v.tel.EvidenceState(v.UseCase, line)
}

// String renders the verdict as a Table III row fragment.
func (v *Verdict) String() string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	s := fmt.Sprintf("%s/%s on %s: err-state=%s violation=%s",
		v.UseCase, v.Mode, v.Version, mark(v.ErroneousState), mark(v.SecurityViolation))
	if v.Handled {
		s += " (handled by the system)"
	}
	return s
}

// Assess audits a scenario outcome against the live system state.
func Assess(h *hv.Hypervisor, guests []*guest.Kernel, o *exploits.Outcome) *Verdict {
	sp := h.Spans().Audit(o.UseCase)
	defer h.Spans().End(sp)
	v := &Verdict{UseCase: o.UseCase, Mode: o.Mode, Version: o.Version, tel: h.Telemetry()}
	switch o.UseCase {
	case "XSA-212-crash":
		assess212Crash(h, o, v)
	case "XSA-212-priv":
		assess212Priv(h, guests, o, v)
	case "XSA-148-priv":
		assess148Priv(h, guests, o, v)
	case "XSA-182-test":
		assess182Test(h, o, v)
	case "XSA-387-leak":
		assessGrantLeak(h, o, v, 1)
	case "XSA-387-x2":
		assessGrantLeak(h, o, v, 2)
	case "XSA-387-x3":
		assessGrantLeak(h, o, v, 3)
	case "EVT-flood-64", "EVT-flood-512", "EVT-flood-dom0":
		assessEventFlood(h, o, v)
	case "DOMCTL-pause", "DOMCTL-pauseall":
		assessDomainPause(h, o, v)
	case "DOMCTL-zombie":
		assessZombie(guests, o, v)
	case "DOMCTL-exfil":
		assessExfil(guests, o, v)
	case "MX-heap-smash", "MX-heap-wide":
		assessHeapWrite(h, o, v)
	case "MX-idt-gp":
		assessIDTGP(h, o, v)
	default:
		v.addf("no auditor for use case %q", o.UseCase)
	}
	v.Handled = v.ErroneousState && !v.SecurityViolation
	return v
}

// assess212Crash checks the IDT descriptor bytes and the crash state.
func assess212Crash(h *hv.Hypervisor, o *exploits.Outcome, v *Verdict) {
	if o.Artifacts.IDTDescriptorAddr != 0 {
		raw := make([]byte, cpu.DescriptorSize)
		if err := h.ReadHV(o.Artifacts.IDTDescriptorAddr, raw); err == nil {
			gate, derr := cpu.DecodeGate(raw)
			if derr == nil && !gate.Valid() {
				v.ErroneousState = true
				v.addfState("IDT #PF descriptor at %#x decodes invalid (corrupted): % x",
					o.Artifacts.IDTDescriptorAddr, raw[:8])
			} else {
				v.addf("IDT #PF descriptor still valid")
			}
		} else {
			v.addf("IDT unreadable: %v", err)
		}
	}
	if h.Crashed() && strings.Contains(h.CrashReason(), "double fault") {
		v.SecurityViolation = true
		v.addf("hypervisor panic: %s", h.CrashReason())
	} else if h.Crashed() {
		v.SecurityViolation = true
		v.addf("hypervisor crashed: %s", h.CrashReason())
	} else {
		v.addf("hypervisor alive")
	}
}

// assess212Priv walks the shared PUD linkage and checks for the dropped
// root file in every domain.
func assess212Priv(h *hv.Hypervisor, guests []*guest.Kernel, o *exploits.Outcome, v *Verdict) {
	// Audit the page linkage: target PUD entry -> forged PMD -> forged
	// PT -> payload frame, the "page-table walk for the virtual address"
	// of Sections VI-C and VII.
	e, err := pagetable.ReadEntry(h.Memory(), h.XenL3(), hv.MiscL3Index)
	if err == nil && e.Present() && e.MFN() == o.Artifacts.ForgedL2 && o.Artifacts.ForgedL2 != 0 {
		l2e, err2 := pagetable.ReadEntry(h.Memory(), o.Artifacts.ForgedL2, 0)
		l1ok := false
		if err2 == nil && l2e.Present() && l2e.MFN() == o.Artifacts.ForgedL1 {
			l1e, err3 := pagetable.ReadEntry(h.Memory(), o.Artifacts.ForgedL1, 0)
			l1ok = err3 == nil && l1e.Present() && l1e.MFN() == o.Artifacts.PayloadFrame
		}
		if l1ok {
			v.ErroneousState = true
			v.addfState("target PUD[%d] -> PMD %#x -> PT %#x -> payload frame %#x: linkage verified by walk",
				hv.MiscL3Index, uint64(o.Artifacts.ForgedL2), uint64(o.Artifacts.ForgedL1),
				uint64(o.Artifacts.PayloadFrame))
		} else {
			v.addf("PUD entry present but downstream linkage incomplete")
		}
	} else {
		v.addf("target PUD entry not linked")
	}

	// Violation oracle: the escalation file exists, root-owned with root
	// identity content, in every domain.
	all := len(guests) > 0
	for _, k := range guests {
		content, err := k.ReadFile("/tmp/injector_log", guest.UIDRoot)
		if err != nil || !strings.Contains(content, "uid=0(root)") ||
			!strings.Contains(content, "@"+k.Hostname()) {
			all = false
			v.addf("%s: no escalation evidence", k.Hostname())
			continue
		}
		v.addf("%s: /tmp/injector_log = %q", k.Hostname(), content)
	}
	if all {
		v.SecurityViolation = true
		v.addf("privilege escalation confirmed in all %d domains", len(guests))
	}
}

// assess148Priv checks the superpage window entry and the reverse-shell
// evidence on the dom0 side.
func assess148Priv(h *hv.Hypervisor, guests []*guest.Kernel, o *exploits.Outcome, v *Verdict) {
	if o.Artifacts.WindowPTEAddr != 0 {
		e, err := pagetable.ReadEntry(h.Memory(),
			o.Artifacts.WindowPTEAddr.Frame(), int(o.Artifacts.WindowPTEAddr.Offset()/pagetable.EntrySize))
		if err == nil && e.Present() && e.Superpage() && e.Writable() {
			v.ErroneousState = true
			v.addfState("guest L2 holds writable PSE superpage entry: %v", e)
		} else {
			v.addf("no writable superpage entry in guest L2 (entry=%v err=%v)", e, err)
		}
	}
	// Violation oracle: dom0's kernel shows a root reverse shell.
	for _, k := range guests {
		if !k.Domain().Privileged() {
			continue
		}
		if k.DmesgContains("reverse shell connected") && k.DmesgContains("(uid 0)") {
			v.SecurityViolation = true
			v.addf("dom0 (%s) served a root reverse shell", k.Hostname())
		} else {
			v.addf("dom0 (%s) shows no reverse-shell activity", k.Hostname())
		}
	}
}

// assessGrantLeak re-reads the grant-table state of the leaking domain:
// the erroneous state holds when the table is back at v1 yet still
// references at least want hypervisor-owned status frames.
func assessGrantLeak(h *hv.Hypervisor, o *exploits.Outcome, v *Verdict, want int) {
	d, err := h.Domain(o.Artifacts.LeakDom)
	if err != nil {
		v.addf("leak domain gone: %v", err)
		return
	}
	frames := d.GrantStatusFrames()
	if d.GrantTableVersion() == 1 && len(frames) >= want {
		v.ErroneousState = true
		v.addfState("grant table at v1 with %d hypervisor status frame(s) still referenced", len(frames))
		v.SecurityViolation = true
		v.addf("domain keeps access to hypervisor-owned memory after release")
	} else {
		v.addf("no retained status frames (table v%d, %d frame(s))", d.GrantTableVersion(), len(frames))
	}
}

// assessEventFlood re-counts the victim's pending events: the erroneous
// state holds when at least the flood size is still unconsumed.
func assessEventFlood(h *hv.Hypervisor, o *exploits.Outcome, v *Verdict) {
	want := o.Artifacts.FloodCount
	if want <= 0 {
		v.addf("scenario recorded no flood size")
		return
	}
	d, err := h.Domain(o.Artifacts.FloodDom)
	if err != nil {
		v.addf("flood victim gone: %v", err)
		return
	}
	pending := d.PendingEvents()
	if pending >= want {
		v.ErroneousState = true
		v.addfState("%d unsolicited event(s) pending on the victim's ports", pending)
		v.SecurityViolation = true
		v.addf("interrupt flood saturates the victim's event ports")
	} else {
		v.addf("no pending-event backlog (%d of %d pending)", pending, want)
	}
}

// assessDomainPause re-reads the scheduler state of every swept domain:
// the erroneous state holds when all of them are suspended.
func assessDomainPause(h *hv.Hypervisor, o *exploits.Outcome, v *Verdict) {
	if len(o.Artifacts.PausedDoms) == 0 {
		v.addf("scenario recorded no paused domains")
		return
	}
	paused := 0
	for _, id := range o.Artifacts.PausedDoms {
		d, err := h.Domain(id)
		if err != nil {
			v.addf("swept domain gone: %v", err)
			return
		}
		if d.Paused() {
			paused++
		}
	}
	if paused == len(o.Artifacts.PausedDoms) {
		v.ErroneousState = true
		v.addfState("%d domain(s) suspended with no toolstack intent", paused)
		v.SecurityViolation = true
		v.addf("victim execution denied while peers keep running")
	} else {
		v.addf("sweep incomplete: %d of %d domain(s) paused", paused, len(o.Artifacts.PausedDoms))
	}
}

// assessZombie checks the destroyed-but-unreaped state through the
// victim's retained kernel handle — the domain is delisted from the
// hypervisor, so only the kernel still reaches it.
func assessZombie(guests []*guest.Kernel, o *exploits.Outcome, v *Verdict) {
	if o.Artifacts.ZombieFrames == 0 {
		v.addf("scenario recorded no zombie domain")
		return
	}
	for _, k := range guests {
		if k.Domain().ID() != o.Artifacts.ZombieDom {
			continue
		}
		if k.Domain().Destroyed() && k.Domain().Frames() >= o.Artifacts.ZombieFrames {
			v.ErroneousState = true
			v.addfState("destroyed domain still holds %d frame(s) (zombie, unreaped)", k.Domain().Frames())
			v.SecurityViolation = true
			v.addf("zombie reservation withholds memory from the allocator")
		} else {
			v.addf("victim not in the zombie state (destroyed=%v, %d frame(s))",
				k.Domain().Destroyed(), k.Domain().Frames())
		}
		return
	}
	v.addf("zombie victim's kernel handle not found")
}

// assessExfil verifies the confidentiality breach end to end: the secret
// is still live in the victim's page, and an exact copy sits in the
// attacker's filesystem.
func assessExfil(guests []*guest.Kernel, o *exploits.Outcome, v *Verdict) {
	if o.Artifacts.ExfilPath == "" {
		v.addf("scenario recorded no exfiltration artifacts")
		return
	}
	var victim, dst *guest.Kernel
	for _, k := range guests {
		switch k.Domain().ID() {
		case o.Artifacts.ExfilDom:
			victim = k
		case o.Artifacts.ExfilDst:
			dst = k
		}
	}
	if victim == nil || dst == nil {
		v.addf("exfiltration endpoints not found")
		return
	}
	live, err := victim.PeekU64(victim.Domain().PhysmapVA(o.Artifacts.ExfilPFN))
	if err != nil || live != o.Artifacts.ExfilValue {
		v.addf("victim page no longer carries the staged secret")
		return
	}
	content, err := dst.ReadFile(o.Artifacts.ExfilPath, guest.UIDRoot)
	if err != nil || content != fmt.Sprintf("%#x", o.Artifacts.ExfilValue) {
		v.addf("no copy of the secret outside the victim (read err=%v)", err)
		return
	}
	v.ErroneousState = true
	v.addfState("victim page contents recovered outside the domain: copy staged at %s", o.Artifacts.ExfilPath)
	v.SecurityViolation = true
	v.addf("guest confidentiality breached across the domain boundary")
}

// assessHeapWrite reads the targeted heap frame back through the
// hypervisor's own accessor and matches the planted pattern.
func assessHeapWrite(h *hv.Hypervisor, o *exploits.Outcome, v *Verdict) {
	if o.Artifacts.HeapVA == 0 || o.Artifacts.HeapQwords == 0 {
		v.addf("scenario recorded no heap target")
		return
	}
	matched := 0
	for i := 0; i < o.Artifacts.HeapQwords; i++ {
		raw := make([]byte, 8)
		if err := h.ReadHV(o.Artifacts.HeapVA+8*uint64(i), raw); err != nil {
			v.addf("heap frame unreadable: %v", err)
			return
		}
		if leU64(raw) == o.Artifacts.HeapPattern+uint64(i) {
			matched++
		}
	}
	if matched == o.Artifacts.HeapQwords {
		v.ErroneousState = true
		v.addfState("hypervisor heap frame %#x carries the injected %d-qword pattern",
			uint64(o.Artifacts.HeapFrame), o.Artifacts.HeapQwords)
		v.SecurityViolation = true
		v.addf("hypervisor heap integrity lost")
	} else {
		v.addf("heap frame clean (%d of %d qword(s) match)", matched, o.Artifacts.HeapQwords)
	}
}

// assessIDTGP checks the #BP descriptor bytes; with the vector
// never dispatched the hypervisor stays alive, so an induced state with
// no crash grades as handled.
func assessIDTGP(h *hv.Hypervisor, o *exploits.Outcome, v *Verdict) {
	if o.Artifacts.GPDescriptorAddr == 0 {
		v.addf("scenario recorded no descriptor address")
		return
	}
	raw := make([]byte, cpu.DescriptorSize)
	if err := h.ReadHV(o.Artifacts.GPDescriptorAddr, raw); err == nil {
		gate, derr := cpu.DecodeGate(raw)
		if derr == nil && !gate.Valid() {
			v.ErroneousState = true
			v.addfState("IDT #GP descriptor at %#x decodes invalid (corrupted): % x",
				o.Artifacts.GPDescriptorAddr, raw[:8])
		} else {
			v.addf("IDT #GP descriptor still valid")
		}
	} else {
		v.addf("IDT unreadable: %v", err)
	}
	if h.Crashed() {
		v.SecurityViolation = true
		v.addf("hypervisor crashed: %s", h.CrashReason())
	} else {
		v.addf("hypervisor alive; the corrupted vector was never dispatched")
	}
}

// leU64 decodes 8 little-endian bytes.
func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// assess182Test checks the self-map entry flags and re-performs the
// guest write-access check through the self-mapping.
func assess182Test(h *hv.Hypervisor, o *exploits.Outcome, v *Verdict) {
	if o.Artifacts.SelfMapPTEAddr == 0 {
		v.addf("scenario recorded no self-map location")
		return
	}
	root := o.Artifacts.SelfMapPTEAddr.Frame()
	e, err := pagetable.ReadEntry(h.Memory(), root, o.Artifacts.SelfMapSlot)
	if err == nil && e.Present() && e.Writable() && e.MFN() == root {
		v.ErroneousState = true
		v.addfState("L4[%d] is a writable self-reference: %v", o.Artifacts.SelfMapSlot, e)
	} else {
		v.addf("L4[%d] = %v: not a writable self-reference", o.Artifacts.SelfMapSlot, e)
	}
	if !v.ErroneousState {
		return
	}
	// Independent violation check: does a guest-privilege write through
	// the self-mapping actually reach the page-table frame?
	va, err := pagetable.Compose(o.Artifacts.SelfMapSlot, o.Artifacts.SelfMapSlot,
		o.Artifacts.SelfMapSlot, o.Artifacts.SelfMapSlot, uint64(o.Artifacts.SelfMapSlot)*pagetable.EntrySize)
	if err != nil {
		v.addf("compose failed: %v", err)
		return
	}
	if _, werr := h.Walker().Translate(root, va, pagetable.AccessWrite, true); werr == nil {
		v.SecurityViolation = true
		v.addf("guest write access through self-mapping granted at %#x", va)
	} else {
		v.addf("guest write through self-mapping refused: %v", werr)
	}
}
