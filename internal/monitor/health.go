package monitor

import (
	"fmt"
	"strings"

	"repro/internal/guest"
	"repro/internal/hv"
)

// Health is a point-in-time sample of the whole environment's condition:
// the "system monitoring" box of Fig. 2 generalized beyond the four use
// cases, so campaigns over arbitrary erroneous states (the randomized
// injector, the state injector) have a uniform oracle.
type Health struct {
	// Crashed and CrashReason reflect a hypervisor panic.
	Crashed     bool
	CrashReason string
	// Hung reflects a wedged hypervisor.
	Hung bool
	// ConsoleWarnings counts WARNING lines on the hypervisor console —
	// reference/type accounting damage shows up here.
	ConsoleWarnings int
	// AccountingFindings are the memory auditor's discrepancies: page
	// mappings not backed by references, unaccounted superpages,
	// guest-writable page tables (the Corrupt-a-Page-Reference class).
	AccountingFindings []string
	// PageFaults is the cumulative #PF count absorbed by the native
	// handler.
	PageFaults int
	// PendingEvents maps hostname to unconsumed event backlog.
	PendingEvents map[string]int
	// GrantLeaks maps hostname to hypervisor status frames the domain
	// still references.
	GrantLeaks map[string]int
	// GuestOops maps hostname to kernel-oops counts.
	GuestOops map[string]int
	// PausedDomains lists suspended domains.
	PausedDomains []string
}

// Probe samples the environment.
func Probe(h *hv.Hypervisor, guests []*guest.Kernel) Health {
	out := Health{
		Crashed:       h.Crashed(),
		CrashReason:   h.CrashReason(),
		Hung:          h.Hung(),
		PageFaults:    h.PageFaults(),
		PendingEvents: make(map[string]int),
		GrantLeaks:    make(map[string]int),
		GuestOops:     make(map[string]int),
	}
	for _, line := range h.Console() {
		if strings.Contains(line, "WARNING") {
			out.ConsoleWarnings++
		}
	}
	out.AccountingFindings = h.AuditMemory()
	for _, k := range guests {
		d := k.Domain()
		if n := d.PendingEvents(); n > 0 {
			out.PendingEvents[k.Hostname()] = n
		}
		if n := len(d.GrantStatusFrames()); n > 0 {
			out.GrantLeaks[k.Hostname()] = n
		}
		oops := 0
		for _, line := range k.Dmesg() {
			if strings.Contains(line, "Oops:") {
				oops++
			}
		}
		if oops > 0 {
			out.GuestOops[k.Hostname()] = oops
		}
		if d.Paused() {
			out.PausedDomains = append(out.PausedDomains, k.Hostname())
		}
	}
	return out
}

// Healthy reports whether the sample shows no availability-relevant or
// accounting-relevant damage. Guest oopses are contained failures and do
// not make the platform unhealthy on their own.
func (h Health) Healthy() bool {
	return !h.Crashed && !h.Hung && h.ConsoleWarnings == 0 &&
		len(h.AccountingFindings) == 0 &&
		len(h.PendingEvents) == 0 && len(h.GrantLeaks) == 0 && len(h.PausedDomains) == 0
}

// Summary renders the sample as one line per finding.
func (h Health) Summary() string {
	var b strings.Builder
	if h.Crashed {
		fmt.Fprintf(&b, "CRASHED: %s\n", h.CrashReason)
	}
	if h.Hung {
		b.WriteString("HUNG: hypervisor stopped making progress\n")
	}
	if h.ConsoleWarnings > 0 {
		fmt.Fprintf(&b, "accounting warnings on console: %d\n", h.ConsoleWarnings)
	}
	for _, f := range h.AccountingFindings {
		fmt.Fprintf(&b, "memory audit: %s\n", f)
	}
	for host, n := range h.PendingEvents {
		fmt.Fprintf(&b, "%s: %d unconsumed events\n", host, n)
	}
	for host, n := range h.GrantLeaks {
		fmt.Fprintf(&b, "%s: retains %d hypervisor status frames\n", host, n)
	}
	for host, n := range h.GuestOops {
		fmt.Fprintf(&b, "%s: %d kernel oopses (contained)\n", host, n)
	}
	for _, host := range h.PausedDomains {
		fmt.Fprintf(&b, "%s: paused\n", host)
	}
	if b.Len() == 0 {
		return "healthy\n"
	}
	return b.String()
}
