package monitor_test

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/hv"
	"repro/internal/mm"
	"repro/internal/monitor"
	"repro/internal/pagetable"
)

func TestProbeCleanEnvironmentIsHealthy(t *testing.T) {
	e, err := campaign.NewEnvironment(hv.Version413(), campaign.ModeInjection)
	if err != nil {
		t.Fatal(err)
	}
	h := monitor.Probe(e.HV, e.Guests)
	if !h.Healthy() {
		t.Errorf("fresh environment unhealthy:\n%s", h.Summary())
	}
	if h.Summary() != "healthy\n" {
		t.Errorf("summary = %q", h.Summary())
	}
}

func TestProbeDetectsCrash(t *testing.T) {
	e, err := campaign.NewEnvironment(hv.Version46(), campaign.ModeExploit)
	if err != nil {
		t.Fatal(err)
	}
	e.HV.Crash("FATAL TRAP: vector = 8 (double fault)")
	h := monitor.Probe(e.HV, e.Guests)
	if h.Healthy() || !h.Crashed {
		t.Errorf("crash not detected: %+v", h)
	}
	if !strings.Contains(h.Summary(), "CRASHED") {
		t.Errorf("summary = %q", h.Summary())
	}
}

func TestProbeDetectsInjectedStates(t *testing.T) {
	e, err := campaign.NewEnvironment(hv.Version413(), campaign.ModeInjection)
	if err != nil {
		t.Fatal(err)
	}
	// Injection-mode environments carry the state injector already.
	sc := e.State
	if _, err := sc.KeepPageAccess(); err != nil {
		t.Fatal(err)
	}
	if err := sc.InterruptFlood(e.Guests[1].Domain().ID(), 0, 77); err != nil {
		t.Fatal(err)
	}
	h := monitor.Probe(e.HV, e.Guests)
	if h.Healthy() {
		t.Fatal("injected states invisible to the probe")
	}
	if h.GrantLeaks[e.Attacker.Hostname()] != 1 {
		t.Errorf("grant leaks = %v", h.GrantLeaks)
	}
	if h.PendingEvents[e.Guests[1].Hostname()] != 77 {
		t.Errorf("pending = %v", h.PendingEvents)
	}
	for _, want := range []string{"status frames", "unconsumed events"} {
		if !strings.Contains(h.Summary(), want) {
			t.Errorf("summary missing %q:\n%s", want, h.Summary())
		}
	}
}

func TestProbeCountsContainedOops(t *testing.T) {
	e, err := campaign.NewEnvironment(hv.Version413(), campaign.ModeInjection)
	if err != nil {
		t.Fatal(err)
	}
	_ = e.Attacker.Peek(0xdead000000000, make([]byte, 4))
	h := monitor.Probe(e.HV, e.Guests)
	if h.GuestOops[e.Attacker.Hostname()] == 0 {
		t.Errorf("oops not counted: %+v", h.GuestOops)
	}
	// Oopses alone are contained failures.
	if !h.Healthy() {
		t.Errorf("contained oops flagged unhealthy:\n%s", h.Summary())
	}
	if h.PageFaults == 0 {
		t.Error("page-fault counter not sampled")
	}
}

func TestProbeDetectsPausedDomains(t *testing.T) {
	e, err := campaign.NewEnvironment(hv.Version413(), campaign.ModeInjection)
	if err != nil {
		t.Fatal(err)
	}
	err = e.Dom0.Domain().Hypercall(hv.HypercallDomctl, &hv.DomctlArgs{
		Op: hv.DomctlPause, Target: e.Attacker.Domain().ID(),
	})
	if err != nil {
		t.Fatal(err)
	}
	h := monitor.Probe(e.HV, e.Guests)
	if h.Healthy() || len(h.PausedDomains) != 1 {
		t.Errorf("pause not detected: %+v", h)
	}
}

func TestProbeRunsTheMemoryAudit(t *testing.T) {
	e, err := campaign.NewEnvironment(hv.Version413(), campaign.ModeInjection)
	if err != nil {
		t.Fatal(err)
	}
	// A raw injector write into a page-table entry leaves a mapping with
	// no backing references; the probe must surface the auditor finding.
	d := e.Attacker.Domain()
	target, err := d.P2M().Lookup(5)
	if err != nil {
		t.Fatal(err)
	}
	base, err := pagetable.LeafEntryAddr(e.HV.Memory(), d.CR3(), d.PhysmapVA(0))
	if err != nil {
		t.Fatal(err)
	}
	ptr := base + mm.PhysAddr((uint64(d.Frames())+70)*pagetable.EntrySize)
	raw := pagetable.NewEntry(target, pagetable.FlagPresent|pagetable.FlagRW|pagetable.FlagUser)
	if err := e.Injector.WritePTE(ptr, raw); err != nil {
		t.Fatal(err)
	}
	h := monitor.Probe(e.HV, e.Guests)
	if h.Healthy() || len(h.AccountingFindings) == 0 {
		t.Errorf("raw PTE write invisible to the probe: %+v", h.AccountingFindings)
	}
	if !strings.Contains(h.Summary(), "memory audit") {
		t.Errorf("summary = %q", h.Summary())
	}
}
