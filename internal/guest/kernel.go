// Package guest simulates the operating system running inside a domain:
// a kernel log, users, an in-memory filesystem, a small shell, direct
// (faultable) memory access for exploit code, the periodic vDSO call the
// XSA-148 backdoor hijacks, and the reverse-shell plumbing.
//
// A Kernel implements hv.GuestOS, so ring-0 payloads dispatched through
// the hypervisor's IDT can reach into every attached guest — which is
// exactly the cross-domain effect the XSA-212-priv experiment observes.
package guest

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cpu"
	"repro/internal/hv"
	"repro/internal/pagetable"
	"repro/internal/vnet"
)

// Well-known UIDs.
const (
	// UIDRoot is the superuser.
	UIDRoot = 0
	// UIDUser is the default unprivileged account ("xen").
	UIDUser = 1000
)

// Kernel errors.
var (
	// ErrNoFile is returned for absent paths.
	ErrNoFile = errors.New("guest: no such file or directory")
	// ErrDenied is returned for permission failures.
	ErrDenied = errors.New("guest: permission denied")
	// ErrOops is returned when a memory access faults and the kernel
	// survives by killing the access ("unable to handle page request").
	ErrOops = errors.New("guest: kernel oops")
)

// File is one filesystem entry.
type File struct {
	Content string
	UID     int
}

// Kernel is the simulated guest OS of one domain.
type Kernel struct {
	dom  *hv.Domain
	net  *vnet.Network
	addr string

	files map[string]File
	klog  []string
	ticks int

	// hung is set when a payload halts the kernel.
	hung bool
}

// New boots a guest kernel in the domain, attaches it as the domain's OS
// and gives it a network identity.
func New(dom *hv.Domain, net *vnet.Network, addr string) *Kernel {
	k := &Kernel{
		dom:   dom,
		net:   net,
		addr:  addr,
		files: make(map[string]File),
	}
	k.files["/root/root_msg"] = File{Content: "Confidential content in root folder!", UID: UIDRoot}
	k.files["/etc/hostname"] = File{Content: dom.Name(), UID: UIDRoot}
	dom.AttachOS(k)
	k.Printk("Booting %s (dom%d), %d pages of memory", dom.Name(), dom.ID(), dom.Frames())
	return k
}

// ForkOnto clones the kernel onto a forked domain and network, and
// attaches the clone as the domain's OS. The kernel log is clip-shared
// with the sealed original — appends reallocate — and the filesystem
// map is copied (it is small and mutated by most experiments). No boot
// Printk: the sealed log already carries it.
func (k *Kernel) ForkOnto(dom *hv.Domain, net *vnet.Network) *Kernel {
	nk := &Kernel{
		dom:   dom,
		net:   net,
		addr:  k.addr,
		files: make(map[string]File, len(k.files)),
		klog:  k.klog[:len(k.klog):len(k.klog)],
		ticks: k.ticks,
		hung:  k.hung,
	}
	for p, f := range k.files {
		nk.files[p] = f
	}
	dom.AttachOS(nk)
	return nk
}

// Domain returns the hosting domain.
func (k *Kernel) Domain() *hv.Domain { return k.dom }

// Addr returns the kernel's network address (IP).
func (k *Kernel) Addr() string { return k.addr }

// Hostname implements hv.GuestOS.
func (k *Kernel) Hostname() string { return k.dom.Name() }

// Hung reports whether a payload wedged the kernel.
func (k *Kernel) Hung() bool { return k.hung }

// Printk appends a kernel log line with a fake monotonic timestamp,
// formatted like the exploit transcripts in the paper.
func (k *Kernel) Printk(format string, args ...any) {
	k.ticks++
	k.klog = append(k.klog, fmt.Sprintf("[%5d.%04d] %s", 100+k.ticks/10, (k.ticks%10)*1000, fmt.Sprintf(format, args...)))
}

// Dmesg returns a copy of the kernel log.
func (k *Kernel) Dmesg() []string {
	out := make([]string, len(k.klog))
	copy(out, k.klog)
	return out
}

// DmesgContains reports whether any log line contains the substring.
func (k *Kernel) DmesgContains(sub string) bool {
	for _, l := range k.klog {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

// Filesystem.

// WriteFile creates or replaces a file owned by uid.
func (k *Kernel) WriteFile(path, content string, uid int) error {
	if path == "" || !strings.HasPrefix(path, "/") {
		return fmt.Errorf("guest: bad path %q", path)
	}
	if existing, ok := k.files[path]; ok && existing.UID == UIDRoot && uid != UIDRoot {
		return fmt.Errorf("%w: %s is owned by root", ErrDenied, path)
	}
	if strings.HasPrefix(path, "/root/") && uid != UIDRoot {
		return fmt.Errorf("%w: %s", ErrDenied, path)
	}
	k.files[path] = File{Content: content, UID: uid}
	return nil
}

// WriteFileAsRoot implements hv.GuestOS.
func (k *Kernel) WriteFileAsRoot(path, content string) error {
	return k.WriteFile(path, content, UIDRoot)
}

// ReadFile returns a file's content, enforcing that /root is private.
func (k *Kernel) ReadFile(path string, uid int) (string, error) {
	f, ok := k.files[path]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoFile, path)
	}
	if strings.HasPrefix(path, "/root/") && uid != UIDRoot {
		return "", fmt.Errorf("%w: %s", ErrDenied, path)
	}
	return f.Content, nil
}

// Stat returns the file entry if present.
func (k *Kernel) Stat(path string) (File, bool) {
	f, ok := k.files[path]
	return f, ok
}

// List returns the paths under the given directory prefix, sorted.
func (k *Kernel) List(dir string) []string {
	if !strings.HasSuffix(dir, "/") {
		dir += "/"
	}
	var out []string
	for p := range k.files {
		if strings.HasPrefix(p, dir) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Direct guest memory access.

// Peek reads guest virtual memory with guest privilege; a translation
// fault is vectored through the hardware IDT (which is how a corrupted
// IDT turns an ordinary access into a hypervisor panic) and then
// surfaced as a kernel oops.
func (k *Kernel) Peek(va uint64, buf []byte) error {
	return k.access(va, buf, false)
}

// Poke writes guest virtual memory with guest privilege.
func (k *Kernel) Poke(va uint64, buf []byte) error {
	return k.access(va, buf, true)
}

// PokeU64 writes one little-endian word.
func (k *Kernel) PokeU64(va uint64, v uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return k.Poke(va, b[:])
}

// PeekU64 reads one little-endian word.
func (k *Kernel) PeekU64(va uint64) (uint64, error) {
	var b [8]byte
	if err := k.Peek(va, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := range b {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}

func (k *Kernel) access(va uint64, buf []byte, write bool) error {
	vcpu := k.dom.VCPU()
	var err error
	if write {
		err = vcpu.WriteVirt(va, buf, true)
	} else {
		err = vcpu.ReadVirt(va, buf, true)
	}
	if err == nil {
		return nil
	}
	var fault *pagetable.Fault
	if errors.As(err, &fault) {
		// Hardware delivers #PF through the IDT; if the descriptor has
		// been corrupted this is the moment the machine dies.
		if derr := vcpu.DeliverException(cpu.VectorPageFault); derr != nil {
			return derr
		}
		k.Printk("BUG: unable to handle page request at %#x", fault.VA)
		k.Printk("Oops: %s [#1] SMP", fault.Reason)
		return fmt.Errorf("%w: %v", ErrOops, fault)
	}
	return err
}

// FlushTLB drops the vCPU's cached translations, as the guest kernel's
// own flush (or an exploit's explicit invlpg loop) would.
func (k *Kernel) FlushTLB() { k.dom.FlushTLB() }

// TriggerPageFault forces a hardware page-fault delivery, as the
// XSA-212-crash use case does after corrupting the #PF descriptor.
func (k *Kernel) TriggerPageFault() error {
	// Touch an address that is guaranteed unmapped in guest space.
	var b [1]byte
	return k.access(0xdead000000000, b[:], false)
}

// TickVDSO models the periodic control-plane work every domain performs:
// a root-owned process calls into the vDSO page. After the XSA-148
// backdoor patches that page, this is the moment the reverse shell fires.
func (k *Kernel) TickVDSO() error {
	va := k.dom.PhysmapVA(hv.VDSOPFN) + hv.VDSOEntryOffset
	ctx := &procCtx{k: k, uid: UIDRoot, comm: "cron"}
	if err := k.dom.VCPU().ExecutePayloadAt(va, ctx, true); err != nil {
		k.Printk("vdso: call failed: %v", err)
		return err
	}
	return nil
}

// ExecAsRootProcess executes payload code at the virtual address in the
// context of a root-owned process of this kernel. Device models (which
// run as dom0 processes) use it when an emulated device's handler
// pointer is followed — the execution step of the VENOM-style attack.
func (k *Kernel) ExecAsRootProcess(va uint64, comm string) error {
	ctx := &procCtx{k: k, uid: UIDRoot, comm: comm}
	return k.dom.VCPU().ExecutePayloadAt(va, ctx, true)
}

// ReverseShellAsRoot implements hv.GuestOS: dial the address and serve a
// root shell over the connection.
func (k *Kernel) ReverseShellAsRoot(addr string) error {
	return k.reverseShell(addr, UIDRoot)
}

func (k *Kernel) reverseShell(addr string, uid int) error {
	if k.net == nil {
		return fmt.Errorf("guest: %s has no network", k.dom.Name())
	}
	conn, err := k.net.Dial(k.addr+":40000", addr)
	if err != nil {
		return err
	}
	conn.SetHandler(func(line string) string {
		out, eerr := k.Exec(line, uid)
		if eerr != nil {
			return eerr.Error()
		}
		return out
	})
	k.Printk("reverse shell connected to %s (uid %d)", addr, uid)
	return nil
}

// procCtx is payload execution in the context of one guest process.
type procCtx struct {
	k    *Kernel
	uid  int
	comm string
}

var _ cpu.ExecContext = (*procCtx)(nil)

func (p *procCtx) Logf(format string, args ...any) {
	p.k.Printk("%s[payload]: "+format, append([]any{p.comm}, args...)...)
}

// DropFileAllDomains at process level can only reach the local domain:
// cross-domain reach requires hypervisor privilege.
func (p *procCtx) DropFileAllDomains(path, tmpl string) error {
	content := strings.ReplaceAll(tmpl, "@HOST", "@"+p.k.Hostname())
	return p.k.WriteFile(path, content, p.uid)
}

func (p *procCtx) ReverseShell(addr string) error {
	return p.k.reverseShell(addr, p.uid)
}

func (p *procCtx) Escalate() {
	p.uid = UIDRoot
	p.k.Printk("%s: privilege escalated to uid 0", p.comm)
}

func (p *procCtx) ClockGettime() {
	p.k.ticks++
}

func (p *procCtx) Halt() {
	p.k.hung = true
	p.k.Printk("%s: kernel hang (tight loop)", p.comm)
}
