package guest

import (
	"fmt"
	"strings"
)

// Exec runs a shell command line with the given uid and returns its
// output. The supported command set covers everything the paper's
// experiment transcripts use: whoami, id, hostname, cat, echo (with
// redirection), ls, touch, and && chaining.
func (k *Kernel) Exec(cmdline string, uid int) (string, error) {
	parts := strings.Split(cmdline, "&&")
	var outputs []string
	for _, part := range parts {
		out, err := k.execOne(strings.TrimSpace(part), uid)
		if err != nil {
			return strings.Join(outputs, "\n"), err
		}
		if out != "" {
			outputs = append(outputs, out)
		}
	}
	return strings.Join(outputs, "\n"), nil
}

func (k *Kernel) execOne(cmd string, uid int) (string, error) {
	if cmd == "" {
		return "", nil
	}
	fields := strings.Fields(cmd)
	name, args := fields[0], fields[1:]
	switch name {
	case "whoami":
		return userName(uid), nil

	case "id":
		u := userName(uid)
		return fmt.Sprintf("uid=%d(%s) gid=%d(%s) groups=%d(%s)", uid, u, uid, u, uid, u), nil

	case "hostname":
		return k.Hostname(), nil

	case "cat":
		if len(args) != 1 {
			return "", fmt.Errorf("guest: usage: cat PATH")
		}
		out, err := k.ReadFile(args[0], uid)
		if err != nil {
			return "", fmt.Errorf("cat: %s: %w", args[0], err)
		}
		return out, nil

	case "echo":
		// Support `echo TEXT > PATH` redirection.
		joined := strings.Join(args, " ")
		if idx := strings.Index(joined, ">"); idx >= 0 {
			text := strings.TrimSpace(joined[:idx])
			path := strings.TrimSpace(joined[idx+1:])
			text = strings.Trim(text, `"'`)
			if err := k.WriteFile(path, text, uid); err != nil {
				return "", err
			}
			return "", nil
		}
		return strings.Trim(joined, `"'`), nil

	case "touch":
		if len(args) != 1 {
			return "", fmt.Errorf("guest: usage: touch PATH")
		}
		return "", k.WriteFile(args[0], "", uid)

	case "ls":
		dir := "/"
		if len(args) == 1 {
			dir = args[0]
		}
		return strings.Join(k.List(dir), "\n"), nil

	case "dmesg":
		return strings.Join(k.Dmesg(), "\n"), nil

	default:
		return "", fmt.Errorf("sh: %s: command not found", name)
	}
}

func userName(uid int) string {
	if uid == UIDRoot {
		return "root"
	}
	return "xen"
}
