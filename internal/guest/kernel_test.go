package guest

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/hv"
	"repro/internal/mm"
	"repro/internal/vnet"
)

// env bundles the full stack one guest test needs.
type env struct {
	mem *mm.Memory
	hv  *hv.Hypervisor
	net *vnet.Network
	k   *Kernel
}

func newEnv(t *testing.T, v hv.Version) *env {
	t.Helper()
	mem, err := mm.NewMemory(2048)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hv.New(mem, v)
	if err != nil {
		t.Fatal(err)
	}
	d, err := h.CreateDomain("guest01", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	net := vnet.New()
	return &env{mem: mem, hv: h, net: net, k: New(d, net, "10.3.1.181")}
}

func TestKernelBootState(t *testing.T) {
	e := newEnv(t, hv.Version46())
	if e.k.Hostname() != "guest01" {
		t.Errorf("hostname = %q", e.k.Hostname())
	}
	if !e.k.DmesgContains("Booting guest01") {
		t.Error("boot message missing")
	}
	if e.k.Domain().OS() != hv.GuestOS(e.k) {
		t.Error("kernel not attached as domain OS")
	}
}

func TestFilesystemPermissions(t *testing.T) {
	e := newEnv(t, hv.Version46())
	k := e.k
	if err := k.WriteFile("/tmp/note", "hello", UIDUser); err != nil {
		t.Fatalf("user write: %v", err)
	}
	if got, err := k.ReadFile("/tmp/note", UIDUser); err != nil || got != "hello" {
		t.Errorf("read back = %q, %v", got, err)
	}
	// /root is private.
	if _, err := k.ReadFile("/root/root_msg", UIDUser); !errors.Is(err, ErrDenied) {
		t.Errorf("user read of /root: err = %v, want ErrDenied", err)
	}
	if got, err := k.ReadFile("/root/root_msg", UIDRoot); err != nil || !strings.Contains(got, "Confidential") {
		t.Errorf("root read = %q, %v", got, err)
	}
	if err := k.WriteFile("/root/evil", "x", UIDUser); !errors.Is(err, ErrDenied) {
		t.Errorf("user write to /root: err = %v", err)
	}
	// Users cannot clobber root-owned files.
	if err := k.WriteFile("/etc/hostname", "pwned", UIDUser); !errors.Is(err, ErrDenied) {
		t.Errorf("user clobber of root file: err = %v", err)
	}
	if _, err := k.ReadFile("/does/not/exist", UIDRoot); !errors.Is(err, ErrNoFile) {
		t.Errorf("missing file: err = %v", err)
	}
	if err := k.WriteFile("relative", "x", UIDRoot); err == nil {
		t.Error("relative path accepted")
	}
}

func TestShellCommands(t *testing.T) {
	e := newEnv(t, hv.Version46())
	k := e.k
	tests := []struct {
		cmd  string
		uid  int
		want string
	}{
		{"whoami", UIDRoot, "root"},
		{"whoami", UIDUser, "xen"},
		{"hostname", UIDUser, "guest01"},
		{"id", UIDRoot, "uid=0(root) gid=0(root) groups=0(root)"},
		{"echo hello world", UIDUser, "hello world"},
		{"whoami && hostname", UIDRoot, "root\nguest01"},
		{"cat /root/root_msg", UIDRoot, "Confidential content in root folder!"},
	}
	for _, tt := range tests {
		got, err := k.Exec(tt.cmd, tt.uid)
		if err != nil {
			t.Errorf("Exec(%q): %v", tt.cmd, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Exec(%q) = %q, want %q", tt.cmd, got, tt.want)
		}
	}
	// Redirection writes a file.
	if _, err := k.Exec(`echo "|pwned|" > /tmp/injector_log`, UIDRoot); err != nil {
		t.Fatalf("redirect: %v", err)
	}
	if got, _ := k.ReadFile("/tmp/injector_log", UIDUser); got != "|pwned|" {
		t.Errorf("redirected content = %q", got)
	}
	// Failures.
	if _, err := k.Exec("cat /root/root_msg", UIDUser); err == nil {
		t.Error("user cat of /root succeeded")
	}
	if _, err := k.Exec("frobnicate", UIDUser); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("unknown command: %v", err)
	}
	if out, err := k.Exec("ls /tmp", UIDUser); err != nil || !strings.Contains(out, "/tmp/injector_log") {
		t.Errorf("ls = %q, %v", out, err)
	}
	if _, err := k.Exec("touch /tmp/t", UIDUser); err != nil {
		t.Errorf("touch: %v", err)
	}
}

func TestPeekPokeOwnMemory(t *testing.T) {
	e := newEnv(t, hv.Version46())
	k := e.k
	pfn, err := k.Domain().AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	va := k.Domain().PhysmapVA(pfn)
	if err := k.PokeU64(va+16, 0x1122334455667788); err != nil {
		t.Fatalf("Poke: %v", err)
	}
	v, err := k.PeekU64(va + 16)
	if err != nil || v != 0x1122334455667788 {
		t.Errorf("Peek = %#x, %v", v, err)
	}
}

func TestPeekFaultBecomesOops(t *testing.T) {
	e := newEnv(t, hv.Version46())
	k := e.k
	err := k.Peek(0xdead000000000, make([]byte, 8))
	if !errors.Is(err, ErrOops) {
		t.Fatalf("err = %v, want ErrOops", err)
	}
	if !k.DmesgContains("unable to handle page request") {
		t.Error("oops message missing from dmesg")
	}
	// The fault went through the (healthy) IDT: the hypervisor absorbed
	// one #PF and is still alive.
	if e.hv.PageFaults() == 0 {
		t.Error("fault did not reach the hypervisor's #PF handler")
	}
	if e.hv.Crashed() {
		t.Error("healthy IDT delivery crashed the hypervisor")
	}
}

func TestTriggerPageFaultWithCorruptIDTCrashes(t *testing.T) {
	e := newEnv(t, hv.Version46())
	// Corrupt the #PF descriptor the way the exploit and the injector do.
	idtDst := e.hv.IDTR().DescriptorAddr(cpu.VectorPageFault)
	if err := e.hv.WriteHV(idtDst, []byte{0xa9, 0x2d, 0x08, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	err := e.k.TriggerPageFault()
	if !errors.Is(err, cpu.ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !e.hv.ConsoleContains("FATAL TRAP: vector = 8") {
		t.Errorf("panic banner missing:\n%s", strings.Join(e.hv.Console(), "\n"))
	}
}

func TestTickVDSOBenign(t *testing.T) {
	e := newEnv(t, hv.Version46())
	before := len(e.k.Dmesg())
	if err := e.k.TickVDSO(); err != nil {
		t.Fatalf("TickVDSO: %v", err)
	}
	// The benign vDSO only bumps the clock; no new log lines, no files.
	if len(e.k.Dmesg()) != before {
		t.Errorf("benign vDSO logged: %v", e.k.Dmesg()[before:])
	}
}

func TestVDSOBackdoorFiresOnTick(t *testing.T) {
	e := newEnv(t, hv.Version46())
	k := e.k
	// The attacker host listens.
	l, err := e.net.Listen("10.3.1.100:1234")
	if err != nil {
		t.Fatal(err)
	}
	// Patch the vDSO page with a backdoor (as the XSA-148 exploit does,
	// but here via direct physical write to focus the test on the tick).
	backdoor := cpu.Assemble(cpu.Program{
		{Op: cpu.OpReverseShell, Args: []string{"10.3.1.100:1234"}},
		{Op: cpu.OpClockGettime},
	})
	vdMFN, err := k.Domain().P2M().Lookup(hv.VDSOPFN)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.mem.WritePhys(vdMFN.Addr()+hv.VDSOEntryOffset, backdoor); err != nil {
		t.Fatal(err)
	}
	if err := k.TickVDSO(); err != nil {
		t.Fatalf("TickVDSO with backdoor: %v", err)
	}
	conn, err := l.Accept()
	if err != nil {
		t.Fatalf("no reverse connection: %v", err)
	}
	out, err := conn.Exec("whoami && hostname")
	if err != nil {
		t.Fatal(err)
	}
	if out != "root\nguest01" {
		t.Errorf("shell output = %q, want root\\nguest01", out)
	}
	out, _ = conn.Exec("cat /root/root_msg")
	if !strings.Contains(out, "Confidential") {
		t.Errorf("root file read = %q", out)
	}
}

func TestReverseShellWithoutListener(t *testing.T) {
	e := newEnv(t, hv.Version46())
	if err := e.k.ReverseShellAsRoot("1.2.3.4:9"); !errors.Is(err, vnet.ErrRefused) {
		t.Errorf("err = %v, want ErrRefused", err)
	}
}

func TestProcCtxEscalateAndHalt(t *testing.T) {
	e := newEnv(t, hv.Version46())
	k := e.k
	// Run a payload that escalates then halts, via a process context.
	pfn, _ := k.Domain().AllocPage()
	va := k.Domain().PhysmapVA(pfn)
	prog := cpu.Assemble(cpu.Program{
		{Op: cpu.OpEscalate},
		{Op: cpu.OpDropFileAll, Args: []string{"/root/payload_proof", "owned-as-@HOST"}},
		{Op: cpu.OpHalt},
	})
	mfn, _ := k.Domain().P2M().Lookup(pfn)
	if err := e.mem.WritePhys(mfn.Addr(), prog); err != nil {
		t.Fatal(err)
	}
	ctx := &procCtx{k: k, uid: UIDUser, comm: "exploit"}
	if err := k.Domain().VCPU().ExecutePayloadAt(va, ctx, true); err != nil {
		t.Fatalf("payload: %v", err)
	}
	if ctx.uid != UIDRoot {
		t.Error("escalate did not set uid 0")
	}
	// The drop-file ran after escalation, so /root write succeeded.
	if got, err := k.ReadFile("/root/payload_proof", UIDRoot); err != nil || got != "owned-as-@guest01" {
		t.Errorf("payload file = %q, %v", got, err)
	}
	if !k.Hung() {
		t.Error("halt did not wedge the kernel")
	}
}

func TestWriteFileAsRootImplementsGuestOS(t *testing.T) {
	e := newEnv(t, hv.Version46())
	if err := e.k.WriteFileAsRoot("/tmp/injector_log", "|uid=0(root)|@guest01"); err != nil {
		t.Fatal(err)
	}
	got, err := e.k.ReadFile("/tmp/injector_log", UIDUser)
	if err != nil || !strings.Contains(got, "uid=0(root)") {
		t.Errorf("file = %q, %v", got, err)
	}
}

func TestShellDmesg(t *testing.T) {
	e := newEnv(t, hv.Version46())
	out, err := e.k.Exec("dmesg", UIDUser)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Booting guest01") {
		t.Errorf("dmesg = %q", out)
	}
}

// Property: the shell is total — arbitrary command lines either produce
// output or a typed error, never a panic, and never corrupt the kernel.
func TestQuickShellTotal(t *testing.T) {
	e := newEnv(t, hv.Version46())
	f := func(line string, uidRaw uint8) bool {
		uid := UIDUser
		if uidRaw%2 == 0 {
			uid = UIDRoot
		}
		_, _ = e.k.Exec(line, uid)
		// The kernel remains functional afterwards.
		out, err := e.k.Exec("hostname", UIDUser)
		return err == nil && out == "guest01"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
