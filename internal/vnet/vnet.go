// Package vnet is a deterministic in-memory network used by the
// experiments: the XSA-148 use case needs a remote host running a
// listener ("nc -l -vvv -p 1234") that the backdoored dom0 connects back
// to. The network is synchronous — delivery happens inside the calls —
// so experiment runs are reproducible without goroutines or timing.
package vnet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Errors reported by the network.
var (
	// ErrRefused is returned when dialing an address nobody listens on.
	ErrRefused = errors.New("vnet: connection refused")
	// ErrAddrInUse is returned when an address already has a listener.
	ErrAddrInUse = errors.New("vnet: address already in use")
	// ErrClosed is returned for operations on closed endpoints.
	ErrClosed = errors.New("vnet: endpoint closed")
	// ErrNoData is returned when reading an empty inbox.
	ErrNoData = errors.New("vnet: no data available")
)

// LineHandler consumes one request line and produces the response, the
// synchronous stand-in for a remote shell's read-eval loop.
type LineHandler func(line string) string

// Network is a closed universe of addresses.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	log       []string
}

// New creates an empty network.
func New() *Network {
	return &Network{listeners: make(map[string]*Listener)}
}

// Fork clones the network for a snapshot fork: every bound address gets
// a fresh listener with an empty pending queue, and the connection log
// is clip-shared with the sealed original so appends reallocate.
// Established connections are not cloned — at seal time none exist (the
// experiments dial during the attack phase, never at boot).
func (n *Network) Fork() *Network {
	n.mu.Lock()
	defer n.mu.Unlock()
	f := &Network{
		listeners: make(map[string]*Listener, len(n.listeners)),
		log:       n.log[:len(n.log):len(n.log)],
	}
	for addr := range n.listeners {
		f.listeners[addr] = &Listener{net: f, addr: addr}
	}
	return f
}

// Listener returns the listener bound to addr, if any. Snapshot forks
// use it to rebind an environment's well-known listener handles.
func (n *Network) Listener(addr string) (*Listener, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.listeners[addr]
	return l, ok
}

// Log returns the connection log ("Connection from ..." lines), the
// observable the XSA-148 experiment checks on the attacker host.
func (n *Network) Log() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.log))
	copy(out, n.log)
	return out
}

func (n *Network) logf(format string, args ...any) {
	n.log = append(n.log, fmt.Sprintf(format, args...))
}

// Listen binds a listener to addr ("host:port").
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &Listener{net: n, addr: addr}
	n.listeners[addr] = l
	n.logf("Listening on [%s] (family 0)", addr)
	return l, nil
}

// Dial connects from the given source address to addr, delivering the
// server end to the listener's pending queue.
func (n *Network) Dial(from, to string) (*Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.listeners[to]
	if !ok || l.closed {
		return nil, fmt.Errorf("%w: %s", ErrRefused, to)
	}
	client := &Conn{local: from, remote: to}
	server := &Conn{local: to, remote: from}
	client.peer, server.peer = server, client
	l.pending = append(l.pending, server)
	n.logf("Connection from [%s] to [%s]", from, to)
	return client, nil
}

// Listener accepts incoming connections on one address.
type Listener struct {
	net     *Network
	addr    string
	pending []*Conn
	closed  bool
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.addr }

// Accept pops the oldest pending connection. In the synchronous model an
// empty queue is an error, not a block.
func (l *Listener) Accept() (*Conn, error) {
	l.net.mu.Lock()
	defer l.net.mu.Unlock()
	if l.closed {
		return nil, fmt.Errorf("%w: listener on %s", ErrClosed, l.addr)
	}
	if len(l.pending) == 0 {
		return nil, fmt.Errorf("%w: no pending connection on %s", ErrNoData, l.addr)
	}
	c := l.pending[0]
	l.pending = l.pending[1:]
	return c, nil
}

// Pending returns how many connections await Accept.
func (l *Listener) Pending() int {
	l.net.mu.Lock()
	defer l.net.mu.Unlock()
	return len(l.pending)
}

// Close unbinds the listener.
func (l *Listener) Close() {
	l.net.mu.Lock()
	defer l.net.mu.Unlock()
	l.closed = true
	delete(l.net.listeners, l.addr)
}

// Conn is one end of an established connection. Data written to a Conn
// lands in the peer's inbox; if the peer has a line handler installed,
// each written line is answered synchronously instead.
type Conn struct {
	local, remote string
	peer          *Conn
	inbox         []string
	handler       LineHandler
	closed        bool
}

// LocalAddr returns this end's address.
func (c *Conn) LocalAddr() string { return c.local }

// RemoteAddr returns the peer's address.
func (c *Conn) RemoteAddr() string { return c.remote }

// SetHandler installs the serving side's read-eval loop.
func (c *Conn) SetHandler(h LineHandler) { c.handler = h }

// WriteLine sends one line to the peer. If the peer serves a handler the
// response arrives in this end's inbox immediately.
func (c *Conn) WriteLine(line string) error {
	if c.closed || c.peer == nil {
		return ErrClosed
	}
	if c.peer.closed {
		return fmt.Errorf("%w: peer %s", ErrClosed, c.remote)
	}
	if c.peer.handler != nil {
		resp := c.peer.handler(line)
		c.inbox = append(c.inbox, resp)
		return nil
	}
	c.peer.inbox = append(c.peer.inbox, line)
	return nil
}

// ReadLine pops the oldest line from this end's inbox.
func (c *Conn) ReadLine() (string, error) {
	if c.closed {
		return "", ErrClosed
	}
	if len(c.inbox) == 0 {
		return "", ErrNoData
	}
	line := c.inbox[0]
	c.inbox = c.inbox[1:]
	return line, nil
}

// ReadAll drains the inbox as one string.
func (c *Conn) ReadAll() string {
	out := strings.Join(c.inbox, "\n")
	c.inbox = nil
	return out
}

// Exec is the attacker-side convenience: send a command line to the
// served shell and return its output.
func (c *Conn) Exec(cmd string) (string, error) {
	if err := c.WriteLine(cmd); err != nil {
		return "", err
	}
	return c.ReadLine()
}

// Close shuts this end down.
func (c *Conn) Close() { c.closed = true }
