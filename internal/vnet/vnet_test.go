package vnet

import (
	"errors"
	"strings"
	"testing"
)

func TestListenDialAccept(t *testing.T) {
	n := New()
	l, err := n.Listen("10.3.1.100:1234")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if l.Addr() != "10.3.1.100:1234" {
		t.Errorf("Addr = %q", l.Addr())
	}
	client, err := n.Dial("10.3.1.181:40000", "10.3.1.100:1234")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if l.Pending() != 1 {
		t.Errorf("Pending = %d", l.Pending())
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if server.RemoteAddr() != client.LocalAddr() || client.RemoteAddr() != server.LocalAddr() {
		t.Errorf("addresses: client %s<->%s server %s<->%s",
			client.LocalAddr(), client.RemoteAddr(), server.LocalAddr(), server.RemoteAddr())
	}
}

func TestDialRefusedAndDuplicateListen(t *testing.T) {
	n := New()
	if _, err := n.Dial("a:1", "b:2"); !errors.Is(err, ErrRefused) {
		t.Errorf("dial nowhere: err = %v, want ErrRefused", err)
	}
	if _, err := n.Listen("b:2"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("b:2"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("double listen: err = %v, want ErrAddrInUse", err)
	}
}

func TestListenerClose(t *testing.T) {
	n := New()
	l, _ := n.Listen("b:2")
	l.Close()
	if _, err := n.Dial("a:1", "b:2"); !errors.Is(err, ErrRefused) {
		t.Errorf("dial closed listener: err = %v, want ErrRefused", err)
	}
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Errorf("accept on closed: err = %v, want ErrClosed", err)
	}
	// Address is reusable after close.
	if _, err := n.Listen("b:2"); err != nil {
		t.Errorf("relisten after close: %v", err)
	}
}

func TestAcceptEmpty(t *testing.T) {
	n := New()
	l, _ := n.Listen("b:2")
	if _, err := l.Accept(); !errors.Is(err, ErrNoData) {
		t.Errorf("accept empty: err = %v, want ErrNoData", err)
	}
}

func TestRawLineExchange(t *testing.T) {
	n := New()
	l, _ := n.Listen("b:2")
	client, _ := n.Dial("a:1", "b:2")
	server, _ := l.Accept()
	if err := client.WriteLine("ping"); err != nil {
		t.Fatal(err)
	}
	got, err := server.ReadLine()
	if err != nil || got != "ping" {
		t.Errorf("server read %q, %v", got, err)
	}
	if err := server.WriteLine("pong"); err != nil {
		t.Fatal(err)
	}
	if got, _ := client.ReadLine(); got != "pong" {
		t.Errorf("client read %q", got)
	}
	if _, err := client.ReadLine(); !errors.Is(err, ErrNoData) {
		t.Errorf("empty read: err = %v", err)
	}
}

func TestHandlerShell(t *testing.T) {
	n := New()
	l, _ := n.Listen("attacker:1234")
	client, _ := n.Dial("victim:55555", "attacker:1234")
	server, _ := l.Accept()
	// The victim side serves a fake shell.
	client.SetHandler(func(line string) string {
		if line == "whoami && hostname" {
			return "root\nxen3"
		}
		return "sh: command not found"
	})
	out, err := server.Exec("whoami && hostname")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if out != "root\nxen3" {
		t.Errorf("Exec = %q", out)
	}
	out, _ = server.Exec("frobnicate")
	if !strings.Contains(out, "not found") {
		t.Errorf("Exec unknown = %q", out)
	}
}

func TestReadAll(t *testing.T) {
	n := New()
	l, _ := n.Listen("b:2")
	client, _ := n.Dial("a:1", "b:2")
	server, _ := l.Accept()
	for _, s := range []string{"one", "two", "three"} {
		if err := client.WriteLine(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := server.ReadAll(); got != "one\ntwo\nthree" {
		t.Errorf("ReadAll = %q", got)
	}
	if got := server.ReadAll(); got != "" {
		t.Errorf("second ReadAll = %q", got)
	}
}

func TestClosedConnSemantics(t *testing.T) {
	n := New()
	l, _ := n.Listen("b:2")
	client, _ := n.Dial("a:1", "b:2")
	server, _ := l.Accept()
	server.Close()
	if err := client.WriteLine("x"); !errors.Is(err, ErrClosed) {
		t.Errorf("write to closed peer: err = %v", err)
	}
	client.Close()
	if _, err := client.ReadLine(); !errors.Is(err, ErrClosed) {
		t.Errorf("read on closed conn: err = %v", err)
	}
}

func TestNetworkLog(t *testing.T) {
	n := New()
	l, _ := n.Listen("10.3.1.100:1234")
	_, _ = n.Dial("10.3.1.181:40000", "10.3.1.100:1234")
	_ = l
	log := strings.Join(n.Log(), "\n")
	for _, want := range []string{"Listening on [10.3.1.100:1234]", "Connection from [10.3.1.181:40000]"} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
}
