package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// FlightRecorder dumps a failing cell's salvaged telemetry — the
// bounded event ring its goroutine held at the moment of failure — as
// flight-<runid>-<cell>.jsonl the instant the engine settles the
// failure, so a chaos campaign's crash evidence survives even if the
// process never reaches its normal trace flush. It implements
// campaign.Progress and is safe for concurrent workers.
//
// Dumps are created exclusively: a name collision (the same cell
// failing again in a consecutive run of the same configuration) gets a
// numeric suffix instead of truncating the earlier evidence.
type FlightRecorder struct {
	// Dir is where dumps land ("." when empty).
	Dir string

	// RunID namespaces dump files by campaign run identity. When empty
	// the legacy flight-<cell>.jsonl name is used.
	RunID string

	mu     sync.Mutex
	dumps  []string
	errors []error
}

// BatchStarted implements campaign.Progress (no-op).
func (f *FlightRecorder) BatchStarted([]string) {}

// CellStarted implements campaign.Progress (no-op).
func (f *FlightRecorder) CellStarted(string) {}

// CellFinished implements campaign.Progress: a settled failure with a
// salvageable profile is dumped immediately. Hung and canceled cells
// carry no profile (their goroutine was abandoned with its recorder)
// and produce no dump.
func (f *FlightRecorder) CellFinished(cell string, _ time.Duration, profile *telemetry.CellProfile, cerr *campaign.CellError) {
	if cerr == nil || profile == nil {
		return
	}
	dir := f.Dir
	if dir == "" {
		dir = "."
	}
	stem := "flight-"
	if f.RunID != "" {
		stem += f.RunID + "-"
	}
	stem = filepath.Join(dir, stem+strings.ReplaceAll(cell, "/", "-"))
	f.mu.Lock()
	defer f.mu.Unlock()
	path, err := f.dump(stem, profile)
	if err != nil {
		f.errors = append(f.errors, fmt.Errorf("obs: flight dump for %s: %w", cell, err))
		return
	}
	f.dumps = append(f.dumps, path)
}

// dump writes the profile to stem.jsonl, falling back to stem-2.jsonl,
// stem-3.jsonl, … when the name is taken, and returns the path used.
func (f *FlightRecorder) dump(stem string, profile *telemetry.CellProfile) (string, error) {
	var file *os.File
	var path string
	for n := 1; ; n++ {
		path = stem
		if n > 1 {
			path += fmt.Sprintf("-%d", n)
		}
		path += ".jsonl"
		var err error
		file, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err == nil {
			break
		}
		if !os.IsExist(err) || n >= 1000 {
			return "", err
		}
	}
	if err := telemetry.WriteTrace(file, []*telemetry.CellProfile{profile}); err != nil {
		file.Close()
		return "", err
	}
	return path, file.Close()
}

// Dumps returns the paths written so far.
func (f *FlightRecorder) Dumps() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.dumps...)
}

// Errors returns dump failures (a flight recorder never fails the
// campaign; callers report these as warnings).
func (f *FlightRecorder) Errors() []error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]error(nil), f.errors...)
}

// Multi fans campaign progress out to several observers in order.
type Multi []campaign.Progress

// BatchStarted implements campaign.Progress.
func (m Multi) BatchStarted(cells []string) {
	for _, p := range m {
		p.BatchStarted(cells)
	}
}

// CellStarted implements campaign.Progress.
func (m Multi) CellStarted(cell string) {
	for _, p := range m {
		p.CellStarted(cell)
	}
}

// CellFinished implements campaign.Progress.
func (m Multi) CellFinished(cell string, wall time.Duration, profile *telemetry.CellProfile, cerr *campaign.CellError) {
	for _, p := range m {
		p.CellFinished(cell, wall, profile, cerr)
	}
}
