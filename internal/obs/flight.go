package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// FlightRecorder dumps a failing cell's salvaged telemetry — the
// bounded event ring its goroutine held at the moment of failure — as
// flight-<cell>.jsonl the instant the engine settles the failure, so a
// chaos campaign's crash evidence survives even if the process never
// reaches its normal trace flush. It implements campaign.Progress and
// is safe for concurrent workers.
type FlightRecorder struct {
	// Dir is where dumps land ("." when empty).
	Dir string

	mu     sync.Mutex
	dumps  []string
	errors []error
}

// BatchStarted implements campaign.Progress (no-op).
func (f *FlightRecorder) BatchStarted([]string) {}

// CellStarted implements campaign.Progress (no-op).
func (f *FlightRecorder) CellStarted(string) {}

// CellFinished implements campaign.Progress: a settled failure with a
// salvageable profile is dumped immediately. Hung and canceled cells
// carry no profile (their goroutine was abandoned with its recorder)
// and produce no dump.
func (f *FlightRecorder) CellFinished(cell string, _ time.Duration, profile *telemetry.CellProfile, cerr *campaign.CellError) {
	if cerr == nil || profile == nil {
		return
	}
	dir := f.Dir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "flight-"+strings.ReplaceAll(cell, "/", "-")+".jsonl")
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.dump(path, profile); err != nil {
		f.errors = append(f.errors, fmt.Errorf("obs: flight dump for %s: %w", cell, err))
		return
	}
	f.dumps = append(f.dumps, path)
}

func (f *FlightRecorder) dump(path string, profile *telemetry.CellProfile) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteTrace(file, []*telemetry.CellProfile{profile}); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// Dumps returns the paths written so far.
func (f *FlightRecorder) Dumps() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.dumps...)
}

// Errors returns dump failures (a flight recorder never fails the
// campaign; callers report these as warnings).
func (f *FlightRecorder) Errors() []error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]error(nil), f.errors...)
}

// Multi fans campaign progress out to several observers in order.
type Multi []campaign.Progress

// BatchStarted implements campaign.Progress.
func (m Multi) BatchStarted(cells []string) {
	for _, p := range m {
		p.BatchStarted(cells)
	}
}

// CellStarted implements campaign.Progress.
func (m Multi) CellStarted(cell string) {
	for _, p := range m {
		p.CellStarted(cell)
	}
}

// CellFinished implements campaign.Progress.
func (m Multi) CellFinished(cell string, wall time.Duration, profile *telemetry.CellProfile, cerr *campaign.CellError) {
	for _, p := range m {
		p.CellFinished(cell, wall, profile, cerr)
	}
}
