package obs

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/span"
)

// The /spans endpoint: the live span forest as JSON. CellSpans keeps
// its *Tree out of its own JSON form (the tree is engine-internal
// state), so the wire view re-attaches each cell's spans explicitly,
// with span kinds as their wire names.

// wireSpan is one span on the /spans wire: the span's own JSON fields
// plus the kind's wire name.
type wireSpan struct {
	span.Span
	Kind string `json:"kind"`
}

// wireCell is one cell on the /spans wire.
type wireCell struct {
	*span.CellSpans
	Spans []wireSpan `json:"spans"`
}

// wireBatch is one batch on the /spans wire.
type wireBatch struct {
	Name  string     `json:"name"`
	Cells []wireCell `json:"cells"`
}

// wireForest is the /spans response body.
type wireForest struct {
	Epoch   time.Time   `json:"epoch"`
	Batches []wireBatch `json:"batches"`
}

func (s *Server) handleSpans(w http.ResponseWriter, _ *http.Request) {
	if s.spans == nil {
		http.Error(w, "span collection not enabled (run with -spans)", http.StatusNotFound)
		return
	}
	f := s.spans.Forest()
	out := wireForest{Epoch: f.Epoch, Batches: make([]wireBatch, 0, len(f.Batches))}
	for bi := range f.Batches {
		b := &f.Batches[bi]
		wb := wireBatch{Name: b.Name, Cells: make([]wireCell, 0, len(b.Cells))}
		for _, cs := range b.Cells {
			wc := wireCell{CellSpans: cs}
			for _, sp := range cs.Tree.Spans() {
				wc.Spans = append(wc.Spans, wireSpan{Span: sp, Kind: sp.Kind.String()})
			}
			wb.Cells = append(wb.Cells, wc)
		}
		out.Batches = append(out.Batches, wb)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
