package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/events"
)

// sseClient reads one /events stream and parses its frames.
type sseFrame struct {
	ID    string
	Event string
	Data  string
}

// readSSE consumes frames from the stream until n frames with data
// arrived or the stream ends. The retry preamble is skipped.
func readSSE(t *testing.T, r io.Reader, n int) []sseFrame {
	t.Helper()
	sc := bufio.NewScanner(r)
	var frames []sseFrame
	var cur sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Data != "" || cur.Event != "" {
				frames = append(frames, cur)
				if len(frames) == n {
					return frames
				}
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			cur.ID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, "retry: "):
			// reconnection hint, not a frame
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return frames
}

func streamServer(t *testing.T) (*Server, *events.Bus, *events.Timeline, string) {
	t.Helper()
	bus := events.NewBus(64, 64)
	tl := events.NewTimeline()
	srv := NewServer(nil)
	srv.SetBus(bus)
	srv.SetSchedule(tl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		bus.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, bus, tl, fmt.Sprintf("http://%s", addr)
}

// TestEventsSSE pins the wire format: id/event/data framing, the bus ID
// as the SSE event ID, and JSON payloads carrying the event fields.
func TestEventsSSE(t *testing.T) {
	_, bus, _, base := streamServer(t)

	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	bus.Publish(events.Event{Type: events.TypeBatchStarted, Worker: -1, Cells: 3})
	bus.Publish(events.Event{Type: events.TypeCellStarted, Cell: "4.6/x/exploit", Worker: 1, QueueNS: 42})

	frames := readSSE(t, resp.Body, 2)
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}
	if frames[0].ID != "1" || frames[0].Event != events.TypeBatchStarted {
		t.Fatalf("frame 0 = %+v", frames[0])
	}
	var ev events.Event
	if err := json.Unmarshal([]byte(frames[1].Data), &ev); err != nil {
		t.Fatalf("frame 1 data: %v", err)
	}
	if ev.ID != 2 || ev.Cell != "4.6/x/exploit" || ev.Worker != 1 || ev.QueueNS != 42 {
		t.Fatalf("frame 1 event = %+v", ev)
	}
}

// TestEventsLastEventIDReplay is the reconnect contract: a client that
// lost its connection resumes with Last-Event-ID and receives exactly
// the events it missed, then the live stream.
func TestEventsLastEventIDReplay(t *testing.T) {
	_, bus, _, base := streamServer(t)
	for i := 0; i < 6; i++ {
		bus.Publish(events.Event{Type: events.TypeCellStarted, Cell: fmt.Sprintf("c%d", i)})
	}

	req, _ := http.NewRequest("GET", base+"/events", nil)
	req.Header.Set("Last-Event-ID", "3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	bus.Publish(events.Event{Type: events.TypeCellFinished, Cell: "c-live"})

	frames := readSSE(t, resp.Body, 4)
	if len(frames) != 4 {
		t.Fatalf("got %d frames, want 4 (replay of 4..6 plus live 7)", len(frames))
	}
	for i, want := range []string{"4", "5", "6", "7"} {
		if frames[i].ID != want {
			t.Fatalf("frame %d: id %q, want %q", i, frames[i].ID, want)
		}
	}
	var last events.Event
	if err := json.Unmarshal([]byte(frames[3].Data), &last); err != nil {
		t.Fatal(err)
	}
	if last.Cell != "c-live" {
		t.Fatalf("live frame = %+v", last)
	}
}

// TestEventsGapNotice: a Last-Event-ID older than the retention window
// yields an explicit gap notice, not a silent skip.
func TestEventsGapNotice(t *testing.T) {
	bus := events.NewBus(2, 16)
	srv := NewServer(nil)
	srv.SetBus(bus)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		bus.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	for i := 0; i < 5; i++ {
		bus.Publish(events.Event{Type: events.TypeCellStarted})
	}
	req, _ := http.NewRequest("GET", fmt.Sprintf("http://%s/events", addr), nil)
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readSSE(t, resp.Body, 3)
	if frames[0].Event != "gap" {
		t.Fatalf("first frame = %+v, want a gap notice", frames[0])
	}
	if frames[1].ID != "4" || frames[2].ID != "5" {
		t.Fatalf("replay after gap = %+v", frames[1:])
	}
}

// TestEventsShutdownDrains: Shutdown must terminate a connected SSE
// subscriber instead of waiting forever for the handler to return.
func TestEventsShutdownDrains(t *testing.T) {
	bus := events.NewBus(16, 16)
	srv := NewServer(nil)
	srv.SetBus(bus)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/events", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown with a live subscriber: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown wedged behind the SSE subscriber")
	}
	// The client-side stream ends too.
	if _, err := io.ReadAll(resp.Body); err != nil {
		// A reset is acceptable; a hang is not (ReadAll returning at
		// all is the assertion).
		t.Logf("stream closed with %v", err)
	}
}

// TestEventsBusCloseEndsStream: closing the bus (campaign over, no
// -serve) ends every connected stream with an `end` notice.
func TestEventsBusCloseEndsStream(t *testing.T) {
	_, bus, _, base := streamServer(t)
	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	bus.Publish(events.Event{Type: events.TypeCampaignDone, Worker: -1})
	bus.Close()
	frames := readSSE(t, resp.Body, 2)
	if len(frames) != 2 || frames[1].Event != "end" {
		t.Fatalf("frames = %+v, want campaign_done then end", frames)
	}
}

func TestEventsDisabled(t *testing.T) {
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	for _, path := range []string{"/events", "/schedule"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without a bus/timeline: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestScheduleEndpoint(t *testing.T) {
	_, _, tl, base := streamServer(t)
	tl.BatchQueued([]string{"a", "b"})
	tl.CellDispatched("a", 0, 10)
	tl.CellSettled("a", 0, 10, 100, nil, nil)

	resp, err := http.Get(base + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s events.Schedule
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Total != 2 || s.Completed != 1 || s.Queued != 1 {
		t.Fatalf("schedule = %+v", s)
	}
	if len(s.Workers) != 1 || s.Workers[0].Cells != 1 {
		t.Fatalf("workers = %+v", s.Workers)
	}
}

func TestPprofMounted(t *testing.T) {
	_, _, _, base := streamServer(t)
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("/debug/pprof/ index does not list profiles:\n%s", body)
	}
}

// TestStreamMetrics: the bus, scheduler and Go runtime gauges appear on
// /metrics alongside the campaign series.
func TestStreamMetrics(t *testing.T) {
	_, bus, tl, base := streamServer(t)
	bus.Publish(events.Event{Type: events.TypeCellStarted})
	tl.BatchQueued([]string{"a"})

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"repro_events_published_total 1",
		"repro_events_dropped_total 0",
		"repro_events_subscribers",
		"repro_sched_cells_total 1",
		"repro_sched_queue_depth 1",
		"repro_sched_utilization",
		"repro_sched_eta_ns",
		"repro_go_goroutines",
		"repro_go_heap_alloc_bytes",
		"repro_go_gc_cycles_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestEventsSlowConsumerDropNotice: a subscriber that reads slower than
// the bus publishes sees its losses surfaced in-band.
func TestEventsSlowConsumerDropNotice(t *testing.T) {
	bus := events.NewBus(1024, 2) // tiny per-subscriber buffer
	srv := NewServer(nil)
	srv.SetBus(bus)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	resp, err := http.Get(fmt.Sprintf("http://%s/events", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Give the handler a moment to subscribe, then flood far past the
	// 2-slot buffer before it can drain: drops are guaranteed.
	deadline := time.Now().Add(2 * time.Second)
	for bus.Stats().Subscribers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 500; i++ {
		bus.Publish(events.Event{Type: events.TypeCellStarted})
	}
	bus.Close()

	sawDrops := false
	for _, f := range readSSE(t, resp.Body, 600) {
		if f.Event == "drops" {
			sawDrops = true
			var d struct {
				Dropped uint64 `json:"dropped"`
			}
			if err := json.Unmarshal([]byte(f.Data), &d); err != nil || d.Dropped == 0 {
				t.Fatalf("malformed drops notice %q (err %v)", f.Data, err)
			}
			break
		}
	}
	if !sawDrops {
		if bus.Stats().Dropped == 0 {
			t.Skip("scheduler drained every event; no drops to surface")
		}
		t.Fatal("drops occurred but no drops notice reached the stream")
	}
}
