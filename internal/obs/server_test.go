package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// TestWriteMetricsFormat pins the Prometheus text exposition down to
// the line level: counter series names, cumulative histogram buckets,
// sum/count, and the quantile gauge series a dashboard scrapes.
func TestWriteMetricsFormat(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("hypercall.mmu_update").Add(3)
	reg.Counter("verdict/evidence").Add(1) // '/' must fold to '_'
	h := reg.Histogram("cell.wall_ns")
	// Buckets: 3 -> (2,4], 5 -> (4,8], 9 -> (8,16]. Cumulative counts
	// must therefore read 1, 2, 3.
	for _, v := range []uint64{3, 5, 9} {
		h.Observe(v)
	}

	var b strings.Builder
	WriteMetrics(&b, reg)
	out := b.String()

	for _, want := range []string{
		"# TYPE repro_hypercall_mmu_update_total counter",
		"repro_hypercall_mmu_update_total 3",
		"repro_verdict_evidence_total 1",
		"# TYPE repro_cell_wall_ns histogram",
		`repro_cell_wall_ns_bucket{le="4"} 1`,
		`repro_cell_wall_ns_bucket{le="8"} 2`,
		`repro_cell_wall_ns_bucket{le="16"} 3`,
		`repro_cell_wall_ns_bucket{le="+Inf"} 3`,
		"repro_cell_wall_ns_sum 17",
		"repro_cell_wall_ns_count 3",
		"# TYPE repro_cell_wall_ns_quantile gauge",
		`repro_cell_wall_ns_quantile{quantile="0.5"}`,
		`repro_cell_wall_ns_quantile{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteMetricsSaturatedBucket folds the 2^64 overflow bucket into
// +Inf instead of emitting an le="18446744073709551615" series, which
// Prometheus would mis-sort.
func TestWriteMetricsSaturatedBucket(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Histogram("cell.wall_ns").Observe(^uint64(0))

	var b strings.Builder
	WriteMetrics(&b, reg)
	out := b.String()
	if strings.Contains(out, `le="18446744073709551615"`) {
		t.Errorf("saturated bucket emitted as finite series:\n%s", out)
	}
	if !strings.Contains(out, `repro_cell_wall_ns_bucket{le="+Inf"} 1`) {
		t.Errorf("+Inf bucket does not carry the saturated observation:\n%s", out)
	}
}

// get fetches a URL and returns status, content type, and body.
func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestServerLiveCampaign installs the server as the campaign progress
// hook, runs the full matrix, and scrapes all three endpoints while and
// after the run: /cells must converge to every cell done, /metrics must
// expose the aggregated registry, /healthz must answer throughout.
func TestServerLiveCampaign(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := NewServer(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()

	r := &campaign.Runner{Workers: 4, Telemetry: reg, Progress: srv}
	done := make(chan error, 1)
	go func() {
		_, err := r.RunMatrix()
		done <- err
	}()

	// Scrape /cells live until the campaign settles every cell. The
	// matrix is 102 cells; poll with a deadline so a wedged campaign
	// fails loudly instead of hanging the test.
	deadline := time.Now().Add(30 * time.Second)
	var cells []CellState
	for {
		status, ctype, body := get(t, base+"/cells")
		if status != http.StatusOK {
			t.Fatalf("/cells status %d", status)
		}
		if !strings.Contains(ctype, "application/json") {
			t.Fatalf("/cells content type %q", ctype)
		}
		cells = cells[:0]
		if err := json.Unmarshal([]byte(body), &cells); err != nil {
			t.Fatalf("/cells is not JSON: %v\n%s", err, body)
		}
		settled := 0
		for _, c := range cells {
			if c.Status == StatusDone || c.Status == StatusError {
				settled++
			}
		}
		if len(cells) == 102 && settled == 102 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not settle: %d cells, %d settled", len(cells), settled)
		}
		// /healthz must answer while cells are in flight.
		if status, _, body := get(t, base+"/healthz"); status != http.StatusOK || !strings.Contains(body, "ok") {
			t.Fatalf("/healthz during run: status %d body %q", status, body)
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatalf("matrix: %v", err)
	}

	for _, c := range cells {
		if c.Status != StatusDone {
			t.Errorf("cell %s finished %s, want done", c.Cell, c.Status)
		}
		if c.WallNS <= 0 {
			t.Errorf("cell %s has no wall time", c.Cell)
		}
	}

	status, ctype, body := get(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	for _, want := range []string{
		"repro_cell_wall_ns_count 102",
		"repro_hypercall_mmu_update_total",
		`repro_cell_wall_ns_quantile{quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestServerErrorCell routes a settled failure through the progress
// hook and checks /cells carries its class and message.
func TestServerErrorCell(t *testing.T) {
	srv := NewServer(nil)
	srv.BatchStarted([]string{"4.6/x/exploit"})
	srv.CellStarted("4.6/x/exploit")
	srv.CellFinished("4.6/x/exploit", 5*time.Millisecond, nil,
		&campaign.CellError{Cell: "4.6/x/exploit", Class: "panic", Message: "injected"})

	cells := srv.snapshot()
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.Status != StatusError || c.Class != "panic" || c.Error != "injected" {
		t.Errorf("error cell state = %+v", c)
	}
}

// TestServerShutdown verifies an orderly stop: the port answers before,
// Shutdown returns without error, and the port refuses after.
func TestServerShutdown(t *testing.T) {
	srv := NewServer(telemetry.NewRegistry())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()
	if status, _, _ := get(t, base+"/healthz"); status != http.StatusOK {
		t.Fatalf("/healthz before shutdown: %d", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("%s/healthz", base)); err == nil {
		t.Error("server still answering after Shutdown")
	}
}
