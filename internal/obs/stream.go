package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"

	"repro/internal/events"
)

// The live stream surfaces: SSE /events over the campaign event bus
// (monotonic IDs, Last-Event-ID replay from the bus's retained ring,
// per-connection drop notices) and /schedule over the wall-clock
// scheduler timeline. Both are wall-side observability — nothing
// served here feeds a deterministic artifact.

// SetBus installs the campaign event bus; /events streams it and
// /metrics gains the repro_events_* gauges. Call before Listen; nil
// (the default) makes /events report that streaming is disabled.
func (s *Server) SetBus(b *events.Bus) { s.bus = b }

// SetSchedule installs the wall-clock scheduler timeline; /schedule
// serves its snapshots and /metrics gains the repro_sched_* gauges.
// Call before Listen; nil (the default) makes /schedule report that
// the timeline is disabled.
func (s *Server) SetSchedule(t *events.Timeline) { s.sched = t }

// handleEvents serves the bus as an SSE stream. A reconnecting client
// sends Last-Event-ID and replays the retained ring from there —
// gapless within the retention window, with an explicit `gap` notice
// when retention no longer reaches the requested ID. A client that
// reads slower than the campaign publishes loses events instead of
// blocking the workers; the loss is surfaced in-band as `drops`
// notices carrying the connection's cumulative drop count.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.bus == nil {
		http.Error(w, "event streaming is disabled (run with -listen)", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported by this connection", http.StatusInternalServerError)
		return
	}
	after := ^uint64(0) // live-only by default
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		v, perr := strconv.ParseUint(lid, 10, 64)
		if perr != nil {
			http.Error(w, "Last-Event-ID: want a decimal event ID", http.StatusBadRequest)
			return
		}
		after = v
	}
	sub, replay, gap := s.bus.SubscribeFrom(after)
	defer s.bus.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "retry: 1000\n\n")
	if gap {
		// Events between the client's last ID and the ring's oldest
		// retained event are gone; say so instead of silently skipping.
		fmt.Fprintf(w, "event: gap\ndata: {\"resumed_after\":%d}\n\n", after)
	}
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()

	var notedDrops uint64
	for {
		select {
		case ev, open := <-sub.C():
			if !open {
				// Bus closed: the campaign is over and the process is
				// draining subscribers.
				fmt.Fprintf(w, "event: end\ndata: {}\n\n")
				fl.Flush()
				return
			}
			writeSSE(w, ev)
			if d := sub.Dropped(); d > notedDrops {
				notedDrops = d
				fmt.Fprintf(w, "event: drops\ndata: {\"dropped\":%d}\n\n", d)
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.quit:
			// Server shutdown: terminate the stream so Shutdown's drain
			// of in-flight requests can complete.
			return
		}
	}
}

// writeSSE frames one bus event as an SSE message. The bus ID doubles
// as the SSE event ID, which is what makes Last-Event-ID resumption
// line up with the retention ring.
func writeSSE(w io.Writer, ev events.Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, data)
}

func (s *Server) handleSchedule(w http.ResponseWriter, _ *http.Request) {
	if s.sched == nil {
		http.Error(w, "scheduler timeline is disabled (run with -listen or -schedule)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.sched.Snapshot())
}

// writeBusMetrics renders the event bus counters as gauges.
func writeBusMetrics(w io.Writer, st events.Stats) {
	fmt.Fprintf(w, "# HELP repro_events_published_total Events published on the campaign bus.\n")
	fmt.Fprintf(w, "# TYPE repro_events_published_total counter\n")
	fmt.Fprintf(w, "repro_events_published_total %d\n", st.Published)
	fmt.Fprintf(w, "# HELP repro_events_dropped_total Per-subscriber event deliveries lost to full buffers.\n")
	fmt.Fprintf(w, "# TYPE repro_events_dropped_total counter\n")
	fmt.Fprintf(w, "repro_events_dropped_total %d\n", st.Dropped)
	fmt.Fprintf(w, "# HELP repro_events_subscribers Current bus subscriptions.\n")
	fmt.Fprintf(w, "# TYPE repro_events_subscribers gauge\n")
	fmt.Fprintf(w, "repro_events_subscribers %d\n", st.Subscribers)
	fmt.Fprintf(w, "# HELP repro_events_retained Events currently replayable via Last-Event-ID.\n")
	fmt.Fprintf(w, "# TYPE repro_events_retained gauge\n")
	fmt.Fprintf(w, "repro_events_retained %d\n", st.Retained)
}

// writeSchedMetrics renders the live scheduler gauges.
func writeSchedMetrics(w io.Writer, s events.Schedule) {
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %v\n", name, v)
	}
	gauge("repro_sched_cells_total", "Cells announced to the scheduler.", s.Total)
	gauge("repro_sched_queue_depth", "Cells announced but not yet dispatched.", s.Queued)
	gauge("repro_sched_running", "Cells currently owned by a worker.", s.Running)
	gauge("repro_sched_completed", "Cells settled.", s.Completed)
	gauge("repro_sched_failed", "Cells settled with a failure record.", s.Failed)
	gauge("repro_sched_utilization", "Worker-pool busy fraction over the observed makespan (0..1).", fmt.Sprintf("%.6f", s.Utilization))
	gauge("repro_sched_avg_queue_ns", "Average announce-to-dispatch wait of settled cells.", s.AvgQueueNS)
	gauge("repro_sched_avg_run_ns", "Average dispatch-to-settle run time of settled cells.", s.AvgRunNS)
	gauge("repro_sched_eta_ns", "Estimated remaining campaign wall time.", s.ETANS)
}

// writeRuntimeMetrics renders the Go runtime gauges: goroutines, heap
// occupancy and GC activity, the process-health counterpart to the
// campaign series.
func writeRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP repro_go_goroutines Current goroutine count.\n")
	fmt.Fprintf(w, "# TYPE repro_go_goroutines gauge\n")
	fmt.Fprintf(w, "repro_go_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP repro_go_heap_alloc_bytes Bytes of allocated heap objects.\n")
	fmt.Fprintf(w, "# TYPE repro_go_heap_alloc_bytes gauge\n")
	fmt.Fprintf(w, "repro_go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP repro_go_heap_objects Number of allocated heap objects.\n")
	fmt.Fprintf(w, "# TYPE repro_go_heap_objects gauge\n")
	fmt.Fprintf(w, "repro_go_heap_objects %d\n", ms.HeapObjects)
	fmt.Fprintf(w, "# HELP repro_go_gc_cycles_total Completed GC cycles.\n")
	fmt.Fprintf(w, "# TYPE repro_go_gc_cycles_total counter\n")
	fmt.Fprintf(w, "repro_go_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(w, "# HELP repro_go_gc_pause_total_ns Cumulative GC stop-the-world pause time.\n")
	fmt.Fprintf(w, "# TYPE repro_go_gc_pause_total_ns counter\n")
	fmt.Fprintf(w, "repro_go_gc_pause_total_ns %d\n", ms.PauseTotalNs)
}
