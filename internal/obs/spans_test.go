package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// sampleFamily extracts the metric family a sample line belongs to:
// labels dropped, the histogram sample suffixes folded back onto the
// histogram's family name.
func sampleFamily(line string) string {
	name := line
	if i := strings.IndexAny(name, "{ "); i >= 0 {
		name = name[:i]
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		name = strings.TrimSuffix(name, suffix)
	}
	return name
}

// Every series the exposition emits must be preceded by its # HELP and
// # TYPE lines — scraped over the real campaign registry, so a new
// telemetry series without documentation fails here, not in a
// dashboard.
func TestWriteMetricsEverySeriesDocumented(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := &campaign.Runner{Workers: 4, Telemetry: reg, Spans: span.NewCollector()}
	if _, err := r.RunMatrix(); err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}

	var b strings.Builder
	WriteMetrics(&b, reg)
	out := b.String()
	helped, typed := map[string]bool{}, map[string]bool{}
	samples := 0
	for _, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		if f, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, doc, _ := strings.Cut(f, " ")
			if strings.TrimSpace(doc) == "" {
				t.Errorf("HELP line for %s carries no documentation", name)
			}
			helped[name] = true
			continue
		}
		if f, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(f, " ")
			if kind != "counter" && kind != "histogram" && kind != "gauge" {
				t.Errorf("TYPE line for %s declares unknown type %q", name, kind)
			}
			typed[name] = true
			continue
		}
		samples++
		fam := sampleFamily(line)
		if !helped[fam] {
			t.Errorf("sample %q emitted before its # HELP %s", line, fam)
		}
		if !typed[fam] {
			t.Errorf("sample %q emitted before its # TYPE %s", line, fam)
		}
	}
	if samples == 0 {
		t.Fatal("campaign registry exposed no samples")
	}
	// The RQ3 histogram must be among them, fed by the span layer.
	if !strings.Contains(out, "repro_detection_latency_events_count 102") {
		t.Errorf("detection-latency histogram missing or not fed by all 102 cells:\n%s", out)
	}
}

// helpFor must document every known family specifically, keeping the
// generic fallback for series it has never heard of.
func TestHelpForCoverage(t *testing.T) {
	for name, wantSpecific := range map[string]bool{
		"hypercall.errors":                  true,
		"hypercall.mmu_update":              true,
		"grant.map":                         true,
		"frames.alloc":                      true,
		telemetry.CellWallHistogram:         true,
		telemetry.DetectionLatencyHistogram: true,
		"completely.novel_series":           false,
	} {
		h := helpFor(name)
		if h == "" {
			t.Errorf("helpFor(%q) = empty", name)
		}
		generic := strings.HasPrefix(h, "Campaign telemetry series")
		if wantSpecific && generic {
			t.Errorf("helpFor(%q) fell through to the generic fallback", name)
		}
		if !wantSpecific && !generic {
			t.Errorf("helpFor(%q) = %q, want the generic fallback", name, h)
		}
	}
}

// /spans serves the collected forest as JSON with readable span kinds,
// and reports span collection disabled when no collector is installed.
func TestSpansEndpoint(t *testing.T) {
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()

	status, _, body := get(t, base+"/spans")
	if status != http.StatusNotFound || !strings.Contains(body, "-spans") {
		t.Errorf("/spans without a collector: status %d body %q, want 404 pointing at -spans", status, body)
	}

	c := span.NewCollector()
	r := &campaign.Runner{Workers: 1, Spans: c}
	if _, err := r.Run(campaign.Table3Versions()[0], "XSA-148-priv", campaign.ModeInjection); err != nil {
		t.Fatalf("Run: %v", err)
	}
	srv.SetSpans(c)

	status, ctype, body := get(t, base+"/spans")
	if status != http.StatusOK {
		t.Fatalf("/spans status %d: %s", status, body)
	}
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/spans content type %q", ctype)
	}
	var forest struct {
		Batches []struct {
			Name  string `json:"name"`
			Cells []struct {
				Cell  string `json:"cell"`
				Spans []struct {
					Kind string `json:"kind"`
					Name string `json:"name"`
				} `json:"spans"`
			} `json:"cells"`
		} `json:"batches"`
	}
	if err := json.Unmarshal([]byte(body), &forest); err != nil {
		t.Fatalf("/spans is not JSON: %v\n%s", err, body)
	}
	if len(forest.Batches) != 1 || len(forest.Batches[0].Cells) != 1 {
		t.Fatalf("/spans shape: %+v", forest)
	}
	cell := forest.Batches[0].Cells[0]
	if cell.Cell != "4.8/XSA-148-priv/injection" {
		t.Errorf("/spans cell = %q", cell.Cell)
	}
	kinds := map[string]bool{}
	for _, s := range cell.Spans {
		kinds[s.Kind] = true
	}
	for _, want := range []string{"cell", "phase", "hypercall", "mm_op", "audit"} {
		if !kinds[want] {
			t.Errorf("/spans cell carries no %q span:\n%s", want, body)
		}
	}
}
