package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// TestFlightRecorderDumpsFailedCell arms a seeded hypercall panic in
// one cell, runs the matrix under -continue-on-error semantics with
// salvage profiling, and checks the flight recorder wrote exactly that
// cell's event ring as a parseable JSONL dump.
func TestFlightRecorderDumpsFailedCell(t *testing.T) {
	const victim = "4.6/XSA-182-test/exploit"
	dir := t.TempDir()
	fr := &FlightRecorder{Dir: dir}
	r := &campaign.Runner{
		Workers:         4,
		ContinueOnError: true,
		SalvageProfiles: true,
		Faults:          faults.NewPlan(0, 0).ArmCell(victim, faults.SiteHypercallPanic, 1),
		Progress:        fr,
	}
	if _, err := r.RunMatrix(); err != nil {
		t.Fatalf("matrix under continue-on-error: %v", err)
	}

	for _, err := range fr.Errors() {
		t.Errorf("flight recorder error: %v", err)
	}
	dumps := fr.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps %v, want exactly the armed cell", len(dumps), dumps)
	}
	want := filepath.Join(dir, "flight-4.6-XSA-182-test-exploit.jsonl")
	if dumps[0] != want {
		t.Fatalf("dump path %q, want %q", dumps[0], want)
	}

	// Healthy cells must not leave dumps behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("flight dir holds %d files, want 1", len(entries))
	}

	// The dump is a real trace: parseable, non-empty, and every record
	// belongs to the failed cell.
	f, err := os.Open(want)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := telemetry.ReadTrace(f)
	if err != nil {
		t.Fatalf("flight dump does not parse: %v", err)
	}
	if len(records) == 0 {
		t.Fatal("flight dump is empty")
	}
	events := 0
	for _, rec := range records {
		if rec.Cell != victim {
			t.Errorf("record from cell %q in %s's dump", rec.Cell, victim)
		}
		if rec.Kind != telemetry.CellEndKind {
			events++
		}
	}
	if events == 0 {
		t.Error("flight dump carries no events, only the summary")
	}
}

// TestFlightRecorderRunIDNamespacesAndKeepsCollisions pins the dump
// naming contract: a run ID namespaces the file, and a second failure
// of the same cell — two consecutive failing runs of the same
// configuration dumping into the same directory — keeps both dumps
// instead of truncating the first.
func TestFlightRecorderRunIDNamespacesAndKeepsCollisions(t *testing.T) {
	const cell = "4.6/XSA-182-test/exploit"
	dir := t.TempDir()
	profile := &telemetry.CellProfile{Cell: cell}
	cerr := &campaign.CellError{Cell: cell, Class: "error", Message: "boom"}

	for run := 0; run < 2; run++ {
		fr := &FlightRecorder{Dir: dir, RunID: "f21da3650bd2e9ae"}
		fr.CellFinished(cell, time.Millisecond, profile, cerr)
		for _, err := range fr.Errors() {
			t.Errorf("run %d: flight recorder error: %v", run, err)
		}
		if dumps := fr.Dumps(); len(dumps) != 1 {
			t.Fatalf("run %d: got %d dumps %v", run, len(dumps), dumps)
		}
	}

	for _, want := range []string{
		"flight-f21da3650bd2e9ae-4.6-XSA-182-test-exploit.jsonl",
		"flight-f21da3650bd2e9ae-4.6-XSA-182-test-exploit-2.jsonl",
	} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing dump %s: %v", want, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("flight dir holds %d files, want both runs' dumps", len(entries))
	}
}

// TestFlightRecorderSkips pins the two no-dump cases: a clean cell
// (no error) and a hung/canceled cell (error but no salvaged profile,
// its goroutine was abandoned holding the recorder).
func TestFlightRecorderSkips(t *testing.T) {
	dir := t.TempDir()
	fr := &FlightRecorder{Dir: dir}
	profile := &telemetry.CellProfile{Cell: "4.6/x/exploit"}
	fr.CellFinished("4.6/x/exploit", time.Millisecond, profile, nil)
	fr.CellFinished("4.6/x/injection", time.Millisecond, nil,
		&campaign.CellError{Cell: "4.6/x/injection", Class: "hang", Message: "watchdog"})
	if dumps := fr.Dumps(); len(dumps) != 0 {
		t.Errorf("unexpected dumps %v", dumps)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("flight dir not empty: %d files", len(entries))
	}
}
