package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/ledger"
)

// The run-record endpoints. When the campaign runs with -ledger, the
// server exposes the store's history:
//
//	/runs               — run metadata, newest first
//	/runs/{id}          — one run's settled canonical record
//	/runs/diff?a=&b=    — canonical text diff of two records
//
// Records are rebuilt from the journal on each request, so /runs/{id}
// of the live campaign shows exactly the cells that have settled so
// far — the same crash-consistent view a resume would start from.

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	if s.ledger == nil {
		http.Error(w, "run ledger is disabled (run with -ledger)", http.StatusNotFound)
		return
	}
	runs, err := s.ledger.Runs()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(runs)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		http.Error(w, "run ledger is disabled (run with -ledger)", http.StatusNotFound)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/runs/")
	if id == "" || strings.Contains(id, "/") || strings.Contains(id, ".") {
		http.Error(w, "want /runs/{run-id}", http.StatusBadRequest)
		return
	}
	rec, err := s.ledger.Load(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rec)
}

func (s *Server) handleRunsDiff(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		http.Error(w, "run ledger is disabled (run with -ledger)", http.StatusNotFound)
		return
	}
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if a == "" || b == "" {
		http.Error(w, "want /runs/diff?a={run-id}&b={run-id}", http.StatusBadRequest)
		return
	}
	recA, err := s.ledger.Load(a)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	recB, err := s.ledger.Load(b)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, ledger.Diff(recA, recB).Render())
}

// writeRunInfo renders the repro_run_info gauge: always 1, the run's
// content-addressed identity in the label (the build_info idiom), so
// scrapes from concurrent campaigns are distinguishable.
func writeRunInfo(w io.Writer, runID string) {
	fmt.Fprintf(w, "# HELP repro_run_info Content-addressed identity of the serving campaign run (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE repro_run_info gauge\n")
	fmt.Fprintf(w, "repro_run_info{run_id=%q} 1\n", runID)
}

// writeLedgerMetrics renders the latest recorded run's summary gauges
// from the attached store: expected and completed cell counts plus the
// failure count, labelled by run ID.
func writeLedgerMetrics(w io.Writer, st *ledger.Store) {
	runs, err := st.Runs()
	if err != nil || len(runs) == 0 {
		return
	}
	latest := runs[0]
	rec, err := st.Load(latest.RunID)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "# HELP repro_last_run_cells Expected cell count of the latest recorded run.\n")
	fmt.Fprintf(w, "# TYPE repro_last_run_cells gauge\n")
	fmt.Fprintf(w, "repro_last_run_cells{run_id=%q} %d\n", rec.RunID, rec.Cells)
	fmt.Fprintf(w, "# HELP repro_last_run_completed Settled (non-canceled) cells of the latest recorded run.\n")
	fmt.Fprintf(w, "# TYPE repro_last_run_completed gauge\n")
	fmt.Fprintf(w, "repro_last_run_completed{run_id=%q} %d\n", rec.RunID, rec.Completed)
	fmt.Fprintf(w, "# HELP repro_last_run_failed Failed cells of the latest recorded run.\n")
	fmt.Fprintf(w, "# TYPE repro_last_run_failed gauge\n")
	fmt.Fprintf(w, "repro_last_run_failed{run_id=%q} %d\n", rec.RunID, rec.Failed())
}
