// Package obs is the live campaign observability layer: an HTTP server
// exposing a running campaign's metrics registry and per-cell progress
// (Prometheus text on /metrics, JSON on /cells, liveness on /healthz),
// plus a flight recorder that dumps a failing cell's bounded event ring
// to disk the moment the engine settles the failure. Both plug into the
// campaign engine through the campaign.Progress hook and cost nothing
// when not installed.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/events"
	"repro/internal/ledger"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// CellStatus is a cell's live lifecycle state.
type CellStatus string

// Cell lifecycle states.
const (
	// StatusPending means the cell is announced but not yet dispatched.
	StatusPending CellStatus = "pending"
	// StatusRunning means a worker owns the cell right now.
	StatusRunning CellStatus = "running"
	// StatusDone means the cell finished cleanly.
	StatusDone CellStatus = "done"
	// StatusError means the cell settled with a failure record.
	StatusError CellStatus = "error"
)

// CellState is one cell's live status, the /cells wire format.
type CellState struct {
	Cell   string     `json:"cell"`
	Status CellStatus `json:"status"`
	// WallNS is the cell's wall time once settled.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Class and Error describe the failure for StatusError cells.
	Class string `json:"class,omitempty"`
	Error string `json:"error,omitempty"`
	// Events and Dropped carry the cell's telemetry activity — emitted
	// event count and ring/sink losses — when the runner profiled it.
	Events  uint64 `json:"events,omitempty"`
	Dropped uint64 `json:"dropped,omitempty"`
}

// Server is the observability HTTP server. It implements
// campaign.Progress; install it on the Runner and Listen before the
// campaign starts. All methods are safe for concurrent use.
type Server struct {
	reg    *telemetry.Registry
	spans  *span.Collector
	cov    *coverage.Collector
	runID  string
	ledger *ledger.Store
	bus    *events.Bus
	sched  *events.Timeline

	mu    sync.Mutex
	cells map[string]*CellState
	order []string

	srv  *http.Server
	ln   net.Listener
	quit chan struct{}
	stop sync.Once
}

// NewServer creates a server over the given registry (nil is allowed:
// /metrics then exposes no series until cells carry profiles).
func NewServer(reg *telemetry.Registry) *Server {
	s := &Server{reg: reg, cells: make(map[string]*CellState), quit: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/cells", s.handleCells)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/coverage", s.handleCoverage)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/runs/", s.handleRun)
	mux.HandleFunc("/runs/diff", s.handleRunsDiff)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/schedule", s.handleSchedule)
	// The pprof handlers normally self-register on DefaultServeMux;
	// mount them explicitly since this server owns its own mux.
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	s.srv = &http.Server{Handler: mux}
	return s
}

// SetRunID installs the campaign's content-addressed run identity;
// /healthz reports it and /metrics exports the repro_run_info gauge so
// scrapes from concurrent campaigns are distinguishable. Call before
// Listen.
func (s *Server) SetRunID(id string) { s.runID = id }

// SetLedger installs the campaign's run-record store; the /runs
// endpoints serve its records (live — the journal is written as cells
// settle). Call before Listen; nil (the default) makes /runs report
// that the ledger is disabled.
func (s *Server) SetLedger(st *ledger.Store) { s.ledger = st }

// SetSpans installs the campaign's span collector; /spans serves its
// live forest. Call before Listen; nil (the default) makes /spans
// report that span collection is disabled.
func (s *Server) SetSpans(c *span.Collector) { s.spans = c }

// SetCoverage installs the campaign's coverage collector; /coverage
// serves its live report and /metrics gains coverage_edges_total per
// family. Call before Listen; nil (the default) makes /coverage report
// that coverage is disabled.
func (s *Server) SetCoverage(c *coverage.Collector) { s.cov = c }

// Listen binds the address and starts serving in the background,
// returning the bound address (useful with ":0"). Call Shutdown to
// stop.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	go func() {
		// ErrServerClosed is the orderly-shutdown sentinel; anything
		// else would have surfaced to clients already.
		_ = s.srv.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Shutdown drains in-flight requests and stops the server. SSE
// subscribers are actively terminated first — Shutdown waits for
// in-flight handlers, and a streaming handler would otherwise hold its
// connection open until the client walked away.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stop.Do(func() { close(s.quit) })
	return s.srv.Shutdown(ctx)
}

// BatchStarted implements campaign.Progress: the announced cells seed
// the /cells listing as pending, in cell order.
func (s *Server) BatchStarted(cells []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range cells {
		s.track(id)
	}
}

// CellStarted implements campaign.Progress.
func (s *Server) CellStarted(cell string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.track(cell).Status = StatusRunning
}

// CellFinished implements campaign.Progress. The profile, when the
// runner salvaged one, enriches /cells with the cell's live telemetry
// activity: how many events it emitted and how many its bounded ring
// (or streaming sink) lost.
func (s *Server) CellFinished(cell string, wall time.Duration, profile *telemetry.CellProfile, cerr *campaign.CellError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.track(cell)
	st.WallNS = wall.Nanoseconds()
	if profile != nil {
		st.Events = uint64(len(profile.Events)) + profile.DroppedEvents
		st.Dropped = profile.DroppedEvents
	}
	if cerr != nil {
		st.Status = StatusError
		st.Class = string(cerr.Class)
		st.Error = cerr.Message
		return
	}
	st.Status = StatusDone
}

// track returns the cell's state, creating it as pending on first
// sight (single cells run via Runner.Run never see a BatchStarted).
// Callers hold s.mu.
func (s *Server) track(cell string) *CellState {
	if st, ok := s.cells[cell]; ok {
		return st
	}
	st := &CellState{Cell: cell, Status: StatusPending}
	s.cells[cell] = st
	s.order = append(s.order, cell)
	return st
}

// snapshot copies the cell states in announcement order.
func (s *Server) snapshot() []CellState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CellState, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.cells[id])
	}
	return out
}

// HealthInfo is the /healthz wire format: liveness plus the build
// identity, so a scrape can tell which binary is answering.
type HealthInfo struct {
	Status           string `json:"status"`
	Version          string `json:"version"`
	GoVersion        string `json:"go_version"`
	SnapshotsEnabled bool   `json:"snapshots_enabled"`
	// RunID is the campaign's content-addressed run identity, empty when
	// the serving binary did not compute one.
	RunID string `json:"run_id,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(HealthInfo{
		Status:           "ok",
		Version:          buildinfo.Version,
		GoVersion:        buildinfo.GoVersion(),
		SnapshotsEnabled: campaign.SnapshotsEnabled(),
		RunID:            s.runID,
	})
}

func (s *Server) handleCoverage(w http.ResponseWriter, _ *http.Request) {
	if s.cov == nil {
		http.Error(w, "coverage collection is disabled (run with -coverage)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.cov.Report())
}

func (s *Server) handleCells(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.snapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteBuildInfo(w)
	if s.runID != "" {
		writeRunInfo(w, s.runID)
	}
	WriteMetrics(w, s.reg)
	if s.cov != nil {
		writeCoverageMetrics(w, s.cov.Report())
	}
	if s.ledger != nil {
		writeLedgerMetrics(w, s.ledger)
	}
	if s.bus != nil {
		writeBusMetrics(w, s.bus.Stats())
	}
	if s.sched != nil {
		writeSchedMetrics(w, s.sched.Snapshot())
	}
	writeRuntimeMetrics(w)
}

// WriteBuildInfo renders the repro_build_info gauge: always 1, with
// the build identity carried in the labels (the node_exporter idiom).
func WriteBuildInfo(w io.Writer) {
	fmt.Fprintf(w, "# HELP repro_build_info Build identity of the serving binary (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE repro_build_info gauge\n")
	fmt.Fprintf(w, "repro_build_info{version=%q,goversion=%q,snapshots=%q} 1\n",
		buildinfo.Version, buildinfo.GoVersion(), fmt.Sprint(campaign.SnapshotsEnabled()))
}

// writeCoverageMetrics renders the live coverage union as
// repro_coverage_edges_total, one series per edge family.
func writeCoverageMetrics(w io.Writer, rep *coverage.Report) {
	fmt.Fprintf(w, "# HELP repro_coverage_edges_total Distinct coverage edges observed, by family.\n")
	fmt.Fprintf(w, "# TYPE repro_coverage_edges_total gauge\n")
	for _, f := range rep.Families {
		fmt.Fprintf(w, "repro_coverage_edges_total{family=%q} %d\n", f.Family, f.Edges)
	}
}

// metricName folds a registry counter/histogram name into the
// Prometheus name space: "hypercall.mmu_update" -> repro_hypercall_mmu_update.
func metricName(name string) string {
	var b strings.Builder
	b.WriteString("repro_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// helpFor returns the HELP text for a registry series, keyed by the
// raw (pre-fold) registry name. Families share a prefix — every
// "hypercall.<name>" counter is a dispatch count — so the lookup is
// exact-name first, longest-prefix second, with a generic fallback so
// no series is ever exposed without documentation.
func helpFor(name string) string {
	exact := map[string]string{
		"hypercall.errors":      "Hypercall dispatches that returned an error.",
		"frames.alloc":          "Machine frames claimed from the allocator.",
		"frames.free":           "Machine frames returned to the allocator.",
		"pagetype.get":          "Page-type references taken (get_page_type).",
		"pagetype.put":          "Page-type references dropped (put_page_type).",
		"validation.reject":     "Page-table entries rejected by validation.",
		"walk.policy_denied":    "Page-table walks denied by the version's policy.",
		"walk.fault":            "Page-table walks that faulted.",
		"injector.ops":          "Injector primitive operations (arbitrary_access/state_inject).",
		"injector.transitions":  "Injector state-machine transitions.",
		"monitor.evidence":      "Evidence lines recorded by the monitor's audit.",
		"scenario.steps":        "Scenario transcript steps executed.",
		"telemetry.sink_errors": "Telemetry events the streaming sink failed to write.",
		telemetry.CellWallHistogram: "Per-cell wall time in nanoseconds " +
			"(not deterministic across runs).",
		telemetry.DetectionLatencyHistogram: "Per-cell detection latency in virtual-time events: " +
			"attack-phase end to first monitor evidence (RQ3).",
	}
	if h, ok := exact[name]; ok {
		return h
	}
	prefixes := []struct{ prefix, help string }{
		{"hypercall.", "Dispatches of this hypercall."},
		{"grant.", "Grant-table operations of this kind."},
		{"domctl.", "Domctl operations of this kind."},
		{"frames.", "Machine frame-allocator activity."},
		{"monitor.", "Monitor audit activity."},
		{"injector.", "Injector activity."},
	}
	for _, p := range prefixes {
		if strings.HasPrefix(name, p.prefix) {
			return p.help
		}
	}
	return "Campaign telemetry series " + name + "."
}

// WriteMetrics renders the registry in the Prometheus text exposition
// format: every counter as a _total series, every histogram with
// cumulative buckets, sum, count, and estimated p50/p99 quantile
// gauges. Every series is preceded by its # HELP and # TYPE lines.
// Output is deterministic (series sorted by name).
func WriteMetrics(w io.Writer, reg *telemetry.Registry) {
	for _, cv := range reg.Snapshot() {
		name := metricName(cv.Name)
		fmt.Fprintf(w, "# HELP %s_total %s\n", name, helpFor(cv.Name))
		fmt.Fprintf(w, "# TYPE %s_total counter\n", name)
		fmt.Fprintf(w, "%s_total %d\n", name, cv.Value)
	}
	for _, h := range reg.Histograms() {
		name := metricName(h.Name)
		fmt.Fprintf(w, "# HELP %s %s\n", name, helpFor(h.Name))
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			if b.UpperBound == ^uint64(0) {
				continue // folded into +Inf below
			}
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.UpperBound, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
		fmt.Fprintf(w, "# HELP %s_quantile Estimated quantiles of %s.\n", name, metricName(h.Name))
		fmt.Fprintf(w, "# TYPE %s_quantile gauge\n", name)
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.99", 0.99}} {
			fmt.Fprintf(w, "%s_quantile{quantile=\"%s\"} %d\n", name, q.label, h.Quantile(q.q))
		}
	}
}
