package obs

// Route-level contract of the observability server: status codes,
// content types, and error bodies for every endpoint, including the
// awkward states — scraped before the first batch, optional collectors
// absent, unknown paths.

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/buildinfo"
	"repro/internal/coverage"
	"repro/internal/telemetry"
)

// TestRoutesAndContentTypes walks every route on a freshly started
// server — no batch announced, no optional collectors installed.
func TestRoutesAndContentTypes(t *testing.T) {
	srv := NewServer(telemetry.NewRegistry())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()

	// /cells before the first batch: an empty JSON list, not null and
	// not an error — a dashboard polling from t=0 must parse cleanly.
	status, ctype, body := get(t, base+"/cells")
	if status != 200 || !strings.Contains(ctype, "application/json") {
		t.Errorf("/cells: status %d, content type %q", status, ctype)
	}
	var cells []CellState
	if err := json.Unmarshal([]byte(body), &cells); err != nil {
		t.Errorf("/cells before first batch is not a JSON list: %v\n%s", err, body)
	}
	if len(cells) != 0 {
		t.Errorf("/cells before first batch = %v, want empty", cells)
	}
	if !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Errorf("/cells before first batch = %q, want a JSON array (not null)", body)
	}

	// /spans without a collector: 404 naming the flag that enables it.
	status, _, body = get(t, base+"/spans")
	if status != 404 || !strings.Contains(body, "-spans") {
		t.Errorf("/spans disabled: status %d body %q, want 404 naming -spans", status, body)
	}

	// /coverage without a collector: same shape.
	status, _, body = get(t, base+"/coverage")
	if status != 404 || !strings.Contains(body, "-coverage") {
		t.Errorf("/coverage disabled: status %d body %q, want 404 naming -coverage", status, body)
	}

	// Unknown route: 404 from the mux.
	if status, _, _ = get(t, base+"/nope"); status != 404 {
		t.Errorf("/nope: status %d, want 404", status)
	}

	// /healthz: JSON liveness with the build identity.
	status, ctype, body = get(t, base+"/healthz")
	if status != 200 || !strings.Contains(ctype, "application/json") {
		t.Errorf("/healthz: status %d, content type %q", status, ctype)
	}
	var hi HealthInfo
	if err := json.Unmarshal([]byte(body), &hi); err != nil {
		t.Fatalf("/healthz is not JSON: %v\n%s", err, body)
	}
	if hi.Status != "ok" || hi.Version != buildinfo.Version || hi.GoVersion == "" {
		t.Errorf("/healthz = %+v, want status ok with build identity", hi)
	}

	// /metrics: Prometheus text exposition carrying the build gauge
	// even when no cell has run yet.
	status, ctype, body = get(t, base+"/metrics")
	if status != 200 || !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics: status %d, content type %q", status, ctype)
	}
	if !strings.Contains(body, `repro_build_info{version="`+buildinfo.Version+`"`) {
		t.Errorf("/metrics missing repro_build_info gauge:\n%s", body)
	}
	if strings.Contains(body, "repro_coverage_edges_total") {
		t.Errorf("/metrics exposes coverage series without a collector:\n%s", body)
	}
}

// TestCoverageEndpoint installs a coverage collector, feeds it one
// cell, and checks /coverage serves the live report and /metrics gains
// the per-family edge gauge.
func TestCoverageEndpoint(t *testing.T) {
	srv := NewServer(telemetry.NewRegistry())
	col := coverage.NewCollector()
	srv.SetCoverage(col)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()

	m := coverage.NewMap()
	m.Hypercall(1, "mmu_update", false)
	m.GrantOp("map")
	col.StartBatch([]string{"4.6/x/exploit"})
	col.FinishCell("4.6/x/exploit", m)

	status, ctype, body := get(t, base+"/coverage")
	if status != 200 || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/coverage: status %d, content type %q", status, ctype)
	}
	var rep coverage.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/coverage is not JSON: %v\n%s", err, body)
	}
	if rep.TotalEdges != 2 || len(rep.Cells) != 1 {
		t.Errorf("/coverage report = %d edges across %d cells, want 2 across 1", rep.TotalEdges, len(rep.Cells))
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("/coverage report fails self-verification: %v", err)
	}

	_, _, metrics := get(t, base+"/metrics")
	for _, want := range []string{
		`repro_coverage_edges_total{family="hypercall"} 1`,
		`repro_coverage_edges_total{family="grant"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}
