package obs

// Contract of the run-ledger endpoints: /runs listing, /runs/{id}
// records, /runs/diff rendering, the run_id in /healthz, and the
// repro_run_info / last-run gauges on /metrics.

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/ledger"
	"repro/internal/telemetry"
)

// seedStore writes one tiny settled run into a fresh store and returns
// the store with its run ID.
func seedStore(t *testing.T) (*ledger.Store, string) {
	t.Helper()
	store, err := ledger.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ledger.Config{
		RegistryDigest: "0123456789abcdef",
		Versions:       []string{"4.6"},
		BuildVersion:   "test",
	}
	w, err := store.NewWriter(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Import([]*ledger.Entry{
		{Scenario: "XSA-212-crash", Version: "4.6", Mode: "exploit",
			Verdict: &ledger.VerdictRecord{ErroneousState: true, SecurityViolation: true}},
		{Scenario: "XSA-212-crash", Version: "4.6", Mode: "injection",
			Verdict: &ledger.VerdictRecord{ErroneousState: true, SecurityViolation: true}},
	})
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return store, cfg.RunID()
}

func TestRunsEndpoints(t *testing.T) {
	store, runID := seedStore(t)
	srv := NewServer(telemetry.NewRegistry())
	srv.SetLedger(store)
	srv.SetRunID(runID)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()

	// /runs: the run history as JSON.
	status, ctype, body := get(t, base+"/runs")
	if status != 200 || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/runs: status %d, content type %q", status, ctype)
	}
	var runs []ledger.Run
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/runs is not JSON: %v\n%s", err, body)
	}
	if len(runs) != 1 || runs[0].RunID != runID {
		t.Errorf("/runs = %+v, want the seeded run %s", runs, runID)
	}

	// /runs/{id}: the settled record, rebuilt from the journal.
	status, ctype, body = get(t, base+"/runs/"+runID)
	if status != 200 || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/runs/{id}: status %d, content type %q", status, ctype)
	}
	var rec ledger.Record
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatalf("/runs/{id} is not JSON: %v\n%s", err, body)
	}
	if rec.RunID != runID || rec.Completed != 2 {
		t.Errorf("/runs/{id} = run %s with %d cells, want %s with 2", rec.RunID, rec.Completed, runID)
	}
	if err := rec.Verify(); err != nil {
		t.Errorf("/runs/{id} record fails verification: %v", err)
	}

	// Unknown run: 404.
	if status, _, _ = get(t, base+"/runs/ffffffffffffffff"); status != 404 {
		t.Errorf("/runs/unknown: status %d, want 404", status)
	}

	// /runs/diff of a run against itself: canonical text, no differences.
	status, ctype, body = get(t, base+"/runs/diff?a="+runID+"&b="+runID)
	if status != 200 || !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/runs/diff: status %d, content type %q", status, ctype)
	}
	if !strings.Contains(body, "no differences") {
		t.Errorf("/runs/diff self-diff:\n%s", body)
	}
	if status, _, body = get(t, base+"/runs/diff?a="+runID); status != 400 {
		t.Errorf("/runs/diff without b: status %d body %q, want 400", status, body)
	}

	// /healthz carries the serving run's identity.
	_, _, body = get(t, base+"/healthz")
	var hi HealthInfo
	if err := json.Unmarshal([]byte(body), &hi); err != nil {
		t.Fatal(err)
	}
	if hi.RunID != runID {
		t.Errorf("/healthz run_id = %q, want %q", hi.RunID, runID)
	}

	// /metrics exposes the run-info gauge and the last-run summary.
	_, _, metrics := get(t, base+"/metrics")
	for _, want := range []string{
		`repro_run_info{run_id="` + runID + `"} 1`,
		`repro_last_run_cells{run_id="` + runID + `"} 2`,
		`repro_last_run_completed{run_id="` + runID + `"} 2`,
		`repro_last_run_failed{run_id="` + runID + `"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestRunsDisabled pins the no-ledger shape: 404 naming the flag, no
// run gauges on /metrics, no run_id in /healthz.
func TestRunsDisabled(t *testing.T) {
	srv := NewServer(telemetry.NewRegistry())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()

	for _, path := range []string{"/runs", "/runs/abc", "/runs/diff?a=x&b=y"} {
		status, _, body := get(t, base+path)
		if status != 404 || !strings.Contains(body, "-ledger") {
			t.Errorf("%s disabled: status %d body %q, want 404 naming -ledger", path, status, body)
		}
	}
	_, _, metrics := get(t, base+"/metrics")
	if strings.Contains(metrics, "repro_run_info") || strings.Contains(metrics, "repro_last_run") {
		t.Errorf("/metrics exposes run gauges without a ledger:\n%s", metrics)
	}
	_, _, body := get(t, base+"/healthz")
	if strings.Contains(body, "run_id") {
		t.Errorf("/healthz carries run_id without one set: %s", body)
	}
}
