package span

import (
	"repro/internal/telemetry"
)

// RQ3 asks whether injected intrusions can stand in for real attacks
// when evaluating detection mechanisms. That requires knowing *when*,
// along the causal chain from injection to verdict, the monitor first
// observed the erroneous state — a latency. Wall-clock latency is
// meaningless in a deterministic simulator; what is meaningful (and
// reproducible) is the virtual-time distance: how many events elapsed
// between the end of the attack phase (injection complete, or the
// exploit's final trigger) and the first verdict_evidence event the
// monitor recorded.

// Latency is one cell's detection-latency measurement.
type Latency struct {
	// Found reports whether the monitor recorded any evidence at all.
	Found bool `json:"found"`
	// TriggerV is the virtual time at which the attack phase ended
	// (injection complete / exploit trigger done).
	TriggerV uint64 `json:"trigger_v"`
	// EvidenceV is the virtual time of the first verdict_evidence event.
	EvidenceV uint64 `json:"evidence_v"`
	// Events is the virtual-time distance EvidenceV - TriggerV: how many
	// events after state induction the detection fired. Negative only
	// when evidence preceded the trigger (a crash detected mid-attack).
	Events int64 `json:"events"`
}

// DetectionLatency measures a cell's detection latency from its span
// tree (for the attack-phase boundary) and its recorded event stream
// (for the first monitor evidence). Returns Found=false when the tree
// has no attack phase or the monitor recorded no evidence — a cell that
// failed before assessment, or a chaos-faulted cell.
func DetectionLatency(t *Tree, evs []telemetry.Event) Latency {
	var lat Latency
	trigger, ok := t.PhaseEnd(PhaseInject)
	if !ok {
		trigger, ok = t.PhaseEnd(PhaseExploit)
	}
	if !ok {
		return lat
	}
	lat.TriggerV = trigger
	for i := range evs {
		if evs[i].Kind != telemetry.KindVerdictEvidence {
			continue
		}
		lat.Found = true
		lat.EvidenceV = evs[i].Seq
		lat.Events = int64(lat.EvidenceV) - int64(lat.TriggerV)
		break
	}
	return lat
}
