package span

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// CellSpans is one settled cell's contribution to the forest: its span
// tree, the worker that ran it, its wall placement, and its detection
// latency. Trees are nil for cells the engine had to abandon (hangs,
// cancellations) — their goroutines own the tree and may still be
// running, so the collector records only the classification.
type CellSpans struct {
	// Cell is the "version/use-case/mode" identity.
	Cell string `json:"cell"`
	// Worker is the 0-based worker-pool index that ran the cell.
	Worker int `json:"worker"`
	// OffsetNS is the cell's wall start relative to the forest epoch.
	OffsetNS int64 `json:"offset_ns"`
	// WallNS is the cell's settled wall duration.
	WallNS int64 `json:"wall_ns"`
	// Class is the failure classification for failed cells, "" on
	// success.
	Class string `json:"class,omitempty"`
	// Latency is the cell's detection-latency measurement.
	Latency Latency `json:"latency"`
	// Tree is the cell's span tree, nil for abandoned cells.
	Tree *Tree `json:"-"`
}

// Batch is one dispatched batch of cells, in cell (dispatch) order.
type Batch struct {
	// Name identifies the batch within the run ("batch01", ...).
	Name string `json:"name"`
	// Cells are the settled cells, in the batch's announced cell order.
	// Unsettled cells (still running, or never dispatched) are nil.
	Cells []*CellSpans `json:"cells"`

	index map[string]int
}

// Collector assembles a campaign's span forest. It is safe for
// concurrent use by campaign workers; the runner notifies it as batches
// are announced and cells settle. The zero value is NOT usable — build
// one with NewCollector.
type Collector struct {
	mu      sync.Mutex
	epoch   time.Time
	batches []*Batch
}

// NewCollector creates an empty collector whose wall epoch is now.
func NewCollector() *Collector {
	return &Collector{epoch: time.Now()}
}

// Epoch returns the collector's wall epoch.
func (c *Collector) Epoch() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// StartBatch announces a batch's cells in dispatch order. Cells settle
// into the most recently announced batch (batches never overlap — the
// runner's experiments are sequential).
func (c *Collector) StartBatch(cells []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := &Batch{
		Name:  fmt.Sprintf("batch%02d", len(c.batches)+1),
		Cells: make([]*CellSpans, len(cells)),
		index: make(map[string]int, len(cells)),
	}
	for i, id := range cells {
		// First unsettled slot wins on duplicate ids (a batch never
		// dispatches the same cell twice, but be defensive).
		if _, ok := b.index[id]; !ok {
			b.index[id] = i
		}
	}
	c.batches = append(c.batches, b)
}

// FinishCell records a settled cell. A cell settling outside any
// announced batch (Runner.Run single-cell paths) gets an implicit
// one-cell batch.
func (c *Collector) FinishCell(cs *CellSpans) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.batches); n > 0 {
		b := c.batches[n-1]
		if i, ok := b.index[cs.Cell]; ok && b.Cells[i] == nil {
			b.Cells[i] = cs
			return
		}
	}
	c.batches = append(c.batches, &Batch{
		Name:  fmt.Sprintf("batch%02d", len(c.batches)+1),
		Cells: []*CellSpans{cs},
		index: map[string]int{cs.Cell: 0},
	})
}

// Forest snapshots the collected batches. Batches and cells are in
// deterministic dispatch order; unsettled cells are dropped.
func (c *Collector) Forest() *Forest {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := &Forest{Epoch: c.epoch}
	for _, b := range c.batches {
		nb := Batch{Name: b.Name}
		for _, cs := range b.Cells {
			if cs != nil {
				nb.Cells = append(nb.Cells, cs)
			}
		}
		if len(nb.Cells) > 0 {
			f.Batches = append(f.Batches, nb)
		}
	}
	return f
}

// Forest is a snapshot of a campaign's span trees: campaign → batch →
// cell → the per-cell trees.
type Forest struct {
	// Epoch is the wall origin every OffsetNS is relative to.
	Epoch time.Time `json:"epoch"`
	// Batches are the dispatched batches in order.
	Batches []Batch `json:"batches"`
}

// Cells returns every settled cell in batch-then-cell order.
func (f *Forest) Cells() []*CellSpans {
	var out []*CellSpans
	for i := range f.Batches {
		out = append(out, f.Batches[i].Cells...)
	}
	return out
}

// Check runs the tree invariants over every collected cell.
func (f *Forest) Check() error {
	for _, cs := range f.Cells() {
		if err := cs.Tree.Check(); err != nil {
			return err
		}
	}
	return nil
}

// PhaseTotals sums the virtual cost (event-count span width) of each
// phase across the forest's cells. Deterministic at any worker count.
func (f *Forest) PhaseTotals() map[string]uint64 {
	out := make(map[string]uint64)
	for _, cs := range f.Cells() {
		for _, s := range cs.Tree.Spans() {
			if s.Kind == KindPhase {
				out[s.Name] += s.EndV - s.StartV
			}
		}
	}
	return out
}

// CellCost is one cell's virtual cost decomposition, the unit of the
// critical-path analysis.
type CellCost struct {
	// Cell is the cell identity.
	Cell string `json:"cell"`
	// TotalV is the cell root span's virtual width (total events).
	TotalV uint64 `json:"total_v"`
	// PhaseV maps phase name to virtual width.
	PhaseV map[string]uint64 `json:"phase_v"`
}

// cost decomposes one settled cell.
func (cs *CellSpans) cost() CellCost {
	cc := CellCost{Cell: cs.Cell, PhaseV: make(map[string]uint64)}
	for _, s := range cs.Tree.Spans() {
		switch {
		case s.Kind == KindCell:
			cc.TotalV = s.EndV - s.StartV
		case s.Kind == KindPhase:
			cc.PhaseV[s.Name] += s.EndV - s.StartV
		}
	}
	return cc
}

// CriticalPath is the deterministic critical-path analysis of one batch
// on an N-worker pool: which chain of cells bounds the campaign's
// completion in virtual time, and by how much.
//
// The engine's real scheduler is a work-queue — cells go to whichever
// worker frees up first, so the wall-time assignment is racy. The
// analysis replays the same policy deterministically in virtual time:
// cells dispatch in batch order, each to the worker with the least
// accumulated virtual cost (ties to the lowest worker index). The chain
// on the most loaded simulated worker is the critical path: no schedule
// of this batch at this pool size finishes before its last cell's chain
// completes.
type CriticalPath struct {
	// Batch is the analyzed batch's name.
	Batch string `json:"batch"`
	// Workers is the simulated pool size.
	Workers int `json:"workers"`
	// TotalV is the summed virtual cost of every cell in the batch.
	TotalV uint64 `json:"total_v"`
	// MakespanV is the simulated completion time: the critical chain's
	// accumulated virtual cost.
	MakespanV uint64 `json:"makespan_v"`
	// Chain is the bounding worker's cell chain, in dispatch order.
	Chain []CellCost `json:"chain"`
	// Efficiency is TotalV / (Workers * MakespanV): 1.0 means the pool
	// never idles in virtual time.
	Efficiency float64 `json:"efficiency"`
}

// AnalyzeCriticalPath runs the deterministic critical-path analysis for
// a batch at the given pool size (clamped to [1, len(cells)]).
func AnalyzeCriticalPath(b *Batch, workers int) CriticalPath {
	cells := make([]*CellSpans, 0, len(b.Cells))
	for _, cs := range b.Cells {
		if cs != nil && cs.Tree != nil {
			cells = append(cells, cs)
		}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(cells) && len(cells) > 0 {
		workers = len(cells)
	}
	cp := CriticalPath{Batch: b.Name, Workers: workers}
	load := make([]uint64, workers)
	chains := make([][]CellCost, workers)
	for _, cs := range cells {
		cc := cs.cost()
		cp.TotalV += cc.TotalV
		// Least-loaded worker, lowest index on ties.
		w := 0
		for i := 1; i < workers; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		load[w] += cc.TotalV
		chains[w] = append(chains[w], cc)
	}
	for i := range load {
		if load[i] > cp.MakespanV {
			cp.MakespanV = load[i]
			cp.Chain = chains[i]
		}
	}
	if cp.MakespanV > 0 {
		cp.Efficiency = float64(cp.TotalV) / (float64(workers) * float64(cp.MakespanV))
	}
	return cp
}

// ObservedCriticalPath reconstructs the wall-time critical chain of a
// batch from the workers cells actually ran on: the worker whose cells
// accumulated the most wall time, with its chain in settle order. Wall
// times are not deterministic; this is live-diagnosis output, never
// golden-pinned.
func ObservedCriticalPath(b *Batch) (worker int, wallNS int64, chain []string) {
	type wk struct {
		wall  int64
		cells []*CellSpans
	}
	byWorker := make(map[int]*wk)
	for _, cs := range b.Cells {
		if cs == nil {
			continue
		}
		w := byWorker[cs.Worker]
		if w == nil {
			w = &wk{}
			byWorker[cs.Worker] = w
		}
		w.wall += cs.WallNS
		w.cells = append(w.cells, cs)
	}
	worker = -1
	for id, w := range byWorker {
		if w.wall > wallNS || (w.wall == wallNS && (worker < 0 || id < worker)) {
			worker, wallNS = id, w.wall
		}
	}
	if worker < 0 {
		return -1, 0, nil
	}
	cells := byWorker[worker].cells
	sort.SliceStable(cells, func(i, j int) bool { return cells[i].OffsetNS < cells[j].OffsetNS })
	for _, cs := range cells {
		chain = append(chain, cs.Cell)
	}
	return worker, wallNS, chain
}

// Canonical renders the forest's deterministic structure: batch and
// cell headers, then each tree's spans in pre-order with kind, name and
// virtual interval, indented by depth. Wall times, worker assignment
// and epoch are excluded, so the rendering is byte-identical at any
// worker count — it is the golden-pin and digest surface.
func (f *Forest) Canonical() string {
	var b strings.Builder
	for bi := range f.Batches {
		batch := &f.Batches[bi]
		fmt.Fprintf(&b, "%s cells=%d\n", batch.Name, len(batch.Cells))
		for _, cs := range batch.Cells {
			writeCanonicalTree(&b, cs)
		}
	}
	return b.String()
}

// writeCanonicalTree renders one cell's canonical lines.
func writeCanonicalTree(b *strings.Builder, cs *CellSpans) {
	if cs.Tree == nil {
		fmt.Fprintf(b, "  %s abandoned class=%s\n", cs.Cell, cs.Class)
		return
	}
	lat := "latency=-"
	if cs.Latency.Found {
		lat = fmt.Sprintf("latency=%d", cs.Latency.Events)
	}
	fmt.Fprintf(b, "  %s %s", cs.Cell, lat)
	if cs.Class != "" {
		fmt.Fprintf(b, " class=%s", cs.Class)
	}
	b.WriteString("\n")
	spans := cs.Tree.Spans()
	depth := make([]int, len(spans))
	for i := range spans {
		s := &spans[i]
		d := 0
		if s.Parent >= 0 {
			d = depth[s.Parent] + 1
		}
		depth[i] = d
		fmt.Fprintf(b, "  %s%s %q [%d,%d]", strings.Repeat("  ", d+1), s.Kind, s.Name, s.StartV, s.EndV)
		if s.Aborted {
			b.WriteString(" aborted")
		}
		b.WriteString("\n")
	}
}
