package span_test

// The span tree's contract: every opened span closes exactly once —
// through its own End, through an enclosing End that force-closes
// forgotten children, or through Abort on a failing path — and the
// virtual-time structure nests properly. Check() is the oracle the
// campaign chaos suite runs over every salvaged tree; these tests pin
// what it accepts and what it rejects.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/span"
	"repro/internal/telemetry"
)

// clockTree builds a tree whose virtual clock the test advances by
// hand, so intervals are exact.
func clockTree(cell string) (*span.Tree, *uint64) {
	v := new(uint64)
	return span.NewTree(cell, func() uint64 { return *v }), v
}

func TestTreeLifecycle(t *testing.T) {
	tr, v := clockTree("4.6/XSA-1/exploit")
	if got := tr.Cell(); got != "4.6/XSA-1/exploit" {
		t.Errorf("Cell() = %q", got)
	}
	*v = 1
	boot := tr.Phase(span.PhaseBoot)
	*v = 3
	mm := tr.MMOp("alloc_range[8]")
	*v = 5
	tr.End(mm)
	*v = 6
	tr.End(boot)
	*v = 7
	attack := tr.Phase(span.PhaseInject)
	hc := tr.Hypercall("mmu_update")
	*v = 9
	tr.End(hc)
	tr.End(attack)
	assess := tr.Phase(span.PhaseAssess)
	aud := tr.Audit("XSA-1")
	*v = 11
	tr.End(aud)
	tr.End(assess)
	tr.Finish()

	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if tr.Open() != 0 {
		t.Errorf("Open() = %d after Finish", tr.Open())
	}
	spans := tr.Spans()
	if len(spans) != 7 {
		t.Fatalf("got %d spans, want 7", len(spans))
	}
	// Pre-order: root first, IDs are creation indices, parents nest.
	root := spans[0]
	if root.Kind != span.KindCell || root.Parent != -1 || root.StartV != 0 || root.EndV != 11 {
		t.Errorf("root = %+v", root)
	}
	if spans[2].Kind != span.KindMMOp || spans[2].Parent != boot {
		t.Errorf("mm_op span = %+v, want parent %d", spans[2], boot)
	}
	if spans[2].StartV != 3 || spans[2].EndV != 5 {
		t.Errorf("mm_op interval = [%d,%d], want [3,5]", spans[2].StartV, spans[2].EndV)
	}
	if spans[6].Kind != span.KindAudit || spans[6].Name != "audit:XSA-1" {
		t.Errorf("audit span = %+v", spans[6])
	}
	for _, s := range spans {
		if s.Aborted {
			t.Errorf("span %d (%s %q) aborted on the happy path", s.ID, s.Kind, s.Name)
		}
	}
	if end, ok := tr.PhaseEnd(span.PhaseInject); !ok || end != 9 {
		t.Errorf("PhaseEnd(inject) = %d,%v, want 9,true", end, ok)
	}
	if _, ok := tr.PhaseEnd(span.PhaseExploit); ok {
		t.Error("PhaseEnd(exploit) found a phase this tree never opened")
	}
}

// A nil tree is the disabled state: every method no-ops and Start
// returns -1 so callers never branch.
func TestNilTreeNoops(t *testing.T) {
	var tr *span.Tree
	id := tr.Start(span.KindPhase, span.PhaseBoot)
	if id != -1 {
		t.Errorf("nil Start = %d, want -1", id)
	}
	tr.End(id)
	tr.End(0)
	tr.Abort()
	tr.Finish()
	if tr.Spans() != nil || tr.Open() != 0 || tr.Cell() != "" {
		t.Error("nil tree leaked state")
	}
	if err := tr.Check(); err != nil {
		t.Errorf("nil Check = %v", err)
	}
	if _, ok := tr.PhaseEnd(span.PhaseBoot); ok {
		t.Error("nil PhaseEnd found a phase")
	}
}

// Ending an outer span force-closes the children a failing path left
// open, marking them (and only them) aborted.
func TestEndClosesForgottenChildrenAborted(t *testing.T) {
	tr, v := clockTree("cell")
	phase := tr.Phase(span.PhaseBoot)
	inner := tr.Hypercall("mmu_update")
	*v = 4
	tr.End(phase) // inner never ended
	tr.Finish()
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	spans := tr.Spans()
	if !spans[inner].Aborted {
		t.Error("forgotten child not marked aborted")
	}
	if spans[phase].Aborted || spans[0].Aborted {
		t.Error("explicitly-ended spans marked aborted")
	}
	if spans[inner].EndV != 4 {
		t.Errorf("forgotten child EndV = %d, want 4", spans[inner].EndV)
	}
}

// Abort force-closes everything open, aborting all but the cell root.
func TestAbortClosesEverything(t *testing.T) {
	tr, v := clockTree("cell")
	tr.Phase(span.PhaseBoot)
	tr.Hypercall("mmu_update")
	*v = 9
	tr.Abort()
	if err := tr.Check(); err != nil {
		t.Fatalf("Check after Abort: %v", err)
	}
	spans := tr.Spans()
	if spans[0].Aborted {
		t.Error("cell root marked aborted; the cell did end")
	}
	for _, s := range spans[1:] {
		if !s.Aborted {
			t.Errorf("span %d (%s %q) not aborted", s.ID, s.Kind, s.Name)
		}
		if s.EndV != 9 {
			t.Errorf("span %d EndV = %d, want 9", s.ID, s.EndV)
		}
	}
}

// Double-End and out-of-range End are ignored; the counters stay
// balanced.
func TestEndIsIdempotentAndBoundsChecked(t *testing.T) {
	tr, _ := clockTree("cell")
	p := tr.Phase(span.PhaseBoot)
	tr.End(p)
	tr.End(p)  // double
	tr.End(99) // never existed
	tr.End(-5) // nil-tree sentinel range
	tr.Finish()
	tr.Finish() // double Finish
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

// Check rejects the failure modes it exists to catch.
func TestCheckRejectsOpenSpans(t *testing.T) {
	tr, _ := clockTree("cell")
	tr.Phase(span.PhaseBoot)
	err := tr.Check()
	if err == nil || !strings.Contains(err.Error(), "still open") {
		t.Errorf("Check on open tree = %v, want still-open error", err)
	}
}

func TestDetectionLatency(t *testing.T) {
	build := func(attack string, endV uint64) *span.Tree {
		tr, v := clockTree("cell")
		if attack != "" {
			p := tr.Phase(attack)
			*v = endV
			tr.End(p)
		}
		tr.Finish()
		return tr
	}
	evidence := func(seq uint64) []telemetry.Event {
		return []telemetry.Event{
			{Kind: telemetry.KindScenarioStep, Seq: 1},
			{Kind: telemetry.KindVerdictEvidence, Seq: seq},
			{Kind: telemetry.KindVerdictEvidence, Seq: seq + 10}, // first wins
		}
	}

	lat := span.DetectionLatency(build(span.PhaseInject, 20), evidence(25))
	if !lat.Found || lat.TriggerV != 20 || lat.EvidenceV != 25 || lat.Events != 5 {
		t.Errorf("inject latency = %+v, want trigger=20 evidence=25 events=5", lat)
	}

	// Exploit phase is the fallback attack boundary.
	lat = span.DetectionLatency(build(span.PhaseExploit, 30), evidence(28))
	if !lat.Found || lat.Events != -2 {
		t.Errorf("exploit latency = %+v, want events=-2 (evidence mid-attack)", lat)
	}

	// No attack phase (cell failed in boot) or no evidence: not found.
	if lat := span.DetectionLatency(build("", 0), evidence(5)); lat.Found {
		t.Errorf("latency without attack phase = %+v, want not found", lat)
	}
	if lat := span.DetectionLatency(build(span.PhaseInject, 20), nil); lat.Found {
		t.Errorf("latency without evidence = %+v, want not found", lat)
	}
	if lat := span.DetectionLatency(nil, evidence(5)); lat.Found {
		t.Errorf("nil-tree latency = %+v, want not found", lat)
	}
}

// finishedCell builds a settled cell whose root span is exactly totalV
// wide, with a single boot phase covering it.
func finishedCell(id string, worker int, totalV uint64) *span.CellSpans {
	tr, v := clockTree(id)
	p := tr.Phase(span.PhaseBoot)
	*v = totalV
	tr.End(p)
	tr.Finish()
	return &span.CellSpans{Cell: id, Worker: worker, Tree: tr}
}

func TestCollectorAssemblesBatchesInDispatchOrder(t *testing.T) {
	c := span.NewCollector()
	c.StartBatch([]string{"a", "b", "c"})
	// Cells settle out of order; the forest keeps dispatch order.
	c.FinishCell(finishedCell("c", 2, 3))
	c.FinishCell(finishedCell("a", 0, 1))
	c.FinishCell(finishedCell("b", 1, 2))
	// A second batch with an unsettled cell: it is dropped.
	c.StartBatch([]string{"d", "e"})
	c.FinishCell(finishedCell("e", 0, 5))
	// A cell outside any announced batch gets an implicit batch.
	c.FinishCell(finishedCell("stray", 0, 7))

	f := c.Forest()
	if err := f.Check(); err != nil {
		t.Fatalf("forest Check: %v", err)
	}
	if len(f.Batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(f.Batches))
	}
	var order []string
	for _, cs := range f.Cells() {
		order = append(order, cs.Cell)
	}
	want := []string{"a", "b", "c", "e", "stray"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("forest cell order = %v, want %v", order, want)
	}
	if f.Batches[0].Name != "batch01" || f.Batches[1].Name != "batch02" {
		t.Errorf("batch names = %q, %q", f.Batches[0].Name, f.Batches[1].Name)
	}
}

// The critical-path analysis replays least-loaded dispatch
// deterministically: known costs produce a known chain.
func TestAnalyzeCriticalPath(t *testing.T) {
	b := &span.Batch{Name: "batch01"}
	for _, c := range []struct {
		id string
		v  uint64
	}{{"c1", 5}, {"c2", 4}, {"c3", 3}, {"c4", 2}, {"c5", 1}} {
		b.Cells = append(b.Cells, finishedCell(c.id, 0, c.v))
	}
	cp := span.AnalyzeCriticalPath(b, 2)
	// Dispatch replay: c1->w0(5), c2->w1(4), c3->w1(7), c4->w0(7),
	// c5 ties -> w0(8). Critical chain is w0: c1,c4,c5.
	if cp.TotalV != 15 || cp.MakespanV != 8 {
		t.Errorf("total=%d makespan=%d, want 15/8", cp.TotalV, cp.MakespanV)
	}
	var chain []string
	for _, cc := range cp.Chain {
		chain = append(chain, cc.Cell)
	}
	if strings.Join(chain, ",") != "c1,c4,c5" {
		t.Errorf("chain = %v, want c1,c4,c5", chain)
	}
	if want := 15.0 / 16.0; cp.Efficiency != want {
		t.Errorf("efficiency = %v, want %v", cp.Efficiency, want)
	}

	// Pool clamps: zero/negative to 1, oversize to the cell count.
	if cp := span.AnalyzeCriticalPath(b, 0); cp.Workers != 1 || cp.MakespanV != 15 {
		t.Errorf("workers=0: %+v, want serial makespan 15", cp)
	}
	if cp := span.AnalyzeCriticalPath(b, 64); cp.Workers != 5 || cp.MakespanV != 5 {
		t.Errorf("workers=64: workers=%d makespan=%d, want 5/5", cp.Workers, cp.MakespanV)
	}
}

func TestObservedCriticalPath(t *testing.T) {
	mk := func(id string, worker int, off, wall int64) *span.CellSpans {
		cs := finishedCell(id, worker, 1)
		cs.OffsetNS, cs.WallNS = off, wall
		return cs
	}
	b := &span.Batch{Name: "batch01", Cells: []*span.CellSpans{
		mk("a", 0, 0, 100),
		mk("b", 1, 10, 300),
		mk("c", 1, 5, 50),
		nil, // unsettled slot
	}}
	worker, wall, chain := span.ObservedCriticalPath(b)
	if worker != 1 || wall != 350 {
		t.Errorf("observed worker=%d wall=%d, want 1/350", worker, wall)
	}
	if strings.Join(chain, ",") != "c,b" {
		t.Errorf("observed chain = %v, want offset order c,b", chain)
	}
	if w, _, _ := span.ObservedCriticalPath(&span.Batch{}); w != -1 {
		t.Errorf("empty batch observed worker = %d, want -1", w)
	}
}

// Canonical output excludes wall times and worker placement, so two
// forests with identical virtual structure render byte-identically.
func TestCanonicalExcludesWallAndWorker(t *testing.T) {
	build := func(worker int, wall int64) string {
		c := span.NewCollector()
		c.StartBatch([]string{"a", "b"})
		ca := finishedCell("a", worker, 4)
		ca.WallNS, ca.OffsetNS = wall, wall
		c.FinishCell(ca)
		c.FinishCell(&span.CellSpans{Cell: "b", Worker: worker, Class: "hang"})
		return c.Forest().Canonical()
	}
	one, two := build(0, 111), build(7, 999)
	if one != two {
		t.Errorf("canonical differs with wall/worker placement:\n%s\nvs\n%s", one, two)
	}
	for _, want := range []string{
		"batch01 cells=2\n",
		"  a latency=-\n",
		`    cell "a" [0,4]`,
		`      phase "boot" [0,4]`,
		"  b abandoned class=hang\n",
	} {
		if !strings.Contains(one, want) {
			t.Errorf("canonical missing %q:\n%s", want, one)
		}
	}
}

// The Chrome export is a valid JSON array with process/track metadata
// and one complete event per span, on the owning worker's track.
func TestWriteChromeValidJSON(t *testing.T) {
	c := span.NewCollector()
	c.StartBatch([]string{"a", "b"})
	c.FinishCell(finishedCell("a", 0, 4))
	c.FinishCell(finishedCell("b", 1, 2))
	c.FinishCell(&span.CellSpans{Cell: "hung", Worker: 1, Class: "hang"}) // no tree: metadata only

	var buf bytes.Buffer
	if err := span.WriteChrome(&buf, c.Forest()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("export is not a JSON array: %v\n%s", err, buf.String())
	}
	meta, complete := 0, 0
	tracks := map[float64]bool{}
	for _, r := range rows {
		switch r["ph"] {
		case "M":
			meta++
			if r["name"] == "thread_name" {
				tracks[r["tid"].(float64)] = true
			}
		case "X":
			complete++
			args := r["args"].(map[string]any)
			if args["cell"] == "" || args["v_start"] == nil || args["v_end"] == nil {
				t.Errorf("X event missing args: %v", r)
			}
			if !tracks[r["tid"].(float64)] {
				t.Errorf("X event on undeclared track %v", r["tid"])
			}
		}
	}
	// process_name + 2 worker tracks; 2 spans per settled cell.
	if meta != 3 || complete != 4 {
		t.Errorf("got %d metadata / %d complete events, want 3/4", meta, complete)
	}
}
