// Package span is the causal layer on top of the telemetry recorder:
// where the recorder answers "what events happened", spans answer "what
// was the system *doing* when they happened, and inside what". Spans
// form a tree per campaign cell — cell → phase (boot, exploit/inject,
// assess) → individual hypercall and mm-operation spans — and a forest
// per campaign (campaign → batch → cell), the structured, hierarchical
// timing capture that record-and-replay tracing frameworks show is what
// makes virtualization-stack behaviour analyzable, as opposed to flat
// logs.
//
// Every span carries two clocks:
//
//   - Virtual time: the environment's event-count clock (the telemetry
//     recorder's emission counter). The simulator is deterministic per
//     cell, so virtual timestamps — and with them the entire span
//     structure — are byte-identical at any worker count and under any
//     seeded -chaos plan.
//   - Wall time: nanoseconds since the tree's epoch. Wall times feed
//     the Chrome trace export and the observed critical path; they are
//     never part of the canonical structure.
//
// A nil *Tree is the disabled state: every method no-ops, so
// instrumented paths cost one predicted branch when spans are off,
// matching the telemetry recorder's contract.
package span

import (
	"fmt"
	"time"
)

// Kind classifies a span's level in the causal tree.
type Kind uint8

// Span kinds, root to leaf.
const (
	// KindCampaign is the forest root covering a whole CLI invocation.
	KindCampaign Kind = iota + 1
	// KindBatch is one dispatched batch of cells (one Runner experiment).
	KindBatch
	// KindCell is one campaign cell's root span.
	KindCell
	// KindPhase is a cell lifecycle phase: boot, exploit/inject, assess.
	KindPhase
	// KindHypercall is one hypercall dispatch.
	KindHypercall
	// KindMMOp is one machine-memory operation (range allocation).
	KindMMOp
	// KindAudit is one monitor audit pass inside the assess phase.
	KindAudit
)

// String returns the snake_case wire name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCampaign:
		return "campaign"
	case KindBatch:
		return "batch"
	case KindCell:
		return "cell"
	case KindPhase:
		return "phase"
	case KindHypercall:
		return "hypercall"
	case KindMMOp:
		return "mm_op"
	case KindAudit:
		return "audit"
	default:
		return fmt.Sprintf("kind_%d", uint8(k))
	}
}

// Phase names used by the campaign engine. The attack phase is named
// after the cell's mode: "exploit" or "inject".
const (
	PhaseBoot    = "boot"
	PhaseExploit = "exploit"
	PhaseInject  = "inject"
	PhaseAssess  = "assess"
)

// Span is one node of a cell's causal tree. IDs are 0-based creation
// indices within the tree; Parent is -1 for the root. Creation order is
// also pre-order, so a tree renders without pointer chasing.
type Span struct {
	// ID is the span's creation index within its tree.
	ID int `json:"id"`
	// Parent is the enclosing span's ID, -1 for the cell root.
	Parent int `json:"parent"`
	// Kind classifies the span.
	Kind Kind `json:"-"`
	// Name is the span's deterministic label (phase name, hypercall
	// name, operation).
	Name string `json:"name"`
	// StartV and EndV are the virtual (event-count clock) bounds.
	StartV uint64 `json:"v_start"`
	EndV   uint64 `json:"v_end"`
	// StartNS and EndNS are wall-clock bounds in nanoseconds since the
	// tree epoch. Not part of the canonical structure.
	StartNS int64 `json:"wall_start_ns"`
	EndNS   int64 `json:"wall_end_ns"`
	// Aborted marks a span that was force-closed by Abort (a panicking
	// or erroring cell unwinding) instead of by its own End.
	Aborted bool `json:"aborted,omitempty"`

	// done guards the closed-exactly-once invariant.
	done bool
}

// KindName is the span kind's wire name, serialized for /spans.
func (s *Span) KindName() string { return s.Kind.String() }

// Tree builds one cell's span tree. Like the telemetry recorder it is
// single-goroutine by design — one cell, one worker, one tree — and the
// nil Tree is the disabled state.
type Tree struct {
	cell  string
	clock func() uint64
	epoch time.Time

	spans []Span
	stack []int

	opened, closed int
}

// NewTree creates a tree for the named cell with the given virtual
// clock (typically telemetry.(*Recorder).Emitted) and opens the cell
// root span. A nil clock counts spans instead of events, keeping the
// tree usable without a recorder.
func NewTree(cell string, clock func() uint64) *Tree {
	t := &Tree{cell: cell, clock: clock, epoch: time.Now()}
	if t.clock == nil {
		t.clock = func() uint64 { return uint64(t.opened + t.closed) }
	}
	t.Start(KindCell, cell)
	return t
}

// Cell returns the tree's cell identity ("" for nil).
func (t *Tree) Cell() string {
	if t == nil {
		return ""
	}
	return t.cell
}

// now reads both clocks.
func (t *Tree) now() (v uint64, ns int64) {
	return t.clock(), time.Since(t.epoch).Nanoseconds()
}

// Start opens a span under the currently open span and returns its ID.
// Returns -1 on a nil tree; End(-1) no-ops, so callers never branch.
func (t *Tree) Start(kind Kind, name string) int {
	if t == nil {
		return -1
	}
	v, ns := t.now()
	id := len(t.spans)
	parent := -1
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Kind: kind, Name: name,
		StartV: v, EndV: v, StartNS: ns, EndNS: ns,
	})
	t.stack = append(t.stack, id)
	t.opened++
	return id
}

// End closes the span. Spans close LIFO; if id is not the top of the
// stack, the spans opened inside it are closed (aborted) first, so a
// child a failing path forgot can never keep its ancestors open. Ending
// a span twice, or a span of another tree, is ignored — the invariant
// suite checks that no correct path ever does.
func (t *Tree) End(id int) {
	if t == nil || id < 0 || id >= len(t.spans) || t.spans[id].done {
		return
	}
	v, ns := t.now()
	for n := len(t.stack); n > 0; n = len(t.stack) {
		top := t.stack[n-1]
		t.stack = t.stack[:n-1]
		s := &t.spans[top]
		s.EndV, s.EndNS, s.done = v, ns, true
		s.Aborted = top != id
		t.closed++
		if top == id {
			return
		}
	}
}

// Phase opens a KindPhase span.
func (t *Tree) Phase(name string) int { return t.Start(KindPhase, name) }

// Hypercall opens a KindHypercall span named after the hypercall.
func (t *Tree) Hypercall(name string) int { return t.Start(KindHypercall, name) }

// MMOp opens a KindMMOp span.
func (t *Tree) MMOp(name string) int { return t.Start(KindMMOp, name) }

// Audit opens a KindAudit span.
func (t *Tree) Audit(useCase string) int { return t.Start(KindAudit, "audit:"+useCase) }

// Abort force-closes every open span, innermost first, marking each
// aborted except the cell root (the cell did end; its contents were cut
// short). The failure paths — error return, recovered panic — call this
// so a salvaged tree still satisfies the closed-exactly-once invariant.
func (t *Tree) Abort() {
	if t == nil {
		return
	}
	v, ns := t.now()
	for n := len(t.stack); n > 0; n = len(t.stack) {
		id := t.stack[n-1]
		t.stack = t.stack[:n-1]
		s := &t.spans[id]
		s.EndV, s.EndNS, s.done = v, ns, true
		s.Aborted = s.Parent >= 0
		t.closed++
	}
}

// Finish closes the cell root (and anything erroneously left open
// inside it). The happy path calls this once, after the assess phase.
func (t *Tree) Finish() {
	if t == nil || len(t.spans) == 0 {
		return
	}
	t.End(0)
}

// Spans returns the tree's spans in creation (pre-)order. The slice is
// the tree's own backing store; callers must not mutate it.
func (t *Tree) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Open returns how many spans are currently open.
func (t *Tree) Open() int {
	if t == nil {
		return 0
	}
	return len(t.stack)
}

// Check verifies the tree's invariants: every opened span closed
// exactly once, virtual time monotone within each span, and every child
// contained in its parent's virtual interval. The span test suite runs
// it over every collected tree, including trees salvaged from panicking
// and chaos-faulted cells.
func (t *Tree) Check() error {
	if t == nil {
		return nil
	}
	if n := len(t.stack); n != 0 {
		return fmt.Errorf("span: %s: %d spans still open", t.cell, n)
	}
	if t.opened != t.closed {
		return fmt.Errorf("span: %s: %d spans opened, %d closed", t.cell, t.opened, t.closed)
	}
	for i := range t.spans {
		s := &t.spans[i]
		if !s.done {
			return fmt.Errorf("span: %s: span %d (%s %q) never closed", t.cell, s.ID, s.Kind, s.Name)
		}
		if s.EndV < s.StartV {
			return fmt.Errorf("span: %s: span %d (%s %q) ends at v=%d before its start v=%d",
				t.cell, s.ID, s.Kind, s.Name, s.EndV, s.StartV)
		}
		if s.Parent >= 0 {
			p := &t.spans[s.Parent]
			if s.StartV < p.StartV || s.EndV > p.EndV {
				return fmt.Errorf("span: %s: span %d (%s %q) [%d,%d] escapes parent %d [%d,%d]",
					t.cell, s.ID, s.Kind, s.Name, s.StartV, s.EndV, p.ID, p.StartV, p.EndV)
			}
		}
	}
	return nil
}

// PhaseEnd returns the virtual end time of the named phase span, false
// if the tree has no such phase.
func (t *Tree) PhaseEnd(name string) (uint64, bool) {
	if t == nil {
		return 0, false
	}
	for i := range t.spans {
		s := &t.spans[i]
		if s.Kind == KindPhase && s.Name == name {
			return s.EndV, true
		}
	}
	return 0, false
}
