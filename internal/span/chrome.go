package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event JSON export, the interchange format Perfetto and
// chrome://tracing load directly. The campaign maps onto it naturally:
// one process, one track (tid) per campaign worker, and every span as a
// complete ("X") event placed at its cell's wall offset. Virtual times
// ride along in args, so a Perfetto query can still reason in the
// deterministic clock.

// chromeEvent is one trace-event line. Field order is fixed by the
// struct, so the artifact is stable apart from the wall timestamps.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

const chromePID = 1

// WriteChrome writes the forest as a Chrome trace-event JSON array.
// Open it in Perfetto (ui.perfetto.dev) or chrome://tracing; each
// campaign worker renders as its own track.
func WriteChrome(w io.Writer, f *Forest) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		raw, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(raw)
		return err
	}

	if err := emit(chromeEvent{
		Name: "process_name", Phase: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "repro campaign"},
	}); err != nil {
		return err
	}

	// One metadata row per worker track seen in the forest.
	workers := map[int]bool{}
	for _, cs := range f.Cells() {
		if !workers[cs.Worker] {
			workers[cs.Worker] = true
			if err := emit(chromeEvent{
				Name: "thread_name", Phase: "M", PID: chromePID, TID: cs.Worker + 1,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", cs.Worker)},
			}); err != nil {
				return err
			}
		}
	}

	for _, cs := range f.Cells() {
		if cs.Tree == nil {
			continue
		}
		for _, s := range cs.Tree.Spans() {
			ev := chromeEvent{
				Name:  s.Name,
				Cat:   s.Kind.String(),
				Phase: "X",
				TS:    float64(cs.OffsetNS+s.StartNS) / 1e3,
				Dur:   float64(s.EndNS-s.StartNS) / 1e3,
				PID:   chromePID,
				TID:   cs.Worker + 1,
				Args: map[string]any{
					"cell":    cs.Cell,
					"v_start": s.StartV,
					"v_end":   s.EndV,
				},
			}
			if s.Aborted {
				ev.Args["aborted"] = true
			}
			if err := emit(ev); err != nil {
				return err
			}
		}
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}
