package workload_test

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/hv"
	"repro/internal/workload"
)

func newGuest(t *testing.T, v hv.Version) *campaign.Environment {
	t.Helper()
	e, err := campaign.NewEnvironment(v, campaign.ModeInjection)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestWorkloadCompletesOnHealthySystem(t *testing.T) {
	e := newGuest(t, hv.Version413())
	cfg := workload.Config{Ops: 150, Seed: 7}
	res := workload.Run(e.Guests[1], cfg)
	if res.Stopped {
		t.Fatalf("stopped: %s", res.StopReason)
	}
	if res.Failed != 0 {
		t.Errorf("failed ops on healthy system: %d", res.Failed)
	}
	if got := res.CompletionRate(cfg); got != 1.0 {
		t.Errorf("completion = %.2f", got)
	}
}

func TestWorkloadIsDeterministic(t *testing.T) {
	cfg := workload.Config{Ops: 80, Seed: 42}
	a := workload.Run(newGuest(t, hv.Version48()).Guests[1], cfg)
	b := workload.Run(newGuest(t, hv.Version48()).Guests[1], cfg)
	if a != b {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestWorkloadStopsOnCrash(t *testing.T) {
	e := newGuest(t, hv.Version46())
	e.HV.Crash("FATAL TRAP: vector = 8 (double fault)")
	res := workload.Run(e.Guests[1], workload.Config{Ops: 50, Seed: 1})
	if !res.Stopped || !strings.Contains(res.StopReason, "crashed") {
		t.Errorf("result = %+v", res)
	}
	if res.Completed != 0 {
		t.Errorf("completed %d ops on a dead platform", res.Completed)
	}
}

func TestWorkloadStopsOnHang(t *testing.T) {
	e := newGuest(t, hv.Version46())
	e.HV.InjectHang("test")
	res := workload.Run(e.Guests[1], workload.Config{Ops: 50, Seed: 1})
	if !res.Stopped || !strings.Contains(res.StopReason, "hung") {
		t.Errorf("result = %+v", res)
	}
}

func TestWorkloadRejectsZeroOps(t *testing.T) {
	e := newGuest(t, hv.Version46())
	res := workload.Run(e.Guests[1], workload.Config{})
	if !res.Stopped {
		t.Error("zero-op run not stopped")
	}
	if res.CompletionRate(workload.Config{}) != 0 {
		t.Error("zero-op completion not zero")
	}
}

// TestAvailabilityUnderInjection asserts the dependability view of
// Table III over the full corpus: crash-class injections zero out a
// bystander guest's service; DOMCTL-pauseall suspends the bystander
// itself, degrading (but not stopping) its workload; every other
// injected state leaves it fully available.
func TestAvailabilityUnderInjection(t *testing.T) {
	for _, v := range []hv.Version{hv.Version48(), hv.Version413()} {
		t.Run(v.Name, func(t *testing.T) {
			rows, err := campaign.AvailabilityUnderInjection(v, workload.Config{Ops: 60, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 17 {
				t.Fatalf("rows = %d, want 17", len(rows))
			}
			for _, r := range rows {
				if !r.Injected {
					t.Errorf("%s: state not injected", r.UseCase)
				}
				switch r.UseCase {
				case "XSA-212-crash":
					if r.VictimCompletion != 0 || !r.Stopped {
						t.Errorf("%s: bystander survived a host crash: %v", r.UseCase, r)
					}
				case "DOMCTL-pauseall":
					// The bystander is one of the paused victims: its
					// console-bound ops fail while compute ops complete.
					if r.Stopped || r.VictimCompletion <= 0 || r.VictimCompletion >= 1 {
						t.Errorf("%s: paused bystander availability = %.2f stopped=%v, want partial completion",
							r.UseCase, r.VictimCompletion, r.Stopped)
					}
				default:
					if r.VictimCompletion != 1.0 {
						t.Errorf("%s: bystander availability = %.2f, want 1.00 (%s)",
							r.UseCase, r.VictimCompletion, r.StopReason)
					}
				}
				if r.String() == "" {
					t.Error("empty row string")
				}
			}
		})
	}
}
