// Package workload drives deterministic guest activity — filesystem
// traffic, shell sessions, memory access, hypercalls — so campaigns can
// measure how a system behaves *as used* while erroneous states are
// present. It is the workload half of the dependability-benchmark
// pairing the paper builds toward (faultload = injected intrusions,
// workload = this).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/guest"
	"repro/internal/hv"
	"repro/internal/mm"
)

// Config parameterizes one workload run.
type Config struct {
	// Ops is the number of operations to attempt.
	Ops int
	// Seed makes the operation mix reproducible.
	Seed int64
}

// DefaultConfig is a moderate mixed workload.
func DefaultConfig() Config { return Config{Ops: 200, Seed: 1} }

// Result summarizes a run.
type Result struct {
	// Completed counts operations that succeeded.
	Completed int
	// Failed counts operations that returned errors.
	Failed int
	// Stopped is set when the run aborted early because the platform
	// died (crash or hang) — the availability signal.
	Stopped bool
	// StopReason describes why.
	StopReason string
}

// CompletionRate returns the fraction of attempted operations that
// succeeded, in [0, 1].
func (r Result) CompletionRate(cfg Config) float64 {
	if cfg.Ops == 0 {
		return 0
	}
	return float64(r.Completed) / float64(cfg.Ops)
}

// Session is a workload bound to one guest with its scratch pages
// allocated; it can run any number of times without consuming further
// guest memory.
type Session struct {
	k     *guest.Kernel
	pages []mm.PFN
}

// NewSession allocates the workload's scratch pages on the guest. The
// workload owns these pages and never touches memory other actors
// (stores, exploit artifacts) allocated.
func NewSession(k *guest.Kernel) (*Session, error) {
	s := &Session{k: k}
	for len(s.pages) < 4 {
		pfn, err := k.Domain().AllocPage()
		if err != nil {
			return nil, err
		}
		s.pages = append(s.pages, pfn)
	}
	return s, nil
}

// Run executes the mixed workload on the guest. The mix touches every
// service layer the experiments monitor: files, the shell, guest memory
// through real page walks, and the hypercall interface.
func Run(k *guest.Kernel, cfg Config) Result {
	s, err := NewSession(k)
	if err != nil {
		return Result{Stopped: true, StopReason: "no scratch memory: " + err.Error()}
	}
	return s.Run(cfg)
}

// Run executes the workload once over the session's scratch pages.
func (s *Session) Run(cfg Config) Result {
	if cfg.Ops <= 0 {
		return Result{Stopped: true, StopReason: "no operations requested"}
	}
	k, pages := s.k, s.pages
	rng := rand.New(rand.NewSource(cfg.Seed))
	var res Result
	h := k.Domain().Hypervisor()
	for i := 0; i < cfg.Ops; i++ {
		if h.Crashed() || h.Hung() {
			res.Stopped = true
			if h.Crashed() {
				res.StopReason = "hypervisor crashed: " + h.CrashReason()
			} else {
				res.StopReason = "hypervisor hung"
			}
			return res
		}
		if err := oneOp(k, rng, i, pages); err != nil {
			res.Failed++
			continue
		}
		res.Completed++
	}
	return res
}

func oneOp(k *guest.Kernel, rng *rand.Rand, i int, pages []mm.PFN) error {
	switch rng.Intn(5) {
	case 0:
		path := fmt.Sprintf("/tmp/wl-%d", i%16)
		return k.WriteFile(path, fmt.Sprintf("op %d", i), guest.UIDUser)
	case 1:
		_, err := k.Exec("whoami && hostname", guest.UIDUser)
		return err
	case 2:
		// Touch a scratch page through the MMU.
		pfn := pages[rng.Intn(len(pages))]
		return k.PokeU64(k.Domain().PhysmapVA(pfn)+uint64(rng.Intn(400))*8, uint64(i))
	case 3:
		var b [8]byte
		pfn := pages[rng.Intn(len(pages))]
		return k.Peek(k.Domain().PhysmapVA(pfn), b[:])
	default:
		return k.Domain().Hypercall(hv.HypercallConsoleIO, fmt.Sprintf("workload op %d", i))
	}
}
