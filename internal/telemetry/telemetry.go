// Package telemetry is the hypervisor-level observability layer: a
// low-overhead, allocation-conscious event trace plus a metrics
// registry, the runtime-visibility foundation the paper's methodology
// implies (the monitor audits what the hypervisor *did*; this layer
// records it as it happens, so a diverging Table III cell can be
// diagnosed from its trace instead of a debugger session).
//
// Two kinds of state:
//
//   - Recorder — per-environment, single-goroutine (the simulator is
//     deterministic and single-threaded per environment): a bounded
//     ring of typed events and a counter map. A nil *Recorder is the
//     disabled state; every method is nil-safe and compiles to a
//     predicted-not-taken branch, so instrumented hot paths cost
//     nothing measurable when tracing is off.
//   - Registry — cross-environment aggregate, safe for concurrent use
//     by campaign workers: atomic counters and power-of-two-bucket
//     histograms.
package telemetry

import (
	"fmt"
	"sort"

	"repro/internal/coverage"
	"repro/internal/faults"
)

// Kind is the type tag of a trace event.
type Kind uint8

// Event kinds, covering the paths the campaign-cell auditors care
// about: the hypercall interface, the page-type (frame validation)
// lifecycle, page-table validation outcomes, the injector, the exploit
// scripts and the monitor's verdict evidence.
const (
	// KindHypercallEnter marks entry to the hypercall dispatcher
	// (Nr = hypercall number, Dom = calling domain).
	KindHypercallEnter Kind = iota + 1
	// KindHypercallExit marks dispatcher exit (Detail = error, if any).
	KindHypercallExit
	// KindPageTypeGet is a frame-type validation reference being taken
	// (Addr = MFN, Label = type name).
	KindPageTypeGet
	// KindPageTypePut is a frame-type reference being dropped.
	KindPageTypePut
	// KindValidationReject is a page-table entry or table promotion the
	// hypervisor's validation refused (Detail = reason).
	KindValidationReject
	// KindWalkDenied is a translation the page-walk policy vetoed even
	// though the PTE flags allowed it (the hardening path).
	KindWalkDenied
	// KindInjectorOp is one injector hypercall operation
	// (Label = action, Addr = target, Val = length).
	KindInjectorOp
	// KindInjectorState is an injector state-machine transition: the
	// abstract machine's single abusive-functionality edge, taken
	// operationally (Label = "initial->erroneous", Detail = input).
	KindInjectorState
	// KindScenarioStep is one attacker-terminal transcript line of an
	// exploit or injection script (Label = use case).
	KindScenarioStep
	// KindVerdictEvidence is one evidence line the monitor's audit
	// recorded (Label = use case).
	KindVerdictEvidence
	// KindGrantOp is a grant-table operation (Label = op).
	KindGrantOp
	// KindDomctlOp is a management-plane operation (Label = op,
	// Val = target domain).
	KindDomctlOp
)

// String returns the snake_case wire name of the kind, used in JSONL
// traces and the metrics summary.
func (k Kind) String() string {
	switch k {
	case KindHypercallEnter:
		return "hypercall_enter"
	case KindHypercallExit:
		return "hypercall_exit"
	case KindPageTypeGet:
		return "page_type_get"
	case KindPageTypePut:
		return "page_type_put"
	case KindValidationReject:
		return "validation_reject"
	case KindWalkDenied:
		return "walk_denied"
	case KindInjectorOp:
		return "injector_op"
	case KindInjectorState:
		return "injector_state"
	case KindScenarioStep:
		return "scenario_step"
	case KindVerdictEvidence:
		return "verdict_evidence"
	case KindGrantOp:
		return "grant_op"
	case KindDomctlOp:
		return "domctl_op"
	default:
		return fmt.Sprintf("kind_%d", uint8(k))
	}
}

// Event is one typed trace record. The struct is fixed-size apart from
// the two string fields; hot-path emitters pass constant strings for
// Label and leave Detail empty except on cold (error) paths, so
// emitting an event does not allocate.
type Event struct {
	// Seq is the 0-based emission index within the environment; gaps
	// never occur, so Seq also orders events across a JSONL trace.
	Seq uint64
	// Kind tags the event type.
	Kind Kind
	// Dom is the acting domain, where one is involved.
	Dom uint16
	// Nr is the hypercall number for dispatcher events.
	Nr int32
	// Addr and Val are the generic numeric operands (address, MFN,
	// length, target domain — per kind).
	Addr, Val uint64
	// Label is a short constant tag (page type, action, use case, op).
	Label string
	// Detail is free text: error strings, transcript lines, evidence.
	Detail string
}

// DefaultRingCapacity bounds a per-environment event ring. A campaign
// cell emits a few thousand events (boot-time frame validations plus
// the scenario's hypercall activity); 16 Ki keeps entire cells with
// ample headroom while bounding a runaway workload's memory.
const DefaultRingCapacity = 16384

// Recorder is the per-environment sink: a bounded event ring plus a
// counter map. It is intentionally not safe for concurrent use — one
// environment is one goroutine, and the campaign engine gives every
// cell its own Recorder. The nil Recorder is the disabled sink: every
// method no-ops.
type Recorder struct {
	ring     []Event
	emitted  uint64
	counters map[string]uint64

	// flt, when armed with SiteSinkWrite, fails event writes into the
	// ring: the event is dropped and telemetry.sink_errors counts it.
	flt         *faults.Injector
	sinkDropped uint64

	// cov, when attached, accumulates coverage edges alongside the
	// ring. Coverage observes the instrumented site itself, before the
	// ring write, so sink-write faults and ring wraps never perturb
	// the coverage map — it stays deterministic under chaos.
	cov *coverage.Map
}

// AttachCoverage installs a coverage map fed by the recorder's
// instrumentation hooks. A nil map (or never calling this) leaves
// coverage disabled at zero cost.
func (r *Recorder) AttachCoverage(m *coverage.Map) {
	if r == nil {
		return
	}
	r.cov = m
}

// Coverage returns the attached coverage map, if any (nil receiver
// safe).
func (r *Recorder) Coverage() *coverage.Map {
	if r == nil {
		return nil
	}
	return r.cov
}

// AttachFaults installs the recorder's fault-injection plane. A nil
// injector (or never calling this) leaves sink faults disabled.
func (r *Recorder) AttachFaults(f *faults.Injector) {
	if r == nil {
		return
	}
	r.flt = f
}

// NewRecorder creates an enabled recorder with the given ring capacity
// (DefaultRingCapacity if n <= 0).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultRingCapacity
	}
	return &Recorder{
		ring:     make([]Event, 0, n),
		counters: make(map[string]uint64),
	}
}

// emit appends an event, overwriting the oldest once the ring is full.
// An injected sink-write fault drops the event before it is sequenced,
// so Seq stays gapless across the events that do land.
func (r *Recorder) emit(e Event) {
	if r.flt.Hit(faults.SiteSinkWrite) {
		r.sinkDropped++
		r.counters["telemetry.sink_errors"]++
		return
	}
	e.Seq = r.emitted
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
	} else {
		r.ring[r.emitted%uint64(cap(r.ring))] = e
	}
	r.emitted++
}

// Add increments a named counter by n.
func (r *Recorder) Add(name string, n uint64) {
	if r == nil {
		return
	}
	r.counters[name] += n
}

// Inc increments a named counter by one.
func (r *Recorder) Inc(name string) { r.Add(name, 1) }

// HypercallEnter records dispatcher entry. name is the hypercall's
// symbolic name, used as the counter key ("hypercall.mmu_update").
func (r *Recorder) HypercallEnter(dom uint16, nr int32, name string) {
	if r == nil {
		return
	}
	r.counters["hypercall."+name]++
	r.emit(Event{Kind: KindHypercallEnter, Dom: dom, Nr: nr, Label: name})
}

// HypercallExit records dispatcher exit; err may be nil.
func (r *Recorder) HypercallExit(dom uint16, nr int32, name string, err error) {
	if r == nil {
		return
	}
	r.cov.Hypercall(int(nr), name, err != nil)
	e := Event{Kind: KindHypercallExit, Dom: dom, Nr: nr, Label: name}
	if err != nil {
		r.counters["hypercall.errors"]++
		e.Detail = err.Error()
	}
	r.emit(e)
}

// PageTypeGet records a frame-type validation reference being taken.
func (r *Recorder) PageTypeGet(mfn uint64, typ string) {
	if r == nil {
		return
	}
	r.cov.PageType("get", mfn, typ)
	r.counters["pagetype.get"]++
	r.emit(Event{Kind: KindPageTypeGet, Addr: mfn, Label: typ})
}

// PageTypePut records a frame-type reference being dropped.
func (r *Recorder) PageTypePut(mfn uint64, typ string) {
	if r == nil {
		return
	}
	r.cov.PageType("put", mfn, typ)
	r.counters["pagetype.put"]++
	r.emit(Event{Kind: KindPageTypePut, Addr: mfn, Label: typ})
}

// ValidationReject records a refused page-table validation at the
// given level.
func (r *Recorder) ValidationReject(dom uint16, level int, reason string) {
	if r == nil {
		return
	}
	r.cov.ValidationReject(level, reason)
	r.counters["validation.reject"]++
	r.emit(Event{Kind: KindValidationReject, Dom: dom, Val: uint64(level), Detail: reason})
}

// WalkDenied records a policy-vetoed translation.
func (r *Recorder) WalkDenied(va uint64, reason string) {
	if r == nil {
		return
	}
	r.cov.WalkDenied(reason)
	r.counters["walk.policy_denied"]++
	r.emit(Event{Kind: KindWalkDenied, Addr: va, Detail: reason})
}

// WalkFault counts a failed translation (no event: faults are routine
// during scenario probing and would flood the ring).
func (r *Recorder) WalkFault() {
	if r == nil {
		return
	}
	r.counters["walk.fault"]++
}

// InjectorOp records one injector hypercall operation.
func (r *Recorder) InjectorOp(dom uint16, action string, addr uint64, n int) {
	if r == nil {
		return
	}
	r.cov.InjectorOp(action)
	r.counters["injector.ops"]++
	r.emit(Event{Kind: KindInjectorOp, Dom: dom, Addr: addr, Val: uint64(n), Label: action})
}

// InjectorTransition records an injector state-machine edge.
func (r *Recorder) InjectorTransition(dom uint16, from, to, input string) {
	if r == nil {
		return
	}
	r.cov.InjectorTransition(from, to, input)
	r.counters["injector.transitions"]++
	r.emit(Event{Kind: KindInjectorState, Dom: dom, Label: from + "->" + to, Detail: input})
}

// ScenarioStep records one transcript line of a running scenario.
func (r *Recorder) ScenarioStep(useCase, line string) {
	if r == nil {
		return
	}
	r.counters["scenario.steps"]++
	r.emit(Event{Kind: KindScenarioStep, Label: useCase, Detail: line})
}

// Evidence records one monitor-audit evidence line.
func (r *Recorder) Evidence(useCase, line string) {
	if r == nil {
		return
	}
	r.counters["monitor.evidence"]++
	r.emit(Event{Kind: KindVerdictEvidence, Label: useCase, Detail: line})
}

// EvidenceStateVal is the Val marker on a KindVerdictEvidence event that
// carries the monitor's affirmative erroneous-state audit — the line the
// audit writes when it confirms the state was really induced, as opposed
// to the consequence-phase (violation oracle) evidence that follows. The
// RQ2 trace-equivalence engine keys on this marker: the state audit must
// match between an exploit-induced and an injected run even when a
// hardened version absorbs the consequences.
const EvidenceStateVal uint64 = 1

// EvidenceState records the monitor's affirmative erroneous-state audit
// evidence, marked with EvidenceStateVal on the wire.
func (r *Recorder) EvidenceState(useCase, line string) {
	if r == nil {
		return
	}
	r.counters["monitor.evidence"]++
	r.emit(Event{Kind: KindVerdictEvidence, Val: EvidenceStateVal, Label: useCase, Detail: line})
}

// GrantOp records a grant-table operation.
func (r *Recorder) GrantOp(dom uint16, op string, ref int) {
	if r == nil {
		return
	}
	r.cov.GrantOp(op)
	r.counters["grant."+op]++
	r.emit(Event{Kind: KindGrantOp, Dom: dom, Val: uint64(ref), Label: op})
}

// DomctlOp records a management-plane operation on a target domain.
func (r *Recorder) DomctlOp(dom uint16, op string, target uint16) {
	if r == nil {
		return
	}
	r.cov.DomctlOp(op)
	r.counters["domctl."+op]++
	r.emit(Event{Kind: KindDomctlOp, Dom: dom, Val: uint64(target), Label: op})
}

// Enabled reports whether the recorder is collecting (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Emitted returns the total number of events emitted, including any
// that have been overwritten in the ring.
func (r *Recorder) Emitted() uint64 {
	if r == nil {
		return 0
	}
	return r.emitted
}

// Dropped returns how many events were lost: overwritten by ring
// wraparound or dropped by an injected sink-write fault.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	if n := uint64(cap(r.ring)); r.emitted > n {
		return r.emitted - n + r.sinkDropped
	}
	return r.sinkDropped
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.ring))
	if r.emitted > uint64(cap(r.ring)) {
		// Wrapped: the oldest retained event sits at the write cursor.
		cur := int(r.emitted % uint64(cap(r.ring)))
		out = append(out, r.ring[cur:]...)
		out = append(out, r.ring[:cur]...)
		return out
	}
	return append(out, r.ring...)
}

// CounterValue is one named counter reading.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// Counters returns the counter readings sorted by name, so rendered
// metrics are deterministic.
func (r *Recorder) Counters() []CounterValue {
	if r == nil {
		return nil
	}
	out := make([]CounterValue, 0, len(r.counters))
	for name, v := range r.counters {
		out = append(out, CounterValue{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counter returns one counter's current value.
func (r *Recorder) Counter(name string) uint64 {
	if r == nil {
		return 0
	}
	return r.counters[name]
}

// CellProfile is the per-campaign-cell telemetry snapshot the runner
// records: identity, wall time, final counters and the retained events.
// Counters are deterministic for a given cell at any worker count; wall
// time is the only nondeterministic field.
type CellProfile struct {
	// Cell identifies the run as "version/use-case/mode".
	Cell string `json:"cell"`
	// WallNS is the cell's wall-clock time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Counters are the cell's final counter readings, sorted by name.
	Counters []CounterValue `json:"counters"`
	// DroppedEvents counts ring overwrites (0 = the trace is complete).
	DroppedEvents uint64 `json:"dropped_events,omitempty"`
	// Events is the retained trace, oldest first. It is exported to
	// JSONL trace files, not to the campaign JSON artifact.
	Events []Event `json:"-"`
}

// Profile snapshots the recorder into a cell profile.
func (r *Recorder) Profile(cell string, wallNS int64) *CellProfile {
	if r == nil {
		return nil
	}
	return &CellProfile{
		Cell:          cell,
		WallNS:        wallNS,
		Counters:      r.Counters(),
		DroppedEvents: r.Dropped(),
		Events:        r.Events(),
	}
}
