package telemetry

import "testing"

// snapshotOf builds a registry histogram from observations and returns
// its snapshot, exercising the same path the reports read.
func snapshotOf(t *testing.T, values ...uint64) HistogramSnapshot {
	t.Helper()
	reg := NewRegistry()
	h := reg.Histogram("q")
	for _, v := range values {
		h.Observe(v)
	}
	hs := reg.Histograms()
	if len(hs) != 1 {
		t.Fatalf("got %d histograms, want 1", len(hs))
	}
	return hs[0]
}

func TestQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	s := snapshotOf(t, 10, 20, 1000)
	if got := s.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %d, want Min 10", got)
	}
	if got := s.Quantile(-1); got != 10 {
		t.Errorf("Quantile(-1) = %d, want Min 10", got)
	}
	if got := s.Quantile(1); got != 1000 {
		t.Errorf("Quantile(1) = %d, want Max 1000", got)
	}
	if got := s.Quantile(2); got != 1000 {
		t.Errorf("Quantile(2) = %d, want Max 1000", got)
	}
}

// TestQuantileSingleValue clamps the in-bucket interpolation to the
// observed range: every quantile of a constant distribution is that
// constant.
func TestQuantileSingleValue(t *testing.T) {
	values := make([]uint64, 100)
	for i := range values {
		values[i] = 100
	}
	s := snapshotOf(t, values...)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := s.Quantile(q); got != 100 {
			t.Errorf("constant-100 Quantile(%v) = %d, want 100", q, got)
		}
	}
}

func TestQuantileZeroObservation(t *testing.T) {
	s := snapshotOf(t, 0)
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) of {0} = %d, want 0", got)
	}
}

// TestQuantileBucketAccuracy pins the documented precision contract:
// the estimate lands inside the power-of-two bucket that holds the
// true rank-q observation.
func TestQuantileBucketAccuracy(t *testing.T) {
	// 99 observations of 10 (bucket (8,16]) and one of 1_000_000
	// (bucket (2^19, 2^20]).
	values := make([]uint64, 0, 100)
	for i := 0; i < 99; i++ {
		values = append(values, 10)
	}
	values = append(values, 1_000_000)
	s := snapshotOf(t, values...)

	// p50 and p99 both rank inside the 99-strong bucket.
	for _, q := range []float64{0.5, 0.99} {
		got := s.Quantile(q)
		if got < 8 || got > 16 {
			t.Errorf("Quantile(%v) = %d, want within the (8,16] bucket", q, got)
		}
	}
	// p99.5 ranks at the outlier; the estimate must move to its bucket
	// and stay within the observed max.
	got := s.Quantile(0.995)
	if got <= 16 || got > 1_000_000 {
		t.Errorf("Quantile(0.995) = %d, want in the outlier's bucket, <= Max", got)
	}
}

// TestQuantileMonotone checks q -> Quantile(q) never decreases on a
// spread distribution, which the bucket walk plus clamping guarantees.
func TestQuantileMonotone(t *testing.T) {
	values := []uint64{1, 2, 4, 9, 17, 33, 100, 1000, 5000, 100000}
	s := snapshotOf(t, values...)
	var prev uint64
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := s.Quantile(q)
		if got < prev {
			t.Errorf("Quantile(%v) = %d < previous %d", q, got, prev)
		}
		if got < s.Min || got > s.Max {
			t.Errorf("Quantile(%v) = %d outside [%d, %d]", q, got, s.Min, s.Max)
		}
		prev = got
	}
}
